package commongraph

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"commongraph/internal/gen"
)

// pipeDial wires a follower to an in-process replication server over
// net.Pipe — deterministic, no real sockets.
func pipeDial(rs *ReplicationServer) func(context.Context) (net.Conn, error) {
	return func(ctx context.Context) (net.Conn, error) {
		c, s := net.Pipe()
		rs.Attach(s)
		return c, nil
	}
}

// downDial always fails: the primary is unreachable.
func downDial(context.Context) (net.Conn, error) {
	return nil, errors.New("primary unreachable")
}

// waitFollowerSync polls until the follower has mirrored wantSnaps
// snapshots and reports zero known lag.
func waitFollowerSync(t *testing.T, f *Follower, wantSnaps int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		l := f.Lag()
		g := f.Graph()
		if l.Known && l.Seq == 0 && l.Windows == 0 && g != nil && g.NumSnapshots() == wantSnaps {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	l := f.Lag()
	snaps := -1
	if g := f.Graph(); g != nil {
		snaps = g.NumSnapshots()
	}
	t.Fatalf("follower never converged: lag=%+v snapshots=%d want=%d", l, snaps, wantSnaps)
}

// replicatedPair builds a primary GraphStore from a generated evolving
// graph, starts replication, and syncs a follower against it.
func replicatedPair(t *testing.T, seed uint64, transitions int, cfg FollowerConfig) (*GraphStore, *ReplicationServer, *Follower) {
	t.Helper()
	g, _ := buildEvolving(t, seed, transitions, 40, 40)
	gs, err := g.Persist(filepath.Join(t.TempDir(), "primary"))
	if err != nil {
		t.Fatal(err)
	}
	rs := gs.ServeReplication(nil, ReplicationOptions{Heartbeat: 2 * time.Millisecond})
	if cfg.Dir == "" {
		cfg.Dir = filepath.Join(t.TempDir(), "replica")
	}
	cfg.Dial = pipeDial(rs)
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	f, err := Follow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFollowerSync(t, f, g.NumSnapshots())
	return gs, rs, f
}

func sameSnapshots(t *testing.T, label string, want, got *Result, n int) {
	t.Helper()
	if len(got.Snapshots) != len(want.Snapshots) {
		t.Fatalf("%s: %d snapshots, want %d", label, len(got.Snapshots), len(want.Snapshots))
	}
	for k := range want.Snapshots {
		a, b := want.Snapshots[k], got.Snapshots[k]
		if a.Index != b.Index || a.Reached != b.Reached || a.Checksum != b.Checksum {
			t.Fatalf("%s snapshot %d: follower disagrees with primary (checksum %016x vs %016x, reached %d vs %d)",
				label, k, a.Checksum, b.Checksum, a.Reached, b.Reached)
		}
		if len(a.Values) != len(b.Values) {
			t.Fatalf("%s snapshot %d: value lengths differ: %d vs %d", label, k, len(a.Values), len(b.Values))
		}
		for v := 0; v < n && v < len(a.Values); v++ {
			if a.Values[v] != b.Values[v] {
				t.Fatalf("%s snapshot %d vertex %d: value %v vs %v", label, k, v, a.Values[v], b.Values[v])
			}
		}
	}
}

// TestFollowerReadEquivalence is the replication acceptance differential
// (the replicated twin of TestPersistReopenDifferential): a follower that
// has replayed the primary's history up to sequence N must answer every
// query byte-identically to the primary at N — same checksums, reached
// counts and per-vertex values, under every evaluation strategy, through
// both the direct EvolvingGraph.Run path and the maintained-window
// follower Run path. It holds after the bootstrap snapshot, and again
// after live transitions shipped mid-session.
func TestFollowerReadEquivalence(t *testing.T) {
	g, n := buildEvolving(t, 77, 5, 50, 50)
	gs, err := g.Persist(filepath.Join(t.TempDir(), "primary"))
	if err != nil {
		t.Fatal(err)
	}
	defer gs.Close()
	rs := gs.ServeReplication(nil, ReplicationOptions{Heartbeat: 2 * time.Millisecond})
	defer rs.Close()
	f, err := Follow(FollowerConfig{
		Dir:          filepath.Join(t.TempDir(), "replica"),
		Dial:         pipeDial(rs),
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFollowerSync(t, f, g.NumSnapshots())

	// Live tail: commit more transitions on the primary while the
	// follower session is up, then re-sync.
	latest, err := g.Snapshot(g.NumSnapshots() - 1)
	if err != nil {
		t.Fatal(err)
	}
	more, err := gen.Stream(n, latest, gen.StreamConfig{Transitions: 2, Additions: 30, Deletions: 30, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range more {
		if _, err := gs.ApplyUpdates(tr.Additions, tr.Deletions); err != nil {
			t.Fatal(err)
		}
	}
	waitFollowerSync(t, f, g.NumSnapshots())

	last := g.NumSnapshots() - 1
	ctx := context.Background()
	for _, algo := range []Algorithm{BFS, SSSP} {
		for _, s := range Strategies() {
			req := Request{
				Query:    Query{Algorithm: algo, Source: 0},
				Window:   Window{From: 0, To: last},
				Strategy: s,
				Options:  Options{KeepValues: true},
			}
			want, err := g.Run(ctx, req)
			if err != nil {
				t.Fatalf("%s/%v primary: %v", algo.Name(), s, err)
			}
			got, err := f.Graph().Run(ctx, req)
			if err != nil {
				t.Fatalf("%s/%v follower: %v", algo.Name(), s, err)
			}
			sameSnapshots(t, fmt.Sprintf("%s/%v direct", algo.Name(), s), want, got, n)
		}
	}

	// Maintained-window path: the follower's Run against a primary
	// watcher over the same window.
	pw, err := g.Watch(0, last)
	if err != nil {
		t.Fatal(err)
	}
	defer pw.Close()
	if from, to := f.Watcher().Window(); from != 0 || to != last {
		t.Fatalf("follower window [%d,%d], want [0,%d]", from, to, last)
	}
	for _, s := range []Strategy{DirectHop, DirectHopParallel, WorkSharing, WorkSharingParallel} {
		req := Request{
			Query:    Query{Algorithm: BFS, Source: 0},
			Strategy: s,
			Options:  Options{KeepValues: true},
		}
		want, err := pw.Run(ctx, req)
		if err != nil {
			t.Fatalf("%v primary watcher: %v", s, err)
		}
		got, err := f.Run(ctx, req)
		if err != nil {
			t.Fatalf("%v follower run: %v", s, err)
		}
		if got.Stale {
			t.Fatalf("%v: in-sync follower marked its result stale", s)
		}
		sameSnapshots(t, fmt.Sprintf("BFS/%v watcher", s), want, got, n)
	}
}

// TestFollowerWindowWidthSlides verifies the bounded-window follower:
// with WindowWidth set, replayed transitions slide the maintained window
// instead of growing it.
func TestFollowerWindowWidthSlides(t *testing.T) {
	gs, rs, f := replicatedPair(t, 51, 6, FollowerConfig{WindowWidth: 3})
	defer gs.Close()
	defer rs.Close()
	defer f.Close()
	n := f.Graph().NumSnapshots()
	from, to := f.Watcher().Window()
	if to != n-1 || to-from+1 != 3 {
		t.Fatalf("window [%d,%d] over %d snapshots, want width 3 ending at %d", from, to, n, n-1)
	}
	res, err := f.Run(context.Background(), Request{
		Query: Query{Algorithm: BFS, Source: 0}, Strategy: DirectHop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) != 3 {
		t.Fatalf("got %d snapshots, want the 3-wide window", len(res.Snapshots))
	}
}

// TestFailoverPromotion is the end-to-end failover path: promoting a
// follower durably claims a higher epoch, fences the old primary so it
// can never commit again (no double-commit, no split-brain), and hands
// back a fully writable GraphStore that outlives the Follower.
func TestFailoverPromotion(t *testing.T) {
	gs, rs, f := replicatedPair(t, 33, 3, FollowerConfig{})
	defer gs.Close()
	defer rs.Close()

	ngs, err := f.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if ngs.Epoch() == 0 {
		t.Fatal("promoted store kept epoch 0")
	}

	// The fence frame travels up the live session; the old primary must
	// observe it and refuse all further writes.
	deadline := time.Now().Add(5 * time.Second)
	for !gs.FencedByReplication() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !gs.FencedByReplication() {
		t.Fatal("old primary never fenced after promotion")
	}
	// The probe batch must pass in-memory validation so the write reaches
	// the store layer, where the fence refuses it.
	oldLatest, err := gs.Graph().Snapshot(gs.Graph().NumSnapshots() - 1)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := gen.Stream(gs.Graph().NumVertices(), oldLatest,
		gen.StreamConfig{Transitions: 1, Additions: 5, Deletions: 5, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gs.ApplyUpdates(probe[0].Additions, probe[0].Deletions); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced primary ApplyUpdates = %v, want ErrFenced", err)
	}

	// The promoted store ingests like any primary.
	latest, err := ngs.Graph().Snapshot(ngs.Graph().NumSnapshots() - 1)
	if err != nil {
		t.Fatal(err)
	}
	more, err := gen.Stream(ngs.Graph().NumVertices(), latest,
		gen.StreamConfig{Transitions: 1, Additions: 10, Deletions: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ngs.ApplyUpdates(more[0].Additions, more[0].Deletions); err != nil {
		t.Fatalf("promoted store rejects writes: %v", err)
	}

	// The spent Follower refuses reads and re-promotion.
	if _, err := f.Run(context.Background(), Request{Query: Query{Algorithm: BFS, Source: 0}, Strategy: DirectHop}); !errors.Is(err, ErrPromoted) {
		t.Fatalf("post-promotion Run = %v, want ErrPromoted", err)
	}
	if _, err := f.Promote(); !errors.Is(err, ErrPromoted) {
		t.Fatalf("second Promote = %v, want ErrPromoted", err)
	}
	if ready, detail := f.Ready(); ready || !strings.Contains(detail, "promoted") {
		t.Fatalf("promoted follower Ready = %v %q", ready, detail)
	}

	// Ownership transferred: the promoted store survives the Follower.
	if err := f.Close(); err != nil {
		t.Fatalf("follower close: %v", err)
	}
	if _, err := ngs.Graph().Run(context.Background(), Request{
		Query: Query{Algorithm: BFS, Source: 0}, Window: Window{From: 0, To: ngs.Graph().NumSnapshots() - 1},
		Strategy: DirectHop,
	}); err != nil {
		t.Fatalf("promoted store query after follower close: %v", err)
	}
	if err := ngs.Close(); err != nil {
		t.Fatalf("promoted store close: %v", err)
	}
}

// TestFollowerStalenessBudget drives the graceful-degradation contract:
// a follower with a staleness budget and an unreachable primary refuses
// reads with ErrStale (Ready flips false), serves them marked Stale when
// ServeStale is on, and serves normally when no budget is configured.
func TestFollowerStalenessBudget(t *testing.T) {
	// Build a durable replica by syncing once, then cut the primary away.
	dir := filepath.Join(t.TempDir(), "replica")
	gs, rs, f := replicatedPair(t, 19, 3, FollowerConfig{Dir: dir})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rs.Close()
	gs.Close()

	req := Request{Query: Query{Algorithm: BFS, Source: 0}, Strategy: DirectHop}
	reopen := func(cfg FollowerConfig) *Follower {
		t.Helper()
		cfg.Dir = dir
		cfg.Dial = downDial
		cfg.RetryBackoff = 50 * time.Millisecond
		f, err := Follow(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	t.Run("budget-fails-fast", func(t *testing.T) {
		f := reopen(FollowerConfig{MaxLagSeq: 1})
		defer f.Close()
		if ready, detail := f.Ready(); ready {
			t.Fatalf("unreachable-primary follower reports ready (%q)", detail)
		}
		_, err := f.Run(context.Background(), req)
		if !errors.Is(err, ErrStale) {
			t.Fatalf("Run = %v, want ErrStale", err)
		}
	})

	t.Run("serve-stale-marks", func(t *testing.T) {
		f := reopen(FollowerConfig{MaxLagSeq: 1, ServeStale: true})
		defer f.Close()
		res, err := f.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("ServeStale Run: %v", err)
		}
		if !res.Stale {
			t.Fatal("over-budget ServeStale result not marked Stale")
		}
		if len(res.Snapshots) == 0 {
			t.Fatal("stale result carries no snapshots")
		}
	})

	t.Run("no-budget-serves", func(t *testing.T) {
		f := reopen(FollowerConfig{})
		defer f.Close()
		if ready, detail := f.Ready(); !ready {
			t.Fatalf("budget-free follower not ready: %q", detail)
		}
		res, err := f.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("budget-free Run: %v", err)
		}
		if res.Stale {
			t.Fatal("budget-free result marked Stale")
		}
	})

	t.Run("empty-replica-awaits-bootstrap", func(t *testing.T) {
		f, err := Follow(FollowerConfig{
			Dir:          filepath.Join(t.TempDir(), "cold"),
			Dial:         downDial,
			RetryBackoff: 50 * time.Millisecond,
			MaxLagSeq:    1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if ready, detail := f.Ready(); ready || !strings.Contains(detail, "bootstrap") {
			t.Fatalf("cold follower Ready = %v %q", ready, detail)
		}
		if _, err := f.Run(context.Background(), req); !errors.Is(err, ErrStale) {
			t.Fatalf("cold Run = %v, want ErrStale", err)
		}
	})
}

// TestFollowerServeOps exercises the operational endpoint: liveness,
// lag-aware readiness, the lag JSON, and operator-driven promotion.
func TestFollowerServeOps(t *testing.T) {
	gs, rs, f := replicatedPair(t, 13, 3, FollowerConfig{})
	defer gs.Close()
	defer rs.Close()
	defer f.Close()

	m, err := f.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	base := "http://" + m.Addr()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, detail := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d %q on an in-sync follower", code, detail)
	}
	code, body := get("/lag")
	if code != http.StatusOK {
		t.Fatalf("/lag = %d", code)
	}
	var lag struct {
		Known   bool   `json:"known"`
		Seq     uint64 `json:"seq"`
		Windows int    `json:"windows"`
	}
	if err := json.Unmarshal([]byte(body), &lag); err != nil {
		t.Fatalf("/lag body %q: %v", body, err)
	}
	if !lag.Known || lag.Seq != 0 || lag.Windows != 0 {
		t.Fatalf("/lag = %+v on an in-sync follower", lag)
	}
	if code, _ := get("/promote"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /promote = %d, want 405", code)
	}

	resp, err := http.Post(base+"/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var promoted struct {
		Epoch        uint64 `json:"epoch"`
		Acknowledged uint64 `json:"acknowledged"`
	}
	err = json.NewDecoder(resp.Body).Decode(&promoted)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("POST /promote = %d decode=%v", resp.StatusCode, err)
	}
	if promoted.Epoch == 0 {
		t.Fatal("promotion response carries epoch 0")
	}
	ngs := f.Promoted()
	if ngs == nil {
		t.Fatal("Promoted() nil after POST /promote")
	}
	defer ngs.Close()
	if code, detail := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(detail, "promoted") {
		t.Fatalf("/readyz after promotion = %d %q, want 503 promoted", code, detail)
	}
	resp2, err := http.Post(base+"/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("second POST /promote = %d, want 409", resp2.StatusCode)
	}
}

// TestFollowerReopenServesOffline verifies that a follower reopening an
// existing replica mirrors the durable history before its first session:
// reads work immediately even though the primary is down.
func TestFollowerReopenServesOffline(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "replica")
	gs, rs, f := replicatedPair(t, 67, 4, FollowerConfig{Dir: dir})
	wantSnaps := f.Graph().NumSnapshots()
	want, err := f.Graph().Run(context.Background(), Request{
		Query: Query{Algorithm: BFS, Source: 0}, Window: Window{From: 0, To: wantSnaps - 1},
		Strategy: DirectHop, Options: Options{KeepValues: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	rs.Close()
	gs.Close()

	f2, err := Follow(FollowerConfig{Dir: dir, Dial: downDial, RetryBackoff: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Graph() == nil || f2.Graph().NumSnapshots() != wantSnaps {
		t.Fatalf("reopened follower mirrors %v snapshots, want %d", f2.Graph(), wantSnaps)
	}
	got, err := f2.Graph().Run(context.Background(), Request{
		Query: Query{Algorithm: BFS, Source: 0}, Window: Window{From: 0, To: wantSnaps - 1},
		Strategy: DirectHop, Options: Options{KeepValues: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameSnapshots(t, "offline reopen", want, got, f2.Graph().NumVertices())
}

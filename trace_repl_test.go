package commongraph

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"commongraph/internal/gen"
	"commongraph/internal/obs"
)

// tracedPair builds a primary/follower pair with separate injected
// tracers on each side — two processes in one test. Tracers use seeded
// ID sources so runs are reproducible.
func tracedPair(t *testing.T, seed uint64, transitions int) (*GraphStore, *ReplicationServer, *Follower, *Tracer, *Tracer) {
	t.Helper()
	tracerP := NewTracer(WithTraceIDSource(0xA11CE))
	tracerF := NewTracer(WithTraceIDSource(0xB0B))
	g, _ := buildEvolving(t, seed, transitions, 40, 40)
	gs, err := g.Persist(filepath.Join(t.TempDir(), "primary"))
	if err != nil {
		t.Fatal(err)
	}
	gs.SetTracer(tracerP)
	rs := gs.ServeReplication(nil, ReplicationOptions{
		Heartbeat: 2 * time.Millisecond,
		Trace:     tracerP,
	})
	f, err := Follow(FollowerConfig{
		Dir:          filepath.Join(t.TempDir(), "replica"),
		Dial:         pipeDial(rs),
		RetryBackoff: time.Millisecond,
		Trace:        tracerF,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFollowerSync(t, f, g.NumSnapshots())
	return gs, rs, f, tracerP, tracerF
}

// applyLive commits count fresh transitions on the primary; each commit
// records a store.commit root span whose trace context rides the
// replication wire.
func applyLive(t *testing.T, gs *GraphStore, count int, seed uint64) {
	t.Helper()
	g := gs.Graph()
	latest, err := g.Snapshot(g.NumSnapshots() - 1)
	if err != nil {
		t.Fatal(err)
	}
	more, err := gen.Stream(g.NumVertices(), latest,
		gen.StreamConfig{Transitions: count, Additions: 20, Deletions: 20, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range more {
		if _, err := gs.ApplyUpdates(tr.Additions, tr.Deletions); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStitchedTraceAcrossReplication is the PR acceptance trace: a
// follower query under live ingest yields ONE stitched Chrome trace in
// which the primary's store.commit and repl.ship spans and the
// follower's repl.replay and evaluate spans all share a TraceID — the
// commit's identity, carried across the wire in frame headers.
func TestStitchedTraceAcrossReplication(t *testing.T) {
	gs, rs, f, tracerP, tracerF := tracedPair(t, 7, 3)
	defer gs.Close()
	defer rs.Close()
	defer f.Close()

	// Live ingest while the follower session is up: these commits are the
	// traces that ship over the wire.
	applyLive(t, gs, 2, 19)
	waitFollowerSync(t, f, gs.Graph().NumSnapshots())

	// Follower read with no caller span: Run adopts the trace of the last
	// replayed commit, so the read links to the ingest that produced the
	// data it serves.
	if _, err := f.Run(context.Background(), Request{
		Query: Query{Algorithm: BFS, Source: 0}, Strategy: DirectHop,
	}); err != nil {
		t.Fatal(err)
	}

	// Index spans by name on each side. The primary's ship span ends only
	// after the frame is on the wire, so the follower can replay (and we
	// can query) before the ship event is recorded — poll briefly until
	// the primary side quiesces.
	spansByName := func(tr *Tracer) map[string][]obs.Event {
		m := map[string][]obs.Event{}
		for _, e := range tr.Events() {
			m[e.Name] = append(m[e.Name], e)
		}
		return m
	}
	foll := spansByName(tracerF)
	if len(foll["repl.replay"]) < 2 {
		t.Fatalf("follower replays traced: %d, want ≥2", len(foll["repl.replay"]))
	}
	if len(foll["evaluate"]) < 1 {
		t.Fatal("follower read span missing")
	}

	// The follower read must share the TraceID of the last live commit —
	// the whole chain commit → ship → replay → read is one trace.
	read := foll["evaluate"][len(foll["evaluate"])-1]
	if read.Trace == 0 {
		t.Fatal("read span has no trace")
	}
	inTrace := func(events []obs.Event, want TraceID) *obs.Event {
		for i := range events {
			if events[i].Trace == want {
				return &events[i]
			}
		}
		return nil
	}
	var prim map[string][]obs.Event
	var commit, ship, replay *obs.Event
	deadline := time.Now().Add(5 * time.Second)
	for {
		prim = spansByName(tracerP)
		commit = inTrace(prim["store.commit"], read.Trace)
		ship = inTrace(prim["repl.ship"], read.Trace)
		replay = inTrace(foll["repl.replay"], read.Trace)
		if commit != nil && ship != nil && replay != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s does not span the wire: commit=%v ship=%v replay=%v",
				read.Trace, commit != nil, ship != nil, replay != nil)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if len(prim["store.commit"]) < 2 {
		t.Fatalf("primary commits traced: %d, want ≥2", len(prim["store.commit"]))
	}
	// Parent lineage within the trace: ship's parent is the commit span,
	// replay's parent is the ship span.
	if ship.Parent != commit.ID {
		t.Errorf("ship parent %s, want commit span %s", ship.Parent, commit.ID)
	}
	if replay.Parent != ship.ID {
		t.Errorf("replay parent %s, want ship span %s", replay.Parent, ship.ID)
	}

	// The stitched export renders both processes into one viewer file
	// with the shared trace id on each event.
	var buf bytes.Buffer
	if err := WriteStitchedChromeTrace(&buf,
		TraceProcess{Name: "primary", Tracer: tracerP},
		TraceProcess{Name: "follower", Tracer: tracerF},
	); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("stitched trace not JSON: %v", err)
	}
	want := read.Trace.String()
	seen := map[string]map[int]bool{} // name -> pids carrying the shared trace
	for _, e := range out.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Args["trace_id"] == want {
			if seen[e.Name] == nil {
				seen[e.Name] = map[int]bool{}
			}
			seen[e.Name][e.Pid] = true
		}
	}
	for _, name := range []string{"store.commit", "repl.ship", "repl.replay", "evaluate"} {
		if len(seen[name]) == 0 {
			t.Errorf("stitched trace missing %s in trace %s", name, want)
		}
	}
	// commit/ship live in the primary process row, replay/evaluate in the
	// follower's — the stitch crosses process boundaries.
	for pid := range seen["store.commit"] {
		if seen["repl.replay"][pid] {
			t.Error("commit and replay rendered in the same process row")
		}
	}
}

// TestFailoverTraceLineage promotes a follower mid-trace: the promote
// span joins the trace of the last replayed commit, and the fence
// observed by the old primary records a repl.fenced span in that same
// trace — the whole failover is one causally-linked story across both
// processes, and the fence raises a "fenced" incident.
func TestFailoverTraceLineage(t *testing.T) {
	gs, rs, f, tracerP, tracerF := tracedPair(t, 13, 3)
	defer gs.Close()
	defer rs.Close()

	applyLive(t, gs, 1, 29)
	waitFollowerSync(t, f, gs.Graph().NumSnapshots())

	// Capture the fence incident dump instead of spraying test output.
	var sink bytes.Buffer
	prevSink := SetIncidentSink(&sink)
	defer SetIncidentSink(prevSink)

	fencedBefore := obs.IncidentsTotal("fenced").Value()
	ngs, err := f.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer ngs.Close()
	defer f.Close()

	deadline := time.Now().Add(5 * time.Second)
	for !gs.FencedByReplication() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !gs.FencedByReplication() {
		t.Fatal("old primary never fenced after promotion")
	}

	find := func(tr *Tracer, name string) *obs.Event {
		for _, e := range tr.Events() {
			if e.Name == name {
				ev := e
				return &ev
			}
		}
		return nil
	}
	// The fenced span ends on the primary's session goroutine; give it a
	// moment to record after the fence flag flips.
	for deadline := time.Now().Add(5 * time.Second); find(tracerP, "repl.fenced") == nil && time.Now().Before(deadline); {
		time.Sleep(2 * time.Millisecond)
	}
	promote := find(tracerF, "repl.promote")
	if promote == nil {
		t.Fatal("no repl.promote span on the follower")
	}
	if promote.Trace == 0 {
		t.Fatal("promote span has no trace")
	}
	// The promote joins the last replayed commit's trace...
	replays := 0
	for _, e := range tracerF.Events() {
		if e.Name == "repl.replay" && e.Trace == promote.Trace {
			replays++
		}
	}
	if replays == 0 {
		t.Errorf("promote trace %s does not contain a replayed commit", promote.Trace)
	}
	// ...and the fence lands on the OLD primary in the same trace: the
	// operator can follow promotion → fence across processes.
	fenced := find(tracerP, "repl.fenced")
	if fenced == nil {
		t.Fatal("no repl.fenced span on the fenced primary")
	}
	if fenced.Trace != promote.Trace {
		t.Errorf("fenced trace %s, promote trace %s — lineage broken", fenced.Trace, promote.Trace)
	}
	if fenced.Parent != promote.ID {
		t.Errorf("fenced parent %s, want promote span %s", fenced.Parent, promote.ID)
	}
	if got := obs.IncidentsTotal("fenced").Value() - fencedBefore; got < 1 {
		t.Errorf("fence raised %d incidents, want ≥1", got)
	}
}

// Package commongraph evaluates graph queries over evolving graphs — the
// CommonGraph system of Afarin et al., "CommonGraph: Graph Analytics on
// Evolving Data" (ASPLOS 2023).
//
// An evolving-graph query asks for a property (shortest paths, reachability,
// widest paths, …) at every snapshot of a graph across a time window.
// CommonGraph answers it by:
//
//  1. computing the query once on the common graph — the edges present in
//     every snapshot of the window — and reaching each snapshot with
//     additions only, converting expensive incremental deletions into cheap
//     incremental additions (Direct-Hop);
//  2. sharing addition batches among snapshot subsequences via the
//     Triangular Grid and a Steiner-tree evaluation schedule (Work-Sharing);
//  3. representing snapshots as an immutable base CSR plus small overlay
//     batches, eliminating graph mutation entirely.
//
// The package also contains a full reconstruction of the KickStarter
// streaming baseline (trimming-based incremental deletion over a mutable
// graph), used both as the comparison baseline and as the engine substrate.
//
// # Quick start
//
//	g := commongraph.New(4, []commongraph.Edge{{Src: 0, Dst: 1, W: 2}})
//	g.ApplyUpdates(additions, deletions) // snapshot 1
//	g.ApplyUpdates(more, gone)           // snapshot 2
//	res, err := g.Run(ctx, commongraph.Request{
//		Query:    commongraph.Query{Algorithm: commongraph.SSSP, Source: 0},
//		Window:   commongraph.Window{From: 0, To: 2},
//		Strategy: commongraph.WorkSharing,
//		Options:  commongraph.Options{KeepValues: true},
//	})
//	for _, s := range res.Snapshots {
//		fmt.Println(s.Index, s.Values)
//	}
//
// Five monotonic algorithms ship with the package (the paper's Table 3):
// BFS, SSSP, SSWP, SSNP, and Viterbi. Any monotonic vertex program
// implementing the internal Algorithm interface can be evaluated.
package commongraph

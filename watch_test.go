package commongraph

import (
	"net"
	"strings"
	"testing"
	"time"

	"commongraph/internal/faults"
)

func TestWatcherTracksGrowth(t *testing.T) {
	g, _ := buildEvolving(t, 301, 8, 30, 30)
	w, err := g.Watch(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if from, to := w.Window(); from != 0 || to != 3 {
		t.Fatalf("window [%d,%d]", from, to)
	}
	if w.CommonEdges() <= 0 {
		t.Fatal("no common edges")
	}
	q := Query{Algorithm: SSSP, Source: 0}
	for to := 4; to <= 8; to++ {
		if err := w.Append(); err != nil {
			t.Fatal(err)
		}
		res, err := w.Evaluate(q, DirectHop, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Must match a fresh evaluation of the same window.
		fresh, err := g.Evaluate(q, 0, to, DirectHop, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Snapshots) != len(fresh.Snapshots) {
			t.Fatalf("to=%d: %d vs %d snapshots", to, len(res.Snapshots), len(fresh.Snapshots))
		}
		for k := range res.Snapshots {
			if res.Snapshots[k].Checksum != fresh.Snapshots[k].Checksum ||
				res.Snapshots[k].Index != fresh.Snapshots[k].Index {
				t.Fatalf("to=%d snapshot %d differs from fresh evaluation", to, k)
			}
		}
	}
}

func TestWatcherSlide(t *testing.T) {
	g, _ := buildEvolving(t, 307, 8, 30, 30)
	w, err := g.Watch(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Algorithm: SSWP, Source: 0}
	for i := 0; i < 4; i++ {
		if err := w.Slide(); err != nil {
			t.Fatal(err)
		}
		from, to := w.Window()
		if to-from != 4 {
			t.Fatalf("slide changed width: [%d,%d]", from, to)
		}
		res, err := w.Evaluate(q, WorkSharing, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := g.Evaluate(q, from, to, WorkSharing, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for k := range res.Snapshots {
			if res.Snapshots[k].Checksum != fresh.Snapshots[k].Checksum {
				t.Fatalf("slide %d snapshot %d differs", i, k)
			}
		}
	}
}

func TestWatcherRejections(t *testing.T) {
	g, _ := buildEvolving(t, 311, 3, 20, 20)
	if _, err := g.Watch(2, 9); err == nil {
		t.Fatal("bad window accepted")
	}
	w, err := g.Watch(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(); err == nil {
		t.Fatal("append past the latest snapshot should fail")
	}
	if _, err := w.Evaluate(Query{Algorithm: BFS, Source: 0}, KickStarter, Options{}); err == nil {
		t.Fatal("watcher should reject the streaming strategy")
	}
	if _, err := w.Evaluate(Query{Source: 0}, DirectHop, Options{}); err == nil {
		t.Fatal("nil algorithm accepted")
	}
}

func TestWorkSharingParallelStrategy(t *testing.T) {
	g, _ := buildEvolving(t, 313, 6, 35, 35)
	q := Query{Algorithm: SSNP, Source: 0}
	seq, err := g.Evaluate(q, 0, 6, WorkSharing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := g.Evaluate(q, 0, 6, WorkSharingParallel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if par.Strategy.String() != "Work-Sharing(parallel)" {
		t.Fatalf("name %q", par.Strategy.String())
	}
	for k := range seq.Snapshots {
		if seq.Snapshots[k].Checksum != par.Snapshots[k].Checksum {
			t.Fatalf("snapshot %d differs", k)
		}
	}
	if par.MaxHopTime <= 0 {
		t.Fatal("parallel work sharing should report the longest subtree")
	}
}

func TestEvaluateMulti(t *testing.T) {
	g, _ := buildEvolving(t, 317, 5, 30, 30)
	queries := []Query{
		{Algorithm: BFS, Source: 0},
		{Algorithm: SSSP, Source: 3},
		{Algorithm: Viterbi, Source: 0},
	}
	multi, err := g.EvaluateMulti(queries, 0, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != 3 {
		t.Fatalf("results=%d", len(multi))
	}
	for i, q := range queries {
		single, err := g.Evaluate(q, 0, 5, WorkSharing, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for k := range single.Snapshots {
			if single.Snapshots[k].Checksum != multi[i].Snapshots[k].Checksum {
				t.Fatalf("query %d snapshot %d differs", i, k)
			}
		}
	}
	// Validation.
	if _, err := g.EvaluateMulti([]Query{{Source: 0}}, 0, 5, Options{}); err == nil {
		t.Fatal("nil algorithm accepted")
	}
	if _, err := g.EvaluateMulti(queries, 0, 99, Options{}); err == nil {
		t.Fatal("bad window accepted")
	}
}

func TestIndependentStrategyAgrees(t *testing.T) {
	g, _ := buildEvolving(t, 331, 5, 30, 30)
	q := Query{Algorithm: SSSP, Source: 0}
	ind, err := g.Evaluate(q, 0, 5, Independent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ind.Strategy != Independent || ind.Strategy.String() != "Independent" {
		t.Fatalf("strategy metadata wrong: %v", ind.Strategy)
	}
	ks, err := g.Evaluate(q, 0, 5, KickStarter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range ind.Snapshots {
		if ind.Snapshots[k].Checksum != ks.Snapshots[k].Checksum {
			t.Fatalf("independent disagrees at snapshot %d", k)
		}
		if ind.Snapshots[k].Index != k {
			t.Fatalf("snapshot %d has index %d", k, ind.Snapshots[k].Index)
		}
	}
	if ind.AdditionsProcessed != 0 || ind.DeletionsProcessed != 0 {
		t.Fatal("independent evaluation streams no batches")
	}
	// Sub-window indices must be absolute.
	sub, err := g.Evaluate(q, 2, 4, Independent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Snapshots[0].Index != 2 {
		t.Fatalf("sub-window index %d", sub.Snapshots[0].Index)
	}
}

// TestWatcherCloseInterruptsRetryBackoff pins the maintenance-retry
// liveness contract: a maintenance step backing off between transient
// retries sleeps on the watcher's lifecycle context, so Close interrupts
// the wait immediately instead of letting it run its full duration.
func TestWatcherCloseInterruptsRetryBackoff(t *testing.T) {
	g, _ := buildEvolving(t, 271, 4, 20, 20)
	w, err := g.Watch(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// An hour-long backoff: the test passes only if Close cuts it short.
	w.SetRetry(RetryPolicy{Attempts: 3, Backoff: time.Hour})
	defer faults.Arm(&faults.Plan{Specs: []faults.Spec{
		{Point: faults.CoreMaintainAppend, Transient: true, Times: 5},
	}})()
	done := make(chan error, 1)
	go func() { done <- w.Append() }()
	// Let Append fail its first attempt and enter the backoff sleep.
	deadline := time.Now().Add(5 * time.Second)
	for faults.Hits(faults.CoreMaintainAppend) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if faults.Hits(faults.CoreMaintainAppend) == 0 {
		t.Fatal("injected maintenance fault never fired")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case aerr := <-done:
		if aerr == nil {
			t.Fatal("Append succeeded although every attempt was set to fail")
		}
		if !strings.Contains(aerr.Error(), "interrupted by Close") {
			t.Fatalf("Append error %v, want the interrupted-by-Close wrap", aerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Append still parked in retry backoff after Close")
	}
}

// TestMetricsServerCloseUnblocksIdleConn is the regression test for the
// ops-server hardening: Close severs connections that never sent a
// request, so a stalled client cannot keep shutdown from completing.
func TestMetricsServerCloseUnblocksIdleConn(t *testing.T) {
	g, _ := buildEvolving(t, 281, 2, 10, 10)
	w, err := g.Watch(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	m, err := w.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Open a raw connection and send nothing — an idle client.
	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, rerr := conn.Read(buf)
		readErr <- rerr
	}()
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case rerr := <-readErr:
		if rerr == nil {
			t.Fatal("idle connection received data instead of being severed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close left the idle connection open")
	}
}

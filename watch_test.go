package commongraph

import (
	"testing"
)

func TestWatcherTracksGrowth(t *testing.T) {
	g, _ := buildEvolving(t, 301, 8, 30, 30)
	w, err := g.Watch(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if from, to := w.Window(); from != 0 || to != 3 {
		t.Fatalf("window [%d,%d]", from, to)
	}
	if w.CommonEdges() <= 0 {
		t.Fatal("no common edges")
	}
	q := Query{Algorithm: SSSP, Source: 0}
	for to := 4; to <= 8; to++ {
		if err := w.Append(); err != nil {
			t.Fatal(err)
		}
		res, err := w.Evaluate(q, DirectHop, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Must match a fresh evaluation of the same window.
		fresh, err := g.Evaluate(q, 0, to, DirectHop, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Snapshots) != len(fresh.Snapshots) {
			t.Fatalf("to=%d: %d vs %d snapshots", to, len(res.Snapshots), len(fresh.Snapshots))
		}
		for k := range res.Snapshots {
			if res.Snapshots[k].Checksum != fresh.Snapshots[k].Checksum ||
				res.Snapshots[k].Index != fresh.Snapshots[k].Index {
				t.Fatalf("to=%d snapshot %d differs from fresh evaluation", to, k)
			}
		}
	}
}

func TestWatcherSlide(t *testing.T) {
	g, _ := buildEvolving(t, 307, 8, 30, 30)
	w, err := g.Watch(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Algorithm: SSWP, Source: 0}
	for i := 0; i < 4; i++ {
		if err := w.Slide(); err != nil {
			t.Fatal(err)
		}
		from, to := w.Window()
		if to-from != 4 {
			t.Fatalf("slide changed width: [%d,%d]", from, to)
		}
		res, err := w.Evaluate(q, WorkSharing, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := g.Evaluate(q, from, to, WorkSharing, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for k := range res.Snapshots {
			if res.Snapshots[k].Checksum != fresh.Snapshots[k].Checksum {
				t.Fatalf("slide %d snapshot %d differs", i, k)
			}
		}
	}
}

func TestWatcherRejections(t *testing.T) {
	g, _ := buildEvolving(t, 311, 3, 20, 20)
	if _, err := g.Watch(2, 9); err == nil {
		t.Fatal("bad window accepted")
	}
	w, err := g.Watch(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(); err == nil {
		t.Fatal("append past the latest snapshot should fail")
	}
	if _, err := w.Evaluate(Query{Algorithm: BFS, Source: 0}, KickStarter, Options{}); err == nil {
		t.Fatal("watcher should reject the streaming strategy")
	}
	if _, err := w.Evaluate(Query{Source: 0}, DirectHop, Options{}); err == nil {
		t.Fatal("nil algorithm accepted")
	}
}

func TestWorkSharingParallelStrategy(t *testing.T) {
	g, _ := buildEvolving(t, 313, 6, 35, 35)
	q := Query{Algorithm: SSNP, Source: 0}
	seq, err := g.Evaluate(q, 0, 6, WorkSharing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := g.Evaluate(q, 0, 6, WorkSharingParallel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if par.Strategy.String() != "Work-Sharing(parallel)" {
		t.Fatalf("name %q", par.Strategy.String())
	}
	for k := range seq.Snapshots {
		if seq.Snapshots[k].Checksum != par.Snapshots[k].Checksum {
			t.Fatalf("snapshot %d differs", k)
		}
	}
	if par.MaxHopTime <= 0 {
		t.Fatal("parallel work sharing should report the longest subtree")
	}
}

func TestEvaluateMulti(t *testing.T) {
	g, _ := buildEvolving(t, 317, 5, 30, 30)
	queries := []Query{
		{Algorithm: BFS, Source: 0},
		{Algorithm: SSSP, Source: 3},
		{Algorithm: Viterbi, Source: 0},
	}
	multi, err := g.EvaluateMulti(queries, 0, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != 3 {
		t.Fatalf("results=%d", len(multi))
	}
	for i, q := range queries {
		single, err := g.Evaluate(q, 0, 5, WorkSharing, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for k := range single.Snapshots {
			if single.Snapshots[k].Checksum != multi[i].Snapshots[k].Checksum {
				t.Fatalf("query %d snapshot %d differs", i, k)
			}
		}
	}
	// Validation.
	if _, err := g.EvaluateMulti([]Query{{Source: 0}}, 0, 5, Options{}); err == nil {
		t.Fatal("nil algorithm accepted")
	}
	if _, err := g.EvaluateMulti(queries, 0, 99, Options{}); err == nil {
		t.Fatal("bad window accepted")
	}
}

func TestIndependentStrategyAgrees(t *testing.T) {
	g, _ := buildEvolving(t, 331, 5, 30, 30)
	q := Query{Algorithm: SSSP, Source: 0}
	ind, err := g.Evaluate(q, 0, 5, Independent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ind.Strategy != Independent || ind.Strategy.String() != "Independent" {
		t.Fatalf("strategy metadata wrong: %v", ind.Strategy)
	}
	ks, err := g.Evaluate(q, 0, 5, KickStarter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range ind.Snapshots {
		if ind.Snapshots[k].Checksum != ks.Snapshots[k].Checksum {
			t.Fatalf("independent disagrees at snapshot %d", k)
		}
		if ind.Snapshots[k].Index != k {
			t.Fatalf("snapshot %d has index %d", k, ind.Snapshots[k].Index)
		}
	}
	if ind.AdditionsProcessed != 0 || ind.DeletionsProcessed != 0 {
		t.Fatal("independent evaluation streams no batches")
	}
	// Sub-window indices must be absolute.
	sub, err := g.Evaluate(q, 2, 4, Independent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Snapshots[0].Index != 2 {
		t.Fatalf("sub-window index %d", sub.Snapshots[0].Index)
	}
}

package commongraph

import (
	"commongraph/internal/graph"
	"commongraph/internal/ingest"
)

// Ingestor feeds a raw interleaved update stream into the evolving graph,
// cutting it into snapshots every batchSize raw updates (§4.1's stream of
// batches). Within a window, an edge added and then deleted (or deleted
// and re-added) nets to nothing; a window whose updates fully cancel does
// not create a snapshot.
type Ingestor struct {
	b *ingest.Batcher
	// release frees the durable store's single-ingestor slot on Close
	// (nil for purely in-memory ingestors).
	release func()
}

// Ingestor returns a stream front-end for the graph. Updates must be
// consistent with the graph's latest snapshot when each window closes
// (deleting absent or adding present edges fails the window).
//
// On a durable graph whose store has been fenced by a promoted
// follower, the window commit fails with an error wrapping ErrFenced
// before any bytes reach the WAL; the in-memory graph is likewise left
// untouched, so a fenced ex-primary can never diverge from the new
// authority's history.
func (g *EvolvingGraph) Ingestor(batchSize int) (*Ingestor, error) {
	b, err := ingest.NewBatcher(func(adds, dels graph.EdgeList) error {
		_, err := g.store.NewVersion(adds, dels)
		return err
	}, batchSize)
	if err != nil {
		return nil, err
	}
	return &Ingestor{b: b}, nil
}

// Add records an edge insertion.
func (i *Ingestor) Add(e Edge) error {
	return i.b.Push(ingest.Update{Op: ingest.Add, Edge: e})
}

// Delete records an edge removal.
func (i *Ingestor) Delete(e Edge) error {
	return i.b.Push(ingest.Update{Op: ingest.Delete, Edge: e})
}

// Flush closes the current window early, creating a snapshot from
// whatever updates are pending.
func (i *Ingestor) Flush() error { return i.b.Flush() }

// Close flushes the tail window and ends the stream; further updates
// fail. On a durable ingestor a clean Close leaves nothing to replay,
// distinguishing a finished stream from a crashed one, and releases the
// store's ingestor slot so a new Ingestor may be created.
func (i *Ingestor) Close() error {
	if err := i.b.Close(); err != nil {
		return err
	}
	if i.release != nil {
		i.release()
		i.release = nil
	}
	return nil
}

// Pending reports raw updates awaiting the next window boundary.
func (i *Ingestor) Pending() int { return i.b.Pending() }

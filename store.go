package commongraph

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"commongraph/internal/graph"
	"commongraph/internal/ingest"
	"commongraph/internal/obs"
	"commongraph/internal/store"
)

// GraphStore binds an EvolvingGraph to a durable on-disk store: every
// accepted transition is committed to disk (binary segments plus an
// ingest write-ahead log) before the in-memory graph advances, so a
// crash at any point reopens to a consistent prefix of the accepted
// history. See DESIGN.md "Persistence" for the on-disk protocol.
type GraphStore struct {
	g *EvolvingGraph
	s *store.Store

	mu         sync.Mutex
	trace      *obs.Tracer     // explicit tracer override (SetTracer)
	pending    []ingest.Update // in-flight window recovered from the WAL
	pendingSeq uint64          // journal sequence of pending[0]
	ingesting  bool
	// compactMu serializes background compactions so successive window
	// slides fold in order instead of aborting each other.
	compactMu sync.Mutex
}

// SetTracer overrides the tracer commit spans record on (default: the
// process's ambient tracer, obs.Active()). Tests inject one per process
// side when stitching a primary and follower running in one test.
func (gs *GraphStore) SetTracer(t *Tracer) {
	gs.mu.Lock()
	gs.trace = t
	gs.mu.Unlock()
}

// tracerLocked resolves the commit tracer; callers hold gs.mu.
func (gs *GraphStore) tracerLocked() *obs.Tracer {
	if gs.trace != nil {
		return gs.trace
	}
	return obs.Active()
}

// Persist writes the graph's entire current history (base snapshot plus
// every transition) into dir as a new durable store and returns the
// bound handle. The directory must not already hold a store. From then
// on, mutations should go through the returned GraphStore so disk and
// memory stay in lockstep.
func (g *EvolvingGraph) Persist(dir string) (*GraphStore, error) {
	base, err := g.store.GetVersion(0)
	if err != nil {
		return nil, err
	}
	s, err := store.Create(dir, g.NumVertices(), base)
	if err != nil {
		return nil, err
	}
	for t := 0; t < g.NumSnapshots()-1; t++ {
		adds := g.store.Additions(t).Edges()
		dels := g.store.Deletions(t).Edges()
		if err := s.AppendBatch(adds, dels, 0); err != nil {
			s.Close()
			return nil, fmt.Errorf("commongraph: persist transition %d: %w", t, err)
		}
	}
	return &GraphStore{g: g, s: s}, nil
}

// StoreOptions configures how OpenStoreWith opens a durable store.
type StoreOptions struct {
	// MapSegments memory-maps the binary snapshot segments read-only
	// instead of materializing them on the heap — the out-of-core open
	// path: a cold open touches only the pages the load actually reads,
	// and the OS pages the rest in on demand. Segment structure is
	// validated eagerly (a torn or hostile file cannot steer reads out
	// of the mapping); full CRC checksums are deferred to
	// VerifyMapped. Mapped views stay valid until Close; on platforms
	// without mmap support the flag quietly falls back to materializing.
	MapSegments bool
}

// OpenStore opens the durable store at dir, running crash recovery
// (torn segment and WAL tails are discarded, the in-flight ingest
// window is recovered), and materializes its snapshots as the bound
// EvolvingGraph. The graph's snapshot 0 is the store's oldest retained
// snapshot (compaction folds older ones away); Origin reports its
// absolute version.
func OpenStore(dir string) (*GraphStore, error) {
	return OpenStoreWith(dir, StoreOptions{})
}

// OpenStoreWith is OpenStore with explicit store options; see
// StoreOptions for the out-of-core open path.
func OpenStoreWith(dir string, opts StoreOptions) (*GraphStore, error) {
	s, err := store.OpenWith(dir, store.Options{MapSegments: opts.MapSegments})
	if err != nil {
		return nil, err
	}
	snap, err := s.Snapshot()
	if err != nil {
		s.Close()
		return nil, err
	}
	gs := &GraphStore{g: FromStore(snap), s: s}
	if raw := s.TakePending(); len(raw) > 0 {
		gs.pendingSeq = raw[0].Seq
		gs.pending = make([]ingest.Update, len(raw))
		for i, r := range raw {
			op := ingest.Add
			if r.Op == store.RawDelete {
				op = ingest.Delete
			}
			gs.pending[i] = ingest.Update{Op: op, Edge: r.Edge}
		}
	}
	return gs, nil
}

// OpenEvolvingGraph loads the store at dir read-only: the materialized
// graph is returned and the store handle is closed. Updates applied to
// the returned graph are not persisted; use OpenStore to keep writing.
func OpenEvolvingGraph(dir string) (*EvolvingGraph, error) {
	gs, err := OpenStore(dir)
	if err != nil {
		return nil, err
	}
	g := gs.Graph()
	if err := gs.Close(); err != nil {
		return nil, err
	}
	return g, nil
}

// Graph returns the bound in-memory graph. Evaluations read it
// directly; mutations must go through the GraphStore.
func (gs *GraphStore) Graph() *EvolvingGraph { return gs.g }

// Mapped reports whether this store serves segments from read-only
// memory maps (StoreOptions.MapSegments on a platform with mmap).
func (gs *GraphStore) Mapped() bool { return gs.s.Mapped() }

// VerifyMapped scrubs the CRC checksums of every currently mapped
// segment — the integrity pass the mapped open path defers — and
// returns how many segments it verified. Scrubbing faults in every
// page of each unverified segment; run it off the query path. On an
// unmapped store it verifies nothing and returns (0, nil).
func (gs *GraphStore) VerifyMapped() (int, error) { return gs.s.VerifyMapped() }

// Origin returns the absolute version number of the bound graph's
// snapshot 0 — nonzero once compaction has folded old snapshots away.
func (gs *GraphStore) Origin() int { return gs.s.Origin() }

// Acknowledged returns the journal sequence of the last raw update
// durably folded into a snapshot (the WAL commit pointer). Together with
// Recovered it tells a resuming producer where to restart after a crash:
// updates with sequence at or below Acknowledged are inside snapshots,
// the next Recovered updates replay automatically into the first
// Ingestor, and everything later was never acknowledged and must be
// re-sent.
func (gs *GraphStore) Acknowledged() uint64 { return gs.s.WALSeq() }

// Recovered reports how many raw updates of an in-flight ingest window
// crash recovery found; they replay into the first Ingestor created.
func (gs *GraphStore) Recovered() int {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return len(gs.pending)
}

// ApplyUpdates is EvolvingGraph.ApplyUpdates with durability: the
// transition is validated against the latest snapshot, committed to
// disk, and only then applied in memory. The returned version is the
// in-memory index; add Origin for the absolute version.
func (gs *GraphStore) ApplyUpdates(additions, deletions []Edge) (version int, err error) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.commit(graph.EdgeList(additions).Clone().Canonicalize(),
		graph.EdgeList(deletions).Clone().Canonicalize(), 0)
}

// commit is the single write path: dry-run validate against memory,
// commit durably, then mutate memory. Disk leads memory, so an
// acknowledged transition is always on disk, and a crash between the
// two steps reopens with the transition present — never half-applied.
// adds and dels must be canonical. A lastSeq > 0 also advances the WAL
// commit pointer (the journaled ingest path); empty batches then still
// commit, consuming a cancelled window's WAL records.
func (gs *GraphStore) commit(adds, dels graph.EdgeList, lastSeq uint64) (int, error) {
	if len(adds) == 0 && len(dels) == 0 {
		if lastSeq > 0 {
			return 0, gs.s.AppendBatch(nil, nil, lastSeq)
		}
		return 0, fmt.Errorf("commongraph: empty update batch")
	}
	// The commit span is the root of the ingest trace: replication ship
	// spans (and through them follower replay and read spans) join it via
	// the store's commit-trace table.
	sp := gs.tracerLocked().StartSpan("store.commit",
		obs.Int("adds", len(adds)), obs.Int("dels", len(dels)))
	if err := gs.g.store.CheckBatch(adds, dels); err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
		sp.End()
		return 0, err
	}
	// Note the trace BEFORE the append: AppendBatch wakes the replication
	// ship loop, which looks the commit trace up by transition index — a
	// note after the wake-up races and ships an unlinked frame. A failed
	// append leaves a harmless entry for a transition that never existed
	// (the bucket is overwritten when that index commits for real).
	transition := gs.s.Transitions()
	gs.s.NoteCommitTrace(transition, sp.Context())
	if err := gs.s.AppendBatch(adds, dels, lastSeq); err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
		sp.End()
		if errors.Is(err, store.ErrFenced) {
			obs.Incident("fenced", err)
		}
		return 0, err
	}
	v, err := gs.g.store.NewVersion(adds, dels)
	if err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
	} else {
		sp.SetAttr(obs.Int("version", v))
	}
	sp.End()
	return v, err
}

// Ingestor returns a durable stream front-end: every raw update is
// appended to the store's WAL (fsynced) before it is acknowledged, and
// each closed window commits as one transition. If crash recovery found
// an in-flight window, it replays into this batcher first — the batcher
// resumes exactly where the crashed process stopped. At most one
// Ingestor may be active per GraphStore.
func (gs *GraphStore) Ingestor(batchSize int) (*Ingestor, error) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.ingesting {
		return nil, fmt.Errorf("commongraph: store already has an active ingestor")
	}
	b, err := ingest.NewJournaledBatcher(func(adds, dels graph.EdgeList, lastSeq uint64) error {
		gs.mu.Lock()
		defer gs.mu.Unlock()
		_, err := gs.commit(adds, dels, lastSeq)
		return err
	}, batchSize, journal{gs.s})
	if err != nil {
		return nil, err
	}
	// Reserve the slot before dropping the lock for Seed, so a concurrent
	// Ingestor call cannot slip in mid-replay and hand out a second
	// active ingestor.
	gs.ingesting = true
	if len(gs.pending) > 0 {
		pending, seq := gs.pending, gs.pendingSeq
		gs.pending, gs.pendingSeq = nil, 0
		// Seed without holding gs.mu: a recovered window that closes
		// immediately commits through the sink above.
		gs.mu.Unlock()
		err := b.Seed(seq, pending...)
		gs.mu.Lock()
		if err != nil {
			// The batcher retains whatever it could not commit; copy that
			// back so a retried Ingestor replays it instead of durably
			// losing updates Recovered() promised were replayable.
			gs.pendingSeq, gs.pending = b.PendingWindow()
			gs.ingesting = false
			return nil, fmt.Errorf("commongraph: replay recovered window: %w", err)
		}
	}
	return &Ingestor{b: b, release: func() {
		gs.mu.Lock()
		gs.ingesting = false
		gs.mu.Unlock()
	}}, nil
}

// journal adapts the durable store's WAL to the ingest.Journal hook.
type journal struct{ s *store.Store }

func (j journal) Append(updates []ingest.Update) (uint64, error) {
	raw := make([]store.RawUpdate, len(updates))
	for i, u := range updates {
		op := store.RawAdd
		if u.Op == ingest.Delete {
			op = store.RawDelete
		}
		raw[i] = store.RawUpdate{Op: op, Edge: u.Edge}
	}
	if err := j.s.Journal(raw); err != nil {
		return 0, err
	}
	return raw[len(raw)-1].Seq, nil
}

// Compact folds all snapshots below the given in-memory version into
// the store's base segment — the slide compaction: once a maintained
// window has moved past those snapshots, no query will ask for them.
// The in-memory graph keeps its full loaded history (its indices do not
// shift); the fold takes effect at the next OpenStore. Live segments
// are never mutated; a crash mid-compaction reopens on the old base.
func (gs *GraphStore) Compact(beforeVersion int) error {
	gs.compactMu.Lock()
	defer gs.compactMu.Unlock()
	return gs.s.CompactTo(gs.s.Origin() + beforeVersion)
}

// CompactContext is Compact gated on a context: cancellation is checked
// after the compaction slot is acquired, so folds still queued behind a
// running one are skipped once ctx is cancelled (a fold already inside
// the store completes — segment swaps are atomic and never torn by
// cancellation). This is the entry point Watcher.Close relies on to keep
// background slide compactions from outliving the watcher.
func (gs *GraphStore) CompactContext(ctx context.Context, beforeVersion int) error {
	gs.compactMu.Lock()
	defer gs.compactMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	return gs.s.CompactTo(gs.s.Origin() + beforeVersion)
}

// Close releases the store's file handles. The in-memory graph remains
// usable for evaluation.
func (gs *GraphStore) Close() error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.s.Close()
}

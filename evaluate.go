package commongraph

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"commongraph/internal/core"
	"commongraph/internal/engine"
	"commongraph/internal/kickstarter"
	"commongraph/internal/obs"
)

// Strategy selects how a window of snapshots is evaluated.
type Strategy int

const (
	// KickStarter is the streaming baseline: evaluate the first snapshot
	// from scratch, then stream each transition's additions and deletions
	// in sequence, mutating the graph in place and trimming on deletions.
	KickStarter Strategy = iota
	// Independent evaluates every snapshot from scratch on its own
	// materialized graph — §1's "straightforward approach", kept as the
	// naive baseline and a correctness oracle at scale.
	Independent
	// DirectHop solves the common graph once and reaches each snapshot
	// independently with one addition batch (§3.1). No deletions, no
	// mutation.
	DirectHop
	// DirectHopParallel is DirectHop with all hops run concurrently
	// (the paper's Table 5 configuration).
	DirectHopParallel
	// WorkSharing evaluates along the Steiner-tree schedule over the
	// Triangular Grid, sharing addition batches among snapshot
	// subsequences (§3.2, Algorithm 1).
	WorkSharing
	// WorkSharingParallel executes the schedule's root subtrees
	// concurrently — the parallelization of work sharing the paper notes
	// as future work in §5.
	WorkSharingParallel
)

// String names the strategy as the paper does.
func (s Strategy) String() string {
	switch s {
	case KickStarter:
		return "KickStarter"
	case Independent:
		return "Independent"
	case DirectHop:
		return "Direct-Hop"
	case DirectHopParallel:
		return "Direct-Hop(parallel)"
	case WorkSharing:
		return "Work-Sharing"
	case WorkSharingParallel:
		return "Work-Sharing(parallel)"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Slug names the strategy as a metric label value — the stable vocabulary
// of the commongraph_*_total{strategy=...} series and of trace span
// attributes (DESIGN.md "Observability").
func (s Strategy) Slug() string {
	switch s {
	case KickStarter:
		return "kickstarter"
	case Independent:
		return "independent"
	case DirectHop:
		return "direct-hop"
	case DirectHopParallel:
		return "direct-hop-parallel"
	case WorkSharing:
		return "work-sharing"
	case WorkSharingParallel:
		return "work-sharing-parallel"
	default:
		return fmt.Sprintf("strategy-%d", int(s))
	}
}

// ParseStrategy parses a strategy name: the Slug() form ("direct-hop"),
// the paper's String() form ("Direct-Hop"), or a short alias (ks, indep,
// dh, dhp, ws, wsp). Matching is case-insensitive, so every value either
// method prints round-trips back to its Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "kickstarter", "ks":
		return KickStarter, nil
	case "independent", "indep":
		return Independent, nil
	case "direct-hop", "dh":
		return DirectHop, nil
	case "direct-hop-parallel", "direct-hop(parallel)", "dhp":
		return DirectHopParallel, nil
	case "work-sharing", "ws":
		return WorkSharing, nil
	case "work-sharing-parallel", "work-sharing(parallel)", "wsp":
		return WorkSharingParallel, nil
	}
	return 0, fmt.Errorf("commongraph: unknown strategy %q (want one of %s)", s, strategyNames())
}

// Strategies returns all evaluation strategies in declaration order.
func Strategies() []Strategy {
	return []Strategy{KickStarter, Independent, DirectHop, DirectHopParallel, WorkSharing, WorkSharingParallel}
}

func strategyNames() string {
	names := make([]string, 0, 6)
	for _, s := range Strategies() {
		names = append(names, s.Slug())
	}
	return strings.Join(names, ", ")
}

// SchedulerMode mirrors the engine's §4.3 scheduler policy.
type SchedulerMode = engine.Mode

// Scheduler modes: Auto switches between Sync and Async on batch size.
const (
	Auto  = engine.Auto
	Sync  = engine.Sync
	Async = engine.Async
)

// Options tunes an evaluation.
type Options struct {
	// Workers bounds engine parallelism (0 = GOMAXPROCS).
	Workers int
	// Scheduler selects the engine scheduling policy (default Auto).
	Scheduler SchedulerMode
	// AsyncWorkers bounds the parallel width of the engine's asynchronous
	// worklist (the small-batch path). 0 or 1 keeps the sequential drain;
	// larger values let incremental passes use cores. Values are exact
	// either way — monotonic fixpoints are schedule-independent.
	AsyncWorkers int
	// Shards routes engine passes through the sharded executor
	// (internal/shard): the vertex space splits into that many
	// contiguous degree-balanced ranges, each with its own frontier,
	// cross-shard edges flowing through per-shard inboxes with work
	// stealing between shards. 0 or 1 keeps the unsharded engine.
	// Values are exact at every shard count — monotonic fixpoints are
	// schedule-independent — as the differential tests assert. Applies
	// to the CommonGraph strategies and Independent; KickStarter's
	// mutable adjacency has no flat CSR form and always runs unsharded.
	Shards int
	// KeepValues retains full per-snapshot value arrays in the result.
	KeepValues bool
	// Parallelism bounds concurrent hops for DirectHopParallel
	// (0 = one goroutine per snapshot).
	Parallelism int
	// OptimalSchedule makes the Work-Sharing strategies solve the
	// Triangular Grid Steiner problem exactly (interval DP) instead of
	// with the paper's greedy Algorithm 1; the resulting schedules stream
	// substantially fewer additions on wide windows at a higher one-off
	// scheduling cost.
	OptimalSchedule bool
	// Context cancels the evaluation cooperatively: deadlines and client
	// disconnects are observed at every schedule-edge boundary, so the
	// work stops within one edge of the cancellation. Nil means
	// context.Background() — never cancelled.
	//
	// Deprecated: pass the context to Run instead. Run overwrites this
	// field with its context parameter; only the deprecated Evaluate
	// entry points still read it.
	Context context.Context
	// Degrade makes WorkSharingParallel survive a failed schedule
	// subtree (an error or a contained panic): the subtree's snapshots
	// are recomputed via Direct-Hop from the base state and the Result
	// is marked Degraded, instead of the whole query failing. See
	// DESIGN.md "Failure semantics" for the exact contract.
	Degrade bool
	// Trace, when non-nil, records the evaluation's span tree on this
	// tracer: one root "evaluate" span per query with schedule-level
	// children (common.solve, hop, schedule.edge, subtree, transitions)
	// down to engine passes — never per-vertex work. Nil falls back to
	// the process tracer armed by COMMONGRAPH_TRACE (EnvTracer), else to
	// the always-on ring-only flight recorder, whose completed root spans
	// land in a bounded ring instead of an event buffer.
	Trace *Tracer
	// Plan, when non-nil, shares work with every other evaluation using
	// the same cache: window representations, Triangular-Grid schedules,
	// and — the important one — solved common-graph states, so concurrent
	// queries with overlapping windows do ~1x the common-graph work
	// between them (see PlanCache). Applies to the CommonGraph strategies
	// only; KickStarter and Independent ignore it.
	Plan *PlanCache
}

// tracer resolves the evaluation's tracer: the explicit option, else the
// process ambient tracer (COMMONGRAPH_TRACE, else the flight recorder —
// nil only when flight recording is globally disabled).
func (o Options) tracer() *obs.Tracer {
	if o.Trace != nil {
		return o.Trace
	}
	return obs.Active()
}

func (o Options) engine() engine.Options {
	return engine.Options{Workers: o.Workers, Mode: o.Scheduler, AsyncWorkers: o.AsyncWorkers, Shards: o.Shards}
}

// context resolves the evaluation context uniformly: every entry point
// (Evaluate, EvaluateMulti, Watcher.Evaluate) goes through this helper, so
// a nil Options.Context always means "never cancelled" rather than a nil
// dereference somewhere down the stack.
func (o Options) context() context.Context {
	if o.Context == nil {
		return context.Background() //cgvet:ignore ctxflow -- the documented nil-Options.Context meaning is "never cancelled"; this helper is the single place that decision lives
	}
	return o.Context
}

// config builds the core configuration for one query. Centralizing this
// keeps every entry point passing the full option set — Parallelism and
// OptimalSchedule used to be silently dropped on the EvaluateMulti path.
func (o Options) config(q Query) core.Config {
	return core.Config{
		Algo:            q.Algorithm,
		Source:          q.Source,
		Engine:          o.engine(),
		KeepValues:      o.KeepValues,
		Parallelism:     o.Parallelism,
		OptimalSchedule: o.OptimalSchedule,
		Ctx:             o.context(),
		Degrade:         o.Degrade,
	}
}

// Query is a standing query: an algorithm and its source vertex.
type Query struct {
	Algorithm Algorithm
	Source    VertexID
}

// SnapshotResult is the query outcome at one snapshot.
type SnapshotResult struct {
	// Index is the absolute snapshot index in the evolving graph.
	Index int
	// Reached counts vertices with a non-identity value.
	Reached int
	// Checksum fingerprints the full value array.
	Checksum uint64
	// Values holds per-vertex results when Options.KeepValues is set.
	Values []Value
}

// Timings attributes evaluation wall time to phases.
type Timings struct {
	// InitialCompute is the from-scratch solve (first snapshot for
	// KickStarter; common graph otherwise).
	InitialCompute time.Duration
	// IncrementalAdd is time spent applying addition batches.
	IncrementalAdd time.Duration
	// IncrementalDelete is trimming time (KickStarter only).
	IncrementalDelete time.Duration
	// Mutation is in-place graph update time (KickStarter) or overlay
	// construction time (CommonGraph strategies).
	Mutation time.Duration
	// StateClone is time spent copying query state at schedule branch
	// points (zero for KickStarter, which maintains one state in place).
	StateClone time.Duration
	// Total is the end-to-end evaluation time. For parallel strategies
	// the per-phase fields aggregate CPU time across workers and may
	// exceed Total; sequential strategies keep their sum within it.
	Total time.Duration
	// AllocBytes and Mallocs are the process heap-allocation deltas over
	// the evaluation (runtime.MemStats TotalAlloc/Mallocs). They are
	// populated only when tracing is enabled — ReadMemStats is too
	// expensive for the default path — and, being process-wide, include
	// whatever concurrent work was allocating at the same time.
	AllocBytes uint64
	Mallocs    uint64
}

// Result is the outcome of Evaluate.
type Result struct {
	Strategy  Strategy
	Snapshots []SnapshotResult
	Timings   Timings
	// AdditionsProcessed counts addition-batch edges streamed (the
	// schedule cost); DeletionsProcessed counts deletion-batch edges
	// (zero for the CommonGraph strategies).
	AdditionsProcessed int64
	DeletionsProcessed int64
	// MaxHopTime is the longest independent unit of the strategy — a
	// per-snapshot hop for Independent and Direct-Hop (sequential and
	// parallel), a root schedule subtree for Work-Sharing (sequential
	// and parallel) — i.e. the run time given one core per unit, the
	// paper's Table 5 estimate. Zero for KickStarter, whose transitions
	// form a single sequential chain.
	MaxHopTime time.Duration
	// Degraded reports that one or more schedule subtrees of a
	// WorkSharingParallel evaluation failed and their snapshots were
	// recomputed via the Direct-Hop fallback (Options.Degrade). Degraded
	// values are still exact; only the work sharing was lost.
	Degraded bool
	// SnapshotErrors maps absolute snapshot index to the failure that
	// forced that snapshot onto the fallback path. Nil unless Degraded.
	SnapshotErrors map[int]error
	// Stale marks a result served by a replication follower that was
	// beyond its staleness budget at evaluation time
	// (FollowerConfig.ServeStale). The values are exact for the
	// follower's window; they may trail the primary's latest commits.
	Stale bool
	// EdgesEvaluated counts the out-edges the engine examined across
	// every pass of the evaluation — the measured work the query cost,
	// as opposed to AdditionsProcessed (the schedule's input size). The
	// query service weights tenant quota debits by it.
	EdgesEvaluated int64
}

// Window selects the inclusive snapshot range [From, To] of an evolving
// graph.
type Window struct {
	From, To int
}

// Width returns the number of snapshots in the window.
func (w Window) Width() int { return w.To - w.From + 1 }

// Request describes one evaluation: what to compute (Query), over which
// snapshots (Window), how (Strategy), and the tuning knobs (Options). It
// is the argument of Run, the primary entry point.
type Request struct {
	Query    Query
	Window   Window
	Strategy Strategy
	// Options tunes the evaluation. Options.Context is ignored here: Run
	// takes the context as a real parameter.
	Options Options
}

// Run evaluates the request's query on every snapshot in its window using
// its strategy and returns per-snapshot results in snapshot order. The
// context cancels the evaluation cooperatively at every schedule-edge
// boundary; pass context.Background() (or nil, which means the same) when
// cancellation is not needed.
func (g *EvolvingGraph) Run(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background() //cgvet:ignore ctxflow -- nil-ctx compatibility shim; callers with a real context pass it through
	}
	opt := req.Options
	opt.Context = ctx
	return g.evaluate(req.Query, req.Window.From, req.Window.To, req.Strategy, opt)
}

// Evaluate runs the query on every snapshot in [from, to] using the given
// strategy and returns per-snapshot results in snapshot order.
// Cancellation comes from Options.Context.
//
// Deprecated: use Run, which takes the context as a parameter and groups
// the window into a Request.
func (g *EvolvingGraph) Evaluate(q Query, from, to int, strategy Strategy, opt Options) (*Result, error) {
	return g.evaluate(q, from, to, strategy, opt)
}

func (g *EvolvingGraph) evaluate(q Query, from, to int, strategy Strategy, opt Options) (*Result, error) {
	if q.Algorithm == nil {
		return nil, fmt.Errorf("commongraph: query has no algorithm")
	}
	if int(q.Source) >= g.NumVertices() {
		return nil, fmt.Errorf("commongraph: source %d out of range %d", q.Source, g.NumVertices())
	}
	w := core.Window{Store: g.store, From: from, To: to}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	slug := strategy.Slug()
	tr := opt.tracer()
	// The root span joins any trace context riding on the request context
	// (obs.ContextWithSpan) — a follower read links to the primary ingest
	// trace that produced the data it reads; a plain query starts fresh.
	sp := tr.StartRemote(obs.FromContext(opt.context()), "evaluate",
		obs.String("strategy", slug),
		obs.String("algo", q.Algorithm.Name()),
		obs.Int("source", int(q.Source)),
		obs.Int("from", from), obs.Int("to", to), obs.Int("width", w.Width()))
	var m0 runtime.MemStats
	if tr.Detailed() {
		// ReadMemStats is too expensive for the always-on ring-only
		// recorder; only explicit/env tracers pay for alloc attribution.
		runtime.ReadMemStats(&m0)
	}
	start := time.Now()
	var (
		res *Result
		err error
	)
	switch strategy {
	case KickStarter:
		res, err = g.evaluateKickStarter(q, w, opt, sp)
	case Independent:
		cfg := opt.config(q)
		cfg.Trace = sp
		var inner *core.Result
		inner, err = core.Independent(w, cfg)
		if err == nil {
			res = convertResult(inner, from, Independent)
		}
	case DirectHop, DirectHopParallel, WorkSharing, WorkSharingParallel:
		res, err = g.evaluateCommonGraph(q, w, strategy, opt, sp)
	default:
		sp.End()
		return nil, fmt.Errorf("commongraph: unknown strategy %v", strategy)
	}
	obs.Queries(slug).Inc()
	slow := obs.SlowEntry{Trace: sp.TraceID(), Strategy: slug,
		Dur: time.Since(start), Start: start, From: from, To: to}
	if err != nil {
		obs.QueryErrors(slug).Inc()
		sp.SetAttr(obs.String("error", err.Error()))
		sp.End()
		slow.Err = err.Error()
		obs.Slow().Observe(slow)
		var pe *core.PanicError
		if errors.As(err, &pe) {
			// A contained panic is exactly the moment forensic state pays
			// off: dump the flight ring and slow log while they still hold
			// the offending trace.
			obs.Incident("panic", err)
		}
		return nil, err
	}
	res.Strategy = strategy
	res.Timings.Total = time.Since(start)
	slow.Dur = res.Timings.Total
	obs.Slow().Observe(slow)
	if tr.Detailed() {
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		res.Timings.AllocBytes = m1.TotalAlloc - m0.TotalAlloc
		res.Timings.Mallocs = m1.Mallocs - m0.Mallocs
		sp.SetAttr(obs.Int64("alloc_bytes", int64(res.Timings.AllocBytes)),
			obs.Int64("mallocs", int64(res.Timings.Mallocs)))
	}
	obs.AdditionsStreamed(slug).Add(res.AdditionsProcessed)
	obs.DeletionsStreamed(slug).Add(res.DeletionsProcessed)
	obs.SnapshotsEvaluated(slug).Add(int64(len(res.Snapshots)))
	if res.Degraded {
		sp.SetAttr(obs.Bool("degraded", true))
	}
	sp.SetAttr(obs.Int64("additions_processed", res.AdditionsProcessed),
		obs.Int64("deletions_processed", res.DeletionsProcessed))
	sp.End()
	return res, nil
}

func (g *EvolvingGraph) evaluateKickStarter(q Query, w core.Window, opt Options, sp *obs.Span) (*Result, error) {
	first, err := g.store.GetVersion(w.From)
	if err != nil {
		return nil, err
	}
	ctx := opt.context()
	solve := sp.StartChild("common.solve")
	sys := kickstarter.New(g.NumVertices(), first, q.Algorithm, q.Source, opt.engine().WithSpan(solve))
	solve.End()
	sys.Trace = sp
	res := &Result{}
	record := func(index int) {
		st := sys.State()
		sr := SnapshotResult{Index: index, Reached: st.Reached(), Checksum: core.Checksum(st)}
		if opt.KeepValues {
			sr.Values = st.Values()
		}
		res.Snapshots = append(res.Snapshots, sr)
	}
	record(w.From)
	for t := w.From; t < w.To; t++ {
		// Transition boundary: the streaming baseline's equivalent of a
		// schedule edge, so cancellation is observed here.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("commongraph: evaluation cancelled at transition %d: %w", t, err)
		}
		add := g.store.Additions(t).Edges()
		del := g.store.Deletions(t).Edges()
		if err := sys.ApplyTransition(add, del); err != nil {
			return nil, err
		}
		res.AdditionsProcessed += int64(len(add))
		res.DeletionsProcessed += int64(len(del))
		record(t + 1)
	}
	res.Timings = Timings{
		InitialCompute:    sys.Cost.InitialCompute,
		IncrementalAdd:    sys.Cost.IncrementalAdd,
		IncrementalDelete: sys.Cost.IncrementalDelete,
		Mutation:          sys.Cost.MutateAdd + sys.Cost.MutateDelete,
	}
	res.EdgesEvaluated = sys.Work.EdgesPushed
	return res, nil
}

func (g *EvolvingGraph) evaluateCommonGraph(q Query, w core.Window, strategy Strategy, opt Options, sp *obs.Span) (*Result, error) {
	cfg := opt.config(q)
	cfg.Trace = sp
	var (
		rep *core.Rep
		err error
	)
	if opt.Plan != nil {
		rep, err = opt.Plan.rep(w, cfg.Ctx)
	} else {
		rep, err = core.BuildRep(w)
	}
	if err != nil {
		return nil, err
	}
	inner, err := runCommonGraph(rep, strategy, opt, cfg)
	if err != nil {
		return nil, err
	}
	return convertResult(inner, w.From, strategy), nil
}

// runCommonGraph executes one CommonGraph strategy over a built
// representation — the shared tail of the EvolvingGraph and Watcher
// evaluation paths. With a PlanCache configured it first resolves the
// cache's shared common-graph state and memoized schedule, so the
// strategy's own from-scratch solve is skipped.
func runCommonGraph(rep *core.Rep, strategy Strategy, opt Options, cfg core.Config) (*core.Result, error) {
	if opt.Plan != nil {
		st, err := opt.Plan.commonState(rep, cfg)
		if err != nil {
			return nil, err
		}
		cfg.Common = st
	}
	switch strategy {
	case DirectHop:
		return core.DirectHop(rep, cfg)
	case DirectHopParallel:
		return core.DirectHopParallel(rep, cfg)
	case WorkSharing, WorkSharingParallel:
		var (
			tg    *core.TG
			sched *core.Schedule
			err   error
		)
		if opt.Plan != nil {
			tg, sched, err = opt.Plan.schedule(rep.Window, cfg.OptimalSchedule, cfg.Ctx)
		} else {
			tg, sched, err = buildSchedule(rep.Window, cfg.OptimalSchedule)
		}
		if err != nil {
			return nil, err
		}
		if strategy == WorkSharing {
			return core.WorkSharing(rep, tg, sched, cfg)
		}
		return core.WorkSharingParallel(rep, tg, sched, cfg)
	}
	return nil, fmt.Errorf("commongraph: %v is not a CommonGraph strategy", strategy)
}

// Plan describes the evaluation schedules available for a window without
// executing them: the Direct-Hop cost, the Steiner-tree Work-Sharing cost,
// and a printable schedule tree — the §3 cost model.
type Plan struct {
	// Snapshots is the window width.
	Snapshots int
	// CommonEdges is |E_c|.
	CommonEdges int
	// DirectHopAdditions is the total Direct-Hop batch size (no sharing).
	DirectHopAdditions int64
	// WorkSharingAdditions is the Steiner schedule's cost (maximal sharing).
	WorkSharingAdditions int64
	// Tree renders the compressed Work-Sharing schedule.
	Tree string
}

// Plan computes the schedule comparison for [from, to]. It honors the
// same Options the evaluation entry points do — in particular
// Options.OptimalSchedule selects the exact interval-DP Steiner solver,
// so the reported Work-Sharing cost is the cost Run would actually pay —
// and records a "plan" span on the configured tracer.
func (g *EvolvingGraph) Plan(from, to int, opt Options) (*Plan, error) {
	sp := opt.tracer().StartSpan("plan",
		obs.Int("from", from), obs.Int("to", to),
		obs.Bool("optimal_schedule", opt.OptimalSchedule))
	defer sp.End()
	w := core.Window{Store: g.store, From: from, To: to}
	rep, err := core.BuildRep(w)
	if err != nil {
		return nil, err
	}
	tg, err := core.BuildTG(w)
	if err != nil {
		return nil, err
	}
	tree := core.SteinerGreedy(tg)
	if opt.OptimalSchedule {
		tree = core.SteinerIntervalDP(tg)
	}
	sched, err := core.NewSchedule(tg, tree)
	if err != nil {
		return nil, err
	}
	sp.SetAttr(obs.Int("snapshots", w.Width()),
		obs.Int("common_edges", len(rep.Common)),
		obs.Int64("direct_hop_additions", rep.TotalDeltaEdges()),
		obs.Int64("work_sharing_additions", sched.Cost))
	return &Plan{
		Snapshots:            w.Width(),
		CommonEdges:          len(rep.Common),
		DirectHopAdditions:   rep.TotalDeltaEdges(),
		WorkSharingAdditions: sched.Cost,
		Tree:                 sched.String(),
	}, nil
}

package commongraph_test

import (
	"fmt"
	"log"

	"commongraph"
)

// ExampleEvolvingGraph_Evaluate tracks a shortest-path query across three
// snapshots of a small evolving graph.
func ExampleEvolvingGraph_Evaluate() {
	g := commongraph.New(4, []commongraph.Edge{
		{Src: 0, Dst: 1, W: 5},
		{Src: 1, Dst: 2, W: 5},
	})
	// Snapshot 1: a shortcut 0->2 appears.
	if _, err := g.ApplyUpdates([]commongraph.Edge{{Src: 0, Dst: 2, W: 3}}, nil); err != nil {
		log.Fatal(err)
	}
	// Snapshot 2: the original first hop disappears.
	if _, err := g.ApplyUpdates(nil, []commongraph.Edge{{Src: 0, Dst: 1, W: 5}}); err != nil {
		log.Fatal(err)
	}

	res, err := g.Evaluate(
		commongraph.Query{Algorithm: commongraph.SSSP, Source: 0},
		0, 2, commongraph.DirectHop, commongraph.Options{KeepValues: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, snap := range res.Snapshots {
		fmt.Printf("snapshot %d: dist(0->2) = %d\n", snap.Index, snap.Values[2])
	}
	// Output:
	// snapshot 0: dist(0->2) = 10
	// snapshot 1: dist(0->2) = 3
	// snapshot 2: dist(0->2) = 3
}

// ExampleEvolvingGraph_Plan compares the evaluation schedules' costs
// without executing them.
func ExampleEvolvingGraph_Plan() {
	g := commongraph.New(8, []commongraph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1}, {Src: 2, Dst: 3, W: 1},
		{Src: 3, Dst: 4, W: 1}, {Src: 4, Dst: 5, W: 1},
	})
	if _, err := g.ApplyUpdates(
		[]commongraph.Edge{{Src: 5, Dst: 6, W: 1}},
		[]commongraph.Edge{{Src: 0, Dst: 1, W: 1}},
	); err != nil {
		log.Fatal(err)
	}
	if _, err := g.ApplyUpdates(
		[]commongraph.Edge{{Src: 0, Dst: 1, W: 1}},
		[]commongraph.Edge{{Src: 5, Dst: 6, W: 1}},
	); err != nil {
		log.Fatal(err)
	}
	p, err := g.Plan(0, 2, commongraph.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshots %d, common %d edges\n", p.Snapshots, p.CommonEdges)
	fmt.Printf("direct-hop %d additions, work-sharing %d additions\n",
		p.DirectHopAdditions, p.WorkSharingAdditions)
	// Output:
	// snapshots 3, common 4 edges
	// direct-hop 3 additions, work-sharing 3 additions
}

// ExampleEvolvingGraph_Watch maintains the representation of a sliding
// window as snapshots arrive.
func ExampleEvolvingGraph_Watch() {
	g := commongraph.New(3, []commongraph.Edge{{Src: 0, Dst: 1, W: 1}})
	if _, err := g.ApplyUpdates([]commongraph.Edge{{Src: 1, Dst: 2, W: 1}}, nil); err != nil {
		log.Fatal(err)
	}
	w, err := g.Watch(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	// A new snapshot arrives; the watcher follows it.
	if _, err := g.ApplyUpdates(nil, []commongraph.Edge{{Src: 0, Dst: 1, W: 1}}); err != nil {
		log.Fatal(err)
	}
	if err := w.Slide(); err != nil {
		log.Fatal(err)
	}
	from, to := w.Window()
	fmt.Printf("window [%d,%d], common %d edges\n", from, to, w.CommonEdges())
	// Output:
	// window [1,2], common 1 edges
}

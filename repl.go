package commongraph

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"commongraph/internal/graph"
	"commongraph/internal/obs"
	"commongraph/internal/repl"
	"commongraph/internal/store"
)

// ErrStale is returned by Follower.Run when the replica is beyond its
// staleness budget (or not yet bootstrapped) and FollowerConfig.ServeStale
// is off. errors.Is(err, ErrStale) holds on every wrapped refusal.
var ErrStale = errors.New("commongraph: follower beyond its staleness budget")

// ErrPromoted is returned by Follower operations after Promote has
// converted the replica into a primary.
var ErrPromoted = errors.New("commongraph: follower was promoted")

// ErrFenced reports a write refused because the store's replication
// epoch was superseded: a follower was promoted, and this (old) primary
// must never commit again. errors.Is(err, ErrFenced) holds on every
// write path of a fenced GraphStore — ApplyUpdates, the Ingestor, and
// compaction.
var ErrFenced = store.ErrFenced

// ReplicationOptions tunes a primary's replication server.
type ReplicationOptions struct {
	// Heartbeat is the position-broadcast period on quiet stores
	// (followers derive lag from it). 0 means 100ms.
	Heartbeat time.Duration
	// Trace overrides the tracer ship spans record on (default: the
	// process's ambient tracer). Tests inject one per process side when
	// stitching a primary and follower running in one test.
	Trace *Tracer
}

// ReplicationServer streams a GraphStore's committed history — WAL
// batches and sealed base/overlay segments — to follower stores. See
// DESIGN.md "Replication" for the framing protocol and the epoch-fencing
// rules that exclude split-brain.
type ReplicationServer struct {
	p *repl.Primary
}

// ServeReplication starts replicating this store to any follower that
// connects on ln. It returns immediately; sessions run until Close. The
// GraphStore keeps working as usual — every committed transition ships
// to connected followers as it lands. A nil listener is allowed: the
// server then only replicates connections handed to Attach (in-process
// pipes).
func (gs *GraphStore) ServeReplication(ln net.Listener, opt ReplicationOptions) *ReplicationServer {
	p := repl.NewPrimary(gs.s, opt.Heartbeat)
	if opt.Trace != nil {
		p.SetTracer(opt.Trace)
	}
	if ln != nil {
		//cgvet:ignore goleak -- accept loop exits when ReplicationServer.Close closes the listener
		go p.Serve(ln) //nolint:errcheck // Serve returns nil after Close
	}
	return &ReplicationServer{p: p}
}

// Attach serves one already-established connection (an in-process
// net.Pipe end, a conn from a custom acceptor). The server owns it.
func (rs *ReplicationServer) Attach(conn net.Conn) { rs.p.Attach(conn) }

// Close stops replication: listeners close, sessions end, and Close
// waits for them. The underlying GraphStore stays open.
func (rs *ReplicationServer) Close() error { return rs.p.Close() }

// Epoch returns the store's replication epoch (0 until it joins a
// replication group).
func (gs *GraphStore) Epoch() uint64 { return gs.s.Epoch() }

// FencedByReplication reports whether this store has been superseded by
// a promoted follower: every further write returns an error wrapping
// store fencing (the double-commit guard).
func (gs *GraphStore) FencedByReplication() bool { return gs.s.Fenced() }

// ReplicationLag is a follower's staleness relative to the primary's
// last reported position. Known is false until the first heartbeat.
type ReplicationLag struct {
	Known bool
	// Seq is the primary's WAL commit pointer minus the local one.
	Seq uint64
	// Windows is the primary's committed-transition count minus the
	// local one.
	Windows int
}

// FollowerConfig configures Follow.
type FollowerConfig struct {
	// Dir is the replica store directory. Missing or empty is fine: the
	// first session bootstraps it from a shipped snapshot.
	Dir string
	// Addr is the primary's TCP address. Leave empty and set Dial for a
	// custom transport (in-process pipes in tests).
	Addr string
	// Dial overrides Addr with a custom transport.
	Dial func(ctx context.Context) (net.Conn, error)
	// WindowWidth bounds the follower's maintained evaluation window:
	// once the mirror holds this many snapshots, each replayed
	// transition slides the window instead of growing it. 0 means grow
	// without bound.
	WindowWidth int
	// MaxLagSeq and MaxLagWindows set the staleness budget (in WAL
	// sequence numbers and committed windows). When either is exceeded —
	// or the primary has never been heard from while a budget is set —
	// the follower is not Ready and Run refuses reads with ErrStale
	// unless ServeStale is on. 0 disables that bound; both 0 means reads
	// are always served and never marked.
	MaxLagSeq     uint64
	MaxLagWindows int
	// ServeStale serves reads past the budget anyway, marking the result
	// (Result.Stale) instead of failing fast.
	ServeStale bool
	// RetryBackoff is the initial reconnect backoff of the catch-up loop
	// (it grows exponentially with jitter, and resets after a session
	// that makes progress). 0 means 20ms.
	RetryBackoff time.Duration
	// Trace overrides the tracer replay/read spans record on (default:
	// the process's ambient tracer). Tests inject one per process side
	// when stitching a primary and follower running in one test.
	Trace *Tracer
}

// Follower is a live read replica: a catch-up loop replays the primary's
// committed history into a local durable store and mirrors it into an
// in-memory evolving graph with a maintained evaluation window, so Run
// serves queries at bounded staleness while ingest continues on the
// primary. Promote converts the replica into the group's new primary,
// fencing the old one.
type Follower struct {
	cfg    FollowerConfig
	inner  *repl.Follower
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.RWMutex
	g        *EvolvingGraph
	w        *Watcher
	promoted *GraphStore // non-nil once Promote succeeded

	// commitNotifier is the follower's own monotonic window generation:
	// it advances on every replayed maintenance commit AND on every
	// (re-)bootstrap, so a serving layer keyed on it never confuses
	// windows across a mirror swap (each swapped-in Watcher restarts its
	// own counter at zero).
	commitNotifier
}

// Follow opens (or prepares) the replica at cfg.Dir and starts the
// catch-up loop against the primary. It returns immediately; the
// follower connects, bootstraps, and replays in the background,
// reconnecting with jittered exponential backoff for as long as it
// lives. Use Ready/Lag to observe progress and Close to stop.
func Follow(cfg FollowerConfig) (*Follower, error) {
	if cfg.Dial == nil {
		if cfg.Addr == "" {
			return nil, fmt.Errorf("commongraph: follower needs Addr or Dial")
		}
		addr := cfg.Addr
		var d net.Dialer
		cfg.Dial = func(ctx context.Context) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	f := &Follower{cfg: cfg, done: make(chan struct{})}
	inner, err := repl.OpenFollower(cfg.Dir, repl.Options{
		Dial:      cfg.Dial,
		Backoff:   repl.Backoff{Base: cfg.RetryBackoff},
		Apply:     f.apply,
		Bootstrap: f.bootstrap,
		Trace:     cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	f.inner = inner
	if st := inner.Store(); st != nil {
		// Reopened replica: mirror the durable history before the first
		// session so reads work while the primary is unreachable.
		if err := f.mirror(st); err != nil {
			inner.Close()
			return nil, err
		}
	}
	// The follower is its own lifecycle root: the catch-up loop runs until
	// Close, not until some caller's request context ends.
	ctx, cancel := context.WithCancel(context.Background()) //cgvet:ignore ctxflow -- follower lifecycle root; cancelled by Close
	f.cancel = cancel
	//cgvet:ignore goleak -- catch-up loop exits when Close cancels ctx (or after promotion); Close waits on done
	go func() {
		defer close(f.done)
		f.inner.Run(ctx) //nolint:errcheck // terminal state is observable via Ready/Lag; retries happen inside
	}()
	return f, nil
}

// bootstrap (re)builds the in-memory mirror after the replica store was
// created or recreated from a shipped snapshot.
func (f *Follower) bootstrap(st *store.Store) error { return f.mirror(st) }

// mirror materializes st as the follower's evolving graph and opens a
// maintained window over its most recent snapshots.
func (f *Follower) mirror(st *store.Store) error {
	snap, err := st.Snapshot()
	if err != nil {
		return err
	}
	g := FromStore(snap)
	n := g.NumSnapshots()
	from := 0
	if f.cfg.WindowWidth > 0 && n > f.cfg.WindowWidth {
		from = n - f.cfg.WindowWidth
	}
	w, err := g.Watch(from, n-1)
	if err != nil {
		return err
	}
	// Chain the new watcher's commits into the follower's own generation;
	// the bootstrap itself is also a commit (the whole window changed).
	w.OnCommit(func(uint64) { f.notifyCommit() })
	f.mu.Lock()
	old := f.w
	f.g, f.w = g, w
	f.mu.Unlock()
	f.notifyCommit()
	if old != nil {
		//cgvet:ignore errflow -- the superseded window has no background persistence attached, so its Close reports nothing actionable
		old.Close() //nolint:errcheck
	}
	return nil
}

// apply mirrors one replayed transition into the in-memory graph and
// maintains the evaluation window. It runs on the replication session
// goroutine, after the transition is durable in the local store.
func (f *Follower) apply(_ int, adds, dels graph.EdgeList, _ uint64) error {
	f.mu.RLock()
	g, w := f.g, f.w
	f.mu.RUnlock()
	if g == nil || w == nil {
		return fmt.Errorf("commongraph: replayed batch before bootstrap")
	}
	if _, err := g.ApplyUpdates(adds, dels); err != nil {
		return err
	}
	if f.cfg.WindowWidth > 0 {
		if from, to := w.Window(); to-from+1 >= f.cfg.WindowWidth {
			return w.Slide()
		}
	}
	return w.Append()
}

// Graph returns the follower's in-memory mirror (nil before the first
// bootstrap). Reads race replay maintenance; prefer Run, which evaluates
// over the maintained window's immutable representation.
func (f *Follower) Graph() *EvolvingGraph {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.g
}

// Watcher returns the maintained evaluation window over the mirror (nil
// before the first bootstrap).
func (f *Follower) Watcher() *Watcher {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.w
}

// Lag returns the replica's staleness relative to the primary's last
// report.
func (f *Follower) Lag() ReplicationLag {
	l := f.inner.Lag()
	return ReplicationLag{Known: l.Known, Seq: l.Seq, Windows: l.Windows}
}

// Acknowledged returns the WAL commit pointer of the local replica — the
// resume position a promoted follower hands to producers (it may trail
// the failed primary's: updates above it were never replicated and must
// be re-sent).
func (f *Follower) Acknowledged() uint64 {
	if st := f.inner.Store(); st != nil {
		return st.WALSeq()
	}
	return 0
}

// overBudget reports whether reads exceed the configured staleness
// budget. With no budget configured there is nothing to exceed; with
// one, an unknown lag (primary never heard from) counts as over — the
// replica cannot prove freshness.
func (f *Follower) overBudget() bool {
	if f.cfg.MaxLagSeq == 0 && f.cfg.MaxLagWindows == 0 {
		return false
	}
	l := f.inner.Lag()
	if !l.Known {
		return true
	}
	if f.cfg.MaxLagSeq > 0 && l.Seq > f.cfg.MaxLagSeq {
		return true
	}
	if f.cfg.MaxLagWindows > 0 && l.Windows > f.cfg.MaxLagWindows {
		return true
	}
	return false
}

// Ready reports whether the follower can serve fresh reads: it has
// bootstrapped and is within its staleness budget. The detail string
// explains a false — it is what /readyz returns with a 503.
func (f *Follower) Ready() (bool, string) {
	f.mu.RLock()
	promoted := f.promoted != nil
	bootstrapped := f.w != nil
	f.mu.RUnlock()
	if promoted {
		return false, "promoted: now a primary, not a follower"
	}
	if !bootstrapped {
		return false, "awaiting snapshot bootstrap"
	}
	if f.overBudget() {
		l := f.Lag()
		if !l.Known {
			return false, "primary never heard from; staleness unknown"
		}
		return false, fmt.Sprintf("staleness budget exceeded: lag %d seqs, %d windows", l.Seq, l.Windows)
	}
	return true, "ok"
}

// Run evaluates a query over the follower's maintained window. Within
// the staleness budget it behaves exactly like Watcher.Run on the
// primary; past it, reads fail fast with ErrStale — or, with
// ServeStale, are served with Result.Stale set.
func (f *Follower) Run(ctx context.Context, req Request) (*Result, error) {
	f.mu.RLock()
	w, promoted := f.w, f.promoted != nil
	f.mu.RUnlock()
	if promoted {
		return nil, ErrPromoted
	}
	if w == nil {
		obs.ReplStaleReads("refused").Inc()
		err := fmt.Errorf("commongraph: follower awaiting bootstrap: %w", ErrStale)
		obs.Incident("stale", err)
		return nil, err
	}
	if req.Options.Trace == nil {
		req.Options.Trace = f.cfg.Trace
	}
	// Adopt the trace of the last replayed batch: the read span becomes a
	// remote child of the primary's ingest trace, so a stitched export
	// shows commit → ship → replay → read as one lineage. An explicit
	// trace context already on ctx wins.
	if !obs.FromContext(ctx).Valid() {
		if sc := f.inner.LastTrace(); sc.Valid() {
			ctx = obs.ContextWithSpan(ctx, sc)
		}
	}
	if !f.overBudget() {
		return w.Run(ctx, req)
	}
	if !f.cfg.ServeStale {
		obs.ReplStaleReads("refused").Inc()
		l := f.Lag()
		err := fmt.Errorf("commongraph: lag %d seqs / %d windows (known=%v): %w",
			l.Seq, l.Windows, l.Known, ErrStale)
		obs.Incident("stale", err)
		return nil, err
	}
	res, err := w.Run(ctx, req)
	if err != nil {
		return nil, err
	}
	res.Stale = true
	obs.ReplStaleReads("served").Inc()
	return res, nil
}

// Promote converts the replica into the group's new primary and returns
// it as a writable GraphStore bound to the mirrored graph. The local
// store durably claims a strictly higher epoch first; a fence is pushed
// up the live session (best effort — the old primary also fences on its
// next contact with the new epoch), and the catch-up loop winds down.
// The returned GraphStore can ingest, serve replication, and persist
// exactly like one from OpenStore; Acknowledged tells resuming producers
// where to restart.
func (f *Follower) Promote() (*GraphStore, error) {
	f.mu.RLock()
	already := f.promoted
	f.mu.RUnlock()
	if already != nil {
		return nil, ErrPromoted
	}
	st, epoch, err := f.inner.Promote()
	if err != nil {
		if errors.Is(err, repl.ErrPromoted) {
			return nil, ErrPromoted
		}
		return nil, err
	}
	f.mu.Lock()
	g := f.g
	gs := &GraphStore{g: g, s: st}
	f.promoted = gs
	f.mu.Unlock()
	obs.Env().Event("follower.promoted", obs.Int64("epoch", int64(epoch)))
	return gs, nil
}

// Promoted returns the GraphStore Promote produced, or nil — the hook
// for operators driving promotion through /promote on ServeOps.
func (f *Follower) Promoted() *GraphStore {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.promoted
}

// ServeOps starts the follower's operational endpoint on addr:
//
//	/metrics   process-wide metric registry (includes the repl lag
//	           gauges and ship/replay counters)
//	/healthz   liveness — 200 while the process serves
//	/readyz    readiness — 200 within the staleness budget, 503 with a
//	           reason otherwise (bootstrap pending, budget exceeded,
//	           promoted)
//	/lag       current lag as JSON {"known":K,"seq":S,"windows":W}
//	/promote   POST: promote this replica; responds with the new epoch
//
// The server runs until MetricsServer.Close.
func (f *Follower) ServeOps(addr string) (*MetricsServer, error) {
	return newOpsServer(addr, func(mux *obs.OpsMux, m *MetricsServer) {
		m.SetReadiness(f.Ready)
		mux.HandleFunc("/lag", func(rw http.ResponseWriter, _ *http.Request) {
			l := f.Lag()
			rw.Header().Set("Content-Type", "application/json")
			json.NewEncoder(rw).Encode(map[string]any{
				"known": l.Known, "seq": l.Seq, "windows": l.Windows,
			})
		})
		mux.HandleFunc("/promote", func(rw http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(rw, "POST required", http.StatusMethodNotAllowed)
				return
			}
			gs, err := f.Promote()
			if err != nil {
				status := http.StatusConflict
				if !errors.Is(err, ErrPromoted) {
					status = http.StatusInternalServerError
				}
				http.Error(rw, err.Error(), status)
				return
			}
			rw.Header().Set("Content-Type", "application/json")
			json.NewEncoder(rw).Encode(map[string]any{
				"epoch":        gs.Epoch(),
				"acknowledged": gs.Acknowledged(),
			})
		})
	})
}

// Close stops the catch-up loop and releases the replica. The local
// store closes unless Promote transferred its ownership; a promoted
// GraphStore (and its mirror graph) outlives the Follower that produced
// it.
func (f *Follower) Close() error {
	f.cancel()
	<-f.done
	f.mu.Lock()
	w := f.w
	f.mu.Unlock()
	var werr error
	if w != nil {
		// The watcher is the follower's serving window, not part of the
		// promoted store; a promoted caller builds a fresh Watch on the
		// returned GraphStore's graph.
		werr = w.Close()
	}
	if err := f.inner.Close(); err != nil {
		return err
	}
	return werr
}

package commongraph

// Cold-start benchmarks for the durable store (ISSUE 5): BenchmarkColdOpen
// is the restarted service's time-to-first-answer from a persisted store;
// BenchmarkTextIngest is the same first answer from the text edge list the
// service used to re-parse. make perf-smoke diffs both against the
// committed bench/store-PR<n>.txt baseline. BenchmarkWALAppend prices the
// fsynced journal write the ingest path pays per push.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"commongraph/internal/gen"
	"commongraph/internal/graph"
	"commongraph/internal/store"
)

// benchStoreFixture persists an LJ-sim evolving graph once and returns the
// store directory, the text path of its final snapshot, and the final
// version index.
func benchStoreFixture(tb testing.TB) (storeDir, textPath string, last int) {
	tb.Helper()
	s, ok := gen.ByName("LJ-sim")
	if !ok {
		tb.Fatal("LJ-sim stand-in missing")
	}
	n, base := s.Build(1)
	trs, err := gen.Stream(n, base, gen.StreamConfig{
		Transitions: 4, Additions: 3000, Deletions: 750, Seed: 0x5703E,
	})
	if err != nil {
		tb.Fatal(err)
	}
	g := New(n, base)
	for _, tr := range trs {
		if _, err := g.ApplyUpdates(tr.Additions, tr.Deletions); err != nil {
			tb.Fatal(err)
		}
	}
	dir := tb.TempDir()
	storeDir = filepath.Join(dir, "store")
	gs, err := g.Persist(storeDir)
	if err != nil {
		tb.Fatal(err)
	}
	if err := gs.Close(); err != nil {
		tb.Fatal(err)
	}
	last = g.NumSnapshots() - 1
	final, err := g.Snapshot(last)
	if err != nil {
		tb.Fatal(err)
	}
	textPath = filepath.Join(dir, "final.txt")
	f, err := os.Create(textPath)
	if err != nil {
		tb.Fatal(err)
	}
	if err := graph.WriteText(f, n, final); err != nil {
		f.Close()
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
	return storeDir, textPath, last
}

func benchFirstQuery(tb testing.TB, g *EvolvingGraph, version int) {
	tb.Helper()
	a, ok := AlgorithmByName("BFS")
	if !ok {
		tb.Fatal("bfs algorithm missing")
	}
	_, err := g.Run(context.Background(), Request{
		Query:    Query{Algorithm: a, Source: 0},
		Window:   Window{From: version, To: version},
		Strategy: DirectHop,
	})
	if err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkColdOpen measures store open + first query: manifest read, lazy
// binary segment loads, snapshot materialization, then one BFS on the
// latest snapshot.
func BenchmarkColdOpen(b *testing.B) {
	storeDir, _, last := benchStoreFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := OpenEvolvingGraph(storeDir)
		if err != nil {
			b.Fatal(err)
		}
		benchFirstQuery(b, g, last)
	}
}

// BenchmarkTextIngest is the pre-store baseline for the same first answer:
// parse the final snapshot's text edge list, build the graph, run BFS.
// ColdOpen must stay measurably below this line.
func BenchmarkTextIngest(b *testing.B) {
	_, textPath, _ := benchStoreFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(textPath)
		if err != nil {
			b.Fatal(err)
		}
		n, edges, err := graph.ReadText(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			b.Fatal(err)
		}
		benchFirstQuery(b, New(n, edges), 0)
	}
}

// BenchmarkWALAppend measures one fsynced journal append of a 64-update
// window — the durability cost the ingest path pays per full window.
func BenchmarkWALAppend(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "store")
	s, err := store.Create(dir, 1024, graph.EdgeList{{Src: 0, Dst: 1, W: 1}})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const window = 64
	us := make([]store.RawUpdate, window)
	for i := range us {
		us[i] = store.RawUpdate{Op: store.RawAdd, Edge: graph.Edge{
			Src: graph.VertexID(i % 1024), Dst: graph.VertexID((i + 1) % 1024), W: 1}}
	}
	b.SetBytes(28 * window)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Journal(us); err != nil {
			b.Fatal(err)
		}
	}
}

package commongraph

import (
	"commongraph/internal/algo"
	"commongraph/internal/graph"
	"commongraph/internal/snapshot"
)

// VertexID identifies a vertex; vertices are dense integers in [0, n).
type VertexID = graph.VertexID

// Weight is an integer edge weight. BFS ignores it; SSSP/SSWP/SSNP use it
// directly; Viterbi maps it to a transition probability.
type Weight = graph.Weight

// Edge is a directed weighted edge.
type Edge = graph.Edge

// Value is a vertex result value (Viterbi values are Q2.30 fixed-point
// probabilities; see ViterbiProbability).
type Value = algo.Value

// Infinity is the "unreached" value of minimizing algorithms.
const Infinity = algo.Infinity

// Algorithm is a monotonic vertex program; the five paper benchmarks are
// provided as package variables.
type Algorithm = algo.Algorithm

// The five monotonic benchmark algorithms of the paper's Table 3.
var (
	BFS     Algorithm = algo.BFS{}
	SSSP    Algorithm = algo.SSSP{}
	SSWP    Algorithm = algo.SSWP{}
	SSNP    Algorithm = algo.SSNP{}
	Viterbi Algorithm = algo.Viterbi{}
)

// Algorithms returns all five benchmark algorithms in the paper's order.
func Algorithms() []Algorithm { return algo.All() }

// AlgorithmByName resolves "BFS", "SSSP", "SSWP", "SSNP" or "Viterbi".
func AlgorithmByName(name string) (Algorithm, bool) { return algo.ByName(name) }

// ViterbiProbability converts a Viterbi result value to a float64
// probability in [0, 1].
func ViterbiProbability(v Value) float64 { return float64(v) / float64(algo.FixedOne) }

// EvolvingGraph is a sequence of graph snapshots held in CommonGraph form:
// the initial snapshot plus per-transition addition/deletion batches. Each
// edge is stored once. It is safe for concurrent Evaluate calls;
// ApplyUpdates requires exclusive access.
type EvolvingGraph struct {
	store *snapshot.Store
}

// New creates an evolving graph over numVertices vertices whose snapshot 0
// contains the given edges (deduplicated by endpoints).
func New(numVertices int, initial []Edge) *EvolvingGraph {
	return &EvolvingGraph{store: snapshot.NewStore(numVertices, graph.EdgeList(initial))}
}

// ApplyUpdates appends a new snapshot derived from the latest one by the
// two batches (the new_version primitive of the paper's Table 1). It
// validates that deleted edges exist and added edges do not.
//
// Edge identity is by endpoints: if an edge is deleted and later re-added
// it must carry the same weight, or evaluation strategies may disagree on
// which weight a window sees.
func (g *EvolvingGraph) ApplyUpdates(additions, deletions []Edge) (version int, err error) {
	return g.store.NewVersion(graph.EdgeList(additions), graph.EdgeList(deletions))
}

// NumVertices returns the vertex-space size.
func (g *EvolvingGraph) NumVertices() int { return g.store.NumVertices() }

// NumSnapshots returns the number of snapshots (initial + transitions).
func (g *EvolvingGraph) NumSnapshots() int { return g.store.NumVersions() }

// Snapshot materializes snapshot i as a canonical edge list (the
// get_version primitive). The returned slice must not be modified.
func (g *EvolvingGraph) Snapshot(i int) ([]Edge, error) {
	el, err := g.store.GetVersion(i)
	return []Edge(el), err
}

// Diff returns the batches that turn snapshot i into snapshot j (the diff
// primitive): additions are edges in j but not i; deletions the reverse.
func (g *EvolvingGraph) Diff(i, j int) (additions, deletions []Edge, err error) {
	add, del, err := g.store.Diff(i, j)
	if err != nil {
		return nil, nil, err
	}
	return []Edge(add.Edges()), []Edge(del.Edges()), nil
}

// Store exposes the underlying snapshot store to sibling packages (the
// cmd/ tools); application code should not need it.
func (g *EvolvingGraph) Store() *snapshot.Store { return g.store }

// FromStore wraps an existing snapshot store (e.g. one loaded from a
// dataset directory) as an EvolvingGraph.
func FromStore(s *snapshot.Store) *EvolvingGraph { return &EvolvingGraph{store: s} }

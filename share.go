package commongraph

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"commongraph/internal/core"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
	"commongraph/internal/snapshot"
)

// PlanCache shares evaluation work across concurrent queries over the same
// evolving graph — the cross-query generalization of the paper's
// cross-snapshot sharing. The Triangular-Grid schedule already shares
// common-graph work among a window's snapshots; a long-lived service also
// sees many *queries* whose windows overlap, and each would otherwise
// re-solve a nearly identical common graph from scratch. The cache
// memoizes three layers:
//
//   - representations: BuildRep per window (EvolvingGraph entry points; a
//     Watcher maintains its own rep incrementally and skips this layer),
//   - schedules: the TG and Steiner schedule per (window, solver) — pure
//     functions of the window,
//   - ICG states: the solved common-graph fixpoint per (algorithm, source,
//     window) — the intermediate common graph states of §3.2, lifted out
//     of single evaluations.
//
// The ICG layer is where overlapping queries actually converge. For any
// window U ⊇ w, C(U) ⊆ C(w) (the common graph over more snapshots is a
// subgraph), so a fixpoint solved on C(U) reaches the fixpoint on C(w) by
// streaming the additions C(w)\C(U) — the paper's §3.1 Direct-Hop argument
// with C(U) playing the common graph. Concurrent requests therefore
// single-flight one solve of the *union* of their announced windows and
// each derives its own window's state with one cheap incremental pass:
// N overlapping queries do ~1x the common-graph work.
//
// Correctness across commits: the snapshot store is append-only and
// version indices are stable, so an entry keyed by an absolute window
// never goes stale — maintenance commits only make new windows reachable.
// The cache binds to one store pointer and resets itself if it sees
// another (a follower re-bootstrap swaps stores); Invalidate drops
// everything explicitly.
//
// All methods are safe for concurrent use. A PlanCache reaches an
// evaluation via Options.Plan.
type PlanCache struct {
	mu    sync.Mutex
	store *snapshot.Store

	reps      map[Window]*repEntry
	scheds    map[schedKey]*schedEntry
	groups    map[groupKey]*icgGroup
	announced map[Window]int

	stats planStats
}

// maxICGEntries bounds the solved states retained per (algorithm, source)
// group; past it the oldest solved entries are dropped (they can always be
// re-derived). In-flight entries are never evicted.
const maxICGEntries = 64

type repEntry struct {
	done chan struct{}
	rep  *core.Rep
	err  error
}

type schedKey struct {
	w       Window
	optimal bool
}

type schedEntry struct {
	done  chan struct{}
	tg    *core.TG
	sched *core.Schedule
	err   error
}

// groupKey identifies one family of ICG states. Engine tuning (workers,
// scheduler mode) is deliberately absent: the programs are monotonic, so
// the fixpoint is schedule-independent and any configuration's solve is
// reusable by every other.
type groupKey struct {
	algo   string
	source VertexID
}

type icgGroup struct {
	entries []*icgEntry // insertion order; scanned for exact/containing hits
}

// icgEntry is one solved (or in-flight) common-graph fixpoint. st is
// shared read-only among every evaluation that hits it — solveCommon
// clones before mutating.
type icgEntry struct {
	w    Window
	done chan struct{}
	st   *engine.State
	err  error
}

type planStats struct {
	solves, derives, shared    atomic.Uint64
	repHits, repMisses         atomic.Uint64
	schedHits, schedMisses     atomic.Uint64
	invalidations, announceNow atomic.Uint64
}

// PlanCacheStats is a point-in-time snapshot of the cache's counters —
// the per-instance view of the commongraph_serve_icg_evaluations_total and
// commongraph_serve_plan_cache_total process metrics.
type PlanCacheStats struct {
	// Solves counts from-scratch common-graph solves (each covering the
	// union of the announced overlapping windows at solve time). Derives
	// counts states reached from a containing window's state by one
	// incremental pass; Shared counts exact-window reuses.
	Solves, Derives, Shared uint64
	// RepHits/RepMisses and SchedHits/SchedMisses count the
	// representation and schedule memoization layers.
	RepHits, RepMisses     uint64
	SchedHits, SchedMisses uint64
	// Invalidations counts full resets (explicit or store-swap).
	Invalidations uint64
	// Announced is the number of windows currently announced by admitted
	// in-flight requests.
	Announced uint64
}

// NewPlanCache returns an empty cross-query plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{
		reps:      make(map[Window]*repEntry),
		scheds:    make(map[schedKey]*schedEntry),
		groups:    make(map[groupKey]*icgGroup),
		announced: make(map[Window]int),
	}
}

// Stats snapshots the cache's counters.
func (pc *PlanCache) Stats() PlanCacheStats {
	pc.mu.Lock()
	announced := uint64(len(pc.announced))
	pc.mu.Unlock()
	return PlanCacheStats{
		Solves:        pc.stats.solves.Load(),
		Derives:       pc.stats.derives.Load(),
		Shared:        pc.stats.shared.Load(),
		RepHits:       pc.stats.repHits.Load(),
		RepMisses:     pc.stats.repMisses.Load(),
		SchedHits:     pc.stats.schedHits.Load(),
		SchedMisses:   pc.stats.schedMisses.Load(),
		Invalidations: pc.stats.invalidations.Load(),
		Announced:     announced,
	}
}

// Announce registers a window as requested-but-not-yet-solved and returns
// a release function the caller must run when its request finishes. The
// query service announces at admission, before the request waits for a
// worker: by the time the first of a batch of concurrent requests reaches
// its common-graph solve, every overlapping announced window widens that
// solve's union, so the batch converges on one solve instead of racing to
// N. Announce never blocks.
func (pc *PlanCache) Announce(w Window) (release func()) {
	pc.mu.Lock()
	pc.announced[w]++
	pc.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			pc.mu.Lock()
			if pc.announced[w]--; pc.announced[w] <= 0 {
				delete(pc.announced, w)
			}
			pc.mu.Unlock()
		})
	}
}

// Invalidate drops every memoized representation, schedule, and ICG state.
// Announced windows survive — they describe in-flight requests, not cached
// results.
func (pc *PlanCache) Invalidate() {
	pc.mu.Lock()
	pc.resetLocked()
	pc.mu.Unlock()
}

func (pc *PlanCache) resetLocked() {
	pc.reps = make(map[Window]*repEntry)
	pc.scheds = make(map[schedKey]*schedEntry)
	pc.groups = make(map[groupKey]*icgGroup)
	pc.stats.invalidations.Add(1)
}

// bindLocked resets the cache if w's store is not the one the cached
// entries were built from (first use, or a follower re-bootstrap swapping
// its mirrored store).
func (pc *PlanCache) bindLocked(s *snapshot.Store) {
	if pc.store != s {
		if pc.store != nil {
			pc.resetLocked()
		}
		pc.store = s
	}
}

// await blocks until e's channel closes or ctx (nil = never) is done.
func await(ctx context.Context, done <-chan struct{}) error {
	if ctx == nil {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("commongraph: cancelled waiting for shared evaluation: %w", ctx.Err())
	}
}

// rep returns the memoized CommonGraph representation of w, building it
// single-flight on first use.
func (pc *PlanCache) rep(w core.Window, ctx context.Context) (*core.Rep, error) {
	key := Window{From: w.From, To: w.To}
	pc.mu.Lock()
	pc.bindLocked(w.Store)
	if e, ok := pc.reps[key]; ok {
		pc.mu.Unlock()
		pc.stats.repHits.Add(1)
		obs.ServePlanCache("rep-hit").Inc()
		if err := await(ctx, e.done); err != nil {
			return nil, err
		}
		return e.rep, e.err
	}
	e := &repEntry{done: make(chan struct{})}
	pc.reps[key] = e
	pc.mu.Unlock()
	pc.stats.repMisses.Add(1)
	obs.ServePlanCache("rep-miss").Inc()
	e.rep, e.err = core.BuildRep(w)
	if e.err != nil {
		pc.mu.Lock()
		if pc.reps[key] == e {
			delete(pc.reps, key) // let a later call retry
		}
		pc.mu.Unlock()
	}
	close(e.done)
	return e.rep, e.err
}

// schedule returns the memoized Triangular Grid and Steiner schedule for
// w under the given solver, building them single-flight on first use.
func (pc *PlanCache) schedule(w core.Window, optimal bool, ctx context.Context) (*core.TG, *core.Schedule, error) {
	key := schedKey{w: Window{From: w.From, To: w.To}, optimal: optimal}
	pc.mu.Lock()
	pc.bindLocked(w.Store)
	if e, ok := pc.scheds[key]; ok {
		pc.mu.Unlock()
		pc.stats.schedHits.Add(1)
		obs.ServePlanCache("sched-hit").Inc()
		if err := await(ctx, e.done); err != nil {
			return nil, nil, err
		}
		return e.tg, e.sched, e.err
	}
	e := &schedEntry{done: make(chan struct{})}
	pc.scheds[key] = e
	pc.mu.Unlock()
	pc.stats.schedMisses.Add(1)
	obs.ServePlanCache("sched-miss").Inc()
	e.tg, e.sched, e.err = buildSchedule(w, optimal)
	if e.err != nil {
		pc.mu.Lock()
		if pc.scheds[key] == e {
			delete(pc.scheds, key)
		}
		pc.mu.Unlock()
	}
	close(e.done)
	return e.tg, e.sched, e.err
}

func buildSchedule(w core.Window, optimal bool) (*core.TG, *core.Schedule, error) {
	tg, err := core.BuildTG(w)
	if err != nil {
		return nil, nil, err
	}
	tree := core.SteinerGreedy(tg)
	if optimal {
		tree = core.SteinerIntervalDP(tg)
	}
	sched, err := core.NewSchedule(tg, tree)
	if err != nil {
		return nil, nil, err
	}
	return tg, sched, nil
}

// commonState returns the solved fixpoint of (cfg.Algo, cfg.Source) on
// rep's common graph, sharing work with every other query in flight. The
// returned state is owned by the cache and must be treated as read-only
// (solveCommon clones it). Lookup order:
//
//  1. exact window already solved or in flight → share it,
//  2. a containing window solved or in flight → derive by streaming the
//     additions C(w)\C(U) from its state,
//  3. otherwise solve from scratch — over the union of w with every
//     announced window transitively overlapping it, so concurrent
//     overlapping requests fold into this one solve and take path 1 or 2.
func (pc *PlanCache) commonState(rep *core.Rep, cfg core.Config) (*engine.State, error) {
	win := Window{From: rep.Window.From, To: rep.Window.To}
	key := groupKey{algo: cfg.Algo.Name(), source: VertexID(cfg.Source)}

	pc.mu.Lock()
	pc.bindLocked(rep.Window.Store)
	grp := pc.groups[key]
	if grp == nil {
		grp = &icgGroup{}
		pc.groups[key] = grp
	}
	// Path 1: exact hit.
	if e := grp.find(win); e != nil {
		pc.mu.Unlock()
		if err := await(cfg.Ctx, e.done); err != nil {
			return nil, err
		}
		if e.err != nil {
			return nil, e.err
		}
		pc.stats.shared.Add(1)
		obs.ServeICG("shared").Inc()
		return e.st, nil
	}
	// Path 2: a containing window's state can be specialized to ours. Take
	// the narrowest container — its common graph is closest to ours, so
	// the derivation batch is smallest.
	if src := grp.findContaining(win); src != nil {
		dst := &icgEntry{w: win, done: make(chan struct{})}
		grp.entries = append(grp.entries, dst)
		pc.mu.Unlock()
		return pc.derive(dst, src, rep, cfg)
	}
	// Path 3: solve, widened to the union of announced overlapping
	// windows so the requests that announced them land on paths 1–2.
	union := widen(win, pc.announced)
	uEntry := &icgEntry{w: union, done: make(chan struct{})}
	grp.entries = append(grp.entries, uEntry)
	var dst *icgEntry
	if union != win {
		dst = &icgEntry{w: win, done: make(chan struct{})}
		grp.entries = append(grp.entries, dst)
	}
	grp.evict()
	pc.mu.Unlock()

	if err := pc.solve(uEntry, rep, cfg); err != nil {
		if dst != nil {
			pc.fail(dst, err)
		}
		return nil, err
	}
	if dst == nil {
		return uEntry.st, nil
	}
	return pc.derive(dst, uEntry, rep, cfg)
}

// solve runs the from-scratch fixpoint on the common graph of e.w and
// publishes it. Failures unpublish the entry so later requests retry.
func (pc *PlanCache) solve(e *icgEntry, rep *core.Rep, cfg core.Config) error {
	defer close(e.done)
	solveRep := rep
	if e.w != (Window{From: rep.Window.From, To: rep.Window.To}) {
		var err error
		solveRep, err = pc.rep(core.Window{Store: rep.Window.Store, From: e.w.From, To: e.w.To}, cfg.Ctx)
		if err != nil {
			e.err = err
			pc.unpublish(e)
			return err
		}
	}
	sp := cfg.Trace.StartChild("icg.solve",
		obs.Int("from", e.w.From), obs.Int("to", e.w.To))
	e.st, _ = engine.Run(solveRep.Base, cfg.Algo, cfg.Source, cfg.Engine.WithSpan(sp))
	sp.End()
	pc.stats.solves.Add(1)
	obs.ServeICG("solve").Inc()
	return nil
}

// derive specializes src's fixpoint (on C(src.w), src.w ⊇ dst.w) to
// dst.w's common graph by streaming the additions C(dst.w)\C(src.w) —
// one Direct-Hop over the interval containment instead of a full solve.
func (pc *PlanCache) derive(dst, src *icgEntry, rep *core.Rep, cfg core.Config) (*engine.State, error) {
	if err := await(cfg.Ctx, src.done); err != nil {
		pc.fail(dst, err)
		return nil, err
	}
	if src.err != nil {
		pc.fail(dst, src.err)
		return nil, src.err
	}
	srcRep, err := pc.rep(core.Window{Store: rep.Window.Store, From: src.w.From, To: src.w.To}, cfg.Ctx)
	if err != nil {
		pc.fail(dst, err)
		return nil, err
	}
	sp := cfg.Trace.StartChild("icg.derive",
		obs.Int("from", dst.w.From), obs.Int("to", dst.w.To),
		obs.Int("src_from", src.w.From), obs.Int("src_to", src.w.To))
	batch := graph.Minus(rep.Common, srcRep.Common)
	st := src.st.Clone()
	engine.IncrementalAdd(rep.Base, st, batch, cfg.Engine.WithSpan(sp))
	sp.SetAttr(obs.Int("batch", len(batch)))
	sp.End()
	dst.st = st
	close(dst.done)
	pc.stats.derives.Add(1)
	obs.ServeICG("derive").Inc()
	return st, nil
}

// fail publishes an error on a pre-registered entry and unpublishes it so
// later requests retry instead of caching the failure.
func (pc *PlanCache) fail(e *icgEntry, err error) {
	e.err = err
	pc.unpublish(e)
	close(e.done)
}

// unpublish removes a failed entry from its group so later requests retry
// instead of caching the failure.
func (pc *PlanCache) unpublish(e *icgEntry) {
	pc.mu.Lock()
	for _, grp := range pc.groups {
		for i, g := range grp.entries {
			if g == e {
				grp.entries = append(grp.entries[:i], grp.entries[i+1:]...)
				pc.mu.Unlock()
				return
			}
		}
	}
	pc.mu.Unlock()
}

func (g *icgGroup) find(w Window) *icgEntry {
	for _, e := range g.entries {
		if e.w == w {
			return e
		}
	}
	return nil
}

// findContaining returns the narrowest entry whose window contains w.
func (g *icgGroup) findContaining(w Window) *icgEntry {
	var best *icgEntry
	for _, e := range g.entries {
		if e.w.From <= w.From && e.w.To >= w.To {
			if best == nil || e.w.Width() < best.w.Width() {
				best = e
			}
		}
	}
	return best
}

// evict drops the oldest solved entries past the per-group cap; in-flight
// entries (channel still open) are kept.
func (g *icgGroup) evict() {
	if len(g.entries) <= maxICGEntries {
		return
	}
	kept := g.entries[:0]
	drop := len(g.entries) - maxICGEntries
	for _, e := range g.entries {
		solved := false
		select {
		case <-e.done:
			solved = true
		default:
		}
		if drop > 0 && solved {
			drop--
			continue
		}
		kept = append(kept, e)
	}
	g.entries = kept
}

// widen unions w with every announced window transitively overlapping it.
func widen(w Window, announced map[Window]int) Window {
	u := w
	for changed := true; changed; {
		changed = false
		for a := range announced {
			if a.From <= u.To && a.To >= u.From && (a.From < u.From || a.To > u.To) {
				if a.From < u.From {
					u.From = a.From
				}
				if a.To > u.To {
					u.To = a.To
				}
				changed = true
			}
		}
	}
	return u
}

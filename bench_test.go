package commongraph

// One benchmark per table and figure of the paper's evaluation (§5) plus
// the motivating Figure 1 and the design-choice ablations. Each benchmark
// executes the corresponding experiment at the default scale and, on its
// first iteration, prints the reproduced table so `go test -bench=.`
// output doubles as the regenerated evaluation (see EXPERIMENTS.md for the
// paper-vs-measured comparison).
//
// Workloads are generated deterministically and cached across benchmarks
// within the process, so the expensive stand-in graphs build once.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"commongraph/internal/bench"
)

var printOnce sync.Map

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	p := bench.Default()
	e, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(name, true); !done {
			b.StopTimer()
			fmt.Fprintln(os.Stdout)
			tab.Fprint(os.Stdout)
			b.StartTimer()
		}
	}
}

// BenchmarkFig1 regenerates Figure 1: the incremental-computation and
// graph-mutation cost of deletion batches versus addition batches.
func BenchmarkFig1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkTable2 regenerates Table 2: the input graph inventory
// (stand-in statistics next to the paper's originals).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable4 regenerates Table 4: KickStarter's 50-snapshot time and
// the Direct-Hop / Work-Sharing speedups on all graph×algorithm pairs.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5 regenerates Table 5: the longest single Direct-Hop hop
// (the one-core-per-snapshot estimate) and its speedup over KickStarter.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkFig8 regenerates Figure 8: execution time as the number of
// snapshots grows from 5 to 50 on the TTW stand-in.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9: batch size versus snapshot count at
// a fixed total number of updates.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10: Direct-Hop speedup under varying
// addition:deletion ratios.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11: the per-phase execution-time
// breakdown of KickStarter versus CommonGraph.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkAblationSteiner compares the Steiner solvers' schedule costs
// and runtimes (DESIGN.md ablation A1).
func BenchmarkAblationSteiner(b *testing.B) { benchExperiment(b, "ablation-steiner") }

// BenchmarkAblationScheduler compares the engine scheduler policies on
// the Direct-Hop workload (DESIGN.md ablation A2).
func BenchmarkAblationScheduler(b *testing.B) { benchExperiment(b, "ablation-scheduler") }

// BenchmarkAblationRepresentation isolates in-place mutation versus
// overlay construction (DESIGN.md ablation A3).
func BenchmarkAblationRepresentation(b *testing.B) { benchExperiment(b, "ablation-representation") }

// BenchmarkAblationScale shows the speedups' dependence on workload scale
// (DESIGN.md ablation A4).
func BenchmarkAblationScale(b *testing.B) { benchExperiment(b, "ablation-scale") }

// BenchmarkEvaluateStrategies measures the public API end to end on a
// small evolving graph, one sub-benchmark per strategy.
func BenchmarkEvaluateStrategies(b *testing.B) {
	g := benchGraph(b)
	q := Query{Algorithm: SSSP, Source: 0}
	for _, s := range []Strategy{KickStarter, DirectHop, DirectHopParallel, WorkSharing} {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.Evaluate(q, 0, g.NumSnapshots()-1, s, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var (
	benchG     *EvolvingGraph
	benchGOnce sync.Once
)

func benchGraph(b *testing.B) *EvolvingGraph {
	b.Helper()
	benchGOnce.Do(func() {
		w, err := bench.BuildWorkload("LJ-sim", bench.Tiny(), 10, 200, 200)
		if err != nil {
			panic(err)
		}
		benchG = &EvolvingGraph{}
		g := New(w.N, w.Base)
		for t := 0; t < w.Store.NumVersions()-1; t++ {
			if _, err := g.ApplyUpdates(w.Store.Additions(t).Edges(), w.Store.Deletions(t).Edges()); err != nil {
				panic(err)
			}
		}
		benchG = g
	})
	return benchG
}

// BenchmarkAblationBaselines lines up every strategy including the naive
// Independent baseline (DESIGN.md ablation A5).
func BenchmarkAblationBaselines(b *testing.B) { benchExperiment(b, "ablation-baselines") }

// BenchmarkStorePersistence regenerates the Persistence table: durable
// cold open vs text re-ingest and the WAL append cost (ISSUE 5).
func BenchmarkStorePersistence(b *testing.B) { benchExperiment(b, "store") }

package commongraph

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"commongraph/internal/faults"
)

// TestPersistReopenDifferential is the acceptance differential: a graph
// persisted to disk and reopened must answer every query identically to
// the original under every evaluation strategy — same checksums, same
// reached counts, same per-vertex values.
func TestPersistReopenDifferential(t *testing.T) {
	g, n := buildEvolving(t, 101, 6, 60, 60)
	dir := filepath.Join(t.TempDir(), "s")
	gs, err := g.Persist(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := gs.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenEvolvingGraph(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumVertices() != n || r.NumSnapshots() != g.NumSnapshots() {
		t.Fatalf("reopened shape: n=%d snaps=%d, want n=%d snaps=%d",
			r.NumVertices(), r.NumSnapshots(), n, g.NumSnapshots())
	}
	last := g.NumSnapshots() - 1
	for _, algo := range []Algorithm{BFS, SSSP} {
		for _, s := range Strategies() {
			req := Request{
				Query:    Query{Algorithm: algo, Source: 0},
				Window:   Window{From: 0, To: last},
				Strategy: s,
				Options:  Options{KeepValues: true},
			}
			want, err := g.Run(context.Background(), req)
			if err != nil {
				t.Fatalf("%s/%v in-memory: %v", algo.Name(), s, err)
			}
			got, err := r.Run(context.Background(), req)
			if err != nil {
				t.Fatalf("%s/%v reopened: %v", algo.Name(), s, err)
			}
			if len(got.Snapshots) != len(want.Snapshots) {
				t.Fatalf("%s/%v: %d snapshots, want %d", algo.Name(), s, len(got.Snapshots), len(want.Snapshots))
			}
			for k := range want.Snapshots {
				a, b := want.Snapshots[k], got.Snapshots[k]
				if a.Checksum != b.Checksum || a.Reached != b.Reached || a.Index != b.Index {
					t.Fatalf("%s/%v snapshot %d: reopened store disagrees (checksum %016x vs %016x)",
						algo.Name(), s, k, a.Checksum, b.Checksum)
				}
				for v := 0; v < n; v++ {
					if a.Values[v] != b.Values[v] {
						t.Fatalf("%s/%v snapshot %d vertex %d: %v vs %v",
							algo.Name(), s, k, v, a.Values[v], b.Values[v])
					}
				}
			}
		}
	}
}

// streamUpdate is one scripted raw update for the durable-ingest tests.
type streamUpdate struct {
	del  bool
	edge Edge
}

// script builds a deterministic 44-update stream over an empty graph:
// ten windows of [add, add, add-then-delete] (net two additions each)
// and one fully cancelling window, at batch size 4.
func script() []streamUpdate {
	var us []streamUpdate
	for i := 0; i < 10; i++ {
		a := Edge{Src: VertexID(2 * i), Dst: VertexID(2*i + 1), W: 1}
		b := Edge{Src: VertexID(2*i + 1), Dst: VertexID(2 * i), W: 2}
		c := Edge{Src: VertexID(2 * i), Dst: VertexID(63 - i), W: 3}
		us = append(us,
			streamUpdate{edge: a}, streamUpdate{edge: b},
			streamUpdate{edge: c}, streamUpdate{del: true, edge: c})
	}
	x := Edge{Src: 40, Dst: 41, W: 9}
	y := Edge{Src: 41, Dst: 42, W: 9}
	us = append(us,
		streamUpdate{edge: x}, streamUpdate{del: true, edge: x},
		streamUpdate{edge: y}, streamUpdate{del: true, edge: y})
	return us
}

func push(in *Ingestor, u streamUpdate) error {
	if u.del {
		return in.Delete(u.edge)
	}
	return in.Add(u.edge)
}

// referenceGraph replays the whole script through the in-memory ingestor.
func referenceGraph(t *testing.T, batch int) *EvolvingGraph {
	t.Helper()
	g := New(64, nil)
	in, err := g.Ingestor(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range script() {
		if err := push(in, u); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	return g
}

func sameFinalSnapshot(t *testing.T, got, want *EvolvingGraph, what string) {
	t.Helper()
	if got.NumSnapshots() != want.NumSnapshots() {
		t.Fatalf("%s: %d snapshots, want %d", what, got.NumSnapshots(), want.NumSnapshots())
	}
	a, err := got.Snapshot(got.NumSnapshots() - 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := want.Snapshot(want.NumSnapshots() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("%s: final snapshot has %d edges, want %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: final snapshot edge %d is %v, want %v", what, i, a[i], b[i])
		}
	}
}

// TestDurableIngestMatchesInMemory runs the script through a durable
// ingestor and checks both the live graph and a fresh reopen against the
// in-memory reference — including the fully cancelling window, which
// must advance the WAL commit pointer without creating a snapshot.
func TestDurableIngestMatchesInMemory(t *testing.T) {
	want := referenceGraph(t, 4)
	dir := filepath.Join(t.TempDir(), "s")
	gs, err := New(64, nil).Persist(dir)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gs.Ingestor(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gs.Ingestor(4); err == nil {
		t.Fatal("second concurrent ingestor allowed")
	}
	for _, u := range script() {
		if err := push(in, u); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	sameFinalSnapshot(t, gs.Graph(), want, "live durable graph")
	if got, wantAck := gs.Acknowledged(), uint64(len(script())); got != wantAck {
		t.Fatalf("acknowledged %d raw updates, want %d", got, wantAck)
	}
	// A closed ingestor frees the slot; its stream is over.
	if err := in.Add(Edge{Src: 1, Dst: 2, W: 1}); err == nil {
		t.Fatal("push after Close succeeded")
	}
	if _, err := gs.Ingestor(4); err != nil {
		t.Fatalf("ingestor slot not released by Close: %v", err)
	}
	if err := gs.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Recovered() != 0 {
		t.Fatalf("clean close left %d updates to replay", r.Recovered())
	}
	sameFinalSnapshot(t, r.Graph(), want, "reopened durable graph")
}

// TestDurableIngestCrashReplayMatrix kills the durable write path at
// each store boundary mid-stream, reopens the directory as a crashed
// process' successor would, resumes the stream from the position the
// store reports (Acknowledged + Recovered), and requires the final state
// to be byte-identical to the uninterrupted run — updates are applied
// exactly once no matter where the crash landed.
func TestDurableIngestCrashReplayMatrix(t *testing.T) {
	want := referenceGraph(t, 4)
	after := map[faults.Point]int{
		faults.StoreWALAppend:    13, // mid-stream push (one append per push)
		faults.StoreWALSync:      13, // post-write fsync of the same append
		faults.StoreSegmentWrite: 4,  // segment writes: one per non-empty window
		faults.StoreManifestSwap: 3,  // swaps: one per committed window
		faults.StoreWALRotate:    5,  // rotations: one per committed window
	}
	for p, skip := range after {
		t.Run(string(p), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "s")
			gs, err := New(64, nil).Persist(dir)
			if err != nil {
				t.Fatal(err)
			}
			in, err := gs.Ingestor(4)
			if err != nil {
				t.Fatal(err)
			}
			disarm := faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: p, After: skip, Times: 1}}})
			var failedAt = -1
			for i, u := range script() {
				if err := push(in, u); err != nil {
					if !errors.Is(err, faults.ErrInjected) {
						disarm()
						t.Fatalf("update %d: non-injected failure: %v", i, err)
					}
					failedAt = i
					break
				}
			}
			fired := faults.Hits(p) > skip
			disarm()
			if failedAt < 0 {
				// The post-commit WAL rotation is the one boundary whose
				// failure never surfaces: the manifest swap had already
				// durably committed the window, so the push succeeds and
				// the stream runs to completion.
				if p != faults.StoreWALRotate || !fired {
					t.Fatalf("point %s never fired", p)
				}
				if err := in.Close(); err != nil {
					t.Fatal(err)
				}
				sameFinalSnapshot(t, gs.Graph(), want, "live graph after tolerated trim failure")
				gs.Close()
				r, err := OpenStore(dir)
				if err != nil {
					t.Fatal(err)
				}
				defer r.Close()
				if got := int(r.Acknowledged()) + r.Recovered(); got != len(script()) {
					t.Fatalf("resume position %d after tolerated trim failure, want %d", got, len(script()))
				}
				sameFinalSnapshot(t, r.Graph(), want, "reopened graph after tolerated trim failure")
				return
			}
			gs.Close() // the crash: only the directory survives

			r, err := OpenStore(dir)
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", p, err)
			}
			defer r.Close()
			// The store's resume protocol: everything at or below
			// Acknowledged is in snapshots, the next Recovered updates
			// replay into the ingestor, the rest must be re-sent.
			// A failed push may still have journaled (or even committed)
			// its update before erroring, so resume can reach failedAt+1 —
			// but never beyond what the producer actually sent.
			resume := int(r.Acknowledged()) + r.Recovered()
			if resume > failedAt+1 {
				t.Fatalf("store claims %d updates consumed but only %d were ever pushed", resume, failedAt+1)
			}
			rin, err := r.Ingestor(4)
			if err != nil {
				t.Fatalf("replay ingestor after crash at %s: %v", p, err)
			}
			for i, u := range script()[resume:] {
				if err := push(rin, u); err != nil {
					t.Fatalf("resumed update %d: %v", resume+i, err)
				}
			}
			if err := rin.Close(); err != nil {
				t.Fatal(err)
			}
			sameFinalSnapshot(t, r.Graph(), want, "resumed graph")

			// And the recovered run itself reopens clean.
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			final, err := OpenEvolvingGraph(dir)
			if err != nil {
				t.Fatal(err)
			}
			sameFinalSnapshot(t, final, want, "final reopen")
		})
	}
}

// TestIngestorSeedFailureRetainsRecovered: if replaying the recovered
// window into a fresh ingestor fails (here: the segment write of the
// window's commit), the recovered updates must survive in the GraphStore
// so a retried Ingestor replays them — Recovered() promised they were
// replayable, and dropping them would durably lose acknowledged updates.
func TestIngestorSeedFailureRetainsRecovered(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	gs, err := New(64, nil).Persist(dir)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gs.Ingestor(4)
	if err != nil {
		t.Fatal(err)
	}
	a := Edge{Src: 0, Dst: 1, W: 1}
	b := Edge{Src: 1, Dst: 2, W: 2}
	if err := in.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := in.Add(b); err != nil {
		t.Fatal(err)
	}
	gs.Close() // crash mid-window: both updates are journaled, not committed

	r, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Recovered() != 2 {
		t.Fatalf("recovered %d updates, want 2", r.Recovered())
	}
	// Batch size 2 closes the recovered window inside Seed; the injected
	// segment-write failure aborts its commit.
	disarm := faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.StoreSegmentWrite, Times: 1}}})
	_, err = r.Ingestor(2)
	disarm()
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Ingestor with failing seed = %v, want the injected fault", err)
	}
	if r.Recovered() != 2 {
		t.Fatalf("failed seed dropped the recovered window: Recovered() = %d, want 2", r.Recovered())
	}
	// The failed attempt released the slot; the retry replays the window.
	rin, err := r.Ingestor(2)
	if err != nil {
		t.Fatalf("retried Ingestor: %v", err)
	}
	if err := rin.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Recovered() != 0 || r.Acknowledged() != 2 {
		t.Fatalf("after retry: Recovered()=%d Acknowledged()=%d, want 0 and 2", r.Recovered(), r.Acknowledged())
	}
	last, err := r.Graph().Snapshot(r.Graph().NumSnapshots() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(last) != 2 || last[0] != a || last[1] != b {
		t.Fatalf("replayed snapshot %v, want [%v %v]", last, a, b)
	}
}

// TestWatcherPersistCompaction slides a persisted watcher's window and
// checks that background compaction folds the passed-over snapshots into
// the store's base: a fresh open starts at the window's origin and still
// answers queries over the remaining history identically.
func TestWatcherPersistCompaction(t *testing.T) {
	g, _ := buildEvolving(t, 77, 5, 50, 50)
	dir := filepath.Join(t.TempDir(), "s")
	gs, err := g.Persist(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Watch(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.PersistMaintenance(gs)
	if err := w.Slide(); err != nil { // window [1,3]
		t.Fatal(err)
	}
	if err := w.Slide(); err != nil { // window [2,4]
		t.Fatal(err)
	}
	if err := w.WaitCompaction(); err != nil {
		t.Fatal(err)
	}
	if got := gs.Origin(); got != 0 {
		t.Fatalf("open-time origin changed to %d", got)
	}
	if err := gs.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Origin() != 2 {
		t.Fatalf("reopened origin %d, want 2 (window slid twice)", r.Origin())
	}
	rg := r.Graph()
	if rg.NumSnapshots() != g.NumSnapshots()-2 {
		t.Fatalf("reopened snapshots %d, want %d", rg.NumSnapshots(), g.NumSnapshots()-2)
	}
	// Reopened version i is original version i+2: results must agree.
	req := Request{
		Query:    Query{Algorithm: SSSP, Source: 0},
		Window:   Window{From: 0, To: rg.NumSnapshots() - 1},
		Strategy: WorkSharing,
	}
	got, err := rg.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.Window = Window{From: 2, To: g.NumSnapshots() - 1}
	want, err := g.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.Snapshots {
		if got.Snapshots[k].Checksum != want.Snapshots[k].Checksum ||
			got.Snapshots[k].Reached != want.Snapshots[k].Reached {
			t.Fatalf("compacted store disagrees at window snapshot %d", k)
		}
	}
}

// TestPersistRequiresFreshDir documents Persist's refusal to overwrite.
func TestPersistRequiresFreshDir(t *testing.T) {
	g := New(4, []Edge{{Src: 0, Dst: 1, W: 1}})
	dir := filepath.Join(t.TempDir(), "s")
	gs, err := g.Persist(dir)
	if err != nil {
		t.Fatal(err)
	}
	gs.Close()
	if _, err := g.Persist(dir); err == nil {
		t.Fatal("Persist over an existing store succeeded")
	}
}

// TestWatcherCloseStopsCompaction: after Close, slides still maintain the
// in-memory window but their background folds are cancelled — the store
// keeps its origin on reopen and the cancellation is not reported as a
// compaction failure. Close is idempotent.
func TestWatcherCloseStopsCompaction(t *testing.T) {
	g, _ := buildEvolving(t, 78, 5, 50, 50)
	dir := filepath.Join(t.TempDir(), "s")
	gs, err := g.Persist(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Watch(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.PersistMaintenance(gs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Slide(); err != nil { // in-memory maintenance unaffected
		t.Fatal(err)
	}
	if err := w.WaitCompaction(); err != nil {
		t.Fatalf("cancelled compaction surfaced as an error: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := gs.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Origin() != 0 {
		t.Fatalf("compaction ran after Close: reopened origin %d, want 0", r.Origin())
	}
}

// TestCompactContextCancelled: a cancelled context skips the fold before
// it starts; a live one compacts exactly like Compact.
func TestCompactContextCancelled(t *testing.T) {
	g, _ := buildEvolving(t, 79, 4, 40, 40)
	dir := filepath.Join(t.TempDir(), "s")
	gs, err := g.Persist(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := gs.CompactContext(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("CompactContext on cancelled ctx = %v, want context.Canceled", err)
	}
	if err := gs.CompactContext(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := gs.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Origin() != 2 {
		t.Fatalf("reopened origin %d, want 2", r.Origin())
	}
}

package commongraph

import (
	"context"
	"sync"
	"testing"
)

// commonGraphStrategies are the strategies the PlanCache applies to.
func commonGraphStrategies() []Strategy {
	return []Strategy{DirectHop, DirectHopParallel, WorkSharing, WorkSharingParallel}
}

// TestPlanCacheDifferential: with a PlanCache configured, every
// CommonGraph strategy must produce exactly the results of the uncached
// path, for several algorithms and overlapping windows — the shared
// common state is an optimization, never an approximation.
func TestPlanCacheDifferential(t *testing.T) {
	g, _ := buildEvolving(t, 53, 6, 70, 70)
	pc := NewPlanCache()
	windows := []Window{{From: 0, To: 4}, {From: 1, To: 5}, {From: 2, To: 6}, {From: 0, To: 6}, {From: 3, To: 3}}
	for _, q := range []Query{{Algorithm: BFS, Source: 0}, {Algorithm: SSSP, Source: 2}} {
		for _, s := range commonGraphStrategies() {
			for _, w := range windows {
				req := Request{Query: q, Window: w, Strategy: s}
				plain, err := g.Run(context.Background(), req)
				if err != nil {
					t.Fatalf("%s %v %v: uncached: %v", q.Algorithm.Name(), s, w, err)
				}
				req.Options.Plan = pc
				cached, err := g.Run(context.Background(), req)
				if err != nil {
					t.Fatalf("%s %v %v: cached: %v", q.Algorithm.Name(), s, w, err)
				}
				if len(cached.Snapshots) != len(plain.Snapshots) {
					t.Fatalf("%s %v %v: snapshot count %d vs %d",
						q.Algorithm.Name(), s, w, len(cached.Snapshots), len(plain.Snapshots))
				}
				for i := range cached.Snapshots {
					if cached.Snapshots[i].Checksum != plain.Snapshots[i].Checksum ||
						cached.Snapshots[i].Reached != plain.Snapshots[i].Reached {
						t.Fatalf("%s %v %v: snapshot %d diverges under plan cache",
							q.Algorithm.Name(), s, w, i)
					}
				}
			}
		}
	}
	st := pc.Stats()
	if st.Solves == 0 || st.Shared == 0 {
		t.Fatalf("cache never engaged: %+v", st)
	}
}

// TestPlanCacheSharedSolveOnce is the overlap acceptance test: N
// concurrent queries with overlapping (but distinct, staggered) windows,
// all announced before any solve starts, must do exactly ONE from-scratch
// common-graph solve between them — every other request shares or derives
// its state from the union solve.
func TestPlanCacheSharedSolveOnce(t *testing.T) {
	g, _ := buildEvolving(t, 59, 9, 80, 80)
	pc := NewPlanCache()
	q := Query{Algorithm: SSSP, Source: 1}
	windows := []Window{
		{From: 0, To: 4}, {From: 1, To: 5}, {From: 2, To: 6},
		{From: 3, To: 7}, {From: 4, To: 8}, {From: 0, To: 8},
		{From: 2, To: 5}, {From: 1, To: 7},
	}
	// Admission announces every window before any evaluation begins —
	// the serve layer's contract.
	releases := make([]func(), len(windows))
	for i, w := range windows {
		releases[i] = pc.Announce(w)
	}
	results := make([]*Result, len(windows))
	errs := make([]error, len(windows))
	var wg sync.WaitGroup
	for i, w := range windows {
		wg.Add(1)
		go func(i int, w Window) {
			defer wg.Done()
			defer releases[i]()
			results[i], errs[i] = g.Run(context.Background(), Request{
				Query: q, Window: w, Strategy: DirectHop,
				Options: Options{Plan: pc},
			})
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("window %v: %v", windows[i], err)
		}
	}
	st := pc.Stats()
	if st.Solves != 1 {
		t.Fatalf("want exactly 1 shared common-graph solve for %d overlapping queries, got %d (stats %+v)",
			len(windows), st.Solves, st)
	}
	if st.Derives+st.Shared < uint64(len(windows)-1) {
		t.Fatalf("remaining queries should share or derive: %+v", st)
	}
	// And the shared results must still be exact: re-run one window
	// uncached and compare.
	check, err := g.Run(context.Background(), Request{Query: q, Window: windows[2], Strategy: DirectHop})
	if err != nil {
		t.Fatal(err)
	}
	for i := range check.Snapshots {
		if results[2].Snapshots[i].Checksum != check.Snapshots[i].Checksum {
			t.Fatalf("snapshot %d: shared result diverges from uncached", i)
		}
	}
}

// TestPlanCacheExactReuse: identical repeated requests single-flight to
// one solve and then share the cached state.
func TestPlanCacheExactReuse(t *testing.T) {
	g, _ := buildEvolving(t, 61, 4, 50, 50)
	pc := NewPlanCache()
	req := Request{
		Query: Query{Algorithm: BFS, Source: 0}, Window: Window{From: 0, To: 4},
		Strategy: WorkSharing, Options: Options{Plan: pc},
	}
	for i := 0; i < 5; i++ {
		if _, err := g.Run(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	st := pc.Stats()
	if st.Solves != 1 || st.Shared != 4 {
		t.Fatalf("want 1 solve + 4 shared, got %+v", st)
	}
	if st.SchedMisses != 1 || st.SchedHits != 4 {
		t.Fatalf("schedule should memoize: %+v", st)
	}
	if st.RepMisses != 1 || st.RepHits != 4 {
		t.Fatalf("rep should memoize: %+v", st)
	}
}

// TestPlanCacheWatcherPath: a Watcher evaluation with a PlanCache matches
// the watcher's own uncached evaluation, and a second watcher query over
// the same window shares the solve.
func TestPlanCacheWatcherPath(t *testing.T) {
	g, _ := buildEvolving(t, 67, 5, 60, 60)
	w, err := g.Watch(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	pc := NewPlanCache()
	q := Query{Algorithm: SSSP, Source: 0}
	plain, err := w.Run(context.Background(), Request{Query: q, Strategy: WorkSharingParallel})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		cached, err := w.Run(context.Background(), Request{
			Query: q, Strategy: WorkSharingParallel, Options: Options{Plan: pc},
		})
		if err != nil {
			t.Fatal(err)
		}
		for j := range cached.Snapshots {
			if cached.Snapshots[j].Checksum != plain.Snapshots[j].Checksum {
				t.Fatalf("run %d snapshot %d diverges under plan cache", i, j)
			}
		}
	}
	if st := pc.Stats(); st.Solves != 1 || st.Shared != 1 {
		t.Fatalf("watcher path should share the solve: %+v", st)
	}
}

// TestPlanCacheStoreSwap: pointing the same cache at a different evolving
// graph must reset it (the follower re-bootstrap case), never serve
// states solved on the old store.
func TestPlanCacheStoreSwap(t *testing.T) {
	g1, _ := buildEvolving(t, 71, 3, 40, 40)
	g2, _ := buildEvolving(t, 73, 3, 40, 40)
	pc := NewPlanCache()
	req := Request{
		Query: Query{Algorithm: BFS, Source: 0}, Window: Window{From: 0, To: 3},
		Strategy: DirectHop, Options: Options{Plan: pc},
	}
	r1, err := g1.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g2.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	uncached2, err := g2.Run(context.Background(), Request{Query: req.Query, Window: req.Window, Strategy: DirectHop})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r2.Snapshots {
		if r2.Snapshots[i].Checksum != uncached2.Snapshots[i].Checksum {
			t.Fatalf("snapshot %d served from the wrong store's cache", i)
		}
	}
	st := pc.Stats()
	if st.Invalidations == 0 || st.Solves != 2 {
		t.Fatalf("store swap should reset the cache: %+v (r1 had %d snapshots)", st, len(r1.Snapshots))
	}
}

// TestPlanCacheWidenTransitive: the announced-window union is transitive —
// a chain of pairwise-overlapping windows folds into one solve even though
// the endpoints do not overlap each other.
func TestPlanCacheWidenTransitive(t *testing.T) {
	got := widen(Window{From: 0, To: 3}, map[Window]int{
		{From: 2, To: 5}: 1,
		{From: 5, To: 8}: 1,
		{From: 9, To: 9}: 1, // disjoint from the chain: must not widen
	})
	if got != (Window{From: 0, To: 8}) {
		t.Fatalf("widen = %+v, want [0,8]", got)
	}
}

package commongraph

import (
	"context"
	"strings"
	"testing"
)

// TestRunMatchesEvaluate pins the deprecated-wrapper contract: Run with a
// background context must produce byte-identical results to the legacy
// Evaluate call for every strategy.
func TestRunMatchesEvaluate(t *testing.T) {
	g, _ := buildEvolving(t, 19, 4, 60, 60)
	q := Query{Algorithm: SSSP, Source: 0}
	for _, s := range Strategies() {
		old, err := g.Evaluate(q, 0, 4, s, Options{})
		if err != nil {
			t.Fatalf("%v: Evaluate: %v", s, err)
		}
		res, err := g.Run(context.Background(), Request{
			Query:    q,
			Window:   Window{From: 0, To: 4},
			Strategy: s,
		})
		if err != nil {
			t.Fatalf("%v: Run: %v", s, err)
		}
		if len(res.Snapshots) != len(old.Snapshots) {
			t.Fatalf("%v: snapshot count %d vs %d", s, len(res.Snapshots), len(old.Snapshots))
		}
		for i := range res.Snapshots {
			if res.Snapshots[i].Checksum != old.Snapshots[i].Checksum ||
				res.Snapshots[i].Reached != old.Snapshots[i].Reached {
				t.Fatalf("%v snapshot %d: Run and Evaluate disagree", s, i)
			}
		}
	}
}

// TestRunNilContext documents that a nil context means Background.
func TestRunNilContext(t *testing.T) {
	g, _ := buildEvolving(t, 23, 2, 30, 30)
	res, err := g.Run(nil, Request{
		Query:    Query{Algorithm: BFS, Source: 0},
		Window:   Window{From: 0, To: 2},
		Strategy: DirectHop,
	})
	if err != nil || len(res.Snapshots) != 3 {
		t.Fatalf("nil ctx: res=%v err=%v", res, err)
	}
}

// TestRunCancelledContext: a context cancelled before the call must abort
// the evaluation with the context's error.
func TestRunCancelledContext(t *testing.T) {
	g, _ := buildEvolving(t, 29, 3, 40, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := g.Run(ctx, Request{
		Query:    Query{Algorithm: BFS, Source: 0},
		Window:   Window{From: 0, To: 3},
		Strategy: WorkSharing,
	})
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunContextParameterWins: Run's context parameter overrides any
// context smuggled in through the deprecated Options.Context field.
func TestRunContextParameterWins(t *testing.T) {
	g, _ := buildEvolving(t, 31, 2, 30, 30)
	stale, cancelStale := context.WithCancel(context.Background())
	cancelStale()
	res, err := g.Run(context.Background(), Request{
		Query:    Query{Algorithm: BFS, Source: 0},
		Window:   Window{From: 0, To: 2},
		Strategy: DirectHop,
		Options:  Options{Context: stale},
	})
	if err != nil || len(res.Snapshots) != 3 {
		t.Fatalf("parameter should win over Options.Context: res=%v err=%v", res, err)
	}
}

// TestWatcherRunMatchesEvaluate: the Watcher's Run must agree with its
// deprecated Evaluate, and the request's Window must be ignored in favor
// of the maintained window.
func TestWatcherRunMatchesEvaluate(t *testing.T) {
	g, _ := buildEvolving(t, 37, 4, 50, 50)
	w, err := g.Watch(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Algorithm: SSSP, Source: 0}
	old, err := w.Evaluate(q, WorkSharing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(context.Background(), Request{
		Query:    q,
		Window:   Window{From: 99, To: 7}, // nonsense on purpose: maintained window wins
		Strategy: WorkSharing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) != len(old.Snapshots) {
		t.Fatalf("snapshot count %d vs %d", len(res.Snapshots), len(old.Snapshots))
	}
	for i := range res.Snapshots {
		if res.Snapshots[i].Checksum != old.Snapshots[i].Checksum {
			t.Fatalf("snapshot %d: Watcher Run and Evaluate disagree", i)
		}
	}
}

// TestRunMultiMatchesEvaluateMulti pins the multi-query wrapper pair.
func TestRunMultiMatchesEvaluateMulti(t *testing.T) {
	g, _ := buildEvolving(t, 41, 3, 40, 40)
	queries := []Query{
		{Algorithm: BFS, Source: 0},
		{Algorithm: SSSP, Source: 1},
	}
	old, err := g.EvaluateMulti(queries, 0, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.RunMulti(context.Background(), queries, Window{From: 0, To: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(old) {
		t.Fatalf("result count %d vs %d", len(res), len(old))
	}
	for qi := range res {
		for i := range res[qi].Snapshots {
			if res[qi].Snapshots[i].Checksum != old[qi].Snapshots[i].Checksum {
				t.Fatalf("query %d snapshot %d: RunMulti and EvaluateMulti disagree", qi, i)
			}
		}
	}
}

// TestParseStrategyRoundTrip: every strategy parses back from both its
// Slug and its String form, case-insensitively.
func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range Strategies() {
		for _, form := range []string{s.Slug(), s.String(), strings.ToUpper(s.Slug())} {
			got, err := ParseStrategy(form)
			if err != nil {
				t.Fatalf("ParseStrategy(%q): %v", form, err)
			}
			if got != s {
				t.Fatalf("ParseStrategy(%q) = %v, want %v", form, got, s)
			}
		}
	}
}

// TestParseStrategyAliases covers the documented short forms.
func TestParseStrategyAliases(t *testing.T) {
	aliases := map[string]Strategy{
		"ks":    KickStarter,
		"indep": Independent,
		"dh":    DirectHop,
		"dhp":   DirectHopParallel,
		"ws":    WorkSharing,
		"wsp":   WorkSharingParallel,
	}
	for in, want := range aliases {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Fatalf("ParseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

// TestParseStrategyUnknown: an unknown name errors and the message lists
// the valid slugs so CLI users can self-correct.
func TestParseStrategyUnknown(t *testing.T) {
	_, err := ParseStrategy("quantum-hop")
	if err == nil {
		t.Fatal("want error for unknown strategy")
	}
	if !strings.Contains(err.Error(), "work-sharing") || !strings.Contains(err.Error(), "kickstarter") {
		t.Fatalf("error should list valid strategies, got: %v", err)
	}
}

// TestPlanOptimalSchedule: the interval-DP solver must never cost more
// than the greedy schedule, and both plans must agree on the
// schedule-independent quantities.
func TestPlanOptimalSchedule(t *testing.T) {
	g, _ := buildEvolving(t, 43, 6, 80, 80)
	greedy, err := g.Plan(0, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	optimal, err := g.Plan(0, 6, Options{OptimalSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	if optimal.WorkSharingAdditions > greedy.WorkSharingAdditions {
		t.Fatalf("optimal schedule costs %d > greedy %d",
			optimal.WorkSharingAdditions, greedy.WorkSharingAdditions)
	}
	if optimal.Snapshots != greedy.Snapshots ||
		optimal.CommonEdges != greedy.CommonEdges ||
		optimal.DirectHopAdditions != greedy.DirectHopAdditions {
		t.Fatalf("schedule-independent plan fields disagree: %+v vs %+v", optimal, greedy)
	}
}

// TestWindowWidth nails the inclusive-range arithmetic.
func TestWindowWidth(t *testing.T) {
	if w := (Window{From: 0, To: 0}).Width(); w != 1 {
		t.Fatalf("width of [0,0] = %d", w)
	}
	if w := (Window{From: 2, To: 6}).Width(); w != 5 {
		t.Fatalf("width of [2,6] = %d", w)
	}
}

// Command cgrepl runs the WAL-shipping replication roles of a cgstore:
// a primary serving its committed history to followers, a follower
// replaying it and answering queries at bounded staleness, and an
// operator-side promote that turns a follower into the new primary.
//
// Usage:
//
//	cgrepl serve -store /data/primary.cgstore -listen :7070
//	cgrepl follow -store /data/replica.cgstore -primary primary-host:7070 -ops :9090
//	cgrepl follow -store /data/replica.cgstore -primary primary-host:7070 -max-lag-seq 1000 -window 8
//	cgrepl promote -ops replica-host:9090
//
// serve opens (or keeps serving) an existing store and replicates every
// committed transition to connecting followers; ingest can proceed
// through the same store from the embedding process. follow bootstraps
// or resumes a replica directory from the primary — reconnecting with
// jittered exponential backoff for as long as it runs — and exposes the
// operational endpoint (/metrics, /healthz, /readyz, /lag, /promote).
// promote POSTs to a follower's endpoint, fencing the old primary; the
// response reports the new epoch and the WAL sequence producers should
// resume from.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"commongraph"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "follow":
		err = follow(os.Args[2:])
	case "promote":
		err = promote(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "cgrepl: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgrepl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cgrepl serve   -store DIR -listen ADDR [-heartbeat D]
  cgrepl follow  -store DIR -primary ADDR [-ops ADDR] [-window N]
                 [-max-lag-seq N] [-max-lag-windows N] [-serve-stale] [-backoff D]
  cgrepl promote -ops ADDR`)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	storeDir := fs.String("store", "", "durable cgstore directory to replicate (required)")
	listen := fs.String("listen", ":7070", "address to serve followers on")
	heartbeat := fs.Duration("heartbeat", 100*time.Millisecond, "position-broadcast period on quiet stores")
	fs.Parse(args)
	if *storeDir == "" {
		return fmt.Errorf("serve: -store is required")
	}
	gs, err := commongraph.OpenStore(*storeDir)
	if err != nil {
		return err
	}
	defer gs.Close()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	rs := gs.ServeReplication(ln, commongraph.ReplicationOptions{Heartbeat: *heartbeat})
	defer rs.Close()
	fmt.Printf("cgrepl: serving %s on %s (epoch %d, %d snapshots)\n",
		*storeDir, ln.Addr(), gs.Epoch(), gs.Graph().NumSnapshots())
	waitForSignal()
	fmt.Println("cgrepl: shutting down")
	return nil
}

func follow(args []string) error {
	fs := flag.NewFlagSet("follow", flag.ExitOnError)
	storeDir := fs.String("store", "", "replica directory — created on first bootstrap (required)")
	primary := fs.String("primary", "", "primary's replication address (required)")
	ops := fs.String("ops", "", "operational endpoint address (/metrics /healthz /readyz /lag /promote); empty disables")
	window := fs.Int("window", 0, "maintained window width in snapshots (0 = unbounded)")
	maxLagSeq := fs.Uint64("max-lag-seq", 0, "staleness budget in WAL sequence numbers (0 = unbounded)")
	maxLagWin := fs.Int("max-lag-windows", 0, "staleness budget in committed windows (0 = unbounded)")
	serveStale := fs.Bool("serve-stale", false, "serve reads past the budget, marked stale, instead of failing fast")
	backoff := fs.Duration("backoff", 20*time.Millisecond, "initial reconnect backoff")
	fs.Parse(args)
	if *storeDir == "" || *primary == "" {
		return fmt.Errorf("follow: -store and -primary are required")
	}
	f, err := commongraph.Follow(commongraph.FollowerConfig{
		Dir:           *storeDir,
		Addr:          *primary,
		WindowWidth:   *window,
		MaxLagSeq:     *maxLagSeq,
		MaxLagWindows: *maxLagWin,
		ServeStale:    *serveStale,
		RetryBackoff:  *backoff,
	})
	if err != nil {
		return err
	}
	defer f.Close()
	if *ops != "" {
		m, err := f.ServeOps(*ops)
		if err != nil {
			return err
		}
		defer m.Close()
		fmt.Printf("cgrepl: ops endpoint on http://%s\n", m.Addr())
	}
	fmt.Printf("cgrepl: following %s into %s\n", *primary, *storeDir)
	done := signalChan()
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-done:
			if gs := f.Promoted(); gs != nil {
				fmt.Printf("cgrepl: promoted to primary (epoch %d, resume from seq %d); exiting follower loop\n",
					gs.Epoch(), gs.Acknowledged())
			}
			fmt.Println("cgrepl: shutting down")
			return nil
		case <-tick.C:
			if gs := f.Promoted(); gs != nil {
				fmt.Printf("cgrepl: promoted to primary (epoch %d, resume from seq %d)\n",
					gs.Epoch(), gs.Acknowledged())
				<-done
				fmt.Println("cgrepl: shutting down")
				return nil
			}
			l := f.Lag()
			ready, detail := f.Ready()
			fmt.Printf("cgrepl: lag known=%v seq=%d windows=%d ready=%v (%s)\n",
				l.Known, l.Seq, l.Windows, ready, detail)
		}
	}
}

func promote(args []string) error {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	ops := fs.String("ops", "", "follower's operational endpoint address (required)")
	fs.Parse(args)
	if *ops == "" {
		return fmt.Errorf("promote: -ops is required")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+*ops+"/promote", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote: %s: %s", resp.Status, string(body))
	}
	fmt.Printf("cgrepl: promoted: %s", string(body))
	return nil
}

func signalChan() <-chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch
}

func waitForSignal() { <-signalChan() }

// Command cggen generates synthetic evolving-graph datasets on disk,
// either from the paper's Table 2 stand-ins or from custom R-MAT
// parameters.
//
// Usage:
//
//	cggen -out /tmp/lj -graph LJ-sim -snapshots 10 -adds 500 -dels 500
//	cggen -out /tmp/custom -scale 12 -edges 100000 -snapshots 5
//	cggen -store /tmp/lj.cgstore -graph LJ-sim -snapshots 10
//	COMMONGRAPH_TRACE=/tmp/gen.json cggen -out /tmp/lj -graph LJ-sim
package main

import (
	"flag"
	"fmt"
	"os"

	"commongraph"
	"commongraph/internal/dataset"
	"commongraph/internal/gen"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
	"commongraph/internal/snapshot"
)

func main() {
	var (
		out       = flag.String("out", "", "dataset output directory (this and/or -store is required)")
		storeDir  = flag.String("store", "", "also write a durable cgstore (binary segments + WAL) at this directory")
		name      = flag.String("graph", "", "stand-in graph name (LJ-sim, DL-sim, Wen-sim, TTW-sim); empty = custom R-MAT")
		scale     = flag.Int("scale", 12, "custom R-MAT scale (vertices = 1<<scale)")
		edges     = flag.Int("edges", 100_000, "custom R-MAT edge count")
		snapshots = flag.Int("snapshots", 10, "number of snapshots (>= 1)")
		adds      = flag.Int("adds", 500, "edge additions per transition")
		dels      = flag.Int("dels", 500, "edge deletions per transition")
		seed      = flag.Uint64("seed", 42, "generator seed")
		format    = flag.String("format", "binary", "on-disk format: text or binary")
	)
	flag.Parse()
	if *out == "" && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "cggen: -out and/or -store is required")
		flag.Usage()
		os.Exit(2)
	}
	if *snapshots < 1 {
		fail(fmt.Errorf("snapshots must be >= 1, got %d", *snapshots))
	}

	var (
		n    int
		base graph.EdgeList
	)
	sp := obs.Env().StartSpan("gen.base", obs.String("graph", *name))
	if *name != "" {
		s, ok := gen.ByName(*name)
		if !ok {
			fail(fmt.Errorf("unknown stand-in %q", *name))
		}
		n, base = s.Build(1)
	} else {
		n, base = gen.RMAT(gen.DefaultRMAT(*scale, *edges, *seed))
	}
	sp.SetAttr(obs.Int("vertices", n), obs.Int("edges", len(base)))
	sp.End()

	sp = obs.Env().StartSpan("gen.stream", obs.Int("transitions", *snapshots-1))
	trs, err := gen.Stream(n, base, gen.StreamConfig{
		Transitions: *snapshots - 1, Additions: *adds, Deletions: *dels, Seed: *seed + 1,
	})
	sp.End()
	if err != nil {
		fail(err)
	}
	sp = obs.Env().StartSpan("gen.store", obs.Int("snapshots", *snapshots))
	store := snapshot.NewStore(n, base)
	for _, tr := range trs {
		if _, err := store.NewVersion(tr.Additions, tr.Deletions); err != nil {
			fail(err)
		}
	}
	sp.End()
	if *out != "" {
		sp = obs.Env().StartSpan("gen.save", obs.String("format", *format))
		err = dataset.Save(*out, store, dataset.Format(*format))
		sp.End()
		if err != nil {
			fail(err)
		}
	}
	if *storeDir != "" {
		gs, perr := commongraph.FromStore(store).Persist(*storeDir)
		if perr != nil {
			fail(perr)
		}
		if cerr := gs.Close(); cerr != nil {
			fail(cerr)
		}
		fmt.Printf("wrote durable store %s\n", *storeDir)
	}
	if err := obs.WriteEnvTrace(); err != nil {
		fail(err)
	}
	dest := *out
	if dest == "" {
		dest = *storeDir
	}
	fmt.Printf("wrote %s: %d vertices, %d base edges, %d snapshots (+%d/-%d per transition)\n",
		dest, n, len(base), *snapshots, *adds, *dels)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "cggen: %v\n", err)
	os.Exit(1)
}

// Command cgvet runs CommonGraph's invariant-checking static-analysis
// suite (internal/analysis) over the module: the mutation-free CSR
// contract, engine-state monotonicity, goroutine lock discipline,
// determinism of the algorithm/representation layers, and observability
// discipline (library packages report through internal/obs, never by
// printing to the terminal).
//
// Usage:
//
//	go run ./cmd/cgvet ./...              # whole module (what CI runs)
//	go run ./cmd/cgvet ./internal/core    # one package
//	go run ./cmd/cgvet -json ./...        # machine-readable findings
//	go run ./cmd/cgvet -list              # describe the analyzers
//
// Exit status: 0 when clean, 1 when any analyzer reported a finding,
// 2 on load/internal errors — the shape CI gates expect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"commongraph/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cgvet [-json] [-list] [packages]\n\n"+
			"Runs CommonGraph's repo-specific analyzers. Package patterns are\n"+
			"module-relative (./..., ./internal/graph, ./internal/...); with no\n"+
			"pattern the whole module is checked.\n\nAnalyzers:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgvet:", err)
		os.Exit(2)
	}
	pkgs = filterPackages(pkgs, flag.Args())
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "cgvet: no packages match", flag.Args())
		os.Exit(2)
	}

	diags := analysis.RunAnalyzers(pkgs, analysis.All)
	relativize(diags)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "cgvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// filterPackages keeps the packages matching the go-style patterns. An
// empty pattern list, "./..." or "..." selects everything.
func filterPackages(pkgs []*analysis.Package, patterns []string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			if matchPattern(p.Path, pat) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func matchPattern(pkgPath, pattern string) bool {
	pattern = strings.TrimPrefix(pattern, "./")
	pattern = strings.TrimSuffix(pattern, "/")
	if pattern == "..." || pattern == "" || pattern == "." {
		return true
	}
	recursive := false
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		recursive = true
		pattern = rest
	}
	// Patterns are module-relative; package paths are fully qualified.
	if pkgPath == pattern || strings.HasSuffix(pkgPath, "/"+pattern) {
		return true
	}
	if recursive {
		for p := pkgPath; ; {
			i := strings.LastIndexByte(p, '/')
			if i < 0 {
				return false
			}
			p = p[:i]
			if p == pattern || strings.HasSuffix(p, "/"+pattern) {
				return true
			}
		}
	}
	return false
}

// relativize rewrites absolute file names relative to the working
// directory for readable terminal output.
func relativize(diags []analysis.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(wd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
}

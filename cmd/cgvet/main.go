// Command cgvet runs CommonGraph's invariant-checking static-analysis
// suite (internal/analysis) over the module: the syntactic tier (the
// mutation-free CSR contract, engine-state monotonicity, lock
// discipline, determinism, observability discipline) and the flow tier
// (goroutine termination, context propagation, atomic/plain access
// contracts, durability error flow), plus an auditor that rejects
// unjustified //cgvet:ignore suppressions.
//
// Usage:
//
//	go run ./cmd/cgvet ./...              # whole module (what CI runs)
//	go run ./cmd/cgvet ./internal/core    # one package
//	go run ./cmd/cgvet -json ./...        # machine-readable findings
//	go run ./cmd/cgvet -sarif ./...       # SARIF 2.1.0 for code scanning
//	go run ./cmd/cgvet -list              # describe the analyzers
//
// Findings present in the baseline ledger (.cgvet.baseline.json at the
// module root; override with -baseline) are reported as accepted and do
// not fail the run; -write-baseline regenerates the ledger from the
// current findings. Exit status: 0 when clean (or all findings
// baselined), 1 on any new finding, 2 on load/internal errors — the
// shape CI gates expect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"commongraph/internal/analysis"
)

const baselineName = ".cgvet.baseline.json"

func main() {
	jsonOut := flag.Bool("json", false, "emit new findings as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit new findings as SARIF 2.1.0")
	list := flag.Bool("list", false, "list the analyzers and exit")
	baselinePath := flag.String("baseline", "", "baseline ledger path (default <module root>/"+baselineName+")")
	writeBaseline := flag.Bool("write-baseline", false, "accept all current findings into the baseline and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cgvet [-json|-sarif] [-baseline file] [-write-baseline] [-list] [packages]\n\n"+
			"Runs CommonGraph's repo-specific analyzers. Package patterns are\n"+
			"module-relative (./..., ./internal/graph, ./internal/...); with no\n"+
			"pattern the whole module is checked.\n\nAnalyzers:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(os.Stderr, "  %-15s [%-7s] %s\n", a.Name, sevOf(a), a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-15s %-7s %s\n", a.Name, sevOf(a), a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "cgvet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgvet:", err)
		os.Exit(2)
	}
	pkgs = filterPackages(pkgs, flag.Args())
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "cgvet: no packages match", flag.Args())
		os.Exit(2)
	}

	diags := analysis.RunAnalyzers(pkgs, analysis.All)

	bpath := *baselinePath
	if bpath == "" {
		bpath = filepath.Join(root, baselineName)
	}
	if *writeBaseline {
		if err := analysis.WriteBaseline(bpath, diags, root); err != nil {
			fmt.Fprintln(os.Stderr, "cgvet:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "cgvet: wrote %d finding(s) to %s\n", len(diags), bpath)
		return
	}
	baseline, err := analysis.LoadBaseline(bpath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgvet:", err)
		os.Exit(2)
	}
	fresh, accepted := baseline.Filter(diags, root)

	switch {
	case *sarifOut:
		out, err := analysis.SARIF(fresh, analysis.All, root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cgvet:", err)
			os.Exit(2)
		}
		os.Stdout.Write(append(out, '\n'))
	case *jsonOut:
		relativize(fresh)
		if fresh == nil {
			fresh = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fresh); err != nil {
			fmt.Fprintln(os.Stderr, "cgvet:", err)
			os.Exit(2)
		}
	default:
		relativize(fresh)
		for _, d := range fresh {
			fmt.Println(d)
		}
	}
	if len(accepted) > 0 {
		fmt.Fprintf(os.Stderr, "cgvet: %d baselined finding(s) suppressed (see %s)\n", len(accepted), bpath)
	}
	if len(fresh) > 0 {
		os.Exit(1)
	}
}

func sevOf(a *analysis.Analyzer) analysis.Severity {
	if a.Severity == "" {
		return analysis.SevError
	}
	return a.Severity
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// filterPackages keeps the packages matching the go-style patterns. An
// empty pattern list, "./..." or "..." selects everything.
func filterPackages(pkgs []*analysis.Package, patterns []string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			if matchPattern(p.Path, pat) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func matchPattern(pkgPath, pattern string) bool {
	pattern = strings.TrimPrefix(pattern, "./")
	pattern = strings.TrimSuffix(pattern, "/")
	if pattern == "..." || pattern == "" || pattern == "." {
		return true
	}
	recursive := false
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		recursive = true
		pattern = rest
	}
	// Patterns are module-relative; package paths are fully qualified.
	if pkgPath == pattern || strings.HasSuffix(pkgPath, "/"+pattern) {
		return true
	}
	if recursive {
		for p := pkgPath; ; {
			i := strings.LastIndexByte(p, '/')
			if i < 0 {
				return false
			}
			p = p[:i]
			if p == pattern || strings.HasSuffix(p, "/"+pattern) {
				return true
			}
		}
	}
	return false
}

// relativize rewrites absolute file names relative to the working
// directory for readable terminal output.
func relativize(diags []analysis.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(wd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
}

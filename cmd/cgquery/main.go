// Command cgquery evaluates a query over a snapshot window of a dataset
// produced by cggen, with any of the evaluation strategies.
//
// Usage:
//
//	cgquery -data /tmp/lj -algo SSSP -source 0 -strategy work-sharing
//	cgquery -data /tmp/lj -algo BFS -from 2 -to 8 -strategy kickstarter -vertex 17
//	cgquery -data /tmp/lj -strategy work-sharing-parallel -trace /tmp/cg.trace.json -metrics
//	cgquery -store /tmp/lj.cgstore -algo SSSP -strategy work-sharing
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"commongraph"
	"commongraph/internal/dataset"
)

func main() {
	// Subcommand dispatch before flag.Parse: "cgquery top" is the live
	// ops dashboard (see top.go); everything else is the classic
	// flag-driven one-shot query evaluator.
	if len(os.Args) > 1 && os.Args[1] == "top" {
		runTop(os.Args[2:])
		return
	}
	var (
		data     = flag.String("data", "", "dataset directory from cggen (this or -store is required)")
		storeDir = flag.String("store", "", "durable cgstore directory (cggen -store / EvolvingGraph.Persist)")
		algoName = flag.String("algo", "SSSP", "algorithm: BFS, SSSP, SSWP, SSNP, Viterbi")
		source   = flag.Uint("source", 0, "query source vertex")
		from     = flag.Int("from", 0, "first snapshot of the window")
		to       = flag.Int("to", -1, "last snapshot of the window (-1 = latest)")
		strategy = flag.String("strategy", "direct-hop", "kickstarter | independent | direct-hop | direct-hop-parallel | work-sharing | work-sharing-parallel")
		vertex   = flag.Int("vertex", -1, "also print this vertex's value at each snapshot")
		plan     = flag.Bool("plan", false, "print the schedule comparison instead of evaluating")
		optimal  = flag.Bool("optimal", false, "use the exact interval-DP Steiner schedule (work-sharing strategies and -plan)")
		tracePth = flag.String("trace", "", "write a Chrome trace of the evaluation: a .json path, or 'log' to stream spans to stderr")
		metrics  = flag.Bool("metrics", false, "dump the metric registry in Prometheus text format to stderr when done")
		shards   = flag.Int("shards", 0, "vertex shards for the sharded executor (0 = unsharded; results are identical at any count)")
		mapped   = flag.Bool("mmap", false, "with -store: mmap the binary segments instead of materializing them (out-of-core cold open)")
	)
	flag.Parse()
	if (*data == "") == (*storeDir == "") {
		fmt.Fprintln(os.Stderr, "cgquery: exactly one of -data and -store is required")
		flag.Usage()
		os.Exit(2)
	}
	var g *commongraph.EvolvingGraph
	if *storeDir != "" {
		// The mapped open keeps the store handle alive until the query is
		// done — segment views alias the mappings, which Close releases.
		gs, err := commongraph.OpenStoreWith(*storeDir, commongraph.StoreOptions{MapSegments: *mapped})
		if err != nil {
			fail(err)
		}
		defer gs.Close()
		g = gs.Graph()
	} else {
		if *mapped {
			fail(fmt.Errorf("-mmap needs -store (a durable segment directory)"))
		}
		store, err := dataset.Load(*data)
		if err != nil {
			fail(err)
		}
		g = commongraph.FromStore(store)
	}
	if *to < 0 {
		*to = g.NumSnapshots() - 1
	}

	if *plan {
		p, err := g.Plan(*from, *to, commongraph.Options{OptimalSchedule: *optimal})
		if err != nil {
			fail(err)
		}
		fmt.Printf("window [%d,%d]: %d snapshots, common graph %d edges\n",
			*from, *to, p.Snapshots, p.CommonEdges)
		fmt.Printf("direct-hop additions:   %d\n", p.DirectHopAdditions)
		fmt.Printf("work-sharing additions: %d\n", p.WorkSharingAdditions)
		fmt.Println("schedule tree:")
		fmt.Print(p.Tree)
		return
	}

	a, ok := commongraph.AlgorithmByName(*algoName)
	if !ok {
		fail(fmt.Errorf("unknown algorithm %q", *algoName))
	}
	strat, err := commongraph.ParseStrategy(*strategy)
	if err != nil {
		fail(err)
	}

	opts := commongraph.Options{KeepValues: *vertex >= 0, OptimalSchedule: *optimal, Shards: *shards}
	var tracer *commongraph.Tracer
	if *tracePth != "" {
		switch strings.ToLower(*tracePth) {
		case "log", "stderr", "1":
			tracer = commongraph.NewTracer(commongraph.WithTraceLogger(
				slog.New(slog.NewTextHandler(os.Stderr, nil))))
		default:
			tracer = commongraph.NewTracer()
		}
		opts.Trace = tracer
	}
	res, err := g.Run(context.Background(), commongraph.Request{
		Query: commongraph.Query{
			Algorithm: a,
			Source:    commongraph.VertexID(*source),
		},
		Window:   commongraph.Window{From: *from, To: *to},
		Strategy: strat,
		Options:  opts,
	})
	if err != nil {
		fail(err)
	}

	if tracer != nil && strings.ToLower(*tracePth) != "log" &&
		strings.ToLower(*tracePth) != "stderr" && *tracePth != "1" {
		f, ferr := os.Create(*tracePth)
		if ferr != nil {
			fail(ferr)
		}
		if werr := commongraph.WriteChromeTrace(tracer, f); werr != nil {
			f.Close()
			fail(werr)
		}
		if cerr := f.Close(); cerr != nil {
			fail(cerr)
		}
		fmt.Fprintf(os.Stderr, "cgquery: wrote %d trace events to %s\n", len(tracer.Events()), *tracePth)
	}
	if *metrics {
		if werr := commongraph.WriteMetricsPrometheus(os.Stderr); werr != nil {
			fail(werr)
		}
	}
	if werr := commongraph.WriteEnvTrace(); werr != nil {
		fail(werr)
	}

	fmt.Printf("%s over snapshots [%d,%d] with %s: total %v\n", a.Name(), *from, *to, strat, res.Timings.Total)
	fmt.Printf("  initial compute %v, incremental add %v, incremental delete %v, mutation/overlay %v\n",
		res.Timings.InitialCompute, res.Timings.IncrementalAdd,
		res.Timings.IncrementalDelete, res.Timings.Mutation)
	fmt.Printf("  additions processed %d, deletions processed %d\n",
		res.AdditionsProcessed, res.DeletionsProcessed)
	if res.MaxHopTime > 0 {
		fmt.Printf("  longest independent hop: %v\n", res.MaxHopTime)
	}
	for _, s := range res.Snapshots {
		line := fmt.Sprintf("  snapshot %-3d reached %-8d checksum %016x", s.Index, s.Reached, s.Checksum)
		if *vertex >= 0 && *vertex < len(s.Values) {
			v := s.Values[*vertex]
			if a.Name() == "Viterbi" {
				line += fmt.Sprintf("  value(%d) = %.6f", *vertex, commongraph.ViterbiProbability(v))
			} else if v == commongraph.Infinity {
				line += fmt.Sprintf("  value(%d) = unreachable", *vertex)
			} else {
				line += fmt.Sprintf("  value(%d) = %d", *vertex, v)
			}
		}
		fmt.Println(line)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "cgquery: %v\n", err)
	os.Exit(1)
}

// cgtop: a live terminal dashboard over a running process's ops
// endpoint (ServeMetrics / ServeOps). It polls /metrics (Prometheus text
// exposition, parsed with the library's strict parser) and, when the
// target is a follower, /lag — and renders one repainted screen per
// interval: query throughput and latency by strategy, ingest and
// replication rates, runtime health (heap, goroutines, GC pause p99),
// slow-query and incident counters.
//
// Usage:
//
//	cgquery top -ops http://localhost:8080
//	cgquery top -ops http://localhost:8080 -interval 2s -n 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"commongraph/internal/obs"
)

// topSample is one scrape of the target's ops surface.
type topSample struct {
	at       time.Time
	families map[string]obs.PromFamily
	lag      *lagSample // nil when the target has no /lag (primary)
}

type lagSample struct {
	Known   bool   `json:"known"`
	Seq     uint64 `json:"seq"`
	Windows int    `json:"windows"`
}

func runTop(args []string) {
	fs := flag.NewFlagSet("cgquery top", flag.ExitOnError)
	var (
		ops      = fs.String("ops", "http://localhost:8080", "base URL of the ops endpoint (ServeMetrics / ServeOps)")
		interval = fs.Duration("interval", time.Second, "poll and repaint period")
		n        = fs.Int("n", 0, "exit after this many frames (0 = run until interrupted)")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	base := strings.TrimRight(*ops, "/")
	client := &http.Client{Timeout: *interval}

	var prev *topSample
	for frame := 0; *n <= 0 || frame < *n; frame++ {
		if frame > 0 {
			time.Sleep(*interval)
		}
		cur, err := scrape(client, base)
		if err != nil {
			fail(fmt.Errorf("top: %w", err))
		}
		render(os.Stdout, base, prev, cur)
		prev = cur
	}
}

func scrape(client *http.Client, base string) (*topSample, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	fams, err := obs.ParseExposition(body)
	if err != nil {
		return nil, fmt.Errorf("parse /metrics: %w", err)
	}
	s := &topSample{at: time.Now(), families: make(map[string]obs.PromFamily, len(fams))}
	for _, f := range fams {
		s.families[f.Name] = f
	}
	// /lag only exists on follower ops servers; absence is fine.
	if lresp, lerr := client.Get(base + "/lag"); lerr == nil {
		if lresp.StatusCode == http.StatusOK {
			var l lagSample
			if json.NewDecoder(lresp.Body).Decode(&l) == nil {
				s.lag = &l
			}
		}
		lresp.Body.Close()
	}
	return s, nil
}

// value sums a family's samples matching the label filter (nil matches
// every series; histogram base names match their _sum/_count variants by
// suffix).
func (s *topSample) value(name, suffix string, labels map[string]string) (float64, bool) {
	f, ok := s.families[name]
	if !ok {
		return 0, false
	}
	var total float64
	found := false
	for _, sm := range f.Samples {
		if suffix != "" && !strings.HasSuffix(sm.Name, suffix) {
			continue
		}
		if suffix == "" && sm.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if sm.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			total += sm.Value
			found = true
		}
	}
	return total, found
}

// labelValues returns the distinct values of one label across a family.
func (s *topSample) labelValues(name, label string) []string {
	f, ok := s.families[name]
	if !ok {
		return nil
	}
	set := map[string]bool{}
	for _, sm := range f.Samples {
		if v, ok := sm.Labels[label]; ok {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// rate computes the per-second delta of a counter between two samples.
func rate(prev, cur *topSample, name, suffix string, labels map[string]string) float64 {
	if prev == nil {
		return 0
	}
	pv, pok := prev.value(name, suffix, labels)
	cv, cok := cur.value(name, suffix, labels)
	dt := cur.at.Sub(prev.at).Seconds()
	if !pok || !cok || dt <= 0 || cv < pv {
		return 0
	}
	return (cv - pv) / dt
}

func render(w io.Writer, base string, prev, cur *topSample) {
	var b strings.Builder
	// Repaint in place: clear screen, home cursor.
	b.WriteString("\x1b[2J\x1b[H")
	fmt.Fprintf(&b, "cgtop — %s — %s\n\n", base, cur.at.Format("15:04:05"))

	// Queries by strategy: total count, rate, p99 from the hop histogram.
	strategies := cur.labelValues("commongraph_queries_total", "strategy")
	if len(strategies) > 0 {
		fmt.Fprintf(&b, "%-24s %10s %9s %10s\n", "STRATEGY", "QUERIES", "Q/S", "SLOW")
		for _, st := range strategies {
			q, _ := cur.value("commongraph_queries_total", "", map[string]string{"strategy": st})
			slow, _ := cur.value("commongraph_slow_queries_total", "", map[string]string{"strategy": st})
			fmt.Fprintf(&b, "%-24s %10.0f %9.1f %10.0f\n", st, q,
				rate(prev, cur, "commongraph_queries_total", "", map[string]string{"strategy": st}), slow)
		}
		b.WriteByte('\n')
	}

	// Ingest + replication.
	ing, _ := cur.value("commongraph_ingest_updates_total", "", nil)
	fmt.Fprintf(&b, "ingest   %12.0f updates  %8.1f/s", ing,
		rate(prev, cur, "commongraph_ingest_updates_total", "", nil))
	shipLabels := map[string]string{"type": "batch"}
	if ships, ok := cur.value("commongraph_repl_frames_sent_total", "", shipLabels); ok {
		fmt.Fprintf(&b, "   shipped %10.0f  %8.1f/s", ships,
			rate(prev, cur, "commongraph_repl_frames_sent_total", "", shipLabels))
	}
	if replays, ok := cur.value("commongraph_repl_batches_replayed_total", "", nil); ok {
		fmt.Fprintf(&b, "   replayed %9.0f  %8.1f/s", replays,
			rate(prev, cur, "commongraph_repl_batches_replayed_total", "", nil))
	}
	b.WriteByte('\n')
	if cur.lag != nil {
		if cur.lag.Known {
			fmt.Fprintf(&b, "lag      %12d seqs     %8d windows\n", cur.lag.Seq, cur.lag.Windows)
		} else {
			fmt.Fprintf(&b, "lag      unknown (primary not heard from)\n")
		}
	}
	b.WriteByte('\n')

	// Runtime health.
	heap, _ := cur.value("go_memstats_heap_objects_bytes", "", nil)
	gor, _ := cur.value("go_goroutines", "", nil)
	gcp, _ := cur.value("go_gc_pause_p99_seconds", "", nil)
	sched, _ := cur.value("go_sched_latency_p99_seconds", "", nil)
	fmt.Fprintf(&b, "runtime  heap %s   goroutines %.0f   gc-pause-p99 %s   sched-p99 %s\n",
		fmtBytes(heap), gor, fmtSeconds(gcp), fmtSeconds(sched))

	// Trouble counters.
	dropped, _ := cur.value("obs_trace_dropped_total", "", nil)
	incidents, _ := cur.value("commongraph_incidents_total", "", nil)
	stale, _ := cur.value("commongraph_repl_stale_reads_total", "", nil)
	fmt.Fprintf(&b, "trouble  incidents %.0f   stale-reads %.0f   trace-drops %.0f\n",
		incidents, stale, dropped)

	io.WriteString(w, b.String()) //nolint:errcheck // terminal write
}

func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

func fmtSeconds(v float64) string {
	switch {
	case v <= 0:
		return "-"
	case v < 1e-3:
		return fmt.Sprintf("%.0fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.1fms", v*1e3)
	default:
		return fmt.Sprintf("%.2fs", v)
	}
}

// Command cgbench regenerates the paper's tables and figures on synthetic
// stand-in workloads.
//
// Usage:
//
//	cgbench -list
//	cgbench -exp table4
//	cgbench -exp all -json BENCH.json
//	COMMONGRAPH_SCALE=4 cgbench -exp fig8 -snapshots 50
//
// Setting COMMONGRAPH_TRACE=<path.json> additionally writes a Chrome
// trace of every evaluation the experiments ran.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"commongraph/internal/bench"
	"commongraph/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		snapshots = flag.Int("snapshots", 0, "override window length (default: paper's 50)")
		seed      = flag.Uint64("seed", 0, "override workload seed")
		csvDir    = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonPath  = flag.String("json", "", "write all results as one machine-readable JSON report to this file")
		metrics   = flag.Bool("metrics", false, "dump the metric registry in Prometheus text format to stderr when done")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-26s regenerates %s\n", e.Name, e.Paper)
		}
		if *exp == "" {
			os.Exit(0)
		}
		return
	}

	p := bench.Default()
	if *snapshots > 1 {
		p.Snapshots = *snapshots
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	report := &bench.Report{Params: p}
	run := func(name string) {
		start := time.Now()
		e, _ := bench.ByName(name)
		tab, err := e.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
			os.Exit(1)
		}
		report.Experiments = append(report.Experiments, bench.ReportEntry{
			Name:           name,
			ElapsedSeconds: time.Since(start).Seconds(),
			Table:          tab,
		})
		tab.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
				os.Exit(1)
			}
			if err := tab.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		fmt.Printf("(%s completed in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if _, ok := bench.ByName(*exp); !ok && *exp != "all" {
		fmt.Fprintf(os.Stderr, "cgbench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			run(e.Name)
		}
	} else {
		run(*exp)
	}
	finish(report, *jsonPath, *metrics)
}

// finish writes the run's machine-readable artifacts: the JSON report,
// the Prometheus metrics dump, and the COMMONGRAPH_TRACE Chrome trace.
func finish(report *bench.Report, jsonPath string, metrics bool) {
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err == nil {
			err = f.Close()
			if err == nil {
				fmt.Printf("(wrote JSON report to %s)\n", jsonPath)
			}
		} else {
			f.Close()
			fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
			os.Exit(1)
		}
	}
	if metrics {
		if err := obs.Default().WritePrometheus(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
		}
	}
	if err := obs.WriteEnvTrace(); err != nil {
		fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
	}
}

// Command cgbench regenerates the paper's tables and figures on synthetic
// stand-in workloads.
//
// Usage:
//
//	cgbench -list
//	cgbench -exp table4
//	cgbench -exp all -json BENCH.json
//	COMMONGRAPH_SCALE=4 cgbench -exp fig8 -snapshots 50
//
// Setting COMMONGRAPH_TRACE=<path.json> additionally writes a Chrome
// trace of every evaluation the experiments ran.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"commongraph"
	"commongraph/internal/bench"
	_ "commongraph/internal/bench/serveexp" // registers the serve experiment
	"commongraph/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		snapshots = flag.Int("snapshots", 0, "override window length (default: paper's 50)")
		seed      = flag.Uint64("seed", 0, "override workload seed")
		csvDir    = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonPath  = flag.String("json", "", "write all results as one machine-readable JSON report to this file")
		metrics   = flag.Bool("metrics", false, "dump the metric registry in Prometheus text format to stderr when done")
		quick     = flag.String("quick", "", "skip the experiment tables: run one evaluation with this strategy (kickstarter | independent | direct-hop | direct-hop-parallel | work-sharing | work-sharing-parallel) on the default synthetic workload and print its timings")
	)
	flag.Parse()

	if *quick != "" {
		if err := runQuick(*quick, *snapshots, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-26s regenerates %s\n", e.Name, e.Paper)
		}
		if *exp == "" {
			os.Exit(0)
		}
		return
	}

	p := bench.Default()
	if *snapshots > 1 {
		p.Snapshots = *snapshots
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	report := &bench.Report{Params: p}
	run := func(name string) {
		start := time.Now()
		e, _ := bench.ByName(name)
		tab, err := e.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
			os.Exit(1)
		}
		report.Experiments = append(report.Experiments, bench.ReportEntry{
			Name:           name,
			ElapsedSeconds: time.Since(start).Seconds(),
			Table:          tab,
		})
		tab.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
				os.Exit(1)
			}
			if err := tab.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		fmt.Printf("(%s completed in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if _, ok := bench.ByName(*exp); !ok && *exp != "all" {
		fmt.Fprintf(os.Stderr, "cgbench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			run(e.Name)
		}
	} else {
		run(*exp)
	}
	finish(report, *jsonPath, *metrics)
}

// finish writes the run's machine-readable artifacts: the JSON report,
// the Prometheus metrics dump, and the COMMONGRAPH_TRACE Chrome trace.
func finish(report *bench.Report, jsonPath string, metrics bool) {
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err == nil {
			err = f.Close()
			if err == nil {
				fmt.Printf("(wrote JSON report to %s)\n", jsonPath)
			}
		} else {
			f.Close()
			fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
			os.Exit(1)
		}
	}
	if metrics {
		if err := obs.Default().WritePrometheus(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
		}
	}
	if err := obs.WriteEnvTrace(); err != nil {
		fmt.Fprintf(os.Stderr, "cgbench: %v\n", err)
	}
}

// runQuick is the public-API smoke path: it builds the default LJ-sim
// workload, evaluates one BFS query over the full window with the named
// strategy through commongraph.Run, and prints the timing breakdown. It
// exists to sanity-check a strategy end to end without the experiment
// harness (and exercises the same Request plumbing services use).
func runQuick(strategyName string, snapshots int, seed uint64) error {
	strat, err := commongraph.ParseStrategy(strategyName)
	if err != nil {
		return err
	}
	p := bench.Default()
	if snapshots > 1 {
		p.Snapshots = snapshots
	}
	if seed != 0 {
		p.Seed = seed
	}
	half := p.Batch(75_000) / 2
	w, err := bench.BuildWorkload("LJ-sim", p, p.Snapshots-1, half, half)
	if err != nil {
		return err
	}
	g := commongraph.FromStore(w.Store)
	start := time.Now()
	res, err := g.Run(context.Background(), commongraph.Request{
		Query:    commongraph.Query{Algorithm: commongraph.BFS, Source: 0},
		Window:   commongraph.Window{From: 0, To: g.NumSnapshots() - 1},
		Strategy: strat,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s on LJ-sim (%d vertices, %d snapshots): total %v (wall %v)\n",
		strat, w.N, g.NumSnapshots(), res.Timings.Total, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  initial compute %v, incremental add %v, incremental delete %v, mutation/overlay %v\n",
		res.Timings.InitialCompute, res.Timings.IncrementalAdd,
		res.Timings.IncrementalDelete, res.Timings.Mutation)
	fmt.Printf("  additions processed %d, deletions processed %d\n",
		res.AdditionsProcessed, res.DeletionsProcessed)
	last := res.Snapshots[len(res.Snapshots)-1]
	fmt.Printf("  final snapshot: reached %d, checksum %016x\n", last.Reached, last.Checksum)
	return nil
}

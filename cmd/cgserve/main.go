// Command cgserve runs the multi-tenant query service: a versioned
// HTTP/JSON API (POST /v1/run) over a shared evolving graph, with
// admission control, per-tenant quotas, a commit-invalidated result
// cache, and cross-query sharing of common-graph work. The query
// endpoint mounts on the same ops surface as /metrics, /healthz,
// /readyz and the /debug forensic endpoints.
//
// Usage:
//
//	cgserve store  -store /data/graph.cgstore [-window N] [-listen :8080]
//	cgserve follow -store /data/replica.cgstore -primary host:7070 [-listen :8080]
//	cgserve demo   [-listen :8080] [-tick 2s]
//
// store serves a durable cgstore's graph, watching its most recent N
// snapshots (0 = all). follow serves a replication follower's mirrored
// window — reads stay live while the replica trails the primary within
// its staleness budget. demo serves a synthetic evolving graph whose
// window slides continuously, for kicking the tires:
//
//	cgserve demo &
//	curl -s -X POST localhost:8080/v1/run \
//	  -H 'X-CG-Tenant: me' \
//	  -d '{"algorithm":"SSSP","source":0}' | jq .
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"commongraph"
	apiv1 "commongraph/api/v1"
	"commongraph/internal/obs"
	"commongraph/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "store":
		err = storeMode(os.Args[2:])
	case "follow":
		err = followMode(os.Args[2:])
	case "demo":
		err = demoMode(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "cgserve: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgserve:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cgserve store  -store DIR [-window N] [serve flags]
  cgserve follow -store DIR -primary ADDR [-max-lag-seq N] [-serve-stale] [serve flags]
  cgserve demo   [-tick D] [serve flags]

serve flags:
  -listen ADDR      (default :8080)
  -workers N        concurrent evaluations (default GOMAXPROCS)
  -queue N          admission queue depth beyond the workers (default 4x workers)
  -tenant-rate R    per-tenant requests/second; 0 disables quotas
  -tenant-burst N   per-tenant burst (default one second of rate)
  -cache N          result-cache entries (default 512; negative disables)
  -cache-max-bytes B  refuse caching results above this estimated size
                    (default 4MiB; negative = unlimited)
  -cost-per-medges T  extra quota tokens debited per million evaluated
                    edges; 0 keeps flat per-request quotas
  -shards N         vertex shards for every evaluation (0 = unsharded)
  -no-sharing       disable cross-query common-graph sharing
  -strategy S       default strategy for requests that omit one
                    (default direct-hop-parallel)`)
}

// serveFlags registers the flags every mode shares and returns a closure
// producing the serve.Config they describe.
func serveFlags(fs *flag.FlagSet) (listen *string, cfg func() (serve.Config, error)) {
	listen = fs.String("listen", ":8080", "address for the query + ops endpoint")
	workers := fs.Int("workers", 0, "concurrent evaluations (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth beyond the workers (0 = 4x workers)")
	rate := fs.Float64("tenant-rate", 0, "per-tenant requests/second; 0 disables quotas")
	burst := fs.Int("tenant-burst", 0, "per-tenant burst (0 = one second of rate)")
	cache := fs.Int("cache", 0, "result-cache entries (0 = 512; negative disables)")
	cacheMax := fs.Int64("cache-max-bytes", 0, "refuse caching results above this estimated size (0 = 4MiB; negative = unlimited)")
	cost := fs.Float64("cost-per-medges", 0, "extra quota tokens debited per million evaluated edges (0 = flat per-request quotas)")
	shards := fs.Int("shards", 0, "vertex shards for every evaluation (0 = unsharded)")
	noShare := fs.Bool("no-sharing", false, "disable cross-query common-graph sharing")
	strategy := fs.String("strategy", "", "default strategy for requests that omit one")
	return listen, func() (serve.Config, error) {
		c := serve.Config{
			Workers: *workers, QueueDepth: *queue,
			TenantRate: *rate, TenantBurst: *burst,
			CacheEntries:        *cache,
			CacheMaxResultBytes: *cacheMax,
			CostPerMillionEdges: *cost,
			DisableSharing:      *noShare,
		}
		c.Options.Shards = *shards
		if *strategy != "" {
			s, err := commongraph.ParseStrategy(*strategy)
			if err != nil {
				return c, err
			}
			c.DefaultStrategy = s
		}
		return c, nil
	}
}

// run mounts the query server on a fresh ops mux and serves until
// SIGINT/SIGTERM, then drains gracefully.
func run(listen string, srv *serve.Server, window func() (int, int), extraReady func() (bool, string)) error {
	mux := obs.NewOpsMux()
	mux.Handle(apiv1.RunPath, srv)
	mux.SetReadiness(func() (bool, string) {
		if extraReady != nil {
			if ok, detail := extraReady(); !ok {
				return false, detail
			}
		}
		return srv.Ready()
	})
	mux.HandleFunc("/window", func(rw http.ResponseWriter, _ *http.Request) {
		from, to := window()
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(map[string]int{"from": from, "to": to, "width": to - from + 1})
	})
	stopRuntime := obs.StartRuntimeCollector(0)
	defer stopRuntime()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("cgserve: query endpoint on http://%s%s\n", ln.Addr(), apiv1.RunPath)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
	case err := <-errc:
		return err
	}
	fmt.Println("cgserve: draining")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return hs.Shutdown(ctx)
}

func storeMode(args []string) error {
	fs := flag.NewFlagSet("store", flag.ExitOnError)
	dir := fs.String("store", "", "durable cgstore directory (required)")
	window := fs.Int("window", 0, "serve the most recent N snapshots (0 = all)")
	listen, cfg := serveFlags(fs)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("store: -store is required")
	}
	c, err := cfg()
	if err != nil {
		return err
	}
	gs, err := commongraph.OpenStore(*dir)
	if err != nil {
		return err
	}
	defer gs.Close()
	g := gs.Graph()
	last := g.NumSnapshots() - 1
	from := 0
	if *window > 0 && last-*window+1 > 0 {
		from = last - *window + 1
	}
	w, err := g.Watch(from, last)
	if err != nil {
		return err
	}
	defer w.Close()
	w.PersistMaintenance(gs)
	fmt.Printf("cgserve: serving %s window [%d,%d] of %d snapshots\n", *dir, from, last, g.NumSnapshots())
	return run(*listen, serve.New(serve.WatchSource(w), c), w.Window, nil)
}

func followMode(args []string) error {
	fs := flag.NewFlagSet("follow", flag.ExitOnError)
	dir := fs.String("store", "", "replica directory — created on first bootstrap (required)")
	primary := fs.String("primary", "", "primary's replication address (required)")
	window := fs.Int("window", 0, "maintained window width in snapshots (0 = unbounded)")
	maxLagSeq := fs.Uint64("max-lag-seq", 0, "staleness budget in WAL sequence numbers (0 = unbounded)")
	maxLagWin := fs.Int("max-lag-windows", 0, "staleness budget in committed windows (0 = unbounded)")
	serveStale := fs.Bool("serve-stale", false, "serve reads past the budget, marked stale, instead of failing fast")
	listen, cfg := serveFlags(fs)
	fs.Parse(args)
	if *dir == "" || *primary == "" {
		return fmt.Errorf("follow: -store and -primary are required")
	}
	c, err := cfg()
	if err != nil {
		return err
	}
	f, err := commongraph.Follow(commongraph.FollowerConfig{
		Dir:           *dir,
		Addr:          *primary,
		WindowWidth:   *window,
		MaxLagSeq:     *maxLagSeq,
		MaxLagWindows: *maxLagWin,
		ServeStale:    *serveStale,
	})
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("cgserve: following %s into %s\n", *primary, *dir)
	src := serve.FollowSource(f)
	win := func() (int, int) {
		from, to, _ := src.Window()
		return from, to
	}
	return run(*listen, serve.New(src, c), win, f.Ready)
}

func demoMode(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	tick := fs.Duration("tick", 2*time.Second, "interval between synthetic window slides")
	listen, cfg := serveFlags(fs)
	fs.Parse(args)
	c, err := cfg()
	if err != nil {
		return err
	}

	const n, deg, width = 2000, 8, 6
	rng := rand.New(rand.NewSource(42))
	edge := func() commongraph.Edge {
		src, dst := rng.Intn(n), rng.Intn(n)
		return commongraph.Edge{
			Src: commongraph.VertexID(src),
			Dst: commongraph.VertexID(dst),
			W:   commongraph.Weight(1 + (src+3*dst)%9),
		}
	}
	base := make([]commongraph.Edge, 0, n*deg)
	seen := map[commongraph.Edge]bool{}
	for len(base) < n*deg {
		if e := edge(); e.Src != e.Dst && !seen[e] {
			seen[e] = true
			base = append(base, e)
		}
	}
	g := commongraph.New(n, base)
	churn := func() error {
		adds := make([]commongraph.Edge, 0, 40)
		for len(adds) < 40 {
			if e := edge(); e.Src != e.Dst && !seen[e] {
				seen[e] = true
				adds = append(adds, e)
			}
		}
		_, err := g.ApplyUpdates(adds, nil)
		return err
	}
	for i := 1; i < width; i++ {
		if err := churn(); err != nil {
			return err
		}
	}
	w, err := g.Watch(0, width-1)
	if err != nil {
		return err
	}
	defer w.Close()

	stop := make(chan struct{})
	defer close(stop)
	go func() { // keep the window sliding so commits and invalidation are visible
		t := time.NewTicker(*tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := churn(); err == nil {
					w.Slide() //nolint:errcheck // demo churn; next tick retries
				}
			}
		}
	}()
	fmt.Printf("cgserve: demo graph with %d vertices, window slides every %v\n", n, *tick)
	return run(*listen, serve.New(serve.WatchSource(w), c), w.Window, nil)
}

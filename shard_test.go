package commongraph

import (
	"testing"
)

// TestShardedStrategyDifferential: Options.Shards is a pure knob —
// every public strategy returns bit-identical values and checksums at
// every shard count, including counts that exceed what a strategy can
// use (KickStarter has no flat CSR and quietly runs unsharded).
func TestShardedStrategyDifferential(t *testing.T) {
	g, _ := buildEvolving(t, 411, 5, 40, 25)
	for _, a := range Algorithms() {
		q := Query{Algorithm: a, Source: 3}
		for _, s := range Strategies() {
			var want *Result
			for _, shards := range []int{0, 1, 2, 7} {
				res, err := g.Evaluate(q, 0, 5, s, Options{Shards: shards, KeepValues: true})
				if err != nil {
					t.Fatalf("%s/%s shards=%d: %v", a.Name(), s.Slug(), shards, err)
				}
				if want == nil {
					want = res
					continue
				}
				for k := range res.Snapshots {
					if res.Snapshots[k].Checksum != want.Snapshots[k].Checksum {
						t.Fatalf("%s/%s shards=%d snapshot %d: checksum %x != unsharded %x",
							a.Name(), s.Slug(), shards, k,
							res.Snapshots[k].Checksum, want.Snapshots[k].Checksum)
					}
					for v := range res.Snapshots[k].Values {
						if res.Snapshots[k].Values[v] != want.Snapshots[k].Values[v] {
							t.Fatalf("%s/%s shards=%d snapshot %d vertex %d: %d != %d",
								a.Name(), s.Slug(), shards, k, v,
								res.Snapshots[k].Values[v], want.Snapshots[k].Values[v])
						}
					}
				}
			}
		}
	}
}

// TestShardedEdgesEvaluated: the evaluated-edge count surfaces on the
// public result for both the CommonGraph strategies and KickStarter —
// the quota service weights debits by it.
func TestShardedEdgesEvaluated(t *testing.T) {
	g, _ := buildEvolving(t, 17, 4, 30, 20)
	q := Query{Algorithm: BFS, Source: 0}
	for _, s := range []Strategy{KickStarter, DirectHop, WorkSharing} {
		res, err := g.Evaluate(q, 0, 4, s, Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.EdgesEvaluated <= 0 {
			t.Fatalf("%s: EdgesEvaluated = %d, want > 0", s.Slug(), res.EdgesEvaluated)
		}
	}
}

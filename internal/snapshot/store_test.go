package snapshot

import (
	"testing"

	"commongraph/internal/gen"
	"commongraph/internal/graph"
)

func toyStore(t *testing.T) *Store {
	t.Helper()
	base := graph.EdgeList{
		{Src: 0, Dst: 1, W: 1},
		{Src: 1, Dst: 2, W: 1},
		{Src: 2, Dst: 3, W: 1},
	}
	s := NewStore(5, base)
	if _, err := s.NewVersion(
		graph.EdgeList{{Src: 3, Dst: 4, W: 1}},
		graph.EdgeList{{Src: 0, Dst: 1, W: 1}},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewVersion(
		graph.EdgeList{{Src: 0, Dst: 1, W: 1}, {Src: 4, Dst: 0, W: 1}},
		graph.EdgeList{{Src: 1, Dst: 2, W: 1}},
	); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreVersions(t *testing.T) {
	s := toyStore(t)
	if s.NumVersions() != 3 || s.NumVertices() != 5 {
		t.Fatalf("versions=%d vertices=%d", s.NumVersions(), s.NumVertices())
	}
	v1, err := s.GetVersion(1)
	if err != nil {
		t.Fatal(err)
	}
	want1 := graph.EdgeList{
		{Src: 1, Dst: 2, W: 1},
		{Src: 2, Dst: 3, W: 1},
		{Src: 3, Dst: 4, W: 1},
	}
	if !graph.Equal(v1, want1) {
		t.Fatalf("v1=%v", v1)
	}
	v2, _ := s.GetVersion(2)
	want2 := graph.EdgeList{
		{Src: 0, Dst: 1, W: 1},
		{Src: 2, Dst: 3, W: 1},
		{Src: 3, Dst: 4, W: 1},
		{Src: 4, Dst: 0, W: 1},
	}
	if !graph.Equal(v2, want2) {
		t.Fatalf("v2=%v", v2)
	}
}

func TestStoreVersionOutOfRange(t *testing.T) {
	s := toyStore(t)
	if _, err := s.GetVersion(-1); err == nil {
		t.Fatal("expected error for -1")
	}
	if _, err := s.GetVersion(3); err == nil {
		t.Fatal("expected error for 3")
	}
}

func TestNewVersionValidation(t *testing.T) {
	s := toyStore(t)
	// Deleting an absent edge.
	if _, err := s.NewVersion(nil, graph.EdgeList{{Src: 1, Dst: 2, W: 1}}); err == nil {
		t.Fatal("expected error: deleting absent edge")
	}
	// Adding a present edge.
	if _, err := s.NewVersion(graph.EdgeList{{Src: 0, Dst: 1, W: 1}}, nil); err == nil {
		t.Fatal("expected error: adding present edge")
	}
	// Out-of-range vertex.
	if _, err := s.NewVersion(graph.EdgeList{{Src: 9, Dst: 1, W: 1}}, nil); err == nil {
		t.Fatal("expected error: vertex out of range")
	}
	// Overlapping add/del.
	if _, err := s.NewVersion(
		graph.EdgeList{{Src: 2, Dst: 3, W: 1}},
		graph.EdgeList{{Src: 2, Dst: 3, W: 1}},
	); err == nil {
		t.Fatal("expected error: overlapping batches")
	}
	// Failed NewVersion must not change the version count.
	if s.NumVersions() != 3 {
		t.Fatalf("failed NewVersion changed count to %d", s.NumVersions())
	}
}

func TestDiff(t *testing.T) {
	s := toyStore(t)
	add, del, err := s.Diff(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// v0 = {01,12,23}; v2 = {01,23,34,40}
	wantAdd := graph.EdgeList{{Src: 3, Dst: 4, W: 1}, {Src: 4, Dst: 0, W: 1}}
	wantDel := graph.EdgeList{{Src: 1, Dst: 2, W: 1}}
	if !graph.Equal(add.Edges(), wantAdd) {
		t.Fatalf("add=%v", add.Edges())
	}
	if !graph.Equal(del.Edges(), wantDel) {
		t.Fatalf("del=%v", del.Edges())
	}
	// Reverse direction swaps the roles.
	radd, rdel, _ := s.Diff(2, 0)
	if !radd.Equal(del) && radd.Len() != del.Len() { // same sets, roles swapped
		t.Fatalf("reverse add=%v", radd.Edges())
	}
	if !graph.Equal(rdel.Edges(), wantAdd) {
		t.Fatalf("reverse del=%v", rdel.Edges())
	}
	// Self-diff is empty.
	a, d, _ := s.Diff(1, 1)
	if a.Len() != 0 || d.Len() != 0 {
		t.Fatal("self diff nonempty")
	}
}

func TestStoreMatchesGenApply(t *testing.T) {
	// The store's materialization must agree with the generator's
	// reference Apply for every version.
	n, base := gen.RMAT(gen.DefaultRMAT(9, 1500, 3))
	trs, err := gen.Stream(n, base, gen.StreamConfig{Transitions: 8, Additions: 30, Deletions: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(n, base)
	for _, tr := range trs {
		if _, err := s.NewVersion(tr.Additions, tr.Deletions); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i <= len(trs); i++ {
		want := gen.Apply(base, trs[:i])
		got, err := s.GetVersion(i)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.Equal(got, want) {
			t.Fatalf("version %d differs: %d vs %d edges", i, len(got), len(want))
		}
	}
	// Batch accessors round-trip the transitions.
	for i, tr := range trs {
		if !graph.Equal(s.Additions(i).Edges(), tr.Additions) {
			t.Fatalf("additions %d differ", i)
		}
		if !graph.Equal(s.Deletions(i).Edges(), tr.Deletions) {
			t.Fatalf("deletions %d differ", i)
		}
	}
}

func TestDropCache(t *testing.T) {
	s := toyStore(t)
	v2a, _ := s.GetVersion(2)
	s.DropCache()
	v2b, _ := s.GetVersion(2)
	if !graph.Equal(v2a, v2b) {
		t.Fatal("cache drop changed materialization")
	}
}

func TestPair(t *testing.T) {
	s := toyStore(t)
	p, err := s.Pair(2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVertices() != 5 || p.NumEdges() != 4 {
		t.Fatalf("pair n=%d m=%d", p.NumVertices(), p.NumEdges())
	}
	if _, err := s.Pair(99); err == nil {
		t.Fatal("expected error")
	}
}

func TestCacheEvictionKeepsResultsCorrect(t *testing.T) {
	// Materialize versions in a pattern that forces eviction, and verify
	// every answer against the generator's reference Apply.
	n, base := gen.RMAT(gen.DefaultRMAT(8, 600, 9))
	trs, err := gen.Stream(n, base, gen.StreamConfig{Transitions: 12, Additions: 15, Deletions: 15, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(n, base)
	for _, tr := range trs {
		if _, err := s.NewVersion(tr.Additions, tr.Deletions); err != nil {
			t.Fatal(err)
		}
	}
	order := []int{12, 3, 7, 1, 9, 12, 0, 5, 11, 2, 12, 3}
	for _, i := range order {
		got, err := s.GetVersion(i)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.Equal(got, gen.Apply(base, trs[:i])) {
			t.Fatalf("version %d wrong after eviction churn", i)
		}
	}
	// The cache itself must stay bounded.
	s.mu.RLock()
	cached := len(s.versions)
	s.mu.RUnlock()
	if cached > maxCached+1 {
		t.Fatalf("cache holds %d versions, cap is %d+1", cached, maxCached)
	}
}

func TestNewStoreFromTransitions(t *testing.T) {
	n, base := gen.RMAT(gen.DefaultRMAT(8, 600, 41))
	trs, err := gen.Stream(n, base, gen.StreamConfig{Transitions: 5, Additions: 20, Deletions: 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	adds := make([]graph.EdgeList, len(trs))
	dels := make([]graph.EdgeList, len(trs))
	for i, tr := range trs {
		adds[i] = tr.Additions
		dels[i] = tr.Deletions
	}
	fast, err := NewStoreFromTransitions(n, base, adds, dels)
	if err != nil {
		t.Fatal(err)
	}
	slow := NewStore(n, base)
	for _, tr := range trs {
		if _, err := slow.NewVersion(tr.Additions, tr.Deletions); err != nil {
			t.Fatal(err)
		}
	}
	if fast.NumVersions() != slow.NumVersions() {
		t.Fatalf("versions %d vs %d", fast.NumVersions(), slow.NumVersions())
	}
	for v := 0; v < fast.NumVersions(); v++ {
		fe, _ := fast.GetVersion(v)
		se, _ := slow.GetVersion(v)
		if !graph.Equal(fe, se) {
			t.Fatalf("version %d differs", v)
		}
	}
	if _, err := NewStoreFromTransitions(n, base, adds, dels[:2]); err == nil {
		t.Fatal("mismatched batch slices accepted")
	}
}

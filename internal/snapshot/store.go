// Package snapshot implements the evolving-graph store: the initial
// snapshot plus the per-transition update batches, behind the version
// control API of Table 1 in the paper (get_version, diff, new_version).
//
// The store never materializes all snapshots; it keeps the initial edge
// list and the Δ batches, and materializes any requested version on
// demand. Each edge is stored once (the paper's space-optimality claim for
// the common-graph representation is realized one level up, in
// internal/core, which consumes this store).
package snapshot

import (
	"fmt"
	"sync"

	"commongraph/internal/delta"
	"commongraph/internal/faults"
	"commongraph/internal/graph"
)

// Store holds an evolving graph as snapshot 0 plus transitions.
// It is safe for concurrent readers; NewVersion requires exclusive use.
type Store struct {
	mu   sync.RWMutex
	n    int
	base graph.EdgeList // canonical snapshot 0
	adds []*delta.Batch // adds[i], dels[i] turn version i into i+1
	dels []*delta.Batch

	// cache of materialized versions, filled lazily. Version 0 is always
	// cached; at most maxCached others are retained (FIFO eviction), so a
	// long store never holds every snapshot in memory at once.
	versions   map[int]graph.EdgeList
	cacheOrder []int
}

// maxCached bounds the number of non-zero versions kept materialized.
const maxCached = 4

// NewStore creates a store over n vertices whose version 0 is initial.
func NewStore(n int, initial graph.EdgeList) *Store {
	base := initial.Clone().Canonicalize()
	return &Store{
		n:        n,
		base:     base,
		versions: map[int]graph.EdgeList{0: base},
	}
}

// NewStoreFromTransitions creates a store from a pre-validated update
// stream without the per-transition consistency materialization NewVersion
// performs — for trusted producers (the workload generator, whose streams
// are consistent by construction). adds and dels must be equal-length
// slices of canonical batches; adds[i]/dels[i] turn version i into i+1.
func NewStoreFromTransitions(n int, initial graph.EdgeList, adds, dels []graph.EdgeList) (*Store, error) {
	if len(adds) != len(dels) {
		return nil, fmt.Errorf("snapshot: %d addition batches vs %d deletion batches", len(adds), len(dels))
	}
	s := NewStore(n, initial)
	for i := range adds {
		ab, err := delta.FromCanonical(adds[i])
		if err != nil {
			return nil, fmt.Errorf("snapshot: transition %d additions: %w", i, err)
		}
		db, err := delta.FromCanonical(dels[i])
		if err != nil {
			return nil, fmt.Errorf("snapshot: transition %d deletions: %w", i, err)
		}
		s.adds = append(s.adds, ab)
		s.dels = append(s.dels, db)
	}
	return s, nil
}

// NumVertices returns the store's vertex-space size.
func (s *Store) NumVertices() int { return s.n }

// NumVersions returns the number of snapshots (transitions + 1).
func (s *Store) NumVersions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.adds) + 1
}

// Additions returns the Δ+ batch of transition i (version i → i+1).
func (s *Store) Additions(i int) *delta.Batch {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.adds[i]
}

// Deletions returns the Δ− batch of transition i (version i → i+1).
func (s *Store) Deletions(i int) *delta.Batch {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dels[i]
}

// NewVersion appends a snapshot derived from the latest one by applying
// the given batches (Table 1's new_version(Δ+, Δ−)). It validates that
// deletions exist in and additions are absent from the latest snapshot.
func (s *Store) NewVersion(additions, deletions graph.EdgeList) (int, error) {
	// Fault-injection point: the store write is where a real backend
	// (disk, replication) fails; armed tests drive the error path before
	// any state is touched, so a failed NewVersion never leaves a partial
	// version behind.
	if err := faults.Check(faults.StoreNewVersion); err != nil {
		return 0, fmt.Errorf("snapshot: new version: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	latest := len(s.adds)
	add := delta.NewBatch(additions)
	del := delta.NewBatch(deletions)
	if err := s.checkBatchLocked(add, del); err != nil {
		return 0, err
	}
	s.adds = append(s.adds, add)
	s.dels = append(s.dels, del)
	return latest + 1, nil
}

// CheckBatch validates a prospective transition against the latest
// snapshot without applying it — the dry-run half of NewVersion, for
// callers that must commit the batch somewhere else (a durable store)
// before mutating in-memory state.
func (s *Store) CheckBatch(additions, deletions graph.EdgeList) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkBatchLocked(delta.NewBatch(additions), delta.NewBatch(deletions))
}

func (s *Store) checkBatchLocked(add, del *delta.Batch) error {
	latest := len(s.adds)
	cur := s.materializeLocked(latest)
	for _, e := range del.Edges() {
		if !cur.Contains(e.Src, e.Dst) {
			return fmt.Errorf("snapshot: version %d does not contain deleted edge %v", latest, e)
		}
	}
	for _, e := range add.Edges() {
		if cur.Contains(e.Src, e.Dst) {
			return fmt.Errorf("snapshot: version %d already contains added edge %v", latest, e)
		}
		if int(e.Src) >= s.n || int(e.Dst) >= s.n {
			return fmt.Errorf("snapshot: edge %v out of vertex range %d", e, s.n)
		}
	}
	if add.Intersect(del).Len() != 0 {
		return fmt.Errorf("snapshot: additions and deletions overlap")
	}
	return nil
}

// GetVersion materializes snapshot i as a canonical edge list
// (Table 1's get_version). The result is cached; do not modify it.
func (s *Store) GetVersion(i int) (graph.EdgeList, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i > len(s.adds) {
		return nil, fmt.Errorf("snapshot: version %d out of range [0,%d]", i, len(s.adds))
	}
	return s.materializeLocked(i), nil
}

// materializeLocked returns version i, computing from the nearest lower
// cached version. Only version i itself enters the cache, which is
// bounded by maxCached entries besides version 0.
func (s *Store) materializeLocked(i int) graph.EdgeList {
	if v, ok := s.versions[i]; ok {
		return v
	}
	// Find the nearest cached predecessor.
	from := 0
	for j := i - 1; j > 0; j-- {
		if _, ok := s.versions[j]; ok {
			from = j
			break
		}
	}
	cur := s.versions[from]
	for t := from; t < i; t++ {
		cur = graph.Union(graph.Minus(cur, s.dels[t].Edges()), s.adds[t].Edges())
	}
	s.cacheLocked(i, cur)
	return cur
}

// cacheLocked inserts a materialized version, evicting the oldest cached
// non-zero version beyond the cap.
func (s *Store) cacheLocked(i int, edges graph.EdgeList) {
	if i == 0 {
		return
	}
	if _, ok := s.versions[i]; ok {
		return
	}
	s.versions[i] = edges
	s.cacheOrder = append(s.cacheOrder, i)
	for len(s.cacheOrder) > maxCached {
		evict := s.cacheOrder[0]
		s.cacheOrder = s.cacheOrder[1:]
		delete(s.versions, evict)
	}
}

// Diff computes the batches that turn version i into version j
// (Table 1's diff): the returned additions are in j but not i, deletions
// in i but not j. i and j need not be adjacent or ordered.
func (s *Store) Diff(i, j int) (additions, deletions *delta.Batch, err error) {
	gi, err := s.GetVersion(i)
	if err != nil {
		return nil, nil, err
	}
	gj, err := s.GetVersion(j)
	if err != nil {
		return nil, nil, err
	}
	// Minus over canonical lists is canonical by construction.
	return delta.MustFromCanonical(graph.Minus(gj, gi)),
		delta.MustFromCanonical(graph.Minus(gi, gj)), nil
}

// Pair materializes snapshot i as a traversal-ready CSR pair.
func (s *Store) Pair(i int) (*graph.Pair, error) {
	edges, err := s.GetVersion(i)
	if err != nil {
		return nil, err
	}
	return graph.NewPair(s.n, edges), nil
}

// DropCache releases materialized snapshots other than version 0, for
// long-lived stores that only need the batch view.
func (s *Store) DropCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.versions = map[int]graph.EdgeList{0: s.base}
	s.cacheOrder = nil
}

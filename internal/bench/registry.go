package bench

import (
	"fmt"
	"io"
	"sort"

	"commongraph/internal/kickstarter"
)

// Experiment is a named runnable experiment.
type Experiment struct {
	Name  string // cgbench -exp name
	Paper string // the table/figure it regenerates
	Run   func(Params) (*Table, error)
}

// extra holds experiments registered from outside this package. Some
// experiments exercise the public commongraph API, which this package
// cannot import (the root package's own tests import bench — the import
// would cycle through the test binary); they live in subpackages and
// register themselves at init, and only binaries that import them (cgbench)
// see them.
var extra []Experiment

// Register adds an externally defined experiment to the registry. Call it
// from init only — the registry is not synchronized.
func Register(e Experiment) { extra = append(extra, e) }

// Experiments lists every regenerable table and figure plus the ablations
// and any registered extras.
func Experiments() []Experiment {
	return append(builtins(), extra...)
}

func builtins() []Experiment {
	return []Experiment{
		{Name: "fig1", Paper: "Figure 1", Run: Fig1},
		{Name: "table2", Paper: "Table 2", Run: Table2},
		{Name: "table4", Paper: "Table 4", Run: Table4},
		{Name: "table5", Paper: "Table 5", Run: Table5},
		{Name: "fig8", Paper: "Figure 8", Run: Fig8},
		{Name: "fig9", Paper: "Figure 9", Run: Fig9},
		{Name: "fig10", Paper: "Figure 10", Run: Fig10},
		{Name: "fig11", Paper: "Figure 11", Run: Fig11},
		{Name: "ablation-steiner", Paper: "Ablation A1", Run: AblationSteiner},
		{Name: "ablation-scheduler", Paper: "Ablation A2", Run: AblationScheduler},
		{Name: "ablation-representation", Paper: "Ablation A3", Run: AblationRepresentation},
		{Name: "ablation-scale", Paper: "Ablation A4", Run: AblationScale},
		{Name: "ablation-baselines", Paper: "Ablation A5", Run: AblationBaselines},
		{Name: "store", Paper: "Persistence", Run: StorePersistence},
		{Name: "repl", Paper: "Replication", Run: Replication},
		{Name: "obs-overhead", Paper: "Observability overhead gate", Run: ObsOverhead},
		{Name: "shard", Paper: "Sharded execution", Run: ShardExecution},
	}
}

// ByName returns the named experiment, or false.
func ByName(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns all experiment names, sorted.
func Names() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// RunAndPrint executes one experiment and prints its table.
func RunAndPrint(w io.Writer, name string, p Params) error {
	e, ok := ByName(name)
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have %v)", name, Names())
	}
	t, err := e.Run(p)
	if err != nil {
		return err
	}
	t.Fprint(w)
	return nil
}

// newMutableFromWorkload builds a KickStarter mutable graph from a
// workload's base snapshot (helper shared by ablations).
func newMutableFromWorkload(w *Workload) *kickstarter.MutableGraph {
	return kickstarter.NewMutableGraph(w.N, w.Base)
}

// Package bench regenerates every table and figure of the paper's
// evaluation (§5) plus the motivating Figure 1, on synthetic stand-in
// workloads. Each experiment is a function returning a Table that both
// cmd/cgbench and the root bench_test.go print; tests call the same
// functions with tiny parameters.
package bench

import (
	"os"
	"strconv"

	"commongraph/internal/graph"
)

// Params scales every experiment. The defaults reproduce the paper's
// setups at 1/100 update scale on the Table 2 stand-in graphs, sized for a
// laptop; COMMONGRAPH_SCALE multiplies both graph and batch sizes.
type Params struct {
	// SizeFactor multiplies stand-in graph sizes (≥ 1).
	SizeFactor float64 `json:"size_factor"`
	// UpdateScale converts the paper's batch sizes to ours
	// (75,000 edges → 75,000 × UpdateScale).
	UpdateScale float64 `json:"update_scale"`
	// Snapshots is the window length for Table 4-style runs (paper: 50).
	Snapshots int `json:"snapshots"`
	// Source is the query source vertex.
	Source uint32 `json:"source"`
	// Seed namespaces the experiment's workloads.
	Seed uint64 `json:"seed"`
}

// Default returns the standard experiment scale, honouring the
// COMMONGRAPH_SCALE environment variable (a float ≥ 1 multiplying sizes).
//
// The base point is 1/25 of the paper's update scale on 4×-sized stand-in
// graphs: large enough that the baseline's graph-size-dependent costs
// (trimming cascades, mutation) are realistically expensive relative to
// addition streaming — see EXPERIMENTS.md for the scale sensitivity.
func Default() Params {
	p := Params{
		SizeFactor:  4,
		UpdateScale: 0.04,
		Snapshots:   50,
		Source:      0,
		Seed:        0xC0FFEE,
	}
	if v := os.Getenv("COMMONGRAPH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f >= 1 {
			p.SizeFactor *= f
			p.UpdateScale *= f
		}
	}
	return p
}

// Tiny returns a miniature parameter set for unit tests of the harness.
func Tiny() Params {
	return Params{SizeFactor: 1, UpdateScale: 0.001, Snapshots: 6, Source: 0, Seed: 0xDECAF}
}

// src returns the source vertex as a graph.VertexID.
func (p Params) src() graph.VertexID { return graph.VertexID(p.Source) }

// Batch converts one of the paper's batch sizes into this run's size,
// with a floor of 10 updates.
func (p Params) Batch(paperSize int) int {
	b := int(float64(paperSize) * p.UpdateScale)
	if b < 10 {
		b = 10
	}
	return b
}

package bench

import (
	"fmt"

	"commongraph/internal/algo"
	"commongraph/internal/engine"
	"commongraph/internal/kickstarter"
)

// Fig1 reproduces the motivating measurement of Figure 1 on the LJ
// stand-in: for batch sizes 75K–375K (scaled), the incremental computation
// cost of a deletion-only batch versus an addition-only batch (top), and
// the in-place graph mutation cost of each (bottom). The paper's headline:
// deletion computation ≈ 3× addition, and deletion mutation is several
// times addition mutation.
func Fig1(p Params) (*Table, error) {
	t := &Table{
		ID:    "Figure 1",
		Title: "KickStarter cost of deletions vs additions (LJ-sim)",
		Header: []string{"Algo", "Batch", "IncAdd", "IncDel", "Inc del/add",
			"MutAdd", "MutDel", "Mut del/add"},
	}
	algos := []algo.Algorithm{algo.BFS{}, algo.SSSP{}, algo.SSWP{}, algo.SSNP{}}
	paperBatches := []int{75_000, 150_000, 225_000, 300_000, 375_000}
	for _, a := range algos {
		for _, pb := range paperBatches {
			b := p.Batch(pb)
			// Addition-only measurement.
			addWL, err := BuildWorkload("LJ-sim", p, 1, b, 0)
			if err != nil {
				return nil, err
			}
			sysAdd := kickstarter.New(addWL.N, addWL.Base, a, p.src(), engine.Options{})
			if err := sysAdd.ApplyTransition(addWL.Store.Additions(0).Edges(), nil); err != nil {
				return nil, err
			}
			// Deletion-only measurement from the same base graph.
			delWL, err := BuildWorkload("LJ-sim", p, 1, 0, b)
			if err != nil {
				return nil, err
			}
			sysDel := kickstarter.New(delWL.N, delWL.Base, a, p.src(), engine.Options{})
			if err := sysDel.ApplyTransition(nil, delWL.Store.Deletions(0).Edges()); err != nil {
				return nil, err
			}
			incAdd, incDel := sysAdd.Cost.IncrementalAdd, sysDel.Cost.IncrementalDelete
			mutAdd, mutDel := sysAdd.Cost.MutateAdd, sysDel.Cost.MutateDelete
			t.AddRow(a.Name(), fmt.Sprintf("%d", b),
				secs(incAdd), secs(incDel), speedup(incDel, incAdd),
				secs(mutAdd), secs(mutDel), speedup(mutDel, mutAdd))
		}
	}
	t.Notes = append(t.Notes,
		"paper batches 75K-375K scaled by UpdateScale; 'x' columns = deletion cost / addition cost")
	return t, nil
}

package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"commongraph/internal/algo"
	"commongraph/internal/engine"
	"commongraph/internal/kickstarter"
	"commongraph/internal/obs"
)

// obsOverheadBudget is the acceptance ceiling for the always-on flight
// recorder: the traced pipeline may cost at most this fraction more than
// the identical run with recording disabled (the nil-tracer path). The
// experiment *fails* past the budget — CI runs it as a gate.
const obsOverheadBudget = 0.05

// obsOverheadRounds is how many interleaved off/on pairs are timed; the
// gate compares the median of the per-pair on/off ratios (see
// measureObsOverhead for why median-of-pairs beats min-vs-min here).
const obsOverheadRounds = 7

// obsOverheadTransitions sizes the timed sweep: ~10 transitions run in
// ~10ms, where a 5% budget is below scheduler jitter. Eighty distinct
// transitions push the baseline past 100ms so the gate measures the
// recorder, not the OS.
const obsOverheadTransitions = 80

// ObsOverhead measures what the always-on observability pipeline costs:
// the same KickStarter ingest-and-maintain loop is timed with flight
// recording disabled (obs.Active() returns nil — every span site is one
// pointer test) and enabled (root spans ride the ring-only recorder,
// their completed subtrees land in the flight ring). Each transition is
// wrapped in a root span with the kickstarter.transition/phase.* child
// spans underneath — the span shape the production evaluate path emits.
func ObsOverhead(p Params) (*Table, error) {
	t := &Table{
		ID:    "ObsOverhead",
		Title: "Always-on flight recorder: traced vs untraced pipeline cost",
		Header: []string{"Graph", "Transitions", "Spans/transition",
			"Recorder off", "Recorder on", "Overhead"},
	}
	// Below this baseline duration the run is all fixed cost and timer
	// noise — a tiny-scale smoke run can show double-digit "overhead"
	// from scheduling jitter alone. The gate only binds when the
	// recorder-off side is long enough for a 5% delta to be signal.
	const gateFloor = 5 * time.Millisecond
	transitions := obsOverheadTransitions
	b := p.Batch(50_000)
	for _, name := range []string{"LJ-sim"} {
		w, err := BuildWorkload(name, p, transitions, b, b/4)
		if err != nil {
			return nil, err
		}
		// Best of up to three measurements: a real recorder regression
		// shifts every attempt past the budget, while a noisy-neighbor
		// spike on a shared CI runner does not survive a re-measure. The
		// first in-budget attempt is reported.
		var off, on time.Duration
		var overhead float64
		for attempt := 0; ; attempt++ {
			var merr error
			off, on, overhead, merr = measureObsOverhead(w, p, transitions)
			if merr != nil {
				return nil, merr
			}
			if overhead <= obsOverheadBudget || attempt == 2 {
				break
			}
		}
		// 5 child spans per transition (kickstarter.transition + 4 phases)
		// plus the evaluate root.
		t.AddRow(name, fmt.Sprintf("%d", transitions), "6",
			secs(off), secs(on), fmt.Sprintf("%+.2f%%", overhead*100))
		if overhead > obsOverheadBudget {
			if off < gateFloor {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"workload too small to gate (off %.1fms < %.0fms floor); overhead informational only",
					float64(off)/1e6, float64(gateFloor)/1e6))
			} else {
				return t, fmt.Errorf("bench: obs-overhead: flight recorder costs %+.2f%% on %s (budget %.0f%%)",
					overhead*100, name, obsOverheadBudget*100)
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("budget: recorder-on ≤ %+.0f%% over recorder-off; median on/off ratio of %d interleaved round pairs",
			obsOverheadBudget*100, obsOverheadRounds),
		"off = obs.SetFlightRecording(false): ambient tracer is nil, spans cost one pointer test",
	)
	return t, nil
}

// measureObsOverhead times the loop with recording off and on,
// interleaved so clock drift and thermal state hit both sides equally.
// The returned overhead is the MEDIAN of the per-round on/off ratios:
// rounds are adjacent in time so each pair sees the same machine state,
// and the median survives the occasional round where the scheduler or
// a background daemon lands on one side (a min-vs-min comparison is
// sunk by a single lucky round on either side). off and on are the
// per-side minimums, reported for scale.
func measureObsOverhead(w *Workload, p Params, transitions int) (off, on time.Duration, overhead float64, err error) {
	prev := obs.SetFlightRecording(true)
	defer obs.SetFlightRecording(prev)
	// Concurrent GC is the dominant noise source at this duration: a
	// collection pacing decision landing inside one timed run reads as
	// several percent on that side. Collect explicitly between runs
	// (runtime.GC below) and keep the pacer out of the timed regions.
	// Allocation itself still costs the same on both sides, so the
	// recorder's real allocation overhead stays in the measurement.
	prevGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prevGC)

	runOnce := func() (time.Duration, error) {
		// Build outside the timed region: initial compute is identical on
		// both sides and dwarfs the per-span cost under measurement.
		// Workers 1 / sequential drain: the scheduler's parallel width is
		// its own noise source, and this gate measures span cost, not
		// scaling — a deterministic engine keeps run-to-run variance at
		// the level a 5%% budget needs.
		sys := kickstarter.New(w.N, w.Base, algo.BFS{}, p.src(), engine.Options{Workers: 1, AsyncWorkers: 1})
		// Settle GC debt from the build before the timer: a collection
		// triggered mid-run lands on whichever side happened to cross the
		// heap goal, which reads as phantom overhead.
		runtime.GC()
		start := time.Now()
		for tr := 0; tr < transitions; tr++ {
			root := obs.Active().StartSpan("evaluate",
				obs.String("strategy", "kickstarter"), obs.Int("transition", tr))
			sys.Trace = root
			rerr := sys.ApplyTransition(w.Store.Additions(tr).Edges(), w.Store.Deletions(tr).Edges())
			root.End()
			if rerr != nil {
				return 0, rerr
			}
		}
		return time.Since(start), nil
	}

	// One untimed warmup so allocator and cache state is steady before
	// either side is measured (the first round otherwise pays it).
	if _, werr := runOnce(); werr != nil {
		return 0, 0, 0, werr
	}
	off, on = time.Duration(1<<62), time.Duration(1<<62)
	ratios := make([]float64, 0, obsOverheadRounds)
	for round := 0; round < obsOverheadRounds; round++ {
		obs.SetFlightRecording(false)
		dOff, rerr := runOnce()
		if rerr != nil {
			return 0, 0, 0, rerr
		}
		if dOff < off {
			off = dOff
		}
		obs.SetFlightRecording(true)
		dOn, rerr := runOnce()
		if rerr != nil {
			return 0, 0, 0, rerr
		}
		if dOn < on {
			on = dOn
		}
		ratios = append(ratios, float64(dOn)/float64(dOff))
	}
	sort.Float64s(ratios)
	overhead = ratios[len(ratios)/2] - 1
	return off, on, overhead, nil
}

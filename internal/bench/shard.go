package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"commongraph/internal/algo"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
	"commongraph/internal/shard"
	"commongraph/internal/store"
)

// ShardExecution measures the PR's two out-of-core claims. Cold open:
// mapping a store's binary segments (structural decode only, pages
// fault in on demand) against materializing them (read + CRC + copy),
// to first edge views, on the store experiment's stand-ins. Scaling:
// the sharded executor's from-scratch BFS on LJ-sim at 2/4/8 vertex
// shards against the unsharded engine — the shard boundary (per-shard
// frontiers, cross-shard inboxes, work stealing) must stay within
// noise of the shared-memory executor it generalizes, and the steal
// and inbox counters in the notes show the cross-shard machinery
// actually ran.
func ShardExecution(p Params) (*Table, error) {
	t := &Table{
		ID:     "Sharded execution",
		Title:  "mmap vs materializing cold open; sharded executor scaling",
		Header: []string{"Workload", "Variant", "Time", "vs baseline"},
	}

	// --- Cold open: materialize vs map, same store layout as the
	// persistence experiment.
	const transitions = 4
	b := p.Batch(75_000)
	for _, name := range []string{"LJ-sim", "DL-sim"} {
		w, err := BuildWorkload(name, p, transitions, b, b/4)
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "cgbench-shard-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		storeDir := filepath.Join(dir, "store")
		s, err := store.Create(storeDir, w.N, w.Base)
		if err != nil {
			return nil, err
		}
		for tr := 0; tr < transitions; tr++ {
			if err := s.AppendBatch(w.Store.Additions(tr).Edges(), w.Store.Deletions(tr).Edges(), 0); err != nil {
				return nil, err
			}
		}
		if err := s.Close(); err != nil {
			return nil, err
		}

		var mat, mapped time.Duration
		for r := 0; r < measureRepeats; r++ {
			runtime.GC()
			d, err := measureSegmentOpen(storeDir, transitions, false)
			if err != nil {
				return nil, err
			}
			if r == 0 || d < mat {
				mat = d
			}
			runtime.GC()
			d, err = measureSegmentOpen(storeDir, transitions, true)
			if err != nil {
				return nil, err
			}
			if r == 0 || d < mapped {
				mapped = d
			}
		}
		t.AddRow(name+" cold-open", "materialize", secs(mat), "1.00x")
		t.AddRow(name+" cold-open", "mmap", secs(mapped), speedup(mat, mapped))
	}

	// --- Sharded executor scaling on LJ-sim's base graph.
	w, err := BuildWorkload("LJ-sim", p, 1, b, 0)
	if err != nil {
		return nil, err
	}
	g := graph.NewPair(w.N, w.Base)
	workers := runtime.GOMAXPROCS(0)
	opt := engine.Options{Workers: workers}

	var unsharded time.Duration
	for r := 0; r < measureRepeats; r++ {
		runtime.GC()
		start := time.Now()
		engine.Run(g, algo.BFS{}, p.src(), opt)
		if d := time.Since(start); r == 0 || d < unsharded {
			unsharded = d
		}
	}
	t.AddRow("LJ-sim BFS", "unsharded", secs(unsharded), "1.00x")

	counts := []int{2, 4, 8}
	if workers > 2 && workers != 4 && workers != 8 {
		counts = append(counts, workers)
	}
	if workers == 1 {
		t.Notes = append(t.Notes,
			"Shards=NumCPU=1 on this host: the executor falls back to the unsharded engine (identical by construction); the multi-shard rows below measure pure shard-boundary overhead with no parallelism to recoup it")
	}
	for _, shards := range counts {
		sopt := opt
		sopt.Shards = shards
		steals0 := obs.ShardSteals().Value()
		inbox0 := obs.ShardInboxMessages().Value()
		var dur time.Duration
		for r := 0; r < measureRepeats; r++ {
			runtime.GC()
			start := time.Now()
			st, _ := shard.Run(g, algo.BFS{}, p.src(), sopt)
			if st == nil {
				return nil, fmt.Errorf("sharded run returned no state")
			}
			if d := time.Since(start); r == 0 || d < dur {
				dur = d
			}
		}
		t.AddRow("LJ-sim BFS", fmt.Sprintf("shards=%d", shards),
			secs(dur), speedup(unsharded, dur))
		t.Notes = append(t.Notes, fmt.Sprintf(
			"shards=%d: %d steals, %d cross-shard messages over %d runs",
			shards, obs.ShardSteals().Value()-steals0,
			obs.ShardInboxMessages().Value()-inbox0, measureRepeats))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cold open = store open + base and %d overlay segment loads to first edge views; mmap defers CRC to VerifyMapped and copies nothing", transitions),
		fmt.Sprintf("scaling: from-scratch BFS, %d workers, degree-balanced contiguous vertex shards (graph.DegreeCuts)", workers))
	return t, nil
}

// measureSegmentOpen times store open through first edge views of every
// segment — the cost a restarted process pays before it can traverse.
func measureSegmentOpen(dir string, transitions int, mapped bool) (time.Duration, error) {
	start := time.Now()
	s, err := store.OpenWith(dir, store.Options{MapSegments: mapped})
	if err != nil {
		return 0, err
	}
	defer s.Close()
	if _, err := s.Base(); err != nil {
		return 0, err
	}
	for tr := 0; tr < transitions; tr++ {
		if _, _, err := s.Overlay(tr); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

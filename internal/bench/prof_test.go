package bench

import (
	"os"
	"runtime/pprof"
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/core"
)

func TestProfileWS(t *testing.T) {
	p := Default()
	w, err := BuildWorkload("TTW-sim", p, p.Snapshots-1, 375, 375)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.BuildRep(core.Window{Store: w.Store, From: 0, To: p.Snapshots - 1})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := os.Create("/tmp/ws.prof")
	pprof.StartCPUProfile(f)
	for i := 0; i < 5; i++ {
		if _, _, err := core.EvaluateWorkSharing(rep, core.Config{Algo: algo.BFS{}, Source: 0}); err != nil {
			t.Fatal(err)
		}
	}
	pprof.StopCPUProfile()
	f.Close()
}

package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParamsDefaults(t *testing.T) {
	p := Default()
	if p.SizeFactor != 4 || p.Snapshots != 50 {
		t.Fatalf("%+v", p)
	}
	if p.Batch(75_000) != 3000 {
		t.Fatalf("batch=%d", p.Batch(75_000))
	}
	if p.Batch(100) != 10 {
		t.Fatalf("floor not applied: %d", p.Batch(100))
	}
	t.Setenv("COMMONGRAPH_SCALE", "2")
	p = Default()
	if p.SizeFactor != 8 || p.Batch(75_000) != 6000 {
		t.Fatalf("scaled params wrong: %+v", p)
	}
	t.Setenv("COMMONGRAPH_SCALE", "bogus")
	p = Default()
	if p.SizeFactor != 4 {
		t.Fatalf("bogus scale accepted: %+v", p)
	}
}

func TestWorkloadCaching(t *testing.T) {
	p := Tiny()
	a, err := BuildWorkload("LJ-sim", p, 3, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildWorkload("LJ-sim", p, 3, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache miss for identical config")
	}
	c, err := BuildWorkload("LJ-sim", p, 3, 20, 25)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different config hit the same cache entry")
	}
	if _, err := BuildWorkload("nope", p, 3, 20, 20); err == nil {
		t.Fatal("unknown graph accepted")
	}
	if a.Store.NumVersions() != 4 {
		t.Fatalf("versions=%d", a.Store.NumVersions())
	}
}

func TestTablePrinting(t *testing.T) {
	tab := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"A", "LongHeader"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("x", "y")
	tab.AddRow("longer-cell", "z")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== T — demo ==", "LongHeader", "longer-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormattingHelpers(t *testing.T) {
	if secs(1500*time.Millisecond) != "1.50s" {
		t.Fatalf("secs: %s", secs(1500*time.Millisecond))
	}
	if secs(120*time.Second) != "120s" {
		t.Fatalf("secs: %s", secs(120*time.Second))
	}
	if secs(3*time.Millisecond) != "0.0030s" {
		t.Fatalf("secs: %s", secs(3*time.Millisecond))
	}
	if speedup(2*time.Second, time.Second) != "2.00x" {
		t.Fatalf("speedup: %s", speedup(2*time.Second, time.Second))
	}
	if speedup(time.Second, 0) != "inf" {
		t.Fatalf("speedup zero: %s", speedup(time.Second, 0))
	}
}

func TestRegistry(t *testing.T) {
	if len(Experiments()) != 17 {
		t.Fatalf("experiments=%d", len(Experiments()))
	}
	if _, ok := ByName("table4"); !ok {
		t.Fatal("table4 missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("phantom experiment")
	}
	names := Names()
	if len(names) != 17 || names[0] > names[len(names)-1] {
		t.Fatalf("names=%v", names)
	}
	var buf bytes.Buffer
	if err := RunAndPrint(&buf, "nope", Tiny()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestEveryExperimentRunsAtTinyScale executes every registered experiment
// end to end with miniature parameters — the harness's integration test.
func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := Tiny()
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tab, err := e.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			if tab.ID == "" || len(tab.Header) == 0 {
				t.Fatal("table metadata missing")
			}
			var buf bytes.Buffer
			tab.Fprint(&buf)
			if buf.Len() == 0 {
				t.Fatal("nothing printed")
			}
		})
	}
}

func TestRunAllConsistency(t *testing.T) {
	p := Tiny()
	w, err := BuildWorkload("LJ-sim", p, p.Snapshots-1, 30, 30)
	if err != nil {
		t.Fatal(err)
	}
	st, err := runAll(w, 0, p.Snapshots-1, algoBFS(), p.src(), true)
	if err != nil {
		t.Fatal(err)
	}
	if st.KS <= 0 || st.DH <= 0 || st.WS <= 0 {
		t.Fatalf("non-positive times: %+v", st)
	}
	if st.WSAdditions > st.DHAdditions {
		t.Fatalf("work sharing streamed more additions (%d) than direct hop (%d)",
			st.WSAdditions, st.DHAdditions)
	}
	if st.MaxHop <= 0 {
		t.Fatal("no parallel hop time")
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"A", "B"},
	}
	tab.AddRow("plain", `with,comma and "quote"`)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "A,B\nplain,\"with,comma and \"\"quote\"\"\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q want %q", buf.String(), want)
	}
}

package bench

import (
	"fmt"

	"commongraph/internal/algo"
	"commongraph/internal/gen"
	"commongraph/internal/graph"
)

// table4Graphs are the Table 2/4 input graphs (stand-ins).
var table4Graphs = []string{"LJ-sim", "DL-sim", "Wen-sim", "TTW-sim"}

// Table2 prints the stand-in input graphs next to the paper's originals.
func Table2(p Params) (*Table, error) {
	t := &Table{
		ID:     "Table 2",
		Title:  "Input graphs (scaled stand-ins for the paper's datasets)",
		Header: []string{"Graph", "|V|", "|E|", "AvgDeg", "MaxOut", "Paper |V|", "Paper |E|"},
	}
	for _, name := range table4Graphs {
		s, _ := gen.ByName(name)
		w, err := BuildWorkload(name, p, 1, 10, 0)
		if err != nil {
			return nil, err
		}
		st := graph.ComputeStats(name, w.N, w.Base)
		t.AddRow(name,
			fmt.Sprintf("%d", st.Vertices), fmt.Sprintf("%d", st.Edges),
			fmt.Sprintf("%.2f", st.AvgDegree), fmt.Sprintf("%d", st.MaxOutDeg),
			s.PaperV, s.PaperE)
	}
	return t, nil
}

// Table4 reproduces the headline comparison: KickStarter's time to
// evaluate a query across p.Snapshots snapshots, and the speedup of
// CommonGraph Direct-Hop and Work-Sharing over it, on every (graph,
// algorithm) pair. Batches carry Batch(75K) updates split evenly between
// additions and deletions, as in the paper.
func Table4(p Params) (*Table, error) {
	t := &Table{
		ID:    "Table 4",
		Title: fmt.Sprintf("KickStarter time and CommonGraph speedups, %d snapshots", p.Snapshots),
		Header: []string{"Graph", "Algo", "KickStarter", "Direct-Hop", "DH speedup",
			"Work-Sharing", "WS speedup", "DH adds", "WS adds"},
	}
	half := p.Batch(75_000) / 2
	for _, g := range table4Graphs {
		w, err := BuildWorkload(g, p, p.Snapshots-1, half, half)
		if err != nil {
			return nil, err
		}
		for _, a := range algo.All() {
			st, err := runAll(w, 0, p.Snapshots-1, a, p.src(), false)
			if err != nil {
				return nil, err
			}
			t.AddRow(g, a.Name(),
				secs(st.KS),
				secs(st.DH), speedup(st.KS, st.DH),
				secs(st.WS), speedup(st.KS, st.WS),
				fmt.Sprintf("%d", st.DHAdditions), fmt.Sprintf("%d", st.WSAdditions))
		}
	}
	t.Notes = append(t.Notes,
		"all times include the initial from-scratch solve; paper expectation: DH 1.02x-7.91x, WS 1.38x-8.17x")
	return t, nil
}

// Table5 reproduces the parallel Direct-Hop estimate: the longest single
// hop when all hops run concurrently, and its speedup over sequential
// KickStarter streaming.
func Table5(p Params) (*Table, error) {
	t := &Table{
		ID:     "Table 5",
		Title:  fmt.Sprintf("Parallel Direct-Hop: longest hop and speedup over KickStarter, %d snapshots", p.Snapshots),
		Header: []string{"Graph", "Algo", "KickStarter", "Longest hop", "Speedup"},
	}
	half := p.Batch(75_000) / 2
	for _, g := range table4Graphs {
		w, err := BuildWorkload(g, p, p.Snapshots-1, half, half)
		if err != nil {
			return nil, err
		}
		for _, a := range algo.All() {
			st, err := runAll(w, 0, p.Snapshots-1, a, p.src(), false)
			if err != nil {
				return nil, err
			}
			t.AddRow(g, a.Name(), secs(st.KS), secs(st.MaxHop), speedup(st.KS, st.MaxHop))
		}
	}
	t.Notes = append(t.Notes,
		"speedup assumes one core per snapshot (paper: 51x-395x); hop times exclude the shared common-graph solve")
	return t, nil
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a printable experiment result: the shared currency between the
// experiment runners, cmd/cgbench, and bench_test.go.
type Table struct {
	ID     string     `json:"id"` // paper anchor, e.g. "Table 4" or "Figure 8"
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// Report is the machine-readable result of a whole cgbench run
// (cgbench -json): the parameter set and one entry per experiment, in
// execution order. CI commits one snapshot per PR (BENCH_PR<n>.json via
// `make bench-json`) so the performance trajectory of the repo is
// diffable; the shape — params, then {name, elapsed_seconds, table} — is
// a stable contract for the comparison tooling.
type Report struct {
	Params      Params        `json:"params"`
	Experiments []ReportEntry `json:"experiments"`
}

// ReportEntry is one experiment's result inside a Report.
type ReportEntry struct {
	Name           string  `json:"name"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Table          *Table  `json:"table"`
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// secs formats a duration as seconds with adaptive precision.
func secs(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	default:
		return fmt.Sprintf("%.4fs", s)
	}
}

// speedup formats a ratio the way the paper does ("3.35x").
func speedup(baseline, improved time.Duration) string {
	if improved <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(baseline)/float64(improved))
}

// WriteCSV renders the table as RFC-4180-ish CSV (header row first), for
// plotting the figures outside Go.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

package bench

import (
	"fmt"

	"commongraph/internal/algo"
)

// fig8Algos are the four algorithms used in the scalability figures.
var fig8Algos = []algo.Algorithm{algo.BFS{}, algo.SSSP{}, algo.SSWP{}, algo.SSNP{}}

// Fig8 sweeps the number of snapshots (5..50) at fixed batch size on the
// TTW stand-in, for the three systems. Paper expectation: all grow
// linearly; work sharing overtakes direct hop beyond ~23-35 snapshots.
func Fig8(p Params) (*Table, error) {
	t := &Table{
		ID:     "Figure 8",
		Title:  "Execution time vs number of snapshots (TTW-sim)",
		Header: []string{"Algo", "Snapshots", "KickStarter", "Direct-Hop", "Work-Sharing"},
	}
	half := p.Batch(75_000) / 2
	maxSnaps := p.Snapshots
	w, err := BuildWorkload("TTW-sim", p, maxSnaps-1, half, half)
	if err != nil {
		return nil, err
	}
	step := maxSnaps / 10
	if step < 1 {
		step = 1
	}
	for _, a := range fig8Algos {
		for snaps := step; snaps <= maxSnaps; snaps += step {
			st, err := runAll(w, 0, snaps-1, a, p.src(), false)
			if err != nil {
				return nil, err
			}
			t.AddRow(a.Name(), fmt.Sprintf("%d", snaps), secs(st.KS), secs(st.DH), secs(st.WS))
		}
	}
	return t, nil
}

// Fig9 fixes the total number of updates and trades batch size against
// snapshot count: 75K×50, 93.75K×40, 125K×30, 187.5K×20, 375K×10 (scaled).
// Paper expectation: direct hop wins at large batches / few snapshots,
// work sharing wins at small batches / many snapshots.
func Fig9(p Params) (*Table, error) {
	t := &Table{
		ID:     "Figure 9",
		Title:  "Execution time vs batch size at fixed total updates (TTW-sim)",
		Header: []string{"Algo", "Batch", "Snapshots", "KickStarter", "Direct-Hop", "Work-Sharing"},
	}
	combos := []struct {
		paperBatch int
		snaps      int
	}{
		{75_000, 50}, {93_750, 40}, {125_000, 30}, {187_500, 20}, {375_000, 10},
	}
	// Workload-outer order: each batch-size variant of the biggest graph
	// is generated once, measured for every algorithm, then evictable.
	for _, c := range combos {
		snaps := c.snaps * p.Snapshots / 50
		if snaps < 2 {
			snaps = 2
		}
		half := p.Batch(c.paperBatch) / 2
		w, err := BuildWorkload("TTW-sim", p, snaps-1, half, half)
		if err != nil {
			return nil, err
		}
		for _, a := range fig8Algos {
			st, err := runAll(w, 0, snaps-1, a, p.src(), false)
			if err != nil {
				return nil, err
			}
			t.AddRow(a.Name(), fmt.Sprintf("%d", 2*half), fmt.Sprintf("%d", snaps),
				secs(st.KS), secs(st.DH), secs(st.WS))
		}
	}
	sortRowsByFirstColumn(t)
	return t, nil
}

// sortRowsByFirstColumn groups a table's rows by their first cell while
// keeping the within-group order, so workload-outer measurement loops
// still print algorithm-grouped tables.
func sortRowsByFirstColumn(t *Table) {
	grouped := make([][]string, 0, len(t.Rows))
	seen := map[string]bool{}
	for _, r := range t.Rows {
		if seen[r[0]] {
			continue
		}
		seen[r[0]] = true
		for _, r2 := range t.Rows {
			if r2[0] == r[0] {
				grouped = append(grouped, r2)
			}
		}
	}
	t.Rows = grouped
}

// Fig10 varies the additions:deletions ratio at fixed batch size
// (150K/50K, 100K/100K, 50K/150K scaled) and reports the Direct-Hop
// speedup over KickStarter for all five algorithms. Paper expectation:
// speedup grows as the deletion share grows.
func Fig10(p Params) (*Table, error) {
	t := &Table{
		ID:     "Figure 10",
		Title:  "Direct-Hop speedup vs addition:deletion ratio (TTW-sim)",
		Header: []string{"Algo", "Adds", "Dels", "KickStarter", "Direct-Hop", "Speedup"},
	}
	ratios := [][2]int{{150_000, 50_000}, {100_000, 100_000}, {50_000, 150_000}}
	for _, r := range ratios {
		adds, dels := p.Batch(r[0]), p.Batch(r[1])
		w, err := BuildWorkload("TTW-sim", p, p.Snapshots-1, adds, dels)
		if err != nil {
			return nil, err
		}
		for _, a := range algo.All() {
			st, err := runAll(w, 0, p.Snapshots-1, a, p.src(), false)
			if err != nil {
				return nil, err
			}
			t.AddRow(a.Name(), fmt.Sprintf("%d", adds), fmt.Sprintf("%d", dels),
				secs(st.KS), secs(st.DH), speedup(st.KS, st.DH))
		}
	}
	sortRowsByFirstColumn(t)
	return t, nil
}

// Fig11 breaks the execution time of KickStarter and CommonGraph
// Work-Sharing into phases on the TTW stand-in. Paper expectation:
// CommonGraph eliminates both mutation phases and the incremental deletion
// phase entirely, and its incremental addition time is below KickStarter's
// combined incremental time.
func Fig11(p Params) (*Table, error) {
	t := &Table{
		ID:     "Figure 11",
		Title:  "Execution time breakdown, KickStarter (KS) vs CommonGraph Work-Sharing (CG), TTW-sim",
		Header: []string{"Algo", "System", "IncAdd", "IncDel", "Mutate/Overlay", "Clone", "Total"},
	}
	half := p.Batch(75_000) / 2
	w, err := BuildWorkload("TTW-sim", p, p.Snapshots-1, half, half)
	if err != nil {
		return nil, err
	}
	for _, a := range algo.All() {
		st, err := runAll(w, 0, p.Snapshots-1, a, p.src(), false)
		if err != nil {
			return nil, err
		}
		ks := st.KSCost
		t.AddRow(a.Name(), "KS",
			secs(ks.IncrementalAdd), secs(ks.IncrementalDelete),
			secs(ks.MutateAdd+ks.MutateDelete), "-", secs(ks.StreamingTotal()))
		cg := st.WSCost
		t.AddRow(a.Name(), "CG",
			secs(cg.IncrementalAdd), "0s",
			secs(cg.OverlayBuild), secs(cg.StateClone),
			secs(cg.IncrementalAdd+cg.OverlayBuild+cg.StateClone))
	}
	t.Notes = append(t.Notes,
		"per-transition phases only (initial solves excluded); CG has no deletion or mutation phases by construction")
	return t, nil
}

package bench

import (
	"runtime"
	"time"

	"commongraph/internal/algo"
	"commongraph/internal/core"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
	"commongraph/internal/kickstarter"
)

// strategyTimes holds one (workload, window, algorithm) measurement of the
// three systems. All totals include the initial from-scratch computation
// (the paper treats the common-graph and first-snapshot solves as
// comparable); representation construction (BuildRep/BuildTG) is excluded
// for CommonGraph just as graph loading is excluded for KickStarter.
type strategyTimes struct {
	KS          time.Duration
	KSCost      kickstarter.CostBreakdown
	DH          time.Duration
	DHCost      core.Cost
	WS          time.Duration
	WSCost      core.Cost
	DHAdditions int64
	WSAdditions int64
	MaxHop      time.Duration
}

// runKS streams the window through the KickStarter baseline.
func runKS(w *Workload, from, to int, a algo.Algorithm, src graph.VertexID) (kickstarter.CostBreakdown, error) {
	first, err := w.Store.GetVersion(from)
	if err != nil {
		return kickstarter.CostBreakdown{}, err
	}
	// The baseline runs level-synchronous throughout: KickStarter is built
	// on Ligra's bulk-synchronous edgeMap. The adaptive sync/async
	// scheduler is part of the CommonGraph system (§4.3), not the baseline.
	sys := kickstarter.New(w.N, first, a, src, engine.Options{Mode: engine.Sync})
	for t := from; t < to; t++ {
		if err := sys.ApplyTransition(w.Store.Additions(t).Edges(), w.Store.Deletions(t).Edges()); err != nil {
			return kickstarter.CostBreakdown{}, err
		}
	}
	return sys.Cost, nil
}

// measureRepeats is how many times each strategy is measured; the fastest
// run is kept — the standard way to strip GC and scheduler noise from
// single-shot macro measurements.
const measureRepeats = 2

// runAll measures KickStarter, Direct-Hop and Work-Sharing on one window.
// runtime.GC runs between measurements so one strategy's garbage is not
// collected on another's clock.
func runAll(w *Workload, from, to int, a algo.Algorithm, src graph.VertexID, parallel bool) (*strategyTimes, error) {
	out := &strategyTimes{}

	for r := 0; r < measureRepeats; r++ {
		runtime.GC()
		ksCost, err := runKS(w, from, to, a, src)
		if err != nil {
			return nil, err
		}
		if r == 0 || ksCost.Total() < out.KS {
			out.KSCost = ksCost
			out.KS = ksCost.Total()
		}
	}

	rep, err := core.BuildRep(core.Window{Store: w.Store, From: from, To: to})
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Algo: a, Source: src}

	for r := 0; r < measureRepeats; r++ {
		runtime.GC()
		dh, err := core.DirectHop(rep, cfg)
		if err != nil {
			return nil, err
		}
		if r == 0 || dh.Cost.Total() < out.DH {
			out.DHCost = dh.Cost
			out.DH = dh.Cost.Total()
			out.MaxHop = dh.MaxHopTime
		}
		out.DHAdditions = dh.AdditionsProcessed
	}

	for r := 0; r < measureRepeats; r++ {
		runtime.GC()
		ws, _, err := core.EvaluateWorkSharing(rep, cfg)
		if err != nil {
			return nil, err
		}
		if r == 0 || ws.Cost.Total() < out.WS {
			out.WSCost = ws.Cost
			out.WS = ws.Cost.Total()
		}
		out.WSAdditions = ws.AdditionsProcessed
	}

	// MaxHop comes from the sequential Direct-Hop loop: each hop is timed
	// in isolation there, so the maximum estimates the one-core-per-
	// snapshot wall time without hops inflating each other (the `parallel`
	// flag is kept for callers that want the concurrent execution itself).
	if parallel {
		if _, err := core.DirectHopParallel(rep, cfg); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// algoBFS avoids an import cycle in tests needing a default algorithm.
func algoBFS() algo.Algorithm { return algo.BFS{} }

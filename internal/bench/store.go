package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"commongraph/internal/algo"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
	"commongraph/internal/kickstarter"
	"commongraph/internal/store"
)

// StorePersistence measures the durable store's two new costs against the
// paths they replace: a cold open (manifest read + lazy binary segment
// loads + first BFS) versus re-ingesting the same snapshot from a text
// edge list, and the per-window WAL fsync the ingest path now pays. The
// acceptance bar is the ROADMAP's restartable service: ColdOpen must beat
// TextIngest on every stand-in.
func StorePersistence(p Params) (*Table, error) {
	t := &Table{
		ID:    "Persistence",
		Title: "cgstore cold open vs text re-ingest; WAL append cost",
		Header: []string{"Graph", "Edges", "TextIngest", "ColdOpen", "Open speedup",
			"WAL/win", "WAL MB/s"},
	}
	// Window shape mirrors Table 4: a handful of transitions at the
	// paper's smallest batch size, scaled.
	const transitions = 4
	b := p.Batch(75_000)
	for _, name := range []string{"LJ-sim", "DL-sim"} {
		w, err := BuildWorkload(name, p, transitions, b, b/4)
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "cgbench-store-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		last := w.Store.NumVersions() - 1
		final, err := w.Store.GetVersion(last)
		if err != nil {
			return nil, err
		}

		// Persist base + every transition, then measure reopening it.
		storeDir := filepath.Join(dir, "store")
		s, err := store.Create(storeDir, w.N, w.Base)
		if err != nil {
			return nil, err
		}
		for tr := 0; tr < transitions; tr++ {
			if err := s.AppendBatch(w.Store.Additions(tr).Edges(), w.Store.Deletions(tr).Edges(), 0); err != nil {
				return nil, err
			}
		}
		walPerWin, walMBs, err := measureWALAppend(s, w.N, b)
		if err != nil {
			return nil, err
		}
		if err := s.Close(); err != nil {
			return nil, err
		}

		// The text baseline re-ingests the final snapshot only — strictly
		// less work than the store, which recovers the whole window.
		textPath := filepath.Join(dir, "final.txt")
		tf, err := os.Create(textPath)
		if err != nil {
			return nil, err
		}
		if err := graph.WriteText(tf, w.N, final); err != nil {
			tf.Close()
			return nil, err
		}
		if err := tf.Close(); err != nil {
			return nil, err
		}

		var cold, text time.Duration
		for r := 0; r < measureRepeats; r++ {
			runtime.GC()
			d, err := measureColdOpen(storeDir, last, p.src())
			if err != nil {
				return nil, err
			}
			if r == 0 || d < cold {
				cold = d
			}
			runtime.GC()
			d, err = measureTextIngest(textPath, p.src())
			if err != nil {
				return nil, err
			}
			if r == 0 || d < text {
				text = d
			}
		}
		t.AddRow(name, fmt.Sprintf("%d", len(final)),
			secs(text), secs(cold), speedup(text, cold),
			secs(walPerWin), fmt.Sprintf("%.1f", walMBs))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d transitions of +%d/-%d edges; ColdOpen = store.Open + Snapshot + first BFS; TextIngest = ReadText of the final snapshot + first BFS", transitions, b, b/4),
		"WAL/win = fsynced Journal append of one window's raw updates; MB/s over the 28-byte record encoding")
	return t, nil
}

// measureColdOpen times store.Open + full materialization + a first BFS
// from src — everything a restarted cgquery pays before its first answer.
func measureColdOpen(dir string, version int, src graph.VertexID) (time.Duration, error) {
	start := time.Now()
	s, err := store.Open(dir)
	if err != nil {
		return 0, err
	}
	defer s.Close()
	snap, err := s.Snapshot()
	if err != nil {
		return 0, err
	}
	edges, err := snap.GetVersion(version - s.Origin())
	if err != nil {
		return 0, err
	}
	kickstarter.New(s.NumVertices(), edges, algo.BFS{}, src, engine.Options{})
	return time.Since(start), nil
}

// measureTextIngest times the path cold starts used before the store:
// parse the text edge list and run the same first BFS.
func measureTextIngest(path string, src graph.VertexID) (time.Duration, error) {
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, edges, err := graph.ReadText(f)
	if err != nil {
		return 0, err
	}
	kickstarter.New(n, edges, algo.BFS{}, src, engine.Options{})
	return time.Since(start), nil
}

// measureWALAppend journals one window's worth of raw updates (fsync per
// Journal call, as the ingest path does per Push) and reports the
// per-window latency and encoded-byte throughput.
func measureWALAppend(s *store.Store, n, window int) (time.Duration, float64, error) {
	us := make([]store.RawUpdate, window)
	for i := range us {
		us[i] = store.RawUpdate{Op: store.RawAdd, Edge: graph.Edge{
			Src: graph.VertexID(i % n), Dst: graph.VertexID((i + 1) % n), W: 1}}
	}
	const rounds = 8
	start := time.Now()
	for r := 0; r < rounds; r++ {
		if err := s.Journal(us); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	// Consume the journaled records so the cold-open measurement below
	// reopens a clean store rather than replaying benchmark traffic.
	if err := s.AppendBatch(nil, nil, us[len(us)-1].Seq); err != nil {
		return 0, 0, err
	}
	perWin := elapsed / rounds
	bytes := float64(rounds*window) * 28
	mbs := bytes / elapsed.Seconds() / (1 << 20)
	return perWin, mbs, nil
}

package bench

import (
	"fmt"
	"runtime"
	"time"

	"commongraph/internal/algo"
	"commongraph/internal/core"
	"commongraph/internal/engine"
)

// AblationSteiner compares the schedule costs (additions streamed) and
// solver runtimes of the three Steiner solvers against the no-sharing
// Direct-Hop schedule, across window widths — the design-choice callout of
// DESIGN.md ("greedy is the paper's Algorithm 1; the interval DP is exact
// on all tested instances").
func AblationSteiner(p Params) (*Table, error) {
	t := &Table{
		ID:    "Ablation A1",
		Title: "Steiner solver comparison: schedule cost (additions) and solver time",
		Header: []string{"Snapshots", "Direct-Hop", "Greedy", "Greedy time",
			"IntervalDP", "DP time"},
	}
	half := p.Batch(75_000) / 2
	maxSnaps := p.Snapshots
	w, err := BuildWorkload("LJ-sim", p, maxSnaps-1, half, half)
	if err != nil {
		return nil, err
	}
	step := maxSnaps / 5
	if step < 1 {
		step = 1
	}
	for snaps := step; snaps <= maxSnaps; snaps += step {
		tg, err := core.BuildTG(core.Window{Store: w.Store, From: 0, To: snaps - 1})
		if err != nil {
			return nil, err
		}
		direct := core.DirectHopSchedule(tg)

		t0 := time.Now()
		greedy := core.SteinerGreedy(tg)
		greedyTime := time.Since(t0)

		t1 := time.Now()
		dp := core.SteinerIntervalDP(tg)
		dpTime := time.Since(t1)

		t.AddRow(fmt.Sprintf("%d", snaps),
			fmt.Sprintf("%d", direct.Cost),
			fmt.Sprintf("%d", greedy.Cost), secs(greedyTime),
			fmt.Sprintf("%d", dp.Cost), secs(dpTime))
	}
	return t, nil
}

// AblationScheduler compares the engine's scheduler policies (§4.3) on the
// Direct-Hop workload: forced synchronous iterations, forced asynchronous
// worklist, and the Auto policy that switches on batch size.
func AblationScheduler(p Params) (*Table, error) {
	t := &Table{
		ID:     "Ablation A2",
		Title:  "Scheduler policy: Direct-Hop time under Sync / Async / Auto (LJ-sim)",
		Header: []string{"Algo", "Sync", "Async", "Auto"},
	}
	half := p.Batch(75_000) / 2
	w, err := BuildWorkload("LJ-sim", p, p.Snapshots-1, half, half)
	if err != nil {
		return nil, err
	}
	rep, err := core.BuildRep(core.Window{Store: w.Store, From: 0, To: p.Snapshots - 1})
	if err != nil {
		return nil, err
	}
	for _, a := range []algo.Algorithm{algo.BFS{}, algo.SSSP{}} {
		row := []string{a.Name()}
		for _, mode := range []engine.Mode{engine.Sync, engine.Async, engine.Auto} {
			res, err := core.DirectHop(rep, core.Config{
				Algo: a, Source: p.src(), Engine: engine.Options{Mode: mode},
			})
			if err != nil {
				return nil, err
			}
			row = append(row, secs(res.Cost.Total()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationRepresentation isolates the mutation-free representation's
// benefit: applying one transition's additions by in-place mutation
// (KickStarter-style) versus by overlay construction, across batch sizes.
func AblationRepresentation(p Params) (*Table, error) {
	t := &Table{
		ID:     "Ablation A3",
		Title:  "Graph update cost: in-place mutation vs overlay build (LJ-sim)",
		Header: []string{"Batch", "Mutate add", "Mutate delete", "Overlay build"},
	}
	for _, pb := range []int{75_000, 150_000, 300_000} {
		b := p.Batch(pb)
		w, err := BuildWorkload("LJ-sim", p, 1, b, b)
		if err != nil {
			return nil, err
		}
		adds := w.Store.Additions(0).Edges()
		dels := w.Store.Deletions(0).Edges()

		mg := newMutableFromWorkload(w)
		t0 := time.Now()
		mg.AddBatch(adds)
		mutAdd := time.Since(t0)
		t1 := time.Now()
		if err := mg.DeleteBatch(dels); err != nil {
			return nil, err
		}
		mutDel := time.Since(t1)

		rep, err := core.BuildRep(core.Window{Store: w.Store, From: 0, To: 1})
		if err != nil {
			return nil, err
		}
		t2 := time.Now()
		_ = rep.SnapshotGraph(1)
		overlay := time.Since(t2)

		t.AddRow(fmt.Sprintf("%d", b), secs(mutAdd), secs(mutDel), secs(overlay))
	}
	return t, nil
}

// AblationScale runs one Table 4 cell (LJ-sim, BFS and SSSP) at growing
// workload scales, showing how the CommonGraph speedups depend on scale:
// the baseline's trimming and mutation costs grow with graph size while
// addition streaming stays near-constant per edge, so the paper's factors
// emerge as the workload approaches the paper's operating point.
func AblationScale(p Params) (*Table, error) {
	t := &Table{
		ID:     "Ablation A4",
		Title:  "Speedup vs workload scale (LJ-sim)",
		Header: []string{"Scale", "Algo", "KickStarter", "Direct-Hop", "DH speedup", "Work-Sharing", "WS speedup"},
	}
	baseFactor := p.SizeFactor
	baseUpdate := p.UpdateScale
	for _, mult := range []float64{0.25, 0.5, 1} {
		sp := p
		sp.SizeFactor = baseFactor * mult
		sp.UpdateScale = baseUpdate * mult
		if sp.SizeFactor < 1 {
			sp.SizeFactor = 1
		}
		half := sp.Batch(75_000) / 2
		w, err := BuildWorkload("LJ-sim", sp, sp.Snapshots-1, half, half)
		if err != nil {
			return nil, err
		}
		for _, a := range []algo.Algorithm{algo.BFS{}, algo.SSSP{}} {
			st, err := runAll(w, 0, sp.Snapshots-1, a, sp.src(), false)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%gx", sp.SizeFactor), a.Name(),
				secs(st.KS), secs(st.DH), speedup(st.KS, st.DH),
				secs(st.WS), speedup(st.KS, st.WS))
		}
	}
	t.Notes = append(t.Notes,
		"factors generally improve with scale (noisy on shared hosts); the paper's 56-core, 70M-1.5B-edge testbed sits far beyond the right edge")
	return t, nil
}

// AblationBaselines lines up all evaluation strategies — including the
// naive Independent re-evaluation of §1 — on one workload, completing the
// paper's comparison story: Independent repeats all common subcomputation,
// KickStarter shares it but pays deletions and mutation, CommonGraph pays
// neither.
func AblationBaselines(p Params) (*Table, error) {
	t := &Table{
		ID:     "Ablation A5",
		Title:  "All strategies on one workload (TTW-sim)",
		Header: []string{"Algo", "Independent", "KickStarter", "Direct-Hop", "Work-Sharing", "DH vs Indep", "DH vs KS"},
	}
	half := p.Batch(75_000) / 2
	w, err := BuildWorkload("TTW-sim", p, p.Snapshots-1, half, half)
	if err != nil {
		return nil, err
	}
	for _, a := range []algo.Algorithm{algo.BFS{}, algo.SSSP{}} {
		st, err := runAll(w, 0, p.Snapshots-1, a, p.src(), false)
		if err != nil {
			return nil, err
		}
		runtime.GC()
		ind, err := core.Independent(core.Window{Store: w.Store, From: 0, To: p.Snapshots - 1},
			core.Config{Algo: a, Source: p.src()})
		if err != nil {
			return nil, err
		}
		indTime := ind.Cost.Total()
		t.AddRow(a.Name(), secs(indTime), secs(st.KS), secs(st.DH), secs(st.WS),
			speedup(indTime, st.DH), speedup(st.KS, st.DH))
	}
	return t, nil
}

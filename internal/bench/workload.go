package bench

import (
	"fmt"
	"sync"

	"commongraph/internal/gen"
	"commongraph/internal/graph"
	"commongraph/internal/snapshot"
)

// Workload is a ready evolving graph for one experiment configuration.
type Workload struct {
	GraphName string
	N         int
	Base      graph.EdgeList
	Store     *snapshot.Store
	Adds      int // additions per transition
	Dels      int // deletions per transition
}

// workloadKey identifies a cached workload.
type workloadKey struct {
	name        string
	sizeFactor  float64
	transitions int
	adds, dels  int
	seed        uint64
}

var (
	wlMu    sync.Mutex
	wlCache = map[workloadKey]*Workload{}
	wlOrder []workloadKey // LRU order, oldest first
	// base graphs are cached separately: they are the expensive part and
	// are shared across update configurations.
	baseCache = map[string]struct {
		n     int
		edges graph.EdgeList
	}{}
)

// maxWorkloads caps how many generated workloads stay resident: the
// figure sweeps create several multi-hundred-MB variants of the largest
// stand-in, and keeping them all alive can exhaust small machines.
const maxWorkloads = 5

// BuildWorkload generates (or returns cached) a stand-in evolving graph
// with the given per-transition update counts.
func BuildWorkload(name string, p Params, transitions, adds, dels int) (*Workload, error) {
	key := workloadKey{name: name, sizeFactor: p.SizeFactor, transitions: transitions, adds: adds, dels: dels, seed: p.Seed}
	wlMu.Lock()
	defer wlMu.Unlock()
	if w, ok := wlCache[key]; ok {
		for i, k := range wlOrder { // refresh LRU position
			if k == key {
				wlOrder = append(append(wlOrder[:i:i], wlOrder[i+1:]...), key)
				break
			}
		}
		return w, nil
	}
	s, ok := gen.ByName(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown stand-in graph %q", name)
	}
	baseKey := fmt.Sprintf("%s@%g", name, p.SizeFactor)
	b, ok := baseCache[baseKey]
	if !ok {
		b.n, b.edges = s.Build(p.SizeFactor)
		baseCache[baseKey] = b
	}
	trs, err := gen.Stream(b.n, b.edges, gen.StreamConfig{
		Transitions: transitions,
		Additions:   adds,
		Deletions:   dels,
		Seed:        p.Seed ^ uint64(transitions)<<32 ^ uint64(adds)<<16 ^ uint64(dels),
	})
	if err != nil {
		return nil, err
	}
	// The generator's streams are consistent by construction, so the
	// trusted bulk constructor skips NewVersion's per-transition
	// materialization (a large saving on multi-million-edge stand-ins).
	addBatches := make([]graph.EdgeList, len(trs))
	delBatches := make([]graph.EdgeList, len(trs))
	for i, tr := range trs {
		addBatches[i] = tr.Additions
		delBatches[i] = tr.Deletions
	}
	store, err := snapshot.NewStoreFromTransitions(b.n, b.edges, addBatches, delBatches)
	if err != nil {
		return nil, err
	}
	w := &Workload{GraphName: name, N: b.n, Base: b.edges, Store: store, Adds: adds, Dels: dels}
	wlCache[key] = w
	wlOrder = append(wlOrder, key)
	for len(wlOrder) > maxWorkloads {
		evict := wlOrder[0]
		wlOrder = wlOrder[1:]
		delete(wlCache, evict)
	}
	return w, nil
}

// ResetCaches drops all cached workloads and base graphs (tests).
func ResetCaches() {
	wlMu.Lock()
	defer wlMu.Unlock()
	wlCache = map[workloadKey]*Workload{}
	wlOrder = nil
	baseCache = map[string]struct {
		n     int
		edges graph.EdgeList
	}{}
}

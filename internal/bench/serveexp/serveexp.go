// Package serveexp is the cgserve query-service experiment: aggregate
// throughput and tail latency of concurrent overlapping-window queries
// through the full HTTP stack, with the cross-query sharing layer on vs
// off, plus the result cache's hit rate on a repeated batch.
//
// It lives outside internal/bench because it exercises the public
// commongraph API, which bench cannot import (the root package's own
// tests import bench; the import would cycle through the test binary).
// It registers itself at init — binaries that want the experiment
// (cmd/cgbench) blank-import this package.
package serveexp

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"commongraph"
	apiv1 "commongraph/api/v1"
	"commongraph/internal/bench"
	"commongraph/internal/serve"
)

func init() {
	bench.Register(bench.Experiment{
		Name:  "serve",
		Paper: "Query service scaling (cgserve)",
		Run:   Serve,
	})
}

// snapshots is the served history length; windows drawn below all overlap.
const snapshots = 10

// expWorkers bounds the server's worker pool for the throughput rows. A
// loaded multi-tenant service has far more concurrent queries than cores;
// with an unconstrained pool the redundant common-graph solves of the
// no-sharing arm simply run on idle cores and the work saved by sharing
// never shows up as wall-clock. Two workers make the compute contention
// real, so the throughput ratio reflects the work actually eliminated.
const expWorkers = 2

// Serve runs the query-service experiment. For each concurrency level C
// it fires C requests with distinct overlapping windows at a fresh server
// (result cache off, so the sharing layer does the work) and measures
// aggregate throughput and p50/p99 per-request latency, with cross-query
// sharing disabled and enabled. A final pass with the result cache on
// replays one batch to measure the hit rate.
func Serve(p bench.Params) (*bench.Table, error) {
	g, err := buildGraph(p)
	if err != nil {
		return nil, err
	}
	t := &bench.Table{
		ID:    "Serve",
		Title: "cgserve: concurrent overlapping-window queries through POST /v1/run",
		Header: []string{"Conc", "Sharing", "Throughput q/s", "p50", "p99",
			"ICG solves", "ICG reused", "Shared ratio"},
	}
	type cell struct{ qps float64 }
	byKey := map[string]cell{}
	for _, sharing := range []bool{false, true} {
		for _, conc := range []int{1, 8, 64} {
			m, err := measure(g, conc, sharing)
			if err != nil {
				return nil, err
			}
			byKey[fmt.Sprintf("%d/%v", conc, sharing)] = cell{qps: m.qps}
			label := "off"
			if sharing {
				label = "on"
			}
			t.AddRow(fmt.Sprintf("%d", conc), label,
				fmt.Sprintf("%.1f", m.qps), m.p50.String(), m.p99.String(),
				fmt.Sprintf("%d", m.solves), fmt.Sprintf("%d", m.reused),
				fmt.Sprintf("%.2f", m.sharedRatio))
		}
	}
	speedup := byKey["8/true"].qps / byKey["8/false"].qps
	t.Notes = append(t.Notes,
		fmt.Sprintf("8-way overlapping-window aggregate throughput with sharing: %.2fx vs sharing off (acceptance floor 2x)", speedup),
		fmt.Sprintf("requests draw from 4 pairwise-overlapping windows over %d snapshots; result cache disabled for the sharing rows; worker pool fixed at %d so requests contend for compute as in a loaded service", snapshots, expWorkers),
	)

	hits, total, err := measureCacheHitRate(g)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("result cache: %d/%d hits on an identical repeated batch (%.0f%%)", hits, total, 100*float64(hits)/float64(total)))
	return t, nil
}

// buildGraph synthesizes the served evolving graph: a seeded random
// digraph scaled by the bench params, with per-snapshot addition churn.
func buildGraph(p bench.Params) (*commongraph.EvolvingGraph, error) {
	n := int(20_000 * p.SizeFactor / 4)
	if n < 500 {
		n = 500
	}
	deg := 10
	churn := p.Batch(2_500)
	rng := rand.New(rand.NewSource(int64(p.Seed) ^ 0x5e7e))
	seen := make(map[uint64]bool, n*deg)
	edge := func() commongraph.Edge {
		for {
			src, dst := rng.Intn(n), rng.Intn(n)
			key := uint64(src)<<32 | uint64(dst)
			if src == dst || seen[key] {
				continue
			}
			seen[key] = true
			return commongraph.Edge{
				Src: commongraph.VertexID(src),
				Dst: commongraph.VertexID(dst),
				W:   commongraph.Weight(1 + (src+3*dst)%9),
			}
		}
	}
	base := make([]commongraph.Edge, n*deg)
	for i := range base {
		base[i] = edge()
	}
	g := commongraph.New(n, base)
	for s := 1; s < snapshots; s++ {
		adds := make([]commongraph.Edge, churn)
		for i := range adds {
			adds[i] = edge()
		}
		if _, err := g.ApplyUpdates(adds, nil); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// window i of a batch: one of four overlapping windows (every From <
// snapshots/2 <= every To). Requests repeat windows — the realistic
// multi-tenant profile, where popular windows recur — so the sharing
// layer's rep/schedule memoization works alongside the ICG sharing.
func window(i int) apiv1.Window {
	i %= 4
	return apiv1.Window{From: i, To: snapshots - 1 - (i % 3)}
}

type measurement struct {
	qps         float64
	p50, p99    time.Duration
	solves      uint64
	reused      uint64
	sharedRatio float64
}

// measure fires conc concurrent requests at a fresh server and reports
// aggregate throughput, latency percentiles, and the sharing stats.
func measure(g *commongraph.EvolvingGraph, conc int, sharing bool) (measurement, error) {
	srv := serve.New(serve.GraphSource(g), serve.Config{
		Workers:        expWorkers,
		QueueDepth:     2*conc + 8, // never shed: we are measuring work, not admission
		CacheEntries:   -1,
		DisableSharing: !sharing,
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client, err := apiv1.Dial(hs.URL)
	if err != nil {
		return measurement{}, err
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats = make([]time.Duration, 0, conc)
		errs []error
	)
	start := time.Now()
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			win := window(i)
			t0 := time.Now()
			//cgvet:ignore ctxflow -- bench lifecycle root: Experiment.Run carries no ctx
			_, err := client.Run(context.Background(), &apiv1.RunRequest{
				Algorithm: "SSSP",
				Source:    0,
				Window:    &win,
				Strategy:  "direct-hop",
			})
			d := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			lats = append(lats, d)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	if len(errs) > 0 {
		return measurement{}, fmt.Errorf("serveexp: %d/%d requests failed, first: %w", len(errs), conc, errs[0])
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	m := measurement{
		qps: float64(conc) / wall.Seconds(),
		p50: lats[len(lats)/2].Round(time.Microsecond),
		p99: lats[(len(lats)*99)/100].Round(time.Microsecond),
	}
	if pc := srv.PlanCache(); pc != nil {
		st := pc.Stats()
		m.solves = st.Solves
		m.reused = st.Derives + st.Shared
		if total := st.Solves + m.reused; total > 0 {
			m.sharedRatio = float64(m.reused) / float64(total)
		}
	}
	return m, nil
}

// measureCacheHitRate replays one 8-request batch against a cache-enabled
// server and counts how many of the replayed responses were served from
// the result cache.
func measureCacheHitRate(g *commongraph.EvolvingGraph) (hits, total int, err error) {
	srv := serve.New(serve.GraphSource(g), serve.Config{Workers: runtime.GOMAXPROCS(0), QueueDepth: 32})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client, err := apiv1.Dial(hs.URL)
	if err != nil {
		return 0, 0, err
	}
	const batch = 8
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < batch; i++ {
			win := window(i)
			//cgvet:ignore ctxflow -- bench lifecycle root: Experiment.Run carries no ctx
			res, err := client.Run(context.Background(), &apiv1.RunRequest{
				Algorithm: "BFS", Source: 1, Window: &win,
			})
			if err != nil {
				return 0, 0, err
			}
			if pass == 1 {
				total++
				if res.Cached {
					hits++
				}
			}
		}
	}
	return hits, total, nil
}

package serveexp

import (
	"strings"
	"testing"

	"commongraph/internal/bench"
)

// TestServeExperimentTiny runs the whole experiment at the miniature
// scale: it must produce the 6 concurrency x sharing rows, the speedup
// note, and a fully-hit replayed cache batch. No timing thresholds here —
// wall-clock assertions belong in BENCH_PR9.json, not CI.
func TestServeExperimentTiny(t *testing.T) {
	tab, err := Serve(bench.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 concurrency levels x sharing on/off)", len(tab.Rows))
	}
	var sawSpeedup, sawCache bool
	for _, n := range tab.Notes {
		if strings.Contains(n, "aggregate throughput with sharing") {
			sawSpeedup = true
		}
		if strings.Contains(n, "8/8 hits") {
			sawCache = true
		}
	}
	if !sawSpeedup {
		t.Errorf("speedup note missing: %v", tab.Notes)
	}
	if !sawCache {
		t.Errorf("replayed batch was not fully cache-hit: %v", tab.Notes)
	}
	if _, ok := bench.ByName("serve"); !ok {
		t.Error("serve experiment not registered")
	}
}

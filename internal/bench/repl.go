package bench

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"commongraph/internal/algo"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
	"commongraph/internal/kickstarter"
	"commongraph/internal/repl"
	"commongraph/internal/store"
)

// Replication measures the WAL-shipping pipeline end to end over an
// in-process pipe: how long a cold follower takes to bootstrap from a
// shipped snapshot plus history replay, the commit-to-applied latency of
// live transitions while the follower concurrently serves BFS reads
// (the mixed read/write profile of a read replica), and what those
// follower reads cost relative to the same read on the primary.
func Replication(p Params) (*Table, error) {
	t := &Table{
		ID:    "Replication",
		Title: "cgrepl WAL shipping: bootstrap, live ship latency, reads under replication",
		Header: []string{"Graph", "Edges", "Bootstrap", "Ship/win p50", "Ship/win max",
			"FollowerBFS", "PrimaryBFS", "Reads during ingest"},
	}
	const history = 3 // transitions committed before the follower joins
	const live = 3    // transitions shipped while it serves reads
	b := p.Batch(50_000)
	for _, name := range []string{"LJ-sim", "DL-sim"} {
		w, err := BuildWorkload(name, p, history+live, b, b/4)
		if err != nil {
			return nil, err
		}
		row, err := measureReplication(w, p.src(), history, live)
		if err != nil {
			return nil, fmt.Errorf("bench: replication %s: %w", name, err)
		}
		t.AddRow(append([]string{name, fmt.Sprintf("%d", len(w.Base))}, row...)...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d history transitions replayed at bootstrap, %d shipped live, +%d/-%d edges each; transport is an in-process net.Pipe", history, live, b, b/4),
		"Ship/win = primary AppendBatch return to follower durably-applied; FollowerBFS runs concurrently with the live shipping",
	)
	return t, nil
}

func measureReplication(w *Workload, src graph.VertexID, history, live int) ([]string, error) {
	dir, err := os.MkdirTemp("", "cgbench-repl-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Primary: base plus the pre-join history.
	ps, err := store.Create(filepath.Join(dir, "primary"), w.N, w.Base)
	if err != nil {
		return nil, err
	}
	defer ps.Close()
	for tr := 0; tr < history; tr++ {
		if err := ps.AppendBatch(w.Store.Additions(tr).Edges(), w.Store.Deletions(tr).Edges(), 0); err != nil {
			return nil, err
		}
	}
	prim := repl.NewPrimary(ps, 2*time.Millisecond)
	defer prim.Close()

	applied := make(chan int, history+live+1)
	f, err := repl.OpenFollower(filepath.Join(dir, "replica"), repl.Options{
		Dial: func(ctx context.Context) (net.Conn, error) {
			c, s := net.Pipe()
			prim.Attach(s)
			return c, nil
		},
		Apply: func(transition int, adds, dels graph.EdgeList, walSeq uint64) error {
			applied <- transition
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background()) //cgvet:ignore ctxflow -- benchmark harness root; the deferred cancel bounds the follower loop to this measurement
	defer cancel()
	//cgvet:ignore goleak -- catch-up loop exits when the deferred cancel fires; Follower.Close severs the conn first
	go f.Run(ctx) //nolint:errcheck // progress observed via applied; cancel ends it

	waitApplied := func(upTo int) error {
		deadline := time.After(2 * time.Minute)
		for {
			select {
			case tr := <-applied:
				if tr >= upTo {
					return nil
				}
			case <-deadline:
				return fmt.Errorf("follower never reached transition %d", upTo)
			}
		}
	}

	// Bootstrap: snapshot ship plus history replay, to durably applied.
	start := time.Now()
	if err := waitApplied(history - 1); err != nil {
		return nil, err
	}
	bootstrap := time.Since(start)

	// Mixed phase: a reader hammers BFS on the follower's latest
	// materialized version while live transitions ship.
	var reads, stopReads atomic.Int64
	var followerBFS atomic.Int64
	readerDone := make(chan error, 1)
	go func() {
		for stopReads.Load() == 0 {
			d, err := followerRead(f, src)
			if err != nil {
				readerDone <- err
				return
			}
			followerBFS.Store(int64(d))
			reads.Add(1)
		}
		readerDone <- nil
	}()

	lats := make([]time.Duration, 0, live)
	for tr := history; tr < history+live; tr++ {
		t0 := time.Now()
		if err := ps.AppendBatch(w.Store.Additions(tr).Edges(), w.Store.Deletions(tr).Edges(), 0); err != nil {
			return nil, err
		}
		if err := waitApplied(tr); err != nil {
			return nil, err
		}
		lats = append(lats, time.Since(t0))
	}
	stopReads.Store(1)
	if err := <-readerDone; err != nil {
		return nil, err
	}
	if reads.Load() == 0 {
		// The live phase outran the first read; take one clean sample.
		d, err := followerRead(f, src)
		if err != nil {
			return nil, err
		}
		followerBFS.Store(int64(d))
		reads.Add(1)
	}

	primaryBFS, err := storeRead(ps, src)
	if err != nil {
		return nil, err
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return []string{
		secs(bootstrap),
		secs(lats[len(lats)/2]),
		secs(lats[len(lats)-1]),
		secs(time.Duration(followerBFS.Load())),
		secs(primaryBFS),
		fmt.Sprintf("%d", reads.Load()),
	}, nil
}

// followerRead times one BFS over the follower's latest durable version.
func followerRead(f *repl.Follower, src graph.VertexID) (time.Duration, error) {
	st := f.Store()
	if st == nil {
		return 0, fmt.Errorf("follower has no store yet")
	}
	return storeRead(st, src)
}

// storeRead materializes the store's newest snapshot version and runs a
// BFS from src — the read path of a serving replica.
func storeRead(st *store.Store, src graph.VertexID) (time.Duration, error) {
	start := time.Now()
	snap, err := st.Snapshot()
	if err != nil {
		return 0, err
	}
	edges, err := snap.GetVersion(snap.NumVersions() - 1)
	if err != nil {
		return 0, err
	}
	kickstarter.New(st.NumVertices(), edges, algo.BFS{}, src, engine.Options{})
	return time.Since(start), nil
}

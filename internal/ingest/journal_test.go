package ingest

import (
	"errors"
	"testing"

	"commongraph/internal/graph"
)

// memJournal is an in-memory ingest.Journal assigning consecutive seqs.
type memJournal struct {
	next    uint64
	records []Update
	fail    error
}

func (j *memJournal) Append(us []Update) (uint64, error) {
	if j.fail != nil {
		return 0, j.fail
	}
	j.records = append(j.records, us...)
	j.next += uint64(len(us))
	return j.next, nil
}

// window records one WindowSink invocation.
type window struct {
	adds, dels graph.EdgeList
	lastSeq    uint64
}

func collector(out *[]window) WindowSink {
	return func(adds, dels graph.EdgeList, lastSeq uint64) error {
		*out = append(*out, window{adds, dels, lastSeq})
		return nil
	}
}

// TestJournaledBatcherTable drives window shapes through a journaled
// batcher and checks the emitted batches and their journal high-water
// sequences — in particular that a fully cancelling window still reaches
// the sink (with empty batches) so its WAL records get consumed.
func TestJournaledBatcherTable(t *testing.T) {
	add := func(s, d uint32) Update { return Update{Add, e(s, d, 1)} }
	del := func(s, d uint32) Update { return Update{Delete, e(s, d, 1)} }
	cases := []struct {
		name    string
		batch   int
		updates []Update
		flush   bool
		want    []window // expected adds/dels lengths via lens below
		lens    [][3]int // per window: len(adds), len(dels), lastSeq
	}{
		{
			name:  "two full windows",
			batch: 2,
			updates: []Update{
				add(0, 1), add(1, 2),
				add(2, 3), add(3, 4),
			},
			lens: [][3]int{{2, 0, 2}, {2, 0, 4}},
		},
		{
			name:  "net zero window still commits its sequence",
			batch: 2,
			updates: []Update{
				add(0, 1), del(0, 1), // cancels entirely
				add(1, 2), add(2, 3),
			},
			lens: [][3]int{{0, 0, 2}, {2, 0, 4}},
		},
		{
			name:  "add then delete across flush boundary",
			batch: 4,
			updates: []Update{
				add(0, 1), add(1, 2), del(1, 2),
			},
			flush: true,
			lens:  [][3]int{{1, 0, 3}},
		},
		{
			name:  "short tail flushed",
			batch: 3,
			updates: []Update{
				add(0, 1), add(1, 2), add(2, 3),
				add(3, 4),
			},
			flush: true,
			lens:  [][3]int{{3, 0, 3}, {1, 0, 4}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got []window
			j := &memJournal{}
			b, err := NewJournaledBatcher(collector(&got), tc.batch, j)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range tc.updates {
				if err := b.Push(u); err != nil {
					t.Fatal(err)
				}
			}
			if tc.flush {
				if err := b.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			if len(got) != len(tc.lens) {
				t.Fatalf("%d windows emitted, want %d", len(got), len(tc.lens))
			}
			for i, w := range got {
				want := tc.lens[i]
				if len(w.adds) != want[0] || len(w.dels) != want[1] || w.lastSeq != uint64(want[2]) {
					t.Fatalf("window %d: adds=%d dels=%d lastSeq=%d, want %v",
						i, len(w.adds), len(w.dels), w.lastSeq, want)
				}
			}
			if len(j.records) != len(tc.updates) {
				t.Fatalf("journal holds %d records, want every pushed update (%d)", len(j.records), len(tc.updates))
			}
		})
	}
}

func TestJournalFailureRejectsPush(t *testing.T) {
	var got []window
	boom := errors.New("disk full")
	j := &memJournal{fail: boom}
	b, err := NewJournaledBatcher(collector(&got), 2, j)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Push(Update{Add, e(0, 1, 1)}); !errors.Is(err, boom) {
		t.Fatalf("push with failing journal: %v", err)
	}
	if b.Pending() != 0 {
		t.Fatal("unjournaled update entered the window")
	}
	// Once the journal recovers, the stream continues with nothing lost
	// or duplicated.
	j.fail = nil
	if err := b.Push(Update{Add, e(0, 1, 1)}, Update{Add, e(1, 2, 1)}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].lastSeq != 2 {
		t.Fatalf("windows after recovery: %+v", got)
	}
}

func TestSeedReplaysWithoutRejournaling(t *testing.T) {
	var got []window
	j := &memJournal{next: 10} // journal already holds seqs 1..10
	b, err := NewJournaledBatcher(collector(&got), 4, j)
	if err != nil {
		t.Fatal(err)
	}
	// Recovered tail: seqs 9 and 10 were journaled but never committed.
	if err := b.Seed(9, Update{Add, e(0, 1, 1)}, Update{Add, e(1, 2, 1)}); err != nil {
		t.Fatal(err)
	}
	if len(j.records) != 0 {
		t.Fatal("Seed re-journaled recovered updates")
	}
	if b.Pending() != 2 {
		t.Fatalf("pending=%d after short seed", b.Pending())
	}
	// Two live pushes complete the window; its lastSeq spans the seam.
	if err := b.Push(Update{Add, e(2, 3, 1)}, Update{Add, e(3, 4, 1)}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].lastSeq != 12 || len(got[0].adds) != 4 {
		t.Fatalf("window across recovery seam: %+v", got)
	}

	// Seeding after accepting updates is rejected: two histories.
	if err := b.Push(Update{Add, e(4, 5, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Seed(20, Update{Add, e(5, 6, 1)}); err == nil {
		t.Fatal("Seed into a non-empty batcher succeeded")
	}
}

// TestPendingWindowExposesRetainedTail: PendingWindow must hand back
// exactly the journaled-but-unemitted window (and its first sequence) so
// an owner can restore replay state after a failed Seed — including after
// a sink failure, when the batcher retains the failed window.
func TestPendingWindowExposesRetainedTail(t *testing.T) {
	sinkErr := errors.New("sink down")
	fail := true
	sink := func(adds, dels graph.EdgeList, lastSeq uint64) error {
		if fail {
			return sinkErr
		}
		return nil
	}
	b, err := NewJournaledBatcher(sink, 2, &memJournal{})
	if err != nil {
		t.Fatal(err)
	}
	if seq, us := b.PendingWindow(); seq != 0 || us != nil {
		t.Fatalf("empty batcher PendingWindow = (%d, %v)", seq, us)
	}
	if err := b.Push(Update{Add, e(0, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if seq, us := b.PendingWindow(); seq != 1 || len(us) != 1 {
		t.Fatalf("PendingWindow = (%d, %d updates), want (1, 1)", seq, len(us))
	}
	// The second push fills the window; the sink failure retains it.
	if err := b.Push(Update{Add, e(1, 2, 1)}); !errors.Is(err, sinkErr) {
		t.Fatalf("push with failing sink = %v", err)
	}
	seq, us := b.PendingWindow()
	if seq != 1 || len(us) != 2 {
		t.Fatalf("retained window = (%d, %d updates), want (1, 2)", seq, len(us))
	}
	// A fresh batcher seeded with the captured window replays it.
	fail = false
	var got []window
	b2, err := NewJournaledBatcher(collector(&got), 2, &memJournal{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Seed(seq, us...); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].lastSeq != 2 || len(got[0].adds) != 2 {
		t.Fatalf("replayed window = %+v", got)
	}
}

func TestSeedRequiresJournaledBatcher(t *testing.T) {
	b, err := NewBatcher(func(_, _ graph.EdgeList) error { return nil }, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Seed(1, Update{Add, e(0, 1, 1)}); err == nil {
		t.Fatal("Seed on an unjournaled batcher succeeded")
	}
}

func TestCloseFlushesTailAndSealsBatcher(t *testing.T) {
	var got []window
	b, err := NewJournaledBatcher(collector(&got), 4, &memJournal{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Push(Update{Add, e(0, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].lastSeq != 1 {
		t.Fatalf("close did not flush the tail: %+v", got)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := b.Push(Update{Add, e(1, 2, 1)}); err == nil {
		t.Fatal("push after close succeeded")
	}
	if err := b.Seed(5, Update{Add, e(1, 2, 1)}); err == nil {
		t.Fatal("seed after close succeeded")
	}
}

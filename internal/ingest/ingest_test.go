package ingest

import (
	"testing"

	"commongraph/internal/graph"
)

func e(s, d uint32, w int32) graph.Edge {
	return graph.Edge{Src: graph.VertexID(s), Dst: graph.VertexID(d), W: graph.Weight(w)}
}

func TestCompactNetEffects(t *testing.T) {
	updates := []Update{
		{Add, e(0, 1, 5)},    // plain add
		{Delete, e(2, 3, 7)}, // plain delete
		{Add, e(4, 5, 1)},    // add ...
		{Delete, e(4, 5, 1)}, // ... then delete: nets to nothing
		{Delete, e(6, 7, 2)}, // delete ...
		{Add, e(6, 7, 2)},    // ... then re-add: nets to nothing
		{Add, e(8, 9, 3)},    // add, delete, add again: net add
		{Delete, e(8, 9, 3)},
		{Add, e(8, 9, 3)},
	}
	adds, dels, err := Compact(updates)
	if err != nil {
		t.Fatal(err)
	}
	wantAdds := graph.EdgeList{e(0, 1, 5), e(8, 9, 3)}
	wantDels := graph.EdgeList{e(2, 3, 7)}
	if !graph.Equal(adds, wantAdds) {
		t.Fatalf("adds = %v", adds)
	}
	if !graph.Equal(dels, wantDels) {
		t.Fatalf("dels = %v", dels)
	}
}

func TestCompactRejectsRepeatedOp(t *testing.T) {
	if _, _, err := Compact([]Update{{Add, e(0, 1, 1)}, {Add, e(0, 1, 1)}}); err == nil {
		t.Fatal("double add accepted")
	}
	if _, _, err := Compact([]Update{{Delete, e(0, 1, 1)}, {Delete, e(0, 1, 1)}}); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestCompactRejectsWeightChange(t *testing.T) {
	updates := []Update{
		{Delete, e(0, 1, 5)},
		{Add, e(0, 1, 9)}, // re-added with a different weight
	}
	if _, _, err := Compact(updates); err == nil {
		t.Fatal("weight change accepted")
	}
}

func TestCompactEmpty(t *testing.T) {
	adds, dels, err := Compact(nil)
	if err != nil || len(adds) != 0 || len(dels) != 0 {
		t.Fatalf("adds=%v dels=%v err=%v", adds, dels, err)
	}
}

func TestOpString(t *testing.T) {
	if Add.String() != "add" || Delete.String() != "delete" {
		t.Fatal("op names wrong")
	}
}

// collectSink records emitted batches.
type collectSink struct {
	adds []graph.EdgeList
	dels []graph.EdgeList
}

func (c *collectSink) sink(a, d graph.EdgeList) error {
	c.adds = append(c.adds, a)
	c.dels = append(c.dels, d)
	return nil
}

func TestBatcherWindows(t *testing.T) {
	var c collectSink
	b, err := NewBatcher(c.sink, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Push(
		Update{Add, e(0, 1, 1)},
		Update{Add, e(1, 2, 1)},
	); err != nil {
		t.Fatal(err)
	}
	if len(c.adds) != 0 || b.Pending() != 2 {
		t.Fatalf("premature emission: %d batches, %d pending", len(c.adds), b.Pending())
	}
	if err := b.Push(
		Update{Delete, e(5, 6, 2)}, // completes window 1
		Update{Add, e(7, 8, 3)},    // starts window 2
	); err != nil {
		t.Fatal(err)
	}
	if len(c.adds) != 1 || b.Pending() != 1 {
		t.Fatalf("after window 1: %d batches, %d pending", len(c.adds), b.Pending())
	}
	if len(c.adds[0]) != 2 || len(c.dels[0]) != 1 {
		t.Fatalf("window 1 batches: +%d -%d", len(c.adds[0]), len(c.dels[0]))
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(c.adds) != 2 || b.Pending() != 0 {
		t.Fatalf("after flush: %d batches, %d pending", len(c.adds), b.Pending())
	}
	// Flushing again is a no-op.
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(c.adds) != 2 {
		t.Fatal("double flush emitted")
	}
}

func TestBatcherSkipsSelfCancellingWindow(t *testing.T) {
	var c collectSink
	b, _ := NewBatcher(c.sink, 2)
	if err := b.Push(
		Update{Add, e(0, 1, 1)},
		Update{Delete, e(0, 1, 1)},
	); err != nil {
		t.Fatal(err)
	}
	if len(c.adds) != 0 {
		t.Fatal("self-cancelling window emitted a batch")
	}
}

func TestBatcherValidation(t *testing.T) {
	if _, err := NewBatcher(nil, 3); err == nil {
		t.Fatal("nil sink accepted")
	}
	var c collectSink
	if _, err := NewBatcher(c.sink, 0); err == nil {
		t.Fatal("zero batch size accepted")
	}
	b, _ := NewBatcher(c.sink, 2)
	if err := b.Push(Update{Add, e(0, 1, 1)}, Update{Add, e(0, 1, 1)}); err == nil {
		t.Fatal("invalid window accepted")
	}
}

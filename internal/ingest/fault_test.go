package ingest

import (
	"errors"
	"strings"
	"testing"

	"commongraph/internal/faults"
	"commongraph/internal/graph"
)

// TestWindowCloseFaultRetainsPending drives the ingest.window-close
// injection point: a failed hand-off must surface a wrapped,
// point-identifying error and leave the pending window intact so the
// caller can retry.
func TestWindowCloseFaultRetainsPending(t *testing.T) {
	var emitted int
	sink := func(adds, dels graph.EdgeList) error {
		emitted++
		return nil
	}
	b, err := NewBatcher(sink, 2)
	if err != nil {
		t.Fatal(err)
	}

	disarm := faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.IngestWindowClose}}})
	err = b.Push(Update{Add, e(0, 1, 1)}, Update{Add, e(2, 3, 1)})
	if err == nil {
		t.Fatal("armed window close produced no error")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error does not wrap faults.ErrInjected: %v", err)
	}
	if !strings.Contains(err.Error(), string(faults.IngestWindowClose)) {
		t.Fatalf("error does not identify its point: %v", err)
	}
	if emitted != 0 {
		t.Fatal("failed close still reached the sink")
	}
	if b.Pending() != 2 {
		t.Fatalf("failed close lost the pending window: %d updates left", b.Pending())
	}

	// A short tail behaves the same on the Flush path.
	if err := b.Flush(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("armed flush: %v", err)
	}
	if b.Pending() != 2 {
		t.Fatalf("failed flush lost the pending window: %d updates left", b.Pending())
	}
	disarm()

	// Once the fault clears, the retained window flushes cleanly.
	if err := b.Flush(); err != nil {
		t.Fatalf("flush after disarm: %v", err)
	}
	if emitted != 1 || b.Pending() != 0 {
		t.Fatalf("retry did not drain the window: emitted=%d pending=%d", emitted, b.Pending())
	}
}

// Package ingest turns a raw interleaved stream of single-edge updates
// into the net per-snapshot batches the evolving-graph store consumes —
// the front half of §4.1's "when new snapshots are to be created by a
// stream of batches". Streams arrive as they happen (an edge may be added,
// deleted, and re-added within one batching window); the store wants one
// canonical Δ+/Δ− pair per transition.
package ingest

import (
	"fmt"

	"commongraph/internal/faults"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
)

// Op is an update's direction.
type Op uint8

// Update operations.
const (
	Add Op = iota
	Delete
)

// String names the op.
func (o Op) String() string {
	if o == Add {
		return "add"
	}
	return "delete"
}

// Update is one raw stream event.
type Update struct {
	Op   Op
	Edge graph.Edge
}

// Compact folds an ordered sequence of updates into its net effect
// relative to the sequence's start: an edge added and deleted within the
// window nets to nothing; deleted and re-added likewise (the edge simply
// persists); only edges whose final state differs from their initial
// state appear in the output batches.
//
// Per edge, operations must alternate (an Add of a present edge or a
// Delete of an absent one — judged within the window — is an error), and
// re-added edges must keep their weight, since edge identity is by
// endpoints throughout the system.
func Compact(updates []Update) (additions, deletions graph.EdgeList, err error) {
	type state struct {
		first   Op
		last    Op
		weight  graph.Weight
		reAddW  graph.Weight
		touched bool
	}
	states := map[graph.EdgeKey]*state{}
	order := make([]graph.EdgeKey, 0, len(updates))
	for i, u := range updates {
		k := u.Edge.Key()
		st, ok := states[k]
		if !ok {
			st = &state{first: u.Op, last: u.Op, weight: u.Edge.W}
			states[k] = st
			order = append(order, k)
			continue
		}
		if st.last == u.Op {
			return nil, nil, fmt.Errorf("ingest: update %d: %s of edge %v repeats the previous operation", i, u.Op, u.Edge)
		}
		if u.Op == Add && u.Edge.W != st.weight {
			return nil, nil, fmt.Errorf("ingest: update %d: edge %v re-added with weight %d (was %d); edge identity is by endpoints",
				i, u.Edge, u.Edge.W, st.weight)
		}
		st.last = u.Op
	}
	for _, k := range order {
		st := states[k]
		if st.first != st.last {
			continue // returned to the initial state: nets to nothing
		}
		e := graph.Edge{Src: k.Src(), Dst: k.Dst(), W: st.weight}
		if st.last == Add {
			additions = append(additions, e)
		} else {
			deletions = append(deletions, e)
		}
	}
	return additions.Canonicalize(), deletions.Canonicalize(), nil
}

// Sink receives the net batches Batcher emits; the snapshot store's
// NewVersion has exactly this shape.
type Sink func(additions, deletions graph.EdgeList) error

// WindowSink is the journaled batcher's hand-off: the window's net
// batches plus the journal sequence number of the window's last raw
// update, so the sink can commit the batch and the journal's high-water
// mark atomically. Unlike Sink it fires even for a window that cancelled
// itself out entirely — the commit pointer must advance past the
// cancelled records or recovery would replay them forever.
type WindowSink func(additions, deletions graph.EdgeList, lastSeq uint64) error

// Journal is the write-ahead hook of a durable batcher: Append must make
// the raw updates replayable (fsynced) before they are accepted into the
// in-memory window, assigning consecutive sequence numbers and returning
// the last one. A crash after Append and before the window closes
// replays exactly the pending window (Batcher.Seed).
type Journal interface {
	Append(updates []Update) (lastSeq uint64, err error)
}

// Batcher accumulates raw updates and emits one net batch to its sink
// every batchSize raw updates (plus whatever remains on Flush). Streaming
// systems batch updates to amortize incremental computation (§2.1); the
// window size trades staleness for efficiency.
type Batcher struct {
	sink      Sink
	wsink     WindowSink
	journal   Journal
	batchSize int
	pending   []Update
	// baseSeq is the journal sequence of pending[0]. Pending sequences
	// are consecutive: only this batcher appends to its journal, and the
	// journal numbers records monotonically.
	baseSeq uint64
	closed  bool
}

// NewBatcher creates a batcher emitting to sink every batchSize updates.
func NewBatcher(sink Sink, batchSize int) (*Batcher, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("ingest: batch size must be positive, got %d", batchSize)
	}
	if sink == nil {
		return nil, fmt.Errorf("ingest: nil sink")
	}
	return &Batcher{sink: sink, batchSize: batchSize}, nil
}

// NewJournaledBatcher creates a batcher that journals every pushed update
// through j before accepting it, and hands closed windows to sink along
// with their journal high-water sequence.
func NewJournaledBatcher(sink WindowSink, batchSize int, j Journal) (*Batcher, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("ingest: batch size must be positive, got %d", batchSize)
	}
	if sink == nil {
		return nil, fmt.Errorf("ingest: nil sink")
	}
	if j == nil {
		return nil, fmt.Errorf("ingest: nil journal")
	}
	return &Batcher{wsink: sink, journal: j, batchSize: batchSize}, nil
}

// Push appends raw updates, emitting batches as the window fills. On a
// journaled batcher the updates are journaled (fsynced) first; a journal
// failure rejects the whole push — nothing unacknowledged enters the
// window.
func (b *Batcher) Push(updates ...Update) error {
	if b.closed {
		return fmt.Errorf("ingest: batcher is closed")
	}
	if len(updates) == 0 {
		return nil
	}
	if b.journal != nil {
		lastSeq, err := b.journal.Append(updates)
		if err != nil {
			return fmt.Errorf("ingest: journal append: %w", err)
		}
		if len(b.pending) == 0 {
			b.baseSeq = lastSeq - uint64(len(updates)) + 1
		}
	}
	b.pending = append(b.pending, updates...)
	return b.drain()
}

// Seed replays recovered updates — already journaled, with firstSeq the
// sequence of updates[0] — through the normal window logic without
// re-journaling them. Full windows re-close (regenerating their batches
// deterministically); the tail stays pending, exactly the state the
// batcher held when the journal was written. Seeding a batcher that has
// already accepted updates would interleave two histories and is
// rejected.
func (b *Batcher) Seed(firstSeq uint64, updates ...Update) error {
	if b.closed {
		return fmt.Errorf("ingest: batcher is closed")
	}
	if b.journal == nil {
		return fmt.Errorf("ingest: Seed requires a journaled batcher")
	}
	if len(b.pending) > 0 {
		return fmt.Errorf("ingest: Seed into a batcher with %d pending updates", len(b.pending))
	}
	if len(updates) == 0 {
		return nil
	}
	b.baseSeq = firstSeq
	b.pending = append(b.pending, updates...)
	return b.drain()
}

// drain closes full windows off the front of the pending queue.
func (b *Batcher) drain() error {
	for len(b.pending) >= b.batchSize {
		if err := b.emit(b.pending[:b.batchSize]); err != nil {
			return err
		}
		b.pending = b.pending[b.batchSize:]
		b.baseSeq += uint64(b.batchSize)
	}
	return nil
}

// Flush emits any remaining updates as a final, possibly short batch. On
// error the pending window is retained, so a transient sink failure can be
// retried with another Flush instead of silently losing the tail.
func (b *Batcher) Flush() error {
	if len(b.pending) == 0 {
		return nil
	}
	n := len(b.pending)
	if err := b.emit(b.pending); err != nil {
		return err
	}
	b.pending = nil
	b.baseSeq += uint64(n)
	return nil
}

// Close flushes the tail window and permanently closes the batcher:
// further Push/Seed/Flush calls fail. A clean Close leaves nothing
// pending, so a subsequent reopen of a journaled store replays nothing —
// the end-of-stream contract distinguishing a finished stream from a
// crashed one.
func (b *Batcher) Close() error {
	if b.closed {
		return nil
	}
	if err := b.Flush(); err != nil {
		return err
	}
	b.closed = true
	return nil
}

// Pending reports how many raw updates await the next batch boundary.
func (b *Batcher) Pending() int { return len(b.pending) }

// PendingWindow returns the journal sequence of the first pending update
// and a copy of the pending window — updates that were journaled
// (accepted) but not yet emitted. The batcher retains the window across
// emit failures, so after a failed Seed or Flush the owner can capture
// exactly what still needs replaying and seed a fresh batcher with it.
func (b *Batcher) PendingWindow() (firstSeq uint64, updates []Update) {
	if len(b.pending) == 0 {
		return 0, nil
	}
	return b.baseSeq, append([]Update(nil), b.pending...)
}

func (b *Batcher) emit(updates []Update) error {
	// Fault-injection point: window close is the batcher's hand-off
	// boundary. It fires before compaction, so a failed close leaves the
	// pending window intact and the caller can retry the Push/Flush.
	if err := faults.Check(faults.IngestWindowClose); err != nil {
		return fmt.Errorf("ingest: window close: %w", err)
	}
	// The window span wraps the sink call too: the downstream commit
	// (store.commit) happens inside the window close, and the flight
	// recorder keys retention on completed root spans.
	sp := obs.Active().StartSpan("ingest.window", obs.Int("raw", len(updates)))
	defer sp.End()
	adds, dels, err := Compact(updates)
	if err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
		return err
	}
	obs.IngestBatches().Inc()
	obs.IngestUpdates().Add(int64(len(updates)))
	sp.SetAttr(obs.Int("additions", len(adds)), obs.Int("deletions", len(dels)))
	if b.journal != nil {
		return b.wsink(adds, dels, b.baseSeq+uint64(len(updates))-1)
	}
	if len(adds) == 0 && len(dels) == 0 {
		return nil // the window cancelled itself out entirely
	}
	return b.sink(adds, dels)
}

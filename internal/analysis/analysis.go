// Package analysis is cgvet's engine: a self-contained static-analysis
// driver (stdlib go/parser + go/types only) that loads every package of
// the module and runs repo-specific analyzers enforcing the invariants the
// CommonGraph design rests on but the Go compiler cannot see — the
// mutation-free CSR, the monotonic engine-state contract, lock discipline
// in the parallel evaluators, and run-to-run determinism.
//
// A finding can be suppressed at a specific site with a comment on the
// same line or the line above:
//
//	//cgvet:ignore lockdiscipline -- index-disjoint writes, one k per goroutine
//
// Omitting the analyzer list suppresses every analyzer on that line. The
// trailing "-- reason" (an em dash "—" works too) is mandatory: the
// ignorehygiene analyzer turns a bare ignore into a finding that no
// suppression can silence.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity classifies a finding: errors are invariant violations that
// must be fixed or justified; warnings flag contract drift worth a look
// but tolerable in a pinch. Both fail cgvet unless baselined — severity
// feeds reporting (SARIF level, sorted output), not the exit code.
type Severity string

const (
	SevError   Severity = "error"
	SevWarning Severity = "warning"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// its severity, and a human-readable message.
type Diagnostic struct {
	Pos      token.Position `json:"pos"`
	Analyzer string         `json:"analyzer"`
	Severity Severity       `json:"severity"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path, used to scope invariants
	Fset     *token.FileSet
	Files    []*ast.File
	Info     *types.Info
	Pkg      *types.Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	sev := p.Analyzer.Severity
	if sev == "" {
		sev = SevError
	}
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name     string
	Doc      string
	Severity Severity // default SevError
	Run      func(*Pass)
}

// All is the cgvet suite, in reporting order: the syntactic tier first,
// then the flow tier (goleak, ctxflow, atomicguard, errflow — built on
// the CFG in flow.go), then the suppression auditor.
var All = []*Analyzer{
	CSRImmutable, LockDiscipline, StateWrite, Determinism, GoPanic, ObsDiscipline, CloseCheck,
	DeprecatedAPI,
	GoLeak, CtxFlow, AtomicGuard, ErrFlow, SpanEnd,
	IgnoreHygiene,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies each analyzer to each package, filters findings
// through //cgvet:ignore suppressions, and returns them sorted by
// position. The suite is pure: packages are never modified.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Info:     pkg.Info,
				Pkg:      pkg.Types,
				report: func(d Diagnostic) {
					// ignorehygiene audits the suppressions themselves; a bare
					// ignore must not be able to silence it.
					if d.Analyzer == IgnoreHygiene.Name || !sup.suppresses(d) {
						diags = append(diags, d)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// suppressions maps file → line → set of suppressed analyzer names; the
// empty name means "all analyzers".
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	// A comment suppresses its own line and the line directly below it
	// (comment-above-statement style).
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if names, ok := lines[line]; ok {
			if names[""] || names[d.Analyzer] {
				return true
			}
		}
	}
	return false
}

const ignoreDirective = "cgvet:ignore"

func collectSuppressions(pkg *Package) suppressions {
	sup := make(suppressions)
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(strings.TrimSpace(text), ignoreDirective)
				if text == strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) {
					continue // directive absent
				}
				// Drop the "-- reason" tail ("—" accepted too), then split
				// names. The reason is mandatory — ignorehygiene flags bare
				// directives — but this parser stays lenient so a bare ignore
				// still suppresses while its own finding surfaces.
				text, _ = splitIgnoreReason(text)
				pos := pkg.Fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					sup[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				fields := strings.FieldsFunc(text, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				})
				if len(fields) == 0 {
					names[""] = true
				}
				for _, f := range fields {
					names[f] = true
				}
			}
		}
	}
	return sup
}

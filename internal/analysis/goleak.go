package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GoLeak proves (or refuses to believe in) termination of every goroutine
// a library package spawns. A long-lived graph service that leaks one
// goroutine per query or per window slide dies by ten thousand cuts:
// each leaked worker pins its stack, its captured state, and — for the
// engine's pools — a slot of the bounded parallelism budget. The flow
// tier inspects each `go` statement's body:
//
//   - an unconditional `for {}` must have a structural way out (break,
//     return, goto, or a terminating call) — otherwise the goroutine
//     spins or blocks forever once the surrounding work is done;
//   - a channel send/receive outside `select` can block forever unless
//     the channel is provably bounded (created locally with a nonzero
//     buffer — the semaphore pattern) or is a cancellation channel
//     (ctx.Done(), a `done`/`quit`/`stop` chan struct{});
//   - `sync.Cond.Wait` blocks until a peer signals: flagged, because no
//     local proof of a wake-up exists;
//   - `for range ch` blocks until the channel closes: flagged unless ch
//     is a cancellation channel;
//   - a WaitGroup.Done that is neither deferred nor on every exit path
//     under-counts on early returns, hanging the joiner;
//   - a goroutine running a function outside the package cannot be
//     analyzed at all and must justify itself with an ignore.
//
// Sites whose termination argument lives outside the function (a
// documented broadcast protocol, a server closed elsewhere) carry
// //cgvet:ignore goleak -- <the argument>.
var GoLeak = &Analyzer{
	Name:     "goleak",
	Doc:      "require a provable termination path for every goroutine spawned in library packages",
	Severity: SevError,
	Run:      runGoLeak,
}

func runGoLeak(pass *Pass) {
	for _, seg := range printAllowedSegments {
		if hasSegment(pass.Path, seg) {
			return // commands and examples die with the process
		}
	}
	decls := packageFuncBodies(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, gs, decls)
			return true
		})
	}
}

// packageFuncBodies indexes the package's own function declarations by
// object, so `go pkgLocalFunc()` is analyzed through its body.
func packageFuncBodies(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

func checkGoStmt(pass *Pass, gs *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if f := calleeFunc(pass.Info, gs.Call); f != nil {
			if fd, ok := decls[f]; ok {
				body = fd.Body
				break
			}
			pass.Reportf(gs.Pos(),
				"goroutine runs %s.%s, whose body this package cannot analyze; prove termination with //cgvet:ignore goleak -- <why it ends>",
				pkgName(f), f.Name())
			return
		}
		pass.Reportf(gs.Pos(),
			"goroutine target is not analyzable (dynamic call); prove termination with //cgvet:ignore goleak -- <why it ends>")
		return
	}
	g := buildFlow(body, pass.Info)
	checkGoroutineBody(pass, gs, body, g)
}

// checkGoroutineBody applies the hazard rules to one goroutine body.
// Diagnostics anchor on the hazard, not the spawn, so fixes and ignores
// land where the blocking happens.
func checkGoroutineBody(pass *Pass, gs *ast.GoStmt, body *ast.BlockStmt, g *flowGraph) {
	bounded := boundedChans(pass, body, gs)
	walkSameFunc(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ForStmt:
			if st.Cond == nil && !g.loopExits[st] {
				pass.Reportf(st.Pos(),
					"goroutine loops forever: `for {}` with no break, return, or terminating call on any path")
			}
		case *ast.RangeStmt:
			if isChanType(pass.Info, st.X) && !isCancellationChan(pass.Info, st.X) {
				pass.Reportf(st.Pos(),
					"goroutine ranges over a channel and blocks until it is closed; prove the producer closes it or select on a cancellation channel")
			}
		case *ast.SendStmt:
			if withinSelect(body, st.Pos()) {
				return
			}
			if !bounded[chanObj(pass.Info, st.Chan)] {
				pass.Reportf(st.Pos(),
					"goroutine sends on an unbounded channel outside select; the send blocks forever if the receiver is gone")
			}
		case *ast.UnaryExpr:
			if st.Op != token.ARROW || withinSelect(body, st.Pos()) {
				return
			}
			if isCancellationChan(pass.Info, st.X) {
				return // blocking until cancellation IS the termination path
			}
			if !bounded[chanObj(pass.Info, st.X)] {
				pass.Reportf(st.Pos(),
					"goroutine receives from an unbounded channel outside select; the receive blocks forever if the sender is gone")
			}
		case *ast.CallExpr:
			if isMethodCall(pass.Info, st, "sync", "Cond", "Wait") {
				pass.Reportf(st.Pos(),
					"goroutine calls sync.Cond.Wait, which blocks until a peer signals; document the wake-up protocol with //cgvet:ignore goleak -- <who broadcasts>")
			}
		}
	})
	checkWaitGroupDone(pass, body, g)
}

// checkWaitGroupDone verifies that a goroutine counting itself on a
// WaitGroup cannot exit without Done: either the Done is deferred (covers
// panic unwinds too) or every structural exit path reaches one.
func checkWaitGroupDone(pass *Pass, body *ast.BlockStmt, g *flowGraph) {
	var doneCalls []*ast.CallExpr
	deferred := false
	walkSameFunc(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if isWaitGroupDone(pass.Info, st.Call) {
				deferred = true
			}
			// A deferred closure calling Done counts too.
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok && isWaitGroupDone(pass.Info, c) {
						deferred = true
					}
					return true
				})
			}
		case *ast.CallExpr:
			if isWaitGroupDone(pass.Info, st) {
				doneCalls = append(doneCalls, st)
			}
		}
	})
	if deferred || len(doneCalls) == 0 {
		return
	}
	covered := g.allPathsHit(func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok && isWaitGroupDone(pass.Info, c) {
				found = true
			}
			return !found
		})
		return found
	})
	if !covered {
		pass.Reportf(doneCalls[0].Pos(),
			"WaitGroup.Done is not reached on every exit path of this goroutine; an early return under-counts and hangs the joiner — defer it")
	} else {
		pass.Reportf(doneCalls[0].Pos(),
			"WaitGroup.Done is called on every path but not deferred; a panic unwind skips it and hangs the joiner — defer it")
	}
}

// boundedChans collects channel objects provably bounded at the spawn
// site: created with make(chan T, n>0) either inside the goroutine body
// or anywhere in the file before use (the semaphore pattern allocates in
// the spawning function).
func boundedChans(pass *Pass, body *ast.BlockStmt, gs *ast.GoStmt) map[types.Object]bool {
	bounded := make(map[types.Object]bool)
	record := func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(pass.Info, call, "make") || len(call.Args) != 2 {
			return
		}
		if _, ok := pass.Info.Types[call.Args[0]].Type.Underlying().(*types.Chan); !ok {
			return
		}
		// An explicit capacity expression counts as bounded; semaphore
		// capacities are often variables (min(par, n)) whose positivity
		// the surrounding code guarantees.
		for _, lhs := range as.Lhs {
			if obj := identObj(pass, lhs); obj != nil {
				bounded[obj] = true
			}
		}
	}
	for _, file := range pass.Files {
		if file.Pos() <= gs.Pos() && gs.Pos() <= file.End() {
			ast.Inspect(file, func(n ast.Node) bool {
				record(n)
				return true
			})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		record(n)
		return true
	})
	return bounded
}

// withinSelect reports whether pos falls inside a select statement of
// body — channel operations there are guarded alternatives, not
// unconditional blocks.
func withinSelect(body *ast.BlockStmt, pos token.Pos) bool {
	inside := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok && sel.Pos() <= pos && pos <= sel.End() {
			inside = true
		}
		return !inside
	})
	return inside
}

// chanObj resolves a channel expression to its root object (for the
// bounded-channel lookup); nil when the channel is not a plain variable.
func chanObj(info *types.Info, e ast.Expr) types.Object {
	id := rootIdent(ast.Unparen(e))
	if id == nil {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// cancellationNames are channel identifiers read as "this tells me to
// stop": receiving from one is a termination path, not a leak.
var cancellationNames = map[string]bool{"done": true, "quit": true, "stop": true, "closing": true, "closed": true, "cancel": true}

// isCancellationChan recognizes ctx.Done() results and stop-channel
// variables by type and name.
func isCancellationChan(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if named, ok := info.Types[sel.X].Type.(*types.Named); ok {
				if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context" {
					return true
				}
			}
			if iface, ok := info.Types[sel.X].Type.Underlying().(*types.Interface); ok && iface.NumMethods() > 0 {
				// context.Context is an interface; method-set match by name.
				for i := 0; i < iface.NumMethods(); i++ {
					if iface.Method(i).Name() == "Deadline" {
						return true
					}
				}
			}
		}
	}
	if id, ok := e.(*ast.Ident); ok && cancellationNames[strings.ToLower(id.Name)] {
		if ch, ok := info.Types[e].Type.Underlying().(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	return false
}

// isChanType reports whether e has channel type.
func isChanType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// isWaitGroupDone reports whether call is (*sync.WaitGroup).Done().
func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	return isMethodCall(info, call, "sync", "WaitGroup", "Done")
}

// isMethodCall matches a call to pkg.Type's named method by the static
// type of the receiver expression.
func isMethodCall(info *types.Info, call *ast.CallExpr, pkg, typ, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == typ && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == pkg
}

// pkgName formats f's package for messages ("http", "commongraph/internal/store").
func pkgName(f *types.Func) string {
	if f.Pkg() == nil {
		return "?"
	}
	return f.Pkg().Name()
}

// funcNames joins sorted function names for messages.
func funcNames(set map[string]bool, max int) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > max {
		names = append(names[:max], fmt.Sprintf("+%d more", len(set)-max))
	}
	return strings.Join(names, ", ")
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CloseCheck keeps library packages from leaking file descriptors: a
// long-running evolving-graph service opens segment, WAL and dataset
// files on every maintenance cycle, so a handle that misses Close on one
// error path exhausts the fd table days later. The analyzer tracks every
// os.Open/os.Create/os.OpenFile/os.CreateTemp result inside library
// packages and requires one of:
//
//   - a deferred Close (directly or inside a deferred func literal),
//   - the handle escaping the function (returned, stored in a struct,
//     slice, map or field, or passed to another function — the escapee's
//     owner takes over the obligation), or
//   - an explicit Close on every lexical path: no plain return may occur
//     between the open and the first Close (the open's own err != nil
//     check is exempt — the handle is nil there).
//
// The same ownership discipline covers network handles: net.Dial,
// net.DialTimeout and net.Listen results are tracked identically, since
// the replication layer holds conns and listeners open for the life of a
// session and a leaked one pins a socket the way a lost *os.File pins an
// fd.
//
// The path rule is lexical, not a full CFG: it catches the canonical
// "early error return leaks the file" bug without whole-function dataflow.
// A genuinely fine site is suppressed with //cgvet:ignore closecheck.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc:  "require a reachable Close for os.Open/os.Create and net.Dial/net.Listen handles in library packages",
	Run:  runCloseCheck,
}

// openers are the package-level functions whose first result is a
// closable handle the caller owns, keyed by package path.
var openers = map[string]map[string]bool{
	"os":  {"Open": true, "Create": true, "OpenFile": true, "CreateTemp": true},
	"net": {"Dial": true, "DialTimeout": true, "Listen": true},
}

func runCloseCheck(pass *Pass) {
	for _, seg := range printAllowedSegments {
		if hasSegment(pass.Path, seg) {
			return // commands are short-lived; the kernel closes for them
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFuncBody(pass, fn.Body)
				}
				return false // nested FuncLits are visited by checkFuncBody
			case *ast.FuncLit:
				checkFuncBody(pass, fn.Body)
				return false
			}
			return true
		})
	}
}

// openSite is one tracked os.Open-family assignment.
type openSite struct {
	call   *ast.CallExpr
	name   string       // os function name, for messages
	file   types.Object // the *os.File variable
	errVar types.Object // the error result variable, if any
	pos    token.Pos
}

// checkFuncBody analyzes one function body in isolation; nested function
// literals are separate bodies (their returns leave a different frame).
func checkFuncBody(pass *Pass, body *ast.BlockStmt) {
	var sites []openSite
	walkSameFunc(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		name, ok := osOpener(pass, call)
		if !ok {
			return
		}
		site := openSite{call: call, name: name, pos: as.Pos()}
		if len(as.Lhs) > 0 {
			site.file = identObj(pass, as.Lhs[0])
		}
		if len(as.Lhs) > 1 {
			site.errVar = identObj(pass, as.Lhs[1])
		}
		if site.file == nil {
			// The handle is discarded (blank or not a simple variable):
			// nothing can ever close it.
			pass.Reportf(as.Pos(), "%s result is discarded and can never be closed", name)
			return
		}
		sites = append(sites, site)
	})
	for _, site := range sites {
		checkSite(pass, body, site)
	}
}

func checkSite(pass *Pass, body *ast.BlockStmt, site openSite) {
	var (
		deferred   bool
		escapes    bool
		firstClose = token.NoPos
		returns    []*ast.ReturnStmt
	)
	walkSameFunc(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if closesObj(pass, st.Call, site.file) || funcLitCloses(pass, st.Call, site.file) {
				deferred = true
			}
		case *ast.CallExpr:
			if closesObj(pass, st, site.file) {
				if !firstClose.IsValid() || st.Pos() < firstClose {
					firstClose = st.Pos()
				}
				return
			}
			for _, arg := range st.Args {
				if usesObj(pass, arg, site.file) {
					escapes = true // the callee takes over the handle
				}
			}
		case *ast.ReturnStmt:
			closing := false
			for _, res := range st.Results {
				if usesObj(pass, res, site.file) {
					escapes = true
				}
				ast.Inspect(res, func(n ast.Node) bool {
					if c, ok := n.(*ast.CallExpr); ok && closesObj(pass, c, site.file) {
						closing = true // return f.Close() closes on this path
					}
					return !closing
				})
			}
			if st.Pos() > site.pos && !closing {
				returns = append(returns, st)
			}
		case *ast.AssignStmt:
			// f aliased or stored somewhere outliving the frame (h.f = f,
			// m[k] = f, g := f). Only a bare identifier counts: method
			// calls like f.Write(...) on the right-hand side use f without
			// transferring ownership.
			for i, rhs := range st.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || pass.Info.Uses[id] != site.file {
					continue
				}
				if i < len(st.Lhs) {
					if lid, ok := st.Lhs[i].(*ast.Ident); ok && lid.Name == "_" {
						continue
					}
				}
				escapes = true
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				if usesObj(pass, el, site.file) {
					escapes = true
				}
			}
		case *ast.SendStmt:
			if usesObj(pass, st.Value, site.file) {
				escapes = true
			}
		}
	})
	if deferred || escapes {
		return
	}
	if !firstClose.IsValid() {
		pass.Reportf(site.pos, "%s handle is never closed in this function and does not escape", site.name)
		return
	}
	exempt := openErrCheckReturns(pass, body, site)
	for _, r := range returns {
		if r.Pos() >= firstClose || exempt[r] {
			continue
		}
		pass.Reportf(r.Pos(), "return leaks the %s handle opened at line %d (no Close on this path)",
			site.name, pass.Fset.Position(site.pos).Line)
	}
}

// openErrCheckReturns finds the returns inside the open's own error
// check — the if statement directly following the open whose condition
// mentions the open's error variable. The handle is nil on that path.
func openErrCheckReturns(pass *Pass, body *ast.BlockStmt, site openSite) map[*ast.ReturnStmt]bool {
	exempt := make(map[*ast.ReturnStmt]bool)
	if site.errVar == nil {
		return exempt
	}
	var mark func(stmts []ast.Stmt)
	mark = func(stmts []ast.Stmt) {
		for i, st := range stmts {
			switch s := st.(type) {
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 && s.Rhs[0] == site.call && i+1 < len(stmts) {
					ifst, ok := stmts[i+1].(*ast.IfStmt)
					if !ok || !usesObj(pass, ifst.Cond, site.errVar) {
						continue
					}
					walkSameFunc(ifst.Body, func(n ast.Node) {
						if r, ok := n.(*ast.ReturnStmt); ok {
							exempt[r] = true
						}
					})
				}
			case *ast.BlockStmt:
				mark(s.List)
			case *ast.IfStmt:
				mark(s.Body.List)
				if b, ok := s.Else.(*ast.BlockStmt); ok {
					mark(b.List)
				}
			case *ast.ForStmt:
				mark(s.Body.List)
			case *ast.RangeStmt:
				mark(s.Body.List)
			case *ast.SwitchStmt:
				mark(s.Body.List)
			case *ast.CaseClause:
				mark(s.Body)
			}
		}
	}
	mark(body.List)
	return exempt
}

// walkSameFunc visits every node of body without descending into nested
// function literals — their statements run in another frame.
func walkSameFunc(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// osOpener reports whether call is a tracked handle-producing function
// (os.Open family, net.Dial family, net.Listen), returning its qualified
// display name.
func osOpener(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil {
		return "", false
	}
	names := openers[f.Pkg().Path()]
	if names == nil || !names[f.Name()] {
		return "", false
	}
	return f.Pkg().Path() + "." + f.Name(), true
}

// closesObj reports whether call is obj.Close().
func closesObj(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

// funcLitCloses reports whether call is an immediately-deferred func
// literal whose body closes obj (defer func() { f.Close() }()).
func funcLitCloses(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && closesObj(pass, c, obj) {
			found = true
		}
		return !found
	})
	return found
}

// usesObj reports whether expr mentions obj, except as the receiver of a
// Close call — `return f.Close()` relinquishes nothing.
func usesObj(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && closesObj(pass, c, obj) {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// identObj resolves a simple identifier expression to its object; blank
// identifiers and non-identifiers yield nil.
func identObj(pass *Pass, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

package analysis

import (
	"strings"
)

// IgnoreHygiene keeps the suppression ledger honest: every
// //cgvet:ignore must say *why* — `//cgvet:ignore lockdiscipline --
// cursor is owner-local until published`. A bare ignore is a finding in
// its own right, because an unsupervised suppression is how an invariant
// dies quietly: the code changes, the reason (if there ever was one)
// stops holding, and nothing notices.
//
// Findings from this analyzer bypass the suppression machinery — a bare
// ignore cannot ignore the complaint about itself.
var IgnoreHygiene = &Analyzer{
	Name:     "ignorehygiene",
	Doc:      "every //cgvet:ignore must carry a `-- reason` justification",
	Severity: SevError,
	Run:      runIgnoreHygiene,
}

func runIgnoreHygiene(pass *Pass) {
	for _, file := range pass.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				body, ok := ignoreDirectiveBody(c.Text)
				if !ok {
					continue
				}
				if _, reason := splitIgnoreReason(body); strings.TrimSpace(reason) == "" {
					pass.Reportf(c.Pos(),
						"bare //cgvet:ignore without a justification; write `//cgvet:ignore %s -- <why the invariant holds here>`",
						strings.TrimSpace(body))
				}
			}
		}
	}
}

// ignoreDirectiveBody extracts the text after "cgvet:ignore" in a line
// comment, reporting whether the directive is present at all.
func ignoreDirectiveBody(comment string) (string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, ignoreDirective)
	if !ok {
		return "", false
	}
	return rest, true
}

// splitIgnoreReason splits a directive body into the analyzer-name list
// and the justification, accepting both "--" and the em dash "—" as the
// separator.
func splitIgnoreReason(body string) (names, reason string) {
	for _, sep := range []string{"--", "—"} {
		if i := strings.Index(body, sep); i >= 0 {
			return body[:i], body[i+len(sep):]
		}
	}
	return body, ""
}

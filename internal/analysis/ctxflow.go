package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the cancellation contract PR2 threaded through the
// evaluators: once a context reaches a function, it must keep flowing —
// a callee that accepts a context gets the caller's ctx (possibly
// derived), never a fresh context.Background()/TODO() or a nil that
// silently severs the cancellation chain. And the chain must start
// somewhere real: library packages may not mint root contexts at all;
// only commands, examples, and explicitly justified lifecycle roots
// (//cgvet:ignore ctxflow -- <why this is a root>) may call
// context.Background()/TODO().
//
// Checks, in order of the message they produce:
//
//  1. root contexts: context.Background()/context.TODO() in a library
//     package;
//  2. severed flow: a call argument in ctx-accepting position that is
//     context.Background(), context.TODO(), or nil while a ctx parameter
//     is in scope;
//  3. unchecked spin: an unconditional `for {}` inside a function with a
//     ctx parameter whose loop body never consults ctx (no Done/Err, no
//     forwarding call) — cancellation can never interrupt it.
var CtxFlow = &Analyzer{
	Name:     "ctxflow",
	Doc:      "contexts must flow: no Background()/TODO() in libraries, no severing an in-scope ctx, no ctx-blind spin loops",
	Severity: SevWarning,
	Run:      runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	library := true
	for _, seg := range printAllowedSegments {
		if hasSegment(pass.Path, seg) {
			library = false
		}
	}
	for _, file := range pass.Files {
		if library {
			reportRootContexts(pass, file)
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxObj := ctxParam(pass, fd.Type)
			if ctxObj == nil {
				continue
			}
			checkCtxFlowBody(pass, fd.Body, ctxObj)
		}
	}
}

// reportRootContexts flags every context.Background()/TODO() call in the
// file (rule 1).
func reportRootContexts(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := rootContextCall(pass.Info, call); ok {
			pass.Reportf(call.Pos(),
				"context.%s() mints a root context in library package %s; accept a ctx from the caller (a justified lifecycle root uses //cgvet:ignore ctxflow -- <why>)",
				name, pass.Path)
		}
		return true
	})
}

// checkCtxFlowBody applies rules 2 and 3 inside one ctx-taking function.
// Nested function literals are included: they capture ctx and run on the
// same request path.
func checkCtxFlowBody(pass *Pass, body *ast.BlockStmt, ctxObj types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			checkCtxArgs(pass, st)
		case *ast.ForStmt:
			if st.Cond == nil && !mentionsObjOrCtxCall(pass, st.Body, ctxObj) {
				pass.Reportf(st.Pos(),
					"unbounded loop in a ctx-taking function never consults ctx; check ctx.Err() (or select on ctx.Done()) so cancellation can interrupt it")
			}
		}
		return true
	})
}

// checkCtxArgs flags Background/TODO/nil passed where the callee accepts
// a context (rule 2). The ctx parameter being in scope is the caller's
// whole point: the severed chain is always a bug or needs a reason.
func checkCtxArgs(pass *Pass, call *ast.CallExpr) {
	sig := calleeSignature(pass.Info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break // variadic tail cannot be a context in practice
		}
		if !isContextType(sig.Params().At(i).Type()) {
			continue
		}
		if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if name, isRoot := rootContextCall(pass.Info, inner); isRoot {
				pass.Reportf(arg.Pos(),
					"ctx is in scope but context.%s() is passed to %s; forward ctx (or derive with context.With*)",
					name, calleeName(pass.Info, call))
			}
			continue
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && id.Name == "nil" {
			if _, isNil := pass.Info.Uses[id].(*types.Nil); isNil {
				pass.Reportf(arg.Pos(),
					"ctx is in scope but nil is passed as the context to %s; forward ctx",
					calleeName(pass.Info, call))
			}
		}
	}
}

// ctxParam returns the object of the function's context.Context
// parameter, or nil.
func ctxParam(pass *Pass, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

// mentionsObjOrCtxCall reports whether the node references the ctx object
// at all — a Done/Err check, a forwarding call, even a derived context
// all count as "cancellation can reach this loop".
func mentionsObjOrCtxCall(pass *Pass, n ast.Node, ctxObj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == ctxObj {
			found = true
		}
		return !found
	})
	return found
}

// rootContextCall matches context.Background() / context.TODO().
func rootContextCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "context" {
		return "", false
	}
	if f.Name() == "Background" || f.Name() == "TODO" {
		return f.Name(), true
	}
	return "", false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// calleeSignature resolves the static signature of a call, nil for
// builtins and type conversions.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// calleeName renders the callee for messages ("core.DirectHop", "run").
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "the callee"
}

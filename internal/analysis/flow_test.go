package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// flowSrc is a dependency-free package exercising the CFG builder and
// its two queries directly.
const flowSrc = `package flowtest

func produce() (int, error) { return 0, nil }
func sink(err error)        {}

func deadAssign() error {
	_, err := produce()
	_, err = produce()
	return err
}

func liveAssign() error {
	_, err := produce()
	sink(err)
	_, err = produce()
	return err
}

func branchRead(use bool) error {
	_, err := produce()
	if use {
		sink(err)
	}
	_, err = produce()
	return err
}

func closureRead() error {
	_, err := produce()
	f := func() { sink(err) }
	f()
	_, err = produce()
	return err
}

func spin() {
	for {
	}
}

func spinWithBreak(stop bool) {
	for {
		if stop {
			break
		}
	}
}

func spinWithSelect(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		}
	}
}

func condLoop(n int) {
	for i := 0; i < n; i++ {
	}
}

func earlyReturn(fail bool) {
	if fail {
		return
	}
	sink(nil)
}

func allPaths(fail bool) {
	if fail {
		sink(nil)
		return
	}
	sink(nil)
}

func panicPath(fail bool) {
	if fail {
		panic("boom")
	}
	sink(nil)
}
`

func parseFlowSrc(t *testing.T) (map[string]*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flowtest.go", flowSrc, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	if _, err := conf.Check("flowtest", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	fns := make(map[string]*ast.FuncDecl)
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fns[fd.Name.Name] = fd
		}
	}
	return fns, info
}

// firstErrAssign returns the function's first assignment statement and
// the object its `err` target resolves to.
func firstErrAssign(t *testing.T, info *types.Info, fd *ast.FuncDecl) (*ast.AssignStmt, types.Object) {
	t.Helper()
	var as *ast.AssignStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as != nil {
			return false
		}
		if a, ok := n.(*ast.AssignStmt); ok {
			as = a
			return false
		}
		return true
	})
	if as == nil {
		t.Fatal("no assignment found")
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "err" {
			if obj := info.Defs[id]; obj != nil {
				return as, obj
			}
			if obj := info.Uses[id]; obj != nil {
				return as, obj
			}
		}
	}
	t.Fatal("no err target in first assignment")
	return nil, nil
}

func TestValueReaches(t *testing.T) {
	fns, info := parseFlowSrc(t)
	cases := []struct {
		fn   string
		want bool
	}{
		{"deadAssign", false}, // overwritten before any read
		{"liveAssign", true},  // read by sink before the overwrite
		{"branchRead", true},  // read on one branch is enough
		{"closureRead", true}, // capture by a func literal counts
	}
	for _, c := range cases {
		fd := fns[c.fn]
		g := buildFlow(fd.Body, info)
		as, obj := firstErrAssign(t, info, fd)
		if got := g.valueReaches(as, obj); got != c.want {
			t.Errorf("%s: valueReaches = %v, want %v", c.fn, got, c.want)
		}
	}
}

func TestLoopExits(t *testing.T) {
	fns, info := parseFlowSrc(t)
	cases := []struct {
		fn   string
		want bool
	}{
		{"spin", false},
		{"spinWithBreak", true},
		{"spinWithSelect", true}, // return inside a select case leaves the loop
		{"condLoop", true},       // a condition can become false
	}
	for _, c := range cases {
		fd := fns[c.fn]
		g := buildFlow(fd.Body, info)
		var loop ast.Stmt
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				if loop == nil {
					loop = n.(ast.Stmt)
				}
			}
			return true
		})
		if loop == nil {
			t.Fatalf("%s: no loop found", c.fn)
		}
		if got := g.loopExits[loop]; got != c.want {
			t.Errorf("%s: loopExits = %v, want %v", c.fn, got, c.want)
		}
	}
}

func TestAllPathsHit(t *testing.T) {
	fns, info := parseFlowSrc(t)
	callsSink := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "sink" {
					found = true
				}
			}
			return !found
		})
		return found
	}
	cases := []struct {
		fn   string
		want bool
	}{
		{"earlyReturn", false}, // the fail branch returns without sink
		{"allPaths", true},
		{"panicPath", false}, // the panic path leaves without sink (a panic unwind skips it)
	}
	for _, c := range cases {
		fd := fns[c.fn]
		g := buildFlow(fd.Body, info)
		if got := g.allPathsHit(callsSink); got != c.want {
			t.Errorf("%s: allPathsHit = %v, want %v", c.fn, got, c.want)
		}
	}
}

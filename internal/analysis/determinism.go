package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism keeps runs reproducible — the property every benchmark
// comparison in EXPERIMENTS.md rests on. It bans the global math/rand
// source (unseeded, shared, order-dependent) module-wide, and bare
// time.Now() in the representation/algorithm layers, where a timestamp
// can only mean a hidden input. Timing-accounting layers (the executor
// packages, the bench harness, the seeded generator, commands and
// examples) are allowlisted below; a genuinely needed exception elsewhere
// is suppressed per-site with //cgvet:ignore determinism.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "ban global math/rand and bare time.Now() in algorithm/representation packages",
	Run:  runDeterminism,
}

// randAllowedSegments are path elements whose packages may use math/rand
// freely: the bench harness, the (seeded) workload generator, and
// human-facing commands/examples.
var randAllowedSegments = []string{"bench", "gen", "cmd", "examples"}

// randConstructors create explicitly seeded generators and stay allowed
// everywhere (math/rand and math/rand/v2 spellings).
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// timeRestrictedLeaves are the internal/<leaf> packages that must stay
// pure: graph representation, set algebra, the engine, the vertex
// programs, and the storage/ingest layers. The executor layers (core,
// kickstarter) and the harness do legitimate wall-clock cost accounting
// and are not listed — this is the determinism allowlist.
var timeRestrictedLeaves = map[string]bool{
	"graph": true, "delta": true, "engine": true, "algo": true,
	"snapshot": true, "ingest": true, "dataset": true,
}

func runDeterminism(pass *Pass) {
	randAllowed := false
	for _, seg := range randAllowedSegments {
		if hasSegment(pass.Path, seg) {
			randAllowed = true
			break
		}
	}
	timeRestricted := timeRestrictedLeaves[internalLeaf(pass.Path)]
	if randAllowed && !timeRestricted {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			f, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || f.Pkg() == nil {
				return true
			}
			if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. a seeded *rand.Rand) are fine
			}
			switch f.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !randAllowed && !randConstructors[f.Name()] {
					pass.Reportf(id.Pos(),
						"use of global math/rand.%s makes runs irreproducible; use a seeded gen.RNG or rand.New(rand.NewSource(seed))",
						f.Name())
				}
			case "time":
				if timeRestricted && f.Name() == "Now" {
					pass.Reportf(id.Pos(),
						"time.Now() in representation/algorithm package %s; timing belongs in the executor/bench layers (or suppress with //cgvet:ignore determinism)",
						pass.Path)
				}
			}
			return true
		})
	}
}

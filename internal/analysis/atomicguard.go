package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicGuard polices the engine's mixed-access contracts: a word that is
// CASed by concurrent workers in one function and read or written plainly
// in another is either a data race or a carefully phase-separated design
// (the frontier's trySet/adopt contract, State's quiescent clone). The
// analyzer cannot tell which — but it can force the design to say so.
//
// Per package it collects every location accessed through sync/atomic
// (atomic.LoadUint64(&s.f[i]), atomic.AddUint32(&s.g), including through
// a local alias w := &s.f[i]) and every plain element access of the same
// location (s.f[i] reads/writes, `for _, w := range s.f`, copy(dst, s.f)).
// A location with both kinds gets one diagnostic at its declaration,
// naming the functions on each side; the fix is either making the plain
// side atomic or documenting the phase contract on the declaration with
// //cgvet:ignore atomicguard -- <the contract>.
//
// Tracked locations are struct fields and defined slice types (methods on
// `type bitset []uint64`). The typed atomics (atomic.Int64 & friends)
// need no guard: their plain accesses do not compile.
var AtomicGuard = &Analyzer{
	Name:     "atomicguard",
	Doc:      "flag words accessed both through sync/atomic and plainly; mixed access needs a documented phase contract",
	Severity: SevError,
	Run:      runAtomicGuard,
}

// atomicTarget is one trackable location: a struct field or a defined
// slice type whose elements are the shared words.
type atomicTarget struct {
	obj  types.Object // *types.Var (field) or *types.TypeName (defined slice)
	decl token.Pos    // where to report and where the ignore lives
}

type accessRecord struct {
	target  atomicTarget
	atomics map[string]bool // function names with atomic access
	plains  map[string]bool // function names with plain element access
}

func runAtomicGuard(pass *Pass) {
	records := make(map[types.Object]*accessRecord)
	rec := func(t atomicTarget, fn string, atomic bool) {
		r := records[t.obj]
		if r == nil {
			r = &accessRecord{target: t, atomics: make(map[string]bool), plains: make(map[string]bool)}
			records[t.obj] = r
		}
		if atomic {
			r.atomics[fn] = true
		} else {
			r.plains[fn] = true
		}
	}
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		scanFuncAccesses(pass, fd, rec)
	})
	for _, r := range records {
		if len(r.atomics) == 0 || len(r.plains) == 0 {
			continue
		}
		pass.Reportf(r.target.decl,
			"%s accessed through sync/atomic in [%s] but plainly in [%s]; make the plain side atomic or document the phase contract with //cgvet:ignore atomicguard -- <contract>",
			targetName(r.target.obj), funcNames(r.atomics, 4), funcNames(r.plains, 4))
	}
}

// scanFuncAccesses classifies every access in one function. Aliases are
// resolved first (w := &s.f[i] makes w stand for s.f's elements), then
// each expression is attributed.
func scanFuncAccesses(pass *Pass, fd *ast.FuncDecl, rec func(atomicTarget, string, bool)) {
	fn := fd.Name.Name
	aliases, aliasExprs := collectAliases(pass, fd.Body)

	// Pass 1: atomic accesses — arguments of sync/atomic calls.
	atomicArgs := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSyncAtomicCall(pass.Info, call) {
			return true
		}
		for _, arg := range call.Args {
			arg = ast.Unparen(arg)
			if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
				atomicArgs[u.X] = true
				if t, ok := resolveTarget(pass, u.X); ok {
					rec(t, fn, true)
				}
				continue
			}
			if id, ok := arg.(*ast.Ident); ok {
				if base, ok := aliases[identObj(pass, id)]; ok {
					rec(base, fn, true)
				}
			}
		}
		return true
	})

	// Pass 2: plain element accesses — index reads/writes, element-wise
	// range, copy, and dereference of a tracked alias.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.IndexExpr:
			if atomicArgs[st] || aliasExprs[st] || withinAtomicArg(atomicArgs, st) {
				return true
			}
			if t, ok := resolveTarget(pass, st); ok {
				rec(t, fn, false)
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(st.X).(*ast.Ident); ok {
				if base, ok := aliases[identObj(pass, id)]; ok {
					rec(base, fn, false)
				}
			}
		case *ast.RangeStmt:
			if st.Value != nil && st.Value.(*ast.Ident).Name != "_" {
				if t, ok := resolveSliceTarget(pass, st.X); ok {
					rec(t, fn, false)
				}
			}
		case *ast.CallExpr:
			if isBuiltin(pass.Info, st, "copy") {
				for _, arg := range st.Args {
					if t, ok := resolveSliceTarget(pass, arg); ok {
						rec(t, fn, false)
					}
				}
			}
		}
		return true
	})
}

// collectAliases maps local pointer variables to the target they alias
// (w := &s.f[i] or w := &s.f), and records the aliased expressions so
// the plain-access scan does not count the definition itself.
func collectAliases(pass *Pass, body *ast.BlockStmt) (map[types.Object]atomicTarget, map[ast.Expr]bool) {
	aliases := make(map[types.Object]atomicTarget)
	aliasExprs := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			u, ok := ast.Unparen(rhs).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				continue
			}
			t, ok := resolveTarget(pass, u.X)
			if !ok {
				continue
			}
			if obj := identObj(pass, as.Lhs[i]); obj != nil {
				aliases[obj] = t
				aliasExprs[u.X] = true
			}
		}
		return true
	})
	return aliases, aliasExprs
}

// withinAtomicArg reports whether e sits inside an expression already
// attributed as an atomic argument (&s.f[i] contains the IndexExpr
// s.f[i]; counting it again as plain would always self-flag).
func withinAtomicArg(atomicArgs map[ast.Expr]bool, e ast.Expr) bool {
	for arg := range atomicArgs {
		if arg.Pos() <= e.Pos() && e.End() <= arg.End() {
			return true
		}
	}
	return false
}

// resolveTarget maps an lvalue expression to its tracked location:
// s.f[i] / s.f → field f; b[i] where b has a defined slice type → that
// type.
func resolveTarget(pass *Pass, e ast.Expr) (atomicTarget, bool) {
	e = ast.Unparen(e)
	if idx, ok := e.(*ast.IndexExpr); ok {
		if sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr); ok {
			if f := fieldSel(pass.Info, sel); f != nil && f.Pkg() == pass.Pkg {
				return atomicTarget{obj: f, decl: f.Pos()}, true
			}
		}
		return namedSliceTarget(pass, idx.X)
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if f := fieldSel(pass.Info, sel); f != nil && f.Pkg() == pass.Pkg {
			return atomicTarget{obj: f, decl: f.Pos()}, true
		}
	}
	return atomicTarget{}, false
}

// resolveSliceTarget maps a slice-valued expression (range/copy operand)
// to a tracked location.
func resolveSliceTarget(pass *Pass, e ast.Expr) (atomicTarget, bool) {
	e = ast.Unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if f := fieldSel(pass.Info, sel); f != nil && f.Pkg() == pass.Pkg {
			return atomicTarget{obj: f, decl: f.Pos()}, true
		}
	}
	return namedSliceTarget(pass, e)
}

// namedSliceTarget resolves an expression of a package-local defined
// slice type to that type's object.
func namedSliceTarget(pass *Pass, e ast.Expr) (atomicTarget, bool) {
	tv, ok := pass.Info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return atomicTarget{}, false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return atomicTarget{}, false
	}
	if _, isSlice := named.Underlying().(*types.Slice); !isSlice {
		return atomicTarget{}, false
	}
	obj := named.Obj()
	if obj.Pkg() != pass.Pkg {
		return atomicTarget{}, false
	}
	return atomicTarget{obj: obj, decl: obj.Pos()}, true
}

// isSyncAtomicCall matches top-level sync/atomic functions (the typed
// atomics are methods and inherently guarded).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// targetName renders a target (with its verb) for messages.
func targetName(obj types.Object) string {
	switch obj.(type) {
	case *types.TypeName:
		return "elements of type " + obj.Name() + " are"
	default:
		return "field " + obj.Name() + " is"
	}
}

package analysis

import "encoding/json"

// SARIF 2.1.0 serialization — the minimal subset GitHub code scanning
// consumes: one run, one driver with a rule per analyzer, one result per
// finding with a physical location. Static JSON structs beat a SARIF
// dependency the module is not allowed to take.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID                   string       `json:"id"`
	ShortDescription     sarifText    `json:"shortDescription"`
	DefaultConfiguration sarifDefault `json:"defaultConfiguration"`
}

type sarifDefault struct {
	Level string `json:"level"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. root anchors
// module-relative artifact URIs; analyzers populates the rule table
// (pass All so even clean runs document the suite).
func SARIF(diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:                   a.Name,
			ShortDescription:     sarifText{Text: a.Doc},
			DefaultConfiguration: sarifDefault{Level: sarifLevel(a.Severity)},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   sarifLevel(d.Severity),
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       moduleRel(root, d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cgvet", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}

func sarifLevel(s Severity) string {
	if s == SevWarning {
		return "warning"
	}
	return "error"
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package of the module, carrying everything an
// analyzer needs: syntax, type information, and the import path used to
// decide which invariants apply.
type Package struct {
	Path  string // import path ("commongraph/internal/graph")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// sharedFset and sharedStd are process-wide so stdlib packages are parsed
// and type-checked once per process even when several loads run (the
// fixture tests plus the whole-module test). The "source" importer
// type-checks the standard library from GOROOT sources, which keeps the
// module free of toolchain-export-data assumptions.
var (
	sharedFset = token.NewFileSet()
	stdOnce    sync.Once
	sharedStd  types.Importer
	loadMu     sync.Mutex
)

func stdImporter() types.Importer {
	stdOnce.Do(func() {
		sharedStd = importer.ForCompiler(sharedFset, "source", nil)
	})
	return sharedStd
}

type loader struct {
	root    string // module root directory
	module  string // module path from go.mod
	fset    *token.FileSet
	pkgs    map[string]*Package
	loading map[string]bool
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at root (the directory containing go.mod). testdata,
// vendor, and hidden directories are skipped. Packages are returned in
// import-path order.
func LoadModule(root string) ([]*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	ld := &loader{
		root:    abs,
		module:  module,
		fset:    sharedFset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	dirs, err := packageDirs(abs)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		path := ld.importPathFor(dir)
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// synthetic import path. Used by the analyzer fixture tests, where the
// import path (not the on-disk location) decides which rules apply.
func LoadDir(dir, asPath string) (*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		root:    abs,
		module:  asPath, // fixtures only import stdlib
		fset:    sharedFset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	return ld.checkDir(abs, asPath)
}

func (ld *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil || rel == "." {
		return ld.module
	}
	return ld.module + "/" + filepath.ToSlash(rel)
}

func (ld *loader) dirFor(path string) string {
	if path == ld.module {
		return ld.root
	}
	return filepath.Join(ld.root, filepath.FromSlash(strings.TrimPrefix(path, ld.module+"/")))
}

func (ld *loader) load(path string) (*Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)
	p, err := ld.checkDir(ld.dirFor(path), path)
	if err != nil {
		return nil, err
	}
	ld.pkgs[path] = p
	return p, nil
}

func (ld *loader) checkDir(dir, path string) (*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, ld.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v (and %d more)",
			path, typeErrs[0], len(typeErrs)-1)
	}
	return &Package{Path: path, Dir: dir, Fset: ld.fset, Files: files, Types: pkg, Info: info}, nil
}

// Import implements types.Importer: module-internal paths are type-checked
// from source recursively; everything else is delegated to the stdlib
// source importer (the module is dependency-free by design).
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.module || strings.HasPrefix(path, ld.module+"/") {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return stdImporter().Import(path)
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			name := strings.TrimSpace(rest)
			if name != "" {
				return name, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// packageDirs returns every directory under root holding at least one
// non-test Go file, skipping testdata, vendor, and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFileNames(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// goFileNames lists the buildable non-test Go files of dir, sorted.
// Buildable honours //go:build constraints and GOOS/GOARCH filename
// suffixes for the host platform — otherwise a pair of tag-gated files
// (e.g. store's mmap_unix.go / mmap_other.go) type-checks as a
// redeclaration.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

package analysis

import (
	"go/ast"
	"go/types"
)

// StateWrite protects the monotonicity contract behind additions-only
// evaluation: engine values only ever improve, so every write to the
// packed (value, parent) words of engine.State must go through the
// approved update sites — construction, the CASMIN/CASMAX of Table 3, the
// trimming reset, and cloning. A stray direct write (plain or atomic)
// anywhere else could move a value against the algorithm's order and
// silently invalidate every incremental result built on top of it.
var StateWrite = &Analyzer{
	Name: "statewrite",
	Doc:  "flag writes to engine.State value words outside approved update sites",
	Run:  runStateWrite,
}

// stateWriters are the only functions allowed to store into State.words.
var stateWriters = map[string]bool{
	"NewState":   true,
	"TryImprove": true,
	"Reset":      true,
	"Clone":      true,
}

var stateFields = map[string]bool{"words": true}

// atomicStoreFuncs are the sync/atomic package functions that write
// through their pointer argument (Load* are reads and stay allowed).
var atomicStoreFuncs = map[string]bool{
	"StoreUint64":           true,
	"SwapUint64":            true,
	"AddUint64":             true,
	"CompareAndSwapUint64":  true,
	"StoreUint32":           true,
	"SwapUint32":            true,
	"AddUint32":             true,
	"CompareAndSwapUint32":  true,
	"StoreInt64":            true,
	"SwapInt64":             true,
	"AddInt64":              true,
	"CompareAndSwapInt64":   true,
	"StorePointer":          true,
	"SwapPointer":           true,
	"CompareAndSwapPointer": true,
}

func runStateWrite(pass *Pass) {
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		if stateWriters[fd.Name.Name] {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					if sel, _ := selectsField(pass.Info, lhs, "engine", "State", stateFields); sel != nil {
						pass.Reportf(lhs.Pos(),
							"write to engine.State.words outside approved update sites (monotonic-value contract; use TryImprove/Reset)")
					}
				}
			case *ast.IncDecStmt:
				if sel, _ := selectsField(pass.Info, stmt.X, "engine", "State", stateFields); sel != nil {
					pass.Reportf(stmt.X.Pos(),
						"write to engine.State.words outside approved update sites (monotonic-value contract; use TryImprove/Reset)")
				}
			case *ast.CallExpr:
				if isBuiltin(pass.Info, stmt, "copy") && len(stmt.Args) > 0 {
					if sel, _ := selectsField(pass.Info, stmt.Args[0], "engine", "State", stateFields); sel != nil {
						pass.Reportf(stmt.Args[0].Pos(),
							"copy into engine.State.words outside approved update sites (monotonic-value contract)")
					}
				}
				if f := calleeFunc(pass.Info, stmt); f != nil && isAtomicStore(f) {
					for _, arg := range stmt.Args {
						un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
						if !ok {
							continue
						}
						if sel, _ := selectsField(pass.Info, un.X, "engine", "State", stateFields); sel != nil {
							pass.Reportf(arg.Pos(),
								"atomic write to engine.State.words outside approved update sites (monotonic-value contract; use TryImprove/Reset)")
						}
					}
				}
			}
			return true
		})
	})
}

func isAtomicStore(f *types.Func) bool {
	pkg := f.Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic" &&
		f.Type().(*types.Signature).Recv() == nil && atomicStoreFuncs[f.Name()]
}

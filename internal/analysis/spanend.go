package analysis

import (
	"go/ast"
	"go/types"
)

// SpanEnd guards the tracing contract from the observability layer: a
// span handed out by StartSpan / StartChild / Fork / StartRemote must be
// ended on every path out of the frame that created it. A span that is
// never ended is invisible — it records no event, its subtree never
// reaches the flight recorder, and a stitched trace shows a hole exactly
// where the interesting (usually failing) path ran. The classic bug is
// an early `return err` added after the span was started, ending the
// function but not the span.
//
// Sanctioned quiet shapes:
//
//   - `defer sp.End()` in the same frame — runs on every path including
//     panics;
//   - ownership transfer: the span is returned, stored into a field or
//     another binding, passed to another call, or captured by a function
//     literal (the receiver is then responsible for ending it);
//   - `sp.End()` reached on every control-flow path from the creation
//     site to the frame's exit (flow-tier all-paths query).
//
// A deliberately leaked span carries
// //cgvet:ignore spanend -- <who ends it and when>.
var SpanEnd = &Analyzer{
	Name:     "spanend",
	Doc:      "spans must be ended on every path: End() all-paths, defer End(), or ownership transfer",
	Severity: SevError,
	Run:      runSpanEnd,
}

// spanStartNames are the span-constructor method names of the obs layer.
var spanStartNames = map[string]bool{
	"StartSpan": true, "StartChild": true, "Fork": true, "StartRemote": true,
}

func runSpanEnd(pass *Pass) {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanFrame(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkSpanFrame(pass, lit.Body)
				}
				return true
			})
		}
	}
}

// checkSpanFrame analyzes one function body; nested literals are separate
// frames (their spans, their defers).
func checkSpanFrame(pass *Pass, body *ast.BlockStmt) {
	var g *flowGraph // built lazily: most frames start no spans
	walkSameFunc(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isSpanStart(pass.Info, call) {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			// A span assigned into a field/slot is stored — transferred.
			// `_ = StartSpan(...)` is pointless but ends nothing knowable;
			// the blank binding cannot be ended, so flag it.
			if !ok {
				return
			}
			pass.Reportf(as.Pos(),
				"span from %s is discarded with _ and can never be ended; bind it and call End()",
				calleeName(pass.Info, call))
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if spanDeferredEnd(pass, body, obj) || spanEscapes(pass, body, as, obj) {
			return
		}
		if g == nil {
			g = buildFlow(body, pass.Info)
		}
		if !g.allPathsFromHit(as, func(n ast.Node) bool {
			return nodeCallsEnd(pass, n, obj)
		}) {
			pass.Reportf(as.Pos(),
				"span from %s is not ended on every path; call %s.End() before each return, defer it, or hand the span off (//cgvet:ignore spanend -- <who ends it> if transferred invisibly)",
				calleeName(pass.Info, call), id.Name)
		}
	})
}

// isSpanStart reports whether the call is a span constructor: a method
// named StartSpan/StartChild/Fork/StartRemote returning a single *Span.
func isSpanStart(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !spanStartNames[sel.Sel.Name] {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	ptr, ok := sig.Results().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// spanDeferredEnd reports whether the frame holds `defer sp.End()` for
// obj — the all-paths (and panic-safe) shape.
func spanDeferredEnd(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	walkSameFunc(body, func(n ast.Node) {
		df, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return
		}
		sel, ok := df.Call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return
		}
		if identObj(pass, sel.X) == obj {
			found = true
		}
	})
	return found
}

// spanEscapes reports whether the span's ownership leaves this frame:
// returned, stored into another binding/field/slot, passed as a call
// argument, placed in a composite literal, sent on a channel, or captured
// by a nested function literal (which may end it later). Method calls on
// the span itself (SetAttr, Context, TraceID, ...) are not escapes.
func spanEscapes(pass *Pass, body *ast.BlockStmt, def *ast.AssignStmt, obj types.Object) bool {
	escaped := false
	refersToObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && (pass.Info.Uses[id] == obj || pass.Info.Defs[id] == obj)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped || n == def {
			return !escaped
		}
		switch m := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				if refersToObj(r) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range m.Rhs {
				if refersToObj(r) {
					escaped = true
				}
			}
		case *ast.CallExpr:
			for _, a := range m.Args {
				if refersToObj(a) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range m.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if refersToObj(e) {
					escaped = true
				}
			}
		case *ast.SendStmt:
			if refersToObj(m.Value) {
				escaped = true
			}
		case *ast.FuncLit:
			// Capture: if the literal references the span at all, it may
			// end it on a schedule this frame cannot see.
			ast.Inspect(m.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					escaped = true
				}
				return !escaped
			})
			return false
		}
		return !escaped
	})
	return escaped
}

// nodeCallsEnd reports whether n contains a call obj.End() outside any
// nested function literal (a closure's End runs on its own schedule, not
// on this path).
func nodeCallsEnd(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "End" && identObj(pass, sel.X) == obj {
			found = true
		}
		return !found
	})
	return found
}

// allPathsFromHit reports whether every path from the node after def to
// the frame's exit passes a node satisfying pred: the forward walk
// refuses to step through satisfying nodes — if exit is still reachable,
// some path misses pred.
func (g *flowGraph) allPathsFromHit(def ast.Node, pred func(ast.Node) bool) bool {
	site, ok := g.findNode(def)
	if !ok {
		return true // unreachable code: stay quiet
	}
	type visit struct {
		block *flowBlock
		idx   int
	}
	seen := make(map[*flowBlock]bool)
	stack := []visit{{site.block, site.idx + 1}}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blk, i := v.block, v.idx
		hit := false
		for ; i < len(blk.nodes); i++ {
			if pred(blk.nodes[i]) {
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		if blk == g.exit {
			return false
		}
		for _, s := range blk.succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, visit{s, 0})
			}
		}
	}
	return true
}

package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestGoLeakFixture(t *testing.T) {
	runFixture(t, "goleak", "commongraph/internal/engine", GoLeak)
}

// TestGoLeakScopedToLibraries proves commands are out of scope: the same
// leaky spawns under cmd/ die with the process and yield nothing.
func TestGoLeakScopedToLibraries(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "goleak"), "commongraph/cmd/cgquery")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{GoLeak}); len(diags) > 0 {
		t.Fatalf("command package flagged: %v", diags)
	}
}

func TestCtxFlowFixture(t *testing.T) {
	runFixture(t, "ctxflow", "commongraph/internal/core", CtxFlow)
}

// TestCtxFlowRootRuleScopedToLibraries proves only the root-context rule
// is path-scoped: under cmd/ minting Background() is legal, while the
// severed-flow and spin-loop rules keep firing.
func TestCtxFlowRootRuleScopedToLibraries(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "ctxflow"), "commongraph/cmd/cgquery")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{CtxFlow})
	if len(diags) == 0 {
		t.Fatal("flow rules should still fire in commands")
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "mints a root context") {
			t.Errorf("root-context rule fired in a command package: %s", d)
		}
	}
}

func TestAtomicGuardFixture(t *testing.T) {
	runFixture(t, "atomicguard", "commongraph/internal/engine", AtomicGuard)
}

func TestErrFlowFixture(t *testing.T) {
	runFixture(t, "errflow", "commongraph/internal/store", ErrFlow)
}

// TestErrFlowScopedToStoreLayer proves the durability rules only bind the
// persistence layer: the same drops under internal/graph yield nothing.
func TestErrFlowScopedToStoreLayer(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "errflow"), "commongraph/internal/graph")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{ErrFlow}); len(diags) > 0 {
		t.Fatalf("out-of-scope package flagged: %v", diags)
	}
}

func TestSpanEndFixture(t *testing.T) {
	runFixture(t, "spanend", "commongraph/internal/obs", SpanEnd)
}

// TestIgnoreHygieneFixture: bare ignores are findings, and — because a
// bare nameless ignore suppresses every analyzer on its line — the
// finding must bypass the suppression machinery to surface at all.
func TestIgnoreHygieneFixture(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "ignorehygiene"), "commongraph/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{IgnoreHygiene})
	if len(diags) != 2 {
		t.Fatalf("want 2 bare-ignore findings, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "bare //cgvet:ignore") {
			t.Errorf("unexpected message: %s", d.Message)
		}
	}
}

func TestSeverityDefaultsToError(t *testing.T) {
	for _, a := range All {
		switch a.Severity {
		case "", SevError, SevWarning:
		default:
			t.Errorf("analyzer %s has unknown severity %q", a.Name, a.Severity)
		}
	}
	if CtxFlow.Severity != SevWarning {
		t.Error("ctxflow should be a warning")
	}
	if GoLeak.Severity != SevError || ErrFlow.Severity != SevError {
		t.Error("goleak/errflow should be errors")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	d1 := Diagnostic{Analyzer: "goleak", Severity: SevError, Message: "m1"}
	d1.Pos.Filename = filepath.Join(root, "internal", "engine", "x.go")
	d1.Pos.Line = 10
	d2 := Diagnostic{Analyzer: "errflow", Severity: SevError, Message: "m2"}
	d2.Pos.Filename = filepath.Join(root, "store.go")
	d2.Pos.Line = 3

	path := filepath.Join(root, ".cgvet.baseline.json")
	if err := WriteBaseline(path, []Diagnostic{d1}, root); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 1 || b.Findings[0].File != "internal/engine/x.go" {
		t.Fatalf("baseline content wrong: %+v", b.Findings)
	}

	// d1 is accepted even from a different line; d2 is fresh.
	d1moved := d1
	d1moved.Pos.Line = 99
	fresh, accepted := b.Filter([]Diagnostic{d1moved, d2}, root)
	if len(accepted) != 1 || accepted[0].Message != "m1" {
		t.Fatalf("baselined finding not accepted: fresh=%v accepted=%v", fresh, accepted)
	}
	if len(fresh) != 1 || fresh[0].Message != "m2" {
		t.Fatalf("new finding not surfaced: fresh=%v", fresh)
	}
}

func TestLoadBaselineMissingIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 {
		t.Fatalf("missing baseline should be empty, got %+v", b.Findings)
	}
}

// TestSARIFShape pins the serialized envelope to what GitHub code
// scanning consumes: version, driver name, per-analyzer rules, and a
// result with a module-relative location.
func TestSARIFShape(t *testing.T) {
	root := t.TempDir()
	d := Diagnostic{Analyzer: "ctxflow", Severity: SevWarning, Message: "ctx severed"}
	d.Pos.Filename = filepath.Join(root, "watch.go")
	d.Pos.Line = 7
	d.Pos.Column = 2

	out, err := SARIF([]Diagnostic{d}, All, root)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "cgvet" {
		t.Fatalf("driver shape wrong: %+v", log.Runs)
	}
	if len(log.Runs[0].Tool.Driver.Rules) != len(All) {
		t.Errorf("rules = %d, want one per analyzer (%d)", len(log.Runs[0].Tool.Driver.Rules), len(All))
	}
	res := log.Runs[0].Results
	if len(res) != 1 || res[0].RuleID != "ctxflow" || res[0].Level != "warning" {
		t.Fatalf("result shape wrong: %+v", res)
	}
	loc := res[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "watch.go" || loc.Region.StartLine != 7 {
		t.Errorf("location wrong: %+v", loc)
	}
}

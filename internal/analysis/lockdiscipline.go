package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDiscipline guards the §5 parallel executors: inside a `go func`
// closure, a write to a variable captured from the enclosing scope (or to
// one of its fields/elements) is only safe when a shared sync.Mutex or
// RWMutex is held — a Lock (or Lock + defer Unlock) must dominate the
// write. The analysis is a conservative statement walk: locks acquired
// inside a branch do not count after the branch joins, and a mutex local
// to the goroutine guards nothing. Intentionally index-disjoint writes
// (one slice slot per goroutine) are false positives by design and are
// suppressed per-site with //cgvet:ignore lockdiscipline.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "flag unsynchronized writes to captured variables inside go closures",
	Run:  runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ls := &lockWalk{pass: pass, lit: lit}
			ls.walkStmt(lit.Body, map[types.Object]bool{})
			// Keep descending: nested go statements are visited (and
			// analyzed as their own closures) by this same Inspect.
			return true
		})
	}
}

type lockWalk struct {
	pass *Pass
	lit  *ast.FuncLit
}

// captured resolves id to a variable declared outside the closure — the
// shared state the goroutine can race on. Parameters and locals of the
// closure (declared within its source range) are excluded, struct fields
// resolve through their base variable instead.
func (ls *lockWalk) captured(id *ast.Ident) *types.Var {
	v, ok := ls.pass.Info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Pos() >= ls.lit.Pos() && v.Pos() <= ls.lit.End() {
		return nil
	}
	return v
}

const (
	lockOp = iota + 1
	unlockOp
)

// mutexOp classifies a call as Lock/RLock or Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex and returns the guard's root object. Only a
// guard captured from outside the goroutine counts: a mutex created
// inside the closure cannot order the closure against anyone else.
func (ls *lockWalk) mutexOp(call *ast.CallExpr) (types.Object, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, 0
	}
	f, ok := ls.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return nil, 0
	}
	var kind int
	switch f.Name() {
	case "Lock", "RLock":
		kind = lockOp
	case "Unlock", "RUnlock":
		kind = unlockOp
	default:
		return nil, 0
	}
	root := rootIdent(sel.X)
	if root == nil {
		return nil, 0
	}
	obj := ls.pass.Info.Uses[root]
	if obj == nil {
		return nil, 0
	}
	if kind == lockOp && ls.captured(root) == nil {
		return nil, 0
	}
	return obj, kind
}

func copyHeld(held map[types.Object]bool) map[types.Object]bool {
	c := make(map[types.Object]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// walkStmt threads the held-mutex set through a statement in source
// order. Branch bodies get a copy, so a Lock inside an if/for does not
// leak past the join — "held" always means "a Lock dominates this point".
func (ls *lockWalk) walkStmt(s ast.Stmt, held map[types.Object]bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if obj, kind := ls.mutexOp(call); obj != nil {
				if kind == lockOp {
					held[obj] = true
				} else {
					delete(held, obj)
				}
				return
			}
		}
		ls.walkExprFuncLits(st.X, held)
	case *ast.DeferStmt:
		if obj, kind := ls.mutexOp(st.Call); obj != nil && kind == unlockOp {
			return // defer Unlock: the lock stays held for the remainder
		}
		ls.walkExprFuncLits(st.Call, held)
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			ls.checkWrite(lhs, held)
		}
		for _, rhs := range st.Rhs {
			ls.walkExprFuncLits(rhs, held)
		}
	case *ast.IncDecStmt:
		ls.checkWrite(st.X, held)
	case *ast.BlockStmt:
		for _, inner := range st.List {
			ls.walkStmt(inner, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			ls.walkStmt(st.Init, held)
		}
		ls.walkStmt(st.Body, copyHeld(held))
		if st.Else != nil {
			ls.walkStmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			ls.walkStmt(st.Init, held)
		}
		ls.walkStmt(st.Body, copyHeld(held))
	case *ast.RangeStmt:
		if st.Tok == token.ASSIGN {
			if st.Key != nil {
				ls.checkWrite(st.Key, held)
			}
			if st.Value != nil {
				ls.checkWrite(st.Value, held)
			}
		}
		ls.walkStmt(st.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			ls.walkStmt(st.Init, held)
		}
		ls.walkClauses(st.Body, held)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			ls.walkStmt(st.Init, held)
		}
		ls.walkClauses(st.Body, held)
	case *ast.SelectStmt:
		ls.walkClauses(st.Body, held)
	case *ast.LabeledStmt:
		ls.walkStmt(st.Stmt, held)
	case *ast.GoStmt:
		// A nested goroutine is its own closure with its own (empty)
		// held set; the enclosing Inspect analyzes it separately.
	}
}

func (ls *lockWalk) walkClauses(body *ast.BlockStmt, held map[types.Object]bool) {
	for _, clause := range body.List {
		branch := copyHeld(held)
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, inner := range cl.Body {
				ls.walkStmt(inner, branch)
			}
		case *ast.CommClause:
			if cl.Comm != nil {
				ls.walkStmt(cl.Comm, branch)
			}
			for _, inner := range cl.Body {
				ls.walkStmt(inner, branch)
			}
		}
	}
}

// walkExprFuncLits walks the bodies of function literals nested in an
// expression (callbacks invoked from the goroutine) with the current held
// set, so writes inside e.g. a Neighbors callback are still checked.
func (ls *lockWalk) walkExprFuncLits(e ast.Expr, held map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok {
			ls.walkStmt(inner.Body, copyHeld(held))
			return false
		}
		return true
	})
}

func (ls *lockWalk) checkWrite(lhs ast.Expr, held map[types.Object]bool) {
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	v := ls.captured(root)
	if v == nil {
		return
	}
	if len(held) > 0 {
		return
	}
	ls.pass.Reportf(lhs.Pos(),
		"write to captured variable %q inside go closure without holding a captured sync.Mutex", v.Name())
}

package analysis

import (
	"go/ast"
	"go/types"
)

// GoPanic enforces the executor layer's panic-containment contract: every
// goroutine internal/core spawns must install a recovery wrapper as its
// first line of defence, so a panicking vertex program or schedule walk
// becomes a *core.PanicError instead of taking the whole process down
// (DESIGN.md "Failure semantics"). A `go` statement there must launch a
// function literal whose top-level statements include either
// `defer recoverToError(&err)` or a deferred closure that calls the
// recover builtin; a bare `go foo()` cannot be verified and is flagged
// too. Scoped to internal/core — the engine's worker goroutines only run
// trusted bitset/CAS loops, and containing a panic there would hide
// engine bugs rather than isolate user code.
var GoPanic = &Analyzer{
	Name: "gopanic",
	Doc:  "require a recovery wrapper in every goroutine internal/core spawns",
	Run:  runGoPanic,
}

func runGoPanic(pass *Pass) {
	if internalLeaf(pass.Path) != "core" {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				pass.Reportf(g.Pos(),
					"goroutine body is not a function literal; spawn a closure with `defer recoverToError(&err)` so a panic cannot crash the process")
				return true
			}
			if !installsRecovery(pass.Info, lit.Body) {
				pass.Reportf(g.Pos(),
					"goroutine installs no recovery wrapper; add `defer recoverToError(&err)` (or a deferred recover()) as a top-level statement")
			}
			return true
		})
	}
}

// installsRecovery reports whether a top-level statement of the goroutine
// body defers panic recovery: either a call to a function named
// recoverToError (the executor's helper) or a function literal that calls
// the recover builtin somewhere inside.
func installsRecovery(info *types.Info, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		d, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		switch fun := ast.Unparen(d.Call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "recoverToError" {
				return true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "recoverToError" {
				return true
			}
		case *ast.FuncLit:
			if callsRecover(info, fun.Body) {
				return true
			}
		}
	}
	return false
}

// callsRecover reports whether the block calls the recover builtin.
func callsRecover(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltin(info, call, "recover") {
			found = true
			return false
		}
		return true
	})
	return found
}

package analysis

// The flow tier: a per-function control-flow graph with just enough
// def-use reasoning for the semantic analyzers (goleak, ctxflow,
// atomicguard, errflow). The module is dependency-free by design, so this
// is a self-contained SSA-lite built on go/ast + go/types rather than
// golang.org/x/tools/go/ssa: basic blocks hold the function's statements
// (and branch guards) in execution order, edges follow every structural
// construct, and value questions ("does this error assignment reach a
// read before it is overwritten?") are answered by walking the graph with
// writes acting as kills — a reaching-definitions query over the one
// definition the caller cares about.
//
// Approximations, all deliberate and conservative for our analyzers:
//
//   - goto edges go straight to the synthetic exit (treating the jump as
//     "leaves every enclosing loop"), which can only under-report loops.
//   - Nested function literals are opaque: their bodies are separate
//     frames, but an object referenced inside one counts as *used* for
//     value-reach purposes (a closure may run later).
//   - panic/os.Exit/runtime.Goexit/log.Fatal terminate the block like a
//     return.

import (
	"go/ast"
	"go/types"
)

// flowBlock is one basic block: nodes execute in order, then control
// transfers to one of succs (none for the synthetic exit).
type flowBlock struct {
	nodes []ast.Node
	succs []*flowBlock
}

// flowGraph is the CFG of a single function body.
type flowGraph struct {
	entry  *flowBlock
	exit   *flowBlock
	blocks []*flowBlock
	// loopExits records, per for/range statement, whether some statement
	// inside it structurally leaves the loop (break bound to it, labeled
	// break of an enclosing loop, return, goto, or a terminating call).
	// A `for {}` absent from this map spins forever once entered.
	loopExits map[ast.Stmt]bool
	info      *types.Info
}

// flowBuilder threads the construction state: the current (possibly
// unreachable) block, and the stacks break/continue resolve against.
type flowBuilder struct {
	g   *flowGraph
	cur *flowBlock // nil while statements are unreachable

	// breakables is the innermost-last stack of statements an unlabeled
	// break can bind to; loops additionally accept continue.
	breakables []breakFrame
	labels     map[string]ast.Stmt // label -> labeled for/range/switch/select
}

type breakFrame struct {
	stmt  ast.Stmt
	after *flowBlock // where break jumps
	head  *flowBlock // where continue jumps (loops only)
	loop  bool
}

// buildFlow constructs the CFG for one function body.
func buildFlow(body *ast.BlockStmt, info *types.Info) *flowGraph {
	g := &flowGraph{loopExits: make(map[ast.Stmt]bool), info: info}
	b := &flowBuilder{g: g, labels: make(map[string]ast.Stmt)}
	g.entry = b.newBlock()
	g.exit = &flowBlock{}
	g.blocks = append(g.blocks, g.exit)
	b.cur = g.entry
	b.stmts(body.List)
	if b.cur != nil { // fall off the end: implicit return
		b.edge(b.cur, g.exit)
	}
	return g
}

func (b *flowBuilder) newBlock() *flowBlock {
	blk := &flowBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *flowBuilder) edge(from, to *flowBlock) {
	from.succs = append(from.succs, to)
}

// add records a node in the current block (no-op while unreachable).
func (b *flowBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

// markLoopExits flags every loop on the breakables stack at or above
// depth as having a structural way out.
func (b *flowBuilder) markLoopExits(fromDepth int) {
	for i := fromDepth; i < len(b.breakables); i++ {
		if b.breakables[i].loop {
			b.g.loopExits[b.breakables[i].stmt] = true
		}
	}
}

func (b *flowBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *flowBuilder) stmt(s ast.Stmt) {
	if b.cur == nil {
		// Unreachable code still needs label collection for goto targets,
		// but nothing here can execute; skip it wholesale.
		return
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmts(st.List)

	case *ast.IfStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Cond)
		condBlk := b.cur
		after := b.newBlock()
		b.cur = b.newBlock()
		b.edge(condBlk, b.cur)
		b.stmt(st.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if st.Else != nil {
			b.cur = b.newBlock()
			b.edge(condBlk, b.cur)
			b.stmt(st.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		after := b.newBlock()
		b.cur = head
		if st.Cond != nil {
			b.add(st.Cond)
			b.edge(head, after)
			b.g.loopExits[st] = true // condition can become false
		}
		bodyBlk := b.newBlock()
		b.edge(head, bodyBlk)
		b.cur = bodyBlk
		b.breakables = append(b.breakables, breakFrame{stmt: st, after: after, head: head, loop: true})
		b.stmt(st.Body)
		b.breakables = b.breakables[:len(b.breakables)-1]
		if b.cur != nil {
			if st.Post != nil {
				b.add(st.Post)
			}
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		b.add(st.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		after := b.newBlock()
		b.edge(head, after) // ranges end (channel ranges end on close; goleak handles blocking separately)
		b.g.loopExits[st] = true
		bodyBlk := b.newBlock()
		b.edge(head, bodyBlk)
		b.cur = bodyBlk
		b.breakables = append(b.breakables, breakFrame{stmt: st, after: after, head: head, loop: true})
		b.stmt(st.Body)
		b.breakables = b.breakables[:len(b.breakables)-1]
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.branching(st)

	case *ast.LabeledStmt:
		b.labels[st.Label.Name] = st.Stmt
		b.stmt(st.Stmt)

	case *ast.ReturnStmt:
		b.add(st)
		b.markLoopExits(0)
		b.edge(b.cur, b.g.exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(st)
		b.branch(st)

	case *ast.ExprStmt:
		b.add(st)
		if call, ok := st.X.(*ast.CallExpr); ok && b.terminates(call) {
			b.markLoopExits(0)
			b.edge(b.cur, b.g.exit)
			b.cur = nil
		}

	default:
		// Assignments, declarations, defers, go statements, sends, inc/dec:
		// straight-line nodes. Defer and go bodies are separate frames.
		b.add(s)
	}
}

// branching lowers switch/type-switch/select: every clause body is an
// alternative between the guard block and the join.
func (b *flowBuilder) branching(s ast.Stmt) {
	var clauses []ast.Stmt
	exhaustive := false // true when some clause always runs (default present)
	isSelect := false
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		if st.Tag != nil {
			b.add(st.Tag)
		}
		clauses = st.Body.List
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Assign)
		clauses = st.Body.List
	case *ast.SelectStmt:
		clauses = st.Body.List
		// A select with no default blocks until a case fires; control
		// leaves only through a case, so there is no skip edge.
		isSelect = true
	}
	guard := b.cur
	after := b.newBlock()
	b.breakables = append(b.breakables, breakFrame{stmt: s, after: after})
	for _, c := range clauses {
		b.cur = b.newBlock()
		b.edge(guard, b.cur)
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				b.add(e)
			}
			if cc.List == nil {
				exhaustive = true
			}
			b.stmts(cc.Body)
		case *ast.CommClause:
			if cc.Comm != nil {
				b.add(cc.Comm)
			} else {
				exhaustive = true
			}
			b.stmts(cc.Body)
		}
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.breakables = b.breakables[:len(b.breakables)-1]
	if !exhaustive && !isSelect {
		b.edge(guard, after) // no case matched
	}
	b.cur = after
}

// branch lowers break/continue/goto/fallthrough.
func (b *flowBuilder) branch(st *ast.BranchStmt) {
	switch st.Tok.String() {
	case "break":
		depth := len(b.breakables) - 1
		if st.Label != nil {
			target := b.labels[st.Label.Name]
			for i := range b.breakables {
				if b.breakables[i].stmt == target {
					depth = i
					break
				}
			}
		}
		if depth >= 0 && depth < len(b.breakables) {
			b.markLoopExits(depth)
			b.edge(b.cur, b.breakables[depth].after)
		} else {
			b.edge(b.cur, b.g.exit)
		}
		b.cur = nil
	case "continue":
		depth := -1
		for i := len(b.breakables) - 1; i >= 0; i-- {
			if b.breakables[i].loop && (st.Label == nil || b.breakables[i].stmt == b.labels[st.Label.Name]) {
				depth = i
				break
			}
		}
		if depth >= 0 {
			b.edge(b.cur, b.breakables[depth].head)
		} else {
			b.edge(b.cur, b.g.exit)
		}
		b.cur = nil
	case "goto":
		// Conservative: a goto leaves every enclosing loop.
		b.markLoopExits(0)
		b.edge(b.cur, b.g.exit)
		b.cur = nil
	case "fallthrough":
		// The next clause's block is not linked here; treating fallthrough
		// as a join edge keeps reachability sound for our queries.
	}
}

// terminates reports whether the call never returns: the builtin panic
// and the well-known process/goroutine terminators.
func (b *flowBuilder) terminates(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			_, isBuiltin := b.g.info.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
	case *ast.SelectorExpr:
		f, ok := b.g.info.Uses[fun.Sel].(*types.Func)
		if !ok || f.Pkg() == nil {
			return false
		}
		switch f.Pkg().Path() + "." + f.Name() {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// --- queries -------------------------------------------------------------

// nodeSite locates a recorded node inside the graph.
type nodeSite struct {
	block *flowBlock
	idx   int
}

// findNode locates the block slot holding n (or containing n's position,
// when n is nested inside a recorded statement).
func (g *flowGraph) findNode(n ast.Node) (nodeSite, bool) {
	for _, blk := range g.blocks {
		for i, cand := range blk.nodes {
			if cand == n {
				return nodeSite{blk, i}, true
			}
		}
	}
	// Fall back to position containment (n nested in a recorded stmt).
	for _, blk := range g.blocks {
		for i, cand := range blk.nodes {
			if cand.Pos() <= n.Pos() && n.End() <= cand.End() {
				return nodeSite{blk, i}, true
			}
		}
	}
	return nodeSite{}, false
}

// valueReaches reports whether the value defined for obj at def is ever
// read: it walks forward from def, and a node that rewrites obj without
// reading it first kills the path. Reads inside nested function literals
// count (closures may run later); the defining node's own later parts
// (e.g. an if-init's condition) are separate nodes and are seen normally.
func (g *flowGraph) valueReaches(def ast.Node, obj types.Object) bool {
	site, ok := g.findNode(def)
	if !ok {
		return true // not in the graph (unreachable code): stay quiet
	}
	type visit struct {
		block *flowBlock
		idx   int
	}
	seen := make(map[*flowBlock]bool)
	stack := []visit{{site.block, site.idx + 1}}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blk, i := v.block, v.idx
		killed := false
		for ; i < len(blk.nodes); i++ {
			n := blk.nodes[i]
			if g.readsObj(n, obj) {
				return true
			}
			if writesObj(g.info, n, obj) {
				killed = true
				break
			}
		}
		if killed {
			continue
		}
		for _, s := range blk.succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, visit{s, 0})
			}
		}
	}
	return false
}

// readsObj reports whether n reads obj: any identifier resolving to obj
// that is not purely an assignment target. Nested function literals are
// scanned too — capturing the value is a read.
func (g *flowGraph) readsObj(n ast.Node, obj types.Object) bool {
	writes := writeTargets(n)
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && g.info.Uses[id] == obj && !writes[id] {
			found = true
		}
		return !found
	})
	return found
}

// writesObj reports whether n assigns obj as a plain target (the kill in
// the reaching-definitions walk).
func writesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				return true
			}
		}
	}
	return false
}

// writeTargets collects the plain identifiers n assigns to (so readsObj
// does not mistake `err = ...` for a read of err).
func writeTargets(n ast.Node) map[*ast.Ident]bool {
	targets := make(map[*ast.Ident]bool)
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return targets
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			targets[id] = true
		}
	}
	return targets
}

// allPathsHit reports whether every entry→exit path passes a node
// satisfying pred before reaching exit: BFS that refuses to step through
// satisfying nodes — if exit is still reachable, some path misses pred.
func (g *flowGraph) allPathsHit(pred func(ast.Node) bool) bool {
	seen := map[*flowBlock]bool{g.entry: true}
	stack := []*flowBlock{g.entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		hit := false
		for _, n := range blk.nodes {
			if pred(n) {
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		if blk == g.exit {
			return false
		}
		for _, s := range blk.succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}

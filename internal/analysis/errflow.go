package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrFlow guards the durability contract from PR 5: in the persistence
// layer (internal/store and the root package's GraphStore/Ingestor
// plumbing), an error produced by a write, sync, truncate, flush, or
// close must *go* somewhere — a return, the WAL's poison state, a
// rollback, or a metrics counter. A dropped durability error is how a
// store silently diverges from its disk; replaying a WAL whose append
// "succeeded" into a store whose fsync failed is exactly the corruption
// the recovery tests exist to prevent.
//
// Flagged shapes:
//
//   - a risky call used as a bare statement (`f.Sync()`), unless it is
//     cleanup inside an error branch that already returns the original
//     error (the `if err != nil { f.Close(); return err }` idiom);
//   - a risky call assigned to `_`, same exemption;
//   - a risky call assigned to a variable whose value is overwritten or
//     falls out of scope before anything reads it (flow-tier
//     reaching-definitions query);
//   - `defer f.Close()` on a file opened for writing with no explicit
//     checked Close on the success path — the deferred error evaporates.
//     Read-only handles (os.Open) may defer-close freely.
//
// A deliberately dropped error — e.g. closing a file whose contents are
// already fsynced and which is about to be replaced — carries
// //cgvet:ignore errflow -- <why the error does not matter>.
var ErrFlow = &Analyzer{
	Name:     "errflow",
	Doc:      "durability errors in the store layer must reach a return, poison/rollback path, or metric",
	Severity: SevError,
	Run:      runErrFlow,
}

// riskyNames are the method names whose error results carry durability
// information.
var riskyNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true, "Sync": true,
	"Truncate": true, "Flush": true, "Close": true, "Commit": true,
}

// riskyOSFuncs are package-level os functions in the same class.
var riskyOSFuncs = map[string]bool{"WriteFile": true, "Rename": true, "Remove": true}

func runErrFlow(pass *Pass) {
	if !errflowScope(pass.Path) {
		return
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkErrFlowFrame(pass, fd.Type, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkErrFlowFrame(pass, lit.Type, lit.Body)
				}
				return true
			})
		}
	}
}

// errflowScope: internal/store plus the module's root package (store.go,
// ingest.go and friends live there). Commands own their exit policy.
func errflowScope(path string) bool {
	if internalLeaf(path) == "store" {
		return true
	}
	return !strings.Contains(path, "/") // module root package
}

// checkErrFlowFrame analyzes one function body (nested literals are
// separate frames — their defers and opens are their own).
func checkErrFlowFrame(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	g := buildFlow(body, pass.Info)
	written := writableHandles(pass, body)
	checked := checkedCloses(pass, body)
	named := namedResultObjs(pass, ftype)
	walkSameFunc(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok || !isRiskyCall(pass.Info, call) {
				return
			}
			if inErrBranch(pass.Info, body, st) {
				return // cleanup; the original error is already on its way out
			}
			pass.Reportf(st.Pos(),
				"error from %s is silently dropped; return it, feed the poison/rollback path, or count it in a metric (//cgvet:ignore errflow -- <why it cannot matter> if truly benign)",
				calleeName(pass.Info, call))
		case *ast.AssignStmt:
			checkErrAssign(pass, g, body, st, named)
		case *ast.DeferStmt:
			checkDeferredClose(pass, st, written, checked)
		}
	})
}

// checkErrAssign handles `_ = risky()` and `err := risky()` forms.
func checkErrAssign(pass *Pass, g *flowGraph, body *ast.BlockStmt, as *ast.AssignStmt, named map[types.Object]bool) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !isRiskyCall(pass.Info, call) {
		return
	}
	// The error result is the last one; with a single-result call that is
	// Lhs[0], with (n, error) it is the final Lhs.
	errLhs := as.Lhs[len(as.Lhs)-1]
	id, ok := errLhs.(*ast.Ident)
	if !ok {
		return // assigned into a field/slot: stored is consulted enough
	}
	if id.Name == "_" {
		if inErrBranch(pass.Info, body, as) {
			return
		}
		pass.Reportf(as.Pos(),
			"error from %s is discarded with _; return it, feed the poison/rollback path, or count it in a metric",
			calleeName(pass.Info, call))
		return
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		obj = pass.Info.Uses[id]
	}
	if obj == nil || named[obj] {
		return // assigning a named result: a naked return still carries it
	}
	if !g.valueReaches(as, obj) {
		pass.Reportf(as.Pos(),
			"error from %s is assigned to %s but never consulted before being overwritten or dropped",
			calleeName(pass.Info, call), id.Name)
	}
}

// checkDeferredClose flags `defer f.Close()` on handles opened for
// writing, unless an explicit checked Close exists in the same frame
// (the defer is then redundant panic-safety, not the only close).
func checkDeferredClose(pass *Pass, st *ast.DeferStmt, written, checked map[types.Object]bool) {
	sel, ok := st.Call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" || len(st.Call.Args) != 0 {
		return
	}
	obj := identObj(pass, sel.X)
	if obj == nil || !written[obj] || checked[obj] {
		return
	}
	pass.Reportf(st.Pos(),
		"deferred Close on %s loses the close error of a written file; close explicitly on the success path and check it",
		obj.Name())
}

// writableHandles collects objects bound from os.Create / os.OpenFile in
// this frame — the handles whose Close error is load-bearing.
func writableHandles(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	handles := make(map[types.Object]bool)
	walkSameFunc(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "os" {
			return
		}
		if f.Name() != "Create" && f.Name() != "OpenFile" {
			return
		}
		if obj := identObj(pass, as.Lhs[0]); obj != nil {
			handles[obj] = true
		}
	})
	return handles
}

// checkedCloses collects objects that have an explicit error-consuming
// Close somewhere in the frame (`err := f.Close()`, `if err := f.Close();
// ...`, `return f.Close()`).
func checkedCloses(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	checked := make(map[types.Object]bool)
	record := func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return
		}
		if obj := identObj(pass, sel.X); obj != nil {
			checked[obj] = true
		}
	}
	walkSameFunc(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					// `_ = f.Close()` is not a check.
					if id, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					record(call)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
					record(call)
				}
			}
		}
	})
	return checked
}

// isRiskyCall reports whether the call's error result carries durability
// information: a method from riskyNames or an os-package function from
// riskyOSFuncs, in either case actually returning an error.
func isRiskyCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return false
	}
	if sig.Recv() != nil {
		return riskyNames[f.Name()]
	}
	return f.Pkg() != nil && f.Pkg().Path() == "os" && riskyOSFuncs[f.Name()]
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

// inErrBranch reports whether node sits inside an if (or else of an if)
// whose condition consults an error value — the error-path-cleanup shape
// where the original error is already being propagated.
func inErrBranch(info *types.Info, body *ast.BlockStmt, node ast.Node) bool {
	var stack []ast.Node
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		if found {
			return false
		}
		if m == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if m == node {
			for _, anc := range stack {
				if ifs, ok := anc.(*ast.IfStmt); ok && condConsultsError(info, ifs.Cond) {
					found = true
					break
				}
			}
			return false
		}
		stack = append(stack, m)
		return true
	})
	return found
}

// condConsultsError reports whether any subexpression of cond has type
// error (`err != nil`, `errors.Is(err, ...)`, `w.poisoned != nil`).
func condConsultsError(info *types.Info, cond ast.Expr) bool {
	errType := types.Universe.Lookup("error").Type()
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if tv, ok := info.Types[e]; ok && tv.Type != nil && types.Identical(tv.Type, errType) {
				found = true
			}
		}
		return !found
	})
	return found
}

// namedResultObjs collects the function's named result variables; a
// durability error assigned into one rides out on any return.
func namedResultObjs(pass *Pass, ftype *ast.FuncType) map[types.Object]bool {
	named := make(map[types.Object]bool)
	if ftype == nil || ftype.Results == nil {
		return named
	}
	for _, field := range ftype.Results.List {
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				named[obj] = true
			}
		}
	}
	return named
}

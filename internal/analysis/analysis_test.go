package analysis

import (
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe extracts the expectation regex from a `// want `+"`rx`"+“ comment.
var wantRe = regexp.MustCompile("want\\s+`([^`]+)`")

type wantKey struct {
	file string
	line int
}

// collectWants scans a fixture package for // want `regex` comments,
// keyed by position.
func collectWants(pkg *Package) map[wantKey][]*regexp.Regexp {
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				// A comment may hold several expectations: want `a` want `b`
				// (analyzers can report twice on one line).
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					k := wantKey{file: pos.Filename, line: pos.Line}
					wants[k] = append(wants[k], regexp.MustCompile(m[1]))
				}
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<dir> under the synthetic import path and
// checks the analyzer's diagnostics against the fixture's want comments:
// every diagnostic must match a want on its line, every want must fire.
func runFixture(t *testing.T, dir, asPath string, a *Analyzer) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", dir), asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	wants := collectWants(pkg)
	matched := make(map[wantKey][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		k := wantKey{file: d.Pos.Filename, line: d.Pos.Line}
		ok := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(k.file), k.line, d.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("missing diagnostic at %s:%d matching %q",
					filepath.Base(k.file), k.line, re.String())
			}
		}
	}
}

func TestCSRImmutableFixture(t *testing.T) {
	runFixture(t, "csrimmutable", "commongraph/internal/graph", CSRImmutable)
}

func TestLockDisciplineFixture(t *testing.T) {
	runFixture(t, "lockdiscipline", "commongraph/internal/core", LockDiscipline)
}

func TestStateWriteFixture(t *testing.T) {
	runFixture(t, "statewrite", "commongraph/internal/engine", StateWrite)
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, "determinism", "commongraph/internal/graph", Determinism)
}

func TestGoPanicFixture(t *testing.T) {
	runFixture(t, "gopanic", "commongraph/internal/core", GoPanic)
}

// TestGoPanicScopedToCore proves the analyzer keeps out of other layers:
// the same unprotected goroutines under internal/engine yield nothing.
func TestGoPanicScopedToCore(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "gopanic"), "commongraph/internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{GoPanic}); len(diags) > 0 {
		t.Fatalf("out-of-scope package flagged: %v", diags)
	}
}

func TestObsDisciplineFixture(t *testing.T) {
	runFixture(t, "obsdiscipline", "commongraph/internal/core", ObsDiscipline)
}

func TestDeprecatedAPIFixture(t *testing.T) {
	runFixture(t, "deprecatedapi", "app", DeprecatedAPI)
}

// TestDeprecatedAPISkipsDefiningPackage proves the shims' own package may
// keep referencing them: the consumer fixture loaded under a path ending
// in /commongraph yields zero diagnostics.
func TestDeprecatedAPISkipsDefiningPackage(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "deprecatedapi", "commongraph"), "x/commongraph")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{DeprecatedAPI}); len(diags) > 0 {
		t.Fatalf("defining package flagged: %v", diags)
	}
}

// TestObsDisciplineScopedToLibraries proves commands and examples keep
// their terminal: the same printing under cmd/ and examples/ paths yields
// zero diagnostics.
func TestObsDisciplineScopedToLibraries(t *testing.T) {
	for _, asPath := range []string{"commongraph/cmd/cgquery", "commongraph/examples/monitor"} {
		pkg, err := LoadDir(filepath.Join("testdata", "src", "obsdiscipline"), asPath)
		if err != nil {
			t.Fatal(err)
		}
		if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{ObsDiscipline}); len(diags) > 0 {
			t.Fatalf("human-facing package %s flagged: %v", asPath, diags)
		}
	}
}

// TestDeterminismAllowlistedPath proves the same constructs are legal in
// the harness layer: the identical rand/time usage under internal/bench
// yields zero diagnostics.
func TestDeterminismAllowlistedPath(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "determinism_allowed"), "commongraph/internal/bench")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Determinism}); len(diags) > 0 {
		t.Fatalf("allowlisted package flagged: %v", diags)
	}
}

// TestModuleIsClean runs the full suite over the real module: the tree
// must satisfy its own invariants (the CI gate `go run ./cmd/cgvet ./...`
// relies on exactly this property).
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module (and stdlib) from source")
	}
	pkgs, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags := RunAnalyzers(pkgs, All)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestByName(t *testing.T) {
	for _, a := range All {
		if ByName(a.Name) != a {
			t.Fatalf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("ByName of unknown analyzer should be nil")
	}
}

// TestSuppressionScopes pins down the directive grammar: named analyzer,
// bare (all analyzers), and the comment-above form.
func TestSuppressionScopes(t *testing.T) {
	sup := suppressions{
		"f.go": {
			10: {"lockdiscipline": true},
			20: {"": true},
		},
	}
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{10, "lockdiscipline", true},
		{11, "lockdiscipline", true}, // comment-above form
		{12, "lockdiscipline", false},
		{10, "statewrite", false},
		{20, "anything", true},
		{21, "anything", true},
	}
	for _, c := range cases {
		d := Diagnostic{Analyzer: c.analyzer}
		d.Pos.Filename = "f.go"
		d.Pos.Line = c.line
		if got := sup.suppresses(d); got != c.want {
			t.Errorf("line %d analyzer %s: suppressed=%v want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

func TestCloseCheckFixture(t *testing.T) {
	runFixture(t, "closecheck", "commongraph/internal/store", CloseCheck)
}

// TestCloseCheckScopedToLibraries proves short-lived commands are out of
// scope: the same leaks under a cmd/ path yield zero diagnostics.
func TestCloseCheckScopedToLibraries(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "closecheck"), "commongraph/cmd/cgquery")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{CloseCheck}); len(diags) > 0 {
		t.Fatalf("command package flagged: %v", diags)
	}
}

package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is the checked-in ledger of accepted findings: CI fails only
// on findings *not* in the ledger, so a new analyzer (or a newly
// sharpened one) can land without blocking on a flag day. Entries are
// keyed by analyzer + module-relative file + message — deliberately not
// by line, so unrelated edits above a baselined site do not resurrect
// it. Every entry is a debt: the PR adding one justifies it, and the
// repo's goal state is an empty ledger.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-relative, slash-separated
	Message  string `json:"message"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline, not an error (the common case for a clean repo).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	return &b, nil
}

// Filter splits diagnostics into the ones absent from the baseline (new,
// actionable) and the ones it accepts. root anchors module-relative file
// keys.
func (b *Baseline) Filter(diags []Diagnostic, root string) (fresh, accepted []Diagnostic) {
	known := make(map[string]bool, len(b.Findings))
	for _, e := range b.Findings {
		known[e.key()] = true
	}
	for _, d := range diags {
		if known[diagEntry(d, root).key()] {
			accepted = append(accepted, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, accepted
}

// WriteBaseline persists the given findings as the new ledger, sorted
// and deduplicated for stable diffs.
func WriteBaseline(path string, diags []Diagnostic, root string) error {
	seen := make(map[string]bool)
	b := Baseline{Version: 1, Findings: []BaselineEntry{}}
	for _, d := range diags {
		e := diagEntry(d, root)
		if !seen[e.key()] {
			seen[e.key()] = true
			b.Findings = append(b.Findings, e)
		}
	}
	sort.Slice(b.Findings, func(i, j int) bool { return b.Findings[i].key() < b.Findings[j].key() })
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func diagEntry(d Diagnostic, root string) BaselineEntry {
	return BaselineEntry{
		Analyzer: d.Analyzer,
		File:     moduleRel(root, d.Pos.Filename),
		Message:  d.Message,
	}
}

// moduleRel renders filename relative to the module root with forward
// slashes — the stable, machine-independent spelling baselines and SARIF
// share.
func moduleRel(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

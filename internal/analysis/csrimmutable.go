package analysis

import (
	"go/ast"
)

// CSRImmutable enforces the paper's mutation-free representation (§4.1,
// idea 3): once constructed, a graph.CSR is never written again. Any
// assignment, element write, append, or copy targeting a CSR backing
// field (offsets, targets, weights, n) outside the constructors in
// internal/graph is a contract violation — overlays, not mutation, are
// how snapshots differ.
var CSRImmutable = &Analyzer{
	Name: "csrimmutable",
	Doc:  "flag writes to graph.CSR backing arrays outside its constructors",
	Run:  runCSRImmutable,
}

// csrConstructors are the only functions allowed to populate a CSR.
var csrConstructors = map[string]bool{
	"NewCSR":        true,
	"NewReverseCSR": true,
	"NewCSRParts":   true,
	"buildCSR":      true,
}

var csrFields = map[string]bool{
	"n":       true,
	"offsets": true,
	"targets": true,
	"weights": true,
}

func runCSRImmutable(pass *Pass) {
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		if fd.Recv == nil && csrConstructors[fd.Name.Name] {
			return // constructor: population writes are the point
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range stmt.Lhs {
					sel, f := selectsField(pass.Info, lhs, "graph", "CSR", csrFields)
					if sel == nil {
						continue
					}
					// `c.f = append(c.f, ...)` is reported once, as the
					// append; don't double-report the rebind.
					if len(stmt.Lhs) == len(stmt.Rhs) {
						if call, ok := ast.Unparen(stmt.Rhs[i]).(*ast.CallExpr); ok &&
							isBuiltin(pass.Info, call, "append") && len(call.Args) > 0 {
							if s2, _ := selectsField(pass.Info, call.Args[0], "graph", "CSR", csrFields); s2 != nil {
								continue
							}
						}
					}
					pass.Reportf(lhs.Pos(),
						"write to graph.CSR field %q outside CSR constructors (the CSR is immutable after construction)",
						f.Name())
				}
			case *ast.IncDecStmt:
				if sel, f := selectsField(pass.Info, stmt.X, "graph", "CSR", csrFields); sel != nil {
					pass.Reportf(stmt.X.Pos(),
						"write to graph.CSR field %q outside CSR constructors (the CSR is immutable after construction)",
						f.Name())
				}
			case *ast.CallExpr:
				if isBuiltin(pass.Info, stmt, "append") && len(stmt.Args) > 0 {
					if sel, f := selectsField(pass.Info, stmt.Args[0], "graph", "CSR", csrFields); sel != nil {
						pass.Reportf(stmt.Args[0].Pos(),
							"append to graph.CSR field %q outside CSR constructors (the CSR is immutable after construction)",
							f.Name())
					}
				}
				if isBuiltin(pass.Info, stmt, "copy") && len(stmt.Args) > 0 {
					if sel, f := selectsField(pass.Info, stmt.Args[0], "graph", "CSR", csrFields); sel != nil {
						pass.Reportf(stmt.Args[0].Pos(),
							"copy into graph.CSR field %q outside CSR constructors (the CSR is immutable after construction)",
							f.Name())
					}
				}
			}
			return true
		})
	})
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsDiscipline keeps the library layers silent: ad-hoc printing from a
// package that services embed bypasses the observability layer entirely —
// it cannot be disabled, filtered, scraped, or correlated with a trace.
// Anything a library package wants to say goes through internal/obs (a
// span, an instant event, a metric) or an error return; only the
// human-facing commands and examples may write to the terminal directly.
// A genuinely needed exception is suppressed per-site with
// //cgvet:ignore obsdiscipline.
var ObsDiscipline = &Analyzer{
	Name: "obsdiscipline",
	Doc:  "forbid fmt.Print*/log.Print* (and friends) outside cmd/ and examples/",
	Run:  runObsDiscipline,
}

// printAllowedSegments are path elements whose packages talk to humans by
// design. Test files never reach the analyzer at all: the loader compiles
// only the non-test build of each package.
var printAllowedSegments = []string{"cmd", "examples"}

// bannedPrinters maps package path → banned top-level function prefixes.
// Prefix matching catches the whole families (Print, Printf, Println;
// log's Fatal*/Panic* additionally hide an os.Exit or panic in what looks
// like logging).
var bannedPrinters = map[string][]string{
	"fmt": {"Print"},
	"log": {"Print", "Fatal", "Panic"},
}

func runObsDiscipline(pass *Pass) {
	for _, seg := range printAllowedSegments {
		if hasSegment(pass.Path, seg) {
			return
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			f, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || f.Pkg() == nil {
				return true
			}
			if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. a *log.Logger a caller injected) pass
			}
			for _, prefix := range bannedPrinters[f.Pkg().Path()] {
				if strings.HasPrefix(f.Name(), prefix) {
					pass.Reportf(id.Pos(),
						"%s.%s in library package %s bypasses the observability layer; emit an obs span/metric, return an error, or move the printing to cmd/",
						f.Pkg().Name(), f.Name(), pass.Path)
					return true
				}
			}
			return true
		})
	}
}

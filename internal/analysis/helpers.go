package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// rootIdent unwraps parens, indexing, field selection, and pointer
// dereference down to the base identifier of an lvalue expression:
// res.Snapshots[i].X → res. Returns nil when the base is not a plain
// identifier (e.g. a function call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// fieldSel resolves a selector expression to the struct field it selects,
// or nil when it is not a field selection (method value, package member).
func fieldSel(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// namedRecv returns the named type of a selector's receiver, dereferencing
// one level of pointer: (&CSR{}).targets → CSR.
func namedRecv(info *types.Info, sel *ast.SelectorExpr) *types.Named {
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// selectsField reports whether expr (after unwrapping indexing/parens)
// selects the named field of the named struct type defined in a package
// with the given name, returning the selector when it does. This is how
// analyzers recognize graph.CSR's backing arrays or engine.State.words
// without importing those packages (fixtures define look-alikes).
func selectsField(info *types.Info, expr ast.Expr, pkgName, typeName string, fields map[string]bool) (*ast.SelectorExpr, *types.Var) {
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
			continue
		case *ast.IndexExpr:
			expr = x.X
			continue
		case *ast.SliceExpr:
			expr = x.X
			continue
		case *ast.SelectorExpr:
			f := fieldSel(info, x)
			if f == nil || !fields[f.Name()] {
				return nil, nil
			}
			n := namedRecv(info, x)
			if n == nil || n.Obj().Name() != typeName {
				return nil, nil
			}
			if p := n.Obj().Pkg(); p == nil || p.Name() != pkgName {
				return nil, nil
			}
			return x, f
		default:
			return nil, nil
		}
	}
}

// calleeFunc resolves a call's callee to a *types.Func when the callee is
// a plain identifier or package-qualified selector; nil otherwise.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// isBuiltin reports whether the call invokes the named builtin (append,
// copy, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// pathSegments splits an import path on '/'.
func pathSegments(path string) []string {
	return strings.Split(path, "/")
}

// hasSegment reports whether the import path contains seg as a whole
// path element ("commongraph/cmd/cgbench" has segment "cmd").
func hasSegment(path, seg string) bool {
	for _, s := range pathSegments(path) {
		if s == seg {
			return true
		}
	}
	return false
}

// internalLeaf returns the path element directly after "internal", or ""
// — the module's layer name ("graph", "core", ...).
func internalLeaf(path string) string {
	segs := pathSegments(path)
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) {
			return segs[i+1]
		}
	}
	return ""
}

// forEachFunc invokes fn for every function declaration in the pass with
// its enclosing function name ("" for package-level variable initializers
// handled elsewhere).
func forEachFunc(files []*ast.File, fn func(decl *ast.FuncDecl)) {
	for _, file := range files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

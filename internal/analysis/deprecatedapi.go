package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeprecatedAPI finishes a migration instead of letting it linger: the
// pre-context evaluation entry points (EvolvingGraph.Evaluate,
// EvolvingGraph.EvaluateMulti, Watcher.Evaluate) and the Options.Context
// field are Deprecated in favor of Run/RunMulti, which take the context
// as a parameter. The old names still work — which is exactly how new
// call sites sneak in. This check fails the build on any use outside the
// defining package, so the deprecated surface can only shrink.
var DeprecatedAPI = &Analyzer{
	Name: "deprecatedapi",
	Doc:  "forbid new call sites of deprecated commongraph APIs (Evaluate*, Options.Context)",
	Run:  runDeprecatedAPI,
}

// deprecatedMethods maps receiver type name -> method names -> suggested
// replacement, all on the root commongraph package.
var deprecatedMethods = map[string]map[string]string{
	"EvolvingGraph": {"Evaluate": "Run", "EvaluateMulti": "RunMulti"},
	"Watcher":       {"Evaluate": "Run", "EvaluateMulti": "RunMulti"},
}

// isRootCommongraph reports whether pkg is the module's root package. The
// fixture loader type-checks fixtures under synthetic module paths, so the
// fake package lands at ".../commongraph" rather than exactly
// "commongraph"; no real module package has that suffix except the root.
func isRootCommongraph(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == "commongraph" || strings.HasSuffix(pkg.Path(), "/commongraph")
}

func runDeprecatedAPI(pass *Pass) {
	if isRootCommongraph(pass.Pkg) {
		return // the defining package may keep the shims alive
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || !isRootCommongraph(obj.Pkg()) {
				return true
			}
			switch o := obj.(type) {
			case *types.Func:
				recv := o.Type().(*types.Signature).Recv()
				if recv == nil {
					return true
				}
				if repl, ok := deprecatedMethods[namedTypeName(recv.Type())][o.Name()]; ok {
					pass.Reportf(sel.Sel.Pos(),
						"%s.%s is deprecated; use %s and pass the context as a parameter",
						namedTypeName(recv.Type()), o.Name(), repl)
				}
			case *types.Var:
				if o.IsField() && o.Name() == "Context" {
					pass.Reportf(sel.Sel.Pos(),
						"Options.Context is deprecated; pass the context to Run/RunMulti instead")
				}
			}
			return true
		})
		// Composite literals set the field without a SelectorExpr:
		// Options{Context: ctx}.
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if v, ok := pass.Info.Uses[key].(*types.Var); ok &&
					v.IsField() && v.Name() == "Context" && isRootCommongraph(v.Pkg()) {
					pass.Reportf(key.Pos(),
						"Options.Context is deprecated; pass the context to Run/RunMulti instead")
				}
			}
			return true
		})
	}
}

// namedTypeName unwraps pointers and returns the named type's name, or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// Fixture for the deprecatedapi analyzer, loaded as a consumer package
// (import path app): every pre-context evaluation entry point and use of
// Options.Context must be flagged; the Run/RunMulti replacements, other
// Options fields, and unrelated Context identifiers stay allowed.
package app

import (
	"context"

	"app/commongraph"
)

func graphCalls(g *commongraph.EvolvingGraph) {
	g.Evaluate(commongraph.Query{}, 0, 3, commongraph.Options{})      // want `EvolvingGraph\.Evaluate is deprecated; use Run`
	g.EvaluateMulti(nil, 0, 3, commongraph.Options{})                 // want `EvolvingGraph\.EvaluateMulti is deprecated; use RunMulti`
	g.Run(context.Background(), commongraph.Request{})                // replacement: allowed
}

func watcherCalls(w *commongraph.Watcher) {
	w.Evaluate(commongraph.Query{}, commongraph.Options{}) // want `Watcher\.Evaluate is deprecated; use Run`
	w.EvaluateMulti(nil, commongraph.Options{})            // want `Watcher\.EvaluateMulti is deprecated; use RunMulti`
	w.Run(context.Background(), commongraph.Request{})     // allowed
	w.RunMulti(context.Background(), nil)                  // allowed
}

func methodValue(g *commongraph.EvolvingGraph) func(commongraph.Query, int, int, commongraph.Options) (*commongraph.Result, error) {
	return g.Evaluate // want `EvolvingGraph\.Evaluate is deprecated; use Run`
}

func contextField(opt commongraph.Options) {
	opt.Context = context.Background() // want `Options\.Context is deprecated`
	_ = opt.Context                    // want `Options\.Context is deprecated`
}

func contextLiteral() commongraph.Options {
	return commongraph.Options{Context: context.Background()} // want `Options\.Context is deprecated`
}

type ownOptions struct{ Context context.Context }

func unrelated(o ownOptions) context.Context {
	return o.Context // a Context field on a local type: allowed
}

func keepValues() commongraph.Options {
	return commongraph.Options{KeepValues: true} // other fields: allowed
}

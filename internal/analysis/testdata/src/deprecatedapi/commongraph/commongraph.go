// Fake commongraph package for the deprecatedapi fixture: just enough
// surface for the consumer file to exercise the deprecated entry points
// and their replacements. The analyzer matches it by its ".../commongraph"
// import-path suffix.
package commongraph

import "context"

type Query struct{ Source int }

type Options struct {
	Context    context.Context // the deprecated field
	KeepValues bool
}

type Request struct {
	Query   Query
	Options Options
}

type Result struct{}

type EvolvingGraph struct{}

func (g *EvolvingGraph) Evaluate(q Query, from, to int, opt Options) (*Result, error) {
	return nil, nil
}
func (g *EvolvingGraph) EvaluateMulti(qs []Query, from, to int, opt Options) ([]*Result, error) {
	return nil, nil
}
func (g *EvolvingGraph) Run(ctx context.Context, req Request) (*Result, error) { return nil, nil }

type Watcher struct{}

func (w *Watcher) Evaluate(q Query, opt Options) (*Result, error)            { return nil, nil }
func (w *Watcher) EvaluateMulti(qs []Query, opt Options) ([]*Result, error)  { return nil, nil }
func (w *Watcher) Run(ctx context.Context, req Request) (*Result, error)     { return nil, nil }
func (w *Watcher) RunMulti(ctx context.Context, qs []Query) ([]*Result, error) { return nil, nil }

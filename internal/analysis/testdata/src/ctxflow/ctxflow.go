// Fixture for the ctxflow analyzer: root contexts minted in a library,
// in-scope contexts severed by Background/TODO/nil, and ctx-blind spin
// loops. Loaded under a library path by the test; under cmd/ the
// root-context rule goes quiet while the flow rules stay on.
package ctxflow

import "context"

func use(ctx context.Context)         { _ = ctx }
func pair(n int, ctx context.Context) { _, _ = n, ctx }

func mint() {
	ctx := context.Background() // want `mints a root context`
	use(ctx)
}

func forward(ctx context.Context) {
	use(ctx)
}

func derive(ctx context.Context) {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	use(c)
}

func sever(ctx context.Context) {
	use(context.Background()) // want `mints a root context` want `is passed to use`
}

func severTODO(ctx context.Context) {
	pair(1, context.TODO()) // want `mints a root context` want `is passed to pair`
}

func severNil(ctx context.Context) {
	use(nil) // want `nil is passed as the context to use`
}

func spin(ctx context.Context) {
	for { // want `never consults ctx`
		step()
	}
}

func checkpointed(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		step()
	}
}

func step() {}

// Fixture for the errflow analyzer: durability errors (write, sync,
// truncate, close, rename) must reach a return, a poison/rollback path,
// or a metric. Error-branch cleanup closes, read-only defer-closes, and
// named-result assignments are the sanctioned quiet shapes.
package errflow

import "os"

func drop(f *os.File) {
	f.Sync() // want `error from f.Sync is silently dropped`
}

func blank(f *os.File) {
	_ = f.Close() // want `error from f.Close is discarded with _`
}

func cleanup(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() // quiet: cleanup on the error path; the write error propagates
		return err
	}
	return f.Close()
}

func dead(f *os.File) error {
	err := f.Sync() // want `assigned to err but never consulted`
	err = f.Close()
	return err
}

func deferOnWritten(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred Close on f loses the close error`
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

func deferOnReadOnly(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close() // quiet: read-only handle, the close error carries nothing
	return f.Seek(0, 2)
}

func deferPlusChecked(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // quiet: panic-safety only, the success path checks Close below
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Close()
}

func namedResult(f *os.File) (err error) {
	err = f.Sync() // quiet: named result rides out on any return
	return
}

func renameAndPrune(dir string) error {
	if err := os.Rename(dir+"/a", dir+"/b"); err != nil {
		return err
	}
	os.Remove(dir + "/tmp") // want `error from os.Remove is silently dropped`
	return nil
}

// Fixture for the gopanic analyzer: goroutines with and without the
// executor layer's recovery wrapper, mirroring the shapes of
// internal/core/parallel.go and evaluator.go.
package core

import (
	"fmt"
	"sync"
)

// recoverToError stands in for the real helper in internal/core/safety.go;
// the analyzer recognizes it by name.
func recoverToError(errp *error) {
	if r := recover(); r != nil {
		*errp = fmt.Errorf("recovered: %v", r)
	}
}

func work(int) {}

func spawnAll(n int) error {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go work(i) // want `goroutine body is not a function literal`

		wg.Add(1)
		go func(k int) { // want `goroutine installs no recovery wrapper`
			defer wg.Done()
			work(k)
		}(i)

		wg.Add(1)
		go func(k int) { // wrapped with the helper: allowed
			defer wg.Done()
			defer recoverToError(&errs[k])
			work(k)
		}(i)

		wg.Add(1)
		go func(k int) { // deferred closure calling recover(): allowed
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[k] = fmt.Errorf("recovered: %v", r)
				}
			}()
			work(k)
		}(i)

		wg.Add(1)
		go func(k int) { // want `goroutine installs no recovery wrapper`
			defer wg.Done()
			// Recovery buried inside a nested call does not count: the
			// wrapper must be a top-level deferred statement.
			func() {
				defer recoverToError(&errs[k])
				work(k)
			}()
		}(i)
	}
	wg.Wait()
	return nil
}

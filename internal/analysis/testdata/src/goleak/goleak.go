// Fixture for the goleak analyzer: goroutine spawns with and without a
// provable termination path. Loaded under a library import path by the
// test; the same file under cmd/ must produce nothing.
package goleak

import (
	"context"
	"io"
	"sync"
	"time"
)

func spinForever() {
	go func() {
		for { // want `goroutine loops forever`
		}
	}()
}

func loopWithExit(done chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

func rangeOverData(ch chan int) {
	go func() {
		for v := range ch { // want `ranges over a channel`
			_ = v
		}
	}()
}

func rangeOverDone(done chan struct{}) {
	go func() {
		for range done {
		}
	}()
}

func sendUnbounded(ch chan int) {
	go func() {
		ch <- 1 // want `sends on an unbounded channel`
	}()
}

func semaphore() {
	sem := make(chan struct{}, 4)
	go func() {
		sem <- struct{}{}
		<-sem
	}()
}

func recvUnbounded(ch chan int) {
	go func() {
		<-ch // want `receives from an unbounded channel`
	}()
}

func recvCancellation(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func condWait(c *sync.Cond) {
	go func() {
		c.L.Lock()
		c.Wait() // want `sync.Cond.Wait`
		c.L.Unlock()
	}()
}

func doneMissedOnEarlyReturn(wg *sync.WaitGroup, fail bool) {
	wg.Add(1)
	go func() {
		if fail {
			return
		}
		work()
		wg.Done() // want `not reached on every exit path`
	}()
}

func doneNotDeferred(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		work()
		wg.Done() // want `not deferred`
	}()
}

func doneDeferred(wg *sync.WaitGroup, fail bool) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		if fail {
			return
		}
		work()
	}()
}

func externalTarget() {
	go time.Sleep(time.Millisecond) // want `cannot analyze`
}

func dynamicTarget(fn func()) {
	go fn() // want `not analyzable`
}

func spawnLocal() {
	go localLoop()
}

func localLoop() {
	for { // want `goroutine loops forever`
	}
}

func work() {}

// --- replication lifecycle roots: conn pumps, watchdogs, catch-up loops ---

// A frame pump terminates structurally: the read fails once the conn is
// closed by the peer or the session owner, and the error path returns.
func framePump(conn io.Reader, frames chan<- byte) {
	go func() {
		for {
			var buf [1]byte
			if _, err := conn.Read(buf[:]); err != nil {
				return
			}
			select {
			case frames <- buf[0]:
			default:
			}
		}
	}()
}

// A conn watchdog parks on cancellation and a session-scoped done chan —
// both are recognized termination paths.
func connWatchdog(ctx context.Context, done chan struct{}, conn io.Closer) {
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
}

// A catch-up loop without any exit spins once the peer is gone.
func catchUpForever(redial func() error) {
	go func() {
		for { // want `goroutine loops forever`
			if redial() == nil {
				continue
			}
		}
	}()
}

// Forwarding replayed frames to an unbounded channel can block forever
// after the consumer stops; the session must justify it with an ignore.
func replayForwarder(batches chan int, b int) {
	go func() {
		batches <- b // want `sends on an unbounded channel`
	}()
}

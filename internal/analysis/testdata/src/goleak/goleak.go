// Fixture for the goleak analyzer: goroutine spawns with and without a
// provable termination path. Loaded under a library import path by the
// test; the same file under cmd/ must produce nothing.
package goleak

import (
	"context"
	"sync"
	"time"
)

func spinForever() {
	go func() {
		for { // want `goroutine loops forever`
		}
	}()
}

func loopWithExit(done chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

func rangeOverData(ch chan int) {
	go func() {
		for v := range ch { // want `ranges over a channel`
			_ = v
		}
	}()
}

func rangeOverDone(done chan struct{}) {
	go func() {
		for range done {
		}
	}()
}

func sendUnbounded(ch chan int) {
	go func() {
		ch <- 1 // want `sends on an unbounded channel`
	}()
}

func semaphore() {
	sem := make(chan struct{}, 4)
	go func() {
		sem <- struct{}{}
		<-sem
	}()
}

func recvUnbounded(ch chan int) {
	go func() {
		<-ch // want `receives from an unbounded channel`
	}()
}

func recvCancellation(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func condWait(c *sync.Cond) {
	go func() {
		c.L.Lock()
		c.Wait() // want `sync.Cond.Wait`
		c.L.Unlock()
	}()
}

func doneMissedOnEarlyReturn(wg *sync.WaitGroup, fail bool) {
	wg.Add(1)
	go func() {
		if fail {
			return
		}
		work()
		wg.Done() // want `not reached on every exit path`
	}()
}

func doneNotDeferred(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		work()
		wg.Done() // want `not deferred`
	}()
}

func doneDeferred(wg *sync.WaitGroup, fail bool) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		if fail {
			return
		}
		work()
	}()
}

func externalTarget() {
	go time.Sleep(time.Millisecond) // want `cannot analyze`
}

func dynamicTarget(fn func()) {
	go fn() // want `not analyzable`
}

func spawnLocal() {
	go localLoop()
}

func localLoop() {
	for { // want `goroutine loops forever`
	}
}

func work() {}

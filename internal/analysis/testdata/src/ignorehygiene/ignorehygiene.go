// Fixture for the ignorehygiene analyzer: bare ignores (nameless or
// named) are findings; justified ones — with "--" or an em dash — are
// not. The nameless bare ignore also exercises the suppression bypass:
// it would silence every analyzer on its line, including the one
// complaining about it.
package ignorehygiene

func bareNameless() {
	x := 1
	_ = x //cgvet:ignore
}

func bareNamed() {
	y := 2
	_ = y //cgvet:ignore lockdiscipline
}

func justified() {
	z := 3
	_ = z //cgvet:ignore lockdiscipline -- owner-local until published
}

func justifiedEmDash() {
	w := 4
	_ = w //cgvet:ignore statewrite — monotone by construction
}

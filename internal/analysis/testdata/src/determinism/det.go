// Fixture for the determinism analyzer, loaded under a restricted
// representation-package import path (commongraph/internal/graph): global
// math/rand and bare time.Now must be flagged; seeded generators and
// non-Now time functions stay allowed.
package graph

import (
	"math/rand"
	"time"
)

func jitter() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now\(\) in representation/algorithm package`
}

func seeded() int {
	r := rand.New(rand.NewSource(42)) // seeded constructor: allowed
	return r.Intn(10)                 // method on seeded generator: allowed
}

func sleepy() {
	time.Sleep(time.Millisecond) // not time.Now: allowed
}

func suppressed() int64 {
	return time.Now().Unix() //cgvet:ignore determinism -- fixture-sanctioned timing site
}

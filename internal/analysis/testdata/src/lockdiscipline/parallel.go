// Fixture for the lockdiscipline analyzer: goroutines writing shared
// captured state with and without a dominating mutex, mirroring the shape
// of internal/core/parallel.go.
package core

import "sync"

type result struct {
	count int
	items []int
}

func fanOut(n int) *result {
	res := &result{}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	total := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			local := k * 2     // closure-local: allowed
			res.count += local // want `write to captured variable "res"`
			total++            // want `write to captured variable "total"`
			mu.Lock()
			res.count += local // lock held: allowed
			mu.Unlock()
			res.items = append(res.items, k) // want `write to captured variable "res"`
		}(i)
	}
	wg.Wait()
	return res
}

func disciplined(n int) int {
	total := 0
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			total += k // defer-unlock keeps the lock held: allowed
			if k%2 == 0 {
				total-- // still held inside the branch: allowed
			}
		}(i)
	}
	wg.Wait()
	return total
}

func localMutexGuardsNothing(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var mu sync.Mutex // goroutine-local: not a shared guard
			mu.Lock()
			total += k // want `write to captured variable "total"`
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return total
}

func branchLockDoesNotDominate(n int) int {
	total := 0
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if k > 0 {
				mu.Lock()
				mu.Unlock()
			}
			total += k // want `write to captured variable "total"`
		}(i)
	}
	wg.Wait()
	return total
}

func disjointIndexSuppressed(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			out[k] = k //cgvet:ignore lockdiscipline -- one slot per goroutine, indices are disjoint
		}(i)
	}
	wg.Wait()
	return out
}

func callbackWrites(n int, each func(func(int))) *result {
	res := &result{}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		each(func(v int) {
			res.count += v // want `write to captured variable "res"`
		})
		mu.Lock()
		defer mu.Unlock()
		each(func(v int) {
			res.count += v // lock held at callback site: allowed
		})
	}()
	wg.Wait()
	return res
}

// Fixture for the spanend analyzer: spans handed out by
// StartSpan/StartChild/Fork/StartRemote must be ended on every path —
// an all-paths End(), a defer End(), or an ownership transfer (return,
// store, call argument, closure capture).
package spanend

// Span mimics the obs layer's span type: the analyzer matches the
// constructor names and the *Span result shape, not the import path.
type Span struct{}

func (s *Span) End()            {}
func (s *Span) SetAttr(v int)   {}
func (s *Span) Context() uint64 { return 0 }

type Tracer struct{}

func (t *Tracer) StartSpan(name string) *Span           { return nil }
func (t *Tracer) StartChild(p *Span, name string) *Span { return nil }
func (t *Tracer) Fork(p *Span, name string) *Span       { return nil }
func (t *Tracer) StartRemote(sc uint64, n string) *Span { return nil }

func allPaths(t *Tracer, fail bool) error {
	sp := t.StartSpan("op") // quiet: ended on both paths
	if fail {
		sp.End()
		return errNope
	}
	sp.End()
	return nil
}

func earlyReturn(t *Tracer, fail bool) error {
	sp := t.StartSpan("op") // want `span from t.StartSpan is not ended on every path`
	if fail {
		return errNope // the classic bug: early return added after the span
	}
	sp.End()
	return nil
}

func deferred(t *Tracer, fail bool) error {
	sp := t.StartSpan("op") // quiet: defer runs on every path
	defer sp.End()
	if fail {
		return errNope
	}
	return nil
}

func neverEnded(t *Tracer) {
	sp := t.StartChild(nil, "child") // want `span from t.StartChild is not ended on every path`
	sp.SetAttr(1)
}

func discarded(t *Tracer) {
	_ = t.StartSpan("op") // want `span from t.StartSpan is discarded with _`
}

func transferredReturn(t *Tracer) *Span {
	sp := t.Fork(nil, "track") // quiet: caller owns it now
	return sp
}

func transferredCall(t *Tracer) {
	sp := t.StartSpan("op") // quiet: handed off to the consumer
	consume(sp)
}

func transferredStore(t *Tracer, holder *struct{ sp *Span }) {
	sp := t.StartRemote(7, "remote") // quiet: stored; the holder ends it
	holder.sp = sp
}

func capturedByClosure(t *Tracer, run func(func())) {
	sp := t.StartSpan("op") // quiet: the closure ends it on its own schedule
	run(func() { sp.End() })
}

func endInOneBranchOnly(t *Tracer, mode int) {
	sp := t.StartSpan("op") // want `span from t.StartSpan is not ended on every path`
	switch mode {
	case 0:
		sp.End()
	case 1:
		// forgotten
	}
}

func endAfterLoop(t *Tracer, n int) {
	sp := t.StartSpan("op") // quiet: the loop exits and End follows
	for i := 0; i < n; i++ {
		sp.SetAttr(i)
	}
	sp.End()
}

func ignored(t *Tracer) {
	sp := t.StartSpan("op") //cgvet:ignore spanend -- the registry ends it at shutdown
	sp.SetAttr(1)
}

func notASpan(t *NotTracer) {
	v := t.StartSpan("op") // quiet: returns *Thing, not *Span
	_ = v
}

type NotTracer struct{}
type Thing struct{}

func (t *NotTracer) StartSpan(name string) *Thing { return nil }

func consume(sp *Span) {}

var errNope error

// Fixture for the obsdiscipline analyzer, loaded under a library import
// path (commongraph/internal/core): implicit-stdout printing and the
// global log package must be flagged; Sprintf/Errorf/Fprintf to an
// injected writer and an injected *log.Logger stay allowed, and the same
// file under a cmd/ path yields nothing (scope test).
package core

import (
	"fmt"
	"io"
	"log"
)

func chatty() {
	fmt.Println("solving common graph") // want `fmt\.Println in library package`
}

func chattier(n int) {
	fmt.Printf("streamed %d additions\n", n) // want `fmt\.Printf in library package`
}

func global(n int) {
	log.Printf("hop %d done", n) // want `log\.Printf in library package`
}

func fatal(err error) {
	log.Fatalf("cannot recover: %v", err) // want `log\.Fatalf in library package`
}

func formatted(n int) string {
	return fmt.Sprintf("snapshot %d", n) // formatting, not printing: allowed
}

func wrapped(err error) error {
	return fmt.Errorf("walk: %w", err) // allowed
}

func toWriter(w io.Writer, n int) {
	fmt.Fprintf(w, "reached %d\n", n) // explicit writer, caller's choice: allowed
}

func injected(l *log.Logger, n int) {
	l.Printf("hop %d", n) // method on an injected logger: allowed
}

func sanctioned() {
	fmt.Println("progress") //cgvet:ignore obsdiscipline -- fixture-sanctioned print site
}

// Fixture for the atomicguard analyzer: words reached both through
// sync/atomic and by plain access must be flagged at their declaration;
// all-atomic and all-plain locations stay quiet.
package atomicguard

import "sync/atomic"

type frontier struct {
	bits []uint64 // want `field bits is accessed through sync/atomic in \[trySet\] but plainly in \[setSeq\]`
	seen []uint64
	hits []uint64
}

// trySet publishes through CAS, via a local alias of the word.
func (f *frontier) trySet(v uint32) bool {
	w := &f.bits[v>>6]
	mask := uint64(1) << (v & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// setSeq writes the same words plainly — the mixed access under test.
func (f *frontier) setSeq(v uint32) {
	f.bits[v>>6] |= uint64(1) << (v & 63)
}

// seen is atomic on both sides: clean.
func (f *frontier) mark(v uint32) {
	atomic.StoreUint64(&f.seen[v>>6], 1)
}

func (f *frontier) marked(v uint32) bool {
	return atomic.LoadUint64(&f.seen[v>>6]) != 0
}

// hits is plain on both sides: clean.
func (f *frontier) hit(v uint32) {
	f.hits[v>>6]++
}

func (f *frontier) hitCount(v uint32) uint64 {
	return f.hits[v>>6]
}

type words []uint64 // want `elements of type words are accessed through sync/atomic in \[load\] but plainly in \[reset\]`

func (ws words) load(i int) uint64 {
	return atomic.LoadUint64(&ws[i])
}

func (ws words) reset() {
	for i := range ws {
		ws[i] = 0
	}
}

// Fixture for the closecheck analyzer, loaded under a library import
// path: handles that leak (never closed, or lost on an early error
// return) are flagged; deferred closes, escaping handles, and the open's
// own err != nil check stay silent; //cgvet:ignore suppresses a site.
package store

import (
	"io"
	"net"
	"os"
	"time"
)

func neverClosed(path string) error {
	f, err := os.Open(path) // want `os\.Open handle is never closed`
	if err != nil {
		return err
	}
	_ = f
	return nil
}

func discarded(path string) {
	_, _ = os.Create(path) // want `os\.Create result is discarded`
}

func leakyEarlyReturn(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err // the handle is nil here: exempt
	}
	if _, err := f.Write(data); err != nil {
		return err // want `return leaks the os\.Create handle`
	}
	return f.Close()
}

func deferred(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	_, rerr := f.Read(buf[:])
	return rerr
}

func deferredInLiteral(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { f.Close() }()
	return nil
}

func closedOnEveryPath(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func escapesByReturn(path string) (*os.File, error) {
	return os.Open(path) // direct return: nothing to track
}

func escapesByReturnVar(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil // caller owns the handle now
}

type holder struct{ f *os.File }

func escapesIntoStruct(path string) (*holder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &holder{f: f}, nil
}

func escapesIntoField(h *holder, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	h.f = f
	return nil
}

func escapesAsArgument(path string, sink func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return sink(f) // the callee takes over the obligation
}

func suppressed(path string) error {
	//cgvet:ignore closecheck -- intentionally held open for the process lifetime
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	_ = f
	return nil
}

// --- network handles: the replication layer's conn/listener lifecycle ---

func connNeverClosed(addr string) error {
	c, err := net.Dial("tcp", addr) // want `net\.Dial handle is never closed`
	if err != nil {
		return err
	}
	_ = c
	return nil
}

func connLeakyEarlyReturn(addr string, hello []byte) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err // the conn is nil here: exempt
	}
	if _, err := c.Write(hello); err != nil {
		return err // want `return leaks the net\.Dial handle`
	}
	return c.Close()
}

func connDeferred(addr string) error {
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	var buf [8]byte
	_, rerr := c.Read(buf[:])
	return rerr
}

func listenerDiscarded(addr string) {
	_, _ = net.Listen("tcp", addr) // want `net\.Listen result is discarded`
}

type server struct{ ln net.Listener }

func listenerEscapesIntoServer(addr string) (*server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &server{ln: ln}, nil // the server owns the listener now
}

func connHandedToSession(addr string, attach func(net.Conn)) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	attach(c) // the session takes over the obligation
	return nil
}

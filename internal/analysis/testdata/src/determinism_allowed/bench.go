// Fixture for the determinism analyzer, loaded under an allowlisted
// import path (commongraph/internal/bench): the harness layer may use
// wall-clock time and math/rand freely, so this file must produce zero
// diagnostics.
package bench

import (
	"math/rand"
	"time"
)

func measure() time.Duration {
	t0 := time.Now()
	time.Sleep(time.Microsecond)
	return time.Since(t0)
}

func noise() int {
	return rand.Intn(100)
}

// Fixture for the statewrite analyzer: a miniature of
// internal/engine's State with the approved update sites, plus seeded
// direct writes that must be flagged.
package engine

import "sync/atomic"

type State struct {
	words []uint64
}

func NewState(n int) *State {
	s := &State{words: make([]uint64, n)}
	s.words[0] = 1 // approved site: allowed
	return s
}

func (s *State) Value(v int) uint64 {
	return atomic.LoadUint64(&s.words[v]) // atomic read: allowed
}

func (s *State) TryImprove(v int, w uint64) bool {
	return atomic.CompareAndSwapUint64(&s.words[v], 0, w) // approved site: allowed
}

func (s *State) Reset(v int, w uint64) {
	atomic.StoreUint64(&s.words[v], w) // approved site: allowed
}

func (s *State) Clone() *State {
	c := &State{words: make([]uint64, len(s.words))}
	copy(c.words, s.words) // approved site: allowed
	return c
}

func (s *State) Poke(v int, w uint64) {
	s.words[v] = w // want `write to engine\.State\.words`
}

func Smash(s *State) {
	atomic.StoreUint64(&s.words[0], 9) // want `atomic write to engine\.State\.words`
}

func Rebind(s *State) {
	s.words = nil // want `write to engine\.State\.words`
}

func Blit(dst, src *State) {
	copy(dst.words, src.words) // want `copy into engine\.State\.words`
}

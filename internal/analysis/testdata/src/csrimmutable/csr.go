// Fixture for the csrimmutable analyzer: a miniature of
// internal/graph's CSR with its constructor allowlist, plus seeded
// post-construction mutations that must be flagged.
package graph

type VertexID uint32

type Weight int32

type CSR struct {
	n       int
	offsets []int32
	targets []VertexID
	weights []Weight
}

func NewCSR(n, m int) *CSR {
	c := &CSR{n: n}
	c.offsets = make([]int32, n+1) // constructor: allowed
	for i := 0; i < m; i++ {
		c.targets = append(c.targets, 0) // constructor: allowed
		c.weights = append(c.weights, 1) // constructor: allowed
	}
	return c
}

func buildCSR(n int) *CSR {
	c := &CSR{}
	c.n = n // constructor: allowed
	return c
}

func (c *CSR) Degree(u VertexID) int {
	return int(c.offsets[u+1] - c.offsets[u]) // read: allowed
}

func Grow(c *CSR, v VertexID) {
	c.targets = append(c.targets, v) // want `append to graph\.CSR field "targets"`
}

func (c *CSR) SetWeight(i int, w Weight) {
	c.weights[i] = w // want `write to graph\.CSR field "weights"`
}

func Patch(c *CSR) {
	c.offsets[0]++ // want `write to graph\.CSR field "offsets"`
}

func Overwrite(c *CSR, src *CSR) {
	copy(c.targets, src.targets) // want `copy into graph\.CSR field "targets"`
}

func Rebind(c *CSR) {
	c.offsets = nil // want `write to graph\.CSR field "offsets"`
}

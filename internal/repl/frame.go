package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"commongraph/internal/faults"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
)

// The wire format (v2), documented in DESIGN.md "Replication". Every
// frame is
//
//	magic   u32  (0xC6C09418, "cg" + format; v1 was ...17)
//	type    u8
//	flags   u8   (per-type; hello uses bit 0 = has-store)
//	pad     u16  (zero)
//	epoch   u64  (sender's replication epoch — the fencing carrier)
//	trace   u64  (trace-context TraceID; 0 = none)
//	span    u64  (trace-context SpanID; 0 = none)
//	length  u32  (payload bytes)
//	payload length bytes
//	crc32   u32  (IEEE, over header + payload)
//
// all little-endian. The trailing CRC makes a torn or bit-rotted frame a
// detected protocol error (the session drops and the catch-up loop
// re-handshakes) rather than silent divergence; the epoch in every
// header — not just hellos — means a fence cannot be missed by a peer
// that is still reading. The trace-context pair rides in every header
// for the same reason: a batch frame carries the primary's ingest-commit
// span so follower replay (and staleness-budgeted reads) link to it,
// heartbeats re-carry the last shipped one, and a fence carries the
// promotion span so a fenced ex-primary's final spans join the new
// authority's trace. The magic bump makes a v1 peer a clean protocol
// error instead of a silent 16-byte misparse.
const (
	frameMagic      = 0xC6C09418
	frameMagicV1    = 0xC6C09417
	frameHeaderLen  = 36
	maxFramePayload = 1 << 30

	// edgeWireLen is one edge on the wire: src u32, dst u32, weight i32.
	edgeWireLen = 12
)

// ErrProto marks a malformed or out-of-protocol frame. A session that
// sees one is unrecoverable in place; the follower reconnects and
// re-handshakes from its durable position.
var ErrProto = errors.New("repl: protocol error")

type frameType uint8

const (
	// frameHello opens a session: the follower reports its durable
	// position so the primary can resume shipping exactly where the
	// follower's manifest stopped — no history is re-shipped across
	// reconnects unless compaction already folded it away.
	frameHello frameType = 1 + iota
	// frameSnapshot re-bootstraps a follower that cannot catch up
	// incrementally: a full base edge list at an absolute version.
	frameSnapshot
	// frameBatch ships one committed transition (or a bare commit-pointer
	// advance) for replay through the follower's own AppendBatch.
	frameBatch
	// frameHeartbeat carries the primary's position during quiet periods
	// so follower lag gauges stay live without commits.
	frameHeartbeat
	// frameFence carries only its header epoch: the sender asserts the
	// receiver's epoch is stale. A primary receiving one fences itself
	// durably before its next commit can happen.
	frameFence
)

func (t frameType) String() string {
	switch t {
	case frameHello:
		return "hello"
	case frameSnapshot:
		return "snapshot"
	case frameBatch:
		return "batch"
	case frameHeartbeat:
		return "heartbeat"
	case frameFence:
		return "fence"
	}
	return fmt.Sprintf("type-%d", uint8(t))
}

type frame struct {
	typ     frameType
	flags   uint8
	epoch   uint64
	trace   obs.SpanContext
	payload []byte
}

// writeFrame ships one frame. faults.ReplShipFrame fires before any
// bytes move, so an injected failure models a connection lost with the
// frame unsent — the at-least-once replay case the resume handshake
// covers.
func writeFrame(w io.Writer, f frame) error {
	if err := faults.Check(faults.ReplShipFrame); err != nil {
		return fmt.Errorf("repl: ship %s frame: %w", f.typ, err)
	}
	if len(f.payload) > maxFramePayload {
		return fmt.Errorf("%w: %s payload %d exceeds cap", ErrProto, f.typ, len(f.payload))
	}
	buf := make([]byte, frameHeaderLen+len(f.payload)+4)
	binary.LittleEndian.PutUint32(buf[0:], frameMagic)
	buf[4] = uint8(f.typ)
	buf[5] = f.flags
	binary.LittleEndian.PutUint64(buf[8:], f.epoch)
	binary.LittleEndian.PutUint64(buf[16:], uint64(f.trace.Trace))
	binary.LittleEndian.PutUint64(buf[24:], uint64(f.trace.Span))
	binary.LittleEndian.PutUint32(buf[32:], uint32(len(f.payload)))
	copy(buf[frameHeaderLen:], f.payload)
	sum := crc32.ChecksumIEEE(buf[:frameHeaderLen+len(f.payload)])
	binary.LittleEndian.PutUint32(buf[frameHeaderLen+len(f.payload):], sum)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	obs.ReplFramesSent(f.typ.String()).Inc()
	obs.ReplBytes().Add(int64(len(buf)))
	return nil
}

// readFrame reads and verifies one frame. faults.ReplRecvFrame fires
// before the read, modelling a connection that dies under the reader.
func readFrame(r io.Reader) (frame, error) {
	if err := faults.Check(faults.ReplRecvFrame); err != nil {
		return frame{}, fmt.Errorf("repl: recv frame: %w", err)
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != frameMagic {
		if got == frameMagicV1 {
			return frame{}, fmt.Errorf("%w: peer speaks frame format v1 (magic %08x); v2 headers carry trace context", ErrProto, got)
		}
		return frame{}, fmt.Errorf("%w: bad magic %08x", ErrProto, got)
	}
	n := binary.LittleEndian.Uint32(hdr[32:])
	if n > maxFramePayload {
		return frame{}, fmt.Errorf("%w: payload length %d exceeds cap", ErrProto, n)
	}
	body := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	want := crc32.Update(crc32.ChecksumIEEE(hdr[:]), crc32.IEEETable, body[:n])
	if got := binary.LittleEndian.Uint32(body[n:]); got != want {
		return frame{}, fmt.Errorf("%w: frame CRC %08x != recorded %08x", ErrProto, want, got)
	}
	f := frame{
		typ:   frameType(hdr[4]),
		flags: hdr[5],
		epoch: binary.LittleEndian.Uint64(hdr[8:]),
		trace: obs.SpanContext{
			Trace: obs.TraceID(binary.LittleEndian.Uint64(hdr[16:])),
			Span:  obs.SpanID(binary.LittleEndian.Uint64(hdr[24:])),
		},
		payload: body[:n:n],
	}
	obs.ReplFramesReceived(f.typ.String()).Inc()
	return f, nil
}

// helloMsg is the follower's durable position, read straight off its
// manifest: the primary resumes shipping at transitions/walSeq, or ships
// a snapshot when the follower is empty, shaped differently, or already
// folded past on the primary.
type helloMsg struct {
	hasStore    bool
	vertices    int
	baseVersion int
	transitions int
	walSeq      uint64
}

const helloFlagHasStore = 1

func (m helloMsg) encode() (payload []byte, flags uint8) {
	p := make([]byte, 28)
	binary.LittleEndian.PutUint32(p[0:], uint32(m.vertices))
	binary.LittleEndian.PutUint64(p[4:], uint64(m.baseVersion))
	binary.LittleEndian.PutUint64(p[12:], uint64(m.transitions))
	binary.LittleEndian.PutUint64(p[20:], m.walSeq)
	if m.hasStore {
		flags = helloFlagHasStore
	}
	return p, flags
}

func decodeHello(f frame) (helloMsg, error) {
	if len(f.payload) != 28 {
		return helloMsg{}, fmt.Errorf("%w: hello payload %d bytes", ErrProto, len(f.payload))
	}
	m := helloMsg{
		hasStore:    f.flags&helloFlagHasStore != 0,
		vertices:    int(binary.LittleEndian.Uint32(f.payload[0:])),
		baseVersion: int(int64(binary.LittleEndian.Uint64(f.payload[4:]))),
		transitions: int(int64(binary.LittleEndian.Uint64(f.payload[12:]))),
		walSeq:      binary.LittleEndian.Uint64(f.payload[20:]),
	}
	if m.baseVersion < 0 || m.transitions < m.baseVersion {
		return helloMsg{}, fmt.Errorf("%w: hello position (base %d, transitions %d)", ErrProto, m.baseVersion, m.transitions)
	}
	return m, nil
}

// snapshotMsg re-bootstraps a follower: the full base edge list at an
// absolute version. The follower recreates its store from it (WAL
// pointer 0 — the trailing batch frames carry the pointer forward).
type snapshotMsg struct {
	vertices    int
	baseVersion int
	base        graph.EdgeList
}

func (m snapshotMsg) encode() []byte {
	p := make([]byte, 20+len(m.base)*edgeWireLen)
	binary.LittleEndian.PutUint32(p[0:], uint32(m.vertices))
	binary.LittleEndian.PutUint64(p[4:], uint64(m.baseVersion))
	binary.LittleEndian.PutUint64(p[12:], uint64(len(m.base)))
	putEdges(p[20:], m.base)
	return p
}

func decodeSnapshot(f frame) (snapshotMsg, error) {
	if len(f.payload) < 20 {
		return snapshotMsg{}, fmt.Errorf("%w: snapshot payload %d bytes", ErrProto, len(f.payload))
	}
	n := binary.LittleEndian.Uint64(f.payload[12:])
	if uint64(len(f.payload)-20) != n*edgeWireLen {
		return snapshotMsg{}, fmt.Errorf("%w: snapshot claims %d edges in %d payload bytes", ErrProto, n, len(f.payload))
	}
	return snapshotMsg{
		vertices:    int(binary.LittleEndian.Uint32(f.payload[0:])),
		baseVersion: int(int64(binary.LittleEndian.Uint64(f.payload[4:]))),
		base:        getEdges(f.payload[20:], int(n)),
	}, nil
}

// batchMsg ships one committed transition: transition is the absolute
// index (Δ+/Δ− become overlay transition on the follower), or -1 for a
// commit-pointer-only advance (a net-zero ingest window — the primary
// consumed WAL records without writing an overlay, and the follower must
// track the pointer or its resume handshake would re-request them).
type batchMsg struct {
	transition int // -1: pointer-only
	upToSeq    uint64
	adds, dels graph.EdgeList
}

func (m batchMsg) encode() []byte {
	p := make([]byte, 32+(len(m.adds)+len(m.dels))*edgeWireLen)
	binary.LittleEndian.PutUint64(p[0:], uint64(int64(m.transition)))
	binary.LittleEndian.PutUint64(p[8:], m.upToSeq)
	binary.LittleEndian.PutUint64(p[16:], uint64(len(m.adds)))
	binary.LittleEndian.PutUint64(p[24:], uint64(len(m.dels)))
	putEdges(p[32:], m.adds)
	putEdges(p[32+len(m.adds)*edgeWireLen:], m.dels)
	return p
}

func decodeBatch(f frame) (batchMsg, error) {
	if len(f.payload) < 32 {
		return batchMsg{}, fmt.Errorf("%w: batch payload %d bytes", ErrProto, len(f.payload))
	}
	addN := binary.LittleEndian.Uint64(f.payload[16:])
	delN := binary.LittleEndian.Uint64(f.payload[24:])
	if uint64(len(f.payload)-32) != (addN+delN)*edgeWireLen {
		return batchMsg{}, fmt.Errorf("%w: batch claims %d+%d edges in %d payload bytes", ErrProto, addN, delN, len(f.payload))
	}
	m := batchMsg{
		transition: int(int64(binary.LittleEndian.Uint64(f.payload[0:]))),
		upToSeq:    binary.LittleEndian.Uint64(f.payload[8:]),
		adds:       getEdges(f.payload[32:], int(addN)),
		dels:       getEdges(f.payload[32+int(addN)*edgeWireLen:], int(delN)),
	}
	if m.transition < -1 {
		return batchMsg{}, fmt.Errorf("%w: batch transition %d", ErrProto, m.transition)
	}
	return m, nil
}

// heartbeatMsg is the primary's live position; followers derive lag from
// it between commits.
type heartbeatMsg struct {
	transitions int
	walSeq      uint64
}

func (m heartbeatMsg) encode() []byte {
	p := make([]byte, 16)
	binary.LittleEndian.PutUint64(p[0:], uint64(m.transitions))
	binary.LittleEndian.PutUint64(p[8:], m.walSeq)
	return p
}

func decodeHeartbeat(f frame) (heartbeatMsg, error) {
	if len(f.payload) != 16 {
		return heartbeatMsg{}, fmt.Errorf("%w: heartbeat payload %d bytes", ErrProto, len(f.payload))
	}
	return heartbeatMsg{
		transitions: int(int64(binary.LittleEndian.Uint64(f.payload[0:]))),
		walSeq:      binary.LittleEndian.Uint64(f.payload[8:]),
	}, nil
}

func putEdges(p []byte, el graph.EdgeList) {
	for i, e := range el {
		o := i * edgeWireLen
		binary.LittleEndian.PutUint32(p[o:], uint32(e.Src))
		binary.LittleEndian.PutUint32(p[o+4:], uint32(e.Dst))
		binary.LittleEndian.PutUint32(p[o+8:], uint32(e.W))
	}
}

func getEdges(p []byte, n int) graph.EdgeList {
	if n == 0 {
		return nil
	}
	el := make(graph.EdgeList, n)
	for i := range el {
		o := i * edgeWireLen
		el[i] = graph.Edge{
			Src: graph.VertexID(binary.LittleEndian.Uint32(p[o:])),
			Dst: graph.VertexID(binary.LittleEndian.Uint32(p[o+4:])),
			W:   graph.Weight(binary.LittleEndian.Uint32(p[o+8:])),
		}
	}
	return el
}

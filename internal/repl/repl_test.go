package repl

import (
	"bytes"
	"context"
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"commongraph/internal/faults"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
	"commongraph/internal/store"
)

func e(s, d graph.VertexID, w graph.Weight) graph.Edge { return graph.Edge{Src: s, Dst: d, W: w} }
func el(es ...graph.Edge) graph.EdgeList               { return graph.EdgeList(es) }

// newSeededStore creates a primary-side store with a base and two
// committed transitions.
func newSeededStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Create(dir, 8, el(e(0, 1, 1), e(1, 2, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(el(e(2, 3, 1)), nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(el(e(3, 4, 1)), el(e(0, 1, 1)), 0); err != nil {
		t.Fatal(err)
	}
	return s
}

// pipeDialer wires each dial to a fresh in-process session on p.
func pipeDialer(p *Primary) func(context.Context) (net.Conn, error) {
	return func(context.Context) (net.Conn, error) {
		c1, c2 := net.Pipe()
		p.Attach(c2)
		return c1, nil
	}
}

// materialize folds a store's overlays over its base.
func materialize(t *testing.T, st *store.Store) graph.EdgeList {
	t.Helper()
	cur, err := st.Base()
	if err != nil {
		t.Fatal(err)
	}
	bv, tr, _, _ := st.Position()
	for v := bv; v < tr; v++ {
		adds, dels, oerr := st.Overlay(v)
		if oerr != nil {
			t.Fatal(oerr)
		}
		cur = graph.Union(graph.Minus(cur, dels), adds)
	}
	return cur
}

// waitConverged polls until the follower's durable position matches the
// primary store's, then cross-checks the materialized edge lists.
func waitConverged(t *testing.T, ps *store.Store, f *Follower, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		_, pt, pseq, _ := ps.Position()
		if fst := f.Store(); fst != nil {
			_, ft, fseq, _ := fst.Position()
			if ft == pt && fseq == pseq {
				if got, want := materialize(t, fst), materialize(t, ps); !graph.Equal(got, want) {
					t.Fatalf("follower converged to %v, primary holds %v", got, want)
				}
				return
			}
		}
		if time.Now().After(deadline) {
			pb, ptr, pseq, _ := ps.Position()
			var fb, ftr int
			var fseq uint64
			if fst := f.Store(); fst != nil {
				fb, ftr, fseq, _ = fst.Position()
			}
			t.Fatalf("no convergence: primary (%d,%d,%d), follower (%d,%d,%d)",
				pb, ptr, pseq, fb, ftr, fseq)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestBackoffGrowthCapAndJitterBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: 7}
	want := []time.Duration{10, 20, 40, 80, 80} // pre-jitter milliseconds
	for i, w := range want {
		d := b.Next()
		lo := time.Duration(float64(w*time.Millisecond) * 0.5)
		hi := time.Duration(float64(w*time.Millisecond) * 1.5)
		if d < lo || d >= hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i, d, lo, hi)
		}
	}
	b.Reset()
	if d := b.Next(); d >= 15*time.Millisecond {
		t.Fatalf("post-reset delay %v did not rewind to the base", d)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	a := Backoff{Seed: 42}
	b := Backoff{Seed: 42}
	c := Backoff{Seed: 43}
	var differ bool
	for i := 0; i < 8; i++ {
		da, db, dc := a.Next(), b.Next(), c.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged (%v != %v)", i, da, db)
		}
		if da != dc {
			differ = true
		}
	}
	if !differ {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestBackoffNoJitterWhenNegative(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Jitter: -1}
	if d := b.Next(); d != 10*time.Millisecond {
		t.Fatalf("jitter-disabled first delay %v, want 10ms", d)
	}
}

func TestSleepContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- SleepContext(ctx, time.Hour) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("SleepContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SleepContext did not honor cancellation")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	hp, hf := helloMsg{hasStore: true, vertices: 8, baseVersion: 1, transitions: 3, walSeq: 9}.encode()
	frames := []frame{
		{typ: frameHello, flags: hf, epoch: 2, payload: hp},
		{typ: frameSnapshot, epoch: 2, payload: snapshotMsg{vertices: 8, baseVersion: 1, base: el(e(0, 1, 1))}.encode()},
		{typ: frameBatch, epoch: 2, payload: batchMsg{transition: 3, upToSeq: 11, adds: el(e(1, 2, 5)), dels: el(e(0, 1, 1))}.encode()},
		{typ: frameBatch, epoch: 2, payload: batchMsg{transition: -1, upToSeq: 12}.encode()},
		{typ: frameHeartbeat, epoch: 2, payload: heartbeatMsg{transitions: 4, walSeq: 12}.encode()},
		{typ: frameFence, epoch: 3},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := writeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.typ != want.typ || got.epoch != want.epoch || got.flags != want.flags || !bytes.Equal(got.payload, want.payload) {
			t.Fatalf("frame %d round trip mismatch: %+v != %+v", i, got, want)
		}
	}
	h, err := decodeHello(frames[0])
	if err != nil || h != (helloMsg{hasStore: true, vertices: 8, baseVersion: 1, transitions: 3, walSeq: 9}) {
		t.Fatalf("hello decode %+v, %v", h, err)
	}
	b, err := decodeBatch(frames[2])
	if err != nil || b.transition != 3 || b.upToSeq != 11 || !graph.Equal(b.adds, el(e(1, 2, 5))) || !graph.Equal(b.dels, el(e(0, 1, 1))) {
		t.Fatalf("batch decode %+v, %v", b, err)
	}
	if b.adds[0].W != 5 {
		t.Fatalf("batch decode dropped the weight: %v", b.adds[0])
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{typ: frameHeartbeat, epoch: 1, payload: heartbeatMsg{transitions: 1, walSeq: 1}.encode()}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[frameHeaderLen] ^= 0xFF // flip a payload byte under the CRC
	if _, err := readFrame(bytes.NewReader(raw)); !errors.Is(err, ErrProto) {
		t.Fatalf("corrupted frame read = %v, want ErrProto", err)
	}
	raw[frameHeaderLen] ^= 0xFF
	raw[0] ^= 0xFF // now break the magic
	if _, err := readFrame(bytes.NewReader(raw)); !errors.Is(err, ErrProto) {
		t.Fatalf("bad-magic read = %v, want ErrProto", err)
	}
}

func TestFrameFaultInjection(t *testing.T) {
	disarm := faults.Arm(&faults.Plan{Specs: []faults.Spec{
		{Point: faults.ReplShipFrame, Times: 1},
		{Point: faults.ReplRecvFrame, Times: 1},
	}})
	defer disarm()
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{typ: frameFence}); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("armed writeFrame = %v, want ErrInjected", err)
	}
	if _, err := readFrame(&buf); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("armed readFrame = %v, want ErrInjected", err)
	}
}

func TestFollowerBootstrapAndLiveTail(t *testing.T) {
	dir := t.TempDir()
	ps := newSeededStore(t, filepath.Join(dir, "p"))
	defer ps.Close()
	p := NewPrimary(ps, 10*time.Millisecond)
	defer p.Close()

	f, err := OpenFollower(filepath.Join(dir, "f"), Options{
		Dial:    pipeDialer(p),
		Backoff: Backoff{Base: time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- f.Run(ctx) }()

	waitConverged(t, ps, f, 5*time.Second)
	// Lag becomes Known with the first heartbeat, which can trail the
	// batches that produced convergence by one tick.
	deadline := time.Now().Add(5 * time.Second)
	for {
		lag := f.Lag()
		if lag.Known && lag.Seq == 0 && lag.Windows == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("caught-up lag = %+v", lag)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Live tail: commits after catch-up ship without re-handshaking.
	if err := ps.AppendBatch(el(e(4, 5, 1)), nil, 0); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, ps, f, 5*time.Second)

	cancel()
	if err := <-runDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
}

func TestFollowerSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	ps := newSeededStore(t, filepath.Join(dir, "p"))
	defer ps.Close()
	p := NewPrimary(ps, 10*time.Millisecond)
	defer p.Close()
	fdir := filepath.Join(dir, "f")
	opts := Options{Dial: pipeDialer(p), Backoff: Backoff{Base: time.Millisecond, Seed: 1}}

	f, err := OpenFollower(fdir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go f.Run(ctx)
	waitConverged(t, ps, f, 5*time.Second)
	cancel()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// More history lands while the follower is down; a reopened follower
	// resumes from its durable position — no snapshot re-ship.
	if err := ps.AppendBatch(el(e(5, 6, 1)), nil, 0); err != nil {
		t.Fatal(err)
	}
	ships := obs.ReplSnapshotShips().Value()
	f2, err := OpenFollower(fdir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go f2.Run(ctx2)
	waitConverged(t, ps, f2, 5*time.Second)
	if got := obs.ReplSnapshotShips().Value(); got != ships {
		t.Fatalf("reopened follower forced %d snapshot ships; resume should ship none", got-ships)
	}
}

func TestReconnectResumesWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	ps := newSeededStore(t, filepath.Join(dir, "p"))
	defer ps.Close()
	p := NewPrimary(ps, 10*time.Millisecond)
	defer p.Close()

	f, err := OpenFollower(filepath.Join(dir, "f"), Options{
		Dial:    pipeDialer(p),
		Backoff: Backoff{Base: time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)
	waitConverged(t, ps, f, 5*time.Second)

	ships := obs.ReplSnapshotShips().Value()
	reconnects := obs.ReplReconnects().Value()
	// Sever the live session under the follower; the catch-up loop must
	// redial and resume incrementally.
	f.mu.Lock()
	conn := f.conn
	f.mu.Unlock()
	if conn == nil {
		t.Fatal("no live session to sever")
	}
	conn.Close()
	if err := ps.AppendBatch(el(e(6, 7, 1)), nil, 0); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, ps, f, 5*time.Second)
	if got := obs.ReplSnapshotShips().Value(); got != ships {
		t.Fatalf("reconnect forced %d snapshot ships; resume should ship none", got-ships)
	}
	if obs.ReplReconnects().Value() == reconnects {
		t.Fatal("reconnect counter did not move")
	}
}

func TestCompactionForcesRebootstrap(t *testing.T) {
	dir := t.TempDir()
	ps := newSeededStore(t, filepath.Join(dir, "p"))
	defer ps.Close()
	p := NewPrimary(ps, 10*time.Millisecond)
	defer p.Close()
	fdir := filepath.Join(dir, "f")
	opts := Options{Dial: pipeDialer(p), Backoff: Backoff{Base: time.Millisecond, Seed: 1}}

	f, err := OpenFollower(fdir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go f.Run(ctx)
	waitConverged(t, ps, f, 5*time.Second)
	cancel()
	f.Close()

	// While the follower is down, the primary commits more and compacts
	// past the follower's position: the next handshake cannot resume.
	if err := ps.AppendBatch(el(e(4, 5, 1)), nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := ps.CompactTo(3); err != nil {
		t.Fatal(err)
	}
	ships := obs.ReplSnapshotShips().Value()
	f2, err := OpenFollower(fdir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go f2.Run(ctx2)
	waitConverged(t, ps, f2, 5*time.Second)
	if got := obs.ReplSnapshotShips().Value(); got != ships+1 {
		t.Fatalf("compacted-past resume shipped %d snapshots, want exactly 1", got-ships)
	}
	fb, _, _, _ := f2.Store().Position()
	if fb != 3 {
		t.Fatalf("re-bootstrapped base version %d, want 3", fb)
	}
}

func TestPointerOnlyAdvanceShips(t *testing.T) {
	dir := t.TempDir()
	ps := newSeededStore(t, filepath.Join(dir, "p"))
	defer ps.Close()
	p := NewPrimary(ps, 10*time.Millisecond)
	defer p.Close()
	f, err := OpenFollower(filepath.Join(dir, "f"), Options{
		Dial:    pipeDialer(p),
		Backoff: Backoff{Base: time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)
	waitConverged(t, ps, f, 5*time.Second)

	// A net-zero window: records are journaled and consumed without an
	// overlay. The commit pointer must still replicate, or the next
	// resume handshake would re-request consumed records.
	us := []store.RawUpdate{
		{Op: store.RawAdd, Edge: e(6, 7, 1)},
		{Op: store.RawDelete, Edge: e(6, 7, 1)},
	}
	if err := ps.Journal(us); err != nil {
		t.Fatal(err)
	}
	if err := ps.AppendBatch(nil, nil, us[1].Seq); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, ps, f, 5*time.Second)
	_, _, fseq, _ := f.Store().Position()
	if fseq != us[1].Seq {
		t.Fatalf("follower commit pointer %d, want %d", fseq, us[1].Seq)
	}
}

func TestApplyAndOnLagCallbacks(t *testing.T) {
	dir := t.TempDir()
	ps := newSeededStore(t, filepath.Join(dir, "p"))
	defer ps.Close()
	p := NewPrimary(ps, 10*time.Millisecond)
	defer p.Close()

	type applied struct {
		transition int
		adds, dels int
	}
	appliedCh := make(chan applied, 16)
	lagKnown := make(chan struct{}, 1)
	f, err := OpenFollower(filepath.Join(dir, "f"), Options{
		Dial:    pipeDialer(p),
		Backoff: Backoff{Base: time.Millisecond, Seed: 1},
		Apply: func(tr int, adds, dels graph.EdgeList, _ uint64) error {
			appliedCh <- applied{tr, len(adds), len(dels)}
			return nil
		},
		OnLag: func(l Lag) {
			if l.Known {
				select {
				case lagKnown <- struct{}{}:
				default:
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)
	waitConverged(t, ps, f, 5*time.Second)

	want := []applied{{0, 1, 0}, {1, 1, 1}}
	for i, w := range want {
		select {
		case got := <-appliedCh:
			if got != w {
				t.Fatalf("apply %d = %+v, want %+v", i, got, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("apply callback %d never fired", i)
		}
	}
	select {
	case <-lagKnown:
	case <-time.After(5 * time.Second):
		t.Fatal("OnLag never reported a known lag")
	}
}

func TestHelloAtHigherEpochFencesStalePrimary(t *testing.T) {
	dir := t.TempDir()
	ps := newSeededStore(t, filepath.Join(dir, "p"))
	defer ps.Close()
	p := NewPrimary(ps, 10*time.Millisecond)
	defer p.Close()

	// A follower that already lives at epoch 3 — e.g. bootstrapped from a
	// promoted peer — dials the old primary. The hello alone must fence it.
	fs, err := store.CreateReplica(filepath.Join(dir, "f"), 8, nil, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	fs.Close()
	f, err := OpenFollower(filepath.Join(dir, "f"), Options{
		Dial:    pipeDialer(p),
		Backoff: Backoff{Base: time.Hour}, // one attempt, then park
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)

	deadline := time.Now().Add(5 * time.Second)
	for !ps.Fenced() {
		if time.Now().After(deadline) {
			t.Fatal("primary never fenced after higher-epoch hello")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := ps.AppendBatch(el(e(6, 7, 1)), nil, 0); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("fenced primary AppendBatch = %v, want ErrFenced", err)
	}
}

func TestPromoteFencesLivePrimary(t *testing.T) {
	dir := t.TempDir()
	ps := newSeededStore(t, filepath.Join(dir, "p"))
	defer ps.Close()
	p := NewPrimary(ps, 10*time.Millisecond)
	defer p.Close()

	f, err := OpenFollower(filepath.Join(dir, "f"), Options{
		Dial:    pipeDialer(p),
		Backoff: Backoff{Base: time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- f.Run(ctx) }()
	waitConverged(t, ps, f, 5*time.Second)

	st, epoch, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("promoted epoch %d, want 1", epoch)
	}
	// Run winds down cleanly — a promoted replica never reconnects.
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run after promote = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after promotion")
	}
	// The fence frame pushed up the live session fences the old primary:
	// it can never commit after the promotion.
	deadline := time.Now().Add(5 * time.Second)
	for !ps.Fenced() {
		if time.Now().After(deadline) {
			t.Fatal("old primary never fenced after promotion")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := ps.AppendBatch(el(e(6, 7, 1)), nil, 0); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("stale primary AppendBatch = %v, want ErrFenced", err)
	}
	// The promoted store is the new writer, and survives Follower.Close
	// (ownership transferred).
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBatch(el(e(6, 7, 1)), nil, 0); err != nil {
		t.Fatalf("promoted store append = %v", err)
	}
	if st.Epoch() != 1 {
		t.Fatalf("promoted store epoch %d, want 1", st.Epoch())
	}
	if _, _, err := f.Promote(); !errors.Is(err, ErrPromoted) {
		t.Fatalf("second Promote = %v, want ErrPromoted", err)
	}
	st.Close()
}

func TestPromoteInjectedFaultIsRetryable(t *testing.T) {
	dir := t.TempDir()
	ps := newSeededStore(t, filepath.Join(dir, "p"))
	defer ps.Close()
	p := NewPrimary(ps, 10*time.Millisecond)
	defer p.Close()
	f, err := OpenFollower(filepath.Join(dir, "f"), Options{
		Dial:    pipeDialer(p),
		Backoff: Backoff{Base: time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)
	waitConverged(t, ps, f, 5*time.Second)

	disarm := faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.ReplPromote, Times: 1}}})
	_, _, err = f.Promote()
	disarm()
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("injected Promote = %v, want ErrInjected", err)
	}
	if f.Store().Epoch() != 0 {
		t.Fatal("failed promotion moved the epoch")
	}
	// The failure is pre-durability; retrying succeeds.
	st, epoch, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("retried promotion epoch %d, want 1", epoch)
	}
	if st.Fenced() {
		t.Fatal("promoted store is fenced")
	}
}

// TestKillPointSelfHeal: a transient injected failure at each wire-order
// kill point breaks the session; the catch-up loop reconnects, resumes
// from the durable position, and converges — no operator involved.
func TestKillPointSelfHeal(t *testing.T) {
	points := []faults.Point{faults.ReplShipFrame, faults.ReplRecvFrame, faults.ReplReplayBatch}
	for _, pt := range points {
		for _, after := range []int{0, 2} {
			t.Run(string(pt)+"/after-"+string(rune('0'+after)), func(t *testing.T) {
				dir := t.TempDir()
				ps := newSeededStore(t, filepath.Join(dir, "p"))
				defer ps.Close()
				p := NewPrimary(ps, 10*time.Millisecond)
				defer p.Close()
				disarm := faults.Arm(&faults.Plan{Specs: []faults.Spec{
					{Point: pt, After: after, Times: 1, Transient: true},
				}})
				defer disarm()
				f, err := OpenFollower(filepath.Join(dir, "f"), Options{
					Dial:    pipeDialer(p),
					Backoff: Backoff{Base: time.Millisecond, Seed: uint64(after) + 1},
				})
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				go f.Run(ctx)
				waitConverged(t, ps, f, 10*time.Second)
				if faults.Hits(pt) == 0 {
					t.Fatalf("kill point %s never hit", pt)
				}
			})
		}
	}
}

// TestFollowerCrashRecovery: the follower dies at each kill point (the
// injected error parks the catch-up loop, the store is closed without
// ceremony), is reopened cold, and must converge from its durable
// position — the replica-side analogue of the store crash matrix.
func TestFollowerCrashRecovery(t *testing.T) {
	points := []faults.Point{faults.ReplShipFrame, faults.ReplRecvFrame, faults.ReplReplayBatch}
	for _, pt := range points {
		t.Run(string(pt), func(t *testing.T) {
			dir := t.TempDir()
			ps := newSeededStore(t, filepath.Join(dir, "p"))
			defer ps.Close()
			p := NewPrimary(ps, 10*time.Millisecond)
			defer p.Close()
			fdir := filepath.Join(dir, "f")

			// After: let the handshake and bootstrap through, then fail
			// mid-stream (replay hits once per batch, ship/recv once per
			// frame, so the thresholds differ). Backoff Base parks the
			// loop after the failure so the "crash" happens at the
			// injected moment, not later.
			after := 3
			if pt == faults.ReplReplayBatch {
				after = 1
			}
			disarm := faults.Arm(&faults.Plan{Specs: []faults.Spec{
				{Point: pt, After: after, Times: 1, Transient: true},
			}})
			f, err := OpenFollower(fdir, Options{
				Dial:    pipeDialer(p),
				Backoff: Backoff{Base: time.Hour},
			})
			if err != nil {
				disarm()
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			runDone := make(chan error, 1)
			go func() { runDone <- f.Run(ctx) }()
			deadline := time.Now().Add(10 * time.Second)
			for faults.Hits(pt) < after+1 {
				if time.Now().After(deadline) {
					cancel()
					disarm()
					t.Fatalf("kill point %s never fired", pt)
				}
				time.Sleep(time.Millisecond)
			}
			cancel()
			<-runDone
			f.Close()
			disarm()

			// Cold restart: reopen and converge, with fresh history on top.
			if err := ps.AppendBatch(el(e(5, 6, 1)), nil, 0); err != nil {
				t.Fatal(err)
			}
			f2, err := OpenFollower(fdir, Options{
				Dial:    pipeDialer(p),
				Backoff: Backoff{Base: time.Millisecond, Seed: 9},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer f2.Close()
			ctx2, cancel2 := context.WithCancel(context.Background())
			defer cancel2()
			go f2.Run(ctx2)
			waitConverged(t, ps, f2, 10*time.Second)
		})
	}
}

// TestChaosReplicationConverges: probabilistic faults at every repl kill
// point while the primary keeps committing; the follower must still
// converge once the plan disarms.
func TestChaosReplicationConverges(t *testing.T) {
	dir := t.TempDir()
	ps := newSeededStore(t, filepath.Join(dir, "p"))
	defer ps.Close()
	p := NewPrimary(ps, 5*time.Millisecond)
	defer p.Close()
	disarm := faults.Arm(&faults.Plan{Seed: 0xC6, Specs: []faults.Spec{
		{Point: faults.ReplShipFrame, Prob: 0.05, Transient: true},
		{Point: faults.ReplRecvFrame, Prob: 0.05, Transient: true},
		{Point: faults.ReplReplayBatch, Prob: 0.1, Transient: true},
	}})
	f, err := OpenFollower(filepath.Join(dir, "f"), Options{
		Dial:    pipeDialer(p),
		Backoff: Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 2},
	})
	if err != nil {
		disarm()
		t.Fatal(err)
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)
	for i := 0; i < 10; i++ {
		var w graph.Weight = graph.Weight(i + 1)
		if err := ps.AppendBatch(el(e(graph.VertexID(i%7), graph.VertexID(i%7+1), w)), nil, 0); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	disarm()
	waitConverged(t, ps, f, 10*time.Second)
}

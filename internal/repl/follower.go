package repl

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"os"
	"sync"

	"commongraph/internal/faults"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
	"commongraph/internal/store"
)

// ErrStalePeer is the retryable session error a follower returns after
// hanging up on a primary whose epoch is older than its own — the
// follower has already sent the fence frame that makes that primary
// fence itself.
var ErrStalePeer = errors.New("repl: peer is at a stale epoch")

// ErrPromoted is returned by operations on a follower that has been
// promoted and no longer replicates.
var ErrPromoted = errors.New("repl: follower was promoted")

// Lag is a follower's staleness relative to the primary's last reported
// position. Known is false until the first heartbeat of the first
// session lands.
type Lag struct {
	Known bool
	// Seq is the primary's WAL commit pointer minus the local one.
	Seq uint64
	// Windows is the primary's transition count minus the local one.
	Windows int
}

// Options configures a Follower. Dial is required; everything else is
// optional.
type Options struct {
	// Dial establishes a session connection to the current primary. It is
	// called once per catch-up attempt, under the Run context.
	Dial func(ctx context.Context) (net.Conn, error)
	// Backoff paces reconnect attempts. Zero value = defaults; it is
	// reset after any session that made durable progress.
	Backoff Backoff
	// Apply, when set, observes every replayed transition after it is
	// durable in the local store — the hook the public layer uses to
	// mirror replicated history into the in-memory evolving graph.
	Apply func(transition int, adds, dels graph.EdgeList, walSeq uint64) error
	// Bootstrap, when set, observes every snapshot re-bootstrap after the
	// local store has been recreated from it. The previous *store.Store
	// is closed and invalid; Store() already returns the new one.
	Bootstrap func(st *store.Store) error
	// OnLag, when set, observes every staleness update (heartbeats and
	// replays). Called on the session goroutine; keep it cheap.
	OnLag func(l Lag)
	// Trace, when set, overrides the tracer replay/promote spans record
	// on (default: the process's ambient tracer, obs.Active()). Tests
	// inject one per side to stitch a primary and follower running in
	// one process.
	Trace *obs.Tracer
}

// Follower replicates a primary's history into a local durable store.
// Open it, then drive the catch-up loop with Run; Promote converts the
// replica into the group's new writer.
type Follower struct {
	dir string
	opt Options

	wmu sync.Mutex // serializes frame writes on the live conn

	mu         sync.Mutex
	st         *store.Store // nil until the first snapshot bootstrap
	conn       net.Conn     // live session conn, nil between sessions
	primaryT   int
	primarySeq uint64
	seen       bool
	promoted   bool
	closed     bool
	// lastTrace is the trace context of the most recent frame that
	// carried one — the primary-side span a staleness-budgeted read or a
	// promotion links itself to.
	lastTrace obs.SpanContext
}

func (f *Follower) tracer() *obs.Tracer {
	if f.opt.Trace != nil {
		return f.opt.Trace
	}
	return obs.Active()
}

// LastTrace returns the trace context of the most recently replayed
// primary span (zero before any frame carried one). Follower-side read
// spans join it so a stitched export links reads to the ingest that fed
// them.
func (f *Follower) LastTrace() obs.SpanContext {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastTrace
}

func (f *Follower) noteTrace(sc obs.SpanContext) {
	if !sc.Valid() {
		return
	}
	f.mu.Lock()
	f.lastTrace = sc
	f.mu.Unlock()
}

// OpenFollower opens (or prepares to create) the replica store in dir.
// A missing or empty dir is fine: the first session bootstraps it from a
// shipped snapshot.
func OpenFollower(dir string, opt Options) (*Follower, error) {
	if opt.Dial == nil {
		return nil, fmt.Errorf("repl: follower needs a Dial function")
	}
	f := &Follower{dir: dir, opt: opt}
	st, err := store.Open(dir)
	switch {
	case err == nil:
		f.st = st
	case errors.Is(err, fs.ErrNotExist):
		// Not a store yet; the first session ships a snapshot.
	default:
		return nil, err
	}
	return f, nil
}

// Store returns the local replica store (nil before the first
// bootstrap). It remains valid after promotion; ownership passes to the
// caller of Promote.
func (f *Follower) Store() *store.Store {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// Lag returns the staleness relative to the primary's last report.
func (f *Follower) Lag() Lag {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lagLocked()
}

func (f *Follower) lagLocked() Lag {
	if !f.seen || f.st == nil {
		return Lag{}
	}
	_, t, seq, _ := f.st.Position()
	l := Lag{Known: true}
	if f.primaryT > t {
		l.Windows = f.primaryT - t
	}
	if f.primarySeq > seq {
		l.Seq = f.primarySeq - seq
	}
	return l
}

// Run drives the catch-up loop: dial, handshake from the durable
// position, replay until the session breaks, back off (jittered,
// context-aware), redial. It returns nil after Promote, or ctx's error.
// Session errors are retried indefinitely — a follower's job is to
// outlive its primary's restarts.
func (f *Follower) Run(ctx context.Context) error {
	bo := f.opt.Backoff
	for {
		f.mu.Lock()
		if f.promoted {
			f.mu.Unlock()
			return nil
		}
		if f.closed {
			f.mu.Unlock()
			return fmt.Errorf("repl: follower closed")
		}
		f.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return err
		}

		conn, err := f.opt.Dial(ctx)
		if err == nil {
			f.setConn(conn)
			var progress bool
			progress, err = f.session(ctx, conn)
			f.setConn(nil)
			conn.Close()
			if progress {
				bo.Reset()
			}
		}
		f.mu.Lock()
		promoted := f.promoted
		f.mu.Unlock()
		if promoted {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err != nil {
			obs.Env().Event("repl.session_retry", obs.String("error", err.Error()))
		}
		obs.ReplReconnects().Inc()
		if err := bo.Sleep(ctx); err != nil {
			return err
		}
	}
}

func (f *Follower) setConn(c net.Conn) {
	f.mu.Lock()
	f.conn = c
	f.mu.Unlock()
}

// write serializes frame writes on the session conn: the session's own
// hello/fence frames and Promote's fence (which races the session by
// design) must not interleave bytes.
func (f *Follower) write(conn net.Conn, fr frame) error {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	return writeFrame(conn, fr)
}

// epoch returns the follower's current group epoch (0 before any store).
func (f *Follower) epoch() uint64 {
	f.mu.Lock()
	st := f.st
	f.mu.Unlock()
	if st == nil {
		return 0
	}
	return st.Epoch()
}

// session runs one connected session and reports whether it made durable
// progress (any bootstrap or replay).
func (f *Follower) session(ctx context.Context, conn net.Conn) (progress bool, err error) {
	// Cancellation must unblock the frame read; closing the conn is the
	// only portable way.
	done := make(chan struct{})
	//cgvet:ignore goleak -- exits via the deferred close(done) or ctx cancellation
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	defer close(done)

	hello := helloMsg{}
	f.mu.Lock()
	st := f.st
	f.mu.Unlock()
	if st != nil {
		bv, t, seq, _ := st.Position()
		hello = helloMsg{hasStore: true, vertices: st.NumVertices(),
			baseVersion: bv, transitions: t, walSeq: seq}
	}
	payload, flags := hello.encode()
	if err := f.write(conn, frame{typ: frameHello, flags: flags, epoch: f.epoch(), payload: payload}); err != nil {
		return false, err
	}

	for {
		fr, err := readFrame(conn)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return progress, cerr
			}
			return progress, err
		}
		cur := f.epoch()
		if fr.epoch < cur {
			// A primary still writing at an epoch our group moved past:
			// tell it (the fence persists on its side) and hang up.
			if werr := f.write(conn, frame{typ: frameFence, epoch: cur}); werr != nil {
				return progress, werr
			}
			return progress, fmt.Errorf("repl: frame at epoch %d < local %d: %w", fr.epoch, cur, ErrStalePeer)
		}

		switch fr.typ {
		case frameSnapshot:
			msg, derr := decodeSnapshot(fr)
			if derr != nil {
				return progress, derr
			}
			if berr := f.bootstrap(msg, fr.epoch); berr != nil {
				return progress, berr
			}
			progress = true

		case frameBatch:
			if err := faults.Check(faults.ReplReplayBatch); err != nil {
				return progress, fmt.Errorf("repl: replay batch: %w", err)
			}
			msg, derr := decodeBatch(fr)
			if derr != nil {
				return progress, derr
			}
			f.mu.Lock()
			st := f.st
			f.mu.Unlock()
			if st == nil {
				return progress, fmt.Errorf("%w: batch before snapshot bootstrap", ErrProto)
			}
			if aerr := st.AdoptEpoch(fr.epoch); aerr != nil {
				return progress, aerr
			}
			// The replay span is a remote child of the primary's ship
			// span: the cross-process edge of the stitched timeline.
			sp := f.tracer().StartRemote(fr.trace, "repl.replay",
				obs.Int("transition", msg.transition),
				obs.Int("adds", len(msg.adds)), obs.Int("dels", len(msg.dels)))
			rerr := f.replay(st, msg)
			if rerr != nil {
				sp.SetAttr(obs.String("error", rerr.Error()))
				sp.End()
				return progress, rerr
			}
			sp.End()
			f.noteTrace(fr.trace)
			progress = true
			f.observeLag()

		case frameHeartbeat:
			msg, derr := decodeHeartbeat(fr)
			if derr != nil {
				return progress, derr
			}
			f.mu.Lock()
			if f.st != nil {
				// Adopt quiet-period epoch advances too, so a reconnect
				// hello carries the group epoch even with no commits.
				f.mu.Unlock()
				if aerr := f.st.AdoptEpoch(fr.epoch); aerr != nil {
					return progress, aerr
				}
				f.mu.Lock()
			}
			f.primaryT, f.primarySeq, f.seen = msg.transitions, msg.walSeq, true
			f.mu.Unlock()
			f.noteTrace(fr.trace)
			f.observeLag()

		case frameFence:
			// Someone with a newer epoch than ours refuses us. Adopt and
			// re-handshake; if the fence carries our own epoch the group
			// is confused and retrying is still the only safe move.
			f.mu.Lock()
			st := f.st
			f.mu.Unlock()
			if st != nil && fr.epoch > cur {
				if aerr := st.AdoptEpoch(fr.epoch); aerr != nil {
					return progress, aerr
				}
			}
			return progress, fmt.Errorf("repl: fenced by peer at epoch %d (local %d)", fr.epoch, cur)

		default:
			return progress, fmt.Errorf("%w: unexpected %s frame from primary", ErrProto, fr.typ)
		}
	}
}

// bootstrap recreates the local store from a shipped base snapshot. The
// old store (if any) is closed and its directory replaced; the WAL
// pointer starts at 0 and the trailing batch frames advance it.
func (f *Follower) bootstrap(msg snapshotMsg, epoch uint64) error {
	f.mu.Lock()
	old := f.st
	f.st = nil
	f.mu.Unlock()
	if old != nil {
		if err := old.Close(); err != nil {
			return err
		}
	}
	if err := os.RemoveAll(f.dir); err != nil {
		return err
	}
	st, err := store.CreateReplica(f.dir, msg.vertices, msg.base, msg.baseVersion, 0, epoch)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.st = st
	f.mu.Unlock()
	obs.Env().Event("repl.bootstrap", obs.Int("base_version", msg.baseVersion),
		obs.Int("edges", len(msg.base)))
	if f.opt.Bootstrap != nil {
		return f.opt.Bootstrap(st)
	}
	return nil
}

// replay applies one batch frame to the local store through the same
// AppendBatch commit path the primary used.
func (f *Follower) replay(st *store.Store, msg batchMsg) error {
	if msg.transition < 0 {
		// Commit-pointer-only advance (a net-zero window upstream).
		if msg.upToSeq <= st.WALSeq() {
			return nil
		}
		return st.AppendBatch(nil, nil, msg.upToSeq)
	}
	cur := st.Transitions()
	if msg.transition < cur {
		return nil // duplicate re-ship after a torn session; replay is idempotent
	}
	if msg.transition > cur {
		return fmt.Errorf("%w: batch for transition %d, local store at %d", ErrProto, msg.transition, cur)
	}
	if err := st.AppendBatch(msg.adds, msg.dels, msg.upToSeq); err != nil {
		return err
	}
	obs.ReplBatchesReplayed().Inc()
	if f.opt.Apply != nil {
		return f.opt.Apply(msg.transition, msg.adds, msg.dels, st.WALSeq())
	}
	return nil
}

// observeLag refreshes the lag gauges and fires OnLag.
func (f *Follower) observeLag() {
	f.mu.Lock()
	l := f.lagLocked()
	cb := f.opt.OnLag
	f.mu.Unlock()
	if l.Known {
		obs.ReplLagSeq().Set(int64(l.Seq))
		obs.ReplLagWindows().Set(int64(l.Windows))
	}
	if cb != nil {
		cb(l)
	}
}

// Promote converts the replica into the group's new writer: the local
// store claims a strictly higher epoch (durably, before anything else),
// a fence frame is pushed up the live session if one exists (best
// effort — a primary that misses it still fences on the next hello it
// hears at the new epoch), and the catch-up loop winds down. Ownership
// of the returned store passes to the caller; Close will not close it.
func (f *Follower) Promote() (*store.Store, uint64, error) {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return nil, 0, ErrPromoted
	}
	st := f.st
	if st == nil {
		f.mu.Unlock()
		return nil, 0, fmt.Errorf("repl: cannot promote before the first bootstrap")
	}
	f.promoted = true
	conn := f.conn
	lastTrace := f.lastTrace
	f.mu.Unlock()

	// The promotion joins the trace of the last replayed primary span, so
	// a mid-trace failover keeps one TraceID lineage: primary ingest →
	// ship → replay → promote → (via the fence frame) the fenced
	// ex-primary's final span.
	sp := f.tracer().StartRemote(lastTrace, "repl.promote")
	epoch, err := st.BumpEpoch()
	if err != nil {
		f.mu.Lock()
		f.promoted = false
		f.mu.Unlock()
		sp.SetAttr(obs.String("error", err.Error()))
		sp.End()
		return nil, 0, err
	}
	sp.SetAttr(obs.Int64("epoch", int64(epoch)))
	fenceSc := sp.Context()
	if !fenceSc.Valid() {
		fenceSc = lastTrace
	}
	if conn != nil {
		// Best-effort immediate fence; errors are fine — the epoch is
		// already durable and will fence the primary on any later contact.
		_ = f.write(conn, frame{typ: frameFence, epoch: epoch, trace: fenceSc})
		conn.Close()
	}
	sp.End()
	obs.Env().Event("repl.promoted", obs.Int64("epoch", int64(epoch)))
	return st, epoch, nil
}

// Close stops the follower and closes the local store (unless Promote
// already transferred ownership). Cancel Run's context first; Close also
// severs a live session so a blocked read unblocks.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	conn := f.conn
	st := f.st
	promoted := f.promoted
	f.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if st != nil && !promoted {
		return st.Close()
	}
	return nil
}

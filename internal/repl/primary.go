package repl

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"commongraph/internal/obs"
	"commongraph/internal/store"
)

// ErrSuperseded is returned by a primary session that learned — from a
// follower's fence frame or a hello stamped with a higher epoch — that
// it has been superseded. By the time it surfaces, the local store is
// durably fenced (store.ErrFenced on every write path).
var ErrSuperseded = errors.New("repl: superseded by a higher epoch")

// DefaultHeartbeat is the primary's position-broadcast period when the
// store is quiet.
const DefaultHeartbeat = 100 * time.Millisecond

// Primary replicates one durable store to any number of followers. Each
// session resumes from the follower's reported position: already-durable
// history is never re-shipped across reconnects unless compaction folded
// it into the base (then a fresh snapshot bootstrap is shipped).
// Sessions are independent; a slow follower delays only itself.
type Primary struct {
	st        *store.Store
	heartbeat time.Duration

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	trace  *obs.Tracer
	conns  map[net.Conn]struct{}
	lns    map[net.Listener]struct{}
	closed bool
	wg     sync.WaitGroup
}

// SetTracer overrides the tracer ship spans record on (default: the
// process's ambient tracer, obs.Active()). Tests inject one per side to
// stitch a primary and follower running in one process.
func (p *Primary) SetTracer(t *obs.Tracer) {
	p.mu.Lock()
	p.trace = t
	p.mu.Unlock()
}

func (p *Primary) tracer() *obs.Tracer {
	p.mu.Lock()
	t := p.trace
	p.mu.Unlock()
	if t != nil {
		return t
	}
	return obs.Active()
}

// NewPrimary wraps an open store for serving. heartbeat <= 0 uses
// DefaultHeartbeat.
func NewPrimary(st *store.Store, heartbeat time.Duration) *Primary {
	if heartbeat <= 0 {
		heartbeat = DefaultHeartbeat
	}
	// The primary is its own lifecycle root: sessions serve until Close,
	// not until some caller's request context ends.
	ctx, cancel := context.WithCancel(context.Background()) //cgvet:ignore ctxflow -- replication-server lifecycle root; cancelled by Close
	return &Primary{
		st:        st,
		heartbeat: heartbeat,
		ctx:       ctx,
		cancel:    cancel,
		conns:     make(map[net.Conn]struct{}),
		lns:       make(map[net.Listener]struct{}),
	}
}

// Serve accepts follower sessions on ln until Close (or the listener
// fails). It blocks; run it on its own goroutine when serving is not the
// caller's main loop.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("repl: primary closed")
	}
	p.lns[ln] = struct{}{}
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			delete(p.lns, ln)
			p.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		p.Attach(conn)
	}
}

// Attach serves one already-established connection in the background —
// the in-process (net.Pipe) path tests and benchmarks use. The session
// owns conn and closes it.
func (p *Primary) Attach(conn net.Conn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.conns[conn] = struct{}{}
	p.wg.Add(1)
	p.mu.Unlock()
	// Terminates via Close: the shared ctx cancels the session select and
	// closing conn unblocks any in-flight frame read/write.
	//cgvet:ignore goleak -- session goroutine; Primary.Close cancels ctx, closes conn, and waits on wg
	go func() {
		defer p.wg.Done()
		err := p.serveSession(conn)
		conn.Close()
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
		if err != nil && !errors.Is(err, context.Canceled) {
			obs.Env().Event("repl.session_end", obs.String("error", err.Error()))
		}
	}()
}

// Close tears the primary down: stops listeners, cancels sessions,
// closes their connections, and waits for every session goroutine.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.cancel()
	for ln := range p.lns {
		ln.Close()
	}
	for conn := range p.conns {
		conn.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}

// serveSession runs one follower session: handshake, catch-up, then the
// ship loop — wake on commit (store.CommitSignal), on the heartbeat
// ticker, on a frame from the follower (fence), or on Close.
func (p *Primary) serveSession(conn net.Conn) error {
	hf, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("repl: hello: %w", err)
	}
	if hf.typ != frameHello {
		return fmt.Errorf("%w: expected hello, got %s", ErrProto, hf.typ)
	}
	hello, err := decodeHello(hf)
	if err != nil {
		return err
	}
	if hf.epoch > p.st.Epoch() {
		// The follower already lives in a newer epoch than ours: we are
		// the stale primary. Fence durably before anything else.
		ferr := p.st.ObserveEpoch(hf.epoch)
		if ferr != nil && !errors.Is(ferr, store.ErrFenced) {
			return ferr
		}
		return fmt.Errorf("repl: hello at epoch %d: %w", hf.epoch, ErrSuperseded)
	}

	// The reader goroutine watches for follower frames — a fence, or the
	// connection dying. It terminates when conn closes (the session's
	// caller always closes conn on return).
	fromFollower := make(chan error, 1)
	//cgvet:ignore goleak -- reader unblocks when the session closes conn
	go func() {
		for {
			f, rerr := readFrame(conn)
			if rerr != nil {
				fromFollower <- rerr
				return
			}
			if f.typ == frameFence {
				// The fence carries the promotion span's context: this
				// final span of the fenced ex-primary joins the new
				// authority's trace, so failover reads as one lineage.
				sp := p.tracer().StartRemote(f.trace, "repl.fenced",
					obs.Int("epoch", int(f.epoch)))
				oerr := p.st.ObserveEpoch(f.epoch)
				if oerr == nil || errors.Is(oerr, store.ErrFenced) {
					oerr = fmt.Errorf("repl: fence at epoch %d: %w", f.epoch, ErrSuperseded)
				}
				sp.End()
				obs.Incident("fenced", oerr)
				fromFollower <- oerr
				return
			}
			// Anything else mid-session is out of protocol.
			fromFollower <- fmt.Errorf("%w: unexpected %s frame from follower", ErrProto, f.typ)
			return
		}
	}()

	// Resume coordinates. A handshake that cannot be resumed (no store,
	// different vertex space, or a position this store never produced —
	// ahead of us, or behind our compacted base) forces a snapshot
	// bootstrap, expressed as "shipped nothing yet" so the loop's
	// compaction check (sentT < baseVersion) fires on its first pass.
	_, t, seq, _ := p.st.Position()
	sentT, sentSeq := hello.transitions, hello.walSeq
	if !hello.hasStore || hello.vertices != p.st.NumVertices() ||
		hello.transitions > t || hello.walSeq > seq {
		sentT, sentSeq = -1, 0
	}

	tick := time.NewTicker(p.heartbeat)
	defer tick.Stop()
	// lastSc is the trace context of the most recently shipped batch; the
	// heartbeat re-carries it so a follower that connects between commits
	// still links its lag observations to the trace that produced the
	// position it is chasing.
	var lastSc obs.SpanContext
	for {
		// Arm the commit signal before reading the position: a commit
		// landing between the two fires the already-armed signal, so the
		// loop can never sleep through it.
		sig := p.st.CommitSignal()
		bv, t, seq, epoch := p.st.Position()

		if sentT < bv {
			// The follower's next transition was folded into the base
			// (or this is a bootstrap): ship the whole base snapshot.
			base, berr := p.st.Base()
			if berr != nil {
				return berr
			}
			msg := snapshotMsg{vertices: p.st.NumVertices(), baseVersion: bv, base: base}
			sp := p.tracer().StartSpan("repl.ship_snapshot",
				obs.Int("base_version", bv), obs.Int("edges", len(base)))
			err := writeFrame(conn, frame{typ: frameSnapshot, epoch: epoch, trace: sp.Context(), payload: msg.encode()})
			sp.End()
			if err != nil {
				return err
			}
			obs.ReplSnapshotShips().Inc()
			sentT, sentSeq = bv, 0
		}
		for sentT < t {
			adds, dels, oerr := p.st.Overlay(sentT)
			if oerr != nil {
				// Compaction may fold overlays under us mid-walk; restart
				// the pass and let the snapshot path recover.
				break
			}
			msg := batchMsg{transition: sentT, adds: adds, dels: dels}
			if sentT == t-1 {
				// (t, seq) came from one consistent Position read, so seq
				// is exactly the commit pointer after transition t-1 —
				// attaching it to any earlier overlay would advance the
				// follower's pointer past records it has not replayed.
				msg.upToSeq = seq
				sentSeq = seq
			}
			// The ship span joins the trace of the commit that produced
			// this transition, so a stitched export shows ingest → wire →
			// replay as one tree; the frame carries the ship span's own
			// context for the follower to hang its replay span off.
			sp := p.tracer().StartRemote(p.st.CommitTrace(sentT), "repl.ship",
				obs.Int("transition", sentT),
				obs.Int("adds", len(adds)), obs.Int("dels", len(dels)))
			sc := sp.Context()
			if !sc.Valid() {
				sc = p.st.CommitTrace(sentT)
			}
			err := writeFrame(conn, frame{typ: frameBatch, epoch: epoch, trace: sc, payload: msg.encode()})
			sp.End()
			if err != nil {
				return err
			}
			lastSc = sc
			sentT++
		}
		if sentT == t && sentSeq < seq {
			// Net-zero windows: the pointer advanced without a transition.
			msg := batchMsg{transition: -1, upToSeq: seq}
			if err := writeFrame(conn, frame{typ: frameBatch, epoch: epoch, trace: lastSc, payload: msg.encode()}); err != nil {
				return err
			}
			sentSeq = seq
		}
		hb := heartbeatMsg{transitions: t, walSeq: seq}
		if err := writeFrame(conn, frame{typ: frameHeartbeat, epoch: epoch, trace: lastSc, payload: hb.encode()}); err != nil {
			return err
		}

		select {
		case <-sig:
		case <-tick.C:
		case err := <-fromFollower:
			return err
		case <-p.ctx.Done():
			return p.ctx.Err()
		}
	}
}

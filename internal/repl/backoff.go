// Package repl is the WAL-shipping replication layer over the durable
// store (internal/store): a primary streams its committed history — base
// snapshot, overlay batches, and the WAL commit pointer — to follower
// stores over a length-prefixed, CRC-framed protocol, and followers
// replay it through the same AppendBatch commit path the primary used,
// so a replica's on-disk state is bit-for-bit the state the primary
// would recover to.
//
// Split-brain is excluded by epoch fencing (see internal/store's
// manifest): every frame carries the sender's epoch, a promoted follower
// claims a strictly higher one, and a stale primary that hears it fences
// itself durably before it can commit again.
//
// The package is transport-agnostic: a Primary serves any net.Conn
// (TCP in cmd/cgrepl, net.Pipe in tests) and a Follower dials through a
// caller-supplied function, so every failure mode is testable in-process.
package repl

import (
	"context"
	"time"
)

// Backoff is a context-aware exponential backoff with deterministic,
// seeded jitter — the retry pacing shared by the follower catch-up loop
// and the watcher's maintenance retries. The zero value is usable and
// uses the defaults below. Not safe for concurrent use; each retry loop
// owns one.
type Backoff struct {
	// Base is the first delay (default 20ms).
	Base time.Duration
	// Max caps the grown delay before jitter (default 5s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter spreads each delay uniformly over [d·(1−J), d·(1+J)).
	// Negative disables jitter; 0 means the default 0.2. Jitter keeps a
	// fleet of followers that lost the same primary from reconnecting in
	// lockstep.
	Jitter float64
	// Seed selects the deterministic jitter stream (splitmix64 — the
	// repo-wide policy is no math/rand outside generators). 0 uses a
	// fixed default stream; tests pin seeds to replay schedules.
	Seed uint64

	attempt int
	rng     uint64
	seeded  bool
}

const (
	defaultBase   = 20 * time.Millisecond
	defaultMax    = 5 * time.Second
	defaultFactor = 2.0
	defaultJitter = 0.2
	defaultSeed   = 0x9E3779B97F4A7C15
)

// Reset rewinds the backoff to its first-attempt delay — called after a
// session makes real progress, so a long-lived follower that finally
// reconnects does not keep paying the accumulated penalty.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt returns how many delays have been produced since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// Next returns the next delay and advances the schedule.
func (b *Backoff) Next() time.Duration {
	base, max, factor := b.Base, b.Max, b.Factor
	if base <= 0 {
		base = defaultBase
	}
	if max <= 0 {
		max = defaultMax
	}
	if factor < 1 {
		factor = defaultFactor
	}
	d := float64(base)
	for i := 0; i < b.attempt; i++ {
		d *= factor
		if d >= float64(max) {
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	b.attempt++
	jitter := b.Jitter
	if jitter == 0 {
		jitter = defaultJitter
	}
	if jitter > 0 {
		if jitter > 1 {
			jitter = 1
		}
		// Uniform in [1-j, 1+j) from the seeded stream.
		d *= 1 - jitter + 2*jitter*b.next01()
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Sleep waits for the next delay or until ctx is done, whichever comes
// first, returning ctx.Err() when interrupted — the property that lets
// Close/cancel tear down a backing-off retry loop immediately instead of
// stranding it in a bare time.Sleep.
func (b *Backoff) Sleep(ctx context.Context) error {
	return SleepContext(ctx, b.Next())
}

// SleepContext waits d or until ctx is done, whichever comes first.
func SleepContext(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// next01 draws a float64 in [0, 1) from the backoff's splitmix64 stream.
func (b *Backoff) next01() float64 {
	if !b.seeded {
		b.rng = b.Seed
		if b.rng == 0 {
			b.rng = defaultSeed
		}
		b.seeded = true
	}
	b.rng += 0x9E3779B97F4A7C15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

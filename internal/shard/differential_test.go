package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/delta"
	"commongraph/internal/engine"
	"commongraph/internal/gen"
	"commongraph/internal/graph"
)

// shardCounts is the plan matrix every differential check runs against:
// 1 exercises the engine fallback, 2 the minimal exchange, 3 an odd cut,
// 7 a prime that never divides the vertex space evenly.
var shardCounts = []int{1, 2, 3, 7}

func randomGraphAndBatch(rng *rand.Rand, n, m, batch int) (*graph.Pair, graph.EdgeList) {
	edges := make(graph.EdgeList, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{
			Src: graph.VertexID(rng.Intn(n)),
			Dst: graph.VertexID(rng.Intn(n)),
			W:   graph.Weight(1 + rng.Intn(8)),
		})
	}
	edges = edges.Canonicalize()
	add := make(graph.EdgeList, 0, batch)
	for i := 0; i < batch; i++ {
		add = append(add, graph.Edge{
			Src: graph.VertexID(rng.Intn(n)),
			Dst: graph.VertexID(rng.Intn(n)),
			W:   graph.Weight(1 + rng.Intn(8)),
		})
	}
	add = add.Canonicalize()
	return graph.NewPair(n, edges), add
}

// checkSharded verifies every shard count reproduces the reference.go
// oracle from scratch, incrementally, and from a dense full reseed —
// with and without a pinned plan.
func checkSharded(t *testing.T, g *graph.Pair, add graph.EdgeList, a algo.Algorithm, src graph.VertexID) {
	t.Helper()
	n := g.NumVertices()
	refBase := engine.Reference(g, a, src)
	og := delta.NewOverlayGraph(g, delta.NewOverlay(n, delta.MustFromCanonical(add)))
	refInc := engine.Reference(og, a, src)
	base, _ := engine.Run(g, a, src, engine.Options{Mode: engine.Sync, Workers: 1})
	allSeeds := make([]graph.VertexID, n)
	for i := range allSeeds {
		allSeeds[i] = graph.VertexID(i)
	}
	for _, shards := range shardCounts {
		for _, pinned := range []bool{false, true} {
			opt := engine.Options{Workers: 4, Shards: shards}
			if pinned {
				p, ok := PlanFor(g, shards)
				if !ok {
					t.Fatalf("PlanFor failed on a Pair")
				}
				opt.ShardPlan = p.Starts()
			}
			label := fmt.Sprintf("%s shards=%d pinned=%v", a.Name(), shards, pinned)
			st, _ := Run(g, a, src, opt)
			if !engine.ValuesEqual(st, refBase) {
				t.Fatalf("%s: from-scratch values diverge", label)
			}
			st = base.Clone()
			IncrementalAdd(og, st, add, opt)
			if !engine.ValuesEqual(st, refInc) {
				t.Fatalf("%s: incremental-add values diverge", label)
			}
			st = base.Clone()
			Propagate(og, st, allSeeds, opt)
			if !engine.ValuesEqual(st, refInc) {
				t.Fatalf("%s: dense-reseed values diverge", label)
			}
		}
	}
}

func TestShardedDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		n := 30 + rng.Intn(400)
		m := n * (1 + rng.Intn(4))
		g, add := randomGraphAndBatch(rng, n, m, 1+rng.Intn(60))
		src := graph.VertexID(rng.Intn(n))
		for _, a := range algo.All() {
			checkSharded(t, g, add, a, src)
		}
	}
}

func TestShardedDifferentialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential trial")
	}
	n, edges := gen.RMAT(gen.DefaultRMAT(13, 120_000, 11))
	g := graph.NewPair(n, edges)
	trs, err := gen.Stream(n, edges, gen.StreamConfig{Transitions: 1, Additions: 3000, Deletions: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	add := trs[0].Additions
	checkSharded(t, g, add, algo.BFS{}, 1)
	checkSharded(t, g, add, algo.SSSP{}, 1)
}

func TestPlanDegreeCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, _ := randomGraphAndBatch(rng, 1000, 8000, 0)
	for _, shards := range []int{1, 2, 3, 7, 16} {
		p, ok := PlanFor(g, shards)
		if !ok {
			t.Fatalf("PlanFor failed")
		}
		if p.Shards() != shards {
			t.Fatalf("want %d shards, got %d", shards, p.Shards())
		}
		if p.NumVertices() != g.NumVertices() {
			t.Fatalf("plan covers %d vertices, graph has %d", p.NumVertices(), g.NumVertices())
		}
		prev := graph.VertexID(0)
		for s := 0; s < shards; s++ {
			lo, hi := p.Range(s)
			if lo != prev || hi <= lo {
				t.Fatalf("shard %d range [%d,%d) broken (prev %d)", s, lo, hi, prev)
			}
			prev = hi
			for v := lo; v < hi; v += 1 + (hi-lo)/7 {
				if got := p.Owner(v); got != s {
					t.Fatalf("Owner(%d) = %d, want %d", v, got, s)
				}
			}
		}
	}
	// More shards than vertices: the plan clamps instead of emitting
	// empty ranges.
	tiny := graph.NewPair(3, graph.EdgeList{{Src: 0, Dst: 1, W: 1}}.Canonicalize())
	p, ok := PlanFor(tiny, 7)
	if !ok || p.Shards() > 3 {
		t.Fatalf("tiny plan: ok=%v shards=%d", ok, p.Shards())
	}
}

func TestShardedFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, _ := randomGraphAndBatch(rng, 50, 200, 0)
	ref := engine.Reference(g, algo.BFS{}, 0)
	// Shards=0 and Shards=1 must take the unsharded engine path.
	for _, shards := range []int{0, 1} {
		st, _ := Run(g, algo.BFS{}, 0, engine.Options{Shards: shards})
		if !engine.ValuesEqual(st, ref) {
			t.Fatalf("fallback shards=%d diverges", shards)
		}
	}
	// A bogus pinned plan (wrong vertex count) is ignored, not obeyed.
	st, _ := Run(g, algo.BFS{}, 0, engine.Options{
		Shards:    2,
		ShardPlan: []graph.VertexID{0, 10, 9999},
	})
	if !engine.ValuesEqual(st, ref) {
		t.Fatalf("bogus pinned plan diverges")
	}
}

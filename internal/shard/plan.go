// Package shard is the sharded execution subsystem: it partitions the
// vertex space of a base-CSR + overlay-stack graph into contiguous
// degree-balanced ranges (a Plan), gives each range its own hybrid
// sparse/dense frontier, and runs vertex programs as supersteps of
// shard-local relaxation plus a cross-shard exchange.
//
// The shard boundary is a clean interface by construction — the stepping
// stone to a multi-process mode:
//
//   - Frontier in, batches out: a superstep consumes each shard's local
//     frontier and produces (a) local activations and (b) per-destination
//     inbox batches of (vertex, candidate value, parent) messages for
//     edges that cross shards. Nothing else flows between shards.
//   - Owner writes: a vertex's state word is written only while
//     processing its owner shard's work — by relax workers draining that
//     shard's chunks, or by that shard's single exchange drainer. The CSR
//     layers are never written at all (cgvet's csrimmutable holds).
//   - One shared-memory shortcut, clearly marked: before enqueueing a
//     cross-shard message, the sender reads the destination's current
//     value as a filter. Monotonicity makes the read safe (values only
//     improve, so a candidate that does not improve the value read now
//     can never improve it later) and it is only an optimization — a
//     multi-process port sends unconditionally and loses nothing but
//     bandwidth.
//
// Work distribution inside a superstep reuses the engine's degree-aware
// chunk policy (engine.ChunkEdges): each active shard cuts its frontier
// into edge-space chunks behind an atomic cursor, workers start on their
// home shard, and an idle worker steals chunks from loaded shards — the
// steal counter in internal/obs measures how often.
//
// Everything here is schedule-independent for the monotonic vertex
// programs this repo runs (BFS/SSSP/SSWP/SSNP/Viterbi): any relaxation
// order reaches the same fixpoint, so sharded results are bit-identical
// to the unsharded engine's — the differential tests assert exactly that.
package shard

import (
	"fmt"
	"sort"

	"commongraph/internal/delta"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
)

// Plan is a contiguous vertex-range partition: shard s owns vertices
// [starts[s], starts[s+1]). Plans are immutable and safe to share across
// passes and goroutines; the TG scheduler computes one per representation
// so every ICG edge of a Work-Sharing evaluation reuses it.
type Plan struct {
	starts []graph.VertexID // len shards+1, ascending, starts[0]=0
}

// FromStarts wraps precomputed cut points (len shards+1, ascending,
// first 0). The caller's slice is aliased, not copied; cut slices are
// immutable by contract.
func FromStarts(starts []graph.VertexID) (Plan, error) {
	if len(starts) < 2 || starts[0] != 0 {
		return Plan{}, fmt.Errorf("shard: invalid plan starts %v", starts)
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			return Plan{}, fmt.Errorf("shard: plan starts not ascending at %d: %v", i, starts)
		}
	}
	return Plan{starts: starts}, nil
}

// PlanFor cuts a degree-balanced plan for g from its base CSR's offset
// array (graph.DegreeCuts). Overlays are ignored for balancing — they are
// small relative to the base by construction. Returns ok=false when g
// has no flat CSR form (the mutable KickStarter adjacency).
func PlanFor(g delta.Graph, shards int) (Plan, bool) {
	fs, ok := g.(delta.FlatSource)
	if !ok {
		return Plan{}, false
	}
	csrs := fs.OutCSRs()
	if len(csrs) == 0 {
		return Plan{}, false
	}
	return Plan{starts: graph.DegreeCuts(csrs[0].Offsets(), shards)}, true
}

// Shards returns the number of ranges.
func (p Plan) Shards() int { return len(p.starts) - 1 }

// NumVertices returns the covered vertex-space size.
func (p Plan) NumVertices() int { return int(p.starts[len(p.starts)-1]) }

// Starts exposes the cut points (immutable) so callers can pin the plan
// into engine.Options.ShardPlan without importing this package's types.
func (p Plan) Starts() []graph.VertexID { return p.starts }

// Range returns shard s's vertex range [lo, hi).
func (p Plan) Range(s int) (lo, hi graph.VertexID) {
	return p.starts[s], p.starts[s+1]
}

// Owner returns the shard owning v — a binary search over the cuts.
func (p Plan) Owner(v graph.VertexID) int {
	return sort.Search(p.Shards(), func(s int) bool { return p.starts[s+1] > v })
}

// planFromOptions resolves the plan one pass will use: a pinned
// opt.ShardPlan that matches the requested shard count and g's vertex
// space is adopted as-is; otherwise a fresh degree-balanced plan is cut.
func planFromOptions(g delta.Graph, n int, opt engine.Options) (Plan, bool) {
	if len(opt.ShardPlan) == opt.Shards+1 &&
		opt.ShardPlan[0] == 0 && int(opt.ShardPlan[opt.Shards]) == n {
		if p, err := FromStarts(opt.ShardPlan); err == nil {
			return p, true
		}
	}
	return PlanFor(g, opt.Shards)
}

package shard

import (
	"strconv"

	"commongraph/internal/algo"
	"commongraph/internal/delta"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
)

// The dispatchers mirror the engine's entry points one-for-one. With
// Options.Shards <= 1 — or when the graph has no flat CSR form, or the
// vertex space is too small to cut — they delegate to the unsharded
// engine unchanged, so callers route every pass through this package and
// sharding stays a pure knob.

// Run evaluates the query from scratch under the shard plan; the
// fallback is engine.Run.
func Run(g delta.Graph, a algo.Algorithm, src graph.VertexID, opt engine.Options) (*engine.State, engine.Stats) {
	r, ok := newRunner(g, a, opt)
	if !ok {
		return engine.Run(g, a, src, opt)
	}
	sp := opt.Span.StartChild("shard.run",
		obs.String("algo", a.Name()), obs.Int("shards", r.plan.Shards()))
	st := engine.NewState(g.NumVertices(), a, src)
	r.st = st
	stats := r.run([]graph.VertexID{src})
	r.finish(sp, stats)
	return st, stats
}

// Propagate drives st to fixpoint from pre-applied seed activations; the
// fallback is engine.Propagate.
func Propagate(g delta.Graph, st *engine.State, seeds []graph.VertexID, opt engine.Options) engine.Stats {
	r, ok := newRunner(g, st.Algorithm(), opt)
	if !ok {
		return engine.Propagate(g, st, seeds, opt)
	}
	sp := opt.Span.StartChild("shard.propagate", obs.Int("shards", r.plan.Shards()))
	r.st = st
	stats := r.run(seeds)
	r.finish(sp, stats)
	return stats
}

// IncrementalAdd updates st for one addition batch (Algorithm 2); the
// fallback is engine.IncrementalAdd.
func IncrementalAdd(g delta.Graph, st *engine.State, batch graph.EdgeList, opt engine.Options) engine.Stats {
	return IncrementalAddParts(g, st, [][]graph.Edge{batch}, opt)
}

// IncrementalAddParts seeds every part's destinations (the same
// sequential seed loop as the engine's, so stats stay comparable) and
// then propagates under the shard plan; the fallback is
// engine.IncrementalAddParts.
func IncrementalAddParts(g delta.Graph, st *engine.State, parts [][]graph.Edge, opt engine.Options) engine.Stats {
	r, ok := newRunner(g, st.Algorithm(), opt)
	if !ok {
		return engine.IncrementalAddParts(g, st, parts, opt)
	}
	batchLen := 0
	for _, batch := range parts {
		batchLen += len(batch)
	}
	sp := opt.Span.StartChild("shard.incremental",
		obs.Int("batch", batchLen), obs.Int("shards", r.plan.Shards()))
	r.st = st
	a := st.Algorithm()
	id := a.Identity()
	var stats engine.Stats
	var seeds []graph.VertexID
	for _, batch := range parts {
		for _, e := range batch {
			uval := st.Value(e.Src)
			if uval == id {
				continue
			}
			stats.EdgesPushed++
			cand := a.Propagate(uval, e.W)
			if st.TryImprove(e.Dst, cand, e.Src) {
				stats.Improved++
				seeds = append(seeds, e.Dst)
			}
		}
	}
	if len(seeds) > 0 {
		stats.Add(r.run(seeds))
	}
	r.finish(sp, stats)
	return stats
}

// finish stamps the pass span (one per pass, with one child per shard —
// never per vertex) and feeds the global shard metrics.
func (r *runner) finish(sp *obs.Span, stats engine.Stats) {
	S := r.plan.Shards()
	obs.ShardPasses(strconv.Itoa(S)).Inc()
	obs.ShardSupersteps().Add(r.supersteps)
	obs.ShardSteals().Add(r.steals)
	obs.ShardInboxMessages().Add(r.msgs)
	sp.SetAttr(
		obs.Int64("supersteps", r.supersteps),
		obs.Int64("steals", r.steals),
		obs.Int64("inbox_msgs", r.msgs),
		obs.Int64("edges_pushed", stats.EdgesPushed),
		obs.Int64("improved", stats.Improved),
	)
	for s := 0; s < S; s++ {
		if r.perShard[s] == 0 {
			continue
		}
		lo, hi := r.plan.Range(s)
		ssp := sp.StartChild("shard.range",
			obs.Int("shard", s), obs.Int("lo", int(lo)), obs.Int("hi", int(hi)),
			obs.Int64("edges_pushed", r.perShard[s]))
		ssp.End()
	}
	sp.End()
}

package shard

import (
	"math/bits"
	"sync/atomic"

	"commongraph/internal/graph"
)

// sparseKeepDenom mirrors the engine's hybrid switchover: a shard's
// frontier stays sparse (exact vertex list) until it exceeds 1/16 of the
// shard's vertex range, then degrades to a dense bitset scan.
const sparseKeepDenom = 16

// localFrontier is one shard's frontier over its contiguous vertex range
// [lo, hi): a bitset indexed v-lo plus an exact sparse list while small.
//
// Phase contract (the same alternation the engine's frontier uses):
//   - Relax phase: concurrent workers call trySet only (atomic CAS on
//     the bitset), collecting winners into per-worker buffers.
//   - Exchange phase: after the relax barrier, the shard's single
//     exchange drainer calls adopt (installing the collected winners as
//     the sparse list) and setSeq (inbox activations) with plain writes.
//
// No call ever overlaps a phase boundary, so the mixed atomic/plain
// access to bits is race-free by construction.
type localFrontier struct {
	lo, hi int // absolute vertex range
	//cgvet:ignore atomicguard -- phase contract (documented above): trySet CASes bits during the concurrent relax phase; setSeq/adopt run on the shard's single exchange drainer, clear between supersteps, forEachInWordRange over the read-only cur frontier
	bitset []uint64
	sparse []graph.VertexID // absolute ids; exact while !dense
	dense  bool
	cnt    atomic.Int64
}

func newLocalFrontier(lo, hi graph.VertexID) *localFrontier {
	n := int(hi - lo)
	return &localFrontier{lo: int(lo), hi: int(hi), bitset: make([]uint64, (n+63)/64)}
}

func (f *localFrontier) n() int     { return f.hi - f.lo }
func (f *localFrontier) words() int { return len(f.bitset) }
func (f *localFrontier) count() int { return int(f.cnt.Load()) }

func (f *localFrontier) isSparse() bool { return !f.dense }

// list returns the exact active-vertex list; valid only while sparse.
func (f *localFrontier) list() []graph.VertexID { return f.sparse }

// trySet atomically activates v during the relax phase; true means the
// caller won the race and owns appending v to its collection buffer.
func (f *localFrontier) trySet(v graph.VertexID) bool {
	idx := int(v) - f.lo
	w := &f.bitset[idx>>6]
	mask := uint64(1) << uint(idx&63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			f.cnt.Add(1)
			return true
		}
	}
}

// setSeq activates v from the shard's single exchange drainer (plain
// writes under the phase contract above).
func (f *localFrontier) setSeq(v graph.VertexID) {
	idx := int(v) - f.lo
	w := idx >> 6
	mask := uint64(1) << uint(idx&63)
	if f.bitset[w]&mask != 0 {
		return
	}
	f.bitset[w] |= mask
	f.cnt.Add(1)
	if !f.dense {
		f.sparse = append(f.sparse, v)
		f.checkDense()
	}
}

// adopt appends a relax-phase collection buffer to the sparse list; the
// bits were already set by trySet, so only the list needs installing.
func (f *localFrontier) adopt(list []graph.VertexID) {
	if f.dense {
		return
	}
	f.sparse = append(f.sparse, list...)
	f.checkDense()
}

func (f *localFrontier) checkDense() {
	if len(f.sparse)*sparseKeepDenom > f.n() {
		f.dense = true
		f.sparse = f.sparse[:0]
	}
}

// clear resets the frontier for reuse as the next superstep's target:
// O(|F|) while sparse, one word sweep when dense.
func (f *localFrontier) clear() {
	if !f.dense {
		for _, v := range f.sparse {
			idx := int(v) - f.lo
			f.bitset[idx>>6] &^= 1 << uint(idx&63)
		}
	} else {
		for i := range f.bitset {
			f.bitset[i] = 0
		}
	}
	f.sparse = f.sparse[:0]
	f.dense = false
	f.cnt.Store(0)
}

// forEachInWordRange visits active vertices whose bits fall in bitset
// words [wlo, whi) — the dense-scan chunk unit, stable during relax.
func (f *localFrontier) forEachInWordRange(wlo, whi int, fn func(v graph.VertexID)) {
	if whi > len(f.bitset) {
		whi = len(f.bitset)
	}
	for w := wlo; w < whi; w++ {
		word := f.bitset[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			fn(graph.VertexID(f.lo + w<<6 + b))
		}
	}
}

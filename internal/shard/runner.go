package shard

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"commongraph/internal/algo"
	"commongraph/internal/delta"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
)

// msg is one cross-shard relaxation: the sender already evaluated the
// candidate value, the destination shard's exchange drainer applies it.
// This is the whole inter-shard protocol — a multi-process mode ships
// exactly these triples.
type msg struct {
	v      graph.VertexID
	val    algo.Value
	parent graph.VertexID
}

// layer mirrors the engine's flatLayer: one CSR layer's backing slices,
// captured once per pass.
type layer struct {
	offs []int32
	tgts []graph.VertexID
	wts  []graph.Weight
}

// tally is one worker's private counters for a relax phase.
type tally struct {
	pushed   int64
	improved int64
	steals   int64
	perShard []int64 // edges pushed while draining each shard's chunks
}

// runner executes one sharded pass: level-synchronous supersteps of
// shard-local relaxation (with cross-shard chunk stealing) and a
// single-writer exchange per shard. The sharded executor is always
// BSP — Options.Mode is ignored, which is safe because the monotonic
// vertex programs converge to the same fixpoint under any schedule.
type runner struct {
	plan    Plan
	layers  []layer
	st      *engine.State
	alg     algo.Algorithm
	id      algo.Value
	min     bool
	workers int

	cur, next []*localFrontier

	// outbox[w][d]: cross-shard messages worker w produced for shard d.
	// First index private to one worker during relax, second index
	// private to one drainer during exchange — never both phases at once.
	outbox [][][]msg
	// bufs[w][s]: shard-s vertices worker w newly activated (trySet
	// winners), adopted into next[s] by shard s's exchange drainer.
	bufs [][][]graph.VertexID

	prefix  [][]int // per-shard degree-prefix scratch, reused across supersteps
	tallies []tally

	supersteps int64
	steals     int64
	msgs       int64
	perShard   []int64 // edges pushed per shard over the whole pass
}

// newRunner builds a sharded runner for g, or ok=false when the pass
// must fall back to the unsharded engine: sharding off (Shards <= 1),
// no flat CSR form (the mutable KickStarter adjacency), or a vertex
// space too small to cut the requested number of shards.
func newRunner(g delta.Graph, a algo.Algorithm, opt engine.Options) (*runner, bool) {
	if opt.Shards <= 1 {
		return nil, false
	}
	n := g.NumVertices()
	if n < 2 {
		return nil, false
	}
	plan, ok := planFromOptions(g, n, opt)
	if !ok || plan.Shards() <= 1 || plan.NumVertices() != n {
		return nil, false
	}
	fs := g.(delta.FlatSource) // planFromOptions already proved it
	csrs := fs.OutCSRs()
	layers := make([]layer, len(csrs))
	for i, c := range csrs {
		layers[i] = layer{offs: c.Offsets(), tgts: c.Targets(), wts: c.Weights()}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	S := plan.Shards()
	r := &runner{
		plan:     plan,
		layers:   layers,
		alg:      a,
		id:       a.Identity(),
		min:      a.Direction() == algo.Minimize,
		workers:  workers,
		cur:      make([]*localFrontier, S),
		next:     make([]*localFrontier, S),
		outbox:   make([][][]msg, workers),
		bufs:     make([][][]graph.VertexID, workers),
		prefix:   make([][]int, S),
		tallies:  make([]tally, workers),
		perShard: make([]int64, S),
	}
	for s := 0; s < S; s++ {
		lo, hi := plan.Range(s)
		r.cur[s] = newLocalFrontier(lo, hi)
		r.next[s] = newLocalFrontier(lo, hi)
	}
	for w := 0; w < workers; w++ {
		r.outbox[w] = make([][]msg, S)
		r.bufs[w] = make([][]graph.VertexID, S)
		r.tallies[w].perShard = make([]int64, S)
	}
	return r, true
}

func (r *runner) degree(u graph.VertexID) int {
	d := 0
	for i := range r.layers {
		offs := r.layers[i].offs
		d += int(offs[u+1] - offs[u])
	}
	return d
}

// shardWork is one active shard's chunked relax work for a superstep:
// degree-aware edge-space chunks while the frontier is sparse, bitset
// word chunks when dense, behind an atomic steal cursor either way.
type shardWork struct {
	s      int
	sparse bool
	list   []graph.VertexID
	prefix []int
	total  int // frontier edges (sparse mode)
	sz     int // edges per chunk (sparse mode)
	chunks int
	cursor atomic.Int64
}

// run drives supersteps to fixpoint from the given seed activations.
// The caller owns r.st.
func (r *runner) run(seeds []graph.VertexID) engine.Stats {
	S := r.plan.Shards()
	for _, v := range seeds {
		r.cur[r.plan.Owner(v)].setSeq(v)
	}
	var stats engine.Stats
	for {
		active := false
		for s := 0; s < S; s++ {
			if r.cur[s].count() > 0 {
				active = true
				break
			}
		}
		if !active {
			break
		}
		works := r.buildWorks()
		if len(works) > 0 {
			pushed, improved := r.relax(works)
			stats.EdgesPushed += pushed
			stats.Improved += improved
		}
		msgs, eximp := r.exchange()
		stats.Improved += eximp
		r.msgs += msgs
		for s := 0; s < S; s++ {
			r.cur[s].clear()
		}
		r.cur, r.next = r.next, r.cur
		stats.Iterations++
		r.supersteps++
	}
	return stats
}

// buildWorks cuts each active shard's frontier into steal-cursor chunks.
// Shards whose frontier holds only zero-out-degree vertices produce no
// work (nothing to push); their frontiers still clear at the barrier.
func (r *runner) buildWorks() []*shardWork {
	var works []*shardWork
	for s := 0; s < r.plan.Shards(); s++ {
		f := r.cur[s]
		if f.count() == 0 {
			continue
		}
		w := &shardWork{s: s}
		if f.isSparse() {
			w.sparse = true
			w.list = f.list()
			pr := r.prefix[s]
			if cap(pr) < len(w.list)+1 {
				pr = make([]int, len(w.list)+1)
			}
			pr = pr[:len(w.list)+1]
			total := 0
			for i, u := range w.list {
				pr[i] = total
				total += r.degree(u)
			}
			pr[len(w.list)] = total
			r.prefix[s] = pr
			if total == 0 {
				continue
			}
			w.prefix, w.total = pr, total
			w.sz = engine.ChunkEdges(total, r.workers)
			w.chunks = (total + w.sz - 1) / w.sz
		} else {
			w.chunks = (f.words() + engine.DenseWordChunk - 1) / engine.DenseWordChunk
		}
		works = append(works, w)
	}
	return works
}

// relax runs the worker pool over the superstep's chunks. Worker w's home
// shard is works[w % len(works)]; when its home cursor is drained it
// sweeps the other shards' cursors — every chunk taken off-home counts
// as a steal.
func (r *runner) relax(works []*shardWork) (pushed, improved int64) {
	nw := r.workers
	totalChunks := 0
	for _, w := range works {
		totalChunks += w.chunks
	}
	if nw > totalChunks {
		nw = totalChunks
	}
	var wg sync.WaitGroup
	var box panicBox
	for wk := 0; wk < nw; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			defer box.capture()
			t := &r.tallies[wk] //cgvet:ignore lockdiscipline -- index-disjoint, one wk per goroutine
			home := wk % len(works)
			for off := 0; off < len(works); off++ {
				w := works[(home+off)%len(works)]
				stolen := off != 0
				for {
					c := int(w.cursor.Add(1)) - 1
					if c >= w.chunks {
						break
					}
					if stolen {
						t.steals++
					}
					r.processChunk(w, c, wk, t)
				}
			}
		}(wk)
	}
	wg.Wait()
	box.rethrow()
	for wk := 0; wk < nw; wk++ {
		t := &r.tallies[wk]
		pushed += t.pushed
		improved += t.improved
		r.steals += t.steals
		t.pushed, t.improved, t.steals = 0, 0, 0
		for s, p := range t.perShard {
			r.perShard[s] += p
			t.perShard[s] = 0
		}
	}
	return pushed, improved
}

func (r *runner) processChunk(w *shardWork, c, wk int, t *tally) {
	if w.sparse {
		lo := c * w.sz
		hi := lo + w.sz
		if hi > w.total {
			hi = w.total
		}
		// First vertex whose edge range reaches past lo (as in the
		// engine's sparsePar: hub rows split across chunks).
		i := sort.Search(len(w.list), func(i int) bool { return w.prefix[i+1] > lo })
		for ; i < len(w.list) && w.prefix[i] < hi; i++ {
			a, b := lo-w.prefix[i], hi-w.prefix[i]
			if a < 0 {
				a = 0
			}
			if d := w.prefix[i+1] - w.prefix[i]; b > d {
				b = d
			}
			r.pushRange(w.list[i], a, b, w.s, wk, t)
		}
		return
	}
	wlo := c * engine.DenseWordChunk
	whi := wlo + engine.DenseWordChunk
	r.cur[w.s].forEachInWordRange(wlo, whi, func(u graph.VertexID) {
		r.pushRange(u, 0, r.degree(u), w.s, wk, t)
	})
}

// pushRange pushes u's frontier-edge positions [a, b) — a sub-range of
// its concatenated layer rows. Local destinations relax in place and
// activate next[s]; cross-shard destinations pass the monotone racy
// filter (see the package comment) and enqueue into the worker's outbox
// for the owner shard.
func (r *runner) pushRange(u graph.VertexID, a, b, s, wk int, t *tally) {
	uval := r.st.Value(u)
	if uval == r.id {
		return
	}
	st, min := r.st, r.min
	shardLo, shardHi := r.plan.Range(s)
	next := r.next[s]
	off := 0
	for li := range r.layers {
		L := &r.layers[li]
		rowLo, rowHi := L.offs[u], L.offs[u+1]
		d := int(rowHi - rowLo)
		if off+d <= a {
			off += d
			continue
		}
		if off >= b {
			break
		}
		sdx, edx := 0, d
		if a > off {
			sdx = a - off
		}
		if b-off < d {
			edx = b - off
		}
		ts := L.tgts[rowLo+int32(sdx) : rowLo+int32(edx)]
		ws := L.wts[rowLo+int32(sdx) : rowLo+int32(edx)]
		for i, v := range ts {
			cand := r.alg.Propagate(uval, ws[i])
			if v >= shardLo && v < shardHi {
				if st.Improves(v, cand, min) && st.TryImprove(v, cand, u) {
					t.improved++
					if next.trySet(v) {
						r.bufs[wk][s] = append(r.bufs[wk][s], v) //cgvet:ignore lockdiscipline -- index-disjoint, one wk per goroutine
					}
				}
			} else if st.Improves(v, cand, min) {
				// Monotone-safe racy prefilter: v's value only improves,
				// so a candidate filtered out now could never apply
				// later. Improving candidates are re-checked by the
				// owner's exchange drain — this read is purely a
				// message-volume optimization.
				d := r.plan.Owner(v)
				r.outbox[wk][d] = append(r.outbox[wk][d], msg{v: v, val: cand, parent: u}) //cgvet:ignore lockdiscipline -- index-disjoint, one wk per goroutine
			}
		}
		t.pushed += int64(len(ts))
		t.perShard[s] += int64(len(ts))
		off += d
	}
}

// exchange runs one drainer goroutine per shard: it adopts the relax
// phase's local activations into next[s], then applies every worker's
// outbox column for s (TryImprove + setSeq — the shard's single writer).
func (r *runner) exchange() (msgs, improved int64) {
	S := r.plan.Shards()
	var wg sync.WaitGroup
	var box panicBox
	var msgsA, impA atomic.Int64
	for s := 0; s < S; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer box.capture()
			next := r.next[s]
			for wk := range r.bufs {
				if buf := r.bufs[wk][s]; len(buf) > 0 {
					next.adopt(buf)
					r.bufs[wk][s] = buf[:0] //cgvet:ignore lockdiscipline -- index-disjoint, one s per goroutine
				}
			}
			var m, imp int64
			for wk := range r.outbox {
				col := r.outbox[wk][s]
				for _, mg := range col {
					m++
					if r.st.TryImprove(mg.v, mg.val, mg.parent) {
						imp++
						next.setSeq(mg.v)
					}
				}
				r.outbox[wk][s] = col[:0] //cgvet:ignore lockdiscipline -- index-disjoint, one s per goroutine
			}
			msgsA.Add(m)
			impA.Add(imp)
		}(s)
	}
	wg.Wait()
	box.rethrow()
	return msgsA.Load(), impA.Load()
}

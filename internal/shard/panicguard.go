package shard

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// panicBox mirrors the engine's worker panic carrier (see
// internal/engine/panicguard.go): a panic unwinding a bare relax or
// exchange worker would kill the process before wg.Wait returns, so
// every pool goroutine defers capture and the coordinator rethrows on
// its own stack, where internal/core's recoverToError turns it into a
// *core.PanicError.
type panicBox struct {
	mu  sync.Mutex
	val any
}

// workerPanic carries the worker's panic value plus its stack, which
// would otherwise be lost when the panic crosses goroutines.
type workerPanic struct {
	val   any
	stack []byte
}

func (p workerPanic) String() string {
	return fmt.Sprintf("shard worker panic: %v\nworker stack:\n%s", p.val, p.stack)
}

// capture is deferred in each worker and absorbs its panic into the box;
// only the first panic is kept — one is enough to fail the pass.
func (b *panicBox) capture() {
	if r := recover(); r != nil {
		wp := workerPanic{val: r, stack: debug.Stack()}
		b.mu.Lock()
		if b.val == nil {
			b.val = wp
		}
		b.mu.Unlock()
	}
}

// rethrow re-raises the captured panic, if any, on the caller.
func (b *panicBox) rethrow() {
	b.mu.Lock()
	r := b.val
	b.mu.Unlock()
	if r != nil {
		panic(r)
	}
}

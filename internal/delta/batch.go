// Package delta provides update batches (the Δ sets of the paper) and the
// mutation-free overlay representation: a static base CSR plus a stack of
// small per-batch CSRs that together present one logical snapshot without
// ever mutating the base graph (§4.1 of the paper).
package delta

import (
	"fmt"

	"commongraph/internal/graph"
)

// Batch is a canonical (sorted, deduplicated) set of edges used as a unit
// of update: a Δ+ (additions), a Δ− (deletions), or a Triangular Grid edge
// label. A Batch is immutable after construction.
type Batch struct {
	edges graph.EdgeList
}

// NewBatch builds a batch from edges, canonicalizing a copy of the input.
func NewBatch(edges graph.EdgeList) *Batch {
	return &Batch{edges: edges.Clone().Canonicalize()}
}

// FromCanonical wraps an already canonical list without copying. The caller
// must not modify the list afterwards. Non-canonical input is rejected with
// an error (wrapping graph.ErrNotCanonical) rather than a panic, so ingest
// paths fed untrusted batches degrade gracefully.
func FromCanonical(edges graph.EdgeList) (*Batch, error) {
	if !edges.IsCanonical() {
		return nil, fmt.Errorf("delta: FromCanonical: %w", graph.ErrNotCanonical)
	}
	return &Batch{edges: edges}, nil
}

// MustFromCanonical is FromCanonical for input canonical by construction
// (set algebra over canonical lists); it panics on violation.
func MustFromCanonical(edges graph.EdgeList) *Batch {
	b, err := FromCanonical(edges)
	if err != nil {
		panic(err)
	}
	return b
}

// Len returns the number of edges in the batch.
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	return len(b.edges)
}

// Edges returns the batch's canonical edge list (aliased; do not modify).
func (b *Batch) Edges() graph.EdgeList {
	if b == nil {
		return nil
	}
	return b.edges
}

// Contains reports membership by endpoints.
func (b *Batch) Contains(src, dst graph.VertexID) bool {
	return b != nil && b.edges.Contains(src, dst)
}

// Minus returns b \ o as a new batch.
func (b *Batch) Minus(o *Batch) *Batch {
	return &Batch{edges: graph.Minus(b.Edges(), o.Edges())}
}

// Union returns b ∪ o as a new batch.
func (b *Batch) Union(o *Batch) *Batch {
	return &Batch{edges: graph.Union(b.Edges(), o.Edges())}
}

// Intersect returns b ∩ o as a new batch.
func (b *Batch) Intersect(o *Batch) *Batch {
	return &Batch{edges: graph.Intersect(b.Edges(), o.Edges())}
}

// Equal reports whether two batches have the same endpoints.
func (b *Batch) Equal(o *Batch) bool {
	return graph.Equal(b.Edges(), o.Edges())
}

// String summarizes the batch.
func (b *Batch) String() string {
	return fmt.Sprintf("Batch(%d edges)", b.Len())
}

package delta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"commongraph/internal/graph"
)

func mk(pairs ...[2]uint32) graph.EdgeList {
	out := make(graph.EdgeList, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, graph.Edge{Src: graph.VertexID(p[0]), Dst: graph.VertexID(p[1]), W: 1})
	}
	return out
}

func TestNewBatchCanonicalizes(t *testing.T) {
	b := NewBatch(mk([2]uint32{3, 1}, [2]uint32{0, 2}, [2]uint32{3, 1}))
	if b.Len() != 2 {
		t.Fatalf("len=%d", b.Len())
	}
	if !b.Edges().IsCanonical() {
		t.Fatal("not canonical")
	}
	if !b.Contains(3, 1) || b.Contains(1, 3) {
		t.Fatal("membership wrong")
	}
}

func TestNewBatchDoesNotAliasInput(t *testing.T) {
	in := mk([2]uint32{5, 6}, [2]uint32{1, 2})
	b := NewBatch(in)
	in[0] = graph.Edge{Src: 9, Dst: 9, W: 9}
	if b.Contains(9, 9) {
		t.Fatal("batch aliased its input")
	}
}

func TestFromCanonicalRejectsBadInput(t *testing.T) {
	if _, err := FromCanonical(mk([2]uint32{2, 0}, [2]uint32{1, 0})); err == nil {
		t.Fatal("expected error on non-canonical input")
	}
	b, err := FromCanonical(mk([2]uint32{0, 1}, [2]uint32{2, 3}))
	if err != nil || b.Len() != 2 {
		t.Fatalf("canonical input rejected: %v", err)
	}
}

func TestMustFromCanonicalPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustFromCanonical(mk([2]uint32{2, 0}, [2]uint32{1, 0}))
}

func TestNilBatchIsEmpty(t *testing.T) {
	var b *Batch
	if b.Len() != 0 || b.Edges() != nil || b.Contains(0, 0) {
		t.Fatal("nil batch should behave as empty")
	}
}

func TestBatchAlgebra(t *testing.T) {
	a := NewBatch(mk([2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{2, 3}))
	b := NewBatch(mk([2]uint32{1, 2}, [2]uint32{4, 5}))
	if got := a.Minus(b); got.Len() != 2 {
		t.Fatalf("minus: %v", got.Edges())
	}
	if got := a.Union(b); got.Len() != 4 {
		t.Fatalf("union: %v", got.Edges())
	}
	if got := a.Intersect(b); got.Len() != 1 || !got.Contains(1, 2) {
		t.Fatalf("intersect: %v", got.Edges())
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Fatal("equal wrong")
	}
}

func randomEdges(r *rand.Rand, n, m int) graph.EdgeList {
	l := make(graph.EdgeList, 0, m)
	for i := 0; i < m; i++ {
		l = append(l, graph.Edge{
			Src: graph.VertexID(r.Intn(n)),
			Dst: graph.VertexID(r.Intn(n)),
			W:   graph.Weight(r.Intn(50) + 1),
		})
	}
	return l
}

func TestOverlayGraphEqualsMaterialized(t *testing.T) {
	// base + overlays must present exactly the union of edges, in both
	// orientations — the core invariant of the mutation-free representation.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(30)
		baseEdges := randomEdges(r, n, 4*n).Canonicalize()
		base := graph.NewPair(n, baseEdges)
		// Overlay edges disjoint from base (as Δ batches always are).
		o1 := NewBatch(graph.Minus(randomEdges(r, n, n).Canonicalize(), baseEdges))
		o2e := graph.Minus(randomEdges(r, n, n).Canonicalize(), baseEdges)
		o2 := NewBatch(graph.Minus(o2e, o1.Edges()))
		og := NewOverlayGraph(base, NewOverlay(n, o1), NewOverlay(n, o2))

		want := graph.Union(graph.Union(baseEdges, o1.Edges()), o2.Edges())
		if og.NumEdges() != len(want) {
			return false
		}
		got := make(graph.EdgeList, 0, len(want))
		for u := 0; u < n; u++ {
			og.OutEdges(graph.VertexID(u), func(v graph.VertexID, w graph.Weight) {
				got = append(got, graph.Edge{Src: graph.VertexID(u), Dst: v, W: w})
			})
		}
		if !graph.Equal(got.Canonicalize(), want) {
			return false
		}
		// In-edges must mirror out-edges.
		gotIn := make(graph.EdgeList, 0, len(want))
		for v := 0; v < n; v++ {
			og.InEdges(graph.VertexID(v), func(u graph.VertexID, w graph.Weight) {
				gotIn = append(gotIn, graph.Edge{Src: u, Dst: graph.VertexID(v), W: w})
			})
		}
		return graph.Equal(gotIn.Canonicalize(), want) &&
			graph.Equal(og.Edges(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlayPushPop(t *testing.T) {
	n := 5
	base := graph.NewPair(n, mk([2]uint32{0, 1}))
	og := NewOverlayGraph(base)
	if og.Depth() != 0 || og.NumEdges() != 1 {
		t.Fatalf("depth=%d m=%d", og.Depth(), og.NumEdges())
	}
	o := NewOverlay(n, NewBatch(mk([2]uint32{1, 2}, [2]uint32{2, 3})))
	og.Push(o)
	if og.Depth() != 1 || og.NumEdges() != 3 {
		t.Fatalf("after push: depth=%d m=%d", og.Depth(), og.NumEdges())
	}
	count := 0
	og.OutEdges(1, func(v graph.VertexID, w graph.Weight) { count++ })
	if count != 1 {
		t.Fatalf("out(1)=%d", count)
	}
	og.Pop()
	if og.Depth() != 0 || og.NumEdges() != 1 {
		t.Fatalf("after pop: depth=%d m=%d", og.Depth(), og.NumEdges())
	}
	count = 0
	og.OutEdges(1, func(v graph.VertexID, w graph.Weight) { count++ })
	if count != 0 {
		t.Fatalf("out(1) after pop=%d", count)
	}
}

func TestOverlayGraphBase(t *testing.T) {
	base := graph.NewPair(3, mk([2]uint32{0, 1}))
	og := NewOverlayGraph(base)
	if og.Base() != base || og.NumVertices() != 3 {
		t.Fatal("base accessor wrong")
	}
}

package delta

import (
	"sync"

	"commongraph/internal/graph"
)

// Overlay is an addition batch prepared for traversal. The forward CSR is
// built eagerly (it is what incremental addition propagates over); the
// reverse CSR is built lazily on first use, because the addition-only
// CommonGraph paths never look at in-edges — only deletion trimming does.
// Building one costs O(|Δ| + V); this is the "load the batch" operation
// that replaces graph mutation in the paper's representation.
type Overlay struct {
	n      int
	m      int
	parts  [][]graph.Edge
	out    *graph.CSR
	inOnce sync.Once
	in     *graph.CSR
}

// NewOverlay indexes a batch for traversal over a graph with n vertices.
func NewOverlay(n int, b *Batch) *Overlay {
	return &Overlay{
		n:     n,
		m:     b.Len(),
		parts: [][]graph.Edge{b.Edges()},
		out:   graph.NewCSR(n, b.Edges()),
	}
}

// NewOverlayParts indexes the union of several mutually disjoint canonical
// edge lists as one overlay, without merging or concatenating them first —
// the CSR builder only needs grouping, which its counting pass provides.
// The Work-Sharing evaluator uses this to compose the batches accumulated
// along a schedule path in O(V + |Δ|).
func NewOverlayParts(n int, parts ...graph.EdgeList) *Overlay {
	lists := make([][]graph.Edge, len(parts))
	m := 0
	for i, p := range parts {
		lists[i] = p
		m += len(p)
	}
	return &Overlay{n: n, m: m, parts: lists, out: graph.NewCSRParts(n, lists...)}
}

// Len returns the number of edges in the overlay.
func (o *Overlay) Len() int { return o.m }

// Edges returns the overlay's edges as a fresh concatenation (unspecified
// order).
func (o *Overlay) Edges() graph.EdgeList {
	out := make(graph.EdgeList, 0, o.m)
	for _, p := range o.parts {
		out = append(out, p...)
	}
	return out
}

// reverse lazily builds the in-edge CSR; only deletion trimming and tests
// look at in-edges, so the addition-only paths never pay for it.
func (o *Overlay) reverse() *graph.CSR {
	o.inOnce.Do(func() { o.in = graph.NewReverseCSR(o.n, o.Edges()) })
	return o.in
}

// Graph is the adjacency view the execution engine traverses: out-edges
// for pushing updates, in-edges for the trimming recomputation.
type Graph interface {
	NumVertices() int
	NumEdges() int
	OutEdges(u graph.VertexID, fn func(v graph.VertexID, w graph.Weight))
	InEdges(v graph.VertexID, fn func(u graph.VertexID, w graph.Weight))
}

// FlatSource is the fused flat-traversal contract: a Graph whose
// out-adjacency is a stack of immutable CSR layers (the base plus one per
// overlay) exposes them here, and the engine's hot loops index the
// layers' offset/neighbor slices directly — one bounds-checked slice walk
// per row instead of a closure call per edge. The callback Graph
// interface remains the fallback (and the only path for the mutable
// KickStarter baseline); trimming and tests keep using it. The returned
// layers alias live CSRs and are read-only (§4.1 immutability).
type FlatSource interface {
	OutCSRs() []*graph.CSR
}

// OverlayGraph presents base + overlays as one logical graph. The base is
// never modified; pushing and popping overlays is how the CommonGraph
// system "moves" between Triangular Grid nodes.
//
// OverlayGraph is not safe for concurrent mutation (Push/Pop), but is safe
// for concurrent traversal once constructed.
type OverlayGraph struct {
	base     *graph.Pair
	overlays []*Overlay
}

// NewOverlayGraph wraps a base graph with zero or more overlays.
func NewOverlayGraph(base *graph.Pair, overlays ...*Overlay) *OverlayGraph {
	return &OverlayGraph{base: base, overlays: overlays}
}

// Push adds an overlay on top of the current view.
func (g *OverlayGraph) Push(o *Overlay) { g.overlays = append(g.overlays, o) }

// Pop removes the most recently pushed overlay.
func (g *OverlayGraph) Pop() {
	g.overlays = g.overlays[:len(g.overlays)-1]
}

// Depth returns the number of overlays currently applied.
func (g *OverlayGraph) Depth() int { return len(g.overlays) }

// Base returns the underlying immutable base pair.
func (g *OverlayGraph) Base() *graph.Pair { return g.base }

// NumVertices returns the vertex count of the base graph.
func (g *OverlayGraph) NumVertices() int { return g.base.NumVertices() }

// NumEdges returns base edges plus all overlay edges.
func (g *OverlayGraph) NumEdges() int {
	m := g.base.NumEdges()
	for _, o := range g.overlays {
		m += o.Len()
	}
	return m
}

// OutCSRs returns the view's out-adjacency layers, base first, then each
// overlay in push order — the FlatSource contract. The slice is freshly
// allocated (the overlay stack may be pushed/popped between traversals)
// but the layers alias the live CSRs.
func (g *OverlayGraph) OutCSRs() []*graph.CSR {
	layers := make([]*graph.CSR, 0, 1+len(g.overlays))
	layers = append(layers, g.base.Out)
	for _, o := range g.overlays {
		layers = append(layers, o.out)
	}
	return layers
}

// OutEdges visits u's out-neighbours in the base and every overlay.
func (g *OverlayGraph) OutEdges(u graph.VertexID, fn func(v graph.VertexID, w graph.Weight)) {
	g.base.OutEdges(u, fn)
	for _, o := range g.overlays {
		o.out.Neighbors(u, fn)
	}
}

// InEdges visits v's in-neighbours in the base and every overlay.
func (g *OverlayGraph) InEdges(v graph.VertexID, fn func(u graph.VertexID, w graph.Weight)) {
	g.base.InEdges(v, fn)
	for _, o := range g.overlays {
		o.reverse().Neighbors(v, fn)
	}
}

// Edges materializes the logical edge list (canonical).
func (g *OverlayGraph) Edges() graph.EdgeList {
	out := g.base.Out.Edges()
	for _, o := range g.overlays {
		out = append(out, o.Edges()...)
	}
	return out.Canonicalize()
}

var _ Graph = (*OverlayGraph)(nil)
var _ Graph = (*graph.Pair)(nil)
var _ FlatSource = (*OverlayGraph)(nil)
var _ FlatSource = (*graph.Pair)(nil)

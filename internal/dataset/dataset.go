// Package dataset persists evolving graphs on disk so the cmd/ tools can
// hand workloads to each other: a directory with the base snapshot, one
// addition/deletion batch pair per transition, and a small manifest.
package dataset

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"commongraph/internal/graph"
	"commongraph/internal/snapshot"
)

// Format selects the on-disk edge encoding.
type Format string

// Formats supported by Save/Load.
const (
	Text   Format = "text"
	Binary Format = "binary"
)

const manifestName = "manifest.txt"

func edgeFile(dir, stem string, f Format) string {
	ext := ".txt"
	if f == Binary {
		ext = ".bin"
	}
	return filepath.Join(dir, stem+ext)
}

func writeEdges(path string, f Format, n int, edges graph.EdgeList) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	if f == Binary {
		return graph.WriteBinary(file, n, edges)
	}
	return graph.WriteText(file, n, edges)
}

func readEdges(path string, f Format) (int, graph.EdgeList, error) {
	file, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer file.Close()
	if f == Binary {
		return graph.ReadBinary(file)
	}
	return graph.ReadText(file)
}

// Save writes the store's evolving graph into dir (created if needed).
func Save(dir string, s *snapshot.Store, f Format) error {
	if f != Text && f != Binary {
		return fmt.Errorf("dataset: unknown format %q", f)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base, err := s.GetVersion(0)
	if err != nil {
		return err
	}
	if err := writeEdges(edgeFile(dir, "base", f), f, s.NumVertices(), base); err != nil {
		return err
	}
	transitions := s.NumVersions() - 1
	for t := 0; t < transitions; t++ {
		if err := writeEdges(edgeFile(dir, fmt.Sprintf("t%04d.add", t), f), f, s.NumVertices(), s.Additions(t).Edges()); err != nil {
			return err
		}
		if err := writeEdges(edgeFile(dir, fmt.Sprintf("t%04d.del", t), f), f, s.NumVertices(), s.Deletions(t).Edges()); err != nil {
			return err
		}
	}
	mf, err := os.Create(filepath.Join(dir, manifestName))
	if err != nil {
		return err
	}
	defer mf.Close()
	w := bufio.NewWriter(mf)
	fmt.Fprintf(w, "vertices %d\ntransitions %d\nformat %s\n", s.NumVertices(), transitions, f)
	return w.Flush()
}

// Load reads a dataset directory back into a snapshot store.
func Load(dir string) (*snapshot.Store, error) {
	mf, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	var (
		vertices, transitions int
		format                Format
	)
	if _, err := fmt.Fscanf(mf, "vertices %d\ntransitions %d\nformat %s\n", &vertices, &transitions, &format); err != nil {
		return nil, fmt.Errorf("dataset: bad manifest: %w", err)
	}
	if format != Text && format != Binary {
		return nil, fmt.Errorf("dataset: manifest has unknown format %q", format)
	}
	_, base, err := readEdges(edgeFile(dir, "base", format), format)
	if err != nil {
		return nil, err
	}
	s := snapshot.NewStore(vertices, base)
	for t := 0; t < transitions; t++ {
		_, add, err := readEdges(edgeFile(dir, fmt.Sprintf("t%04d.add", t), format), format)
		if err != nil {
			return nil, err
		}
		_, del, err := readEdges(edgeFile(dir, fmt.Sprintf("t%04d.del", t), format), format)
		if err != nil {
			return nil, err
		}
		if _, err := s.NewVersion(add, del); err != nil {
			return nil, fmt.Errorf("dataset: transition %d: %w", t, err)
		}
	}
	return s, nil
}

package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"commongraph/internal/gen"
	"commongraph/internal/graph"
	"commongraph/internal/snapshot"
)

func testStore(t *testing.T) *snapshot.Store {
	t.Helper()
	n, base := gen.RMAT(gen.DefaultRMAT(8, 800, 31))
	trs, err := gen.Stream(n, base, gen.StreamConfig{Transitions: 4, Additions: 25, Deletions: 25, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	s := snapshot.NewStore(n, base)
	for _, tr := range trs {
		if _, err := s.NewVersion(tr.Additions, tr.Deletions); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func roundTrip(t *testing.T, f Format) {
	t.Helper()
	s := testStore(t)
	dir := t.TempDir()
	if err := Save(dir, s, f); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != s.NumVertices() || back.NumVersions() != s.NumVersions() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			back.NumVertices(), back.NumVersions(), s.NumVertices(), s.NumVersions())
	}
	for v := 0; v < s.NumVersions(); v++ {
		want, _ := s.GetVersion(v)
		got, _ := back.GetVersion(v)
		if !graph.Equal(got, want) {
			t.Fatalf("format %s: version %d differs", f, v)
		}
		for i := range got {
			if got[i].W != want[i].W {
				t.Fatalf("format %s: version %d weight differs at %d", f, v, i)
			}
		}
	}
}

func TestRoundTripText(t *testing.T)   { roundTrip(t, Text) }
func TestRoundTripBinary(t *testing.T) { roundTrip(t, Binary) }

func TestSaveUnknownFormat(t *testing.T) {
	if err := Save(t.TempDir(), testStore(t), Format("xml")); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadMissingBatchFile(t *testing.T) {
	s := testStore(t)
	dir := t.TempDir()
	if err := Save(dir, s, Text); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "t0002.add.txt")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("expected error")
	}
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultFlightBytes is the flight recorder's default byte budget: small
// enough to be always-on in production, large enough to hold the last few
// hundred root spans with their subtrees.
const DefaultFlightBytes = 1 << 20

// FlightRecord is one completed root span with its subtree, as kept by
// the flight recorder ring.
type FlightRecord struct {
	Trace     TraceID
	Root      Event
	Events    []Event // completed subtree, recording order (root last)
	Bytes     int
	Truncated int // events the per-trace byte cap discarded
}

// FlightRecorder is an always-on, lock-free ring of the most recently
// completed root spans, bounded by bytes rather than counts so one
// attr-heavy trace can't silently multiply memory use. Writers only ever
// publish with atomic stores/CAS; readers snapshot without blocking
// writers, so recording stays cheap enough to leave enabled under load.
type FlightRecorder struct {
	slots    []atomic.Pointer[FlightRecord] // power-of-two length
	head     atomic.Uint64                  // next write position
	tail     atomic.Uint64                  // oldest retained position
	bytes    atomic.Int64                   // resident bytes across retained records
	maxBytes int64
}

// NewFlightRecorder creates a ring with the given byte budget
// (DefaultFlightBytes when maxBytes <= 0).
func NewFlightRecorder(maxBytes int64) *FlightRecorder {
	if maxBytes <= 0 {
		maxBytes = DefaultFlightBytes
	}
	// Slot count bounds record count; the byte budget is the real limit.
	// 1024 slots cover the budget even at tiny per-record sizes.
	f := &FlightRecorder{maxBytes: maxBytes}
	f.slots = make([]atomic.Pointer[FlightRecord], 1024)
	return f
}

// add publishes one completed root span's subtree. Called from Span.End
// on root spans; must not block and must stay race-clean.
func (f *FlightRecorder) add(rec *traceRec, trace TraceID, root Event) {
	rec.mu.Lock()
	r := &FlightRecord{
		Trace:     trace,
		Root:      root,
		Events:    rec.events,
		Bytes:     rec.bytes,
		Truncated: rec.truncated,
	}
	rec.events = nil // ownership moves to the record
	rec.mu.Unlock()
	if r.Bytes == 0 {
		r.Bytes = root.approxBytes()
	}

	h := f.head.Add(1) - 1
	idx := h & uint64(len(f.slots)-1)
	if old := f.slots[idx].Swap(r); old != nil {
		// Wrapped over a live slot: its bytes leave the ring with it.
		f.bytes.Add(-int64(old.Bytes))
	}
	f.bytes.Add(int64(r.Bytes))

	// Evict from the tail until back under budget. Concurrent adders may
	// race on tail; CAS keeps each slot's bytes subtracted at most once.
	for f.bytes.Load() > f.maxBytes {
		t := f.tail.Load()
		h := f.head.Load()
		if h <= t+1 {
			break // keep at least the newest record
		}
		if h-t > uint64(len(f.slots)) {
			// Tail fell behind a full wrap; those slots were already
			// replaced (and their bytes subtracted) by Swap above.
			f.tail.CompareAndSwap(t, h-uint64(len(f.slots)))
			continue
		}
		if f.tail.CompareAndSwap(t, t+1) {
			tidx := t & uint64(len(f.slots)-1)
			if old := f.slots[tidx].Swap(nil); old != nil {
				f.bytes.Add(-int64(old.Bytes))
			}
		}
	}
}

// Bytes reports the ring's current resident size (approximate under
// concurrent writes, convergent when they quiesce).
func (f *FlightRecorder) Bytes() int64 { return f.bytes.Load() }

// MaxBytes reports the configured budget.
func (f *FlightRecorder) MaxBytes() int64 { return f.maxBytes }

// Records snapshots the retained records, oldest first. The snapshot is
// taken without blocking writers; records landing mid-snapshot may or may
// not appear.
func (f *FlightRecorder) Records() []*FlightRecord {
	t := f.tail.Load()
	h := f.head.Load()
	if h-t > uint64(len(f.slots)) {
		t = h - uint64(len(f.slots))
	}
	out := make([]*FlightRecord, 0, h-t)
	for i := t; i < h; i++ {
		if r := f.slots[i&uint64(len(f.slots)-1)].Load(); r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Find returns the newest retained record for the trace, or nil.
func (f *FlightRecorder) Find(trace TraceID) *FlightRecord {
	recs := f.Records()
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Trace == trace {
			return recs[i]
		}
	}
	return nil
}

// flightJSON is the /debug/flightrecorder dump shape.
type flightJSON struct {
	Trace     string            `json:"trace_id"`
	Root      string            `json:"root"`
	Start     time.Time         `json:"start"`
	DurMS     float64           `json:"dur_ms"`
	Events    int               `json:"events"`
	Bytes     int               `json:"bytes"`
	Truncated int               `json:"truncated,omitempty"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

// WriteJSON dumps the retained records, oldest first, as a JSON array of
// per-trace summaries.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	recs := f.Records()
	out := make([]flightJSON, 0, len(recs))
	for _, r := range recs {
		j := flightJSON{
			Trace:     r.Trace.String(),
			Root:      r.Root.Name,
			Start:     r.Root.Start,
			DurMS:     float64(r.Root.Dur) / float64(time.Millisecond),
			Events:    len(r.Events),
			Bytes:     r.Bytes,
			Truncated: r.Truncated,
		}
		if len(r.Root.Attrs) > 0 {
			j.Attrs = make(map[string]string, len(r.Root.Attrs))
			for _, a := range r.Root.Attrs {
				j.Attrs[a.Key] = a.Value
			}
		}
		out = append(out, j)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteChromeTrace exports one retained record as a standalone Chrome
// trace (the /debug/trace?id= payload).
func (r *FlightRecord) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	epoch := r.Root.Start
	for _, e := range r.Events {
		if e.Start.Before(epoch) {
			epoch = e.Start
		}
	}
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(r.Events))}
	for _, e := range r.Events {
		out.TraceEvents = append(out.TraceEvents, chromeFromEvent(e, 1, epoch))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

var (
	flightOnce sync.Once
	flightRing *FlightRecorder
	flightRec  *Tracer
	// flightOn gates the whole always-on pipeline. Stored as int32 so the
	// disabled check stays one atomic load.
	flightOn atomic.Int32
)

func init() { flightOn.Store(1) }

// flightEnabled reports whether always-on flight recording is globally
// armed (it is by default; SetFlightRecording(false) turns it off).
func flightEnabled() bool { return flightOn.Load() == 1 }

// SetFlightRecording arms or disarms the process's always-on flight
// recording and returns the previous state. With it off, Recorder() and
// Active() return nil — the exact pre-recorder disabled-tracer path —
// which is what the obs-overhead benchmark compares against.
func SetFlightRecording(on bool) bool {
	var v int32
	if on {
		v = 1
	}
	return flightOn.Swap(v) == 1
}

// Flight returns the process flight recorder ring.
func Flight() *FlightRecorder {
	flightOnce.Do(func() {
		flightRing = NewFlightRecorder(DefaultFlightBytes)
		flightRec = New(WithRingOnly(), WithFlightRecorder(flightRing))
	})
	return flightRing
}

// Recorder returns the process's always-on ring-only tracer, or nil when
// flight recording is disabled. Root spans started on it buffer nothing;
// their completed subtrees land in Flight()'s ring.
func Recorder() *Tracer {
	if !flightEnabled() {
		return nil
	}
	Flight()
	return flightRec
}

package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// incidentMinGap rate-limits automatic dumps: a panic storm or a fenced
// primary retrying in a loop produces one dump per window, not one per
// failure.
const incidentMinGap = time.Second

var (
	incidentMu   sync.Mutex
	incidentSink io.Writer    = os.Stderr
	incidentLast atomic.Int64 // unix nanos of the last dump
)

// SetIncidentSink redirects automatic incident dumps (default os.Stderr).
// Pass nil to discard them. Returns the previous sink so tests can
// restore it.
func SetIncidentSink(w io.Writer) io.Writer {
	incidentMu.Lock()
	defer incidentMu.Unlock()
	prev := incidentSink
	incidentSink = w
	return prev
}

// Incident records that something went badly enough to want forensic
// state — a contained panic, a fenced ex-primary, a staleness-budget
// refusal — and dumps the flight recorder and slow log to the incident
// sink, rate-limited to one dump per second. The counter increments for
// every call; only the dump is rate-limited.
func Incident(reason string, err error) {
	IncidentsTotal(reason).Inc()
	now := time.Now().UnixNano()
	last := incidentLast.Load()
	if now-last < int64(incidentMinGap) || !incidentLast.CompareAndSwap(last, now) {
		return
	}
	incidentMu.Lock()
	w := incidentSink
	incidentMu.Unlock()
	if w == nil {
		return
	}
	fmt.Fprintf(w, "--- commongraph incident: %s", reason)
	if err != nil {
		fmt.Fprintf(w, " (%v)", err)
	}
	fmt.Fprintf(w, " at %s ---\nflight recorder:\n", time.Unix(0, now).UTC().Format(time.RFC3339Nano))
	if e := Flight().WriteJSON(w); e != nil {
		fmt.Fprintf(w, "(flight dump failed: %v)\n", e)
	}
	fmt.Fprint(w, "slow log:\n")
	if e := Slow().WriteJSON(w); e != nil {
		fmt.Fprintf(w, "(slowlog dump failed: %v)\n", e)
	}
	fmt.Fprint(w, "--- end incident ---\n")
}

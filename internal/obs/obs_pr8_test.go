package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- identity ------------------------------------------------------------

func TestIDSourceDeterministicAndNonZero(t *testing.T) {
	a, b := NewIDSource(42), NewIDSource(42)
	for i := 0; i < 1000; i++ {
		ta, tb := a.TraceID(), b.TraceID()
		if ta != tb {
			t.Fatalf("seeded sources diverged at %d: %s vs %s", i, ta, tb)
		}
		if ta == 0 {
			t.Fatal("ID source produced zero (the no-trace sentinel)")
		}
	}
	if NewIDSource(7).TraceID() == NewIDSource(8).TraceID() {
		t.Error("different seeds produced the same first ID")
	}
	// The zero seed must still work (splitmix of the Weyl increment).
	if NewIDSource(0).TraceID() == 0 {
		t.Error("zero seed produced a zero ID")
	}
}

func TestParseTraceIDRoundTrip(t *testing.T) {
	id := NewIDSource(99).TraceID()
	back, err := ParseTraceID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip: %s != %s", back, id)
	}
	if _, err := ParseTraceID("zz"); err == nil {
		t.Error("garbage trace id parsed")
	}
	if _, err := ParseTraceID(""); err == nil {
		t.Error("empty trace id parsed")
	}
}

func TestSpanIdentityLineage(t *testing.T) {
	tr := New(WithIDSource(NewIDSource(1)), WithFlightRecorder(nil))
	root := tr.StartSpan("root")
	child := root.StartChild("child")
	fork := root.Fork("fork")
	if child.TraceID() != root.TraceID() || fork.TraceID() != root.TraceID() {
		t.Fatal("children left the trace")
	}
	fork.End()
	child.End()
	root.End()

	byName := map[string]Event{}
	for _, e := range tr.Events() {
		byName[e.Name] = e
	}
	rootE := byName["root"]
	if rootE.Parent != 0 {
		t.Errorf("root has parent %s", rootE.Parent)
	}
	if byName["child"].Parent != rootE.ID || byName["fork"].Parent != rootE.ID {
		t.Error("child/fork parent is not the root span")
	}
	if byName["fork"].Track == rootE.Track {
		t.Error("fork should render on its own track")
	}
	if byName["child"].Track != rootE.Track {
		t.Error("sequential child should share the root's track")
	}
}

func TestStartRemoteJoinsTrace(t *testing.T) {
	// Two tracers = two processes. The remote span must join the sender's
	// trace with the sender's span as parent.
	primary := New(WithIDSource(NewIDSource(2)), WithFlightRecorder(nil))
	follower := New(WithIDSource(NewIDSource(3)), WithFlightRecorder(nil))

	ship := primary.StartSpan("repl.ship")
	sc := ship.Context()
	ship.End()

	replay := follower.StartRemote(sc, "repl.replay")
	if replay.TraceID() != sc.Trace {
		t.Fatalf("remote span trace %s, want %s", replay.TraceID(), sc.Trace)
	}
	replay.End()
	ev := follower.Events()
	if len(ev) != 1 || ev[0].Parent != sc.Span {
		t.Fatalf("replay parent = %v, want %s", ev, sc.Span)
	}

	// Invalid context: fresh trace, never zero.
	orphan := follower.StartRemote(SpanContext{}, "orphan")
	if orphan.TraceID() == 0 || orphan.TraceID() == sc.Trace {
		t.Error("invalid remote context should start a fresh trace")
	}
	orphan.End()
}

func TestContextPropagation(t *testing.T) {
	sc := SpanContext{Trace: 7, Span: 9}
	ctx := ContextWithSpan(t.Context(), sc)
	if got := FromContext(ctx); got != sc {
		t.Fatalf("FromContext = %+v, want %+v", got, sc)
	}
	if FromContext(t.Context()).Valid() {
		t.Error("empty context carries a valid span")
	}
	if FromContext(nil).Valid() { //nolint:staticcheck // nil-safety is the contract under test
		t.Error("nil context carries a valid span")
	}
}

// --- flight recorder -----------------------------------------------------

// flightTracer builds a ring-only tracer attached to a private ring, the
// production Recorder() shape without the process singleton.
func flightTracer(maxBytes int64, seed uint64) (*Tracer, *FlightRecorder) {
	ring := NewFlightRecorder(maxBytes)
	return New(WithRingOnly(), WithFlightRecorder(ring), WithIDSource(NewIDSource(seed))), ring
}

func TestFlightRecorderRetainsCompletedRoots(t *testing.T) {
	tr, ring := flightTracer(1<<20, 4)
	root := tr.StartSpan("evaluate", String("strategy", "kickstarter"))
	child := root.StartChild("hop")
	child.End()
	root.End()

	recs := ring.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Trace != root.TraceID() || r.Root.Name != "evaluate" {
		t.Fatalf("wrong record: %+v", r.Root)
	}
	// Subtree: child first (ended first), root last.
	if len(r.Events) != 2 || r.Events[0].Name != "hop" || r.Events[1].Name != "evaluate" {
		t.Fatalf("subtree = %v", r.Events)
	}
	if ring.Find(root.TraceID()) != r {
		t.Error("Find missed the record")
	}
	if ring.Find(TraceID(0xdead)) != nil {
		t.Error("Find invented a record")
	}
	// Ring-only: the tracer's own buffer stays empty.
	if n := len(tr.Events()); n != 0 {
		t.Errorf("ring-only tracer buffered %d events", n)
	}
}

func TestFlightRecorderBytesBounded(t *testing.T) {
	const budget = 8 << 10
	tr, ring := flightTracer(budget, 5)
	for i := 0; i < 500; i++ {
		root := tr.StartSpan("op", String("pad", strings.Repeat("x", 100)))
		root.StartChild("child").End()
		root.End()
	}
	if got := ring.Bytes(); got > budget {
		t.Fatalf("ring holds %d bytes, budget %d", got, budget)
	}
	recs := ring.Records()
	if len(recs) == 0 {
		t.Fatal("ring evicted everything")
	}
	// The newest record must always survive.
	last := recs[len(recs)-1]
	if last.Root.Name != "op" {
		t.Fatalf("newest record lost: %+v", last.Root)
	}
}

func TestFlightRecorderPerTraceTruncation(t *testing.T) {
	tr, ring := flightTracer(1<<22, 6)
	root := tr.StartSpan("big")
	// recMaxBytes is 256KiB; each child ~64+name+attr bytes. Blow past it.
	pad := strings.Repeat("y", 1024)
	for i := 0; i < 1000; i++ {
		root.StartChild("c", String("pad", pad)).End()
	}
	root.End()
	r := ring.Find(root.TraceID())
	if r == nil {
		t.Fatal("record missing")
	}
	if r.Truncated == 0 {
		t.Error("per-trace cap never truncated a 1MB subtree")
	}
	if r.Bytes > recMaxBytes+4096 {
		t.Errorf("record bytes %d blew past the per-trace cap %d", r.Bytes, recMaxBytes)
	}
}

func TestFlightRecorderConcurrentChaos(t *testing.T) {
	tr, ring := flightTracer(32<<10, 7)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers: complete root spans as fast as possible.
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				root := tr.StartSpan("op", Int("writer", w))
				root.StartChild("c").End()
				root.End()
			}
		}(w)
	}
	// Readers: snapshot and dump concurrently until the writers finish.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range ring.Records() {
					if rec.Root.Name == "" {
						t.Error("torn record")
						return
					}
				}
				ring.WriteJSON(&bytes.Buffer{})
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if ring.Bytes() > ring.MaxBytes() {
		t.Fatalf("quiesced ring over budget: %d > %d", ring.Bytes(), ring.MaxBytes())
	}
}

func TestSetFlightRecordingTogglesRecorder(t *testing.T) {
	prev := SetFlightRecording(true)
	defer SetFlightRecording(prev)
	if Recorder() == nil {
		t.Fatal("recorder nil while enabled")
	}
	if Active() == nil {
		t.Fatal("Active() nil while recording enabled and no env tracer")
	}
	SetFlightRecording(false)
	if Recorder() != nil {
		t.Fatal("recorder should be nil while disabled (the pre-recorder path)")
	}
	if Recorder().Detailed() {
		t.Fatal("nil recorder claims detail")
	}
}

func TestFlightRecordWriteChromeTrace(t *testing.T) {
	tr, ring := flightTracer(1<<20, 8)
	root := tr.StartSpan("evaluate")
	root.StartChild("hop").End()
	root.End()
	var buf bytes.Buffer
	if err := ring.Find(root.TraceID()).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(out.TraceEvents))
	}
	// A nil record still writes a well-formed empty trace.
	buf.Reset()
	var nilRec *FlightRecord
	if err := nilRec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil record dump not JSON: %s", buf.String())
	}
}

// --- dropped-event gap (satellite: obs_trace_dropped_total) --------------

func TestTraceDroppedGapMaterializes(t *testing.T) {
	before := TraceDropped().Value()
	tr := New(WithEventLimit(2), WithIDSource(NewIDSource(9)), WithFlightRecorder(nil))
	tr.Event("a")
	tr.Event("b")
	tr.Event("overflow-1") // dropped
	tr.Event("overflow-2") // dropped
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	if got := TraceDropped().Value() - before; got != 2 {
		t.Fatalf("obs_trace_dropped_total moved by %d, want 2", got)
	}
	// Free space; the next successful record must materialize the gap as a
	// synthetic trace.dropped instant carrying the count.
	tr.Reset()
	tr.Event("overflow-3") // dropped counter reset too; record a fresh gap
	tr2 := New(WithEventLimit(2), WithIDSource(NewIDSource(9)), WithFlightRecorder(nil))
	tr2.Event("a")
	tr2.Event("b")
	tr2.Event("dropped-1")
	tr2.Event("dropped-2")
	tr2.mu.Lock()
	tr2.events = tr2.events[:0] // free space without clearing gapPending
	tr2.mu.Unlock()
	tr2.Event("after-gap")
	var gap *Event
	for _, e := range tr2.Events() {
		if e.Name == "trace.dropped" {
			ge := e
			gap = &ge
		}
	}
	if gap == nil {
		t.Fatal("no synthetic trace.dropped event after the gap")
	}
	if !gap.Instant || gap.Attr("dropped_events") != "2" {
		t.Fatalf("gap event wrong: %+v", *gap)
	}
}

// --- slow-query log ------------------------------------------------------

func TestSlowLogThresholdGates(t *testing.T) {
	l := NewSlowLog(50*time.Millisecond, 1)
	l.Observe(SlowEntry{Strategy: "fast", Dur: 10 * time.Millisecond})
	l.Observe(SlowEntry{Strategy: "slow", Dur: 80 * time.Millisecond})
	entries, seen := l.Snapshot()
	if len(entries["fast"]) != 0 {
		t.Error("fast query logged")
	}
	if len(entries["slow"]) != 1 || seen["slow"] != 1 {
		t.Errorf("slow query missing: %v %v", entries, seen)
	}
	// Runtime threshold change applies immediately and returns the old one.
	if old := l.SetThreshold(5 * time.Millisecond); old != 50*time.Millisecond {
		t.Errorf("SetThreshold returned %v", old)
	}
	l.Observe(SlowEntry{Strategy: "fast", Dur: 10 * time.Millisecond})
	if entries, _ := l.Snapshot(); len(entries["fast"]) != 1 {
		t.Error("lowered threshold not applied")
	}
}

func TestSlowLogReservoirBounded(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 2)
	const n = 10_000
	for i := 0; i < n; i++ {
		l.Observe(SlowEntry{Strategy: "s", Dur: time.Duration(i+2) * time.Millisecond})
	}
	entries, seen := l.Snapshot()
	if len(entries["s"]) != slowReservoirK {
		t.Fatalf("reservoir holds %d, want %d", len(entries["s"]), slowReservoirK)
	}
	if seen["s"] != n {
		t.Fatalf("seen = %d, want %d", seen["s"], n)
	}
	// Reservoir sampling: late entries must be able to displace early ones.
	late := false
	for _, e := range entries["s"] {
		if e.Dur > time.Duration(slowReservoirK+2)*time.Millisecond {
			late = true
		}
	}
	if !late {
		t.Error("reservoir only kept the first K entries — not sampling")
	}
}

func TestSlowLogWriteJSONShape(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 3)
	l.Observe(SlowEntry{Trace: 0xabc, Strategy: "work-sharing", Dur: 30 * time.Millisecond, From: 1, To: 5})
	l.Observe(SlowEntry{Strategy: "kickstarter", Dur: 90 * time.Millisecond, Stale: true})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		ThresholdMS float64 `json:"threshold_ms"`
		Strategies  map[string]struct {
			Seen    int64 `json:"seen"`
			Sampled []struct {
				TraceID string  `json:"trace_id"`
				DurMS   float64 `json:"dur_ms"`
				Stale   bool    `json:"stale"`
			} `json:"sampled"`
		} `json:"strategies"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("slowlog JSON: %v\n%s", err, buf.String())
	}
	if out.ThresholdMS != 1 {
		t.Errorf("threshold_ms = %v, want 1", out.ThresholdMS)
	}
	if len(out.Strategies) != 2 {
		t.Fatalf("strategies = %d, want 2", len(out.Strategies))
	}
	// The trace id is exported in the hex form queryable at /debug/trace.
	ws := out.Strategies["work-sharing"]
	if len(ws.Sampled) != 1 || ws.Sampled[0].TraceID != TraceID(0xabc).String() {
		t.Errorf("work-sharing sample wrong: %+v", ws.Sampled)
	}
	ks := out.Strategies["kickstarter"]
	if len(ks.Sampled) != 1 || !ks.Sampled[0].Stale || ks.Sampled[0].DurMS != 90 {
		t.Errorf("kickstarter sample wrong: %+v", ks.Sampled)
	}
}

// --- incidents -----------------------------------------------------------

func TestIncidentDumpAndRateLimit(t *testing.T) {
	var buf bytes.Buffer
	prev := SetIncidentSink(&buf)
	defer SetIncidentSink(prev)
	// Reset the rate limiter window.
	incidentLast.Store(time.Now().Add(-2 * time.Second).UnixNano())

	before := IncidentsTotal("test-reason").Value()
	Incident("test-reason", os.ErrClosed)
	Incident("test-reason", os.ErrClosed) // inside the gap: counted, not dumped
	if got := IncidentsTotal("test-reason").Value() - before; got != 2 {
		t.Fatalf("incident counter moved %d, want 2", got)
	}
	dump := buf.String()
	if strings.Count(dump, "--- commongraph incident: test-reason") != 1 {
		t.Fatalf("want exactly one rate-limited dump, got:\n%s", dump)
	}
	for _, want := range []string{"flight recorder:", "slow log:", "--- end incident ---"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

// --- runtime metrics -----------------------------------------------------

func TestCollectRuntimeMetrics(t *testing.T) {
	CollectRuntimeMetrics()
	if Goroutines().Value() <= 0 {
		t.Error("goroutine gauge not populated")
	}
	if HeapBytes().Value() <= 0 {
		t.Error("heap gauge not populated")
	}
	// The p99 gauges may legitimately be zero right after start; they just
	// must not be negative or NaN.
	for _, g := range []*FloatGauge{GCPauseP99Seconds(), SchedLatencyP99Seconds()} {
		v := g.Value()
		if v < 0 || v != v {
			t.Errorf("p99 gauge = %v", v)
		}
	}
}

func TestRuntimeCollectorRefcount(t *testing.T) {
	stop1 := StartRuntimeCollector(time.Hour)
	stop2 := StartRuntimeCollector(time.Hour)
	runtimeMu.Lock()
	refs := runtimeRefs
	runtimeMu.Unlock()
	if refs != 2 {
		t.Fatalf("refs = %d, want 2", refs)
	}
	stop1()
	stop1() // idempotent
	runtimeMu.Lock()
	refs = runtimeRefs
	stillRunning := runtimeStop != nil
	runtimeMu.Unlock()
	if refs != 1 || !stillRunning {
		t.Fatalf("after one release: refs=%d running=%v", refs, stillRunning)
	}
	stop2()
	runtimeMu.Lock()
	refs, stopped := runtimeRefs, runtimeStop == nil
	runtimeMu.Unlock()
	if refs != 0 || !stopped {
		t.Fatalf("after last release: refs=%d stopped=%v", refs, stopped)
	}
}

// --- stitched export -----------------------------------------------------

func TestWriteStitchedChromeTrace(t *testing.T) {
	primary := New(WithIDSource(NewIDSource(11)), WithFlightRecorder(nil))
	follower := New(WithIDSource(NewIDSource(12)), WithFlightRecorder(nil))

	commit := primary.StartSpan("store.commit")
	ship := primary.StartRemote(commit.Context(), "repl.ship")
	sc := ship.Context()
	ship.End()
	commit.End()
	replay := follower.StartRemote(sc, "repl.replay")
	replay.End()

	var buf bytes.Buffer
	err := WriteStitchedChromeTrace(&buf,
		TraceProcess{Name: "primary", Tracer: primary},
		TraceProcess{Name: "follower", Tracer: follower},
		TraceProcess{Name: "absent", Tracer: nil}, // skipped, not fatal
	)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("stitched trace not JSON: %v", err)
	}
	names := map[string]int{} // process_name metadata per pid
	pids := map[string]int{}
	var traceIDs []string
	for _, e := range out.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			names[e.Args["name"].(string)] = e.Pid
			continue
		}
		pids[e.Name] = e.Pid
		if tid, ok := e.Args["trace_id"].(string); ok {
			traceIDs = append(traceIDs, tid)
		}
	}
	if len(names) != 2 {
		t.Fatalf("process metadata = %v, want primary+follower", names)
	}
	if pids["store.commit"] != names["primary"] || pids["repl.replay"] != names["follower"] {
		t.Fatalf("events landed in the wrong process rows: %v / %v", pids, names)
	}
	if len(traceIDs) != 3 {
		t.Fatalf("trace ids on %d events, want 3", len(traceIDs))
	}
	for _, tid := range traceIDs[1:] {
		if tid != traceIDs[0] {
			t.Fatalf("spans did not share a TraceID: %v", traceIDs)
		}
	}
}

// --- exposition parser + golden file (satellite a) -----------------------

// goldenRegistry builds the deterministic registry the golden file pins:
// every metric type, labels needing escapes, and a histogram whose
// exposition exercises cumulative buckets, +Inf, _sum and _count.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("cg_requests_total", "Requests served.", "strategy", "work-sharing").Add(42)
	r.Counter("cg_requests_total", "Requests served.", "strategy", "kickstarter").Add(7)
	r.Gauge("cg_window_size", "Maintained window width.").Set(16)
	r.FloatGauge("cg_pause_p99_seconds", "GC pause p99.").Set(0.000125)
	r.Counter("cg_weird_label_total", "Escape handling.", "path", "a\\b\"c\nd").Inc()
	h := r.Histogram("cg_hop_seconds", "Hop latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(2 * time.Second) // lands in +Inf
	return r
}

func TestHistogramExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "exposition.golden")
	if os.Getenv("REGEN_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", goldenPath, buf.Len())
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with REGEN_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, buf.String(), want)
	}

	// The hand-rolled parser must accept its own exposition and recover
	// the exact numbers.
	fams, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("parser rejected our own exposition: %v", err)
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	hist, ok := byName["cg_hop_seconds"]
	if !ok || hist.Type != "histogram" {
		t.Fatalf("histogram family missing: %v", byName)
	}
	var infV, countV, sumV float64
	for _, s := range hist.Samples {
		switch {
		case s.Name == "cg_hop_seconds_bucket" && s.Labels["le"] == "+Inf":
			infV = s.Value
		case s.Name == "cg_hop_seconds_count":
			countV = s.Value
		case s.Name == "cg_hop_seconds_sum":
			sumV = s.Value
		}
	}
	if infV != 4 || countV != 4 {
		t.Errorf("histogram +Inf=%v count=%v, want 4/4", infV, countV)
	}
	if sumV < 2.01 || sumV > 2.02 {
		t.Errorf("histogram sum = %v, want ≈2.0115", sumV)
	}
	req := byName["cg_requests_total"]
	if len(req.Samples) != 2 {
		t.Errorf("labelled counter series = %d, want 2", len(req.Samples))
	}
	esc := byName["cg_weird_label_total"]
	if len(esc.Samples) != 1 || esc.Samples[0].Labels["path"] != "a\\b\"c\nd" {
		t.Errorf("label escapes did not round-trip: %+v", esc.Samples)
	}
}

func TestParseExpositionRejectsMalformedHistograms(t *testing.T) {
	cases := map[string]string{
		"non-monotonic buckets": `# HELP h x
# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="1"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`,
		"missing +Inf": `# HELP h x
# TYPE h histogram
h_bucket{le="0.1"} 5
h_sum 1
h_count 5
`,
		"count mismatch": `# HELP h x
# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="+Inf"} 5
h_sum 1
h_count 9
`,
		"TYPE after samples": `# HELP h x
# TYPE h counter
h 1
# TYPE h2 counter
# HELP h2 late help
h 2
`,
		"sample without TYPE": `orphan_metric 3
`,
		"duplicate label": `# HELP c x
# TYPE c counter
c{a="1",a="2"} 3
`,
	}
	for name, text := range cases {
		if _, err := ParseExposition([]byte(text)); err == nil {
			t.Errorf("%s: parser accepted malformed exposition", name)
		}
	}
}

func TestParseExpositionAcceptsDefaultRegistry(t *testing.T) {
	// The live registry (whatever other tests populated) must always parse:
	// this is the same property the /metrics endpoint relies on.
	QueriesTotal := Default()
	var buf bytes.Buffer
	if err := QueriesTotal.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(buf.Bytes()); err != nil {
		t.Fatalf("default registry exposition rejected: %v", err)
	}
}

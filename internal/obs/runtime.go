package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// DefaultRuntimeInterval is the runtime-metrics sampling cadence.
const DefaultRuntimeInterval = 5 * time.Second

// The runtime/metrics samples the collector reads each tick. Kept as one
// batch: metrics.Read with a prebuilt sample slice is the cheap bulk API.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/sched/pauses/total/gc:seconds",
	"/sched/latencies:seconds",
}

// CollectRuntimeMetrics reads one batch of runtime/metrics samples into
// the Default registry gauges. Exported so tests and one-shot tools can
// sample without running the ticker.
func CollectRuntimeMetrics() {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, n := range runtimeSampleNames {
		samples[i].Name = n
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			v := int64(s.Value.Uint64())
			switch s.Name {
			case "/sched/goroutines:goroutines":
				Goroutines().Set(v)
			case "/memory/classes/heap/objects:bytes":
				HeapBytes().Set(v)
			case "/gc/cycles/total:gc-cycles":
				GCCycles().Set(v)
			}
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			switch s.Name {
			case "/sched/pauses/total/gc:seconds":
				GCPauseP99Seconds().Set(histQuantile(h, 0.99))
			case "/sched/latencies:seconds":
				SchedLatencyP99Seconds().Set(histQuantile(h, 0.99))
			}
		case metrics.KindBad:
			// Metric unsupported on this runtime version: skip silently;
			// the gauge just stays at its last (or zero) value.
		}
	}
}

// histQuantile extracts the q-quantile from a runtime/metrics histogram:
// the lowest bucket upper bound at which the cumulative count crosses q.
// Infinite bounds fall back to the nearest finite neighbour.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Bucket i spans Buckets[i] .. Buckets[i+1].
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) { // overflow bucket
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// The process runtime collector is refcounted: every ops/metrics server
// holds a reference while serving, so one goroutine samples no matter how
// many servers run, and it stops when the last closes.
var (
	runtimeMu   sync.Mutex
	runtimeRefs int
	runtimeStop chan struct{}
	runtimeDone chan struct{}
)

// StartRuntimeCollector begins (or joins) the process's runtime-metrics
// sampling loop at the given interval (DefaultRuntimeInterval when
// non-positive). The returned stop function releases the reference; the
// loop exits when the last holder stops. One immediate sample is taken
// before the ticker so scrapes right after startup see real values.
func StartRuntimeCollector(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultRuntimeInterval
	}
	runtimeMu.Lock()
	runtimeRefs++
	if runtimeRefs == 1 {
		CollectRuntimeMetrics()
		stopCh := make(chan struct{})
		doneCh := make(chan struct{})
		runtimeStop, runtimeDone = stopCh, doneCh
		go func() {
			defer close(doneCh)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					CollectRuntimeMetrics()
				case <-stopCh:
					return
				}
			}
		}()
	}
	runtimeMu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			runtimeMu.Lock()
			runtimeRefs--
			var wait chan struct{}
			if runtimeRefs == 0 {
				close(runtimeStop)
				wait = runtimeDone
				runtimeStop, runtimeDone = nil, nil
			}
			runtimeMu.Unlock()
			if wait != nil {
				<-wait
			}
		})
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsFullyNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.StartSpan("root", String("k", "v"))
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	// The whole chain must be callable on nils.
	child := sp.StartChild("child")
	fork := sp.Fork("fork")
	child.SetAttr(Int("i", 1))
	child.End()
	fork.End()
	sp.End()
	tr.Event("ev")
	if sp.Tracer() != nil {
		t.Fatal("nil span returned a tracer")
	}
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer has events: %v", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil tracer chrome output is not JSON: %v", err)
	}
}

// TestDisabledPathAllocates guards the disabled fast path: starting and
// ending spans on a nil tracer must not allocate at all.
func TestDisabledPathAllocates(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("s")
		c := sp.StartChild("c")
		c.End()
		sp.End()
		tr.Event("e")
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %v times per op, want 0", allocs)
	}
}

func TestSpanNestingAndTracks(t *testing.T) {
	tr := New()
	root := tr.StartSpan("evaluate", String("strategy", "work-sharing"))
	seq := root.StartChild("schedule.edge", Int("to", 3))
	time.Sleep(time.Millisecond)
	seq.End()
	par := root.Fork("subtree")
	par.End()
	root.SetAttr(Int("snapshots", 4))
	root.End()
	tr.Event("fault.injected", String("point", "core.subtree-walk"))

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	byName := map[string]Event{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	if byName["schedule.edge"].Track != byName["evaluate"].Track {
		t.Fatal("sequential child is not on the parent's track")
	}
	if byName["subtree"].Track == byName["evaluate"].Track {
		t.Fatal("forked child shares the parent's track")
	}
	if byName["schedule.edge"].Dur < time.Millisecond {
		t.Fatalf("span duration %v lost the slept time", byName["schedule.edge"].Dur)
	}
	if !byName["fault.injected"].Instant {
		t.Fatal("event is not marked instant")
	}
	if got := byName["evaluate"].Attr("snapshots"); got != "4" {
		t.Fatalf("late SetAttr lost: snapshots=%q", got)
	}
	if got := byName["fault.injected"].Attr("point"); got != "core.subtree-walk" {
		t.Fatalf("event attr lost: point=%q", got)
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := New()
	sp := tr.StartSpan("evaluate", String("strategy", "direct-hop"))
	sp.End()
	tr.Event("mark")
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			TS    float64           `json:"ts"`
			PID   int               `json:"pid"`
			TID   int64             `json:"tid"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2", len(out.TraceEvents))
	}
	if out.TraceEvents[0].Phase != "X" || out.TraceEvents[1].Phase != "i" {
		t.Fatalf("phases %q/%q, want X/i", out.TraceEvents[0].Phase, out.TraceEvents[1].Phase)
	}
	if out.TraceEvents[0].Args["strategy"] != "direct-hop" {
		t.Fatalf("span args lost: %v", out.TraceEvents[0].Args)
	}
}

func TestEventLimitDrops(t *testing.T) {
	tr := New(WithEventLimit(3))
	for i := 0; i < 10; i++ {
		tr.Event("e")
	}
	if got := len(tr.Events()); got != 3 {
		t.Fatalf("buffered %d events, want 3", got)
	}
	if got := tr.Dropped(); got != 7 {
		t.Fatalf("dropped %d, want 7", got)
	}
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset did not clear the buffer")
	}
}

func TestLoggerSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New(WithLogger(slog.New(slog.NewTextHandler(&buf, nil))))
	sp := tr.StartSpan("watcher.slide", Int("attempt", 1))
	sp.End()
	out := buf.String()
	if !strings.Contains(out, "watcher.slide") || !strings.Contains(out, "attempt=1") || !strings.Contains(out, "dur=") {
		t.Fatalf("slog output missing span fields: %q", out)
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp := tr.StartSpan("hop", Int("j", j))
				sp.StartChild("engine.run").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Events()); got != 8*200*2 {
		t.Fatalf("got %d events, want %d", got, 8*200*2)
	}
}

func TestRegistryPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("cg_test_total", "a counter.", "strategy", "work-sharing").Add(3)
	r.Counter("cg_test_total", "a counter.", "strategy", "direct-hop").Inc()
	r.Gauge("cg_test_busy", "a gauge.").Set(-2)
	h := r.Histogram("cg_test_seconds", "a histogram.", []float64{0.001, 0.1})
	h.Observe(500 * time.Microsecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(2 * time.Second)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE cg_test_total counter",
		`cg_test_total{strategy="work-sharing"} 3`,
		`cg_test_total{strategy="direct-hop"} 1`,
		"# TYPE cg_test_busy gauge",
		"cg_test_busy -2",
		"# TYPE cg_test_seconds histogram",
		`cg_test_seconds_bucket{le="0.001"} 1`,
		`cg_test_seconds_bucket{le="0.1"} 2`,
		`cg_test_seconds_bucket{le="+Inf"} 3`,
		"cg_test_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("own exposition fails validation: %v", err)
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("cg_json_total", "c.", "strategy", "kickstarter").Add(7)
	r.Gauge("cg_json_busy", "g.").Set(4)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if out["cg_json_busy"] != float64(4) {
		t.Fatalf("unlabeled gauge = %v, want 4", out["cg_json_busy"])
	}
	labeled, ok := out["cg_json_total"].(map[string]any)
	if !ok || labeled[`strategy="kickstarter"`] != float64(7) {
		t.Fatalf("labeled counter = %v", out["cg_json_total"])
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"orphan sample":     "no_type_declared 3\n",
		"malformed sample":  "# TYPE x counter\nx{unclosed 3\n",
		"bad type":          "# TYPE x matrix\n",
		"empty family":      "# TYPE x counter\n",
		"duplicate # TYPE":  "# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n",
		"malformed comment": "# NOPE x counter\n",
	}
	for name, text := range cases {
		if err := ValidateExposition([]byte(text)); err == nil {
			t.Errorf("%s accepted: %q", name, text)
		}
	}
}

func TestDefaultInstrumentsAreCached(t *testing.T) {
	a := Queries("work-sharing")
	b := Queries("work-sharing")
	if a != b {
		t.Fatal("instrument accessor returned distinct handles for the same labels")
	}
	if Queries("direct-hop") == a {
		t.Fatal("distinct labels share a handle")
	}
	before := a.Value()
	a.Inc()
	if b.Value() != before+1 {
		t.Fatal("handles do not share state")
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", "h.", nil)
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2", h.Count())
	}
	if got := h.Sum(); got != time.Second+time.Millisecond {
		t.Fatalf("sum %v", got)
	}
}

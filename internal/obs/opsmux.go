package obs

import (
	"fmt"
	"net/http"
	"sync"
)

// OpsMux is the one operational HTTP surface every server in the repo
// mounts — Watcher.ServeMetrics, Follower.ServeOps, and the cgserve
// query service used to each assemble their own mux, drifting apart one
// endpoint at a time. Building the shared routes here keeps the contract
// in one place:
//
//	/metrics               process metric registry (Prometheus text, or
//	                       JSON with ?format=json)
//	/healthz               liveness — 200 while the process serves
//	/readyz                readiness — 200 by default; owners install a
//	                       probe with SetReadiness (503 + reason until it
//	                       passes)
//	/debug/flightrecorder  completed root spans retained in the flight ring
//	/debug/slowlog         slow-query reservoir samples, by strategy
//	/debug/trace?id=<hex>  one retained trace as Chrome trace JSON
//
// Owners add their own routes with Handle/HandleFunc (a watcher's
// /window, a follower's /lag and /promote, cgserve's /v1 query API).
type OpsMux struct {
	mux *http.ServeMux

	readyMu sync.Mutex
	ready   func() (ok bool, detail string)
}

// NewOpsMux builds the shared ops surface with the default always-ready
// probe.
func NewOpsMux() *OpsMux {
	m := &OpsMux{mux: http.NewServeMux()}
	m.mux.Handle("/metrics", Default().Handler())
	m.mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(rw, "ok")
	})
	m.mux.HandleFunc("/readyz", func(rw http.ResponseWriter, _ *http.Request) {
		ok, detail := m.readiness()
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ok {
			rw.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(rw, detail)
	})
	m.mux.HandleFunc("/debug/flightrecorder", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		Flight().WriteJSON(rw)
	})
	m.mux.HandleFunc("/debug/slowlog", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		Slow().WriteJSON(rw)
	})
	m.mux.HandleFunc("/debug/trace", func(rw http.ResponseWriter, r *http.Request) {
		id, err := ParseTraceID(r.URL.Query().Get("id"))
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		rec := Flight().Find(id)
		if rec == nil {
			http.Error(rw, "trace not in flight recorder", http.StatusNotFound)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		rec.WriteChromeTrace(rw)
	})
	return m
}

// Handle mounts an owner-specific route next to the shared ones.
func (m *OpsMux) Handle(pattern string, h http.Handler) { m.mux.Handle(pattern, h) }

// HandleFunc mounts an owner-specific route next to the shared ones.
func (m *OpsMux) HandleFunc(pattern string, h func(http.ResponseWriter, *http.Request)) {
	m.mux.HandleFunc(pattern, h)
}

// SetReadiness replaces the /readyz probe. The default always reports
// ready; a replication follower installs its staleness-budget check, the
// query service its queue-saturation check.
func (m *OpsMux) SetReadiness(f func() (ok bool, detail string)) {
	m.readyMu.Lock()
	m.ready = f
	m.readyMu.Unlock()
}

func (m *OpsMux) readiness() (bool, string) {
	m.readyMu.Lock()
	f := m.ready
	m.readyMu.Unlock()
	if f == nil {
		return true, "ok"
	}
	return f()
}

// ServeHTTP makes the OpsMux itself mountable as a handler.
func (m *OpsMux) ServeHTTP(rw http.ResponseWriter, r *http.Request) { m.mux.ServeHTTP(rw, r) }

package obs

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
)

// TraceID identifies one request-scoped span tree across process
// boundaries: every span of one evaluation, and of the replication work
// that fed it, carries the same TraceID. Zero is "no trace".
type TraceID uint64

// SpanID identifies one span within a trace. Zero is "no span".
type SpanID uint64

// String renders the ID as fixed-width hex — the form /debug/trace?id=
// accepts and Chrome trace args carry.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// String renders the ID as fixed-width hex.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// ParseTraceID parses the hex form String produces (leading zeros
// optional).
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// IDSource generates span and trace IDs: a splitmix64 stream over an
// atomic counter, so generation is lock-free, collision-resistant for any
// practical span volume, and — with a fixed seed — fully deterministic.
// Tests inject a seeded source via WithIDSource; production tracers seed
// from the wall clock once at construction. An IDSource never yields 0
// (the "absent" value of both ID types).
type IDSource struct {
	state atomic.Uint64
}

// NewIDSource creates a source whose stream is fully determined by seed.
func NewIDSource(seed uint64) *IDSource {
	s := &IDSource{}
	s.state.Store(seed)
	return s
}

// next returns the stream's next ID (never 0).
func (s *IDSource) next() uint64 {
	for {
		// splitmix64: a Weyl sequence through a strong finalizer. The
		// atomic add hands every caller a distinct input, so concurrent
		// spans never collide.
		z := s.state.Add(0x9E3779B97F4A7C15)
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// TraceID draws a fresh trace identifier.
func (s *IDSource) TraceID() TraceID { return TraceID(s.next()) }

// SpanID draws a fresh span identifier.
func (s *IDSource) SpanID() SpanID { return SpanID(s.next()) }

// SpanContext is the portable identity of a span: what flows through
// context.Context between layers and across the replication wire (the
// frame header's trace-context field). The zero value is "no trace".
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// ctxKey is the context.Context key for the active SpanContext.
type ctxKey struct{}

// ContextWithSpan returns a context carrying sc; spans started under it
// (Tracer.StartRemote via FromContext) join sc's trace as children.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the active span context, or the zero (invalid)
// SpanContext when none is set.
func FromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// Package obs is the observability layer of the evaluation pipeline:
// structured tracing at schedule-edge granularity, always-on atomic
// metrics, and profiling hooks — all zero-dependency (stdlib only) so it
// can be imported from every layer, including internal/faults.
//
// The three facets, and their cost model:
//
//   - Tracing (Tracer/Span): disabled is the default and costs one nil
//     check per span site — a nil *Tracer and a nil *Span are fully
//     functional no-ops, so instrumented code never branches on "is
//     tracing on". Enabled, spans buffer in memory and export as Chrome
//     trace_event JSON (chrome://tracing, Perfetto) and/or stream to a
//     *slog.Logger. The COMMONGRAPH_TRACE environment variable arms a
//     process-wide tracer (see Env) without touching any API.
//
//   - Metrics (Registry): counters, gauges and histograms are plain
//     atomics, registered once and updated lock-free, exposed in
//     Prometheus text exposition format and as expvar-style JSON. The
//     canonical pipeline instruments (instruments.go) live on the Default
//     registry and are documented as a stable contract in DESIGN.md
//     "Observability".
//
//   - Profiling: the executors wrap their goroutines in pprof.Do with
//     strategy/subtree labels (see internal/core), so CPU profiles
//     attribute samples to schedule structure; obs itself only provides
//     the span/metric vocabulary those labels mirror.
//
// Update sites are schedule-edge/query granularity, never the engine's
// per-vertex hot loop; the disabled-path micro-benchmarks in
// bench_test.go guard that property.
package obs

import (
	"strconv"
	"time"
)

// Attr is one key/value annotation on a span or event. Values are
// pre-rendered to strings at the call site: attribute construction is on
// the traced path only, never the disabled path (span helpers are
// nil-safe before their attrs are evaluated — keep heavy formatting out
// of call arguments).
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 builds a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Duration builds a duration attribute (human-readable form).
func Duration(k string, d time.Duration) Attr { return Attr{Key: k, Value: d.String()} }

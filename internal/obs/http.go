package obs

import "net/http"

// Handler serves the registry over HTTP: Prometheus text exposition by
// default, expvar-style JSON with ?format=json (or an Accept header
// preferring application/json). Watcher.ServeMetrics and the cmd/ tools
// mount it.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantsJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func wantsJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	accept := req.Header.Get("Accept")
	return accept == "application/json"
}

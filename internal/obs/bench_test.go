package obs

import (
	"testing"
	"time"
)

// Disabled-path micro-benchmarks — the regression guard behind the
// "tracing off costs nothing" contract. The nil-tracer span chain must
// stay allocation-free and in the very low single-digit nanoseconds per
// site (it is a handful of predictable nil checks); a regression here
// multiplies across every schedule edge of every query, so treat any
// growth beyond ~2% in CI comparisons (benchstat old new) as a failed
// acceptance criterion, not noise.

func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("hop")
		sp.End()
	}
}

func BenchmarkDisabledSpanChain(b *testing.B) {
	// The deepest chain an evaluation uses per schedule edge: span,
	// sequential child, attr write, two ends, one instant event.
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("evaluate")
		c := sp.StartChild("schedule.edge")
		c.SetAttr(Attr{Key: "batch", Value: "0"})
		c.End()
		tr.Event("mark")
		sp.End()
	}
}

// BenchmarkEnabledSpan bounds the traced path for context: one mutex'd
// append plus a time.Now pair. Not a regression gate — tracing is opt-in.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New(WithEventLimit(1 << 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("hop")
		sp.End()
		if i%1024 == 1023 {
			tr.Reset()
		}
	}
}

// BenchmarkCounterAdd bounds the always-on metrics path: a single atomic
// add on a pre-resolved handle.
func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "b.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkHistogramObserve bounds the per-hop histogram cost: a small
// binary search plus three atomic adds.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "b.", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultEventLimit bounds a tracer's in-memory event buffer; past it new
// events are counted in Dropped instead of growing without bound in a
// long-running service.
const DefaultEventLimit = 1 << 20

// Event is one recorded trace entry: a completed span (Dur > 0 or a span
// that ended instantly) or an instant event (Instant true). Track is the
// lane the event renders on in the Chrome trace view — concurrent
// subtrees get distinct tracks, sequential children inherit their
// parent's.
type Event struct {
	Name    string
	Track   int64
	Start   time.Time
	Dur     time.Duration
	Instant bool
	Attrs   []Attr
}

// Attr returns the value of the named attribute, or "" when absent.
func (e Event) Attr(key string) string {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Tracer records spans and events. A nil *Tracer is the disabled tracer:
// every method is a no-op and StartSpan returns a nil *Span whose methods
// are no-ops too, so call sites never test for enablement.
type Tracer struct {
	logger    *slog.Logger
	limit     int
	epoch     time.Time
	nextTrack atomic.Int64
	dropped   atomic.Int64

	mu     sync.Mutex
	events []Event
}

// TracerOption configures New.
type TracerOption func(*Tracer)

// WithLogger streams every span end and instant event to l as structured
// slog records, in addition to buffering them.
func WithLogger(l *slog.Logger) TracerOption { return func(t *Tracer) { t.logger = l } }

// WithEventLimit overrides DefaultEventLimit.
func WithEventLimit(n int) TracerOption { return func(t *Tracer) { t.limit = n } }

// New creates an enabled tracer.
func New(opts ...TracerOption) *Tracer {
	t := &Tracer{limit: DefaultEventLimit, epoch: time.Now()}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Span is an in-flight traced region. The zero of the API is nil: a nil
// *Span ignores SetAttr/End and returns nil children, which is the whole
// disabled fast path — one pointer test per call.
type Span struct {
	t     *Tracer
	name  string
	track int64
	start time.Time
	attrs []Attr
}

// StartSpan opens a root span on a fresh track. Use it for regions that
// run concurrently with their siblings (subtrees, parallel hops); use
// StartChild for sequential nesting.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, track: t.nextTrack.Add(1), start: time.Now(), attrs: attrs}
}

// StartChild opens a sequential child span on the parent's track.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, track: s.track, start: time.Now(), attrs: attrs}
}

// Fork opens a concurrent child span on a fresh track (a goroutine spawned
// under this span).
func (s *Span) Fork(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.StartSpan(name, attrs...)
}

// Tracer returns the span's tracer (nil for a nil span), for handing the
// tracer itself further down a call chain.
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.t
}

// SetAttr appends attributes to the span (visible once it ends).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End completes the span and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.record(Event{
		Name:  s.name,
		Track: s.track,
		Start: s.start,
		Dur:   time.Since(s.start),
		Attrs: s.attrs,
	})
}

// Event records an instant event (a point in time, not a region).
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.record(Event{Name: name, Start: time.Now(), Instant: true, Attrs: attrs})
}

func (t *Tracer) record(e Event) {
	t.mu.Lock()
	if len(t.events) < t.limit {
		t.events = append(t.events, e)
		t.mu.Unlock()
	} else {
		t.mu.Unlock()
		t.dropped.Add(1)
	}
	if t.logger != nil {
		logAttrs := make([]slog.Attr, 0, len(e.Attrs)+1)
		if !e.Instant {
			logAttrs = append(logAttrs, slog.Duration("dur", e.Dur))
		}
		for _, a := range e.Attrs {
			logAttrs = append(logAttrs, slog.String(a.Key, a.Value))
		}
		t.logger.LogAttrs(context.Background(), slog.LevelInfo, e.Name, logAttrs...) //cgvet:ignore ctxflow -- slog.LogAttrs wants a context only for handler plumbing; trace emission has no request context and must never block on one
	}
}

// Events returns a snapshot of the recorded events, in recording order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Dropped reports how many events the buffer limit discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Reset discards every buffered event (tests, or re-use between queries).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = nil
	t.mu.Unlock()
	t.dropped.Store(0)
}

// chromeEvent is one entry of the Chrome trace_event format, the
// "JSON Array Format" every trace viewer (chrome://tracing, Perfetto,
// speedscope) loads.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds from trace epoch
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int64             `json:"tid"`
	Scope string            `json:"s,omitempty"` // instant-event scope
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace exports the buffered events as Chrome trace_event JSON
// ({"traceEvents": [...]}): spans become complete ("X") events, instants
// become thread-scoped instant ("i") events.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	events := make([]Event, len(t.events))
	copy(events, t.events)
	epoch := t.epoch
	t.mu.Unlock()

	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events))}
	for _, e := range events {
		ce := chromeEvent{
			Name:  e.Name,
			Cat:   "commongraph",
			Phase: "X",
			TS:    float64(e.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur:   float64(e.Dur) / float64(time.Microsecond),
			PID:   1,
			TID:   e.Track,
		}
		if e.Instant {
			ce.Phase = "i"
			ce.Scope = "t"
			ce.Dur = 0
		}
		if len(e.Attrs) > 0 {
			ce.Args = make(map[string]string, len(e.Attrs))
			for _, a := range e.Attrs {
				ce.Args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// EnvVar is the environment variable that arms the process-wide tracer.
//
//	COMMONGRAPH_TRACE=log          stream spans to stderr as slog text
//	COMMONGRAPH_TRACE=<path.json>  buffer spans; commands write the Chrome
//	                               trace there on exit (WriteEnvTrace)
const EnvVar = "COMMONGRAPH_TRACE"

var (
	envOnce   sync.Once
	envTracer *Tracer
	envPath   string
)

// Env returns the process-wide tracer configured by COMMONGRAPH_TRACE, or
// nil (the disabled tracer) when the variable is unset. It is the default
// every pipeline entry point falls back to when no explicit tracer is
// passed, so `COMMONGRAPH_TRACE=log go test ...` or a traced cgquery run
// needs no code changes.
func Env() *Tracer {
	envOnce.Do(func() {
		v := os.Getenv(EnvVar)
		switch v {
		case "":
			return
		case "log", "1", "stderr":
			envTracer = New(WithLogger(slog.New(slog.NewTextHandler(os.Stderr, nil))))
		default:
			envPath = v
			envTracer = New()
		}
	})
	return envTracer
}

// WriteEnvTrace writes the env tracer's buffer to the path given in
// COMMONGRAPH_TRACE, when the variable named a file. Commands defer it;
// it is a no-op in the "log" and unset configurations.
func WriteEnvTrace() error {
	t := Env()
	if t == nil || envPath == "" {
		return nil
	}
	f, err := os.Create(envPath)
	if err != nil {
		return fmt.Errorf("obs: writing %s trace: %w", EnvVar, err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

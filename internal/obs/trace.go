package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultEventLimit bounds a tracer's in-memory event buffer; past it new
// events are counted in Dropped instead of growing without bound in a
// long-running service.
const DefaultEventLimit = 1 << 20

// Event is one recorded trace entry: a completed span (Dur > 0 or a span
// that ended instantly) or an instant event (Instant true). Track is the
// lane the event renders on in the Chrome trace view — concurrent
// subtrees get distinct tracks, sequential children inherit their
// parent's. Trace/ID/Parent are the span's wire identity (zero for
// instant events and for spans recorded before identity existed).
type Event struct {
	Name    string
	Track   int64
	Start   time.Time
	Dur     time.Duration
	Instant bool
	Trace   TraceID
	ID      SpanID
	Parent  SpanID
	Attrs   []Attr
}

// Attr returns the value of the named attribute, or "" when absent.
func (e Event) Attr(key string) string {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// approxBytes estimates the event's resident size, the unit of the
// flight recorder's byte budget.
func (e Event) approxBytes() int {
	n := 64 + len(e.Name)
	for _, a := range e.Attrs {
		n += 32 + len(a.Key) + len(a.Value)
	}
	return n
}

// Tracer records spans and events. A nil *Tracer is the disabled tracer:
// every method is a no-op and StartSpan returns a nil *Span whose methods
// are no-ops too, so call sites never test for enablement.
//
// A tracer built with WithRingOnly buffers nothing itself: completed
// root-span trees go only to the flight recorder's bounded ring. That is
// the always-on mode Recorder() provides as the pipeline's default sink.
type Tracer struct {
	logger    *slog.Logger
	limit     int
	epoch     time.Time
	ids       *IDSource
	flight    *FlightRecorder
	flightSet bool // WithFlightRecorder was given (possibly nil): skip the process default
	ringOnly  bool
	nextTrack atomic.Int64
	dropped   atomic.Int64
	// gapPending counts events dropped since the last successful record;
	// the next event that fits materializes it as a synthetic
	// "trace.dropped" instant so exported traces show the gap instead of
	// silently eliding it.
	gapPending atomic.Int64

	mu     sync.Mutex
	events []Event
}

// TracerOption configures New.
type TracerOption func(*Tracer)

// WithLogger streams every span end and instant event to l as structured
// slog records, in addition to buffering them.
func WithLogger(l *slog.Logger) TracerOption { return func(t *Tracer) { t.logger = l } }

// WithEventLimit overrides DefaultEventLimit.
func WithEventLimit(n int) TracerOption { return func(t *Tracer) { t.limit = n } }

// WithIDSource injects the span/trace ID stream — tests pass a seeded
// NewIDSource for deterministic identities.
func WithIDSource(s *IDSource) TracerOption { return func(t *Tracer) { t.ids = s } }

// WithFlightRecorder overrides the ring completed root spans are handed
// to (default: the process recorder, Flight()). Pass nil to detach the
// tracer from flight recording entirely.
func WithFlightRecorder(f *FlightRecorder) TracerOption {
	return func(t *Tracer) { t.flight = f; t.flightSet = true }
}

// WithRingOnly makes the tracer buffer nothing in its own event slice:
// spans exist only long enough to reach the flight recorder. This is the
// always-on configuration — per-trace memory is bounded by the ring's
// byte budget, never by query volume.
func WithRingOnly() TracerOption { return func(t *Tracer) { t.ringOnly = true } }

// New creates an enabled tracer.
func New(opts ...TracerOption) *Tracer {
	t := &Tracer{limit: DefaultEventLimit, epoch: time.Now()}
	for _, o := range opts {
		o(t)
	}
	if t.ids == nil {
		t.ids = NewIDSource(uint64(time.Now().UnixNano()))
	}
	if !t.flightSet {
		t.flight = Flight()
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Detailed reports whether the tracer buffers full event streams (an
// explicit or COMMONGRAPH_TRACE tracer) as opposed to the ring-only
// flight configuration. Expensive extras — per-query ReadMemStats deltas,
// allocation attribution — are gated on it so the always-on recorder
// never pays them.
func (t *Tracer) Detailed() bool { return t != nil && !t.ringOnly }

// traceRec accumulates one root span's completed subtree for the flight
// recorder. Children share their root's rec; the per-trace byte cap keeps
// one enormous trace from evicting the whole ring.
type traceRec struct {
	mu        sync.Mutex
	events    []Event
	bytes     int
	truncated int
}

// recMaxBytes caps one trace's resident size inside the flight ring.
const recMaxBytes = 256 << 10

func (r *traceRec) add(e Event) {
	if r == nil {
		return
	}
	n := e.approxBytes()
	r.mu.Lock()
	if r.bytes+n > recMaxBytes {
		r.truncated++
	} else {
		r.events = append(r.events, e)
		r.bytes += n
	}
	r.mu.Unlock()
}

// Span is an in-flight traced region. The zero of the API is nil: a nil
// *Span ignores SetAttr/End and returns nil children, which is the whole
// disabled fast path — one pointer test per call.
type Span struct {
	t      *Tracer
	name   string
	track  int64
	start  time.Time
	trace  TraceID
	id     SpanID
	parent SpanID
	isRoot bool // local root: completes a flight record on End
	rec    *traceRec
	attrs  []Attr
}

// StartSpan opens a root span on a fresh track. Use it for regions that
// run concurrently with their siblings (subtrees, parallel hops); use
// StartChild for sequential nesting.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newRoot(name, t.ids.TraceID(), 0, attrs)
}

// StartRemote opens a local root span that joins the trace identified by
// sc — the cross-process link: a follower's replay span is a remote child
// of the primary's ingest span, a read span a remote child of the last
// replayed one. An invalid sc starts a fresh trace, so call sites never
// branch on propagation.
func (t *Tracer) StartRemote(sc SpanContext, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	if !sc.Valid() {
		return t.newRoot(name, t.ids.TraceID(), 0, attrs)
	}
	return t.newRoot(name, sc.Trace, sc.Span, attrs)
}

func (t *Tracer) newRoot(name string, trace TraceID, parent SpanID, attrs []Attr) *Span {
	s := &Span{
		t: t, name: name, track: t.nextTrack.Add(1), start: time.Now(),
		trace: trace, id: t.ids.SpanID(), parent: parent, isRoot: true,
		attrs: attrs,
	}
	if t.flight != nil && flightEnabled() {
		s.rec = &traceRec{}
	}
	return s
}

// StartChild opens a sequential child span on the parent's track.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, track: s.track, start: time.Now(),
		trace: s.trace, id: s.t.ids.SpanID(), parent: s.id, rec: s.rec, attrs: attrs}
}

// Fork opens a concurrent child span on a fresh track (a goroutine spawned
// under this span). The fork stays inside the parent's trace — same
// TraceID, parent set — it only renders on its own lane.
func (s *Span) Fork(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, track: s.t.nextTrack.Add(1), start: time.Now(),
		trace: s.trace, id: s.t.ids.SpanID(), parent: s.id, rec: s.rec, attrs: attrs}
}

// Tracer returns the span's tracer (nil for a nil span), for handing the
// tracer itself further down a call chain.
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.t
}

// Context returns the span's portable identity — what crosses process
// boundaries in frame headers and context.Context values. Zero for a nil
// span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id}
}

// TraceID returns the span's trace identity (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.trace
}

// SetAttr appends attributes to the span (visible once it ends).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End completes the span and records it. A root span's End also hands the
// trace's completed subtree to the flight recorder.
func (s *Span) End() {
	if s == nil {
		return
	}
	e := Event{
		Name:   s.name,
		Track:  s.track,
		Start:  s.start,
		Dur:    time.Since(s.start),
		Trace:  s.trace,
		ID:     s.id,
		Parent: s.parent,
		Attrs:  s.attrs,
	}
	s.t.record(e)
	s.rec.add(e)
	if s.isRoot && s.rec != nil && s.t.flight != nil {
		s.t.flight.add(s.rec, s.trace, e)
	}
}

// Event records an instant event (a point in time, not a region).
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.record(Event{Name: name, Start: time.Now(), Instant: true, Attrs: attrs})
}

func (t *Tracer) record(e Event) {
	if !t.ringOnly {
		t.mu.Lock()
		// Peek before swapping: if the buffer is still full the pending
		// count must keep accumulating, not reset.
		if t.gapPending.Load() > 0 && len(t.events) < t.limit {
			gap := t.gapPending.Swap(0)
			// Materialize the gap left by dropped events, so an exported
			// trace shows where (and how much) history is missing.
			t.events = append(t.events, Event{
				Name: "trace.dropped", Start: e.Start, Instant: true,
				Trace: e.Trace,
				Attrs: []Attr{Int64("dropped_events", gap)},
			})
		}
		if len(t.events) < t.limit {
			t.events = append(t.events, e)
			t.mu.Unlock()
		} else {
			t.mu.Unlock()
			t.dropped.Add(1)
			t.gapPending.Add(1)
			TraceDropped().Inc()
		}
	}
	if t.logger != nil {
		logAttrs := make([]slog.Attr, 0, len(e.Attrs)+1)
		if !e.Instant {
			logAttrs = append(logAttrs, slog.Duration("dur", e.Dur))
		}
		for _, a := range e.Attrs {
			logAttrs = append(logAttrs, slog.String(a.Key, a.Value))
		}
		t.logger.LogAttrs(context.Background(), slog.LevelInfo, e.Name, logAttrs...) //cgvet:ignore ctxflow -- slog.LogAttrs wants a context only for handler plumbing; trace emission has no request context and must never block on one
	}
}

// Events returns a snapshot of the recorded events, in recording order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Dropped reports how many events the buffer limit discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Reset discards every buffered event (tests, or re-use between queries).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = nil
	t.mu.Unlock()
	t.dropped.Store(0)
	t.gapPending.Store(0)
}

// chromeEvent is one entry of the Chrome trace_event format, the
// "JSON Array Format" every trace viewer (chrome://tracing, Perfetto,
// speedscope) loads.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds from trace epoch
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int64             `json:"tid"`
	Scope string            `json:"s,omitempty"` // instant-event scope
	Args  map[string]string `json:"args,omitempty"`
}

func chromeFromEvent(e Event, pid int, epoch time.Time) chromeEvent {
	ce := chromeEvent{
		Name:  e.Name,
		Cat:   "commongraph",
		Phase: "X",
		TS:    float64(e.Start.Sub(epoch)) / float64(time.Microsecond),
		Dur:   float64(e.Dur) / float64(time.Microsecond),
		PID:   pid,
		TID:   e.Track,
	}
	if e.Instant {
		ce.Phase = "i"
		ce.Scope = "t"
		ce.Dur = 0
	}
	if len(e.Attrs) > 0 || e.Trace != 0 {
		ce.Args = make(map[string]string, len(e.Attrs)+3)
		for _, a := range e.Attrs {
			ce.Args[a.Key] = a.Value
		}
		if e.Trace != 0 {
			ce.Args["trace_id"] = e.Trace.String()
			ce.Args["span_id"] = e.ID.String()
			if e.Parent != 0 {
				ce.Args["parent_id"] = e.Parent.String()
			}
		}
	}
	return ce
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the buffered events as Chrome trace_event JSON
// ({"traceEvents": [...]}): spans become complete ("X") events, instants
// become thread-scoped instant ("i") events. Span identity rides in the
// args (trace_id, span_id, parent_id).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	events := make([]Event, len(t.events))
	copy(events, t.events)
	epoch := t.epoch
	t.mu.Unlock()

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events))}
	for _, e := range events {
		out.TraceEvents = append(out.TraceEvents, chromeFromEvent(e, 1, epoch))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// TraceProcess names one tracer inside a stitched multi-process export.
type TraceProcess struct {
	Name   string
	Tracer *Tracer
}

// WriteStitchedChromeTrace merges several tracers — typically a primary's
// and a follower's — into one Chrome trace timeline: each tracer becomes
// a distinct pid with a process_name metadata record, and all timestamps
// share one epoch (the earliest tracer's), so spans that share a TraceID
// across the replication wire line up on a single wall-clock axis.
func WriteStitchedChromeTrace(w io.Writer, procs ...TraceProcess) error {
	var epoch time.Time
	for _, p := range procs {
		if p.Tracer == nil {
			continue
		}
		if epoch.IsZero() || p.Tracer.epoch.Before(epoch) {
			epoch = p.Tracer.epoch
		}
	}
	out := chromeTrace{DisplayTimeUnit: "ms"}
	for i, p := range procs {
		pid := i + 1
		if p.Tracer == nil {
			// Absent process (e.g. a follower that never started): no empty
			// row in the viewer.
			continue
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]string{"name": p.Name},
		})
		for _, e := range p.Tracer.Events() {
			out.TraceEvents = append(out.TraceEvents, chromeFromEvent(e, pid, epoch))
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// EnvVar is the environment variable that arms the process-wide tracer.
//
//	COMMONGRAPH_TRACE=log          stream spans to stderr as slog text
//	COMMONGRAPH_TRACE=<path.json>  buffer spans; commands write the Chrome
//	                               trace there on exit (WriteEnvTrace)
const EnvVar = "COMMONGRAPH_TRACE"

var (
	envOnce   sync.Once
	envTracer *Tracer
	envPath   string
)

// Env returns the process-wide tracer configured by COMMONGRAPH_TRACE, or
// nil (the disabled tracer) when the variable is unset. It is the default
// every pipeline entry point falls back to when no explicit tracer is
// passed, so `COMMONGRAPH_TRACE=log go test ...` or a traced cgquery run
// needs no code changes.
func Env() *Tracer {
	envOnce.Do(func() {
		v := os.Getenv(EnvVar)
		switch v {
		case "":
			return
		case "log", "1", "stderr":
			envTracer = New(WithLogger(slog.New(slog.NewTextHandler(os.Stderr, nil))))
		default:
			envPath = v
			envTracer = New()
		}
	})
	return envTracer
}

// Active resolves the process's ambient tracer: the COMMONGRAPH_TRACE
// tracer when armed, else the always-on ring-only flight recorder tracer
// (nil only when flight recording is globally disabled). Instrumentation
// sites with no explicit tracer — watcher maintenance, ingest windows,
// replication sessions — use it so their root spans land in the flight
// ring by default.
func Active() *Tracer {
	if t := Env(); t != nil {
		return t
	}
	return Recorder()
}

// WriteEnvTrace writes the env tracer's buffer to the path given in
// COMMONGRAPH_TRACE, when the variable named a file. Commands defer it;
// it is a no-op in the "log" and unset configurations.
func WriteEnvTrace() error {
	t := Env()
	if t == nil || envPath == "" {
		return nil
	}
	f, err := os.Create(envPath)
	if err != nil {
		return fmt.Errorf("obs: writing %s trace: %w", EnvVar, err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

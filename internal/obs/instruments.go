package obs

// The canonical pipeline instruments, all on the Default registry. Their
// names and labels are a stable contract documented in DESIGN.md
// "Observability"; dashboards and the CI metrics smoke job depend on
// them. Strategy label values are the slugs of evaluate.go's Strategy
// (kickstarter, independent, direct-hop, direct-hop-parallel,
// work-sharing, work-sharing-parallel); fault point label values are the
// internal/faults Point names.
//
// Accessors take the label value and cache on the registry, so per-query
// resolution is two map lookups; executors resolve once per query and
// update handles lock-free.

const (
	helpQueries     = "Queries evaluated, by strategy."
	helpQueryErrs   = "Queries that returned an error, by strategy."
	helpAdds        = "Addition-batch edges streamed (the schedule cost), by strategy."
	helpDels        = "Deletion-batch edges streamed (KickStarter only), by strategy."
	helpSnaps       = "Snapshot results produced, by strategy."
	helpHops        = "Latency of one schedule hop (a Direct-Hop hop, a Work-Sharing root subtree), by strategy."
	helpDegraded    = "Schedule subtrees that failed and were recomputed via the Direct-Hop fallback."
	helpFaults      = "Injected fault firings, by injection point (chaos/fault-injection runs only)."
	helpWorkersBusy = "Executor goroutines currently running a hop or subtree."
	helpRetries     = "Watcher maintenance retries after transient failures."
	helpMaintOps    = "Watcher maintenance operations completed, by kind (append, advance, slide)."
	helpMaintErrs   = "Watcher maintenance operations that ultimately failed, by kind."
	helpIngBatches  = "Update windows the ingest batcher closed and handed to the store."
	helpIngUpdates  = "Raw single-edge updates accepted by the ingest batcher."
	helpWALAppends  = "Durable-store WAL append calls (each is one fsync)."
	helpWALBytes    = "Bytes appended to the durable-store WAL."
	helpWALTrunc    = "WAL torn tails truncated during crash recovery."
	helpWALTrimFail = "Post-commit WAL rotations that failed after the manifest swap (tolerated; stale records drop on the next rotation or open)."
	helpSegWrites   = "Durable-store segments written (base + overlay)."
	helpSegBytes    = "Bytes written into durable-store segments."
	helpSegLoads    = "Durable-store segments loaded from disk."
	helpCompactions = "Durable-store compactions (overlays folded into a new base generation)."
	helpCompactGC   = "Compaction garbage-collection failures (superseded segment files left on disk)."
	helpRecovered   = "Raw updates recovered from the WAL and re-seeded on open."

	helpReplFrames     = "Replication frames sent, by frame type."
	helpReplFrameRecv  = "Replication frames received, by frame type."
	helpReplBytes      = "Replication payload bytes shipped (frames sent, header + payload)."
	helpReplReplayed   = "Committed transitions a follower replayed into its local store."
	helpReplReconnects = "Follower catch-up loop reconnect attempts after a broken session."
	helpReplLagSeq     = "Follower staleness in WAL sequence numbers (primary commit pointer minus local)."
	helpReplLagWindows = "Follower staleness in committed windows (primary transitions minus local)."
	helpReplFencings   = "Stores fenced by observing a higher replication epoch."
	helpReplPromotions = "Follower promotions (epoch bumps) completed."
	helpReplSnapshots  = "Full snapshot bootstraps shipped to followers (catch-up was impossible incrementally)."
	helpReplStaleReads = "Follower reads served (or refused) beyond the staleness budget, by outcome (served, refused)."

	helpServeRequests  = "Query-service requests, by tenant and outcome (ok, error, bad-request, rejected-queue, rejected-quota)."
	helpServeQueue     = "Query-service jobs currently queued awaiting a worker."
	helpServeInflight  = "Query-service jobs currently executing on a worker."
	helpServeLatency   = "Query-service end-to-end request latency, seconds (admission through response)."
	helpServeCache     = "Query-service result-cache events (hit, miss, insert, skip, invalidate)."
	helpServeICG       = "ICG (intermediate common graph) evaluations by the cross-query sharing layer, by kind: solve (from-scratch on a union interval), derive (incremental from a containing interval's state), shared (clone of a memoized state)."
	helpServePlanCache = "Plan-cache events of the sharing layer (rep-hit, rep-miss, sched-hit, sched-miss, invalidate)."
	helpServeCacheAdm  = "Result-cache inserts refused by the admission policy (estimated result bytes above the configured budget)."

	helpSegMaps      = "Durable-store segments opened as read-only memory mappings (zero-copy cold open)."
	helpSegMapBytes  = "Bytes memory-mapped read-only from durable-store segments."
	helpSegMapScrubs = "Mapped segments whose CRC trailer was verified by an on-demand scrub."
	helpSegScrubBy   = "Bytes touched by mapped-segment CRC scrubs — a page-in proxy: each scrub walks the whole mapping, so this approximates the fault-in I/O a cold mapped read pays."
	helpShardSteals  = "Chunks a sharded-executor worker took from a shard other than its home (cross-shard work stealing)."
	helpShardInbox   = "Cross-shard relaxations routed through per-shard inboxes (messages drained in exchange phases)."
	helpShardSupers  = "Sharded-executor supersteps (one relax + exchange round across all shards)."
	helpShardPasses  = "Sharded-executor passes (a Run, Propagate, or incremental pass), by shard count."

	helpTraceDropped = "Trace events discarded because a tracer's event buffer was full (a synthetic trace.dropped event marks the gap in the export)."
	helpSlowQueries  = "Queries slower than the slow-log threshold, by strategy."
	helpIncidents    = "Incident dumps triggered (panic, fenced, stale refusal), by reason; flight-recorder/slow-log dumps are rate-limited, the counter is not."

	helpGoroutines  = "Live goroutines (runtime/metrics /sched/goroutines:goroutines)."
	helpHeapBytes   = "Heap memory occupied by live objects plus unswept spans (runtime/metrics /memory/classes/heap/objects:bytes)."
	helpGCPauseP99  = "99th-percentile stop-the-world GC pause, seconds, over the process lifetime (runtime/metrics /sched/pauses/total/gc:seconds)."
	helpSchedLatP99 = "99th-percentile time goroutines spent runnable before running, seconds, over the process lifetime (runtime/metrics /sched/latencies:seconds)."
	helpGCCycles    = "Completed GC cycles (runtime/metrics /gc/cycles/total:gc-cycles)."
)

// Queries counts evaluated queries for one strategy slug.
func Queries(strategy string) *Counter {
	return Default().Counter("commongraph_queries_total", helpQueries, "strategy", strategy)
}

// QueryErrors counts failed queries for one strategy slug.
func QueryErrors(strategy string) *Counter {
	return Default().Counter("commongraph_query_errors_total", helpQueryErrs, "strategy", strategy)
}

// AdditionsStreamed counts streamed addition-batch edges.
func AdditionsStreamed(strategy string) *Counter {
	return Default().Counter("commongraph_additions_streamed_total", helpAdds, "strategy", strategy)
}

// DeletionsStreamed counts streamed deletion-batch edges.
func DeletionsStreamed(strategy string) *Counter {
	return Default().Counter("commongraph_deletions_streamed_total", helpDels, "strategy", strategy)
}

// SnapshotsEvaluated counts produced snapshot results.
func SnapshotsEvaluated(strategy string) *Counter {
	return Default().Counter("commongraph_snapshots_evaluated_total", helpSnaps, "strategy", strategy)
}

// HopSeconds is the per-hop latency histogram.
func HopSeconds(strategy string) *Histogram {
	return Default().Histogram("commongraph_hop_seconds", helpHops, nil, "strategy", strategy)
}

// Degradations counts subtree fallbacks (Options.Degrade).
func Degradations() *Counter {
	return Default().Counter("commongraph_degradations_total", helpDegraded)
}

// FaultFirings counts injected-fault firings per point.
func FaultFirings(point string) *Counter {
	return Default().Counter("commongraph_fault_injections_total", helpFaults, "point", point)
}

// WorkersBusy is the live executor occupancy gauge.
func WorkersBusy() *Gauge {
	return Default().Gauge("commongraph_workers_busy", helpWorkersBusy)
}

// MaintenanceRetries counts watcher transient-failure retries.
func MaintenanceRetries() *Counter {
	return Default().Counter("commongraph_maintenance_retries_total", helpRetries)
}

// MaintenanceOps counts completed maintenance steps per kind.
func MaintenanceOps(kind string) *Counter {
	return Default().Counter("commongraph_maintenance_ops_total", helpMaintOps, "kind", kind)
}

// MaintenanceErrors counts ultimately-failed maintenance steps per kind.
func MaintenanceErrors(kind string) *Counter {
	return Default().Counter("commongraph_maintenance_errors_total", helpMaintErrs, "kind", kind)
}

// IngestBatches counts closed ingest windows.
func IngestBatches() *Counter {
	return Default().Counter("commongraph_ingest_batches_total", helpIngBatches)
}

// IngestUpdates counts accepted raw updates.
func IngestUpdates() *Counter {
	return Default().Counter("commongraph_ingest_updates_total", helpIngUpdates)
}

// WALAppends counts durable-store WAL append (fsync) calls.
func WALAppends() *Counter {
	return Default().Counter("commongraph_store_wal_appends_total", helpWALAppends)
}

// WALBytes counts bytes appended to the durable-store WAL.
func WALBytes() *Counter {
	return Default().Counter("commongraph_store_wal_bytes_total", helpWALBytes)
}

// WALTruncations counts torn WAL tails dropped during recovery.
func WALTruncations() *Counter {
	return Default().Counter("commongraph_store_wal_truncations_total", helpWALTrunc)
}

// WALTrimFailures counts post-commit WAL rotations that failed after the
// manifest swap already committed the transition — tolerated, but a
// signal the log is accreting until the next successful rotation or open.
func WALTrimFailures() *Counter {
	return Default().Counter("commongraph_store_wal_trim_failures_total", helpWALTrimFail)
}

// SegmentWrites counts durable-store segment files written.
func SegmentWrites() *Counter {
	return Default().Counter("commongraph_store_segment_writes_total", helpSegWrites)
}

// SegmentBytes counts bytes written into durable-store segments.
func SegmentBytes() *Counter {
	return Default().Counter("commongraph_store_segment_bytes_total", helpSegBytes)
}

// SegmentLoads counts durable-store segment files loaded.
func SegmentLoads() *Counter {
	return Default().Counter("commongraph_store_segment_loads_total", helpSegLoads)
}

// Compactions counts durable-store base-fold compactions.
func Compactions() *Counter {
	return Default().Counter("commongraph_store_compactions_total", helpCompactions)
}

// CompactionGCFailures counts superseded segments compaction failed to
// delete (the next Open garbage-collects them, but disk is not being
// reclaimed in the meantime).
func CompactionGCFailures() *Counter {
	return Default().Counter("commongraph_store_compaction_gc_failures_total", helpCompactGC)
}

// RecoveredUpdates counts WAL records re-seeded by crash recovery.
func RecoveredUpdates() *Counter {
	return Default().Counter("commongraph_store_recovered_updates_total", helpRecovered)
}

// ReplFramesSent counts replication frames shipped, by frame type.
func ReplFramesSent(typ string) *Counter {
	return Default().Counter("commongraph_repl_frames_sent_total", helpReplFrames, "type", typ)
}

// ReplFramesReceived counts replication frames received, by frame type.
func ReplFramesReceived(typ string) *Counter {
	return Default().Counter("commongraph_repl_frames_received_total", helpReplFrameRecv, "type", typ)
}

// ReplBytes counts replication bytes shipped.
func ReplBytes() *Counter {
	return Default().Counter("commongraph_repl_bytes_total", helpReplBytes)
}

// ReplBatchesReplayed counts transitions replayed by followers.
func ReplBatchesReplayed() *Counter {
	return Default().Counter("commongraph_repl_batches_replayed_total", helpReplReplayed)
}

// ReplReconnects counts follower reconnect attempts.
func ReplReconnects() *Counter {
	return Default().Counter("commongraph_repl_reconnects_total", helpReplReconnects)
}

// ReplLagSeq is the follower's WAL-sequence staleness gauge.
func ReplLagSeq() *Gauge {
	return Default().Gauge("commongraph_repl_lag_seq", helpReplLagSeq)
}

// ReplLagWindows is the follower's committed-window staleness gauge.
func ReplLagWindows() *Gauge {
	return Default().Gauge("commongraph_repl_lag_windows", helpReplLagWindows)
}

// ReplFencings counts stores fenced by a higher epoch.
func ReplFencings() *Counter {
	return Default().Counter("commongraph_repl_fencings_total", helpReplFencings)
}

// ReplPromotions counts completed follower promotions.
func ReplPromotions() *Counter {
	return Default().Counter("commongraph_repl_promotions_total", helpReplPromotions)
}

// ReplSnapshotShips counts full-snapshot bootstraps shipped.
func ReplSnapshotShips() *Counter {
	return Default().Counter("commongraph_repl_snapshot_ships_total", helpReplSnapshots)
}

// ReplStaleReads counts follower reads past the staleness budget, by
// outcome ("served" when Options allow stale-marked results, "refused"
// for the fail-fast path).
func ReplStaleReads(outcome string) *Counter {
	return Default().Counter("commongraph_repl_stale_reads_total", helpReplStaleReads, "outcome", outcome)
}

// ServeRequests counts query-service requests per tenant and outcome.
func ServeRequests(tenant, outcome string) *Counter {
	return Default().Counter("commongraph_serve_requests_total", helpServeRequests,
		"tenant", tenant, "outcome", outcome)
}

// ServeQueueDepth is the queued-job gauge of the query service.
func ServeQueueDepth() *Gauge {
	return Default().Gauge("commongraph_serve_queue_depth", helpServeQueue)
}

// ServeInflight is the executing-job gauge of the query service.
func ServeInflight() *Gauge {
	return Default().Gauge("commongraph_serve_inflight", helpServeInflight)
}

// ServeLatency is the end-to-end request latency histogram.
func ServeLatency() *Histogram {
	return Default().Histogram("commongraph_serve_request_seconds", helpServeLatency, nil)
}

// ServeCacheEvents counts result-cache events by kind.
func ServeCacheEvents(event string) *Counter {
	return Default().Counter("commongraph_serve_result_cache_total", helpServeCache, "event", event)
}

// ServeICG counts ICG evaluations by the sharing layer, by kind. The
// overlap tests assert on the "solve" series: N concurrent
// overlapping-window queries must cost one solve.
func ServeICG(kind string) *Counter {
	return Default().Counter("commongraph_serve_icg_evaluations_total", helpServeICG, "kind", kind)
}

// ServePlanCache counts plan-cache (rep/schedule memoization) events.
func ServePlanCache(event string) *Counter {
	return Default().Counter("commongraph_serve_plan_cache_total", helpServePlanCache, "event", event)
}

// TraceDropped counts events a full tracer buffer discarded.
func TraceDropped() *Counter {
	return Default().Counter("obs_trace_dropped_total", helpTraceDropped)
}

// SlowQueries counts threshold-crossing queries per strategy slug.
func SlowQueries(strategy string) *Counter {
	return Default().Counter("commongraph_slow_queries_total", helpSlowQueries, "strategy", strategy)
}

// IncidentsTotal counts incident triggers per reason (panic, fenced,
// stale).
func IncidentsTotal(reason string) *Counter {
	return Default().Counter("commongraph_incidents_total", helpIncidents, "reason", reason)
}

// Goroutines is the live-goroutine runtime gauge.
func Goroutines() *Gauge {
	return Default().Gauge("go_goroutines", helpGoroutines)
}

// HeapBytes is the live-heap runtime gauge.
func HeapBytes() *Gauge {
	return Default().Gauge("go_memstats_heap_objects_bytes", helpHeapBytes)
}

// GCPauseP99Seconds is the GC pause tail-latency runtime gauge.
func GCPauseP99Seconds() *FloatGauge {
	return Default().FloatGauge("go_gc_pause_p99_seconds", helpGCPauseP99)
}

// SchedLatencyP99Seconds is the scheduler-latency tail runtime gauge.
func SchedLatencyP99Seconds() *FloatGauge {
	return Default().FloatGauge("go_sched_latency_p99_seconds", helpSchedLatP99)
}

// GCCycles is the completed-GC-cycle runtime gauge.
func GCCycles() *Gauge {
	return Default().Gauge("go_gc_cycles_total", helpGCCycles)
}

// SegmentMaps counts segments opened as read-only memory mappings.
func SegmentMaps() *Counter {
	return Default().Counter("commongraph_store_segment_maps_total", helpSegMaps)
}

// SegmentMapBytes counts bytes memory-mapped from segment files.
func SegmentMapBytes() *Counter {
	return Default().Counter("commongraph_store_segment_map_bytes_total", helpSegMapBytes)
}

// SegmentMapScrubs counts on-demand CRC scrubs of mapped segments.
func SegmentMapScrubs() *Counter {
	return Default().Counter("commongraph_store_segment_map_scrubs_total", helpSegMapScrubs)
}

// SegmentMapScrubBytes counts bytes walked by mapped-segment CRC scrubs —
// the repo's page-fault proxy for cold mapped reads.
func SegmentMapScrubBytes() *Counter {
	return Default().Counter("commongraph_store_segment_map_scrub_bytes_total", helpSegScrubBy)
}

// ShardSteals counts cross-shard chunk steals by the sharded executor.
func ShardSteals() *Counter {
	return Default().Counter("commongraph_shard_steals_total", helpShardSteals)
}

// ShardInboxMessages counts cross-shard relaxations routed through
// per-shard inboxes.
func ShardInboxMessages() *Counter {
	return Default().Counter("commongraph_shard_inbox_messages_total", helpShardInbox)
}

// ShardSupersteps counts sharded-executor supersteps.
func ShardSupersteps() *Counter {
	return Default().Counter("commongraph_shard_supersteps_total", helpShardSupers)
}

// ShardPasses counts sharded-executor passes by shard count.
func ShardPasses(shards string) *Counter {
	return Default().Counter("commongraph_shard_passes_total", helpShardPasses, "shards", shards)
}

// ServeCacheAdmissionRejects counts result-cache inserts the admission
// policy refused because the estimated result size exceeded the budget.
func ServeCacheAdmissionRejects() *Counter {
	return Default().Counter("commongraph_serve_cache_admission_rejects_total", helpServeCacheAdm)
}

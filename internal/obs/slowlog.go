package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSlowThreshold is the latency past which a query lands in the
// slow log.
const DefaultSlowThreshold = 100 * time.Millisecond

// slowReservoirK is the per-strategy reservoir size: enough to see the
// shape of a strategy's tail without the log growing with traffic.
const slowReservoirK = 32

// SlowEntry is one slow-query record.
type SlowEntry struct {
	Trace    TraceID       `json:"-"`
	TraceHex string        `json:"trace_id"`
	Strategy string        `json:"strategy"`
	Dur      time.Duration `json:"-"`
	DurMS    float64       `json:"dur_ms"`
	Start    time.Time     `json:"start"`
	From     int           `json:"from"`
	To       int           `json:"to"`
	Stale    bool          `json:"stale,omitempty"`
	Err      string        `json:"error,omitempty"`
}

// slowReservoir holds one strategy's samples: Vitter's algorithm R over a
// seeded splitmix stream, so the kept set is a uniform sample of that
// strategy's slow queries and tests are deterministic.
type slowReservoir struct {
	seen    int64
	entries []SlowEntry
}

// SlowLog keeps a per-strategy reservoir sample of queries slower than a
// settable threshold. It is process-global (see Slow()) and always on;
// fast queries cost one atomic load and a comparison.
type SlowLog struct {
	thresholdNs atomic.Int64
	rng         *IDSource // reused splitmix stream for reservoir draws
	mu          sync.Mutex
	strategies  map[string]*slowReservoir
}

// NewSlowLog creates a log with the given threshold (DefaultSlowThreshold
// when zero) and RNG seed for reservoir draws.
func NewSlowLog(threshold time.Duration, seed uint64) *SlowLog {
	if threshold <= 0 {
		threshold = DefaultSlowThreshold
	}
	l := &SlowLog{rng: NewIDSource(seed), strategies: make(map[string]*slowReservoir)}
	l.thresholdNs.Store(int64(threshold))
	return l
}

// Threshold returns the current slow threshold.
func (l *SlowLog) Threshold() time.Duration { return time.Duration(l.thresholdNs.Load()) }

// SetThreshold changes the slow threshold at runtime (ops endpoint /
// tests) and returns the previous threshold. Non-positive restores the
// default.
func (l *SlowLog) SetThreshold(d time.Duration) time.Duration {
	if d <= 0 {
		d = DefaultSlowThreshold
	}
	return time.Duration(l.thresholdNs.Swap(int64(d)))
}

// Observe offers a completed query to the log; it is kept only when dur
// crosses the threshold, and then only with reservoir probability once
// the strategy's sample is full.
func (l *SlowLog) Observe(e SlowEntry) {
	if l == nil || int64(e.Dur) < l.thresholdNs.Load() {
		return
	}
	e.TraceHex = e.Trace.String()
	e.DurMS = float64(e.Dur) / float64(time.Millisecond)
	SlowQueries(e.Strategy).Inc()
	l.mu.Lock()
	r := l.strategies[e.Strategy]
	if r == nil {
		r = &slowReservoir{}
		l.strategies[e.Strategy] = r
	}
	r.seen++
	if len(r.entries) < slowReservoirK {
		r.entries = append(r.entries, e)
	} else if j := l.rng.next() % uint64(r.seen); j < slowReservoirK {
		r.entries[j] = e
	}
	l.mu.Unlock()
}

// Snapshot returns the sampled entries per strategy plus total-seen
// counts.
func (l *SlowLog) Snapshot() (map[string][]SlowEntry, map[string]int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	entries := make(map[string][]SlowEntry, len(l.strategies))
	seen := make(map[string]int64, len(l.strategies))
	for s, r := range l.strategies {
		out := make([]SlowEntry, len(r.entries))
		copy(out, r.entries)
		entries[s] = out
		seen[s] = r.seen
	}
	return entries, seen
}

// Reset discards all samples (tests).
func (l *SlowLog) Reset() {
	l.mu.Lock()
	l.strategies = make(map[string]*slowReservoir)
	l.mu.Unlock()
}

// slowlogJSON is the /debug/slowlog dump shape.
type slowlogJSON struct {
	ThresholdMS float64                 `json:"threshold_ms"`
	Strategies  map[string]slowlogStrat `json:"strategies"`
}

type slowlogStrat struct {
	Seen    int64       `json:"seen"`
	Sampled []SlowEntry `json:"sampled"`
}

// WriteJSON dumps the log: threshold plus, per strategy, the total count
// of slow queries seen and the reservoir sample sorted slowest-first.
func (l *SlowLog) WriteJSON(w io.Writer) error {
	entries, seen := l.Snapshot()
	out := slowlogJSON{
		ThresholdMS: float64(l.Threshold()) / float64(time.Millisecond),
		Strategies:  make(map[string]slowlogStrat, len(entries)),
	}
	for s, es := range entries {
		sort.Slice(es, func(i, j int) bool { return es[i].Dur > es[j].Dur })
		out.Strategies[s] = slowlogStrat{Seen: seen[s], Sampled: es}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

var (
	slowOnce sync.Once
	slowLog  *SlowLog
)

// Slow returns the process slow-query log.
func Slow() *SlowLog {
	slowOnce.Do(func() {
		slowLog = NewSlowLog(DefaultSlowThreshold, uint64(time.Now().UnixNano()))
	})
	return slowLog
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds metric families. Registration (Counter/Gauge/Histogram)
// takes a lock and caches the instrument; updates on the returned handles
// are single atomic operations, so call sites resolve handles once per
// query (or once per process, instruments.go) and update lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order, for stable exposition
}

type family struct {
	name, help, typ string
	mu              sync.Mutex
	metrics         map[string]any // label-set key → *Counter/*Gauge/*Histogram
	keys            []string       // registration order
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry the canonical pipeline instruments
// (instruments.go) register on; Watcher.ServeMetrics and the cmd/ tools
// expose it.
func Default() *Registry { return defaultRegistry }

func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, metrics: make(map[string]any)}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	return f
}

// labelKey serializes a label pair list ("k1", "v1", "k2", "v2", ...)
// into the family's metric key and its rendered {k="v"} form.
func labelKey(labelPairs []string) string {
	if len(labelPairs) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(labelPairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labelPairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labelPairs[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a gauge holding a float64 — runtime/metrics samples
// (pause seconds, heap fractions) that don't fit an integer gauge.
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefDurationBuckets are the default histogram bounds for latencies, in
// seconds: decades from a microsecond to ten seconds, the range a
// schedule edge or hop plausibly spans.
var DefDurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Histogram counts observations into cumulative-on-exposition buckets.
// Observations are durations; bounds are seconds.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus the +Inf overflow at the end
	sumNs  atomic.Int64
	count  atomic.Int64
}

// Observe records one duration. Lock-free: a binary search over the
// (small) bound slice and two atomic adds.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Counter returns (registering on first use) the counter of the named
// family with the given label pairs ("k1", "v1", "k2", "v2", ...).
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	f := r.family(name, help, "counter")
	return getOrCreate(f, labelPairs, func() *Counter { return &Counter{} })
}

// Gauge returns (registering on first use) the gauge of the named family.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	f := r.family(name, help, "gauge")
	return getOrCreate(f, labelPairs, func() *Gauge { return &Gauge{} })
}

// FloatGauge returns (registering on first use) the float gauge of the
// named family.
func (r *Registry) FloatGauge(name, help string, labelPairs ...string) *FloatGauge {
	f := r.family(name, help, "gauge")
	return getOrCreate(f, labelPairs, func() *FloatGauge { return &FloatGauge{} })
}

// Histogram returns (registering on first use) the histogram of the named
// family. bounds are upper bounds in seconds, ascending; nil means
// DefDurationBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	f := r.family(name, help, "histogram")
	return getOrCreate(f, labelPairs, func() *Histogram {
		if bounds == nil {
			bounds = DefDurationBuckets
		}
		return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	})
}

func getOrCreate[M any](f *family, labelPairs []string, mk func() M) M {
	key := labelKey(labelPairs)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.metrics[key]; ok {
		if typed, ok := m.(M); ok {
			return typed
		}
		// Same family name registered under two types: a programming
		// error; return a detached instrument rather than corrupting the
		// exposition.
		return mk()
	}
	m := mk()
	f.metrics[key] = m
	f.keys = append(f.keys, key)
	return m
}

// snapshot returns families and their keys in registration order.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, r.families[n])
	}
	return out
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP/# TYPE per family, one sample line per
// metric, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		metrics := make([]any, len(keys))
		for i, k := range keys {
			metrics[i] = f.metrics[k]
		}
		f.mu.Unlock()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for i, k := range keys {
			if err := writePromMetric(w, f.name, k, metrics[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromMetric(w io.Writer, name, labels string, m any) error {
	wrap := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	switch v := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, wrap(""), v.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, wrap(""), v.Value())
		return err
	case *FloatGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, wrap(""), formatFloat(v.Value()))
		return err
	case *Histogram:
		var cum int64
		for i, b := range v.bounds {
			cum += v.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, wrap(`le="`+formatFloat(b)+`"`), cum); err != nil {
				return err
			}
		}
		cum += v.counts[len(v.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, wrap(`le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, wrap(""), formatFloat(v.Sum().Seconds())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, wrap(""), cum)
		return err
	}
	return fmt.Errorf("obs: unknown metric type %T", m)
}

// WriteJSON renders the registry as an expvar-style JSON object: family
// name → value for unlabeled scalars, family name → {labelKey: value}
// for labeled ones, histograms as {count, sum_seconds, buckets}.
func (r *Registry) WriteJSON(w io.Writer) error {
	top := make(map[string]any)
	for _, f := range r.snapshot() {
		f.mu.Lock()
		vals := make(map[string]any, len(f.keys))
		for _, k := range f.keys {
			vals[k] = jsonMetric(f.metrics[k])
		}
		f.mu.Unlock()
		if len(vals) == 1 {
			if v, ok := vals[""]; ok {
				top[f.name] = v
				continue
			}
		}
		top[f.name] = vals
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(top)
}

func jsonMetric(m any) any {
	switch v := m.(type) {
	case *Counter:
		return v.Value()
	case *Gauge:
		return v.Value()
	case *FloatGauge:
		return v.Value()
	case *Histogram:
		buckets := make(map[string]int64, len(v.bounds)+1)
		var cum int64
		for i, b := range v.bounds {
			cum += v.counts[i].Load()
			buckets[formatFloat(b)] = cum
		}
		cum += v.counts[len(v.bounds)].Load()
		buckets["+Inf"] = cum
		return map[string]any{"count": cum, "sum_seconds": v.Sum().Seconds(), "buckets": buckets}
	}
	return nil
}

var (
	promCommentRe = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	promSampleRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$`)
	promTypeRe    = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

// ValidateExposition checks text for gross violations of the Prometheus
// exposition format: every non-empty line must be a well-formed comment
// or sample, every # TYPE must name a known type and be followed by at
// least one sample of its family. It is the shared validator behind the
// endpoint tests and the CI metrics smoke job.
func ValidateExposition(text []byte) error {
	lines := strings.Split(string(text), "\n")
	type fam struct {
		typ     string
		samples int
	}
	fams := make(map[string]*fam)
	order := []string{}
	for i, line := range lines {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !promCommentRe.MatchString(line) {
				return fmt.Errorf("line %d: malformed comment %q", i+1, line)
			}
			if strings.HasPrefix(line, "# TYPE ") {
				m := promTypeRe.FindStringSubmatch(line)
				if m == nil {
					return fmt.Errorf("line %d: malformed # TYPE %q", i+1, line)
				}
				if _, dup := fams[m[1]]; dup {
					return fmt.Errorf("line %d: duplicate # TYPE for %s", i+1, m[1])
				}
				fams[m[1]] = &fam{typ: m[2]}
				order = append(order, m[1])
			}
			continue
		}
		if !promSampleRe.MatchString(line) {
			return fmt.Errorf("line %d: malformed sample %q", i+1, line)
		}
		name := line
		if j := strings.IndexAny(name, "{ "); j >= 0 {
			name = name[:j]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if f, ok := fams[name]; ok {
			f.samples++
		} else if f, ok := fams[base]; ok {
			f.samples++
		} else {
			return fmt.Errorf("line %d: sample %q without a preceding # TYPE", i+1, name)
		}
	}
	for _, name := range order {
		if fams[name].samples == 0 {
			return fmt.Errorf("family %s declared but has no samples", name)
		}
	}
	return nil
}

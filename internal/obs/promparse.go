package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// PromSample is one parsed exposition sample.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family: its # HELP/# TYPE metadata and
// samples in document order. Histogram families gather their _bucket,
// _sum and _count series.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// ParseExposition is a strict, promtool-style parser for the Prometheus
// text exposition format (version 0.0.4), hand-rolled on the stdlib. It
// parses label values with full escape handling (\\, \", \n), checks
// sample/metadata ordering, histogram bucket monotonicity and the
// mandatory +Inf bucket, and returns the families in document order.
// The golden-file test and cgtop both consume it, so the registry's
// output is held to what a real scraper would accept.
func ParseExposition(text []byte) ([]PromFamily, error) {
	var (
		fams  []PromFamily
		index = map[string]int{}
	)
	current := -1
	for ln, line := range strings.Split(string(text), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			kind := line[2:6]
			rest := line[7:]
			sp := strings.IndexByte(rest, ' ')
			name, val := rest, ""
			if sp >= 0 {
				name, val = rest[:sp], rest[sp+1:]
			}
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q in # %s", lineNo, name, kind)
			}
			i, ok := index[name]
			if !ok {
				index[name] = len(fams)
				i = len(fams)
				fams = append(fams, PromFamily{Name: name})
			}
			current = i
			if kind == "HELP" {
				fams[i].Help = val
			} else {
				switch val {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, val)
				}
				if fams[i].Type != "" {
					return nil, fmt.Errorf("line %d: duplicate # TYPE for %s", lineNo, name)
				}
				if len(fams[i].Samples) > 0 {
					return nil, fmt.Errorf("line %d: # TYPE for %s after its samples", lineNo, name)
				}
				fams[i].Type = val
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		famName := s.Name
		if current >= 0 && fams[current].Type == "histogram" {
			base := fams[current].Name
			if s.Name == base+"_bucket" || s.Name == base+"_sum" || s.Name == base+"_count" {
				famName = base
			}
		}
		i, ok := index[famName]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q without preceding metadata", lineNo, s.Name)
		}
		fams[i].Samples = append(fams[i].Samples, s)
		current = i
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %s has no # TYPE", f.Name)
		}
		if len(f.Samples) == 0 {
			return nil, fmt.Errorf("family %s declared but has no samples", f.Name)
		}
		if f.Type == "histogram" {
			if err := checkHistogramFamily(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// checkHistogramFamily verifies cumulative bucket monotonicity, the
// mandatory le="+Inf" bucket, and that _count equals the +Inf bucket, for
// every label subset of the family.
func checkHistogramFamily(f PromFamily) error {
	type series struct {
		last     float64
		infSeen  bool
		infValue float64
		count    float64
		hasCount bool
	}
	bySubset := map[string]*series{}
	subsetKey := func(labels map[string]string) string {
		parts := make([]string, 0, len(labels))
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		// Tiny n: insertion sort keeps this dependency-free of sort pkg churn.
		for i := 1; i < len(parts); i++ {
			for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
				parts[j], parts[j-1] = parts[j-1], parts[j]
			}
		}
		return strings.Join(parts, ",")
	}
	get := func(labels map[string]string) *series {
		k := subsetKey(labels)
		s := bySubset[k]
		if s == nil {
			s = &series{}
			bySubset[k] = s
		}
		return s
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			ser := get(s.Labels)
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", f.Name)
			}
			if s.Value < ser.last {
				return fmt.Errorf("histogram %s: bucket le=%q not cumulative (%g < %g)", f.Name, le, s.Value, ser.last)
			}
			ser.last = s.Value
			if le == "+Inf" {
				ser.infSeen = true
				ser.infValue = s.Value
			}
		case f.Name + "_count":
			ser := get(s.Labels)
			ser.count = s.Value
			ser.hasCount = true
		case f.Name + "_sum":
			// value unconstrained
		default:
			return fmt.Errorf("histogram %s: unexpected series %s", f.Name, s.Name)
		}
	}
	for k, ser := range bySubset {
		if !ser.infSeen {
			return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", f.Name, k)
		}
		if ser.hasCount && ser.count != ser.infValue {
			return fmt.Errorf("histogram %s{%s}: _count %g != +Inf bucket %g", f.Name, k, ser.count, ser.infValue)
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		letter := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		letter := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// parsePromSample parses `name{k="v",...} value` with full label-value
// escape handling.
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " ")
	// Timestamps (a trailing integer field) are legal in the format; the
	// registry never emits them, so reject extra fields here to keep the
	// golden test strict.
	if strings.ContainsRune(rest, ' ') {
		return s, fmt.Errorf("unexpected extra fields in %q", line)
	}
	v, err := parsePromValue(rest)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parsePromValue(tok string) (float64, error) {
	switch tok {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", tok)
	}
	return v, nil
}

// parseLabels parses `{k="v",...}` returning the labels and what follows
// the closing brace.
func parseLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		for i < len(s) && s[i] == ' ' {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i == len(s) {
			return nil, "", fmt.Errorf("unterminated label in %q", s)
		}
		name := s[start:i]
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("label %s: value not quoted", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(s) {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", name, s[i])
				}
				i++
				continue
			}
			b.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = b.String()
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		return nil, "", fmt.Errorf("expected ',' or '}' after label %s", name)
	}
}

package kickstarter

import (
	"time"

	"commongraph/internal/algo"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
)

// CostBreakdown accumulates where a streaming run spends its time — the
// four phases of Figure 11 (incremental addition/deletion computation, and
// graph mutation for additions/deletions).
type CostBreakdown struct {
	MutateAdd         time.Duration
	MutateDelete      time.Duration
	IncrementalAdd    time.Duration
	IncrementalDelete time.Duration
	InitialCompute    time.Duration
}

// Total sums every phase including the initial from-scratch computation.
func (c CostBreakdown) Total() time.Duration {
	return c.MutateAdd + c.MutateDelete + c.IncrementalAdd + c.IncrementalDelete + c.InitialCompute
}

// StreamingTotal sums only the per-transition phases.
func (c CostBreakdown) StreamingTotal() time.Duration {
	return c.MutateAdd + c.MutateDelete + c.IncrementalAdd + c.IncrementalDelete
}

// Add accumulates another breakdown.
func (c *CostBreakdown) Add(o CostBreakdown) {
	c.MutateAdd += o.MutateAdd
	c.MutateDelete += o.MutateDelete
	c.IncrementalAdd += o.IncrementalAdd
	c.IncrementalDelete += o.IncrementalDelete
	c.InitialCompute += o.InitialCompute
}

// System is a KickStarter instance: one mutable graph version and the
// query state maintained against it. It is the paper's baseline: to visit
// n snapshots it streams n-1 transitions in sequence.
type System struct {
	g    *MutableGraph
	st   *engine.State
	opt  engine.Options
	Cost CostBreakdown
	Work engine.Stats
	// Trace, when non-nil, is the parent span every ApplyTransition hangs
	// a "kickstarter.transition" child off, with one grandchild per
	// Figure-11 phase. Nil disables tracing at pointer-test cost.
	Trace *obs.Span
}

// New builds the system on the initial snapshot and computes the query
// from scratch.
func New(n int, initial graph.EdgeList, a algo.Algorithm, src graph.VertexID, opt engine.Options) *System {
	s := &System{g: NewMutableGraph(n, initial), opt: opt}
	t0 := time.Now()
	st, stats := engine.Run(s.g, a, src, opt)
	s.Cost.InitialCompute = time.Since(t0)
	s.st = st
	s.Work = stats
	return s
}

// State exposes the current query state (read-only between transitions).
func (s *System) State() *engine.State { return s.st }

// Graph exposes the current mutable graph.
func (s *System) Graph() *MutableGraph { return s.g }

// ApplyTransition streams one batch pair: mutate the graph in place
// (additions then deletions), then run incremental deletion (trimming)
// and incremental addition to restore the query fixpoint. Each phase's
// wall time is accumulated into Cost.
func (s *System) ApplyTransition(additions, deletions graph.EdgeList) error {
	sp := s.Trace.StartChild("kickstarter.transition",
		obs.Int("additions", len(additions)),
		obs.Int("deletions", len(deletions)))
	defer sp.End()

	t0 := time.Now()
	ph := sp.StartChild("phase.mutate-add")
	s.g.AddBatch(additions)
	ph.End()
	t1 := time.Now()
	s.Cost.MutateAdd += t1.Sub(t0)
	ph = sp.StartChild("phase.mutate-delete")
	err := s.g.DeleteBatch(deletions)
	ph.End()
	if err != nil {
		return err
	}
	t2 := time.Now()
	s.Cost.MutateDelete += t2.Sub(t1)

	ph = sp.StartChild("phase.incremental-delete")
	delStats := IncrementalDelete(s.g, s.st, deletions, s.opt.WithSpan(ph))
	ph.End()
	t3 := time.Now()
	s.Cost.IncrementalDelete += t3.Sub(t2)

	ph = sp.StartChild("phase.incremental-add")
	addStats := engine.IncrementalAdd(s.g, s.st, additions, s.opt.WithSpan(ph))
	ph.End()
	s.Cost.IncrementalAdd += time.Since(t3)

	s.Work.Add(delStats)
	s.Work.Add(addStats)
	return nil
}

package kickstarter

import (
	"testing"
	"testing/quick"

	"commongraph/internal/algo"
	"commongraph/internal/engine"
	"commongraph/internal/gen"
	"commongraph/internal/graph"
)

func TestMutableGraphBasics(t *testing.T) {
	edges := graph.EdgeList{
		{Src: 0, Dst: 1, W: 2},
		{Src: 1, Dst: 2, W: 3},
	}
	g := NewMutableGraph(3, edges)
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	g.AddBatch(graph.EdgeList{{Src: 2, Dst: 0, W: 4}})
	if g.NumEdges() != 3 {
		t.Fatalf("m=%d after add", g.NumEdges())
	}
	if err := g.DeleteBatch(graph.EdgeList{{Src: 0, Dst: 1, W: 2}}); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d after delete", g.NumEdges())
	}
	want := graph.EdgeList{{Src: 1, Dst: 2, W: 3}, {Src: 2, Dst: 0, W: 4}}
	if !graph.Equal(g.Edges(), want) {
		t.Fatalf("edges=%v", g.Edges())
	}
}

func TestDeleteAbsentEdge(t *testing.T) {
	g := NewMutableGraph(2, graph.EdgeList{{Src: 0, Dst: 1, W: 1}})
	if err := g.DeleteBatch(graph.EdgeList{{Src: 1, Dst: 0, W: 1}}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMutableGraphInOutMirror(t *testing.T) {
	f := func(seed int64) bool {
		n, base := gen.RMAT(gen.DefaultRMAT(7, 300, uint64(seed)))
		trs, err := gen.Stream(n, base, gen.StreamConfig{Transitions: 3, Additions: 20, Deletions: 20, Seed: uint64(seed) + 1})
		if err != nil {
			return false
		}
		g := NewMutableGraph(n, base)
		for _, tr := range trs {
			g.AddBatch(tr.Additions)
			if err := g.DeleteBatch(tr.Deletions); err != nil {
				return false
			}
		}
		// Mutated graph must equal the reference materialization.
		want := gen.Apply(base, trs)
		if !graph.Equal(g.Edges(), want) {
			return false
		}
		// In-lists must mirror out-lists.
		outCount, inCount := 0, 0
		for v := 0; v < n; v++ {
			g.OutEdges(graph.VertexID(v), func(graph.VertexID, graph.Weight) { outCount++ })
			g.InEdges(graph.VertexID(v), func(graph.VertexID, graph.Weight) { inCount++ })
		}
		return outCount == inCount && outCount == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalDeleteMatchesScratch(t *testing.T) {
	n, base := gen.RMAT(gen.DefaultRMAT(9, 2500, 17))
	trs, err := gen.Stream(n, base, gen.StreamConfig{Transitions: 1, Additions: 0, Deletions: 150, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	del := trs[0].Deletions
	for _, a := range algo.All() {
		g := NewMutableGraph(n, base)
		st, _ := engine.Run(g, a, 0, engine.Options{})
		if err := g.DeleteBatch(del); err != nil {
			t.Fatal(err)
		}
		IncrementalDelete(g, st, del, engine.Options{})
		ref := engine.Reference(g, a, 0)
		if !engine.ValuesEqual(st, ref) {
			t.Fatalf("%s: trim diverged from scratch", a.Name())
		}
	}
}

func TestIncrementalDeleteNoDependence(t *testing.T) {
	// Deleting edges that justify no vertex's value must be free and
	// change nothing.
	edges := graph.EdgeList{
		{Src: 0, Dst: 1, W: 1},
		{Src: 0, Dst: 2, W: 5}, // 2 is better reached via 1 (1+1=2 < 5)? No: BFS hops. Use SSSP.
		{Src: 1, Dst: 2, W: 1},
	}
	g := NewMutableGraph(3, edges)
	st, _ := engine.Run(g, algo.SSSP{}, 0, engine.Options{})
	if st.Value(2) != 2 {
		t.Fatalf("val(2)=%d", st.Value(2))
	}
	del := graph.EdgeList{{Src: 0, Dst: 2, W: 5}} // not the parent edge of 2
	if err := g.DeleteBatch(del); err != nil {
		t.Fatal(err)
	}
	stats := IncrementalDelete(g, st, del, engine.Options{})
	if stats.Trimmed != 0 {
		t.Fatalf("trimmed %d vertices for a non-dependence deletion", stats.Trimmed)
	}
	if st.Value(2) != 2 {
		t.Fatalf("val(2) changed to %d", st.Value(2))
	}
}

func TestIncrementalDeleteDisconnects(t *testing.T) {
	// Deleting the only path must reset downstream values to identity.
	edges := graph.EdgeList{
		{Src: 0, Dst: 1, W: 1},
		{Src: 1, Dst: 2, W: 1},
		{Src: 2, Dst: 3, W: 1},
	}
	g := NewMutableGraph(4, edges)
	st, _ := engine.Run(g, algo.BFS{}, 0, engine.Options{})
	del := graph.EdgeList{{Src: 0, Dst: 1, W: 1}}
	if err := g.DeleteBatch(del); err != nil {
		t.Fatal(err)
	}
	stats := IncrementalDelete(g, st, del, engine.Options{})
	if stats.Trimmed != 3 {
		t.Fatalf("trimmed=%d want 3", stats.Trimmed)
	}
	for v := 1; v <= 3; v++ {
		if st.Value(graph.VertexID(v)) != algo.Infinity {
			t.Fatalf("val(%d)=%d want identity", v, st.Value(graph.VertexID(v)))
		}
	}
	if st.Value(0) != 0 {
		t.Fatal("source value must survive")
	}
}

func TestSystemStreamingMatchesScratchEveryVersion(t *testing.T) {
	// The full baseline: stream transitions, and at every snapshot the
	// state must equal a from-scratch evaluation of that snapshot.
	n, base := gen.RMAT(gen.DefaultRMAT(9, 2000, 23))
	trs, err := gen.Stream(n, base, gen.StreamConfig{Transitions: 6, Additions: 60, Deletions: 60, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algo.All() {
		sys := New(n, base, a, 0, engine.Options{})
		for i, tr := range trs {
			if err := sys.ApplyTransition(tr.Additions, tr.Deletions); err != nil {
				t.Fatal(err)
			}
			snap := gen.Apply(base, trs[:i+1])
			ref := engine.Reference(graph.NewPair(n, snap), a, 0)
			if !engine.ValuesEqual(sys.State(), ref) {
				t.Fatalf("%s: diverged at snapshot %d", a.Name(), i+1)
			}
		}
		if sys.Cost.StreamingTotal() <= 0 {
			t.Fatalf("%s: no streaming cost recorded", a.Name())
		}
		if sys.Cost.InitialCompute <= 0 {
			t.Fatalf("%s: no initial cost recorded", a.Name())
		}
	}
}

func TestSystemDeleteErrorPropagates(t *testing.T) {
	sys := New(2, graph.EdgeList{{Src: 0, Dst: 1, W: 1}}, algo.BFS{}, 0, engine.Options{})
	if err := sys.ApplyTransition(nil, graph.EdgeList{{Src: 1, Dst: 0, W: 1}}); err == nil {
		t.Fatal("expected error")
	}
}

func TestCostBreakdownArithmetic(t *testing.T) {
	a := CostBreakdown{MutateAdd: 1, MutateDelete: 2, IncrementalAdd: 3, IncrementalDelete: 4, InitialCompute: 5}
	b := a
	a.Add(b)
	if a.MutateAdd != 2 || a.Total() != 30 || a.StreamingTotal() != 20 {
		t.Fatalf("%+v total=%d streaming=%d", a, a.Total(), a.StreamingTotal())
	}
}

func TestStreamingRandomized(t *testing.T) {
	// Property: for random small evolving graphs, streaming with mixed
	// batches always lands on the from-scratch result (final snapshot).
	f := func(seed int64) bool {
		n, base := gen.RMAT(gen.DefaultRMAT(7, 400, uint64(seed)))
		trs, err := gen.Stream(n, base, gen.StreamConfig{Transitions: 4, Additions: 25, Deletions: 25, Seed: uint64(seed) * 3})
		if err != nil {
			return false
		}
		a := algo.All()[int(uint64(seed)%5)]
		sys := New(n, base, a, 0, engine.Options{})
		for _, tr := range trs {
			if err := sys.ApplyTransition(tr.Additions, tr.Deletions); err != nil {
				return false
			}
		}
		final := gen.Apply(base, trs)
		ref := engine.Reference(graph.NewPair(n, final), a, 0)
		return engine.ValuesEqual(sys.State(), ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

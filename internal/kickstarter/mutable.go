// Package kickstarter reconstructs the KickStarter streaming baseline
// (Vora et al., ASPLOS '17) that the paper compares against: a single
// mutable graph version plus a trimmed-approximation incremental engine.
// Additions propagate improvements directly; deletions invalidate the
// dependence subtree of every vertex whose justifying edge died, reset it,
// and re-propagate. The graph itself is mutated in place — the cost the
// CommonGraph representation eliminates.
package kickstarter

import (
	"fmt"

	"commongraph/internal/delta"
	"commongraph/internal/graph"
)

type half struct {
	to graph.VertexID
	w  graph.Weight
}

// MutableGraph is an in-place mutable adjacency (out- and in-lists per
// vertex). Additions append (amortized O(1) per edge); deletions linear-
// search the row and swap-remove (O(degree) per edge) — the classic
// adjacency-mutation asymmetry the paper measures in Figure 1 (bottom).
type MutableGraph struct {
	n   int
	m   int
	out [][]half
	in  [][]half
}

// NewMutableGraph builds a mutable graph over n vertices from initial.
func NewMutableGraph(n int, initial graph.EdgeList) *MutableGraph {
	g := &MutableGraph{n: n, out: make([][]half, n), in: make([][]half, n)}
	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	for _, e := range initial {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	for v := 0; v < n; v++ {
		if outDeg[v] > 0 {
			g.out[v] = make([]half, 0, outDeg[v])
		}
		if inDeg[v] > 0 {
			g.in[v] = make([]half, 0, inDeg[v])
		}
	}
	g.AddBatch(initial)
	return g
}

// NumVertices returns the vertex count.
func (g *MutableGraph) NumVertices() int { return g.n }

// NumEdges returns the current edge count.
func (g *MutableGraph) NumEdges() int { return g.m }

// OutEdges visits u's current out-neighbours.
func (g *MutableGraph) OutEdges(u graph.VertexID, fn func(v graph.VertexID, w graph.Weight)) {
	for _, h := range g.out[u] {
		fn(h.to, h.w)
	}
}

// InEdges visits v's current in-neighbours.
func (g *MutableGraph) InEdges(v graph.VertexID, fn func(u graph.VertexID, w graph.Weight)) {
	for _, h := range g.in[v] {
		fn(h.to, h.w)
	}
}

// AddBatch mutates the graph to include the batch (graph mutation,
// addition side). Duplicate edges must not be added; the snapshot store
// and generators uphold this.
func (g *MutableGraph) AddBatch(batch graph.EdgeList) {
	for _, e := range batch {
		g.out[e.Src] = append(g.out[e.Src], half{to: e.Dst, w: e.W})
		g.in[e.Dst] = append(g.in[e.Dst], half{to: e.Src, w: e.W})
		g.m++
	}
}

// DeleteBatch mutates the graph to remove the batch (graph mutation,
// deletion side). It returns an error if an edge is not present.
func (g *MutableGraph) DeleteBatch(batch graph.EdgeList) error {
	for _, e := range batch {
		if !removeHalf(&g.out[e.Src], e.Dst) {
			return fmt.Errorf("kickstarter: delete of absent edge %v", e)
		}
		if !removeHalf(&g.in[e.Dst], e.Src) {
			return fmt.Errorf("kickstarter: in-list missing edge %v", e)
		}
		g.m--
	}
	return nil
}

// removeHalf deletes the entry for `to`, preserving row order: like CSR
// compaction, every later entry shifts left, so deletion costs O(degree)
// in both the search and the move — the asymmetry of Figure 1 (bottom).
func removeHalf(row *[]half, to graph.VertexID) bool {
	s := *row
	for i := range s {
		if s[i].to == to {
			copy(s[i:], s[i+1:])
			*row = s[:len(s)-1]
			return true
		}
	}
	return false
}

// Edges materializes the current edge list (canonical); test support.
func (g *MutableGraph) Edges() graph.EdgeList {
	out := make(graph.EdgeList, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, h := range g.out[u] {
			out = append(out, graph.Edge{Src: graph.VertexID(u), Dst: h.to, W: h.w})
		}
	}
	return out.Canonicalize()
}

var _ delta.Graph = (*MutableGraph)(nil)

package kickstarter

import (
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
)

func TestDeletionWithReroute(t *testing.T) {
	// 0 -> 1 via two routes; deleting the dependence edge must reroute,
	// not disconnect: val(2) worsens from 2 to 6 but stays finite.
	edges := graph.EdgeList{
		{Src: 0, Dst: 1, W: 1},
		{Src: 1, Dst: 2, W: 1},
		{Src: 0, Dst: 2, W: 6},
		{Src: 2, Dst: 3, W: 1},
	}
	g := NewMutableGraph(4, edges)
	st, _ := engine.Run(g, algo.SSSP{}, 0, engine.Options{})
	if st.Value(2) != 2 || st.Value(3) != 3 {
		t.Fatalf("initial values wrong: %d %d", st.Value(2), st.Value(3))
	}
	del := graph.EdgeList{{Src: 1, Dst: 2, W: 1}}
	if err := g.DeleteBatch(del); err != nil {
		t.Fatal(err)
	}
	stats := IncrementalDelete(g, st, del, engine.Options{})
	if stats.Trimmed == 0 {
		t.Fatal("dependence deletion did not trim")
	}
	if st.Value(2) != 6 || st.Value(3) != 7 {
		t.Fatalf("rerouted values wrong: %d %d", st.Value(2), st.Value(3))
	}
}

func TestDeletionOfEdgeIntoSource(t *testing.T) {
	// The source's value never depends on an edge, so deleting its
	// in-edges trims nothing.
	edges := graph.EdgeList{
		{Src: 1, Dst: 0, W: 1},
		{Src: 0, Dst: 1, W: 1},
	}
	g := NewMutableGraph(2, edges)
	st, _ := engine.Run(g, algo.BFS{}, 0, engine.Options{})
	del := graph.EdgeList{{Src: 1, Dst: 0, W: 1}}
	if err := g.DeleteBatch(del); err != nil {
		t.Fatal(err)
	}
	stats := IncrementalDelete(g, st, del, engine.Options{})
	if stats.Trimmed != 0 {
		t.Fatalf("trimmed %d for an edge into the source", stats.Trimmed)
	}
	if st.Value(0) != 0 || st.Value(1) != 1 {
		t.Fatalf("values corrupted: %d %d", st.Value(0), st.Value(1))
	}
}

func TestTrimCascadeDepth(t *testing.T) {
	// A chain hanging off one edge: deleting the first link must trim the
	// entire downstream chain in one batch.
	const chain = 50
	edges := make(graph.EdgeList, 0, chain)
	for i := 0; i < chain; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), W: 1})
	}
	g := NewMutableGraph(chain+1, edges)
	st, _ := engine.Run(g, algo.SSSP{}, 0, engine.Options{})
	del := graph.EdgeList{{Src: 0, Dst: 1, W: 1}}
	if err := g.DeleteBatch(del); err != nil {
		t.Fatal(err)
	}
	stats := IncrementalDelete(g, st, del, engine.Options{})
	if stats.Trimmed != chain {
		t.Fatalf("trimmed %d, want the whole %d-vertex chain", stats.Trimmed, chain)
	}
	for v := 1; v <= chain; v++ {
		if st.Value(graph.VertexID(v)) != algo.Infinity {
			t.Fatalf("vertex %d survived a severed chain", v)
		}
	}
}

func TestEmptyBatches(t *testing.T) {
	sys := New(3, graph.EdgeList{{Src: 0, Dst: 1, W: 1}}, algo.BFS{}, 0, engine.Options{})
	if err := sys.ApplyTransition(nil, nil); err != nil {
		t.Fatal(err)
	}
	if sys.State().Value(1) != 1 {
		t.Fatal("empty transition changed values")
	}
}

func TestMutationInterleavedWithQueries(t *testing.T) {
	// Values must stay exact through an interleaving of single-edge
	// transitions, matching from-scratch at every step.
	edges := graph.EdgeList{
		{Src: 0, Dst: 1, W: 2},
		{Src: 1, Dst: 2, W: 2},
		{Src: 0, Dst: 3, W: 9},
	}
	sys := New(4, edges, algo.SSSP{}, 0, engine.Options{})
	steps := []struct {
		add graph.EdgeList
		del graph.EdgeList
	}{
		{add: graph.EdgeList{{Src: 2, Dst: 3, W: 1}}},
		{del: graph.EdgeList{{Src: 0, Dst: 3, W: 9}}},
		{add: graph.EdgeList{{Src: 0, Dst: 2, W: 3}}, del: graph.EdgeList{{Src: 1, Dst: 2, W: 2}}},
	}
	for i, s := range steps {
		if err := sys.ApplyTransition(s.add, s.del); err != nil {
			t.Fatal(err)
		}
		ref := engine.Reference(sys.Graph(), algo.SSSP{}, 0)
		if !engine.ValuesEqual(sys.State(), ref) {
			t.Fatalf("step %d diverged", i)
		}
	}
	// Final graph: 0->1(2), 2->3(1), 0->2(3); dist(3) = 3 + 1.
	if got := sys.State().Value(3); got != 4 {
		t.Fatalf("final dist(3) = %d, want 4", got)
	}
}

package kickstarter

import (
	"fmt"
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/engine"
	"commongraph/internal/gen"
)

// BenchmarkTransition measures one full KickStarter transition (mutation
// plus incremental deletion and addition) across batch sizes — the
// baseline's unit of work.
func BenchmarkTransition(b *testing.B) {
	n, base := gen.RMAT(gen.DefaultRMAT(15, 400_000, 5))
	for _, size := range []int{500, 2000, 8000} {
		size := size
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			trs, err := gen.Stream(n, base, gen.StreamConfig{Transitions: 1, Additions: size / 2, Deletions: size / 2, Seed: 9})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys := New(n, base, algo.SSSP{}, 0, engine.Options{Mode: engine.Sync})
				b.StartTimer()
				if err := sys.ApplyTransition(trs[0].Additions, trs[0].Deletions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeletionVsAddition isolates the two incremental primitives at
// equal batch size — the per-operation asymmetry behind Figure 1.
func BenchmarkDeletionVsAddition(b *testing.B) {
	n, base := gen.RMAT(gen.DefaultRMAT(15, 400_000, 5))
	const size = 3000
	addTr, err := gen.Stream(n, base, gen.StreamConfig{Transitions: 1, Additions: size, Deletions: 0, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	delTr, err := gen.Stream(n, base, gen.StreamConfig{Transitions: 1, Additions: 0, Deletions: size, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Addition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys := New(n, base, algo.SSSP{}, 0, engine.Options{Mode: engine.Sync})
			b.StartTimer()
			if err := sys.ApplyTransition(addTr[0].Additions, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Deletion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys := New(n, base, algo.SSSP{}, 0, engine.Options{Mode: engine.Sync})
			b.StartTimer()
			if err := sys.ApplyTransition(nil, delTr[0].Deletions); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMutation isolates in-place graph mutation.
func BenchmarkMutation(b *testing.B) {
	n, base := gen.RMAT(gen.DefaultRMAT(15, 400_000, 5))
	trs, err := gen.Stream(n, base, gen.StreamConfig{Transitions: 1, Additions: 3000, Deletions: 3000, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := NewMutableGraph(n, base)
			b.StartTimer()
			g.AddBatch(trs[0].Additions)
		}
	})
	b.Run("Delete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := NewMutableGraph(n, base)
			b.StartTimer()
			if err := g.DeleteBatch(trs[0].Deletions); err != nil {
				b.Fatal(err)
			}
		}
	})
}

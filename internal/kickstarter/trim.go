package kickstarter

import (
	"commongraph/internal/delta"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
)

// IncrementalDelete updates st for a batch of edge deletions using
// KickStarter's trimmed-approximation strategy. g must already have the
// batch removed (mutation happens first). Steps:
//
//  1. Every vertex whose dependence parent edge was deleted is unsafe.
//  2. The unsafe set closes over the dependence tree (children of unsafe
//     vertices are unsafe) — the "trim".
//  3. Unsafe vertices are reset to the identity, then re-seeded from their
//     surviving safe in-neighbours, and propagation runs to fixpoint.
//
// Safe vertices keep their values: their justifying path avoids deleted
// edges entirely, so the value is still achievable and, by monotonicity,
// still optimal. This whole procedure — subtree discovery, resets,
// reseeding against in-edges, and a fresh propagation — is why deletions
// cost a multiple of additions (Figure 1, top).
func IncrementalDelete(g delta.Graph, st *engine.State, batch graph.EdgeList, opt engine.Options) engine.Stats {
	var stats engine.Stats
	n := st.NumVertices()
	a := st.Algorithm()
	id := a.Identity()

	// Step 1: directly unsafe vertices.
	unsafeSet := make([]bool, n)
	work := make([]graph.VertexID, 0, len(batch))
	for _, e := range batch {
		if st.Parent(e.Dst) == e.Src && !unsafeSet[e.Dst] {
			unsafeSet[e.Dst] = true
			work = append(work, e.Dst)
		}
	}
	if len(work) == 0 {
		return stats
	}

	// Step 2: close over the dependence tree. Build the children index
	// once (O(V)), then BFS through it.
	childHead := make([]int32, n)
	childNext := make([]int32, n)
	for i := range childHead {
		childHead[i] = -1
	}
	for v := 0; v < n; v++ {
		p := st.Parent(graph.VertexID(v))
		if p != graph.NoVertex {
			childNext[v] = childHead[p]
			childHead[p] = int32(v)
		}
	}
	for i := 0; i < len(work); i++ {
		u := work[i]
		for c := childHead[u]; c != -1; c = childNext[c] {
			if !unsafeSet[c] {
				unsafeSet[c] = true
				work = append(work, graph.VertexID(c))
			}
		}
	}

	// Step 3: reset, reseed from safe in-neighbours, propagate.
	for _, v := range work {
		st.Reset(v, id, graph.NoVertex)
	}
	seeds := make([]graph.VertexID, 0, len(work))
	for _, v := range work {
		improved := false
		g.InEdges(v, func(u graph.VertexID, w graph.Weight) {
			stats.EdgesPushed++
			if unsafeSet[u] {
				return
			}
			uval := st.Value(u)
			if uval == id {
				return
			}
			if st.TryImprove(v, a.Propagate(uval, w), u) {
				stats.Improved++
				improved = true
			}
		})
		if improved {
			seeds = append(seeds, v)
		}
	}
	if len(seeds) > 0 {
		s := engine.Propagate(g, st, seeds, opt)
		stats.Add(s)
	}
	stats.Trimmed = int64(len(work))
	return stats
}

// Package store is the durable half of the evolving-graph representation:
// a directory of immutable binary segments (the base snapshot plus one
// overlay per transition — the on-disk mirror of the paper's §5
// mutation-free layout), a text manifest naming the live segments, and a
// write-ahead log for the raw ingest stream.
//
// Layout of a store directory:
//
//	MANIFEST          current generation, base version, transition count,
//	                  WAL high-water sequence — swapped atomically by rename
//	base-<gen>.seg    the base snapshot's canonical edge list
//	ovl-<t>.seg       transition t's Δ+/Δ− batches (absolute numbering)
//	wal.log           raw add/delete updates not yet folded into an overlay
//
// Invariants:
//
//   - Segments are immutable once referenced by the manifest: compaction
//     writes a new base generation and deletes the folded files, it never
//     rewrites one in place (the paper's mutation-free invariant, on disk).
//   - The manifest is the single source of truth. A file the manifest does
//     not reference is garbage from an interrupted write and is deleted on
//     Open; a file it does reference was fsynced before the manifest swap
//     and therefore exists intact.
//   - Every WAL record carries a monotonic sequence number; the manifest's
//     wal-seq marks the last raw update folded into a durable overlay.
//     Recovery replays exactly the records above that mark, so a crash
//     mid-window reopens to the batcher's in-memory state.
//
// Crash recovery on Open truncates torn WAL tails (short or CRC-failing
// records), drops unreferenced segment files, and surfaces the pending
// raw updates for the ingest layer to re-seed. The kill-point matrix in
// crash_test.go drives every write boundary.
package store

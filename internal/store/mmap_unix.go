//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapSupported gates the mapped open path; on platforms without it the
// store silently falls back to materializing reads.
const mmapSupported = true

// mmapFile maps size bytes of f read-only. The mapping outlives the file
// descriptor (callers close f immediately) and survives the file being
// unlinked, e.g. by compaction GC — pages stay valid until munmapFile.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }

package store

import (
	"encoding/binary"
	"unsafe"

	"commongraph/internal/graph"
)

// An edge record is 12 little-endian bytes: src u32, dst u32, w i32 —
// exactly the memory layout of graph.Edge on a little-endian machine
// (uint32, uint32, int32; no padding). On such machines a loaded segment
// section is reinterpreted in place as a graph.EdgeList: the cold-open
// cost of a segment is one bulk read, not a per-edge decode. Other
// layouts fall back to an explicit decode loop.
const edgeRecordSize = 12

// hostIsViewCompatible reports whether graph.Edge's in-memory layout
// matches the wire format byte for byte.
var hostIsViewCompatible = func() bool {
	if unsafe.Sizeof(graph.Edge{}) != edgeRecordSize {
		return false
	}
	e := graph.Edge{Src: 0x01020304, Dst: 0x11121314, W: -2}
	b := (*[edgeRecordSize]byte)(unsafe.Pointer(&e))
	return binary.LittleEndian.Uint32(b[0:]) == 0x01020304 &&
		binary.LittleEndian.Uint32(b[4:]) == 0x11121314 &&
		int32(binary.LittleEndian.Uint32(b[8:])) == -2
}()

// edgesView interprets a section payload as an edge list. When the host
// layout matches the wire format and the payload is aligned, the result
// aliases b without copying; the caller must never write through it (the
// same read-only contract canonical lists carry everywhere else).
func edgesView(b []byte) (graph.EdgeList, error) {
	if len(b)%edgeRecordSize != 0 {
		return nil, ErrCorrupt
	}
	m := len(b) / edgeRecordSize
	if m == 0 {
		return graph.EdgeList{}, nil
	}
	if hostIsViewCompatible && uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(graph.Edge{}) == 0 {
		return unsafe.Slice((*graph.Edge)(unsafe.Pointer(&b[0])), m), nil
	}
	out := make(graph.EdgeList, m)
	for i := 0; i < m; i++ {
		r := b[i*edgeRecordSize:]
		out[i] = graph.Edge{
			Src: graph.VertexID(binary.LittleEndian.Uint32(r[0:])),
			Dst: graph.VertexID(binary.LittleEndian.Uint32(r[4:])),
			W:   graph.Weight(int32(binary.LittleEndian.Uint32(r[8:]))),
		}
	}
	return out, nil
}

// appendEdges serializes edges onto buf in the wire format. On
// view-compatible hosts this is one bulk copy of the backing array.
func appendEdges(buf []byte, edges graph.EdgeList) []byte {
	if len(edges) == 0 {
		return buf
	}
	if hostIsViewCompatible {
		raw := unsafe.Slice((*byte)(unsafe.Pointer(&edges[0])), len(edges)*edgeRecordSize)
		return append(buf, raw...)
	}
	for _, e := range edges {
		var r [edgeRecordSize]byte
		binary.LittleEndian.PutUint32(r[0:], uint32(e.Src))
		binary.LittleEndian.PutUint32(r[4:], uint32(e.Dst))
		binary.LittleEndian.PutUint32(r[8:], uint32(int32(e.W)))
		buf = append(buf, r[:]...)
	}
	return buf
}

package store

import (
	"os"
	"testing"

	"commongraph/internal/graph"
)

func walRecords(n int) []RawUpdate {
	us := make([]RawUpdate, n)
	for i := range us {
		us[i] = RawUpdate{Op: RawAdd, Edge: e(graph.VertexID(i), graph.VertexID(i+1), graph.Weight(i))}
	}
	return us
}

func TestWALAppendAssignsConsecutiveSeqs(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	us := walRecords(3)
	if err := w.append(us); err != nil {
		t.Fatal(err)
	}
	for i, u := range us {
		if u.Seq != uint64(i+1) {
			t.Fatalf("record %d got seq %d", i, u.Seq)
		}
	}
	more := walRecords(2)
	if err := w.append(more); err != nil {
		t.Fatal(err)
	}
	if more[0].Seq != 4 || more[1].Seq != 5 {
		t.Fatalf("second append seqs %d,%d, want 4,5", more[0].Seq, more[1].Seq)
	}
}

func TestWALCommitDropsCommittedRecords(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	us := walRecords(5)
	if err := w.append(us); err != nil {
		t.Fatal(err)
	}
	if err := w.commit(3, 16); err != nil {
		t.Fatal(err)
	}
	w.close()

	// A reopen with commit pointer 3 sees exactly records 4 and 5.
	r, pending, err := openWAL(dir, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if len(pending) != 2 || pending[0].Seq != 4 || pending[1].Seq != 5 {
		t.Fatalf("pending after commit = %+v", pending)
	}
	if r.nextSeq != 6 {
		t.Fatalf("nextSeq %d, want 6", r.nextSeq)
	}
}

// TestWALTornTailMatrix truncates the log at every possible byte length
// and reopens: recovery must keep exactly the records that are fully,
// validly on disk and never error — a torn tail is the normal crash
// shape, not corruption.
func TestWALTornTailMatrix(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	if err := w.append(walRecords(n)); err != nil {
		t.Fatal(err)
	}
	w.close()
	full, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != walHeaderLen+n*walRecordLen {
		t.Fatalf("unexpected log size %d", len(full))
	}

	for cut := walHeaderLen; cut <= len(full); cut++ {
		sub := t.TempDir()
		r, werr := createWAL(sub, 16)
		if werr != nil {
			t.Fatal(werr)
		}
		r.close()
		if err := os.WriteFile(walPath(sub), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reopened, pending, err := openWAL(sub, 16, 0)
		if err != nil {
			t.Fatalf("cut at %d bytes: %v", cut, err)
		}
		wantRecs := (cut - walHeaderLen) / walRecordLen
		if len(pending) != wantRecs {
			reopened.close()
			t.Fatalf("cut at %d bytes: %d records recovered, want %d", cut, len(pending), wantRecs)
		}
		for i, p := range pending {
			if p.Seq != uint64(i+1) {
				reopened.close()
				t.Fatalf("cut at %d bytes: record %d has seq %d", cut, i, p.Seq)
			}
		}
		// The truncated file was physically rewritten: appending after
		// recovery and reopening again must not resurrect the torn tail.
		extra := walRecords(1)
		if err := reopened.append(extra); err != nil {
			t.Fatal(err)
		}
		if extra[0].Seq != uint64(wantRecs+1) {
			t.Fatalf("cut at %d bytes: post-recovery seq %d, want %d", cut, extra[0].Seq, wantRecs+1)
		}
		reopened.close()
		again, pending2, err := openWAL(sub, 16, 0)
		if err != nil {
			t.Fatalf("cut at %d bytes, second open: %v", cut, err)
		}
		if len(pending2) != wantRecs+1 {
			t.Fatalf("cut at %d bytes: second open sees %d records, want %d", cut, len(pending2), wantRecs+1)
		}
		again.close()
	}
}

func TestWALCorruptHeaderRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	w.close()
	if err := os.WriteFile(walPath(dir), []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openWAL(dir, 16, 0); err == nil {
		t.Fatal("corrupt WAL header accepted")
	}
}

// TestWALMidFileCorruptionTruncates flips a byte inside an early record:
// everything from that record on is discarded (the file is a log — a
// bad record invalidates its suffix), and the prefix survives.
func TestWALMidFileCorruptionTruncates(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walRecords(4)); err != nil {
		t.Fatal(err)
	}
	w.close()
	data, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	data[walHeaderLen+walRecordLen+5] ^= 0xFF // inside record 2
	if err := os.WriteFile(walPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, pending, err := openWAL(dir, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if len(pending) != 1 || pending[0].Seq != 1 {
		t.Fatalf("recovered %+v, want just record 1", pending)
	}
}

package store

import (
	"errors"
	"os"
	"strings"
	"testing"

	"commongraph/internal/faults"
	"commongraph/internal/graph"
)

func walRecords(n int) []RawUpdate {
	us := make([]RawUpdate, n)
	for i := range us {
		us[i] = RawUpdate{Op: RawAdd, Edge: e(graph.VertexID(i), graph.VertexID(i+1), graph.Weight(i))}
	}
	return us
}

func TestWALAppendAssignsConsecutiveSeqs(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	us := walRecords(3)
	if err := w.append(us); err != nil {
		t.Fatal(err)
	}
	for i, u := range us {
		if u.Seq != uint64(i+1) {
			t.Fatalf("record %d got seq %d", i, u.Seq)
		}
	}
	more := walRecords(2)
	if err := w.append(more); err != nil {
		t.Fatal(err)
	}
	if more[0].Seq != 4 || more[1].Seq != 5 {
		t.Fatalf("second append seqs %d,%d, want 4,5", more[0].Seq, more[1].Seq)
	}
}

func TestWALCommitDropsCommittedRecords(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	us := walRecords(5)
	if err := w.append(us); err != nil {
		t.Fatal(err)
	}
	if err := w.commit(3, 16); err != nil {
		t.Fatal(err)
	}
	w.close()

	// A reopen with commit pointer 3 sees exactly records 4 and 5.
	r, pending, err := openWAL(dir, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if len(pending) != 2 || pending[0].Seq != 4 || pending[1].Seq != 5 {
		t.Fatalf("pending after commit = %+v", pending)
	}
	if r.nextSeq != 6 {
		t.Fatalf("nextSeq %d, want 6", r.nextSeq)
	}
}

// TestWALTornTailMatrix truncates the log at every possible byte length
// and reopens: recovery must keep exactly the records that are fully,
// validly on disk and never error — a torn tail is the normal crash
// shape, not corruption.
func TestWALTornTailMatrix(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	if err := w.append(walRecords(n)); err != nil {
		t.Fatal(err)
	}
	w.close()
	full, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != walHeaderLen+n*walRecordLen {
		t.Fatalf("unexpected log size %d", len(full))
	}

	for cut := walHeaderLen; cut <= len(full); cut++ {
		sub := t.TempDir()
		r, werr := createWAL(sub, 16)
		if werr != nil {
			t.Fatal(werr)
		}
		r.close()
		if err := os.WriteFile(walPath(sub), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reopened, pending, err := openWAL(sub, 16, 0)
		if err != nil {
			t.Fatalf("cut at %d bytes: %v", cut, err)
		}
		wantRecs := (cut - walHeaderLen) / walRecordLen
		if len(pending) != wantRecs {
			reopened.close()
			t.Fatalf("cut at %d bytes: %d records recovered, want %d", cut, len(pending), wantRecs)
		}
		for i, p := range pending {
			if p.Seq != uint64(i+1) {
				reopened.close()
				t.Fatalf("cut at %d bytes: record %d has seq %d", cut, i, p.Seq)
			}
		}
		// The truncated file was physically rewritten: appending after
		// recovery and reopening again must not resurrect the torn tail.
		extra := walRecords(1)
		if err := reopened.append(extra); err != nil {
			t.Fatal(err)
		}
		if extra[0].Seq != uint64(wantRecs+1) {
			t.Fatalf("cut at %d bytes: post-recovery seq %d, want %d", cut, extra[0].Seq, wantRecs+1)
		}
		reopened.close()
		again, pending2, err := openWAL(sub, 16, 0)
		if err != nil {
			t.Fatalf("cut at %d bytes, second open: %v", cut, err)
		}
		if len(pending2) != wantRecs+1 {
			t.Fatalf("cut at %d bytes: second open sees %d records, want %d", cut, len(pending2), wantRecs+1)
		}
		again.close()
	}
}

// TestWALAppendFailureRollsBack kills an append between its write and
// its fsync: the failed batch's bytes (already in the file) must be
// truncated away and the sequence counter rewound, so the retried append
// reissues the same sequences and the log never holds a gap or an
// unacknowledged record.
func TestWALAppendFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walRecords(2)); err != nil {
		t.Fatal(err)
	}
	disarm := faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.StoreWALSync, Times: 1}}})
	failed := walRecords(3)
	err = w.append(failed)
	disarm()
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("append did not fail with the injected fault: %v", err)
	}
	if st, serr := w.f.Stat(); serr != nil || st.Size() != int64(walHeaderLen+2*walRecordLen) {
		t.Fatalf("failed batch's bytes survived in the file (size %d, err %v)", st.Size(), serr)
	}
	// The retry reuses the failed batch's sequences.
	retry := walRecords(3)
	if err := w.append(retry); err != nil {
		t.Fatal(err)
	}
	if retry[0].Seq != 3 || retry[2].Seq != 5 {
		t.Fatalf("retried append got seqs %d..%d, want 3..5", retry[0].Seq, retry[2].Seq)
	}
	w.close()
	r, pending, err := openWAL(dir, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if len(pending) != 5 {
		t.Fatalf("reopen sees %d records, want 5", len(pending))
	}
	for i, p := range pending {
		if p.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d; the rollback left a gap or duplicate", i, p.Seq)
		}
	}
}

// TestWALPoisonedAfterFailedRollback forces both the append and its
// rollback to fail (the handle is read-only, so write and truncate both
// error): the log must refuse every further write until a reopen.
func TestWALPoisonedAfterFailedRollback(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walRecords(1)); err != nil {
		t.Fatal(err)
	}
	w.f.Close()
	ro, err := os.Open(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	w.f = ro
	if err := w.append(walRecords(1)); err == nil {
		t.Fatal("append through a read-only handle succeeded")
	}
	if w.poisoned == nil {
		t.Fatal("failed rollback did not poison the log")
	}
	if err := w.append(walRecords(1)); err == nil || !strings.Contains(err.Error(), "reopen") {
		t.Fatalf("poisoned append error = %v, want a reopen hint", err)
	}
	if err := w.commit(1, 16); err == nil {
		t.Fatal("poisoned commit succeeded")
	}
	w.close()
	// A reopen re-reads the file and recovers: record 1 is intact.
	r, pending, err := openWAL(dir, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if len(pending) != 1 || pending[0].Seq != 1 {
		t.Fatalf("reopen after poison recovered %+v, want just record 1", pending)
	}
}

// TestWALVertexMismatchRejected: a structurally valid log copied in from
// a store with a different vertex space must be rejected at open, not
// replayed against the wrong graph.
func TestWALVertexMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walRecords(2)); err != nil {
		t.Fatal(err)
	}
	w.close()
	if _, _, err := openWAL(dir, 32, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with mismatched vertex count = %v, want ErrCorrupt", err)
	}
}

func TestWALCorruptHeaderRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	w.close()
	if err := os.WriteFile(walPath(dir), []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openWAL(dir, 16, 0); err == nil {
		t.Fatal("corrupt WAL header accepted")
	}
}

// TestWALMidFileCorruptionTruncates flips a byte inside an early record:
// everything from that record on is discarded (the file is a log — a
// bad record invalidates its suffix), and the prefix survives.
func TestWALMidFileCorruptionTruncates(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walRecords(4)); err != nil {
		t.Fatal(err)
	}
	w.close()
	data, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	data[walHeaderLen+walRecordLen+5] ^= 0xFF // inside record 2
	if err := os.WriteFile(walPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, pending, err := openWAL(dir, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if len(pending) != 1 || pending[0].Seq != 1 {
		t.Fatalf("recovered %+v, want just record 1", pending)
	}
}

package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"commongraph/internal/faults"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
)

// Segment file layout (all little-endian):
//
//	header (24 bytes):
//	  magic     u32  0xC6570001
//	  version   u32  1
//	  kind      u32  1 = base (one section), 2 = overlay (two sections)
//	  vertices  u32
//	  sections  u32
//	  reserved  u32
//	sections × { length u32, payload [length]byte }
//	trailer: crc32 u32 (IEEE) over header + all sections
//
// Section payloads are edge records of 12 bytes (src u32, dst u32, w i32)
// in canonical order, so a loaded section is directly viewable as a
// graph.EdgeList (see view.go) and CSR construction takes the sorted-input
// fast path.
const (
	segMagic   = uint32(0xC6570001)
	segVersion = uint32(1)

	kindBase    = uint32(1)
	kindOverlay = uint32(2)

	segHeaderLen = 24
)

// ErrCorrupt wraps every integrity failure (bad magic, torn section, CRC
// mismatch) so callers can distinguish corruption from I/O errors.
var ErrCorrupt = fmt.Errorf("store: corrupt file")

func baseName(gen uint64) string      { return fmt.Sprintf("base-%06d.seg", gen) }
func overlayName(t int) string        { return fmt.Sprintf("ovl-%06d.seg", t) }
func segPath(dir, name string) string { return filepath.Join(dir, name) }

// encodeSegment serializes sections into the segment wire format.
func encodeSegment(kind uint32, vertices int, sections ...graph.EdgeList) []byte {
	total := segHeaderLen
	for _, s := range sections {
		total += 4 + 12*len(s)
	}
	buf := make([]byte, 0, total+4)
	var hdr [segHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	binary.LittleEndian.PutUint32(hdr[8:], kind)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(vertices))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(sections)))
	buf = append(buf, hdr[:]...)
	for _, s := range sections {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(12*len(s)))
		buf = append(buf, l[:]...)
		buf = appendEdges(buf, s)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	return append(buf, crc[:]...)
}

// decodeSegment validates the wire format — CRC first, then structure —
// and returns the section payloads as edge views over data (aliased:
// data must stay unmodified).
func decodeSegment(data []byte, wantKind uint32) (vertices int, sections []graph.EdgeList, err error) {
	if len(data) < segHeaderLen+4 {
		return 0, nil, fmt.Errorf("%w: segment shorter than header (%d bytes)", ErrCorrupt, len(data))
	}
	if err := verifySegmentCRC(data); err != nil {
		return 0, nil, err
	}
	return decodeSegmentStructure(data, wantKind)
}

// verifySegmentCRC checks the trailer checksum over the whole body. The
// materializing read path runs it eagerly; the mmap path defers it to an
// explicit scrub (Store.VerifyMapped) so a cold open stays page-in only.
func verifySegmentCRC(data []byte) error {
	if len(data) < segHeaderLen+4 {
		return fmt.Errorf("%w: segment shorter than header (%d bytes)", ErrCorrupt, len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return fmt.Errorf("%w: segment CRC %08x != trailer %08x", ErrCorrupt, got, want)
	}
	return nil
}

// decodeSegmentStructure validates everything except the CRC trailer:
// magic, version, kind, and that every section lies inside the buffer.
// The bounds checks are what keep a torn or hostile file from steering
// reads out of the mapping; a payload bit-flip inside a section is only
// caught by the CRC (eager on the materializing path, scrub-on-demand on
// the mapped path).
func decodeSegmentStructure(data []byte, wantKind uint32) (vertices int, sections []graph.EdgeList, err error) {
	if len(data) < segHeaderLen+4 {
		return 0, nil, fmt.Errorf("%w: segment shorter than header (%d bytes)", ErrCorrupt, len(data))
	}
	body := data[:len(data)-4]
	if m := binary.LittleEndian.Uint32(body[0:]); m != segMagic {
		return 0, nil, fmt.Errorf("%w: bad segment magic %#x", ErrCorrupt, m)
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != segVersion {
		return 0, nil, fmt.Errorf("store: unsupported segment version %d", v)
	}
	if k := binary.LittleEndian.Uint32(body[8:]); k != wantKind {
		return 0, nil, fmt.Errorf("%w: segment kind %d, want %d", ErrCorrupt, k, wantKind)
	}
	vertices = int(binary.LittleEndian.Uint32(body[12:]))
	count := int(binary.LittleEndian.Uint32(body[16:]))
	off := segHeaderLen
	for i := 0; i < count; i++ {
		if off+4 > len(body) {
			return 0, nil, fmt.Errorf("%w: section %d header past end", ErrCorrupt, i)
		}
		l := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if l%12 != 0 || off+l > len(body) {
			return 0, nil, fmt.Errorf("%w: section %d length %d invalid", ErrCorrupt, i, l)
		}
		el, verr := edgesView(body[off : off+l])
		if verr != nil {
			return 0, nil, verr
		}
		sections = append(sections, el)
		off += l
	}
	if off != len(body) {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after last section", ErrCorrupt, len(body)-off)
	}
	return vertices, sections, nil
}

// writeSegment writes a segment file durably: create, write, fsync file,
// fsync directory. The file only becomes live when a later manifest swap
// references it, so a torn write here is garbage-collected on Open.
func writeSegment(dir, name string, kind uint32, vertices int, sections ...graph.EdgeList) error {
	if err := faults.Check(faults.StoreSegmentWrite); err != nil {
		return fmt.Errorf("store: segment %s: %w", name, err)
	}
	sp := obs.Env().StartSpan("store.segment_write", obs.String("segment", name))
	defer sp.End()
	data := encodeSegment(kind, vertices, sections...)
	f, err := os.Create(segPath(dir, name))
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	obs.SegmentWrites().Inc()
	obs.SegmentBytes().Add(int64(len(data)))
	sp.SetAttr(obs.Int("bytes", len(data)))
	return syncDir(dir)
}

// readSegment loads and validates a segment file. The returned edge lists
// view the file's in-memory copy (see view.go); callers must treat them
// as immutable, which they do throughout — canonical lists are read-only
// by contract.
func readSegment(dir, name string, wantKind uint32) (vertices int, sections []graph.EdgeList, err error) {
	sp := obs.Env().StartSpan("store.segment_load", obs.String("segment", name))
	defer sp.End()
	data, err := os.ReadFile(segPath(dir, name))
	if err != nil {
		return 0, nil, err
	}
	obs.SegmentLoads().Inc()
	sp.SetAttr(obs.Int("bytes", len(data)))
	vertices, sections, err = decodeSegment(data, wantKind)
	if err != nil {
		return 0, nil, fmt.Errorf("store: segment %s: %w", name, err)
	}
	return vertices, sections, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable before the caller proceeds to the next write in the protocol.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

package store

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"commongraph/internal/faults"
)

// manifest is the store's root metadata. It is tiny and human-readable;
// durability comes from the swap protocol, not the encoding: the new
// manifest is written to MANIFEST.tmp, fsynced, renamed over MANIFEST,
// and the directory fsynced — a reader sees the old manifest or the new
// one, never a torn mix.
type manifest struct {
	vertices    int
	generation  uint64 // names the live base segment
	baseVersion int    // absolute snapshot version the base segment holds
	transitions int    // absolute transition count; overlays span [baseVersion, transitions)
	walSeq      uint64 // last raw-update sequence folded into a durable overlay
	// epoch is the replication-group epoch this store writes at. Every
	// promotion bumps it; frames on the wire carry it; a store that has
	// observed a higher epoch (fencedBy) refuses all further commits
	// until it is itself promoted past it. Format-1 manifests decode
	// with epoch 0, fencedBy 0 — the pre-replication world.
	epoch    uint64
	fencedBy uint64 // highest foreign epoch observed; > epoch means fenced
}

// fenced reports whether this manifest's writer has been superseded.
func (m manifest) fenced() bool { return m.fencedBy > m.epoch }

const (
	manifestName    = "MANIFEST"
	manifestTmpName = "MANIFEST.tmp"
	manifestFormat  = 2
)

// encode renders the manifest with a trailing self-checksum line. The
// checksum is defense in depth against bit rot; torn writes are already
// excluded by the rename swap.
func (m manifest) encode() []byte {
	body := fmt.Sprintf("cgstore %d\nvertices %d\ngeneration %d\nbase-version %d\ntransitions %d\nwal-seq %d\nepoch %d\nfenced-by %d\n",
		manifestFormat, m.vertices, m.generation, m.baseVersion, m.transitions, m.walSeq, m.epoch, m.fencedBy)
	return []byte(fmt.Sprintf("%scrc %08x\n", body, crc32.ChecksumIEEE([]byte(body))))
}

func parseManifest(data []byte) (manifest, error) {
	var m manifest
	text := string(data)
	i := strings.LastIndex(text, "crc ")
	if i < 0 {
		return m, fmt.Errorf("%w: manifest missing checksum line", ErrCorrupt)
	}
	body := text[:i]
	var gotCRC uint32
	if _, err := fmt.Sscanf(text[i:], "crc %08x", &gotCRC); err != nil {
		return m, fmt.Errorf("%w: manifest checksum line: %v", ErrCorrupt, err)
	}
	if want := crc32.ChecksumIEEE([]byte(body)); want != gotCRC {
		return m, fmt.Errorf("%w: manifest CRC %08x != recorded %08x", ErrCorrupt, want, gotCRC)
	}
	var format int
	if _, err := fmt.Sscanf(body, "cgstore %d\n", &format); err != nil {
		return m, fmt.Errorf("%w: manifest fields: %v", ErrCorrupt, err)
	}
	switch format {
	case 1:
		// Pre-replication manifests have no epoch lines; they decode at
		// epoch 0, unfenced, and the next swap rewrites them as format 2.
		if _, err := fmt.Sscanf(body, "cgstore %d\nvertices %d\ngeneration %d\nbase-version %d\ntransitions %d\nwal-seq %d\n",
			&format, &m.vertices, &m.generation, &m.baseVersion, &m.transitions, &m.walSeq); err != nil {
			return m, fmt.Errorf("%w: manifest fields: %v", ErrCorrupt, err)
		}
	case manifestFormat:
		if _, err := fmt.Sscanf(body, "cgstore %d\nvertices %d\ngeneration %d\nbase-version %d\ntransitions %d\nwal-seq %d\nepoch %d\nfenced-by %d\n",
			&format, &m.vertices, &m.generation, &m.baseVersion, &m.transitions, &m.walSeq, &m.epoch, &m.fencedBy); err != nil {
			return m, fmt.Errorf("%w: manifest fields: %v", ErrCorrupt, err)
		}
	default:
		return m, fmt.Errorf("store: unsupported manifest format %d", format)
	}
	if m.vertices < 0 || m.baseVersion < 0 || m.transitions < m.baseVersion {
		return m, fmt.Errorf("%w: manifest ranges invalid (base %d, transitions %d)", ErrCorrupt, m.baseVersion, m.transitions)
	}
	return m, nil
}

// readManifest loads dir's manifest.
func readManifest(dir string) (manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return manifest{}, err
	}
	m, err := parseManifest(data)
	if err != nil {
		return manifest{}, fmt.Errorf("store: %s: %w", manifestName, err)
	}
	return m, nil
}

// swapManifest atomically replaces dir's manifest: tmp write, fsync,
// rename, directory fsync. Everything the new manifest references must
// already be durable before calling (the segment-then-manifest ordering
// the whole recovery story rests on).
func swapManifest(dir string, m manifest) error {
	if err := faults.Check(faults.StoreManifestSwap); err != nil {
		return fmt.Errorf("store: manifest swap: %w", err)
	}
	tmp := filepath.Join(dir, manifestTmpName)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(m.encode()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

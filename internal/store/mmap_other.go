//go:build !unix

package store

import (
	"fmt"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, fmt.Errorf("store: mmap unsupported on this platform")
}

func munmapFile(b []byte) error { return nil }

package store

import (
	"sync"

	"commongraph/internal/obs"
)

// commitTraceBuckets bounds the table: replication ships transitions
// promptly, so only the most recent few dozen need their trace context
// retrievable. Power of two for the cheap modulo.
const commitTraceBuckets = 64

// commitTraceTable associates committed transitions with the trace
// context of the commit span that produced them. It lives on the Store —
// not in a process global — so two stores in one process (a test's
// primary and follower, parallel test stores) never see each other's
// traces. The write path stamps it after a successful AppendBatch; the
// replication ship loop reads it when framing that transition's batch.
type commitTraceTable struct {
	mu      sync.Mutex
	entries [commitTraceBuckets]struct {
		transition int
		sc         obs.SpanContext
	}
	armed bool
}

// NoteCommitTrace records the trace context that committed transition.
// An invalid context is ignored (tracing off).
func (s *Store) NoteCommitTrace(transition int, sc obs.SpanContext) {
	if !sc.Valid() || transition < 0 {
		return
	}
	t := &s.traceTab
	t.mu.Lock()
	e := &t.entries[transition%commitTraceBuckets]
	e.transition = transition
	e.sc = sc
	t.armed = true
	t.mu.Unlock()
}

// CommitTrace returns the trace context recorded for transition, or the
// zero SpanContext when it was never noted or has been overwritten.
func (s *Store) CommitTrace(transition int) obs.SpanContext {
	if transition < 0 {
		return obs.SpanContext{}
	}
	t := &s.traceTab
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.armed {
		return obs.SpanContext{}
	}
	e := t.entries[transition%commitTraceBuckets]
	if e.transition != transition {
		return obs.SpanContext{}
	}
	return e.sc
}

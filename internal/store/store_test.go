package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"commongraph/internal/faults"
	"commongraph/internal/graph"
)

func e(s, d graph.VertexID, w graph.Weight) graph.Edge { return graph.Edge{Src: s, Dst: d, W: w} }

func el(edges ...graph.Edge) graph.EdgeList {
	return graph.EdgeList(edges).Clone().Canonicalize()
}

// mustEqual compares two canonical edge lists.
func mustEqual(t *testing.T, got, want graph.EdgeList, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d edges, want %d\n got=%v\nwant=%v", what, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: edge %d is %v, want %v", what, i, got[i], want[i])
		}
	}
}

// newTestStore creates a store with a small base and two transitions.
func newTestStore(t *testing.T) (dir string, base, a0, d0, a1, d1 graph.EdgeList) {
	t.Helper()
	dir = t.TempDir()
	base = el(e(0, 1, 1), e(1, 2, 2), e(2, 3, 3))
	a0, d0 = el(e(0, 2, 5)), el(e(2, 3, 3))
	a1, d1 = el(e(3, 4, 7), e(2, 3, 4)), el(e(0, 1, 1))
	s, err := Create(dir, 8, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(a0, d0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(a1, d1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, base, a0, d0, a1, d1
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir, base, a0, d0, a1, d1 := newTestStore(t)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumVertices() != 8 || s.Transitions() != 2 || s.BaseVersion() != 0 {
		t.Fatalf("shape: vertices=%d transitions=%d base=%d", s.NumVertices(), s.Transitions(), s.BaseVersion())
	}
	got, err := s.Base()
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, got, base, "base")
	ga0, gd0, err := s.Overlay(0)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, ga0, a0, "overlay 0 adds")
	mustEqual(t, gd0, d0, "overlay 0 dels")
	ga1, gd1, err := s.Overlay(1)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, ga1, a1, "overlay 1 adds")
	mustEqual(t, gd1, d1, "overlay 1 dels")

	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumVersions() != 3 {
		t.Fatalf("snapshot store has %d versions, want 3", snap.NumVersions())
	}
	v2, err := snap.GetVersion(2)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.Union(graph.Minus(graph.Union(graph.Minus(base, d0), a0), d1), a1)
	mustEqual(t, v2, want, "materialized version 2")
}

func TestCreateRejectsExistingStore(t *testing.T) {
	dir, _, _, _, _, _ := newTestStore(t)
	if _, err := Create(dir, 8, nil); err == nil {
		t.Fatal("Create over an existing store succeeded")
	}
}

func TestOpenRejectsNonStore(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("Open of an empty directory succeeded")
	}
}

func TestSegmentCorruptionDetected(t *testing.T) {
	dir, _, _, _, _, _ := newTestStore(t)
	path := filepath.Join(dir, baseName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir) // lazy loading: open itself reads only manifest + WAL
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Base(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt base segment: err=%v, want ErrCorrupt", err)
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	dir, _, _, _, _, _ := newTestStore(t)
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt manifest: err=%v, want ErrCorrupt", err)
	}
}

func TestOpenGarbageCollectsStrays(t *testing.T) {
	dir, _, _, _, _, _ := newTestStore(t)
	// Simulate interrupted writes: a torn future overlay, a torn future
	// base generation, and leftover temp files.
	strays := []string{overlayName(7), baseName(9), manifestTmpName, walTmpName}
	for _, name := range strays {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keep := filepath.Join(dir, "notes.txt") // not ours: must survive
	if err := os.WriteFile(keep, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, name := range strays {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("stray %s survived gc (err=%v)", name, err)
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("gc removed a foreign file: %v", err)
	}
	if _, _, err := s.Overlay(1); err != nil {
		t.Fatalf("live overlay unreadable after gc: %v", err)
	}
}

func TestCompaction(t *testing.T) {
	dir, base, a0, d0, a1, d1 := newTestStore(t)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	v1 := graph.Union(graph.Minus(base, d0), a0)
	v2 := graph.Union(graph.Minus(v1, d1), a1)

	if err := s.CompactTo(0); err != nil {
		t.Fatalf("no-op compaction: %v", err)
	}
	if err := s.CompactTo(1); err != nil {
		t.Fatal(err)
	}
	if s.BaseVersion() != 1 || s.Transitions() != 2 {
		t.Fatalf("after compact: base=%d transitions=%d", s.BaseVersion(), s.Transitions())
	}
	got, err := s.Base()
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, got, v1, "compacted base")
	if _, _, err := s.Overlay(0); err == nil {
		t.Fatal("folded overlay 0 still readable")
	}
	if _, err := os.Stat(filepath.Join(dir, overlayName(0))); !os.IsNotExist(err) {
		t.Fatal("folded overlay file not removed")
	}
	if _, err := os.Stat(filepath.Join(dir, baseName(0))); !os.IsNotExist(err) {
		t.Fatal("old base generation not removed")
	}

	// The store can keep appending after compaction, and a reopen sees
	// the folded state.
	a2 := el(e(5, 6, 1))
	if err := s.AppendBatch(a2, nil, 0); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Origin() != 1 || r.BaseVersion() != 1 || r.Transitions() != 3 {
		t.Fatalf("reopen after compact: origin=%d base=%d transitions=%d", r.Origin(), r.BaseVersion(), r.Transitions())
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// The reopened store's version 0 is absolute version 1.
	g0, err := snap.GetVersion(0)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, g0, v1, "reopened version 0 (= absolute 1)")
	g2, err := snap.GetVersion(2)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, g2, graph.Union(v2, a2), "reopened version 2 (= absolute 3)")
}

func TestCompactBeyondTransitionsFails(t *testing.T) {
	dir, _, _, _, _, _ := newTestStore(t)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CompactTo(3); err == nil {
		t.Fatal("compaction past the last transition succeeded")
	}
}

func TestJournalCommitAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 4, el(e(0, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	us := []RawUpdate{
		{Op: RawAdd, Edge: e(1, 2, 2)},
		{Op: RawAdd, Edge: e(2, 3, 3)},
		{Op: RawDelete, Edge: e(0, 1, 1)},
	}
	if err := s.Journal(us); err != nil {
		t.Fatal(err)
	}
	if us[0].Seq != 1 || us[2].Seq != 3 {
		t.Fatalf("assigned seqs %d..%d, want 1..3", us[0].Seq, us[2].Seq)
	}
	// Commit the first two as a transition; the third stays pending.
	if err := s.AppendBatch(el(e(1, 2, 2), e(2, 3, 3)), nil, 2); err != nil {
		t.Fatal(err)
	}
	if s.WALSeq() != 2 {
		t.Fatalf("commit pointer %d, want 2", s.WALSeq())
	}
	s.Close()

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	pending := r.TakePending()
	if len(pending) != 1 || pending[0].Seq != 3 || pending[0].Op != RawDelete || pending[0].Edge != e(0, 1, 1) {
		t.Fatalf("recovered pending = %+v, want the uncommitted delete at seq 3", pending)
	}
	if r.TakePending() != nil {
		t.Fatal("TakePending is not take-once")
	}
	// New journal appends continue the sequence, never reusing numbers.
	more := []RawUpdate{{Op: RawAdd, Edge: e(3, 0, 9)}}
	if err := r.Journal(more); err != nil {
		t.Fatal(err)
	}
	if more[0].Seq != 4 {
		t.Fatalf("post-recovery seq %d, want 4", more[0].Seq)
	}
}

func TestAppendBatchEmptyAdvancesCommitPointer(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A window that cancelled itself out: journaled records, no batch.
	us := []RawUpdate{
		{Op: RawAdd, Edge: e(0, 1, 1)},
		{Op: RawDelete, Edge: e(0, 1, 1)},
	}
	if err := s.Journal(us); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(nil, nil, 2); err != nil {
		t.Fatal(err)
	}
	if s.Transitions() != 0 {
		t.Fatalf("empty batch created transition: %d", s.Transitions())
	}
	s.Close()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if p := r.TakePending(); len(p) != 0 {
		t.Fatalf("cancelled window still pending after commit: %+v", p)
	}
	if r.WALSeq() != 2 {
		t.Fatalf("commit pointer %d, want 2", r.WALSeq())
	}
}

func TestAppendBatchRejectsNonCanonical(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	unsorted := graph.EdgeList{e(2, 3, 1), e(0, 1, 1)}
	if err := s.AppendBatch(unsorted, nil, 0); err == nil {
		t.Fatal("non-canonical batch accepted")
	}
}

// TestAppendBatchToleratesTrimFailure: once the manifest swap has
// committed a batch, a failure of the post-commit WAL rotation must not
// surface as an AppendBatch error — callers would retry and commit the
// transition twice. The stale records simply ride along until the next
// successful rotation or open drops them by sequence.
func TestAppendBatchToleratesTrimFailure(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 8, el(e(0, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	us := []RawUpdate{{Op: RawAdd, Edge: e(1, 2, 2)}, {Op: RawAdd, Edge: e(2, 3, 3)}}
	if err := s.Journal(us); err != nil {
		t.Fatal(err)
	}
	disarm := faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.StoreWALRotate, Times: 1}}})
	err = s.AppendBatch(el(e(1, 2, 2), e(2, 3, 3)), nil, us[1].Seq)
	disarm()
	if err != nil {
		t.Fatalf("AppendBatch surfaced a post-commit trim failure: %v", err)
	}
	if s.WALSeq() != us[1].Seq || s.Transitions() != 1 {
		t.Fatalf("commit state walSeq=%d transitions=%d, want %d and 1", s.WALSeq(), s.Transitions(), us[1].Seq)
	}
	// Journaling continues on the untrimmed file; a reopen drops the
	// committed records and surfaces only the new ones.
	more := []RawUpdate{{Op: RawAdd, Edge: e(3, 4, 4)}}
	if err := s.Journal(more); err != nil {
		t.Fatalf("journal after tolerated trim failure: %v", err)
	}
	s.Close()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.WALSeq() != us[1].Seq || r.Transitions() != 1 {
		t.Fatalf("reopen walSeq=%d transitions=%d, want %d and 1", r.WALSeq(), r.Transitions(), us[1].Seq)
	}
	p := r.TakePending()
	if len(p) != 1 || p[0].Seq != more[0].Seq {
		t.Fatalf("reopen pending %+v, want just the post-failure record (seq %d)", p, more[0].Seq)
	}
}

// TestKillPointRecoveryMatrix is the crash matrix: each durable-store
// write boundary is killed in turn (error injection standing in for the
// process dying at that syscall), the failed operation is observed, and
// the directory is reopened as a fresh process would. Every kill point
// must reopen to a consistent store: either the old state (kill before
// the manifest swap) or the new state (kill after), never anything
// partial.
func TestKillPointRecoveryMatrix(t *testing.T) {
	base := el(e(0, 1, 1), e(1, 2, 2))
	a0 := el(e(2, 3, 3))
	points := []faults.Point{
		faults.StoreWALAppend,
		faults.StoreWALSync,
		faults.StoreSegmentWrite,
		faults.StoreManifestSwap,
		faults.StoreWALRotate,
		faults.StoreCompact,
	}
	for _, p := range points {
		t.Run(string(p), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Create(dir, 8, base)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.AppendBatch(a0, nil, 0); err != nil {
				t.Fatal(err)
			}

			disarm := faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: p, Times: 1}}})
			// Drive every protocol path; exactly the armed point fails.
			us := []RawUpdate{{Op: RawAdd, Edge: e(3, 4, 4)}, {Op: RawAdd, Edge: e(4, 5, 5)}}
			jErr := s.Journal(us)
			bErr := s.AppendBatch(el(e(3, 4, 4), e(4, 5, 5)), nil, 0)
			cErr := s.CompactTo(1)
			fired := faults.Hits(p) > 0
			disarm()
			if jErr == nil && bErr == nil && cErr == nil {
				// The post-commit WAL rotation is the one boundary whose
				// failure is absorbed by design: the manifest swap already
				// committed the batch, so AppendBatch reports success.
				if p != faults.StoreWALRotate || !fired {
					t.Fatalf("point %s never fired", p)
				}
			}
			for _, err := range []error{jErr, bErr, cErr} {
				if err != nil && !errors.Is(err, faults.ErrInjected) {
					t.Fatalf("non-injected failure: %v", err)
				}
			}
			s.Close() // the "crash": the dir is all that survives

			r, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after kill at %s: %v", p, err)
			}
			defer r.Close()
			// Whatever happened, the reopened store materializes cleanly
			// and version Origin..0 relative history is intact.
			snap, err := r.Snapshot()
			if err != nil {
				t.Fatalf("snapshot after kill at %s: %v", p, err)
			}
			last, err := snap.GetVersion(snap.NumVersions() - 1)
			if err != nil {
				t.Fatalf("materialize after kill at %s: %v", p, err)
			}
			// The latest snapshot is one of the two legal states: with or
			// without the second transition's edges.
			v1 := graph.Union(base, a0)
			v2 := graph.Union(v1, el(e(3, 4, 4), e(4, 5, 5)))
			if !sameEdges(last, v1) && !sameEdges(last, v2) {
				t.Fatalf("kill at %s left an illegal latest snapshot: %v", p, last)
			}
			// Appends still work after recovery.
			if err := r.AppendBatch(el(e(6, 7, 1)), nil, 0); err != nil {
				t.Fatalf("append after recovery from %s: %v", p, err)
			}
		})
	}
}

func sameEdges(a, b graph.EdgeList) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package store

import (
	"fmt"
	"os"

	"commongraph/internal/faults"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
)

// mappedSeg is one segment file opened as a read-only memory mapping.
// Unlike the materializing path (readSegment), opening a mapped segment
// copies nothing and computes no checksum: the kernel pages bytes in as
// the edge views are traversed, and the open-time cost is the structural
// decode (header + section bounds — a few dozen bytes). The CRC trailer
// still exists and is validated lazily: callers that want the scrub run
// Store.VerifyMapped, which walks every mapping once (paging it in — the
// page-fault proxy metric counts these bytes) and caches the verdict.
//
// Lifetime: the edge views handed out by Base/Overlay/Snapshot alias the
// mapping directly, so they are valid only until Store.Close unmaps.
// Compaction may unlink a mapped file early; on unix the pages stay valid
// until munmap, so readers holding old views are safe.
type mappedSeg struct {
	name     string
	data     []byte
	vertices int
	sections []graph.EdgeList
	verified bool // CRC scrub passed (guarded by Store.mu)
}

// openSegmentMapped maps a segment file read-only and validates its
// structure (not its CRC). The file descriptor is closed before
// returning — the mapping keeps the pages alive.
func openSegmentMapped(dir, name string, wantKind uint32) (*mappedSeg, error) {
	if err := faults.Check(faults.ShardMapOpen); err != nil {
		return nil, fmt.Errorf("store: map segment %s: %w", name, err)
	}
	sp := obs.Env().StartSpan("store.segment_map", obs.String("segment", name))
	defer sp.End()
	f, err := os.Open(segPath(dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := int(fi.Size())
	if size < segHeaderLen+4 {
		return nil, fmt.Errorf("store: segment %s: %w: %d bytes", name, ErrCorrupt, size)
	}
	data, err := mmapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("store: map segment %s: %w", name, err)
	}
	vertices, sections, err := decodeSegmentStructure(data, wantKind)
	if err != nil {
		munmapFile(data) //nolint:errcheck // already failing; the decode error wins
		return nil, fmt.Errorf("store: segment %s: %w", name, err)
	}
	obs.SegmentMaps().Inc()
	obs.SegmentMapBytes().Add(int64(size))
	sp.SetAttr(obs.Int("bytes", size))
	return &mappedSeg{name: name, data: data, vertices: vertices, sections: sections}, nil
}

// verify runs the deferred CRC scrub over the whole mapping (paging every
// byte in). Idempotent: a passed scrub is cached.
func (m *mappedSeg) verify() error {
	if m.verified {
		return nil
	}
	obs.SegmentMapScrubs().Inc()
	obs.SegmentMapScrubBytes().Add(int64(len(m.data)))
	if err := verifySegmentCRC(m.data); err != nil {
		return fmt.Errorf("store: segment %s: %w", m.name, err)
	}
	m.verified = true
	return nil
}

// close unmaps the segment. The ShardMapClose kill point models a failed
// munmap; the mapping is released regardless so an injected fault never
// leaks address space.
func (m *mappedSeg) close() error {
	ferr := faults.Check(faults.ShardMapClose)
	if m.data != nil {
		if err := munmapFile(m.data); err != nil && ferr == nil {
			ferr = err
		}
		m.data = nil
		m.sections = nil
	}
	if ferr != nil {
		return fmt.Errorf("store: unmap segment %s: %w", m.name, ferr)
	}
	return nil
}

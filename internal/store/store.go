package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"commongraph/internal/faults"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
	"commongraph/internal/snapshot"
)

// ErrFenced is returned by every write path of a store that has observed
// a higher replication epoch than its own: a primary superseded by a
// promoted follower must never commit again (the double-commit the epoch
// fence exists to exclude). The fence is persisted in the manifest, so a
// restarted stale primary stays fenced. errors.Is(err, ErrFenced) holds
// on every wrapped fencing rejection.
var ErrFenced = errors.New("store: fenced by a higher replication epoch")

// Store is an open durable snapshot store. All methods are safe for
// concurrent use; writers (AppendBatch, Journal, CompactTo) serialize on
// an internal lock while loaded segments are immutable and shared.
type Store struct {
	dir string

	mu      sync.Mutex
	man     manifest
	wal     *wal
	origin  int // manifest base version at open time (window index anchor)
	pending []RawUpdate

	baseCache graph.EdgeList
	ovlCache  map[int][2]graph.EdgeList

	// mapSegments selects the zero-copy open path: segments are mmap'd
	// read-only instead of materialized, CRC validation is deferred to
	// VerifyMapped, and every view handed out aliases a mapping that
	// Close releases. See Options.MapSegments.
	mapSegments bool
	mapped      []*mappedSeg

	// commitCh broadcasts commits to replication ship loops: it is closed
	// (and replaced) by every successful AppendBatch, so a waiter blocked
	// on CommitSignal wakes exactly when the position it cached went stale.
	commitCh chan struct{}

	// traceTab maps recent transitions to the trace context of the commit
	// that produced them, so the replication ship loop can stamp batch
	// frames with the ingest span that caused each transition (tracetab.go).
	traceTab commitTraceTable

	closed bool
}

// Create initializes dir (created if needed) as a new store whose base
// snapshot is the given edge list. The directory must not already hold a
// store.
func Create(dir string, vertices int, base graph.EdgeList) (*Store, error) {
	return CreateReplica(dir, vertices, base, 0, 0, 0)
}

// CreateReplica initializes dir as a store whose base snapshot already
// sits at an absolute position in some other store's history — the
// bootstrap path of a replication follower: the shipped base becomes this
// store's base segment at baseVersion, the WAL commit pointer starts at
// walSeq, and the store adopts the primary's epoch. Create is the
// (0, 0, 0) special case.
func CreateReplica(dir string, vertices int, base graph.EdgeList, baseVersion int, walSeq uint64, epoch uint64) (*Store, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("store: %s already holds a store", dir)
	}
	if baseVersion < 0 {
		return nil, fmt.Errorf("store: negative base version %d", baseVersion)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	canon := base.Clone().Canonicalize()
	for _, e := range canon {
		if int(e.Src) >= vertices || int(e.Dst) >= vertices {
			return nil, fmt.Errorf("store: base edge %v out of vertex range %d", e, vertices)
		}
	}
	man := manifest{
		vertices:    vertices,
		baseVersion: baseVersion,
		transitions: baseVersion,
		walSeq:      walSeq,
		epoch:       epoch,
	}
	if err := writeSegment(dir, baseName(man.generation), kindBase, vertices, canon); err != nil {
		return nil, err
	}
	w, err := createWAL(dir, vertices)
	if err != nil {
		return nil, err
	}
	w.nextSeq = walSeq + 1
	// The manifest swap is the commit point: before it the directory is
	// not a store and Create can simply be retried.
	if err := swapManifest(dir, man); err != nil {
		w.close()
		return nil, err
	}
	return &Store{
		dir:       dir,
		man:       man,
		wal:       w,
		origin:    baseVersion,
		baseCache: canon,
		ovlCache:  make(map[int][2]graph.EdgeList),
	}, nil
}

// Options configures Open behavior.
type Options struct {
	// MapSegments opens segments as read-only memory mappings instead of
	// materializing them: a cold open becomes page-in, and the CRC
	// trailer validates lazily (VerifyMapped) instead of on load. Edge
	// views handed out by a mapped store alias the mappings and are
	// valid only until Close. On platforms without mmap support the flag
	// is ignored and segments materialize as before.
	MapSegments bool
}

// Open opens an existing store, running crash recovery first: the WAL's
// torn tail is truncated, records already folded into overlays are
// dropped, interrupted segment writes are garbage-collected, and the raw
// updates of the in-flight ingest window are surfaced via TakePending.
// Open reads only the manifest and the WAL; segments load lazily.
func Open(dir string) (*Store, error) { return OpenWith(dir, Options{}) }

// OpenWith is Open with explicit Options.
func OpenWith(dir string, opts Options) (*Store, error) {
	sp := obs.Env().StartSpan("store.open", obs.String("dir", dir),
		obs.Bool("mapped", opts.MapSegments && mmapSupported))
	defer sp.End()
	man, err := readManifest(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %s is not a store (no %s): %w", dir, manifestName, err)
		}
		return nil, err
	}
	w, pending, err := openWAL(dir, man.vertices, man.walSeq)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:         dir,
		man:         man,
		wal:         w,
		origin:      man.baseVersion,
		pending:     pending,
		ovlCache:    make(map[int][2]graph.EdgeList),
		mapSegments: opts.MapSegments && mmapSupported,
	}
	if err := s.gc(); err != nil {
		w.close()
		return nil, err
	}
	if len(pending) > 0 {
		obs.RecoveredUpdates().Add(int64(len(pending)))
	}
	sp.SetAttr(obs.Int("transitions", man.transitions-man.baseVersion),
		obs.Int("pending", len(pending)))
	return s, nil
}

// gc removes files an interrupted write left behind: anything matching
// the store's naming patterns that the manifest does not reference. Live
// segments were fsynced before the manifest swap that referenced them,
// so everything unreferenced is garbage by construction.
func (s *Store) gc() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	live := map[string]bool{
		manifestName:               true,
		walName:                    true,
		baseName(s.man.generation): true,
	}
	for t := s.man.baseVersion; t < s.man.transitions; t++ {
		live[overlayName(t)] = true
	}
	for _, e := range entries {
		name := e.Name()
		if live[name] {
			continue
		}
		stale := name == manifestTmpName || name == walTmpName ||
			(strings.HasSuffix(name, ".seg") &&
				(strings.HasPrefix(name, "base-") || strings.HasPrefix(name, "ovl-")))
		if !stale {
			continue // not ours; leave it alone
		}
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return syncDir(s.dir)
}

// NumVertices returns the store's vertex-space size.
func (s *Store) NumVertices() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.vertices
}

// BaseVersion returns the absolute snapshot version the base segment
// currently holds (it advances with compaction).
func (s *Store) BaseVersion() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.baseVersion
}

// Origin returns the base version as of Open — the absolute snapshot
// that an in-memory mirror loaded at open time calls version 0.
func (s *Store) Origin() int { return s.origin }

// Transitions returns the absolute transition count: overlays cover
// [BaseVersion, Transitions).
func (s *Store) Transitions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.transitions
}

// WALSeq returns the last raw-update sequence folded into a durable
// overlay (the manifest's commit pointer).
func (s *Store) WALSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.walSeq
}

// Epoch returns the store's replication epoch — the group generation it
// is entitled to write at. 0 until the store joins a replication group.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.epoch
}

// Fenced reports whether the store has observed a higher epoch than its
// own and is therefore refusing commits.
func (s *Store) Fenced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.fenced()
}

// Position returns the store's replication coordinates in one consistent
// read: the base version, the transition count, the WAL commit pointer,
// and the epoch.
func (s *Store) Position() (baseVersion, transitions int, walSeq uint64, epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.baseVersion, s.man.transitions, s.man.walSeq, s.man.epoch
}

// ObserveEpoch records a foreign epoch. Observing one higher than the
// store's own fences the store durably (the manifest swap persists it, so
// a restart does not unfence) and returns ErrFenced; equal or lower
// epochs are no-ops. This is how a stale primary learns it has been
// superseded: a promoted follower's fence frame, or a hello from a peer
// that already adopted the new epoch.
func (s *Store) ObserveEpoch(e uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e <= s.man.epoch {
		return nil
	}
	if e > s.man.fencedBy {
		man := s.man
		man.fencedBy = e
		if err := swapManifest(s.dir, man); err != nil {
			return err
		}
		s.man = man
		obs.ReplFencings().Inc()
		obs.Env().Event("store.fenced", obs.Int64("epoch", int64(s.man.epoch)),
			obs.Int64("by", int64(e)))
	}
	return fmt.Errorf("store: epoch %d observed %d: %w", s.man.epoch, e, ErrFenced)
}

// AdoptEpoch raises the store's own epoch to e — the follower path: a
// replica replaying frames stamped with a newer group epoch is not being
// superseded, it is keeping up, so the epoch advances without fencing
// (and clears any fence the new epoch covers). Lower or equal epochs are
// no-ops. Contrast ObserveEpoch, which records a foreign epoch the store
// is NOT entitled to write at.
func (s *Store) AdoptEpoch(e uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e <= s.man.epoch {
		return nil
	}
	man := s.man
	man.epoch = e
	if man.fencedBy <= e {
		man.fencedBy = 0
	}
	if err := swapManifest(s.dir, man); err != nil {
		return err
	}
	s.man = man
	return nil
}

// BumpEpoch makes the store the writer of a fresh epoch — the promotion
// step: the new epoch strictly exceeds both the store's own and every
// epoch it has observed, and the fence (if any) is cleared in the same
// manifest swap. Returns the new epoch.
func (s *Store) BumpEpoch() (uint64, error) {
	if err := faults.Check(faults.ReplPromote); err != nil {
		return 0, fmt.Errorf("store: bump epoch: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: closed")
	}
	man := s.man
	next := man.epoch
	if man.fencedBy > next {
		next = man.fencedBy
	}
	man.epoch = next + 1
	man.fencedBy = 0
	if err := swapManifest(s.dir, man); err != nil {
		return 0, err
	}
	s.man = man
	obs.ReplPromotions().Inc()
	obs.Env().Event("store.promoted", obs.Int64("epoch", int64(man.epoch)))
	return man.epoch, nil
}

// CommitSignal returns a channel closed at the next successful
// AppendBatch — the replication ship loop's wake-up. Callers must re-read
// the store's Position after the channel fires and re-arm with a fresh
// CommitSignal call: each returned channel signals at most one commit.
func (s *Store) CommitSignal() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.commitCh == nil {
		s.commitCh = make(chan struct{})
	}
	return s.commitCh
}

// TakePending returns and clears the raw updates crash recovery found
// above the commit pointer — the in-flight ingest window, for the
// ingest layer to re-seed exactly once.
func (s *Store) TakePending() []RawUpdate {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.pending
	s.pending = nil
	return p
}

// Base returns the base snapshot's canonical edge list, loading the base
// segment on first use. The result is immutable.
func (s *Store) Base() (graph.EdgeList, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baseLocked()
}

// loadSegmentLocked dispatches one segment load to the configured open
// path: mmap'd zero-copy views (tracked for teardown on Close) or the
// materializing readSegment.
func (s *Store) loadSegmentLocked(name string, wantKind uint32) (vertices int, sections []graph.EdgeList, err error) {
	if s.closed {
		return 0, nil, fmt.Errorf("store: closed")
	}
	if !s.mapSegments {
		return readSegment(s.dir, name, wantKind)
	}
	m, err := openSegmentMapped(s.dir, name, wantKind)
	if err != nil {
		return 0, nil, err
	}
	s.mapped = append(s.mapped, m)
	return m.vertices, m.sections, nil
}

func (s *Store) baseLocked() (graph.EdgeList, error) {
	if s.baseCache != nil {
		return s.baseCache, nil
	}
	vertices, sections, err := s.loadSegmentLocked(baseName(s.man.generation), kindBase)
	if err != nil {
		return nil, err
	}
	if vertices != s.man.vertices || len(sections) != 1 {
		return nil, fmt.Errorf("%w: base segment shape (%d vertices, %d sections)", ErrCorrupt, vertices, len(sections))
	}
	s.baseCache = sections[0]
	return s.baseCache, nil
}

// Overlay returns transition t's Δ+/Δ− batches (absolute numbering),
// loading the overlay segment on first use. The results are immutable.
func (s *Store) Overlay(t int) (adds, dels graph.EdgeList, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overlayLocked(t)
}

func (s *Store) overlayLocked(t int) (adds, dels graph.EdgeList, err error) {
	if t < s.man.baseVersion || t >= s.man.transitions {
		return nil, nil, fmt.Errorf("store: overlay %d out of range [%d,%d)", t, s.man.baseVersion, s.man.transitions)
	}
	if c, ok := s.ovlCache[t]; ok {
		return c[0], c[1], nil
	}
	vertices, sections, err := s.loadSegmentLocked(overlayName(t), kindOverlay)
	if err != nil {
		return nil, nil, err
	}
	if vertices != s.man.vertices || len(sections) != 2 {
		return nil, nil, fmt.Errorf("%w: overlay %d shape (%d vertices, %d sections)", ErrCorrupt, t, vertices, len(sections))
	}
	s.ovlCache[t] = [2]graph.EdgeList{sections[0], sections[1]}
	return sections[0], sections[1], nil
}

// AppendBatch durably appends one transition: the overlay segment is
// written and fsynced, then the manifest swap commits it together with
// the WAL high-water mark upToSeq (0 keeps the current mark — the
// ApplyUpdates path, which bypasses the WAL), then the WAL drops the
// folded records. An empty batch pair advances only the commit pointer —
// an ingest window that cancelled itself out still consumes its WAL
// records.
func (s *Store) AppendBatch(adds, dels graph.EdgeList, upToSeq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.man.fenced() {
		return fmt.Errorf("store: append batch at epoch %d (fenced by %d): %w",
			s.man.epoch, s.man.fencedBy, ErrFenced)
	}
	if !adds.IsCanonical() || !dels.IsCanonical() {
		return fmt.Errorf("store: append batch: %w", graph.ErrNotCanonical)
	}
	man := s.man
	if upToSeq == 0 {
		upToSeq = man.walSeq
	} else if upToSeq < man.walSeq {
		return fmt.Errorf("store: append batch: seq %d behind commit pointer %d", upToSeq, man.walSeq)
	}
	if len(adds) > 0 || len(dels) > 0 {
		if err := writeSegment(s.dir, overlayName(man.transitions), kindOverlay, man.vertices, adds, dels); err != nil {
			return err
		}
		man.transitions++
	}
	man.walSeq = upToSeq
	if err := swapManifest(s.dir, man); err != nil {
		return err
	}
	if man.transitions > s.man.transitions {
		s.ovlCache[s.man.transitions] = [2]graph.EdgeList{adds, dels}
	}
	s.man = man
	if err := s.wal.commit(man.walSeq, man.vertices); err != nil {
		// The manifest swap above was the durable commit point; the batch
		// IS committed, so this must not surface as an AppendBatch error —
		// a caller treating it as a failed append would retry and commit
		// the same transition twice. The rotation is only space
		// reclamation: records at or below the commit pointer are dropped
		// by the next rotation or open regardless. Count it and move on;
		// if the log became unusable, the next Journal call reports it.
		obs.WALTrimFailures().Inc()
		obs.Env().Event("store.wal_trim_failed", obs.String("error", err.Error()))
	}
	if s.commitCh != nil {
		close(s.commitCh)
		s.commitCh = nil
	}
	return nil
}

// Journal appends raw updates to the WAL, assigning their sequence
// numbers in place, and fsyncs before returning.
func (s *Store) Journal(us []RawUpdate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.man.fenced() {
		return fmt.Errorf("store: journal at epoch %d (fenced by %d): %w",
			s.man.epoch, s.man.fencedBy, ErrFenced)
	}
	return s.wal.append(us)
}

// Snapshot materializes the store as an in-memory snapshot store whose
// version 0 is the current base version (Origin for a freshly opened
// store). All segments load here; a canonical-on-disk list is wrapped,
// never re-sorted.
func (s *Store) Snapshot() (*snapshot.Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	base, err := s.baseLocked()
	if err != nil {
		return nil, err
	}
	width := s.man.transitions - s.man.baseVersion
	adds := make([]graph.EdgeList, width)
	dels := make([]graph.EdgeList, width)
	for i := 0; i < width; i++ {
		if adds[i], dels[i], err = s.overlayLocked(s.man.baseVersion + i); err != nil {
			return nil, err
		}
	}
	return snapshot.NewStoreFromTransitions(s.man.vertices, base, adds, dels)
}

// CompactTo folds overlays below the absolute version v into a new base
// generation — the slide compaction: once a maintained window has moved
// past those snapshots no query will ask for them, so their batches
// collapse into the base and the folded segments are deleted. Live
// segments are never mutated; the new base is a new file and the swap is
// atomic. Safe to run concurrently with reads; the fold itself happens
// outside the lock against immutable inputs.
func (s *Store) CompactTo(v int) error {
	if err := faults.Check(faults.StoreCompact); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	sp := obs.Env().StartSpan("store.compaction", obs.Int("to", v))
	defer sp.End()

	s.mu.Lock()
	man := s.man
	if man.fenced() {
		s.mu.Unlock()
		return fmt.Errorf("store: compact at epoch %d (fenced by %d): %w",
			man.epoch, man.fencedBy, ErrFenced)
	}
	if v <= man.baseVersion {
		s.mu.Unlock()
		return nil // nothing to fold
	}
	if v > man.transitions {
		s.mu.Unlock()
		return fmt.Errorf("store: compact to %d beyond transitions %d", v, man.transitions)
	}
	cur, err := s.baseLocked()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	type ovl struct{ adds, dels graph.EdgeList }
	fold := make([]ovl, 0, v-man.baseVersion)
	for t := man.baseVersion; t < v; t++ {
		a, d, oerr := s.overlayLocked(t)
		if oerr != nil {
			s.mu.Unlock()
			return oerr
		}
		fold = append(fold, ovl{a, d})
	}
	s.mu.Unlock()

	// Fold outside the lock: inputs are immutable, set algebra over
	// canonical lists stays canonical.
	for _, o := range fold {
		cur = graph.Union(graph.Minus(cur, o.dels), o.adds)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.man.fenced() {
		return fmt.Errorf("store: compact at epoch %d (fenced by %d): %w",
			s.man.epoch, s.man.fencedBy, ErrFenced)
	}
	if s.man.generation != man.generation || s.man.baseVersion != man.baseVersion {
		return fmt.Errorf("store: compaction raced another compaction (generation %d -> %d)",
			man.generation, s.man.generation)
	}
	newMan := s.man
	newMan.generation++
	newMan.baseVersion = v
	if err := writeSegment(s.dir, baseName(newMan.generation), kindBase, newMan.vertices, cur); err != nil {
		return err
	}
	if err := swapManifest(s.dir, newMan); err != nil {
		return err
	}
	oldGen, oldBase := s.man.generation, s.man.baseVersion
	s.man = newMan
	s.baseCache = cur
	for t := oldBase; t < v; t++ {
		delete(s.ovlCache, t)
		removeFolded(s.dir, overlayName(t))
	}
	removeFolded(s.dir, baseName(oldGen))
	obs.Compactions().Inc()
	sp.SetAttr(obs.Int("folded", v-oldBase), obs.Int("base_edges", len(cur)))
	return nil
}

// removeFolded deletes a segment file superseded by a compaction. The
// manifest no longer references it, so a failure is tolerated — the next
// Open garbage-collects orphans — but it is counted: a store that cannot
// reclaim space is an operational problem even when it stays correct.
func removeFolded(dir, name string) {
	if err := os.Remove(segPath(dir, name)); err != nil && !os.IsNotExist(err) {
		obs.CompactionGCFailures().Inc()
	}
}

// Mapped reports whether the store serves segments from memory mappings.
func (s *Store) Mapped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mapSegments
}

// VerifyMapped runs the deferred CRC scrub over every currently mapped
// segment, paging the mappings in, and returns the number of segments
// scrubbed plus the first integrity failure (errors.Is ErrCorrupt).
// Already-verified segments are skipped; a store opened without
// MapSegments scrubs nothing (materializing reads verified eagerly).
func (s *Store) VerifyMapped() (scrubbed int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.mapped {
		if m.verified {
			continue
		}
		if verr := m.verify(); verr != nil {
			return scrubbed, verr
		}
		scrubbed++
	}
	return scrubbed, nil
}

// Close releases the WAL file handle and unmaps any mapped segments —
// every edge view handed out by a mapped store is invalid afterward.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for _, m := range s.mapped {
		if err := m.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.mapped = nil
	s.baseCache = nil
	s.ovlCache = nil
	if err := s.wal.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

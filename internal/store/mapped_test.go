package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"commongraph/internal/faults"
)

// openMapped opens dir with the mmap path, skipping the test on
// platforms without mmap support (where the flag silently falls back).
func openMapped(t *testing.T, dir string) *Store {
	t.Helper()
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	s, err := OpenWith(dir, Options{MapSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Mapped() {
		t.Fatal("MapSegments requested but store is not mapped")
	}
	return s
}

// TestMappedOpenEquivalence: the mmap open path serves bit-identical
// base, overlays, and materialized snapshots to the heap path, and the
// deferred CRC scrub passes on an intact store.
func TestMappedOpenEquivalence(t *testing.T) {
	dir, base, a0, d0, a1, d1 := newTestStore(t)
	m := openMapped(t, dir)
	defer m.Close()

	got, err := m.Base()
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, got, base, "mapped base")
	ga0, gd0, err := m.Overlay(0)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, ga0, a0, "mapped overlay 0 adds")
	mustEqual(t, gd0, d0, "mapped overlay 0 dels")
	ga1, gd1, err := m.Overlay(1)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, ga1, a1, "mapped overlay 1 adds")
	mustEqual(t, gd1, d1, "mapped overlay 1 dels")

	// Scrub after the loads: three segments are mapped by now.
	if n, err := m.VerifyMapped(); err != nil || n != 3 {
		t.Fatalf("VerifyMapped = (%d, %v), want (3, nil)", n, err)
	}
	// Idempotent: a second scrub revisits nothing but still succeeds.
	if _, err := m.VerifyMapped(); err != nil {
		t.Fatalf("second scrub: %v", err)
	}

	// Materialized snapshots agree with the heap path's.
	ms, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	h, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	hs, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < hs.NumVersions(); v++ {
		want, err := hs.GetVersion(v)
		if err != nil {
			t.Fatal(err)
		}
		gotv, err := ms.GetVersion(v)
		if err != nil {
			t.Fatal(err)
		}
		mustEqual(t, gotv, want, "mapped snapshot")
	}
}

// TestMappedKillPointRecovery: the two mmap kill points. A failed map
// is a clean load failure (the store stays usable, a materializing
// handle is untouched, and the next attempt succeeds); a failed unmap
// surfaces from Close without leaking the mapping, and the directory
// reopens intact — the mapped path never writes, so there is no state
// to recover.
func TestMappedKillPointRecovery(t *testing.T) {
	dir, base, _, _, _, _ := newTestStore(t)
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}

	m := openMapped(t, dir)
	disarm := faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.ShardMapOpen, Times: 1}}})
	_, err := m.Base()
	if !errors.Is(err, faults.ErrInjected) {
		disarm()
		t.Fatalf("killed map-open: err=%v, want injected", err)
	}
	// A materializing handle never crosses the map kill point.
	h, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Base(); err != nil {
		t.Fatalf("materializing load under armed map fault: %v", err)
	}
	h.Close()
	disarm()
	// The failed load cached nothing; the retry maps cleanly.
	got, err := m.Base()
	if err != nil {
		t.Fatalf("retry after disarm: %v", err)
	}
	mustEqual(t, got, base, "mapped base after retry")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill the unmap: Close must report it, release the mapping anyway,
	// and leave the directory reopenable.
	m = openMapped(t, dir)
	if _, err := m.Base(); err != nil {
		t.Fatal(err)
	}
	disarm = faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.ShardMapClose, Times: 1}}})
	err = m.Close()
	disarm()
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("killed unmap: Close err=%v, want injected", err)
	}
	r := openMapped(t, dir)
	defer r.Close()
	got, err = r.Base()
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, got, base, "base after killed unmap")
}

// TestMappedCorruptPayloadCaughtByScrub: a payload bit-flip slips past
// the structural decode (by design — the cold open pages nothing in)
// and is caught by the deferred CRC scrub.
func TestMappedCorruptPayloadCaughtByScrub(t *testing.T) {
	dir, _, _, _, _, _ := newTestStore(t)
	path := filepath.Join(dir, baseName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Offset segHeaderLen+4+8 is edge 0's weight field: structure and
	// canonical order survive, only the CRC can tell.
	data[segHeaderLen+4+8] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m := openMapped(t, dir)
	defer m.Close()
	if _, err := m.Base(); err != nil {
		t.Fatalf("structural decode rejected a payload flip: %v", err)
	}
	if _, err := m.VerifyMapped(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scrub: err=%v, want ErrCorrupt", err)
	}

	// The materializing path catches the same flip eagerly.
	h, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Base(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("eager read: err=%v, want ErrCorrupt", err)
	}
}

// TestMappedCorruptStructureAtOpen: header and section-bound damage is
// rejected when the segment is mapped, before any view is handed out —
// a torn or hostile file cannot steer reads outside the mapping.
func TestMappedCorruptStructureAtOpen(t *testing.T) {
	for _, tc := range []struct {
		name string
		flip func(data []byte)
	}{
		{"magic", func(d []byte) { d[0] ^= 0xFF }},
		{"section-length", func(d []byte) { d[segHeaderLen] = 0xFF }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir, _, _, _, _, _ := newTestStore(t)
			path := filepath.Join(dir, baseName(0))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tc.flip(data)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			m := openMapped(t, dir)
			defer m.Close()
			if _, err := m.Base(); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("mapped load of %s-corrupted segment: err=%v, want ErrCorrupt", tc.name, err)
			}
		})
	}
}

package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"testing"

	"commongraph/internal/graph"
)

// TestManifestEpochRoundTrip: format-2 manifests carry epoch and fence
// through encode/parse unchanged.
func TestManifestEpochRoundTrip(t *testing.T) {
	in := manifest{vertices: 9, generation: 3, baseVersion: 2, transitions: 7,
		walSeq: 41, epoch: 5, fencedBy: 6}
	out, err := parseManifest(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
	if !out.fenced() {
		t.Fatal("fencedBy 6 > epoch 5 should report fenced")
	}
}

// TestManifestFormat1Compat: a pre-replication (format 1) manifest still
// parses, decoding at epoch 0 and unfenced.
func TestManifestFormat1Compat(t *testing.T) {
	old := manifest{vertices: 4, generation: 1, baseVersion: 0, transitions: 2, walSeq: 9}
	body := "cgstore 1\nvertices 4\ngeneration 1\nbase-version 0\ntransitions 2\nwal-seq 9\n"
	m, err := parseManifest([]byte(body + crcLine(body)))
	if err != nil {
		t.Fatal(err)
	}
	if m != old {
		t.Fatalf("format-1 parse %+v, want %+v", m, old)
	}
	if m.fenced() {
		t.Fatal("format-1 manifest must be unfenced")
	}
}

// TestFencedStoreRefusesWrites: observing a higher epoch fences every
// write path (append, journal, compact), the fence survives reopen, and
// BumpEpoch clears it by claiming a strictly higher epoch.
func TestFencedStoreRefusesWrites(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	s, err := Create(dir, 8, graph.EdgeList{{Src: 0, Dst: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(graph.EdgeList{{Src: 1, Dst: 2, W: 1}}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveEpoch(0); err != nil {
		t.Fatalf("observing own epoch fenced the store: %v", err)
	}
	if err := s.ObserveEpoch(3); !errors.Is(err, ErrFenced) {
		t.Fatalf("ObserveEpoch(3) = %v, want ErrFenced", err)
	}
	if !s.Fenced() {
		t.Fatal("store not fenced after observing epoch 3")
	}
	if err := s.AppendBatch(graph.EdgeList{{Src: 2, Dst: 3, W: 1}}, nil, 0); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced AppendBatch = %v, want ErrFenced", err)
	}
	if err := s.Journal([]RawUpdate{{Op: RawAdd, Edge: graph.Edge{Src: 2, Dst: 3, W: 1}}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced Journal = %v, want ErrFenced", err)
	}
	if err := s.CompactTo(1); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced CompactTo = %v, want ErrFenced", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The fence is durable: a restarted stale primary stays fenced.
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Fenced() {
		t.Fatal("fence did not survive reopen")
	}
	if err := r.AppendBatch(graph.EdgeList{{Src: 2, Dst: 3, W: 1}}, nil, 0); !errors.Is(err, ErrFenced) {
		t.Fatalf("reopened fenced AppendBatch = %v, want ErrFenced", err)
	}

	// Promotion claims an epoch above everything observed and unfences.
	e, err := r.BumpEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if e != 4 {
		t.Fatalf("BumpEpoch = %d, want 4 (observed 3 + 1)", e)
	}
	if r.Fenced() {
		t.Fatal("still fenced after BumpEpoch")
	}
	if err := r.AppendBatch(graph.EdgeList{{Src: 2, Dst: 3, W: 1}}, nil, 0); err != nil {
		t.Fatalf("append after promotion: %v", err)
	}
	if r.Epoch() != 4 {
		t.Fatalf("Epoch() = %d, want 4", r.Epoch())
	}
}

// TestCreateReplicaPosition: a replica store is born at the primary's
// absolute coordinates and reopens there.
func TestCreateReplicaPosition(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "r")
	base := graph.EdgeList{{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 2}}
	s, err := CreateReplica(dir, 8, base, 3, 17, 2)
	if err != nil {
		t.Fatal(err)
	}
	bv, tr, seq, ep := s.Position()
	if bv != 3 || tr != 3 || seq != 17 || ep != 2 {
		t.Fatalf("Position = (%d,%d,%d,%d), want (3,3,17,2)", bv, tr, seq, ep)
	}
	if s.Origin() != 3 {
		t.Fatalf("Origin = %d, want 3", s.Origin())
	}
	if err := s.AppendBatch(graph.EdgeList{{Src: 2, Dst: 3, W: 1}}, nil, 20); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	bv, tr, seq, ep = r.Position()
	if bv != 3 || tr != 4 || seq != 20 || ep != 2 {
		t.Fatalf("reopened Position = (%d,%d,%d,%d), want (3,4,20,2)", bv, tr, seq, ep)
	}
	got, err := r.Base()
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(got, base) {
		t.Fatalf("replica base %v, want %v", got, base)
	}
}

// TestCommitSignalFires: a waiter armed before a commit wakes on it, and
// each returned channel fires at most once.
func TestCommitSignalFires(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	s, err := Create(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ch := s.CommitSignal()
	select {
	case <-ch:
		t.Fatal("signal fired before any commit")
	default:
	}
	if err := s.AppendBatch(graph.EdgeList{{Src: 0, Dst: 1, W: 1}}, nil, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("signal did not fire on commit")
	}
	ch2 := s.CommitSignal()
	if ch2 == ch {
		t.Fatal("CommitSignal returned a spent channel")
	}
}

// crcLine renders the manifest checksum line for a hand-built body,
// mirroring encode's trailer.
func crcLine(body string) string {
	return fmt.Sprintf("crc %08x\n", crc32.ChecksumIEEE([]byte(body)))
}

package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"commongraph/internal/faults"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
)

// The write-ahead log holds the raw add/delete stream of the current
// ingest window. Records are fixed-size and individually checksummed:
//
//	header (16 bytes): magic u32 0xC6570AA1, version u32, vertices u32,
//	                   reserved u32
//	record (28 bytes): seq u64, op u8, pad u8×3, src u32, dst u32, w i32,
//	                   crc32 u32 over the record's first 24 bytes
//
// Sequence numbers are monotonic over the store's lifetime and never
// reused. The manifest's wal-seq is the durable commit pointer: records
// at or below it are folded into overlay segments; records above it are
// the pending window recovery re-seeds. A torn tail (short or
// CRC-failing record) is physically truncated on open — those updates
// were never acknowledged, losing them is the contract.
const (
	walMagic     = uint32(0xC6570AA1)
	walVersion   = uint32(1)
	walName      = "wal.log"
	walTmpName   = "wal.tmp"
	walHeaderLen = 16
	walRecordLen = 28
)

// Raw-update operations, the WAL's vocabulary.
const (
	RawAdd byte = iota
	RawDelete
)

// RawUpdate is one journaled stream event.
type RawUpdate struct {
	Seq  uint64
	Op   byte
	Edge graph.Edge
}

type wal struct {
	dir     string
	f       *os.File
	nextSeq uint64
	// tail mirrors the records above the manifest's commit pointer, so a
	// commit can rewrite the file without re-reading it.
	tail []RawUpdate
	// poisoned is set when a failed write could not be rolled back: the
	// file no longer provably matches the in-memory state, so every
	// further write is refused until a reopen re-reads the file.
	poisoned error
}

// check refuses writes on a poisoned log.
func (w *wal) check() error {
	if w.poisoned == nil {
		return nil
	}
	return fmt.Errorf("store: wal unusable after earlier write failure (reopen the store to resume): %w", w.poisoned)
}

func walPath(dir string) string { return filepath.Join(dir, walName) }

func encodeWALHeader(vertices int) []byte {
	var h [walHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:], walMagic)
	binary.LittleEndian.PutUint32(h[4:], walVersion)
	binary.LittleEndian.PutUint32(h[8:], uint32(vertices))
	return h[:]
}

func encodeWALRecord(buf []byte, r RawUpdate) []byte {
	var rec [walRecordLen]byte
	binary.LittleEndian.PutUint64(rec[0:], r.Seq)
	rec[8] = r.Op
	binary.LittleEndian.PutUint32(rec[12:], uint32(r.Edge.Src))
	binary.LittleEndian.PutUint32(rec[16:], uint32(r.Edge.Dst))
	binary.LittleEndian.PutUint32(rec[20:], uint32(int32(r.Edge.W)))
	binary.LittleEndian.PutUint32(rec[24:], crc32.ChecksumIEEE(rec[:24]))
	return append(buf, rec[:]...)
}

// decodeWALRecord validates one record; ok is false for a torn or
// corrupt record (the truncation point).
func decodeWALRecord(b []byte) (RawUpdate, bool) {
	if len(b) < walRecordLen {
		return RawUpdate{}, false
	}
	if crc32.ChecksumIEEE(b[:24]) != binary.LittleEndian.Uint32(b[24:]) {
		return RawUpdate{}, false
	}
	return RawUpdate{
		Seq: binary.LittleEndian.Uint64(b[0:]),
		Op:  b[8],
		Edge: graph.Edge{
			Src: graph.VertexID(binary.LittleEndian.Uint32(b[12:])),
			Dst: graph.VertexID(binary.LittleEndian.Uint32(b[16:])),
			W:   graph.Weight(int32(binary.LittleEndian.Uint32(b[20:]))),
		},
	}, true
}

// createWAL writes a fresh empty log (header only, fsynced).
func createWAL(dir string, vertices int) (*wal, error) {
	f, err := os.Create(walPath(dir))
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(encodeWALHeader(vertices)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{dir: dir, f: f, nextSeq: 1}, nil
}

// openWAL reads dir's log, truncates any torn tail in place, and returns
// the log positioned for appends plus the records above committedSeq —
// the pending window a crash left behind. Records at or below
// committedSeq are dropped by an immediate rotation so the file never
// accretes committed history across restarts.
func openWAL(dir string, vertices int, committedSeq uint64) (*wal, []RawUpdate, error) {
	data, err := os.ReadFile(walPath(dir))
	if os.IsNotExist(err) {
		w, cerr := createWAL(dir, vertices)
		if cerr != nil {
			return nil, nil, cerr
		}
		w.nextSeq = committedSeq + 1
		return w, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	if len(data) < walHeaderLen || binary.LittleEndian.Uint32(data) != walMagic {
		return nil, nil, fmt.Errorf("store: %s: %w: bad header", walName, ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != walVersion {
		return nil, nil, fmt.Errorf("store: %s: unsupported version %d", walName, v)
	}
	if got := binary.LittleEndian.Uint32(data[8:]); got != uint32(vertices) {
		// A structurally valid log from a different store (wrong vertex
		// space) would replay edges against the wrong graph; reject it
		// here rather than letting out-of-range edges surface later.
		return nil, nil, fmt.Errorf("store: %s: %w: header vertices %d, manifest has %d",
			walName, ErrCorrupt, got, vertices)
	}
	valid := walHeaderLen
	var records []RawUpdate
	for off := walHeaderLen; off < len(data); off += walRecordLen {
		rec, ok := decodeWALRecord(data[off:])
		if !ok {
			break // torn tail: everything from here is discarded
		}
		records = append(records, rec)
		valid = off + walRecordLen
	}
	truncated := len(data) - valid

	w := &wal{dir: dir}
	w.nextSeq = committedSeq + 1
	var pending []RawUpdate
	for _, r := range records {
		if r.Seq > committedSeq {
			pending = append(pending, r)
		}
		if r.Seq >= w.nextSeq {
			w.nextSeq = r.Seq + 1
		}
	}
	w.tail = append([]RawUpdate(nil), pending...)
	// Rewrite the log down to the pending window (also dropping the torn
	// tail). Rotation is atomic: tmp, fsync, rename.
	if err := w.rotate(vertices); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(walPath(dir), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, nil, err
	}
	w.f = f
	if truncated > 0 {
		obs.WALTruncations().Inc()
	}
	return w, pending, nil
}

// append journals updates (assigning their sequence numbers in place)
// and fsyncs before returning — the durability point the ingest contract
// ("acknowledged means replayable") depends on. Append is all-or-nothing:
// a failed write or sync rolls the log back to its pre-append state (the
// file is truncated to its prior length, the sequence counter rewinds),
// so a retried append reissues the same sequences instead of leaving a
// gap, and no partially-written or unacknowledged record survives to be
// replayed. If the rollback itself fails the log is poisoned (see check).
func (w *wal) append(us []RawUpdate) error {
	if err := w.check(); err != nil {
		return err
	}
	if err := faults.Check(faults.StoreWALAppend); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	sp := obs.Env().StartSpan("store.wal_append", obs.Int("records", len(us)))
	defer sp.End()
	st, err := w.f.Stat()
	if err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	preSize, preSeq := st.Size(), w.nextSeq
	buf := make([]byte, 0, walRecordLen*len(us))
	for i := range us {
		us[i].Seq = w.nextSeq
		w.nextSeq++
		buf = encodeWALRecord(buf, us[i])
	}
	if _, err := w.f.Write(buf); err != nil {
		return w.undoAppend(preSize, preSeq, err)
	}
	// Kill point between write and fsync: bytes may already be in the
	// file but the records were never acknowledged — the rollback below
	// must remove them just like a short write.
	if err := faults.Check(faults.StoreWALSync); err != nil {
		return w.undoAppend(preSize, preSeq, fmt.Errorf("store: wal sync: %w", err))
	}
	if err := w.f.Sync(); err != nil {
		return w.undoAppend(preSize, preSeq, err)
	}
	w.tail = append(w.tail, us...)
	obs.WALAppends().Inc()
	obs.WALBytes().Add(int64(len(buf)))
	return nil
}

// undoAppend restores the log after a failed append: the file shrinks
// back to its pre-append length (removing partial or synced-but-unacked
// bytes of the failed batch) and the sequence counter rewinds. It returns
// cause — the original failure — and poisons the log if the restore
// cannot be completed.
func (w *wal) undoAppend(preSize int64, preSeq uint64, cause error) error {
	w.nextSeq = preSeq
	if err := w.f.Truncate(preSize); err != nil {
		w.poisoned = fmt.Errorf("append failed (%v); rollback truncate failed: %w", cause, err)
		return cause
	}
	// Not every handle is O_APPEND (createWAL's is not); reset the offset
	// so the next write lands at the restored end instead of past it.
	if _, err := w.f.Seek(preSize, io.SeekStart); err != nil {
		w.poisoned = fmt.Errorf("append failed (%v); rollback seek failed: %w", cause, err)
		return cause
	}
	if err := w.f.Sync(); err != nil {
		w.poisoned = fmt.Errorf("append failed (%v); rollback sync failed: %w", cause, err)
	}
	return cause
}

// commit drops records at or below seq from the in-memory tail and
// rewrites the log to just the remainder. The caller has already moved
// the manifest's wal-seq — the durable commit point — so the rewrite is
// space reclamation, not correctness: a crash (or failure) before it
// merely leaves committed records in the file, which the next rotation
// or open drops by sequence. On a failed rewrite commit therefore falls
// back to reopening the existing file for append, keeping journaling
// alive; only if that too fails is the log poisoned.
func (w *wal) commit(seq uint64, vertices int) error {
	if err := w.check(); err != nil {
		return err
	}
	if err := faults.Check(faults.StoreWALRotate); err != nil {
		return fmt.Errorf("store: wal rotate: %w", err)
	}
	keep := w.tail[:0]
	for _, r := range w.tail {
		if r.Seq > seq {
			keep = append(keep, r)
		}
	}
	w.tail = keep
	if w.f != nil {
		w.f.Close() //cgvet:ignore errflow -- pre-rotation close of a fully fsynced handle; the file is rewritten by rotate below, so a close error has nothing left to lose
		w.f = nil
	}
	rerr := w.rotate(vertices)
	f, err := os.OpenFile(walPath(w.dir), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		if rerr == nil {
			rerr = err
		}
		w.poisoned = fmt.Errorf("post-commit rotation failed: %w", rerr)
		return rerr
	}
	w.f = f
	return rerr
}

// rotate rewrites the log file to header + tail, atomically.
func (w *wal) rotate(vertices int) error {
	buf := encodeWALHeader(vertices)
	for _, r := range w.tail {
		buf = encodeWALRecord(buf, r)
	}
	tmp := filepath.Join(w.dir, walTmpName)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, walPath(w.dir)); err != nil {
		return err
	}
	return syncDir(w.dir)
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

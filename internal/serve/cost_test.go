package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"commongraph"
	apiv1 "commongraph/api/v1"
	"commongraph/internal/obs"
)

// TestQuotaDebit: debits settle measured work against the flat
// admission charge, may push a bucket into bounded debt, and the debt
// refills at the bucket's rate instead of being forgiven.
func TestQuotaDebit(t *testing.T) {
	clock := time.Unix(1000, 0)
	q := newQuotas(1, 4) // 1 token/s, burst 4
	q.now = func() time.Time { return clock }

	if ok, _ := q.allow("a"); !ok {
		t.Fatal("fresh tenant denied")
	}
	// Settle a query that cost 6 tokens of work: balance 3 - 6 = -3.
	q.debit("a", 6)
	ok, wait := q.allow("a")
	if ok {
		t.Fatal("indebted tenant admitted")
	}
	// Recovering from -3 to 1 token takes 4 seconds at 1 token/s.
	if wait < 3500*time.Millisecond || wait > 4500*time.Millisecond {
		t.Fatalf("retry hint %v, want ~4s (debt refills at rate)", wait)
	}
	clock = clock.Add(2 * time.Second)
	if ok, _ := q.allow("a"); ok {
		t.Fatal("debt half-refilled but tenant already admitted")
	}
	clock = clock.Add(3 * time.Second)
	if ok, _ := q.allow("a"); !ok {
		t.Fatal("tenant still denied after debt refilled")
	}

	// Debt is clamped: one monstrous query delays, it does not ban.
	q.debit("a", 1e9)
	_, wait = q.allow("a")
	if max := time.Duration((debtClampBursts*4 + 1) * float64(time.Second) * 1.25); wait > max {
		t.Fatalf("retry hint %v exceeds the debt clamp (max ~%v)", wait, max)
	}

	// The idle sweep must not forgive debt: after sweeping, the tenant
	// is still denied until the full debt has refilled.
	q.debit("b", 6) // balance -6 (refillLocked creates at burst... debit makes 4-6=-2)
	q.sweep = 1     // force a sweep on the next allow
	clock = clock.Add(4 * time.Second)
	// 4s refills exactly one burst — enough to drop a debt-free idle
	// bucket, not one in debt.
	if ok, _ := q.allow("b"); !ok {
		t.Fatal("tenant b: -2 + 4s at 1/s = 2 tokens, should be admitted")
	}
	q.debit("b", 8)
	q.sweep = 1
	clock = clock.Add(4 * time.Second)
	if ok, _ := q.allow("b"); ok {
		t.Fatal("sweep forgave tenant b's debt")
	}
}

// TestCacheAdmissionBytesUnit: the result cache refuses entries above
// its byte budget and counts the rejection.
func TestCacheAdmissionBytesUnit(t *testing.T) {
	c := newResultCache(8, 1024)
	small := apiv1.RunResult{Snapshots: []apiv1.Snapshot{{Index: 0}}}
	big := apiv1.RunResult{Snapshots: []apiv1.Snapshot{{Index: 0, Values: make([]int64, 1024)}}}
	before := obs.ServeCacheAdmissionRejects().Value()

	c.put(cacheKey{source: 1}, small)
	if c.len() != 1 {
		t.Fatalf("small result refused: len=%d", c.len())
	}
	c.put(cacheKey{source: 2}, big)
	if c.len() != 1 {
		t.Fatalf("oversized result admitted: len=%d", c.len())
	}
	if got := obs.ServeCacheAdmissionRejects().Value() - before; got != 1 {
		t.Fatalf("admission rejects counter moved by %d, want 1", got)
	}

	// maxBytes <= 0 disables the gate.
	u := newResultCache(8, 0)
	u.put(cacheKey{source: 3}, big)
	if u.len() != 1 {
		t.Fatalf("unlimited cache refused a result")
	}
}

// costSource returns a fixed evaluated-edge count so the cost-debit
// path is deterministic.
type costSource struct {
	edges int64
}

func (s *costSource) Run(ctx context.Context, req commongraph.Request) (*commongraph.Result, error) {
	return &commongraph.Result{Strategy: req.Strategy, EdgesEvaluated: s.edges}, nil
}
func (s *costSource) Window() (int, int, bool) { return 0, 0, false }
func (s *costSource) Generation() uint64       { return 0 }
func (s *costSource) OnCommit(func(uint64))    {}

// TestServeCostDebit: with CostPerMillionEdges set, a tenant whose
// query evaluated many edges is throttled on its next request while a
// light tenant with the same request rate is not.
func TestServeCostDebit(t *testing.T) {
	heavy := &costSource{edges: 40_000_000} // 40M edges = 40 tokens at cost 1
	hs := httptest.NewServer(New(heavy, Config{
		Workers: 1, TenantRate: 1, TenantBurst: 4,
		CostPerMillionEdges: 1,
		CacheEntries:        -1, // isolate the quota path
	}))
	defer hs.Close()
	a, err := apiv1.Dial(hs.URL, apiv1.WithTenant("team-a"))
	if err != nil {
		t.Fatal(err)
	}
	req := &apiv1.RunRequest{Algorithm: "BFS", Source: 0}
	if _, err := a.Run(t.Context(), req); err != nil {
		t.Fatalf("first request within burst: %v", err)
	}
	_, err = a.Run(t.Context(), req)
	var werr *apiv1.Error
	if !errors.As(err, &werr) || werr.Code != apiv1.CodeQuotaExhausted {
		t.Fatalf("want quota_exhausted after a 40-token query, got %v", err)
	}
	if werr.RetryAfterMillis <= 0 {
		t.Fatalf("cost denial carries no retry hint: %+v", werr)
	}

	// Flat mode (CostPerMillionEdges = 0): the same heavy query costs
	// one token and the second request sails through.
	flat := httptest.NewServer(New(heavy, Config{
		Workers: 1, TenantRate: 1, TenantBurst: 4, CacheEntries: -1,
	}))
	defer flat.Close()
	b, err := apiv1.Dial(flat.URL, apiv1.WithTenant("team-b"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.Run(t.Context(), req); err != nil {
			t.Fatalf("flat-mode request %d: %v", i, err)
		}
	}
}

// Package serve is the multi-tenant query service over shared evolving
// graphs: admission control with backpressure, per-tenant token-bucket
// quotas, a generation-keyed result cache invalidated by window commits,
// and — through the commongraph PlanCache — cross-query sharing of
// common-graph work among concurrent requests with overlapping windows.
// It speaks only the versioned api/v1 wire schema; cmd/cgserve mounts it
// next to the shared ops surface (obs.OpsMux).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"commongraph"
	apiv1 "commongraph/api/v1"
	"commongraph/internal/faults"
	"commongraph/internal/obs"
)

// Config tunes a Server. The zero value serves: GOMAXPROCS workers, a
// queue of 4x that, no tenant quotas, a 512-entry result cache, and
// cross-query sharing on.
type Config struct {
	// Workers bounds concurrently executing evaluations (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests admitted beyond the executing ones —
	// waiting for a worker slot (0 = 4x Workers). Past it the service
	// sheds load with 429 + Retry-After instead of queueing unboundedly.
	QueueDepth int
	// TenantRate is each tenant's sustained request budget in requests
	// per second, enforced by a token bucket keyed on X-CG-Tenant.
	// 0 disables quotas.
	TenantRate float64
	// TenantBurst is the bucket capacity (0 = one second of TenantRate,
	// minimum 1).
	TenantBurst int
	// CacheEntries bounds the result cache (0 = 512; negative disables
	// caching).
	CacheEntries int
	// CacheMaxResultBytes refuses caching any result whose estimated
	// wire footprint exceeds this budget — the entry-counted LRU would
	// otherwise let one KeepValues sweep over a large window displace
	// hundreds of checksum-sized results. 0 = 4 MiB; negative = no
	// size gate. Rejections count in
	// commongraph_serve_cache_admission_rejects_total.
	CacheMaxResultBytes int64
	// CostPerMillionEdges debits each tenant's token bucket by this
	// many extra tokens per million edges the evaluation actually
	// examined (Result.EdgesEvaluated), settling real work against the
	// flat one-token admission charge. Buckets may go into bounded
	// debt: a tenant issuing huge queries waits longer, one that stays
	// under budget is unaffected. 0 keeps flat per-request quotas.
	CostPerMillionEdges float64
	// DisableSharing turns off the cross-query PlanCache — every request
	// then solves its own common graph (the bench's control arm).
	DisableSharing bool
	// DefaultStrategy is used when a request omits one. The zero value
	// (KickStarter, which a windowed service cannot serve anyway) means
	// DirectHopParallel.
	DefaultStrategy commongraph.Strategy
	// RetryAfter is the backoff hint on queue-full responses (0 = 500ms).
	// Quota denials compute their own from the bucket's refill rate.
	RetryAfter time.Duration
	// Options is the base evaluation tuning applied to every request
	// (engine workers, scheduler mode). Per-request fields (KeepValues,
	// OptimalSchedule, Plan, Context) are overwritten by the service.
	Options commongraph.Options
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.CacheMaxResultBytes == 0 {
		c.CacheMaxResultBytes = 4 << 20
	}
	if c.DefaultStrategy == commongraph.KickStarter {
		c.DefaultStrategy = commongraph.DirectHopParallel
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	return c
}

// defaultTenant is the quota identity of requests without X-CG-Tenant.
const defaultTenant = "default"

// Server is the query service. It implements http.Handler for the
// apiv1.RunPath endpoint; mount it on an obs.OpsMux next to /metrics and
// friends. A Server has no background goroutines — closing the HTTP
// server above it is a complete shutdown.
type Server struct {
	cfg    Config
	src    Source
	plan   *commongraph.PlanCache
	cache  *resultCache
	quotas *quotas
	slots  chan struct{}
	queued atomic.Int64
}

// New builds a Server over src. It registers the result-cache purge on
// the source's commit hook immediately.
func New(src Source, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		src:    src,
		quotas: newQuotas(cfg.TenantRate, cfg.TenantBurst),
		slots:  make(chan struct{}, cfg.Workers),
	}
	if !cfg.DisableSharing {
		s.plan = commongraph.NewPlanCache()
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries, cfg.CacheMaxResultBytes)
		src.OnCommit(func(uint64) { s.cache.purge() })
	}
	return s
}

// PlanCache exposes the cross-query sharing layer (nil when sharing is
// disabled) — cgbench reads its Stats for the shared-ICG ratio.
func (s *Server) PlanCache() *commongraph.PlanCache { return s.plan }

// Ready is a readiness probe for /readyz: not ready while the admission
// queue is saturated (a load balancer should stop sending here first).
func (s *Server) Ready() (bool, string) {
	q := s.queued.Load()
	if q >= int64(s.cfg.Workers+s.cfg.QueueDepth) {
		return false, fmt.Sprintf("admission queue saturated (%d in service)", q)
	}
	return true, "ok"
}

// ServeHTTP handles POST apiv1.RunPath.
func (s *Server) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tenant := r.Header.Get(apiv1.TenantHeader)
	if tenant == "" {
		tenant = defaultTenant
	}
	if r.Method != http.MethodPost {
		s.fail(rw, tenant, "bad_request", &apiv1.Error{
			Code: apiv1.CodeBadRequest, Message: "POST required", Status: http.StatusMethodNotAllowed,
		})
		return
	}
	var wreq apiv1.RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20)).Decode(&wreq); err != nil {
		s.fail(rw, tenant, "bad_request", &apiv1.Error{
			Code: apiv1.CodeBadRequest, Message: "bad JSON: " + err.Error(), Status: http.StatusBadRequest,
		})
		return
	}
	creq, win, werr := s.resolve(&wreq)
	if werr != nil {
		s.fail(rw, tenant, "bad_request", werr)
		return
	}

	// Quota before queue: a tenant over budget must not consume queue
	// slots other tenants could use.
	if ok, wait := s.quotas.allow(tenant); !ok {
		s.fail(rw, tenant, "quota", &apiv1.Error{
			Code:             apiv1.CodeQuotaExhausted,
			Message:          fmt.Sprintf("tenant %q over its %.3g req/s budget", tenant, s.cfg.TenantRate),
			RetryAfterMillis: wait.Milliseconds(),
			Status:           http.StatusTooManyRequests,
		})
		return
	}

	// The generation is read BEFORE the evaluation snapshots the window,
	// so a result is always at least as fresh as its cache key — a
	// commit racing the evaluation strands the entry on an old key that
	// no future lookup presents (see cacheKey).
	gen := s.src.Generation()
	key := cacheKey{
		algo: creq.Query.Algorithm.Name(), source: int(creq.Query.Source),
		window: win, strategy: creq.Strategy,
		optimal: creq.Options.OptimalSchedule, keepValues: creq.Options.KeepValues,
		gen: gen,
	}
	if s.cache != nil {
		if res, ok := s.cache.get(key); ok {
			res.Cached = true
			obs.ServeRequests(tenant, "cache_hit").Inc()
			obs.ServeLatency().Observe(time.Since(start))
			writeJSON(rw, http.StatusOK, &res)
			return
		}
	}

	// Admission: bounded queue, then a worker slot. Announce the window
	// to the sharing layer before waiting — by the time a worker picks
	// this request up, every overlapping contemporary is visible and the
	// common-graph solves fold together.
	if q := s.queued.Add(1); q > int64(s.cfg.Workers+s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.fail(rw, tenant, "queue_full", &apiv1.Error{
			Code:             apiv1.CodeQueueFull,
			Message:          fmt.Sprintf("admission queue at capacity (%d in service)", q-1),
			RetryAfterMillis: s.cfg.RetryAfter.Milliseconds(),
			Status:           http.StatusTooManyRequests,
		})
		return
	}
	obs.ServeQueueDepth().Set(s.queued.Load())
	defer func() {
		s.queued.Add(-1)
		obs.ServeQueueDepth().Set(s.queued.Load())
	}()
	if s.plan != nil {
		release := s.plan.Announce(win)
		defer release()
	}

	ctx := r.Context()
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.fail(rw, tenant, "canceled", &apiv1.Error{
			Code: apiv1.CodeCanceled, Message: "client went away while queued", Status: 499,
		})
		return
	}
	defer func() { <-s.slots }()
	obs.ServeInflight().Add(1)
	defer obs.ServeInflight().Add(-1)

	// One span per request, joined to the caller's trace when the wire
	// request carries one; the evaluation's own span tree nests below.
	if id, err := obs.ParseTraceID(wreq.Trace); err == nil && id != 0 {
		ctx = obs.ContextWithSpan(ctx, obs.SpanContext{Trace: id, Span: obs.SpanID(id)})
	}
	sp := obs.Active().StartRemote(obs.FromContext(ctx), "serve.request",
		obs.String("tenant", tenant),
		obs.String("algo", key.algo), obs.Int("source", key.source),
		obs.String("strategy", creq.Strategy.Slug()),
		obs.Int("from", win.From), obs.Int("to", win.To))
	defer sp.End()
	ctx = obs.ContextWithSpan(ctx, sp.Context())
	trace := ""
	if id := sp.TraceID(); id != 0 {
		trace = id.String()
	}

	creq.Options.Plan = s.plan
	res, err := s.src.Run(ctx, creq)
	if err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
		werr := classify(err, ctx)
		werr.Trace = trace
		s.fail(rw, tenant, werr.Code, werr)
		return
	}

	// Cost settlement: the admission charge was one flat token; debit
	// the measured edge work so heavy queries drain their tenant's
	// budget in proportion. Cache hits never reach here — served from
	// memory, they cost only their flat token.
	if s.cfg.CostPerMillionEdges > 0 {
		s.quotas.debit(tenant, float64(res.EdgesEvaluated)/1e6*s.cfg.CostPerMillionEdges)
	}

	wres := toWire(res, gen, trace)
	// The injection point sits between the evaluation and the cache
	// insert: the invalidation race test commits a window right here and
	// proves the stale-keyed insert is unreachable.
	if s.cache != nil && faults.Check(faults.ServeCacheInsert) == nil {
		s.cache.put(key, wres)
	}
	obs.ServeRequests(tenant, "ok").Inc()
	obs.ServeLatency().Observe(time.Since(start))
	writeJSON(rw, http.StatusOK, &wres)
}

// resolve converts a wire request into an evaluation request against the
// source's current window.
func (s *Server) resolve(wreq *apiv1.RunRequest) (commongraph.Request, commongraph.Window, *apiv1.Error) {
	bad := func(format string, args ...any) (commongraph.Request, commongraph.Window, *apiv1.Error) {
		return commongraph.Request{}, commongraph.Window{}, &apiv1.Error{
			Code: apiv1.CodeBadRequest, Message: fmt.Sprintf(format, args...), Status: http.StatusBadRequest,
		}
	}
	algo, ok := commongraph.AlgorithmByName(wreq.Algorithm)
	if !ok {
		return bad("unknown algorithm %q (want BFS, SSSP, SSWP, SSNP or Viterbi)", wreq.Algorithm)
	}
	strategy := s.cfg.DefaultStrategy
	if wreq.Strategy != "" {
		var err error
		if strategy, err = commongraph.ParseStrategy(wreq.Strategy); err != nil {
			return bad("%v", err)
		}
	}
	from, to, fixed := s.src.Window()
	if from > to {
		return commongraph.Request{}, commongraph.Window{}, &apiv1.Error{
			Code: apiv1.CodeStale, Message: "no servable window yet (awaiting bootstrap)",
			Status: http.StatusServiceUnavailable,
		}
	}
	win := commongraph.Window{From: from, To: to}
	if wreq.Window != nil {
		req := commongraph.Window{From: wreq.Window.From, To: wreq.Window.To}
		if fixed && req != win {
			return bad("window [%d,%d] is maintained by the service (currently [%d,%d]); omit the window field",
				req.From, req.To, win.From, win.To)
		}
		win = req
	}
	if fixed {
		switch strategy {
		case commongraph.DirectHop, commongraph.DirectHopParallel,
			commongraph.WorkSharing, commongraph.WorkSharingParallel:
		default:
			return bad("strategy %s needs the full update stream; a windowed service serves only the CommonGraph strategies", strategy.Slug())
		}
	}
	opt := s.cfg.Options
	opt.KeepValues = wreq.KeepValues
	opt.OptimalSchedule = opt.OptimalSchedule || wreq.OptimalSchedule
	return commongraph.Request{
		Query:    commongraph.Query{Algorithm: algo, Source: commongraph.VertexID(wreq.Source)},
		Window:   win,
		Strategy: strategy,
		Options:  opt,
	}, win, nil
}

// classify maps evaluation failures onto the wire protocol.
func classify(err error, ctx context.Context) *apiv1.Error {
	switch {
	case errors.Is(err, commongraph.ErrStale):
		return &apiv1.Error{Code: apiv1.CodeStale, Message: err.Error(), Status: http.StatusServiceUnavailable}
	case ctx.Err() != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			strings.Contains(err.Error(), context.Canceled.Error())):
		return &apiv1.Error{Code: apiv1.CodeCanceled, Message: err.Error(), Status: 499}
	case strings.Contains(err.Error(), "out of range") || strings.Contains(err.Error(), "invalid for store"):
		return &apiv1.Error{Code: apiv1.CodeBadRequest, Message: err.Error(), Status: http.StatusBadRequest}
	default:
		return &apiv1.Error{Code: apiv1.CodeInternal, Message: err.Error(), Status: http.StatusInternalServerError}
	}
}

// toWire converts an evaluation result to the v1 schema.
func toWire(res *commongraph.Result, gen uint64, trace string) apiv1.RunResult {
	out := apiv1.RunResult{
		Strategy:   res.Strategy.Slug(),
		Generation: gen,
		Stale:      res.Stale,
		Degraded:   res.Degraded,
		Trace:      trace,
		Snapshots:  make([]apiv1.Snapshot, 0, len(res.Snapshots)),
	}
	if n := len(res.Snapshots); n > 0 {
		out.Window = apiv1.Window{From: res.Snapshots[0].Index, To: res.Snapshots[n-1].Index}
	}
	for _, s := range res.Snapshots {
		ws := apiv1.Snapshot{Index: s.Index, Reached: s.Reached, Checksum: apiv1.Checksum(s.Checksum)}
		if s.Values != nil {
			ws.Values = make([]int64, len(s.Values))
			for i, v := range s.Values {
				ws.Values[i] = int64(v)
			}
		}
		out.Snapshots = append(out.Snapshots, ws)
	}
	return out
}

func (s *Server) fail(rw http.ResponseWriter, tenant, outcome string, werr *apiv1.Error) {
	obs.ServeRequests(tenant, outcome).Inc()
	if werr.RetryAfterMillis > 0 {
		secs := (werr.RetryAfterMillis + 999) / 1000
		if secs < 1 {
			secs = 1
		}
		rw.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(rw, werr.Status, werr)
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(v) //nolint:errcheck // client gone mid-write is its problem
}

package serve

import (
	"sync"
	"time"
)

// tokenBucket is one tenant's quota: capacity `burst`, refilled at
// `rate` tokens per second. Buckets start full — a new tenant gets its
// burst immediately.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// quotas keys token buckets by tenant. Buckets for tenants idle long
// enough to have refilled completely are dropped opportunistically, so
// an adversarial stream of unique tenant names cannot grow the map
// without bound.
type quotas struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables quotas
	burst  float64
	byName map[string]*tokenBucket
	now    func() time.Time // test hook
	sweep  int              // allow() calls until the next idle sweep
}

const quotaSweepEvery = 256

func newQuotas(rate float64, burst int) *quotas {
	b := float64(burst)
	if b <= 0 {
		b = rate // default burst: one second of rate
	}
	if b < 1 {
		b = 1
	}
	return &quotas{
		rate:   rate,
		burst:  b,
		byName: make(map[string]*tokenBucket),
		now:    time.Now,
		sweep:  quotaSweepEvery,
	}
}

// refillLocked brings the tenant's bucket up to date at now, creating
// it full when absent. Callers hold q.mu.
func (q *quotas) refillLocked(tenant string, now time.Time) *tokenBucket {
	b := q.byName[tenant]
	if b == nil {
		b = &tokenBucket{tokens: q.burst, last: now}
		q.byName[tenant] = b
		return b
	}
	b.tokens += now.Sub(b.last).Seconds() * q.rate
	if b.tokens > q.burst {
		b.tokens = q.burst
	}
	b.last = now
	return b
}

// allow spends one token from the tenant's bucket. Denials return the
// wait until a token will be available — the Retry-After hint.
func (q *quotas) allow(tenant string) (ok bool, retryAfter time.Duration) {
	if q.rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	if q.sweep--; q.sweep <= 0 {
		q.sweep = quotaSweepEvery
		for name, b := range q.byName {
			// Refilled back to a full burst = indistinguishable from a
			// new tenant. The target is burst MINUS the current balance:
			// an indebted bucket (negative tokens, see debit) needs
			// proportionally longer idle time — dropping it early would
			// forgive the debt.
			if now.Sub(b.last).Seconds()*q.rate >= q.burst-b.tokens {
				delete(q.byName, name)
			}
		}
	}
	b := q.refillLocked(tenant, now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / q.rate
	return false, time.Duration(need * float64(time.Second))
}

// debtClampBursts bounds how far a bucket can go negative: one huge
// query delays a tenant, it does not lock the tenant out forever.
const debtClampBursts = 4

// debit post-charges measured work against the tenant's bucket.
// Admission (allow) spends one flat token optimistically; once the
// evaluation reports its real cost, debit settles the difference. The
// balance may go negative — the work already happened, so the debt
// defers future admissions instead — clamped at debtClampBursts full
// bursts.
func (q *quotas) debit(tenant string, tokens float64) {
	if q.rate <= 0 || tokens <= 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.refillLocked(tenant, q.now())
	b.tokens -= tokens
	if floor := -debtClampBursts * q.burst; b.tokens < floor {
		b.tokens = floor
	}
}

package serve

import (
	"container/list"
	"sync"

	"commongraph"
	apiv1 "commongraph/api/v1"
	"commongraph/internal/obs"
)

// cacheKey identifies one servable response. The generation field is the
// safety argument: it is read BEFORE the evaluation snapshots the window
// representation, so a result is always at least as fresh as its key. A
// commit racing the evaluation bumps the source's generation, every
// later lookup presents the new generation, and the stale-keyed entry is
// structurally unreachable — invalidation does not depend on the purge
// hook firing first.
type cacheKey struct {
	algo       string
	source     int
	window     commongraph.Window
	strategy   commongraph.Strategy
	optimal    bool
	keepValues bool
	gen        uint64
}

// resultCache is a small LRU over wire-shaped results. Entries are
// value-copied out so callers can mark their copy (Cached, Trace)
// without mutating the cached one. Results whose estimated wire
// footprint exceeds maxBytes are refused at admission (maxBytes <= 0
// = unlimited): the LRU is entry-counted, so one KeepValues sweep over
// a big window would otherwise displace hundreds of checksum-sized
// results while being the least likely entry to be asked for again.
type resultCache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64
	entries  map[cacheKey]*list.Element
	order    *list.List // front = most recent
}

type cacheEntry struct {
	key cacheKey
	res apiv1.RunResult
}

func newResultCache(capacity int, maxBytes int64) *resultCache {
	return &resultCache{
		cap:      capacity,
		maxBytes: maxBytes,
		entries:  make(map[cacheKey]*list.Element),
		order:    list.New(),
	}
}

// resultBytes estimates a result's wire footprint. The dominant term
// is KeepValues payloads — 8 bytes per vertex value per snapshot;
// checksum-only snapshots cost a small constant.
func resultBytes(res *apiv1.RunResult) int64 {
	n := int64(128)
	for i := range res.Snapshots {
		n += 64 + int64(len(res.Snapshots[i].Values))*8
	}
	return n
}

func (c *resultCache) get(k cacheKey) (apiv1.RunResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		obs.ServeCacheEvents("miss").Inc()
		return apiv1.RunResult{}, false
	}
	c.order.MoveToFront(el)
	obs.ServeCacheEvents("hit").Inc()
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(k cacheKey, res apiv1.RunResult) {
	if c.maxBytes > 0 && resultBytes(&res) > c.maxBytes {
		obs.ServeCacheAdmissionRejects().Inc()
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, res: res})
	obs.ServeCacheEvents("insert").Inc()
	for len(c.entries) > c.cap {
		oldest := c.order.Back()
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.order.Remove(oldest)
		obs.ServeCacheEvents("evict").Inc()
	}
}

// purge drops everything — the commit hook's path. Entries keyed by
// older generations are already unreachable; purging just returns their
// memory early.
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) == 0 {
		return
	}
	c.entries = make(map[cacheKey]*list.Element)
	c.order.Init()
	obs.ServeCacheEvents("purge").Inc()
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

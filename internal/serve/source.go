package serve

import (
	"context"

	"commongraph"
)

// Source is the evaluable substrate behind a Server: a maintained window
// on the primary (Watcher), a replica's window (Follower), or a whole
// static evolving graph. The serve layer is indifferent to which — it
// needs evaluation, a serving window to default requests onto, and the
// commit generation that keys its result cache.
type Source interface {
	// Run evaluates one request, like commongraph.Run.
	Run(ctx context.Context, req commongraph.Request) (*commongraph.Result, error)
	// Window returns the currently served snapshot range and whether it
	// is fixed (maintained by the source, so requests cannot choose
	// their own).
	Window() (from, to int, fixed bool)
	// Generation is the source's window-commit counter; results are
	// cached keyed by it, so it must change whenever the served window's
	// contents change.
	Generation() uint64
	// OnCommit registers an invalidation hook (see Watcher.OnCommit). A
	// static source never calls it.
	OnCommit(func(gen uint64))
}

// WatchSource serves a Watcher's maintained window on the primary.
func WatchSource(w *commongraph.Watcher) Source { return watchSource{w} }

type watchSource struct{ w *commongraph.Watcher }

func (s watchSource) Run(ctx context.Context, req commongraph.Request) (*commongraph.Result, error) {
	return s.w.Run(ctx, req)
}
func (s watchSource) Window() (int, int, bool) {
	from, to := s.w.Window()
	return from, to, true
}
func (s watchSource) Generation() uint64      { return s.w.Generation() }
func (s watchSource) OnCommit(f func(uint64)) { s.w.OnCommit(f) }

// FollowSource serves a replication Follower's mirrored window —
// follower-backed serving, with the follower's staleness budget applied
// per request.
func FollowSource(f *commongraph.Follower) Source { return followSource{f} }

type followSource struct{ f *commongraph.Follower }

func (s followSource) Run(ctx context.Context, req commongraph.Request) (*commongraph.Result, error) {
	return s.f.Run(ctx, req)
}
func (s followSource) Window() (int, int, bool) {
	if w := s.f.Watcher(); w != nil {
		from, to := w.Window()
		return from, to, true
	}
	return 0, -1, true // not bootstrapped: no servable window yet
}
func (s followSource) Generation() uint64      { return s.f.Generation() }
func (s followSource) OnCommit(f func(uint64)) { s.f.OnCommit(f) }

// GraphSource serves a whole evolving graph. Requests may pick any
// window (defaulting to all snapshots). Meant for static datasets: the
// generation never changes, so if the graph is mutated while serving,
// cached results can outlive their window — put a Watcher in front for
// live data.
func GraphSource(g *commongraph.EvolvingGraph) Source { return graphSource{g} }

type graphSource struct{ g *commongraph.EvolvingGraph }

func (s graphSource) Run(ctx context.Context, req commongraph.Request) (*commongraph.Result, error) {
	return s.g.Run(ctx, req)
}
func (s graphSource) Window() (int, int, bool) { return 0, s.g.NumSnapshots() - 1, false }
func (s graphSource) Generation() uint64       { return 0 }
func (s graphSource) OnCommit(func(uint64))    {}

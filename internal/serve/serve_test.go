package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"commongraph"
	apiv1 "commongraph/api/v1"
	"commongraph/internal/faults"
)

// testGraph builds a deterministic evolving graph through the public API:
// `snapshots` versions of a 200-vertex graph with edge churn between
// consecutive snapshots.
func testGraph(t *testing.T, snapshots int) *commongraph.EvolvingGraph {
	t.Helper()
	const n = 200
	rng := rand.New(rand.NewSource(7))
	// Edges are identified by (src, dst) alone, so track liveness by key.
	live := make(map[commongraph.Edge]bool)   // W fixed per (src,dst) below
	banned := make(map[commongraph.Edge]bool) // deleted this round: no same-batch re-add
	randEdge := func() commongraph.Edge {
		for {
			src, dst := rng.Intn(n), rng.Intn(n)
			e := commongraph.Edge{
				Src: commongraph.VertexID(src),
				Dst: commongraph.VertexID(dst),
				W:   commongraph.Weight(1 + (src+3*dst)%9), // weight derived from endpoints
			}
			if e.Src != e.Dst && !live[e] && !banned[e] {
				return e
			}
		}
	}
	base := make([]commongraph.Edge, 0, 4*n)
	for len(base) < 4*n {
		e := randEdge()
		live[e] = true
		base = append(base, e)
	}
	g := commongraph.New(n, base)
	for s := 1; s < snapshots; s++ {
		var adds, dels []commongraph.Edge
		clear(banned)
		for e := range live {
			if len(dels) == 20 {
				break
			}
			dels = append(dels, e)
			banned[e] = true
		}
		for _, e := range dels {
			delete(live, e)
		}
		for i := 0; i < 30; i++ {
			e := randEdge()
			live[e] = true
			adds = append(adds, e)
		}
		if _, err := g.ApplyUpdates(adds, dels); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func newTestServer(t *testing.T, src Source, cfg Config) (*Server, *apiv1.Client) {
	t.Helper()
	s := New(src, cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	c, err := apiv1.Dial(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

func checksums(res *apiv1.RunResult) []apiv1.Checksum {
	out := make([]apiv1.Checksum, len(res.Snapshots))
	for i, s := range res.Snapshots {
		out[i] = s.Checksum
	}
	return out
}

func wantChecksums(t *testing.T, g *commongraph.EvolvingGraph, algoName string, source, from, to int) []apiv1.Checksum {
	t.Helper()
	algo, ok := commongraph.AlgorithmByName(algoName)
	if !ok {
		t.Fatalf("no algorithm %q", algoName)
	}
	res, err := g.Run(context.Background(), commongraph.Request{
		Query:    commongraph.Query{Algorithm: algo, Source: commongraph.VertexID(source)},
		Window:   commongraph.Window{From: from, To: to},
		Strategy: commongraph.DirectHop,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]apiv1.Checksum, len(res.Snapshots))
	for i, s := range res.Snapshots {
		out[i] = apiv1.Checksum(s.Checksum)
	}
	return out
}

func equalChecksums(a, b []apiv1.Checksum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServeDifferential: every CommonGraph strategy served over the wire
// matches an uncached in-process evaluation, and a repeated request is a
// cache hit with identical payload.
func TestServeDifferential(t *testing.T) {
	g := testGraph(t, 6)
	_, c := newTestServer(t, GraphSource(g), Config{Workers: 2})
	want := wantChecksums(t, g, "SSSP", 3, 0, 5)
	for _, slug := range []string{"direct-hop", "direct-hop-parallel", "work-sharing", "work-sharing-parallel"} {
		req := &apiv1.RunRequest{Algorithm: "SSSP", Source: 3, Strategy: slug}
		res, err := c.Run(t.Context(), req)
		if err != nil {
			t.Fatalf("%s: %v", slug, err)
		}
		if res.Cached {
			t.Fatalf("%s: first request served from cache", slug)
		}
		if !equalChecksums(checksums(res), want) {
			t.Fatalf("%s: served checksums diverge from uncached evaluation", slug)
		}
		if res.Window != (apiv1.Window{From: 0, To: 5}) {
			t.Fatalf("%s: window = %+v", slug, res.Window)
		}
		again, err := c.Run(t.Context(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Cached {
			t.Fatalf("%s: repeat request missed the cache", slug)
		}
		if !equalChecksums(checksums(again), want) {
			t.Fatalf("%s: cached checksums diverge", slug)
		}
	}
}

// TestServeKeepValues: the values payload survives the int32 -> int64 wire
// conversion exactly.
func TestServeKeepValues(t *testing.T) {
	g := testGraph(t, 3)
	_, c := newTestServer(t, GraphSource(g), Config{Workers: 1})
	res, err := c.Run(t.Context(), &apiv1.RunRequest{Algorithm: "BFS", Source: 0, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := g.Run(context.Background(), commongraph.Request{
		Query:    commongraph.Query{Algorithm: commongraph.BFS, Source: 0},
		Window:   commongraph.Window{From: 0, To: 2},
		Strategy: commongraph.DirectHop,
		Options:  commongraph.Options{KeepValues: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, snap := range res.Snapshots {
		if len(snap.Values) != len(ref.Snapshots[i].Values) {
			t.Fatalf("snapshot %d: %d wire values, want %d", snap.Index, len(snap.Values), len(ref.Snapshots[i].Values))
		}
		for v, val := range snap.Values {
			if val != int64(ref.Snapshots[i].Values[v]) {
				t.Fatalf("snapshot %d vertex %d: wire %d, want %d", snap.Index, v, val, ref.Snapshots[i].Values[v])
			}
		}
	}
}

// TestServeBadRequests pins the bad_request surface.
func TestServeBadRequests(t *testing.T) {
	g := testGraph(t, 6)
	w, err := g.Watch(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	_, c := newTestServer(t, WatchSource(w), Config{Workers: 1})
	for name, req := range map[string]*apiv1.RunRequest{
		"unknown algorithm": {Algorithm: "PageRank"},
		"unknown strategy":  {Algorithm: "BFS", Strategy: "quantum"},
		"window mismatch":   {Algorithm: "BFS", Window: &apiv1.Window{From: 0, To: 5}},
		"kickstarter":       {Algorithm: "BFS", Strategy: "kickstarter"},
	} {
		_, err := c.Run(t.Context(), req)
		var werr *apiv1.Error
		if !errors.As(err, &werr) || werr.Code != apiv1.CodeBadRequest {
			t.Errorf("%s: want bad_request, got %v", name, err)
		}
	}
	// The maintained window, requested explicitly, is accepted.
	if _, err := c.Run(t.Context(), &apiv1.RunRequest{Algorithm: "BFS", Window: &apiv1.Window{From: 1, To: 4}}); err != nil {
		t.Errorf("explicit matching window rejected: %v", err)
	}
}

// TestServeQuota: a tenant exhausting its burst gets quota_exhausted with
// a retry hint while other tenants are unaffected.
func TestServeQuota(t *testing.T) {
	g := testGraph(t, 3)
	hs := httptest.NewServer(New(GraphSource(g), Config{Workers: 1, TenantRate: 0.01, TenantBurst: 2}))
	defer hs.Close()
	a, err := apiv1.Dial(hs.URL, apiv1.WithTenant("team-a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := apiv1.Dial(hs.URL, apiv1.WithTenant("team-b"))
	if err != nil {
		t.Fatal(err)
	}
	req := &apiv1.RunRequest{Algorithm: "BFS", Source: 0}
	for i := 0; i < 2; i++ {
		if _, err := a.Run(t.Context(), req); err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
	}
	_, err = a.Run(t.Context(), req)
	var werr *apiv1.Error
	if !errors.As(err, &werr) || werr.Code != apiv1.CodeQuotaExhausted {
		t.Fatalf("want quota_exhausted, got %v", err)
	}
	if werr.RetryAfterMillis <= 0 {
		t.Fatalf("quota denial carries no retry hint: %+v", werr)
	}
	if _, err := b.Run(t.Context(), req); err != nil {
		t.Fatalf("team-b throttled by team-a's bucket: %v", err)
	}
}

// blockingSource lets the test hold requests inside Run to fill the
// admission queue deterministically.
type blockingSource struct {
	release chan struct{}
	entered chan struct{}
}

func (s *blockingSource) Run(ctx context.Context, req commongraph.Request) (*commongraph.Result, error) {
	s.entered <- struct{}{}
	select {
	case <-s.release:
		return &commongraph.Result{Strategy: req.Strategy}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
func (s *blockingSource) Window() (int, int, bool) { return 0, 0, false }
func (s *blockingSource) Generation() uint64       { return 0 }
func (s *blockingSource) OnCommit(func(uint64))    {}

// TestServeQueueFull: with one worker and a one-deep queue, the third
// concurrent request is shed with queue_full + Retry-After, and a queued
// client that gives up gets canceled.
func TestServeQueueFull(t *testing.T) {
	src := &blockingSource{release: make(chan struct{}), entered: make(chan struct{}, 1)}
	s, c := newTestServer(t, src, Config{Workers: 1, QueueDepth: 1, CacheEntries: -1, DisableSharing: true})
	req := &apiv1.RunRequest{Algorithm: "BFS", Source: 0}

	done := make(chan error, 2)
	go func() { _, err := c.Run(context.Background(), req); done <- err }()
	<-src.entered // first request is executing

	queuedCtx, cancelQueued := context.WithCancel(context.Background())
	go func() { _, err := c.Run(queuedCtx, req); done <- err }()
	for i := 0; i < 200; i++ { // wait until the second request occupies the queue slot
		if s.queued.Load() == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.queued.Load(); got != 2 {
		t.Fatalf("queue depth = %d, want 2", got)
	}
	if ready, _ := s.Ready(); ready {
		t.Fatal("server claims ready with a saturated queue")
	}

	_, err := c.Run(t.Context(), req)
	var werr *apiv1.Error
	if !errors.As(err, &werr) || werr.Code != apiv1.CodeQueueFull {
		t.Fatalf("want queue_full, got %v", err)
	}
	if werr.RetryAfterMillis <= 0 {
		t.Fatalf("queue_full denial carries no retry hint: %+v", werr)
	}

	cancelQueued() // the queued request gives up while waiting for a slot
	if err := <-done; err == nil {
		t.Fatal("canceled queued request reported success")
	}
	close(src.release)
	if err := <-done; err != nil {
		t.Fatalf("first request: %v", err)
	}
	if ready, _ := s.Ready(); !ready {
		t.Fatal("server not ready after the queue drained")
	}
}

// TestServeInvalidationRace: a window commit landing exactly between an
// evaluation and its cache insert must never let the stale result be
// served at the new generation. The faults observer performs the commit at
// the serve.cache-insert kill point while the insert proceeds — the
// insert's key carries the pre-commit generation, so the next request must
// miss and recompute against the advanced window.
func TestServeInvalidationRace(t *testing.T) {
	g := testGraph(t, 8)
	w, err := g.Watch(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s, c := newTestServer(t, WatchSource(w), Config{Workers: 1})

	var committed atomic.Bool
	disarm := faults.Arm(&faults.Plan{Observer: func(p faults.Point, hit int) {
		if p == faults.ServeCacheInsert && committed.CompareAndSwap(false, true) {
			if err := w.Slide(); err != nil {
				t.Errorf("slide at kill point: %v", err)
			}
		}
	}})
	defer disarm()

	req := &apiv1.RunRequest{Algorithm: "SSSP", Source: 3}
	first, err := c.Run(t.Context(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !committed.Load() {
		t.Fatal("kill point never hit: the race under test did not happen")
	}
	if first.Cached {
		t.Fatal("first request served from cache")
	}
	if s.cache.len() != 1 {
		t.Fatalf("stale insert did not land (cache len %d) - race not exercised", s.cache.len())
	}

	second, err := c.Run(t.Context(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("request after commit served the stale cached generation")
	}
	if second.Generation <= first.Generation {
		t.Fatalf("generation did not advance: %d -> %d", first.Generation, second.Generation)
	}
	if second.Window != (apiv1.Window{From: 1, To: 4}) {
		t.Fatalf("post-commit window = %+v, want [1,4]", second.Window)
	}
	if equalChecksums(checksums(first), checksums(second)) {
		t.Fatal("advanced window produced identical checksums; commit had no effect")
	}
	if want := wantChecksums(t, g, "SSSP", 3, 1, 4); !equalChecksums(checksums(second), want) {
		t.Fatal("post-commit result diverges from uncached evaluation of the new window")
	}
	// And the recomputed result is now cached at the new generation.
	third, err := c.Run(t.Context(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached || !equalChecksums(checksums(third), checksums(second)) {
		t.Fatal("fresh generation not cached correctly")
	}
}

// TestServeSharedWork: N service requests with overlapping windows do one
// common-graph solve between them. Windows are pre-announced so the
// sharing layer sees the whole batch regardless of request arrival order —
// the service does the same announcement per request at admission.
func TestServeSharedWork(t *testing.T) {
	g := testGraph(t, 10)
	s, c := newTestServer(t, GraphSource(g), Config{Workers: 8, CacheEntries: -1})

	windows := make([]apiv1.Window, 8)
	for i := range windows {
		windows[i] = apiv1.Window{From: i / 4, To: 5 + i/2} // all overlap pairwise
		release := s.PlanCache().Announce(commongraph.Window{From: windows[i].From, To: windows[i].To})
		defer release()
	}
	var wg sync.WaitGroup
	errs := make([]error, len(windows))
	results := make([]*apiv1.RunResult, len(windows))
	for i, win := range windows {
		wg.Add(1)
		go func(i int, win apiv1.Window) {
			defer wg.Done()
			results[i], errs[i] = c.Run(context.Background(), &apiv1.RunRequest{
				Algorithm: "SSSP", Source: 9, Window: &win, Strategy: "direct-hop",
			})
		}(i, win)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		want := wantChecksums(t, g, "SSSP", 9, windows[i].From, windows[i].To)
		if !equalChecksums(checksums(results[i]), want) {
			t.Fatalf("request %d: shared evaluation diverges from uncached", i)
		}
	}
	st := s.PlanCache().Stats()
	if st.Solves != 1 {
		t.Fatalf("%d from-scratch common-graph solves for %d overlapping requests, want exactly 1 (stats %+v)",
			st.Solves, len(windows), st)
	}
	if st.Derives+st.Shared < uint64(len(windows)-1) {
		t.Fatalf("sharing layer reused too little: %+v", st)
	}
}

// TestServeSoak: mixed tenants, overlapping windows, and live commits
// under full concurrency. Every response must be a success, a quota/queue
// shed, or a clean cancelation — never an internal error — and successes
// must carry a coherent window for their generation.
func TestServeSoak(t *testing.T) {
	g := testGraph(t, 12)
	w, err := g.Watch(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	hs := httptest.NewServer(New(WatchSource(w), Config{Workers: 4, QueueDepth: 8, TenantRate: 500, TenantBurst: 100}))
	defer hs.Close()

	var (
		wg    sync.WaitGroup
		ok    atomic.Int64
		hits  atomic.Int64
		sheds atomic.Int64
	)
	for tn := 0; tn < 3; tn++ {
		c, err := apiv1.Dial(hs.URL, apiv1.WithTenant(fmt.Sprintf("tenant-%d", tn)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(c *apiv1.Client, seed int) {
				defer wg.Done()
				algos := []string{"BFS", "SSSP", "SSWP"}
				for n := 0; n < 25; n++ {
					res, err := c.Run(context.Background(), &apiv1.RunRequest{
						Algorithm: algos[(seed+n)%len(algos)],
						Source:    (seed*31 + n) % 200,
					})
					if err != nil {
						var werr *apiv1.Error
						if errors.As(err, &werr) &&
							(werr.Code == apiv1.CodeQuotaExhausted || werr.Code == apiv1.CodeQueueFull) {
							sheds.Add(1)
							continue
						}
						t.Errorf("soak request: %v", err)
						return
					}
					ok.Add(1)
					if res.Cached {
						hits.Add(1)
					}
					if res.Window.To-res.Window.From != 5 {
						t.Errorf("soak response window %+v is not 6 snapshots wide", res.Window)
						return
					}
				}
			}(c, tn*4+i)
		}
	}
	stop := make(chan struct{})
	var ingestWG sync.WaitGroup
	ingestWG.Add(1)
	go func() { // live ingest: advance the window while serving
		defer ingestWG.Done()
		for i := 0; i < 6; i++ { // 12 snapshots, window width 6: room for 6 slides
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				if err := w.Slide(); err != nil {
					t.Errorf("slide under load: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	ingestWG.Wait()
	if ok.Load() == 0 {
		t.Fatal("soak made no successful requests")
	}
	t.Logf("soak: %d ok (%d cache hits), %d shed", ok.Load(), hits.Load(), sheds.Load())
}

package gen

import "commongraph/internal/graph"

// MaxWeight is the number of distinct edge weights; WeightOf yields values
// in [1, MaxWeight].
const MaxWeight = 100

// WeightOf deterministically derives an edge's weight from its endpoints,
// so an edge deleted and later re-added always carries the same weight
// (edge identity is by endpoints throughout the system).
func WeightOf(src, dst graph.VertexID) graph.Weight {
	z := uint64(graph.MakeKey(src, dst))
	z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCD
	z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53
	z ^= z >> 33
	return graph.Weight(1 + z%MaxWeight)
}

// RMATConfig parametrizes the recursive-matrix generator of Chakrabarti
// et al., the standard stand-in for power-law web/social graphs.
type RMATConfig struct {
	Scale       int     // number of vertices is 1 << Scale
	Edges       int     // number of distinct directed edges to produce
	A, B, C     float64 // quadrant probabilities; D = 1-A-B-C
	Seed        uint64
	NoSelfLoops bool
}

// DefaultRMAT returns the conventional (0.57, 0.19, 0.19) skew used by
// Graph500, which yields heavy-tailed degree distributions like the
// paper's social/web inputs.
func DefaultRMAT(scale, edges int, seed uint64) RMATConfig {
	return RMATConfig{Scale: scale, Edges: edges, A: 0.57, B: 0.19, C: 0.19, Seed: seed, NoSelfLoops: true}
}

// RMAT generates a canonical edge list with cfg.Edges distinct edges over
// 1<<cfg.Scale vertices. Duplicates produced by the recursive process are
// rejected and regenerated so the output size is exact.
func RMAT(cfg RMATConfig) (n int, edges graph.EdgeList) {
	n = 1 << cfg.Scale
	r := NewRNG(cfg.Seed)
	seen := make(map[graph.EdgeKey]struct{}, cfg.Edges)
	edges = make(graph.EdgeList, 0, cfg.Edges)
	for len(edges) < cfg.Edges {
		src, dst := rmatPoint(r, cfg)
		if cfg.NoSelfLoops && src == dst {
			continue
		}
		k := graph.MakeKey(src, dst)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		edges = append(edges, graph.Edge{Src: src, Dst: dst, W: WeightOf(src, dst)})
	}
	edges.Sort()
	return n, edges
}

// rmatPoint draws one (src, dst) pair by recursive quadrant descent.
func rmatPoint(r *RNG, cfg RMATConfig) (graph.VertexID, graph.VertexID) {
	var src, dst uint32
	for bit := cfg.Scale - 1; bit >= 0; bit-- {
		p := r.Float64()
		switch {
		case p < cfg.A:
			// top-left: no bits set
		case p < cfg.A+cfg.B:
			dst |= 1 << uint(bit)
		case p < cfg.A+cfg.B+cfg.C:
			src |= 1 << uint(bit)
		default:
			src |= 1 << uint(bit)
			dst |= 1 << uint(bit)
		}
	}
	return graph.VertexID(src), graph.VertexID(dst)
}

// Uniform generates a canonical list of m distinct uniform random edges
// over n vertices (an Erdős–Rényi-style stand-in for road-like graphs).
func Uniform(n, m int, seed uint64) graph.EdgeList {
	r := NewRNG(seed)
	seen := make(map[graph.EdgeKey]struct{}, m)
	edges := make(graph.EdgeList, 0, m)
	for len(edges) < m {
		src := graph.VertexID(r.Intn(n))
		dst := graph.VertexID(r.Intn(n))
		if src == dst {
			continue
		}
		k := graph.MakeKey(src, dst)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		edges = append(edges, graph.Edge{Src: src, Dst: dst, W: WeightOf(src, dst)})
	}
	edges.Sort()
	return edges
}

package gen

import (
	"testing"
	"testing/quick"

	"commongraph/internal/graph"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d/1000 times", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Bounds(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestWeightOfStableAndInRange(t *testing.T) {
	f := func(src, dst uint32) bool {
		w1 := WeightOf(graph.VertexID(src), graph.VertexID(dst))
		w2 := WeightOf(graph.VertexID(src), graph.VertexID(dst))
		return w1 == w2 && w1 >= 1 && w1 <= MaxWeight
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRMATShape(t *testing.T) {
	n, edges := RMAT(DefaultRMAT(10, 5000, 7))
	if n != 1024 {
		t.Fatalf("n=%d", n)
	}
	if len(edges) != 5000 {
		t.Fatalf("m=%d", len(edges))
	}
	if !edges.IsCanonical() {
		t.Fatal("not canonical")
	}
	for _, e := range edges {
		if e.Src == e.Dst {
			t.Fatalf("self loop %v", e)
		}
		if int(e.Src) >= n || int(e.Dst) >= n {
			t.Fatalf("vertex out of range %v", e)
		}
		if e.W != WeightOf(e.Src, e.Dst) {
			t.Fatalf("weight not canonical for %v", e)
		}
	}
	// Power-law skew: the max out-degree should far exceed the average.
	s := graph.ComputeStats("rmat", n, edges)
	if float64(s.MaxOutDeg) < 5*s.AvgDegree {
		t.Fatalf("R-MAT not skewed: max=%d avg=%.1f", s.MaxOutDeg, s.AvgDegree)
	}
}

func TestRMATDeterminism(t *testing.T) {
	_, a := RMAT(DefaultRMAT(9, 2000, 5))
	_, b := RMAT(DefaultRMAT(9, 2000, 5))
	if !graph.Equal(a, b) {
		t.Fatal("same config produced different graphs")
	}
	_, c := RMAT(DefaultRMAT(9, 2000, 6))
	if graph.Equal(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestUniform(t *testing.T) {
	edges := Uniform(100, 500, 3)
	if len(edges) != 500 || !edges.IsCanonical() {
		t.Fatalf("m=%d", len(edges))
	}
	for _, e := range edges {
		if e.Src == e.Dst || int(e.Src) >= 100 || int(e.Dst) >= 100 {
			t.Fatalf("bad edge %v", e)
		}
	}
}

func TestStreamInvariants(t *testing.T) {
	n, base := RMAT(DefaultRMAT(10, 4000, 11))
	cfg := StreamConfig{Transitions: 10, Additions: 50, Deletions: 50, Seed: 21}
	trs, err := Stream(n, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 10 {
		t.Fatalf("transitions=%d", len(trs))
	}
	cur := base.KeySet()
	for i, tr := range trs {
		if len(tr.Additions) != 50 || len(tr.Deletions) != 50 {
			t.Fatalf("transition %d sizes: +%d -%d", i, len(tr.Additions), len(tr.Deletions))
		}
		for _, e := range tr.Deletions {
			if _, ok := cur[e.Key()]; !ok {
				t.Fatalf("transition %d deletes absent edge %v", i, e)
			}
			delete(cur, e.Key())
		}
		for _, e := range tr.Additions {
			if _, ok := cur[e.Key()]; ok {
				t.Fatalf("transition %d adds present edge %v", i, e)
			}
			cur[e.Key()] = struct{}{}
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	n, base := RMAT(DefaultRMAT(9, 2000, 1))
	cfg := StreamConfig{Transitions: 5, Additions: 20, Deletions: 20, Seed: 8}
	a, _ := Stream(n, base, cfg)
	b, _ := Stream(n, base, cfg)
	for i := range a {
		if !graph.Equal(a[i].Additions, b[i].Additions) || !graph.Equal(a[i].Deletions, b[i].Deletions) {
			t.Fatalf("transition %d differs", i)
		}
	}
}

func TestStreamDrainGuard(t *testing.T) {
	_, base := RMAT(DefaultRMAT(8, 100, 1))
	_, err := Stream(256, base, StreamConfig{Transitions: 10, Additions: 0, Deletions: 90, Seed: 1})
	if err == nil {
		t.Fatal("expected drain error")
	}
}

func TestApply(t *testing.T) {
	base := graph.EdgeList{
		{Src: 0, Dst: 1, W: 1},
		{Src: 1, Dst: 2, W: 1},
	}.Canonicalize()
	trs := []Transition{
		{Additions: graph.EdgeList{{Src: 2, Dst: 3, W: 1}}, Deletions: graph.EdgeList{{Src: 0, Dst: 1, W: 1}}},
		{Additions: graph.EdgeList{{Src: 0, Dst: 1, W: 1}}, Deletions: nil},
	}
	got := Apply(base, trs)
	want := graph.EdgeList{
		{Src: 0, Dst: 1, W: 1},
		{Src: 1, Dst: 2, W: 1},
		{Src: 2, Dst: 3, W: 1},
	}
	if !graph.Equal(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestStandIns(t *testing.T) {
	if len(StandIns) != 4 {
		t.Fatalf("want 4 stand-ins, got %d", len(StandIns))
	}
	if _, ok := ByName("LJ-sim"); !ok {
		t.Fatal("LJ-sim missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("phantom stand-in")
	}
	// Build the smallest one and sanity-check shape (others are the same
	// code path with bigger numbers).
	s, _ := ByName("LJ-sim")
	n, edges := s.Build(0) // factor < 1 clamps to 1
	if n != 1<<s.Scale || len(edges) != s.Edges {
		t.Fatalf("n=%d m=%d", n, len(edges))
	}
}

func TestStandInScalingPreservesDegree(t *testing.T) {
	// Scaling a stand-in by 4x must quadruple edges AND vertices so the
	// average degree (the paper's Table 2 shape) is preserved.
	s, _ := ByName("LJ-sim")
	n1, e1 := s.Build(1)
	n4, e4 := s.Build(4)
	if n4 != 4*n1 {
		t.Fatalf("vertices %d -> %d, want 4x", n1, n4)
	}
	if len(e4) != 4*len(e1) {
		t.Fatalf("edges %d -> %d, want 4x", len(e1), len(e4))
	}
	d1 := float64(len(e1)) / float64(n1)
	d4 := float64(len(e4)) / float64(n4)
	if d1/d4 > 1.01 || d4/d1 > 1.01 {
		t.Fatalf("degree drifted: %.2f -> %.2f", d1, d4)
	}
}

package gen

import "commongraph/internal/graph"

// StandIn is a named scaled-down replacement for one of the paper's input
// graphs (Table 2). The vertex/edge counts keep roughly the original
// average-degree ratios at 1/400–1/2000 of the original size, so the
// experiments run at laptop scale while exercising the same skew.
type StandIn struct {
	Name   string // paper's abbreviation, with -sim suffix
	PaperV string // original vertex count, for documentation
	PaperE string // original edge count, for documentation
	Scale  int    // R-MAT scale (vertices = 1<<Scale)
	Edges  int
	Seed   uint64
}

// StandIns mirrors Table 2. Average degrees: LJ 28.26, DL 18.85 (low),
// Wen 64.32 (high), TTW 70.51 (high, largest).
var StandIns = []StandIn{
	{Name: "LJ-sim", PaperV: "4M", PaperE: "70M", Scale: 14, Edges: 440_000, Seed: 0xBEEF01},
	{Name: "DL-sim", PaperV: "18M", PaperE: "170M", Scale: 15, Edges: 600_000, Seed: 0xBEEF02},
	{Name: "Wen-sim", PaperV: "13M", PaperE: "400M", Scale: 14, Edges: 1_000_000, Seed: 0xBEEF03},
	{Name: "TTW-sim", PaperV: "41M", PaperE: "1.5B", Scale: 15, Edges: 2_200_000, Seed: 0xBEEF04},
}

// ByName returns the stand-in with the given name, or false.
func ByName(name string) (StandIn, bool) {
	for _, s := range StandIns {
		if s.Name == name {
			return s, true
		}
	}
	return StandIn{}, false
}

// Build generates the stand-in's base graph scaled by the given factor
// (scale ≥ 1 multiplies edge counts; vertex count doubles per factor of 2
// so the average degree — the paper's Table 2 shape — is preserved).
func (s StandIn) Build(sizeFactor float64) (n int, edges graph.EdgeList) {
	if sizeFactor < 1 {
		sizeFactor = 1
	}
	cfg := DefaultRMAT(s.Scale, int(float64(s.Edges)*sizeFactor), s.Seed)
	for f := sizeFactor; f >= 2; f /= 2 {
		cfg.Scale++
	}
	return RMAT(cfg)
}

// Package gen generates deterministic synthetic workloads: power-law
// (R-MAT) base graphs standing in for the paper's input graphs (Table 2),
// and evolving update streams — per-transition batches of edge additions
// and deletions — standing in for the paper's snapshot sequences.
//
// Everything is seeded and reproducible: a (seed, parameters) pair always
// yields the same workload, so experiments are repeatable.
package gen

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64 core). It is deliberately self-contained so workloads are
// reproducible regardless of Go runtime or math/rand version.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Distinct seeds give independent streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split derives an independent child generator; the parent advances once.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

package gen

import (
	"fmt"

	"commongraph/internal/graph"
)

// Transition is one step of an evolving graph: applying Additions and
// Deletions to snapshot i yields snapshot i+1.
type Transition struct {
	Additions graph.EdgeList
	Deletions graph.EdgeList
}

// StreamConfig parametrizes an evolving update stream.
type StreamConfig struct {
	Transitions int // number of transitions (snapshots - 1)
	Additions   int // edges added per transition
	Deletions   int // edges deleted per transition
	Seed        uint64
}

// Stream generates cfg.Transitions transitions for an evolving graph that
// starts from base (canonical) over n vertices. Deletions are sampled
// uniformly from the current edge set; additions are distinct new edges not
// currently present. Edge weights come from WeightOf, so identity is stable
// across delete/re-add. The base list itself is not modified.
func Stream(n int, base graph.EdgeList, cfg StreamConfig) ([]Transition, error) {
	if cfg.Deletions*cfg.Transitions > len(base) {
		// Not a hard bound (additions replenish the pool), but guards
		// against degenerate configurations that would drain the graph.
		if cfg.Deletions > len(base)/2 {
			return nil, fmt.Errorf("gen: %d deletions per transition would drain a %d-edge graph", cfg.Deletions, len(base))
		}
	}
	r := NewRNG(cfg.Seed)
	current := make(map[graph.EdgeKey]struct{}, len(base))
	pool := make([]graph.EdgeKey, 0, len(base)+cfg.Transitions*cfg.Additions)
	for _, e := range base {
		k := e.Key()
		current[k] = struct{}{}
		pool = append(pool, k)
	}
	out := make([]Transition, 0, cfg.Transitions)
	for t := 0; t < cfg.Transitions; t++ {
		var tr Transition
		// Deletions: sample distinct live edges from the pool. The pool may
		// contain stale keys (already deleted); skip them.
		dels := make(map[graph.EdgeKey]struct{}, cfg.Deletions)
		for len(dels) < cfg.Deletions {
			k := pool[r.Intn(len(pool))]
			if _, live := current[k]; !live {
				continue
			}
			if _, dup := dels[k]; dup {
				continue
			}
			dels[k] = struct{}{}
		}
		for k := range dels {
			delete(current, k)
			tr.Deletions = append(tr.Deletions, graph.Edge{Src: k.Src(), Dst: k.Dst(), W: WeightOf(k.Src(), k.Dst())})
		}
		// Additions: distinct edges absent from the current graph and from
		// this transition's deletions (an edge deleted and re-added in the
		// same batch would be ambiguous).
		for added := 0; added < cfg.Additions; {
			src := graph.VertexID(r.Intn(n))
			dst := graph.VertexID(r.Intn(n))
			if src == dst {
				continue
			}
			k := graph.MakeKey(src, dst)
			if _, present := current[k]; present {
				continue
			}
			if _, deleted := dels[k]; deleted {
				continue
			}
			current[k] = struct{}{}
			pool = append(pool, k)
			tr.Additions = append(tr.Additions, graph.Edge{Src: src, Dst: dst, W: WeightOf(src, dst)})
			added++
		}
		tr.Additions = tr.Additions.Canonicalize()
		tr.Deletions = tr.Deletions.Canonicalize()
		out = append(out, tr)
	}
	return out, nil
}

// Apply materializes the snapshot reached by applying transitions[0:k] to
// base. It is a reference implementation used by tests and the snapshot
// store; O(|E|) per call.
func Apply(base graph.EdgeList, transitions []Transition) graph.EdgeList {
	cur := base.Clone().Canonicalize()
	for _, tr := range transitions {
		cur = graph.Union(graph.Minus(cur, tr.Deletions), tr.Additions)
	}
	return cur
}

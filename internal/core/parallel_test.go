package core

import (
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
)

func TestWorkSharingParallelMatchesSequential(t *testing.T) {
	s, n := randomStore(211, 8, 50, 50)
	rep, err := BuildRep(Window{Store: s, From: 0, To: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algo.All() {
		cfg := Config{Algo: a, Source: 0, KeepValues: true}
		seq, _, err := EvaluateWorkSharing(rep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		par, sched, err := EvaluateWorkSharingParallel(rep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if par.AdditionsProcessed != seq.AdditionsProcessed {
			t.Fatalf("%s: parallel streamed %d additions, sequential %d",
				a.Name(), par.AdditionsProcessed, seq.AdditionsProcessed)
		}
		if sched == nil || par.MaxHopTime <= 0 {
			t.Fatalf("%s: missing schedule or subtree timing", a.Name())
		}
		for k := range seq.Snapshots {
			if seq.Snapshots[k].Checksum != par.Snapshots[k].Checksum {
				t.Fatalf("%s: snapshot %d checksum differs", a.Name(), k)
			}
			for v := 0; v < n; v++ {
				if seq.Snapshots[k].Values[v] != par.Snapshots[k].Values[v] {
					t.Fatalf("%s: snapshot %d vertex %d differs", a.Name(), k, v)
				}
			}
		}
	}
}

func TestWorkSharingParallelBoundedParallelism(t *testing.T) {
	s, _ := randomStore(223, 6, 40, 40)
	rep, err := BuildRep(Window{Store: s, From: 0, To: 6})
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := EvaluateWorkSharing(rep, Config{Algo: algo.BFS{}, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := EvaluateWorkSharingParallel(rep, Config{Algo: algo.BFS{}, Source: 0, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k := range seq.Snapshots {
		if seq.Snapshots[k].Checksum != par.Snapshots[k].Checksum {
			t.Fatalf("snapshot %d differs under bounded parallelism", k)
		}
	}
}

func TestWorkSharingParallelSingleSnapshot(t *testing.T) {
	s, _ := randomStore(227, 3, 20, 20)
	rep, err := BuildRep(Window{Store: s, From: 1, To: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := EvaluateWorkSharingParallel(rep, Config{Algo: algo.SSWP{}, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) != 1 {
		t.Fatalf("snapshots=%d", len(res.Snapshots))
	}
}

func TestWorkSharingParallelWidthMismatch(t *testing.T) {
	s, _ := randomStore(229, 4, 20, 20)
	rep, _ := BuildRep(Window{Store: s, From: 0, To: 4})
	tgSmall, _ := BuildTG(Window{Store: s, From: 0, To: 2})
	sched, err := NewSchedule(tgSmall, SteinerGreedy(tgSmall))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WorkSharingParallel(rep, tgSmall, sched, Config{Algo: algo.BFS{}, Source: 0}); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestEvaluateMany(t *testing.T) {
	s, n := randomStore(233, 6, 40, 40)
	rep, err := BuildRep(Window{Store: s, From: 0, To: 6})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Config{
		{Algo: algo.BFS{}, Source: 0, KeepValues: true},
		{Algo: algo.SSSP{}, Source: 5, KeepValues: true},
		{Algo: algo.SSWP{}, Source: 9, KeepValues: true},
	}
	results, sched, err := EvaluateMany(rep, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || sched == nil {
		t.Fatalf("results=%d", len(results))
	}
	for qi, q := range queries {
		for k := 0; k <= 6; k++ {
			snap, _ := s.GetVersion(k)
			ref := engine.Reference(graph.NewPair(n, snap), q.Algo, q.Source)
			for v := 0; v < n; v++ {
				if results[qi].Snapshots[k].Values[v] != ref[v] {
					t.Fatalf("query %d (%s from %d): snapshot %d vertex %d differs",
						qi, q.Algo.Name(), q.Source, k, v)
				}
			}
		}
	}
}

func TestOptimalScheduleOption(t *testing.T) {
	s, _ := randomStore(241, 10, 40, 40)
	rep, err := BuildRep(Window{Store: s, From: 0, To: 10})
	if err != nil {
		t.Fatal(err)
	}
	greedy, gSched, err := EvaluateWorkSharing(rep, Config{Algo: algo.SSSP{}, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	optimal, oSched, err := EvaluateWorkSharing(rep, Config{Algo: algo.SSSP{}, Source: 0, OptimalSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	if oSched.Cost > gSched.Cost {
		t.Fatalf("optimal schedule cost %d exceeds greedy %d", oSched.Cost, gSched.Cost)
	}
	if optimal.AdditionsProcessed > greedy.AdditionsProcessed {
		t.Fatalf("optimal streamed more: %d vs %d", optimal.AdditionsProcessed, greedy.AdditionsProcessed)
	}
	for k := range greedy.Snapshots {
		if greedy.Snapshots[k].Checksum != optimal.Snapshots[k].Checksum {
			t.Fatalf("schedules disagree at snapshot %d", k)
		}
	}
}

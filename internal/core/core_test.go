package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"commongraph/internal/algo"
	"commongraph/internal/engine"
	"commongraph/internal/gen"
	"commongraph/internal/graph"
	"commongraph/internal/snapshot"
)

// randomStore builds a small evolving graph with the given number of
// transitions.
func randomStore(seed uint64, transitions, adds, dels int) (*snapshot.Store, int) {
	n, base := gen.RMAT(gen.DefaultRMAT(8, 900, seed))
	trs, err := gen.Stream(n, base, gen.StreamConfig{
		Transitions: transitions, Additions: adds, Deletions: dels, Seed: seed + 1,
	})
	if err != nil {
		panic(err)
	}
	s := snapshot.NewStore(n, base)
	for _, tr := range trs {
		if _, err := s.NewVersion(tr.Additions, tr.Deletions); err != nil {
			panic(err)
		}
	}
	return s, n
}

// bruteCommon intersects materialized snapshots — the oracle for E_c and
// for every intermediate common graph C[i,j].
func bruteCommon(t *testing.T, s *snapshot.Store, from, to int) graph.EdgeList {
	t.Helper()
	cur, err := s.GetVersion(from)
	if err != nil {
		t.Fatal(err)
	}
	for v := from + 1; v <= to; v++ {
		next, err := s.GetVersion(v)
		if err != nil {
			t.Fatal(err)
		}
		cur = graph.Intersect(cur, next)
	}
	return cur
}

func TestBuildRepMatchesBruteIntersection(t *testing.T) {
	f := func(seed int64) bool {
		s, _ := randomStore(uint64(seed), 6, 40, 40)
		w := Window{Store: s, From: 1, To: 5} // not starting at 0, on purpose
		rep, err := BuildRep(w)
		if err != nil {
			return false
		}
		if !graph.Equal(rep.Common, bruteCommon(t, s, 1, 5)) {
			return false
		}
		// Deltas[k] must turn the common graph into snapshot From+k.
		for k := 0; k < w.Width(); k++ {
			snap, _ := s.GetVersion(w.From + k)
			if !graph.Equal(graph.Union(rep.Common, rep.Deltas[k].Edges()), snap) {
				return false
			}
			// ... and the overlay view must present exactly that snapshot.
			if !graph.Equal(rep.SnapshotGraph(k).Edges(), snap) {
				return false
			}
			// Deltas must be disjoint from the common graph.
			if len(graph.Intersect(rep.Common, rep.Deltas[k].Edges())) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowValidate(t *testing.T) {
	s, _ := randomStore(3, 3, 10, 10)
	bad := []Window{
		{Store: nil, From: 0, To: 1},
		{Store: s, From: -1, To: 2},
		{Store: s, From: 0, To: 99},
		{Store: s, From: 2, To: 1},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Fatalf("window %+v should be invalid", w)
		}
		if _, err := BuildRep(w); err == nil {
			t.Fatalf("BuildRep(%+v) should fail", w)
		}
		if _, err := BuildTG(w); err == nil {
			t.Fatalf("BuildTG(%+v) should fail", w)
		}
	}
	good := Window{Store: s, From: 0, To: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Width() != 4 {
		t.Fatalf("width=%d", good.Width())
	}
}

func TestTGLabelsMatchBruteIntersections(t *testing.T) {
	// Every grid edge label must equal C[to] \ C[from] computed by brute
	// force, and LabelSize must agree with the materialized set.
	s, _ := randomStore(11, 5, 30, 30)
	w := Window{Store: s, From: 0, To: 4}
	tg, err := BuildTG(w)
	if err != nil {
		t.Fatal(err)
	}
	var all []GridEdge
	for j := 1; j < tg.W; j++ {
		for i := 0; i+j <= tg.W-1; i++ {
			all = append(all, GridEdge{I: i, J: i + j, Left: true}, GridEdge{I: i, J: i + j, Left: false})
		}
	}
	labels := tg.Labels(all)
	for _, e := range all {
		fi, fj := e.From()
		ti, tj := e.To()
		want := graph.Minus(bruteCommon(t, s, ti, tj), bruteCommon(t, s, fi, fj))
		if !graph.Equal(labels[e], want) {
			t.Fatalf("label %v: got %d edges want %d", e, len(labels[e]), len(want))
		}
		if tg.LabelSize(e) != int64(len(want)) {
			t.Fatalf("size %v: got %d want %d", e, tg.LabelSize(e), len(want))
		}
	}
}

func TestGridEdgeEndpoints(t *testing.T) {
	e := GridEdge{I: 1, J: 4, Left: true}
	if ti, tj := e.To(); ti != 1 || tj != 3 {
		t.Fatalf("left to = [%d,%d]", ti, tj)
	}
	e.Left = false
	if ti, tj := e.To(); ti != 2 || tj != 4 {
		t.Fatalf("right to = [%d,%d]", ti, tj)
	}
	if e.String() != "[1,4]->[2,4]" {
		t.Fatalf("string = %q", e.String())
	}
}

func TestSteinerSolversAgainstBrute(t *testing.T) {
	// On random small windows: brute is optimal; DP and greedy must span
	// all leaves; DP ≥ brute and greedy ≥ brute; empirically the interval
	// DP matches brute on these instances.
	f := func(seed int64) bool {
		s, _ := randomStore(uint64(seed), 5, 25, 25)
		tg, err := BuildTG(Window{Store: s, From: 0, To: 5})
		if err != nil {
			return false
		}
		brute := SteinerBrute(tg)
		greedy := SteinerGreedy(tg)
		dp := SteinerIntervalDP(tg)
		if !brute.SpansAllLeaves() || !greedy.SpansAllLeaves() || !dp.SpansAllLeaves() {
			return false
		}
		if greedy.Cost < brute.Cost || dp.Cost < brute.Cost {
			return false // brute must be a true lower bound
		}
		if dp.Cost != brute.Cost {
			return false // contiguous-split DP has matched brute on all tested instances
		}
		// Both must beat or match the no-sharing direct-hop schedule.
		direct := DirectHopSchedule(tg)
		return greedy.Cost <= direct.Cost && brute.Cost <= direct.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestSteinerSingleSnapshotWindow(t *testing.T) {
	s, _ := randomStore(5, 2, 10, 10)
	tg, err := BuildTG(Window{Store: s, From: 1, To: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tree := range []*SteinerTree{SteinerGreedy(tg), SteinerIntervalDP(tg), SteinerBrute(tg)} {
		if tree.Cost != 0 || len(tree.Edges) != 0 || !tree.SpansAllLeaves() {
			t.Fatalf("degenerate tree: %+v", tree)
		}
	}
	sched, err := NewSchedule(tg, SteinerGreedy(tg))
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Root.IsLeaf() {
		t.Fatal("single-snapshot schedule should be a lone leaf")
	}
}

func TestScheduleRejectsNonSpanningTree(t *testing.T) {
	s, _ := randomStore(6, 3, 15, 15)
	tg, _ := BuildTG(Window{Store: s, From: 0, To: 3})
	broken := &SteinerTree{W: tg.W, Edges: []GridEdge{{I: 0, J: 3, Left: true}}}
	if _, err := NewSchedule(tg, broken); err == nil {
		t.Fatal("expected error for non-spanning tree")
	}
}

func TestScheduleLeavesAndCost(t *testing.T) {
	s, _ := randomStore(7, 6, 25, 25)
	tg, _ := BuildTG(Window{Store: s, From: 0, To: 6})
	sched, err := NewSchedule(tg, SteinerGreedy(tg))
	if err != nil {
		t.Fatal(err)
	}
	leaves := sched.Leaves()
	if len(leaves) != 7 {
		t.Fatalf("leaves=%d", len(leaves))
	}
	for k, l := range leaves {
		if l.I != k || l.J != k {
			t.Fatalf("leaf %d = [%d,%d]", k, l.I, l.J)
		}
	}
	// The direct-hop schedule's per-leaf batches must equal Rep.Deltas.
	rep, err := BuildRep(Window{Store: s, From: 0, To: 6})
	if err != nil {
		t.Fatal(err)
	}
	dh := DirectHopSchedule(tg)
	labels := tg.Labels(dh.GridEdges())
	for k, e := range dh.Root.Edges {
		var batch graph.EdgeList
		for _, span := range e.Spans {
			batch = graph.Union(batch, labels[span])
		}
		if !graph.Equal(batch, rep.Deltas[k].Edges()) {
			t.Fatalf("direct-hop batch %d differs from Δc%d", k, k)
		}
	}
	if dh.Cost != rep.TotalDeltaEdges() {
		t.Fatalf("direct-hop schedule cost %d != ΣΔ %d", dh.Cost, rep.TotalDeltaEdges())
	}
}

// evaluateAll runs the three strategies plus the streaming baseline and
// the reference oracle on every snapshot, asserting all agree.
func TestAllStrategiesAgreeOnAllSnapshots(t *testing.T) {
	s, n := randomStore(31, 7, 50, 50)
	w := Window{Store: s, From: 0, To: 7}
	rep, err := BuildRep(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algo.All() {
		cfg := Config{Algo: a, Source: 0, KeepValues: true}
		dh, err := DirectHop(rep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		dhp, err := DirectHopParallel(rep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws, sched, err := EvaluateWorkSharing(rep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sched.Cost > rep.TotalDeltaEdges() {
			t.Fatalf("%s: work sharing cost %d exceeds direct hop %d", a.Name(), sched.Cost, rep.TotalDeltaEdges())
		}
		for k := 0; k <= 7; k++ {
			snap, _ := s.GetVersion(k)
			ref := engine.Reference(graph.NewPair(n, snap), a, 0)
			for name, res := range map[string]*Result{"direct": dh, "parallel": dhp, "worksharing": ws} {
				sr := res.Snapshots[k]
				if sr.Index != k {
					t.Fatalf("%s/%s: snapshot %d has index %d", a.Name(), name, k, sr.Index)
				}
				if len(sr.Values) != n {
					t.Fatalf("%s/%s: values not kept", a.Name(), name)
				}
				for v := 0; v < n; v++ {
					if sr.Values[v] != ref[v] {
						t.Fatalf("%s/%s snapshot %d vertex %d: got %d want %d",
							a.Name(), name, k, v, sr.Values[v], ref[v])
					}
				}
			}
			if dh.Snapshots[k].Checksum != ws.Snapshots[k].Checksum ||
				dh.Snapshots[k].Checksum != dhp.Snapshots[k].Checksum {
				t.Fatalf("%s: checksum mismatch at snapshot %d", a.Name(), k)
			}
		}
		if dh.AdditionsProcessed != rep.TotalDeltaEdges() {
			t.Fatalf("%s: direct hop processed %d additions, want %d",
				a.Name(), dh.AdditionsProcessed, rep.TotalDeltaEdges())
		}
		if ws.AdditionsProcessed != sched.Cost {
			t.Fatalf("%s: work sharing processed %d additions, schedule cost %d",
				a.Name(), ws.AdditionsProcessed, sched.Cost)
		}
	}
}

func TestDirectHopParallelBounded(t *testing.T) {
	s, _ := randomStore(41, 5, 30, 30)
	rep, err := BuildRep(Window{Store: s, From: 0, To: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Algo: algo.BFS{}, Source: 0, Parallelism: 2}
	res, err := DirectHopParallel(rep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxHopTime <= 0 {
		t.Fatal("no hop time recorded")
	}
	if len(res.Snapshots) != 6 {
		t.Fatalf("snapshots=%d", len(res.Snapshots))
	}
}

func TestWorkSharingWidthMismatch(t *testing.T) {
	s, _ := randomStore(43, 4, 20, 20)
	rep, _ := BuildRep(Window{Store: s, From: 0, To: 4})
	tgSmall, _ := BuildTG(Window{Store: s, From: 0, To: 2})
	sched, err := NewSchedule(tgSmall, SteinerGreedy(tgSmall))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WorkSharing(rep, tgSmall, sched, Config{Algo: algo.BFS{}, Source: 0}); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestWorkSharingSingleSnapshot(t *testing.T) {
	s, n := randomStore(47, 3, 20, 20)
	w := Window{Store: s, From: 2, To: 2}
	rep, err := BuildRep(w)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := EvaluateWorkSharing(rep, Config{Algo: algo.SSSP{}, Source: 0, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) != 1 {
		t.Fatalf("snapshots=%d", len(res.Snapshots))
	}
	snap, _ := s.GetVersion(2)
	ref := engine.Reference(graph.NewPair(n, snap), algo.SSSP{}, 0)
	for v := 0; v < n; v++ {
		if res.Snapshots[0].Values[v] != ref[v] {
			t.Fatalf("vertex %d differs", v)
		}
	}
}

func TestChecksumDistinguishesStates(t *testing.T) {
	s, _ := randomStore(53, 2, 30, 30)
	rep, _ := BuildRep(Window{Store: s, From: 0, To: 2})
	res, err := DirectHop(rep, Config{Algo: algo.SSSP{}, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Different snapshots overwhelmingly have different checksums.
	if res.Snapshots[0].Checksum == res.Snapshots[1].Checksum &&
		res.Snapshots[1].Checksum == res.Snapshots[2].Checksum {
		t.Fatal("checksums suspiciously identical across all snapshots")
	}
}

func TestScheduleStringRendering(t *testing.T) {
	s, _ := randomStore(61, 4, 20, 20)
	tg, _ := BuildTG(Window{Store: s, From: 0, To: 4})
	sched, err := NewSchedule(tg, SteinerGreedy(tg))
	if err != nil {
		t.Fatal(err)
	}
	out := sched.String()
	if !strings.Contains(out, "[0,4]") {
		t.Fatalf("root missing from rendering:\n%s", out)
	}
	if !strings.Contains(out, "additions ->") {
		t.Fatalf("edges missing from rendering:\n%s", out)
	}
	for k := 0; k <= 4; k++ {
		if !strings.Contains(out, fmt.Sprintf("[%d,%d]", k, k)) {
			t.Fatalf("leaf %d missing from rendering:\n%s", k, out)
		}
	}
}

func TestDirectHopScheduleLeaves(t *testing.T) {
	s, _ := randomStore(67, 5, 20, 20)
	tg, _ := BuildTG(Window{Store: s, From: 0, To: 5})
	dh := DirectHopSchedule(tg)
	leaves := dh.Leaves()
	if len(leaves) != 6 {
		t.Fatalf("leaves=%d", len(leaves))
	}
	if len(dh.Root.Edges) != 6 {
		t.Fatalf("root fan-out=%d", len(dh.Root.Edges))
	}
	for _, e := range dh.Root.Edges {
		if len(e.Spans) != 5 {
			t.Fatalf("direct-hop edge spans %d grid edges, want 5", len(e.Spans))
		}
	}
}

func TestSteinerTreeCostMatchesEdgeSum(t *testing.T) {
	s, _ := randomStore(71, 6, 25, 25)
	tg, _ := BuildTG(Window{Store: s, From: 0, To: 6})
	tree := SteinerGreedy(tg)
	var sum int64
	for _, e := range tree.Edges {
		sum += tg.LabelSize(e)
	}
	if sum != tree.Cost {
		t.Fatalf("cost %d != edge sum %d", tree.Cost, sum)
	}
}

package core

import (
	"fmt"
	"sort"

	"commongraph/internal/graph"
)

// The Triangular Grid (TG) of a window of w snapshots has one node per
// interval [i,j] (0 ≤ i ≤ j < w): node [i,j] is the intermediate common
// graph C[i,j] = E_i ∩ … ∩ E_j. Leaves are the original snapshots
// C[k,k] = E_k; the root is the full common graph C[0,w-1] = E_c.
//
// Each node has two outgoing edges, both labelled with additions only:
//
//	left:  [i,j] → [i,j-1], label C[i,j-1] \ C[i,j]
//	right: [i,j] → [i+1,j], label C[i+1,j] \ C[i,j]
//
// Materializing every C[i,j] would need O(w²·|E|) space, so the TG is
// built from the presence runs of the edges touched by the window's
// batches: an edge present exactly during snapshots [a,b] (a maximal run)
// belongs to label left[i][b+1] for every i ∈ [a,b] (common to i..b,
// absent at b+1) and to label right[a-1][j] for every j ∈ [a,b] (absent at
// a-1, common to a..j). Edges never absent inside the window are in the
// root and appear in no label. This yields exact label sizes for
// scheduling, and exact label sets on demand for execution.

// GridEdge identifies one TG edge by its source node [I,J] and direction.
type GridEdge struct {
	I, J int
	Left bool // true: [I,J]→[I,J-1]; false: [I,J]→[I+1,J]
}

// From returns the source node interval.
func (e GridEdge) From() (int, int) { return e.I, e.J }

// To returns the destination node interval.
func (e GridEdge) To() (int, int) {
	if e.Left {
		return e.I, e.J - 1
	}
	return e.I + 1, e.J
}

// String renders the edge as "[i,j]->[i',j']".
func (e GridEdge) String() string {
	ti, tj := e.To()
	return fmt.Sprintf("[%d,%d]->[%d,%d]", e.I, e.J, ti, tj)
}

// run records one maximal presence interval of an edge within the window:
// the edge exists in snapshots a..b (window-relative) and is absent just
// outside (or the window ends).
type run struct {
	key  graph.EdgeKey
	w    graph.Weight
	a, b int
}

// TG is the Triangular Grid of a window: label sizes for every grid edge
// plus the presence runs needed to materialize label sets on demand.
type TG struct {
	W    int
	runs []run
	// sizeLeft[i][j] = |label of [i,j]→[i,j-1]|, 0 ≤ i < j < W.
	// sizeRight[i][j] = |label of [i,j]→[i+1,j]|.
	sizeLeft  [][]int64
	sizeRight [][]int64
}

// BuildTG computes the Triangular Grid of the window. O(total batch edges
// × window width) time, O(total batch edges) space.
func BuildTG(w Window) (*TG, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	width := w.Width()
	tg := &TG{W: width}

	// Track presence runs of every edge touched by a batch. An edge first
	// seen in a deletion batch was present since the window start.
	type open struct {
		start int
		w     graph.Weight
	}
	opens := make(map[graph.EdgeKey]open)
	closed := make(map[graph.EdgeKey]bool) // touched but currently absent
	for t := 0; t < width-1; t++ {
		for _, e := range w.deletions(t) {
			k := e.Key()
			o, tracked := opens[k]
			if !tracked {
				if closed[k] {
					return nil, fmt.Errorf("core: deletion of absent edge %v at transition %d", e, t)
				}
				o = open{start: 0, w: e.W}
			}
			tg.runs = append(tg.runs, run{key: k, w: o.w, a: o.start, b: t})
			delete(opens, k)
			closed[k] = true
		}
		for _, e := range w.additions(t) {
			k := e.Key()
			if _, tracked := opens[k]; tracked {
				return nil, fmt.Errorf("core: addition of present edge %v at transition %d", e, t)
			}
			opens[k] = open{start: t + 1, w: e.W}
			delete(closed, k)
		}
	}
	for k, o := range opens {
		tg.runs = append(tg.runs, run{key: k, w: o.w, a: o.start, b: width - 1})
	}
	// Keep runs key-ordered so Labels emits each label already canonical
	// (a key appears at most once per label; see Labels).
	sort.Slice(tg.runs, func(i, j int) bool { return tg.runs[i].key < tg.runs[j].key })

	// Label sizes via difference arrays over the run ranges.
	tg.sizeLeft = make([][]int64, width)
	tg.sizeRight = make([][]int64, width)
	for i := 0; i < width; i++ {
		tg.sizeLeft[i] = make([]int64, width)
		tg.sizeRight[i] = make([]int64, width)
	}
	// diffLeft[j] accumulates over i; left labels live at column j = b+1.
	for _, r := range tg.runs {
		if r.b+1 < width {
			// e ∈ left[i][r.b+1] for i ∈ [r.a, r.b]
			for i := r.a; i <= r.b; i++ {
				tg.sizeLeft[i][r.b+1]++
			}
		}
		if r.a > 0 {
			// e ∈ right[r.a-1][j] for j ∈ [r.a, r.b]
			for j := r.a; j <= r.b; j++ {
				tg.sizeRight[r.a-1][j]++
			}
		}
	}
	return tg, nil
}

// LabelSize returns the number of additions on a grid edge.
func (tg *TG) LabelSize(e GridEdge) int64 {
	if e.Left {
		return tg.sizeLeft[e.I][e.J]
	}
	return tg.sizeRight[e.I][e.J]
}

// NumNodes returns the node count of the grid: w(w+1)/2.
func (tg *TG) NumNodes() int { return tg.W * (tg.W + 1) / 2 }

// Labels materializes the edge sets of the requested grid edges in one
// pass over the runs. The returned lists are canonical: runs are kept in
// key order and any key contributes at most once to a given label (runs of
// one edge are disjoint maximal intervals, so they map to distinct labels).
func (tg *TG) Labels(edges []GridEdge) map[GridEdge]graph.EdgeList {
	out := make(map[GridEdge]graph.EdgeList, len(edges))
	// Dense (i, j) → slice-index lookup; -1 means not requested.
	wantLeft := make([]int32, tg.W*tg.W)
	wantRight := make([]int32, tg.W*tg.W)
	for i := range wantLeft {
		wantLeft[i] = -1
		wantRight[i] = -1
	}
	lists := make([]graph.EdgeList, len(edges))
	for idx, e := range edges {
		out[e] = nil
		if e.Left {
			wantLeft[e.I*tg.W+e.J] = int32(idx)
		} else {
			wantRight[e.I*tg.W+e.J] = int32(idx)
		}
	}
	for _, r := range tg.runs {
		edge := graph.Edge{Src: r.key.Src(), Dst: r.key.Dst(), W: r.w}
		if r.b+1 < tg.W {
			col := r.b + 1
			for i := r.a; i <= r.b; i++ {
				if idx := wantLeft[i*tg.W+col]; idx >= 0 {
					lists[idx] = append(lists[idx], edge)
				}
			}
		}
		if r.a > 0 {
			row := (r.a - 1) * tg.W
			for j := r.a; j <= r.b; j++ {
				if idx := wantRight[row+j]; idx >= 0 {
					lists[idx] = append(lists[idx], edge)
				}
			}
		}
	}
	for idx, e := range edges {
		out[e] = lists[idx]
	}
	return out
}

// PathCost sums label sizes along a root-to-leaf path expressed as grid
// edges; used by tests and by the Direct-Hop cost accounting.
func (tg *TG) PathCost(path []GridEdge) int64 {
	var c int64
	for _, e := range path {
		c += tg.LabelSize(e)
	}
	return c
}

package core

import (
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
	"commongraph/internal/snapshot"
)

// Edges that are deleted and later re-added have several disjoint presence
// runs inside the window; they must never land in the common graph, and
// every TG label must still match the brute-force intermediate common
// graphs.

func readdStore(t *testing.T) *snapshot.Store {
	t.Helper()
	e := func(s, d uint32) graph.Edge {
		return graph.Edge{Src: graph.VertexID(s), Dst: graph.VertexID(d), W: graph.Weight(s + d + 1)}
	}
	base := graph.EdgeList{e(0, 1), e(1, 2), e(2, 3), e(3, 4), e(0, 2)}
	s := snapshot.NewStore(6, base)
	steps := []struct {
		add graph.EdgeList
		del graph.EdgeList
	}{
		{del: graph.EdgeList{e(1, 2)}},                               // v1: 1->2 gone
		{add: graph.EdgeList{e(1, 2), e(4, 5)}},                      // v2: 1->2 back, 4->5 new
		{del: graph.EdgeList{e(1, 2), e(4, 5)}},                      // v3: both gone again
		{add: graph.EdgeList{e(1, 2)}, del: graph.EdgeList{e(0, 2)}}, // v4: 1->2 back a second time
	}
	for _, st := range steps {
		if _, err := s.NewVersion(st.add, st.del); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestReaddCommonGraphExcludesFlappingEdges(t *testing.T) {
	s := readdStore(t)
	rep, err := BuildRep(Window{Store: s, From: 0, To: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 1->2 flaps: present at v0, v2, v4 only — not common. 0->2 deleted at
	// the end — not common. 4->5 exists only at v2.
	want := graph.EdgeList{
		{Src: 0, Dst: 1, W: 2},
		{Src: 2, Dst: 3, W: 6},
		{Src: 3, Dst: 4, W: 8},
	}
	if !graph.Equal(rep.Common, want) {
		t.Fatalf("common = %v", rep.Common)
	}
	for k := 0; k <= 4; k++ {
		snap, _ := s.GetVersion(k)
		if !graph.Equal(rep.SnapshotGraph(k).Edges(), snap) {
			t.Fatalf("snapshot %d not reproduced", k)
		}
	}
}

func TestReaddTGLabelsMatchBrute(t *testing.T) {
	s := readdStore(t)
	w := Window{Store: s, From: 0, To: 4}
	tg, err := BuildTG(w)
	if err != nil {
		t.Fatal(err)
	}
	common := func(i, j int) graph.EdgeList {
		cur, _ := s.GetVersion(i)
		for v := i + 1; v <= j; v++ {
			next, _ := s.GetVersion(v)
			cur = graph.Intersect(cur, next)
		}
		return cur
	}
	var all []GridEdge
	for j := 1; j < tg.W; j++ {
		for i := 0; i+j <= tg.W-1; i++ {
			all = append(all, GridEdge{I: i, J: i + j, Left: true}, GridEdge{I: i, J: i + j, Left: false})
		}
	}
	labels := tg.Labels(all)
	for _, e := range all {
		fi, fj := e.From()
		ti, tj := e.To()
		want := graph.Minus(common(ti, tj), common(fi, fj))
		if !graph.Equal(labels[e], want) {
			t.Fatalf("label %v: got %v want %v", e, labels[e], want)
		}
	}
}

func TestReaddAllStrategiesAgree(t *testing.T) {
	s := readdStore(t)
	rep, err := BuildRep(Window{Store: s, From: 0, To: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algo.All() {
		cfg := Config{Algo: a, Source: 0, KeepValues: true}
		dh, err := DirectHop(rep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws, _, err := EvaluateWorkSharing(rep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= 4; k++ {
			snap, _ := s.GetVersion(k)
			ref := engine.Reference(graph.NewPair(6, snap), a, 0)
			for v := 0; v < 6; v++ {
				if dh.Snapshots[k].Values[v] != ref[v] {
					t.Fatalf("%s direct-hop: snapshot %d vertex %d", a.Name(), k, v)
				}
				if ws.Snapshots[k].Values[v] != ref[v] {
					t.Fatalf("%s work-sharing: snapshot %d vertex %d", a.Name(), k, v)
				}
			}
		}
	}
}

func TestTGRejectsInconsistentStream(t *testing.T) {
	// BuildTG validates the stream it walks; hand it a store whose batches
	// it cannot trust by constructing windows over a consistent store but
	// corrupting expectations is impossible through the public path, so
	// instead check the error paths directly with a raw store.
	s := readdStore(t)
	if _, err := BuildTG(Window{Store: s, From: 3, To: 1}); err == nil {
		t.Fatal("invalid window accepted")
	}
}

func TestExtensionAlgorithmsAcrossStrategies(t *testing.T) {
	// The extension algorithms (Reachability, HopLimit) must behave like
	// the Table 3 five under every evaluation strategy.
	s := readdStore(t)
	rep, err := BuildRep(Window{Store: s, From: 0, To: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []algo.Algorithm{algo.Reachability{}, algo.HopLimit{K: 2}} {
		cfg := Config{Algo: a, Source: 0, KeepValues: true}
		dh, err := DirectHop(rep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws, _, err := EvaluateWorkSharing(rep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= 4; k++ {
			snap, _ := s.GetVersion(k)
			ref := engine.Reference(graph.NewPair(6, snap), a, 0)
			for v := 0; v < 6; v++ {
				if dh.Snapshots[k].Values[v] != ref[v] || ws.Snapshots[k].Values[v] != ref[v] {
					t.Fatalf("%s: snapshot %d vertex %d differs", a.Name(), k, v)
				}
			}
		}
	}
}

func TestHopLimitHorizonOnEvolvingGraph(t *testing.T) {
	// With K=1 only direct out-neighbours of the source are reached, at
	// every snapshot, under trimming and re-addition alike.
	s := readdStore(t)
	n := 6
	for k := 0; k < s.NumVersions(); k++ {
		snap, _ := s.GetVersion(k)
		ref := engine.Reference(graph.NewPair(n, snap), algo.HopLimit{K: 1}, 0)
		direct := map[graph.VertexID]bool{}
		for _, e := range snap {
			if e.Src == 0 {
				direct[e.Dst] = true
			}
		}
		for v := 1; v < n; v++ {
			reached := ref[v] != algo.Infinity
			if reached != direct[graph.VertexID(v)] {
				t.Fatalf("snapshot %d vertex %d: reached=%v direct=%v", k, v, reached, direct[graph.VertexID(v)])
			}
		}
	}
}

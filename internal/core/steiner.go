package core

import "math"

// The query evaluation schedule is a tree in the TG rooted at the common
// graph [0,w-1] and spanning every leaf [k,k]; its cost is the sum of
// label sizes of the tree's grid edges (each shared edge counted once).
// Finding the minimum-cost such tree is the (directed) Steiner tree
// problem (§3.2). Three solvers are provided:
//
//   - SteinerGreedy: the paper's Algorithm 1 — grow the tree by repeatedly
//     connecting the terminal nearest to it via a shortest path. O(w³).
//   - SteinerIntervalDP: dynamic program over contiguous leaf-coverage
//     splits. Exact on every instance we have brute-force checked;
//     O(w⁵) time, so intended for moderate windows and ablations.
//   - SteinerBrute: exhaustive path-assignment enumeration, exponential,
//     for w ≤ 7; the oracle in tests.
//
// All return a SteinerTree: the set of grid edges used.

// SteinerTree is a schedule tree in the grid: edge set plus total cost.
type SteinerTree struct {
	W     int
	Edges []GridEdge
	Cost  int64
}

// nodeIndex maps interval [i,j] to a dense index.
func nodeIndex(w, i, j int) int { return j*(j+1)/2 + i }

// SteinerGreedy implements Algorithm 1's Identify-Steiner-Tree: start
// from the root, and while some leaf is unconnected, connect the leaf
// closest to the current tree along a cheapest path. Edges already in the
// tree are free, which is what realizes the work sharing.
func SteinerGreedy(tg *TG) *SteinerTree {
	w := tg.W
	if w == 1 {
		return &SteinerTree{W: 1}
	}
	inTree := make([]bool, w*(w+1)/2)
	inTree[nodeIndex(w, 0, w-1)] = true
	used := map[GridEdge]bool{}
	connected := make([]bool, w)

	// dist/pred arrays over nodes, recomputed each round by relaxing the
	// grid DAG from all tree nodes at once (longest intervals first).
	dist := make([]int64, w*(w+1)/2)
	pred := make([]GridEdge, w*(w+1)/2)
	hasPred := make([]bool, w*(w+1)/2)

	for rounds := 0; rounds < w; rounds++ {
		// Multi-source shortest path from the tree over the DAG.
		for i := range dist {
			dist[i] = math.MaxInt64
			hasPred[i] = false
		}
		for j := w - 1; j >= 0; j-- {
			for i := 0; i+j <= w-1; i++ {
				// interval [i, i+j] of length j+1
				hi, hj := i, i+j
				idx := nodeIndex(w, hi, hj)
				if inTree[idx] {
					dist[idx] = 0
					hasPred[idx] = false
				}
				if dist[idx] == math.MaxInt64 {
					continue
				}
				if hj > hi {
					// left child [hi, hj-1]
					le := GridEdge{I: hi, J: hj, Left: true}
					cost := tg.LabelSize(le)
					if used[le] {
						cost = 0
					}
					ci := nodeIndex(w, hi, hj-1)
					if d := dist[idx] + cost; d < dist[ci] {
						dist[ci] = d
						pred[ci] = le
						hasPred[ci] = true
					}
					// right child [hi+1, hj]
					re := GridEdge{I: hi, J: hj, Left: false}
					cost = tg.LabelSize(re)
					if used[re] {
						cost = 0
					}
					ci = nodeIndex(w, hi+1, hj)
					if d := dist[idx] + cost; d < dist[ci] {
						dist[ci] = d
						pred[ci] = re
						hasPred[ci] = true
					}
				}
			}
		}
		// Pick the cheapest unconnected leaf.
		best, bestLeaf := int64(math.MaxInt64), -1
		for k := 0; k < w; k++ {
			if connected[k] {
				continue
			}
			if d := dist[nodeIndex(w, k, k)]; d < best {
				best = d
				bestLeaf = k
			}
		}
		if bestLeaf < 0 {
			break
		}
		// Trace the path back to the tree, adding nodes and edges.
		i, j := bestLeaf, bestLeaf
		for {
			idx := nodeIndex(w, i, j)
			inTree[idx] = true
			if !hasPred[idx] {
				break
			}
			e := pred[idx]
			used[e] = true
			i, j = e.I, e.J
		}
		connected[bestLeaf] = true
	}

	t := &SteinerTree{W: w}
	for e := range used {
		t.Edges = append(t.Edges, e)
		t.Cost += tg.LabelSize(e)
	}
	sortGridEdges(t.Edges)
	return t
}

// sortGridEdges orders edges deterministically (by J desc, I asc, left
// first) so results are stable across runs.
func sortGridEdges(es []GridEdge) {
	lessEdge := func(a, b GridEdge) bool {
		if a.J != b.J {
			return a.J > b.J
		}
		if a.I != b.I {
			return a.I < b.I
		}
		return a.Left && !b.Left
	}
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && lessEdge(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// SpansAllLeaves verifies the tree reaches every leaf from the root using
// only its edges — the structural invariant of a schedule.
func (t *SteinerTree) SpansAllLeaves() bool {
	if t.W == 1 {
		return true
	}
	adj := map[[2]int][]GridEdge{}
	for _, e := range t.Edges {
		adj[[2]int{e.I, e.J}] = append(adj[[2]int{e.I, e.J}], e)
	}
	reached := map[[2]int]bool{}
	stack := [][2]int{{0, t.W - 1}}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reached[n] {
			continue
		}
		reached[n] = true
		for _, e := range adj[n] {
			ti, tj := e.To()
			stack = append(stack, [2]int{ti, tj})
		}
	}
	for k := 0; k < t.W; k++ {
		if !reached[[2]int{k, k}] {
			return false
		}
	}
	return true
}

// SteinerIntervalDP computes the cheapest schedule tree under the
// restriction that at each node the leaves are covered by a contiguous
// split between the two children. f(i,j,a,b) is the cheapest subtree
// rooted at [i,j] covering leaves a..b.
func SteinerIntervalDP(tg *TG) *SteinerTree {
	w := tg.W
	if w == 1 {
		return &SteinerTree{W: 1}
	}
	type key struct{ i, j, a, b int }
	memo := map[key]int64{}
	choice := map[key]int{} // split point m; leaves a..m left, m+1..b right

	var solve func(i, j, a, b int) int64
	solve = func(i, j, a, b int) int64 {
		if i == j {
			return 0 // at a leaf; covers exactly itself
		}
		if a == b && a == i && i == j {
			return 0
		}
		k := key{i, j, a, b}
		if v, ok := memo[k]; ok {
			return v
		}
		best := int64(math.MaxInt64)
		bestM := a - 1
		leftEdge := GridEdge{I: i, J: j, Left: true}
		rightEdge := GridEdge{I: i, J: j, Left: false}
		// m = a-1: everything goes right; m = b: everything left.
		for m := a - 1; m <= b; m++ {
			var c int64
			if m >= a { // left child [i, j-1] covers a..m
				if m > j-1 || a < i {
					continue
				}
				c += tg.LabelSize(leftEdge) + solve(i, j-1, a, m)
			}
			if m < b { // right child [i+1, j] covers m+1..b
				if m+1 < i+1 || b > j {
					continue
				}
				c += tg.LabelSize(rightEdge) + solve(i+1, j, m+1, b)
			}
			if c < best {
				best = c
				bestM = m
			}
		}
		memo[k] = best
		choice[k] = bestM
		return best
	}

	cost := solve(0, w-1, 0, w-1)
	t := &SteinerTree{W: w, Cost: cost}
	used := map[GridEdge]bool{}
	var rebuild func(i, j, a, b int)
	rebuild = func(i, j, a, b int) {
		if i == j {
			return
		}
		m := choice[key{i, j, a, b}]
		if m >= a {
			used[GridEdge{I: i, J: j, Left: true}] = true
			rebuild(i, j-1, a, m)
		}
		if m < b {
			used[GridEdge{I: i, J: j, Left: false}] = true
			rebuild(i+1, j, m+1, b)
		}
	}
	rebuild(0, w-1, 0, w-1)
	for e := range used {
		t.Edges = append(t.Edges, e)
	}
	sortGridEdges(t.Edges)
	return t
}

// SteinerBrute exhaustively enumerates one root-to-leaf path per leaf and
// minimizes the cost of the union of path edges. Exponential; w ≤ 7.
func SteinerBrute(tg *TG) *SteinerTree {
	w := tg.W
	if w > 7 {
		panic("core: SteinerBrute is exponential; w must be ≤ 7")
	}
	if w == 1 {
		return &SteinerTree{W: 1}
	}
	// Enumerate all paths from root [0,w-1] to each leaf [k,k]. A path is
	// a sequence of L/R moves; to reach [k,k] we need exactly k R-moves
	// and w-1-k L-moves, in any order.
	paths := make([][][]GridEdge, w)
	var walk func(i, j, k int, acc []GridEdge)
	walk = func(i, j, k int, acc []GridEdge) {
		if i == j {
			p := make([]GridEdge, len(acc))
			copy(p, acc)
			paths[k] = append(paths[k], p)
			return
		}
		if j-1 >= k { // can still reach k after a left move
			walk(i, j-1, k, append(acc, GridEdge{I: i, J: j, Left: true}))
		}
		if i+1 <= k { // right move
			walk(i+1, j, k, append(acc, GridEdge{I: i, J: j, Left: false}))
		}
	}
	for k := 0; k < w; k++ {
		walk(0, w-1, k, nil)
	}
	idx := make([]int, w)
	best := int64(math.MaxInt64)
	var bestUnion []GridEdge
	for {
		union := map[GridEdge]bool{}
		for k := 0; k < w; k++ {
			for _, e := range paths[k][idx[k]] {
				union[e] = true
			}
		}
		var cost int64
		for e := range union {
			cost += tg.LabelSize(e)
		}
		if cost < best {
			best = cost
			bestUnion = bestUnion[:0]
			for e := range union {
				bestUnion = append(bestUnion, e)
			}
		}
		// Advance the mixed-radix counter.
		k := 0
		for ; k < w; k++ {
			idx[k]++
			if idx[k] < len(paths[k]) {
				break
			}
			idx[k] = 0
		}
		if k == w {
			break
		}
	}
	t := &SteinerTree{W: w, Cost: best, Edges: bestUnion}
	sortGridEdges(t.Edges)
	return t
}

package core

import (
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/gen"
	"commongraph/internal/obs"
	"commongraph/internal/snapshot"
)

func benchWindow(b *testing.B, snaps int) Window {
	b.Helper()
	n, base := gen.RMAT(gen.DefaultRMAT(14, 250_000, 17))
	trs, err := gen.Stream(n, base, gen.StreamConfig{Transitions: snaps - 1, Additions: 1000, Deletions: 1000, Seed: 19})
	if err != nil {
		b.Fatal(err)
	}
	s := snapshot.NewStore(n, base)
	for _, tr := range trs {
		if _, err := s.NewVersion(tr.Additions, tr.Deletions); err != nil {
			b.Fatal(err)
		}
	}
	return Window{Store: s, From: 0, To: snaps - 1}
}

// BenchmarkBuildRep measures common-graph representation construction.
func BenchmarkBuildRep(b *testing.B) {
	w := benchWindow(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildRep(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildTG measures Triangular Grid construction.
func BenchmarkBuildTG(b *testing.B) {
	w := benchWindow(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTG(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteinerSolvers contrasts the scheduling solvers on a 50-wide
// grid (brute force is exponential and excluded here; see the tests).
func BenchmarkSteinerSolvers(b *testing.B) {
	w := benchWindow(b, 50)
	tg, err := BuildTG(w)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SteinerGreedy(tg)
		}
	})
	b.Run("IntervalDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SteinerIntervalDP(tg)
		}
	})
	b.Run("DirectHopSchedule", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DirectHopSchedule(tg)
		}
	})
}

// BenchmarkLabels measures label materialization for a full greedy tree.
func BenchmarkLabels(b *testing.B) {
	w := benchWindow(b, 50)
	tg, err := BuildTG(w)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := NewSchedule(tg, SteinerGreedy(tg))
	if err != nil {
		b.Fatal(err)
	}
	edges := sched.GridEdges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg.Labels(edges)
	}
}

// BenchmarkStrategies runs the three evaluation strategies end to end on
// the same window.
func BenchmarkStrategies(b *testing.B) {
	w := benchWindow(b, 50)
	rep, err := BuildRep(w)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Algo: algo.SSSP{}, Source: 0}
	b.Run("DirectHop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DirectHop(rep, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DirectHopParallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DirectHopParallel(rep, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("WorkSharing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := EvaluateWorkSharing(rep, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTracingOverhead contrasts the same end-to-end Work-Sharing
// evaluation with tracing disabled (the default: a nil tracer, one
// pointer test per instrumented site) and enabled. The disabled variant
// is the regression gate of the observability layer — it must stay
// within ~2% of the pre-instrumentation baseline (compare against
// "Untraced" with benchstat); the enabled variant merely bounds the
// opt-in cost.
func BenchmarkTracingOverhead(b *testing.B) {
	w := benchWindow(b, 50)
	rep, err := BuildRep(w)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Untraced", func(b *testing.B) {
		cfg := Config{Algo: algo.SSSP{}, Source: 0}
		for i := 0; i < b.N; i++ {
			if _, _, err := EvaluateWorkSharing(rep, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Traced", func(b *testing.B) {
		tr := obs.New()
		for i := 0; i < b.N; i++ {
			root := tr.StartSpan("evaluate")
			cfg := Config{Algo: algo.SSSP{}, Source: 0, Trace: root}
			if _, _, err := EvaluateWorkSharing(rep, cfg); err != nil {
				b.Fatal(err)
			}
			root.End()
			tr.Reset()
		}
	})
}

package core

import (
	"context"
	"errors"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/faults"
	"commongraph/internal/graph"
)

// faultFixture builds a shared window plus the clean sequential baseline
// every fault test compares against.
type faultFixture struct {
	rep   *Rep
	tg    *TG
	sched *Schedule
	cfg   Config
	clean *Result
	n     int
}

func newFaultFixture(t *testing.T, seed uint64, transitions int) *faultFixture {
	t.Helper()
	s, n := randomStore(seed, transitions, 50, 50)
	rep, err := BuildRep(Window{Store: s, From: 0, To: transitions})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTG(rep.Window)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewSchedule(tg, SteinerGreedy(tg))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Algo: algo.SSSP{}, Source: 0, KeepValues: true}
	clean, err := WorkSharing(rep, tg, sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &faultFixture{rep: rep, tg: tg, sched: sched, cfg: cfg, clean: clean, n: n}
}

func (f *faultFixture) assertMatchesClean(t *testing.T, got *Result) {
	t.Helper()
	if len(got.Snapshots) != len(f.clean.Snapshots) {
		t.Fatalf("snapshot count %d vs %d", len(got.Snapshots), len(f.clean.Snapshots))
	}
	for k := range f.clean.Snapshots {
		if f.clean.Snapshots[k].Checksum != got.Snapshots[k].Checksum {
			t.Fatalf("snapshot %d checksum differs", k)
		}
		for v := 0; v < f.n; v++ {
			if f.clean.Snapshots[k].Values[v] != got.Snapshots[k].Values[v] {
				t.Fatalf("snapshot %d vertex %d differs", k, v)
			}
		}
	}
}

// assertInjected checks the error both wraps the sentinel and names its
// injection point — the "no silent nils, no anonymous failures" half of
// the fault-injection contract.
func assertInjected(t *testing.T, err error, p faults.Point) {
	t.Helper()
	if err == nil {
		t.Fatalf("armed point %s produced no error", p)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error from %s does not wrap faults.ErrInjected: %v", p, err)
	}
	if !strings.Contains(err.Error(), string(p)) {
		t.Fatalf("error from %s does not identify its point: %v", p, err)
	}
}

// TestFaultMatrix arms every evaluation-path injection point in turn and
// asserts the driven operation surfaces a wrapped, point-identifying
// error with no partial effect. (The ingest.window-close point is covered
// in internal/ingest, which owns that path.)
func TestFaultMatrix(t *testing.T) {
	f := newFaultFixture(t, 401, 8)

	t.Run(string(faults.CoreEngineRun), func(t *testing.T) {
		defer faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.CoreEngineRun}}})()
		for name, run := range map[string]func() (*Result, error){
			"DirectHop":         func() (*Result, error) { return DirectHop(f.rep, f.cfg) },
			"DirectHopParallel": func() (*Result, error) { return DirectHopParallel(f.rep, f.cfg) },
			"WorkSharing":       func() (*Result, error) { return WorkSharing(f.rep, f.tg, f.sched, f.cfg) },
			"WorkSharingParallel": func() (*Result, error) {
				return WorkSharingParallel(f.rep, f.tg, f.sched, f.cfg)
			},
		} {
			res, err := run()
			assertInjected(t, err, faults.CoreEngineRun)
			if res != nil {
				t.Fatalf("%s returned a partial result alongside the error", name)
			}
		}
	})

	t.Run(string(faults.CoreOverlayBuild), func(t *testing.T) {
		defer faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.CoreOverlayBuild}}})()
		for name, run := range map[string]func() (*Result, error){
			"DirectHop":         func() (*Result, error) { return DirectHop(f.rep, f.cfg) },
			"DirectHopParallel": func() (*Result, error) { return DirectHopParallel(f.rep, f.cfg) },
		} {
			res, err := run()
			assertInjected(t, err, faults.CoreOverlayBuild)
			if res != nil {
				t.Fatalf("%s returned a partial result alongside the error", name)
			}
		}
	})

	t.Run(string(faults.CoreSubtreeWalk), func(t *testing.T) {
		defer faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.CoreSubtreeWalk}}})()
		res, err := WorkSharing(f.rep, f.tg, f.sched, f.cfg)
		assertInjected(t, err, faults.CoreSubtreeWalk)
		if res != nil {
			t.Fatal("WorkSharing returned a partial result alongside the error")
		}
		res, err = WorkSharingParallel(f.rep, f.tg, f.sched, f.cfg)
		assertInjected(t, err, faults.CoreSubtreeWalk)
		if res != nil {
			t.Fatal("WorkSharingParallel returned a partial result alongside the error")
		}
	})

	t.Run(string(faults.StoreNewVersion), func(t *testing.T) {
		s, _ := randomStore(403, 2, 20, 20)
		before := s.NumVersions()
		defer faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.StoreNewVersion}}})()
		_, err := s.NewVersion(graph.EdgeList{}, graph.EdgeList{})
		assertInjected(t, err, faults.StoreNewVersion)
		if s.NumVersions() != before {
			t.Fatalf("failed NewVersion changed version count %d -> %d", before, s.NumVersions())
		}
	})

	t.Run(string(faults.CoreMaintainAppend), func(t *testing.T) {
		s, _ := randomStore(405, 5, 30, 30)
		m, err := NewMaintainedRep(Window{Store: s, From: 0, To: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.CoreMaintainAppend}}})()
		assertInjected(t, m.Append(), faults.CoreMaintainAppend)
		if w := m.Window(); w.From != 0 || w.To != 2 {
			t.Fatalf("failed Append moved the window to [%d,%d]", w.From, w.To)
		}
	})

	t.Run(string(faults.CoreMaintainAdvance), func(t *testing.T) {
		s, _ := randomStore(407, 5, 30, 30)
		m, err := NewMaintainedRep(Window{Store: s, From: 0, To: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.CoreMaintainAdvance}}})()
		assertInjected(t, m.Advance(), faults.CoreMaintainAdvance)
		if w := m.Window(); w.From != 0 || w.To != 2 {
			t.Fatalf("failed Advance moved the window to [%d,%d]", w.From, w.To)
		}
	})
}

// TestSlideRollsBackOnMidMaintenanceError pins Slide's atomicity: when the
// Advance half fails after a successful Append, the window must return to
// its pre-Slide state and stay exactly evaluable (equal to a fresh
// BuildRep of the original window).
func TestSlideRollsBackOnMidMaintenanceError(t *testing.T) {
	s, _ := randomStore(409, 6, 30, 30)
	m, err := NewMaintainedRep(Window{Store: s, From: 0, To: 3})
	if err != nil {
		t.Fatal(err)
	}
	disarm := faults.Arm(&faults.Plan{Specs: []faults.Spec{{Point: faults.CoreMaintainAdvance}}})
	err = m.Slide()
	disarm()
	assertInjected(t, err, faults.CoreMaintainAdvance)
	if w := m.Window(); w.From != 0 || w.To != 3 {
		t.Fatalf("failed Slide left a half-moved window [%d,%d]", w.From, w.To)
	}
	fresh, err := BuildRep(Window{Store: s, From: 0, To: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(m.Rep().Common, fresh.Common) {
		t.Fatal("rolled-back representation's common graph differs from a fresh build")
	}
	for k := range fresh.Deltas {
		if !graph.Equal(m.Rep().Deltas[k].Edges(), fresh.Deltas[k].Edges()) {
			t.Fatalf("rolled-back delta %d differs from a fresh build", k)
		}
	}
	// The rolled-back window must still slide cleanly once disarmed.
	if err := m.Slide(); err != nil {
		t.Fatalf("slide after rollback: %v", err)
	}
	if w := m.Window(); w.From != 1 || w.To != 4 {
		t.Fatalf("post-rollback slide moved to [%d,%d]", w.From, w.To)
	}
}

// TestWorkSharingParallelPanicContained is the acceptance test for panic
// isolation: an armed subtree-walk panic must come back as an error (a
// *PanicError carrying the stack) instead of crashing the process.
func TestWorkSharingParallelPanicContained(t *testing.T) {
	f := newFaultFixture(t, 411, 9)
	defer faults.Arm(&faults.Plan{Specs: []faults.Spec{
		{Point: faults.CoreSubtreeWalk, Mode: faults.Panic},
	}})()
	res, err := WorkSharingParallel(f.rep, f.tg, f.sched, f.cfg)
	if err == nil {
		t.Fatal("panicking subtree produced no error")
	}
	if res != nil {
		t.Fatal("panicking subtree produced a partial result")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *PanicError: %v", err)
	}
	if _, ok := pe.Value.(*faults.InjectedPanic); !ok {
		t.Fatalf("recovered value %T is not the injected panic", pe.Value)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Fatal("panic error carries no stack trace")
	}
}

// TestWorkSharingParallelDegrade is the acceptance test for graceful
// degradation: with Config.Degrade set, a panicking subtree is recomputed
// via Direct-Hop and the evaluation succeeds with exact values, a Degraded
// mark, and per-snapshot failure causes.
func TestWorkSharingParallelDegrade(t *testing.T) {
	f := newFaultFixture(t, 413, 10)
	cfg := f.cfg
	cfg.Degrade = true
	// Fire exactly once, past the first walk, so exactly one subtree
	// fails while the rest share work normally.
	defer faults.Arm(&faults.Plan{Specs: []faults.Spec{
		{Point: faults.CoreSubtreeWalk, Mode: faults.Panic, After: 1, Times: 1},
	}})()
	res, err := WorkSharingParallel(f.rep, f.tg, f.sched, cfg)
	if err != nil {
		t.Fatalf("degrade did not absorb the failed subtree: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked Degraded")
	}
	if len(res.SnapshotErrors) == 0 {
		t.Fatal("degraded result carries no per-snapshot failure causes")
	}
	for k, cause := range res.SnapshotErrors {
		if cause == nil {
			t.Fatalf("snapshot %d has a nil failure cause", k)
		}
		var pe *PanicError
		if !errors.As(cause, &pe) {
			t.Fatalf("snapshot %d cause is not the contained panic: %v", k, cause)
		}
	}
	// Degraded values are exact: the whole window matches the clean
	// sequential evaluation.
	f.assertMatchesClean(t, res)
}

// TestWorkSharingParallelErrorDegrade covers the error-mode flavour: an
// erroring (non-panicking) subtree degrades the same way.
func TestWorkSharingParallelErrorDegrade(t *testing.T) {
	f := newFaultFixture(t, 415, 9)
	cfg := f.cfg
	cfg.Degrade = true
	defer faults.Arm(&faults.Plan{Specs: []faults.Spec{
		{Point: faults.CoreSubtreeWalk, After: 2, Times: 1},
	}})()
	res, err := WorkSharingParallel(f.rep, f.tg, f.sched, cfg)
	if err != nil {
		t.Fatalf("degrade did not absorb the failed subtree: %v", err)
	}
	if !res.Degraded || len(res.SnapshotErrors) == 0 {
		t.Fatal("result not marked degraded with causes")
	}
	for _, cause := range res.SnapshotErrors {
		if !errors.Is(cause, faults.ErrInjected) {
			t.Fatalf("cause does not wrap the injected fault: %v", cause)
		}
	}
	f.assertMatchesClean(t, res)
}

// TestCancellationStopsWithinOneScheduleEdge is the acceptance test for
// cooperative cancellation: cancelling mid-walk must stop the sequential
// DFS at the next schedule-edge boundary — no further edges are streamed
// after the cancellation is observed.
func TestCancellationStopsWithinOneScheduleEdge(t *testing.T) {
	f := newFaultFixture(t, 417, 10)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var walks atomic.Int64
	const cancelAt = 3
	disarm := faults.Arm(&faults.Plan{Observer: func(p faults.Point, hit int) {
		if p != faults.CoreSubtreeWalk {
			return
		}
		walks.Add(1)
		if hit == cancelAt {
			cancel()
		}
	}})
	defer disarm()

	cfg := f.cfg
	cfg.Ctx = ctx
	res, err := WorkSharing(f.rep, f.tg, f.sched, cfg)
	if res != nil || err == nil {
		t.Fatalf("cancelled evaluation returned res=%v err=%v", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
	// The checkpoint that observes the cancellation does not count as a
	// walk (ctx is checked before the fault registry), so the DFS streams
	// no edge beyond the one that was in flight when cancel fired.
	if got := walks.Load(); got > cancelAt+1 {
		t.Fatalf("DFS streamed %d edges after cancelling at edge %d", got-cancelAt, cancelAt)
	}
	if total := countScheduleEdges(f.sched.Root); total <= cancelAt+1 {
		t.Fatalf("fixture too narrow to prove early stop: %d schedule edges", total)
	}
}

func countScheduleEdges(n *ScheduleNode) int {
	total := 0
	for _, e := range n.Edges {
		total += 1 + countScheduleEdges(e.To)
	}
	return total
}

// TestCancellationParallelPaths covers the remaining executors: a
// pre-cancelled context must stop each of them before any work.
func TestCancellationParallelPaths(t *testing.T) {
	f := newFaultFixture(t, 419, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := f.cfg
	cfg.Ctx = ctx
	if _, err := DirectHop(f.rep, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("DirectHop: %v", err)
	}
	if _, err := DirectHopParallel(f.rep, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("DirectHopParallel: %v", err)
	}
	if _, err := WorkSharingParallel(f.rep, f.tg, f.sched, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("WorkSharingParallel: %v", err)
	}
	if _, err := Independent(f.rep.Window, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("Independent: %v", err)
	}
	// Degrade must never mask cancellation as a degraded success.
	cfg.Degrade = true
	if _, err := WorkSharingParallel(f.rep, f.tg, f.sched, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("WorkSharingParallel degrade: %v", err)
	}
}

// TestChaosWorkSharingParallel is the probabilistic suite behind `make
// chaos`: seeded random faults (errors and panics, sometimes mid-walk)
// against the degraded parallel executor. Every outcome must be one of
// (a) a clean result matching the sequential baseline, (b) a degraded
// result matching the baseline with causes attached, or (c) an error that
// wraps the injected sentinel — never a crash, never silently wrong
// values. Deterministic per seed; a failure names the seed to replay.
func TestChaosWorkSharingParallel(t *testing.T) {
	if os.Getenv("COMMONGRAPH_CHAOS") == "" {
		t.Skip("probabilistic fault suite; run via `make chaos` (COMMONGRAPH_CHAOS=1)")
	}
	f := newFaultFixture(t, 421, 10)
	for seed := uint64(1); seed <= 16; seed++ {
		cfg := f.cfg
		cfg.Degrade = seed%2 == 0
		disarm := faults.Arm(&faults.Plan{Seed: seed, Specs: []faults.Spec{
			{Point: faults.CoreSubtreeWalk, Prob: 0.10},
			{Point: faults.CoreSubtreeWalk, Prob: 0.05, Mode: faults.Panic},
			{Point: faults.CoreOverlayBuild, Prob: 0.05},
		}})
		res, err := WorkSharingParallel(f.rep, f.tg, f.sched, cfg)
		disarm()
		switch {
		case err != nil:
			var pe *PanicError
			if !errors.Is(err, faults.ErrInjected) && !errors.As(err, &pe) {
				t.Fatalf("seed %d: error is neither injected nor a contained panic: %v", seed, err)
			}
		case res.Degraded:
			if len(res.SnapshotErrors) == 0 {
				t.Fatalf("seed %d: degraded result without causes", seed)
			}
			f.assertMatchesClean(t, res)
		default:
			f.assertMatchesClean(t, res)
		}
	}
}

package core

import (
	"fmt"
	"sync"
	"time"

	"commongraph/internal/delta"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
)

// WorkSharingParallel executes a schedule with the root's child subtrees
// running concurrently — the parallelization §5 notes is possible for the
// work-sharing algorithm ("resulting in a more work efficient algorithm"
// than parallel direct hop). Subtrees are independent: each starts from
// its own clone of the common graph's solution, so no synchronization is
// needed beyond joining.
//
// Result.MaxHopTime reports the longest subtree (the wall-time estimate
// with one core per subtree); the Cost fields aggregate CPU time across
// subtrees.
func WorkSharingParallel(rep *Rep, tg *TG, sched *Schedule, cfg Config) (*Result, error) {
	if err := checkWidths(rep, tg); err != nil {
		return nil, err
	}
	res := &Result{}
	t0 := time.Now()
	baseState, stats := engine.Run(rep.Base, cfg.Algo, cfg.Source, cfg.Engine)
	res.Cost.InitialCompute = time.Since(t0)
	res.Work.Add(stats)

	if sched.Root.IsLeaf() {
		res.Snapshots = append(res.Snapshots, snapshotResult(0, baseState, cfg.KeepValues))
		return res, nil
	}
	labels := tg.Labels(sched.GridEdges())

	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		err error
	)
	par := cfg.Parallelism
	if par <= 0 || par > len(sched.Root.Edges) {
		par = len(sched.Root.Edges)
	}
	sem := make(chan struct{}, par)
	res.Snapshots = make([]SnapshotResult, rep.Window.Width())
	for _, rootEdge := range sched.Root.Edges {
		wg.Add(1)
		go func(e *ScheduleEdge) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Short-circuit: once any subtree has failed the whole
			// evaluation is doomed, so skip the full walk (and the state
			// clone it implies) instead of computing a result that would
			// be discarded.
			mu.Lock()
			failed := err != nil
			mu.Unlock()
			if failed {
				return
			}
			start := time.Now()
			sub := &Result{}
			walkErr := walkSubtree(rep, labels, e, baseState.Clone(), nil, nil, cfg, sub)
			elapsed := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			if walkErr != nil {
				if err == nil {
					err = walkErr
				}
				return
			}
			if err != nil {
				// Another subtree failed while we were walking; do not
				// merge partial results into an evaluation that will
				// return an error.
				return
			}
			res.Cost.IncrementalAdd += sub.Cost.IncrementalAdd
			res.Cost.OverlayBuild += sub.Cost.OverlayBuild
			res.Cost.StateClone += sub.Cost.StateClone
			res.Work.Add(sub.Work)
			res.AdditionsProcessed += sub.AdditionsProcessed
			if elapsed > res.MaxHopTime {
				res.MaxHopTime = elapsed
			}
			for _, s := range sub.Snapshots {
				res.Snapshots[s.Index] = s
			}
		}(rootEdge)
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return res, nil
}

func checkWidths(rep *Rep, tg *TG) error {
	if tg.W != rep.Window.Width() {
		return errWidth(tg.W, rep.Window.Width())
	}
	return nil
}

// walkSubtree executes one schedule edge and the subtree below it,
// accumulating into sub. It mirrors WorkSharing's DFS (single-overlay per
// leaf, bounded stack otherwise) but is reentrant so subtrees can run
// concurrently.
func walkSubtree(rep *Rep, labels map[GridEdge]graph.EdgeList, e *ScheduleEdge,
	st *engine.State, overlays []*delta.Overlay, parts []graph.EdgeList,
	cfg Config, sub *Result) error {

	t1 := time.Now()
	spanLists := make([]graph.EdgeList, 0, len(e.Spans))
	batchLen := 0
	for _, span := range e.Spans {
		spanLists = append(spanLists, labels[span])
		batchLen += len(labels[span])
	}
	childParts := make([]graph.EdgeList, len(parts), len(parts)+len(spanLists))
	copy(childParts, parts)
	childParts = append(childParts, spanLists...)

	var childOverlays []*delta.Overlay
	if e.To.IsLeaf() {
		childOverlays = []*delta.Overlay{delta.NewOverlay(rep.N, rep.Deltas[e.To.I])}
	} else {
		childOverlays = make([]*delta.Overlay, len(overlays), len(overlays)+1)
		copy(childOverlays, overlays)
		childOverlays = append(childOverlays, delta.NewOverlayParts(rep.N, spanLists...))
		if len(childOverlays) > maxOverlayDepth {
			childOverlays = []*delta.Overlay{delta.NewOverlayParts(rep.N, childParts...)}
		}
	}
	og := delta.NewOverlayGraph(rep.Base, childOverlays...)
	t2 := time.Now()
	sub.Cost.OverlayBuild += t2.Sub(t1)

	s := engine.IncrementalAddParts(og, st, edgeParts(spanLists), cfg.Engine)
	sub.Cost.IncrementalAdd += time.Since(t2)
	sub.Work.Add(s)
	sub.AdditionsProcessed += int64(batchLen)

	if e.To.IsLeaf() {
		sub.Snapshots = append(sub.Snapshots, snapshotResult(e.To.I, st, cfg.KeepValues))
		return nil
	}
	for idx, child := range e.To.Edges {
		next := st
		if idx < len(e.To.Edges)-1 {
			tc := time.Now()
			next = st.Clone()
			sub.Cost.StateClone += time.Since(tc)
		}
		if err := walkSubtree(rep, labels, child, next, childOverlays, childParts, cfg, sub); err != nil {
			return err
		}
	}
	return nil
}

// errWidth mirrors WorkSharing's width validation.
func errWidth(tgW, repW int) error {
	return fmt.Errorf("core: TG width %d does not match window width %d", tgW, repW)
}

// EvaluateWorkSharingParallel is the one-call parallel pipeline: TG,
// greedy Steiner, compression, concurrent execution.
func EvaluateWorkSharingParallel(rep *Rep, cfg Config) (*Result, *Schedule, error) {
	tg, err := BuildTG(rep.Window)
	if err != nil {
		return nil, nil, err
	}
	sched, err := NewSchedule(tg, solveSchedule(tg, cfg))
	if err != nil {
		return nil, nil, err
	}
	res, err := WorkSharingParallel(rep, tg, sched, cfg)
	return res, sched, err
}

// EvaluateMany evaluates several queries (different algorithms and/or
// sources) over the same window, sharing the representation, the
// Triangular Grid, its labels, and the schedule across all of them — the
// amortization a multi-query evolving-graph service gets from the
// CommonGraph form. Results are returned in query order.
func EvaluateMany(rep *Rep, queries []Config) ([]*Result, *Schedule, error) {
	tg, err := BuildTG(rep.Window)
	if err != nil {
		return nil, nil, err
	}
	sched, err := NewSchedule(tg, SteinerGreedy(tg))
	if err != nil {
		return nil, nil, err
	}
	out := make([]*Result, len(queries))
	for i, cfg := range queries {
		res, err := WorkSharing(rep, tg, sched, cfg)
		if err != nil {
			return nil, nil, err
		}
		out[i] = res
	}
	return out, sched, nil
}

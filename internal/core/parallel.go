package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"time"

	"commongraph/internal/delta"
	"commongraph/internal/engine"
	"commongraph/internal/faults"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
	"commongraph/internal/shard"
)

// WorkSharingParallel executes a schedule with the root's child subtrees
// running concurrently — the parallelization §5 notes is possible for the
// work-sharing algorithm ("resulting in a more work efficient algorithm"
// than parallel direct hop). Subtrees are independent: each starts from
// its own clone of the common graph's solution, so no synchronization is
// needed beyond joining.
//
// Fault tolerance: every subtree runs panic-contained — a panic becomes a
// *PanicError instead of crashing the process — and cancellation is
// observed at each schedule-edge boundary. When Config.Degrade is set, a
// failed subtree falls back to Direct-Hop recomputation of its snapshots
// from the base state and the Result is marked Degraded with the
// per-snapshot failure cause; otherwise the first failure aborts the
// whole evaluation.
//
// Result.MaxHopTime reports the longest subtree (the wall-time estimate
// with one core per subtree); the Cost fields aggregate CPU time across
// subtrees.
func WorkSharingParallel(rep *Rep, tg *TG, sched *Schedule, cfg Config) (*Result, error) {
	if err := checkWidths(rep, tg); err != nil {
		return nil, err
	}
	if err := checkpoint(cfg.Ctx, faults.CoreEngineRun); err != nil {
		return nil, err
	}
	cfg.Engine = rep.pinShardPlan(cfg.Engine)
	res := &Result{}
	t0 := time.Now()
	baseState, stats := solveCommon(rep.Base, cfg)
	res.Cost.InitialCompute = time.Since(t0)
	res.Work.Add(stats)
	hops := obs.HopSeconds("work-sharing-parallel")
	busy := obs.WorkersBusy()
	ctx := executorCtx(cfg)

	if sched.Root.IsLeaf() {
		res.Snapshots = append(res.Snapshots, snapshotResult(0, baseState, cfg.KeepValues))
		return res, nil
	}
	labels := tg.Labels(sched.GridEdges())

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	par := cfg.Parallelism
	if par <= 0 || par > len(sched.Root.Edges) {
		par = len(sched.Root.Edges)
	}
	sem := make(chan struct{}, par)
	res.Snapshots = make([]SnapshotResult, rep.Window.Width())
	for _, rootEdge := range sched.Root.Edges {
		wg.Add(1)
		go func(e *ScheduleEdge) {
			defer wg.Done()
			// Last-resort containment: a panic escaping the protected walk
			// below (e.g. in the merge itself) is recorded as the
			// evaluation's error, never allowed to kill the process.
			defer func() {
				if r := recover(); r != nil {
					pe := &PanicError{Value: r, Stack: debug.Stack()}
					mu.Lock()
					if firstErr == nil {
						firstErr = pe
					}
					mu.Unlock()
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			busy.Add(1)
			defer busy.Add(-1)
			// Short-circuit: once any subtree has failed fatally the whole
			// evaluation is doomed, so skip the full walk (and the state
			// clone it implies) instead of computing a result that would
			// be discarded.
			mu.Lock()
			aborted := firstErr != nil
			mu.Unlock()
			if aborted {
				return
			}
			start := time.Now()
			sub := &Result{}
			var walkErr error
			pprof.Do(ctx, pprof.Labels("cg_executor", "work-sharing-parallel"), func(context.Context) {
				walkErr = runSubtree(rep, labels, e, baseState.Clone(), cfg, sub)
			})
			degraded := false
			if walkErr != nil && cfg.Degrade && !isCancellation(walkErr) {
				// Graceful degradation: recompute this subtree's snapshots
				// via Direct-Hop from the base state. The fallback shares
				// nothing with the failed walk; if it fails too, the whole
				// evaluation fails with both causes.
				sub = &Result{}
				if degErr := degradeSubtree(rep, e, baseState, cfg, sub); degErr != nil {
					walkErr = errors.Join(walkErr, degErr)
				} else {
					degraded = true
					obs.Degradations().Inc()
					cfg.Trace.Tracer().Event("degrade", obs.String("subtree", nodeRef(e.To)))
				}
			}
			elapsed := time.Since(start)
			hops.Observe(elapsed)
			mu.Lock()
			defer mu.Unlock()
			if walkErr != nil && !degraded {
				if firstErr == nil {
					firstErr = walkErr
				}
				return
			}
			if firstErr != nil {
				// Another subtree failed fatally while we were walking; do
				// not merge partial results into an evaluation that will
				// return an error.
				return
			}
			if degraded {
				res.Degraded = true
				if res.SnapshotErrors == nil {
					res.SnapshotErrors = make(map[int]error)
				}
				for _, s := range sub.Snapshots {
					res.SnapshotErrors[s.Index] = walkErr
				}
			}
			res.Cost.IncrementalAdd += sub.Cost.IncrementalAdd
			res.Cost.OverlayBuild += sub.Cost.OverlayBuild
			res.Cost.StateClone += sub.Cost.StateClone
			res.Work.Add(sub.Work)
			res.AdditionsProcessed += sub.AdditionsProcessed
			if elapsed > res.MaxHopTime {
				res.MaxHopTime = elapsed
			}
			for _, s := range sub.Snapshots {
				res.Snapshots[s.Index] = s
			}
		}(rootEdge)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

func checkWidths(rep *Rep, tg *TG) error {
	if tg.W != rep.Window.Width() {
		return errWidth(tg.W, rep.Window.Width())
	}
	return nil
}

// runSubtree is one root subtree's protected walk: a panic anywhere below
// (the engine, the overlay algebra, or an armed Panic-mode fault) comes
// back as a *PanicError the caller can degrade around. The subtree's
// spans render on their own trace track (Fork), showing real overlap with
// sibling subtrees.
func runSubtree(rep *Rep, labels map[GridEdge]graph.EdgeList, e *ScheduleEdge,
	st *engine.State, cfg Config, sub *Result) (err error) {
	defer recoverToError(&err)
	sp := cfg.Trace.Fork("subtree", obs.String("root", nodeRef(e.To)))
	defer sp.End()
	return walkSubtree(rep, labels, e, st, nil, nil, cfg, sp, sub)
}

// walkSubtree executes one schedule edge and the subtree below it,
// accumulating into sub. It mirrors WorkSharing's DFS (single-overlay per
// leaf, bounded stack otherwise) but is reentrant so subtrees can run
// concurrently. Every invocation is a schedule-edge boundary: cancellation
// and armed faults are observed before the edge's batch is streamed.
func walkSubtree(rep *Rep, labels map[GridEdge]graph.EdgeList, e *ScheduleEdge,
	st *engine.State, overlays []*delta.Overlay, parts []graph.EdgeList,
	cfg Config, parent *obs.Span, sub *Result) error {

	if err := checkpoint(cfg.Ctx, faults.CoreSubtreeWalk); err != nil {
		return err
	}
	sp := parent.StartChild("schedule.edge",
		obs.String("to", nodeRef(e.To)), obs.Int("spans", len(e.Spans)))
	t1 := time.Now()
	spanLists := make([]graph.EdgeList, 0, len(e.Spans))
	batchLen := 0
	for _, span := range e.Spans {
		spanLists = append(spanLists, labels[span])
		batchLen += len(labels[span])
	}
	childParts := make([]graph.EdgeList, len(parts), len(parts)+len(spanLists))
	copy(childParts, parts)
	childParts = append(childParts, spanLists...)

	var childOverlays []*delta.Overlay
	if e.To.IsLeaf() {
		childOverlays = []*delta.Overlay{delta.NewOverlay(rep.N, rep.Deltas[e.To.I])}
	} else {
		childOverlays = make([]*delta.Overlay, len(overlays), len(overlays)+1)
		copy(childOverlays, overlays)
		childOverlays = append(childOverlays, delta.NewOverlayParts(rep.N, spanLists...))
		if len(childOverlays) > maxOverlayDepth {
			childOverlays = []*delta.Overlay{delta.NewOverlayParts(rep.N, childParts...)}
		}
	}
	og := delta.NewOverlayGraph(rep.Base, childOverlays...)
	t2 := time.Now()
	sub.Cost.OverlayBuild += t2.Sub(t1)

	s := shard.IncrementalAddParts(og, st, edgeParts(spanLists), cfg.Engine.WithSpan(sp))
	sub.Cost.IncrementalAdd += time.Since(t2)
	sp.SetAttr(obs.Int("batch", batchLen))
	sp.End()
	sub.Work.Add(s)
	sub.AdditionsProcessed += int64(batchLen)

	if e.To.IsLeaf() {
		sub.Snapshots = append(sub.Snapshots, snapshotResult(e.To.I, st, cfg.KeepValues))
		return nil
	}
	for idx, child := range e.To.Edges {
		next := st
		if idx < len(e.To.Edges)-1 {
			tc := time.Now()
			next = st.Clone()
			sub.Cost.StateClone += time.Since(tc)
		}
		if err := walkSubtree(rep, labels, child, next, childOverlays, childParts, cfg, parent, sub); err != nil {
			return err
		}
	}
	return nil
}

// degradeSubtree recomputes every snapshot below a failed schedule edge
// via Direct-Hop from the base state (§3.1): the per-leaf batches are
// already materialized canonically in the representation, so the fallback
// shares nothing with the failed walk. It is itself panic-contained and
// cancellable, and its snapshot values are exact — degradation loses only
// the work sharing, never correctness.
func degradeSubtree(rep *Rep, e *ScheduleEdge, base *engine.State, cfg Config, sub *Result) (err error) {
	defer recoverToError(&err)
	parent := cfg.Trace.Fork("subtree.degrade", obs.String("root", nodeRef(e.To)))
	defer parent.End()
	for _, k := range subtreeLeaves(e) {
		if cerr := checkpoint(cfg.Ctx, faults.CoreOverlayBuild); cerr != nil {
			return cerr
		}
		sp := parent.StartChild("hop.fallback",
			obs.Int("snapshot", k), obs.Int("batch", rep.Deltas[k].Len()))
		t1 := time.Now()
		ov := delta.NewOverlay(rep.N, rep.Deltas[k])
		og := delta.NewOverlayGraph(rep.Base, ov)
		t2 := time.Now()
		sub.Cost.OverlayBuild += t2.Sub(t1)

		st := base.Clone()
		t3 := time.Now()
		sub.Cost.StateClone += t3.Sub(t2)

		s := shard.IncrementalAdd(og, st, rep.Deltas[k].Edges(), cfg.Engine.WithSpan(sp))
		sub.Cost.IncrementalAdd += time.Since(t3)
		sp.End()
		sub.Work.Add(s)
		sub.AdditionsProcessed += int64(rep.Deltas[k].Len())
		sub.Snapshots = append(sub.Snapshots, snapshotResult(k, st, cfg.KeepValues))
	}
	return nil
}

// subtreeLeaves collects the window-relative snapshot indices at or below
// the destination of a schedule edge.
func subtreeLeaves(e *ScheduleEdge) []int {
	var out []int
	var walk func(n *ScheduleNode)
	walk = func(n *ScheduleNode) {
		if n.IsLeaf() {
			out = append(out, n.I)
			return
		}
		for _, ce := range n.Edges {
			walk(ce.To)
		}
	}
	walk(e.To)
	return out
}

// errWidth mirrors WorkSharing's width validation.
func errWidth(tgW, repW int) error {
	return fmt.Errorf("core: TG width %d does not match window width %d", tgW, repW)
}

// EvaluateWorkSharingParallel is the one-call parallel pipeline: TG,
// greedy Steiner, compression, concurrent execution.
func EvaluateWorkSharingParallel(rep *Rep, cfg Config) (*Result, *Schedule, error) {
	tg, err := BuildTG(rep.Window)
	if err != nil {
		return nil, nil, err
	}
	sched, err := NewSchedule(tg, solveSchedule(tg, cfg))
	if err != nil {
		return nil, nil, err
	}
	res, err := WorkSharingParallel(rep, tg, sched, cfg)
	return res, sched, err
}

// EvaluateMany evaluates several queries (different algorithms and/or
// sources) over the same window, sharing the representation, the
// Triangular Grid, its labels, and the schedule across all of them — the
// amortization a multi-query evolving-graph service gets from the
// CommonGraph form. The shared schedule is solved with the first query's
// solver choice (callers pass uniform configs). Results are returned in
// query order.
func EvaluateMany(rep *Rep, queries []Config) ([]*Result, *Schedule, error) {
	tg, err := BuildTG(rep.Window)
	if err != nil {
		return nil, nil, err
	}
	var cfg0 Config
	if len(queries) > 0 {
		cfg0 = queries[0]
	}
	sched, err := NewSchedule(tg, solveSchedule(tg, cfg0))
	if err != nil {
		return nil, nil, err
	}
	out := make([]*Result, len(queries))
	for i, cfg := range queries {
		res, err := WorkSharing(rep, tg, sched, cfg)
		if err != nil {
			return nil, nil, err
		}
		out[i] = res
	}
	return out, sched, nil
}

package core

import (
	"testing"

	"commongraph/internal/graph"
	"commongraph/internal/snapshot"
)

// The paper's worked example (§3.1–§3.2, Figures 4–7): three snapshots
// related by
//
//	Δi+   = {e3, e12, e15}
//	Δi−   = {e9, e11, e16, e23, e29}
//	Δi+1+ = {e9, e11, e14, e24, e29}
//	Δi+1− = {e3, e4, e7, e10, e26}
//
// The six TG labels listed in §3.2 must come out exactly, the Tree1
// schedule must cost 19 additions, Tree2 21, and Direct-Hop 23.
//
// (The paper's prose says Direct-Hop processes "22 additions", but its own
// batch listing gives |Δc1|+|Δc2|+|Δc3| = 9+7+7 = 23; we reproduce the
// sets exactly and treat the 22 as a summation slip. See EXPERIMENTS.md.)

// ed maps the paper's edge label k to a concrete edge.
func ed(k int) graph.Edge {
	return graph.Edge{Src: graph.VertexID(k), Dst: graph.VertexID(100 + k), W: 1}
}

func eds(ks ...int) graph.EdgeList {
	out := make(graph.EdgeList, 0, len(ks))
	for _, k := range ks {
		out = append(out, ed(k))
	}
	return out.Canonicalize()
}

// paperStore builds the example's three snapshots. G_i contains the edges
// deleted over the window plus a few common filler edges (e1, e2).
func paperStore(t *testing.T) *snapshot.Store {
	t.Helper()
	gi := eds(1, 2, 4, 7, 9, 10, 11, 16, 23, 26, 29)
	s := snapshot.NewStore(200, gi)
	if _, err := s.NewVersion(eds(3, 12, 15), eds(9, 11, 16, 23, 29)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewVersion(eds(9, 11, 14, 24, 29), eds(3, 4, 7, 10, 26)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPaperExampleCommonGraphAndDeltas(t *testing.T) {
	s := paperStore(t)
	rep, err := BuildRep(Window{Store: s, From: 0, To: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(rep.Common, eds(1, 2)) {
		t.Fatalf("common = %v", rep.Common)
	}
	wantDeltas := []graph.EdgeList{
		eds(4, 7, 9, 10, 11, 16, 23, 26, 29), // Δc1, 9 additions
		eds(3, 4, 7, 10, 12, 15, 26),         // Δc2, 7 additions
		eds(9, 11, 12, 14, 15, 24, 29),       // Δc3, 7 additions
	}
	for k, want := range wantDeltas {
		if !graph.Equal(rep.Deltas[k].Edges(), want) {
			t.Fatalf("Δc%d = %v, want %v", k+1, rep.Deltas[k].Edges(), want)
		}
	}
	if rep.TotalDeltaEdges() != 23 {
		t.Fatalf("direct-hop additions = %d, want 23 (the paper's listing sums to 23)", rep.TotalDeltaEdges())
	}
}

func TestPaperExampleTGLabels(t *testing.T) {
	s := paperStore(t)
	tg, err := BuildTG(Window{Store: s, From: 0, To: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tg.W != 3 || tg.NumNodes() != 6 {
		t.Fatalf("W=%d nodes=%d", tg.W, tg.NumNodes())
	}
	cases := []struct {
		name string
		e    GridEdge
		want graph.EdgeList
	}{
		// The six batches enumerated in §3.2:
		{"ICG1->Gi", GridEdge{I: 0, J: 1, Left: true}, eds(9, 11, 16, 23, 29)},
		{"ICG1->Gi+1", GridEdge{I: 0, J: 1, Left: false}, eds(3, 12, 15)},
		{"ICG2->Gi+1", GridEdge{I: 1, J: 2, Left: true}, eds(3, 4, 7, 10, 26)},
		{"ICG2->Gi+2", GridEdge{I: 1, J: 2, Left: false}, eds(9, 11, 14, 24, 29)},
		{"Gc->ICG1", GridEdge{I: 0, J: 2, Left: true}, eds(4, 7, 10, 26)},
		{"Gc->ICG2", GridEdge{I: 0, J: 2, Left: false}, eds(12, 15)},
	}
	var edges []GridEdge
	for _, c := range cases {
		edges = append(edges, c.e)
	}
	labels := tg.Labels(edges)
	for _, c := range cases {
		if got := labels[c.e]; !graph.Equal(got, c.want) {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
		if tg.LabelSize(c.e) != int64(len(c.want)) {
			t.Errorf("%s: size %d want %d", c.name, tg.LabelSize(c.e), len(c.want))
		}
	}
}

func TestPaperExampleSchedules(t *testing.T) {
	s := paperStore(t)
	w := Window{Store: s, From: 0, To: 2}
	tg, err := BuildTG(w)
	if err != nil {
		t.Fatal(err)
	}

	// Direct-Hop: 9 + 7 + 7 additions.
	dh := DirectHopSchedule(tg)
	if dh.Cost != 23 {
		t.Fatalf("direct-hop cost = %d, want 23", dh.Cost)
	}

	// The optimal schedule is the paper's Tree1 at 19 additions; Tree2
	// costs 21. Greedy, the interval DP, and brute force all find 19.
	for _, solver := range []struct {
		name string
		tree *SteinerTree
	}{
		{"greedy", SteinerGreedy(tg)},
		{"intervalDP", SteinerIntervalDP(tg)},
		{"brute", SteinerBrute(tg)},
	} {
		if solver.tree.Cost != 19 {
			t.Errorf("%s cost = %d, want 19 (Tree1)", solver.name, solver.tree.Cost)
		}
		if !solver.tree.SpansAllLeaves() {
			t.Errorf("%s does not span all leaves", solver.name)
		}
	}

	// Compression: in Tree1, ICG2 has one in- and one out-edge and is
	// bypassed, leaving the root with three children: ICG1 (covering
	// leaves 0 and 1) and a merged 7-addition hop straight to leaf 2.
	sched, err := NewSchedule(tg, SteinerGreedy(tg))
	if err != nil {
		t.Fatal(err)
	}
	if sched.Cost != 19 {
		t.Fatalf("schedule cost = %d", sched.Cost)
	}
	root := sched.Root
	if len(root.Edges) != 2 {
		t.Fatalf("root children = %d, want 2: %s", len(root.Edges), sched)
	}
	var toICG1, toLeaf2 *ScheduleEdge
	for _, e := range root.Edges {
		switch {
		case e.To.I == 0 && e.To.J == 1:
			toICG1 = e
		case e.To.I == 2 && e.To.J == 2:
			toLeaf2 = e
		}
	}
	if toICG1 == nil || toLeaf2 == nil {
		t.Fatalf("unexpected root children: %s", sched)
	}
	if toICG1.AddCount != 4 {
		t.Fatalf("Gc->ICG1 = %d additions, want 4", toICG1.AddCount)
	}
	if toLeaf2.AddCount != 7 || len(toLeaf2.Spans) != 2 {
		t.Fatalf("bypassed hop to leaf2: %d additions over %d spans, want 7 over 2",
			toLeaf2.AddCount, len(toLeaf2.Spans))
	}
	if len(toICG1.To.Edges) != 2 {
		t.Fatalf("ICG1 children = %d, want 2", len(toICG1.To.Edges))
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"commongraph/internal/faults"
)

// This file is the executor layer's fault-tolerance kit: cooperative
// cancellation checkpoints at schedule-edge boundaries, and panic
// containment for the evaluation goroutines. A long-running service must
// survive a panicking subtree and stop promptly when a client disconnects;
// both behaviours are driven in tests through internal/faults.

// PanicError is a recovered evaluation panic converted into an error: the
// panic value plus the goroutine stack captured at recovery time. The §5
// parallel executors return it (or degrade around it) instead of letting a
// single subtree take down the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("core: recovered panic: %v\n%s", p.Value, p.Stack)
}

// recoverToError converts an in-flight panic into a *PanicError stored at
// errp. Install it with `defer recoverToError(&err)` at the top of any
// function whose failure must become an error instead of a crash — the
// cgvet gopanic analyzer enforces the pattern on every goroutine this
// package spawns.
func recoverToError(errp *error) {
	if r := recover(); r != nil {
		*errp = &PanicError{Value: r, Stack: debug.Stack()}
	}
}

// checkpoint is the cooperative cancellation + fault-injection gate placed
// at schedule-edge boundaries: the context's deadline/cancellation is
// observed first, then the named injection point (a no-op unless a test
// armed it). A nil ctx means the evaluation is never cancelled.
func checkpoint(ctx context.Context, p faults.Point) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: evaluation cancelled at %s: %w", p, err)
		}
	}
	if err := faults.Check(p); err != nil {
		return fmt.Errorf("core: %s: %w", p, err)
	}
	return nil
}

// isCancellation distinguishes cooperative cancellation from genuine
// subtree failure: a cancelled evaluation must return the context error
// promptly, never burn cycles on the degraded fallback.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
